// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each Benchmark* maps to one artefact; the cmd/ tools
// produce the full-resolution versions with the paper's parameters.
//
//	go test -bench=. -benchmem
package twine_test

import (
	"fmt"
	"testing"

	"twine/internal/bench"
	"twine/internal/core"
	"twine/internal/ipfs"
	"twine/internal/litedb"
	"twine/internal/polybench"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// benchSGX is a scaled-down enclave so benchmarks finish quickly while
// preserving the cost model (EPC pressure still occurs in the Fig5 sweep).
func benchSGX() sgx.Config {
	cfg := sgx.DefaultConfig()
	cfg.EPCSize = 24 << 20
	cfg.EPCUsable = 16 << 20
	cfg.HeapSize = 192 << 20
	cfg.ReservedSize = 16 << 20
	cfg.TransitionCost = 1700 // ns
	return cfg
}

// --- Figure 3: PolyBench/C, native vs WAMR vs TWINE ---

var fig3Kernels = []string{"gemm", "2mm", "atax", "jacobi-2d", "cholesky", "floyd-warshall"}

func BenchmarkFig3PolyBench(b *testing.B) {
	const n = 32
	for _, name := range fig3Kernels {
		k, ok := polybench.ByName(name)
		if !ok {
			b.Fatalf("kernel %s missing", name)
		}
		b.Run(name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				polybench.RunNative(k, n)
			}
		})
		b.Run(name+"/wamr", func(b *testing.B) {
			bin := k.Build(n)
			mod, err := wasm.Decode(bin)
			if err != nil {
				b.Fatal(err)
			}
			c, err := wasm.Compile(mod)
			if err != nil {
				b.Fatal(err)
			}
			imp := wasm.NewImportObject()
			polybench.MathImports(imp)
			in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: wasm.EngineAOT})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Invoke("run"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/twine", func(b *testing.B) {
			cfg := core.Config{PlatformSeed: "fig3", SGX: benchSGX()}
			rt, err := core.NewRuntime(cfg)
			if err != nil {
				b.Fatal(err)
			}
			mod, err := rt.LoadModule(k.Build(n))
			if err != nil {
				b.Fatal(err)
			}
			inst, err := rt.NewInstance(mod)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inst.Invoke("run"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4: Speedtest1 across the variant matrix ---

func BenchmarkFig4Speedtest(b *testing.B) {
	opt := bench.Options{CachePages: 256, SGX: benchSGX(), ImageBlocks: 6 << 10}
	for _, v := range []bench.Variant{bench.Native, bench.WAMR, bench.Twine, bench.SGXLKL} {
		for _, s := range []bench.Storage{bench.Mem, bench.File} {
			b.Run(fmt.Sprintf("%v/%v", v, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunSpeedtest(v, s, 12, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 5 + Table II: micro-benchmarks vs database size ---

func BenchmarkFig5Micro(b *testing.B) {
	cfg := bench.MicroConfig{MaxRecords: 2000, Step: 1000, RandReads: 100}
	cfg.Options = bench.Options{CachePages: 256, SGX: benchSGX(), ImageBlocks: 4 << 10}
	for _, v := range []bench.Variant{bench.Native, bench.WAMR, bench.Twine, bench.SGXLKL} {
		for _, s := range []bench.Storage{bench.Mem, bench.File} {
			b.Run(fmt.Sprintf("%v/%v", v, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunMicro(v, s, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table III: cost factors ---

func BenchmarkTable3Costs(b *testing.B) {
	opt := bench.Options{CachePages: 128, SGX: benchSGX(), ImageBlocks: 2 << 10}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Costs(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: HW vs SW SGX mode ---

func BenchmarkFig6Modes(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode sgx.Mode
	}{{"hw", sgx.ModeHardware}, {"sw", sgx.ModeSimulation}} {
		b.Run("twine-file/"+tc.name, func(b *testing.B) {
			cfg := bench.MicroConfig{MaxRecords: 1000, Step: 1000, RandReads: 100}
			cfg.Options = bench.Options{CachePages: 256, SGX: benchSGX(), SGXMode: tc.mode}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunMicro(bench.Twine, bench.File, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7: IPFS profiling, standard vs optimised ---

func BenchmarkFig7Breakdown(b *testing.B) {
	opt := bench.Options{CachePages: 128, SGX: benchSGX()}
	for _, tc := range []struct {
		name      string
		optimised bool
	}{{"standard", false}, {"optimized", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := bench.RunBreakdown(600, 400, tc.optimised, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(bd.Memset.Nanoseconds()), "memset-ns")
					b.ReportMetric(float64(bd.OCall.Nanoseconds()), "ocall-ns")
				}
			}
		})
	}
}

// --- supporting micro-benchmarks (ablations from DESIGN.md) ---

// BenchmarkWasmEngines isolates the interpreter/AoT gap (Table I context).
func BenchmarkWasmEngines(b *testing.B) {
	k, _ := polybench.ByName("gemm")
	bin := k.Build(24)
	mod, _ := wasm.Decode(bin)
	c, _ := wasm.Compile(mod)
	for _, eng := range []wasm.Engine{wasm.EngineInterp, wasm.EngineAOT} {
		b.Run(eng.String(), func(b *testing.B) {
			imp := wasm.NewImportObject()
			polybench.MathImports(imp)
			in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: eng})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Invoke("run"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIPFSModes isolates the protected-FS optimisation (§V-F ablation)
// without the database on top.
func BenchmarkIPFSModes(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode ipfs.Mode
	}{{"standard", ipfs.ModeStandard}, {"optimized", ipfs.ModeOptimized}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := bench.Options{CachePages: 128, SGX: benchSGX(), IPFSMode: tc.mode}
			db, err := bench.Open(bench.Twine, bench.File, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, d BLOB)`); err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec(`BEGIN`); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 400; i++ {
				if _, err := db.Exec(`INSERT INTO t (d) VALUES (zeroblob(1024))`); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := db.Exec(`COMMIT`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(`SELECT length(d) FROM t WHERE id = ?`,
					litedb.IntVal(int64(i%400+1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
