package core

import (
	"bytes"
	"fmt"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/sgx"
)

// dbRun captures everything observable about one embedded-DB workload run:
// the boundary counters and the WASI-visible results.
type dbRun struct {
	stats   sgx.Stats
	results string
	hostDB  []byte // raw bytes of the database file on the untrusted host
}

// runDBWorkload drives a file-backed embedded database through a mixed
// insert/query/delete workload under the given switchless mode and file
// backend, and snapshots counters plus observable results.
func runDBWorkload(t *testing.T, mode SwitchlessMode, fs FSKind) dbRun {
	t.Helper()
	host := hostfs.NewMemFS()
	rt, err := NewRuntime(testConfig(func(c *Config) {
		c.HostFS = host
		c.FS = fs
		c.Switchless = mode
	}))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	db, err := rt.OpenDB(DBConfig{Name: "diff.db", CachePages: 32})
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := db.Exec(`BEGIN`); err != nil {
		t.Fatalf("begin: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t (v) VALUES ('row-%04d')`, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := db.Exec(`COMMIT`); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := db.Exec(`DELETE FROM t WHERE id % 7 = 0`); err != nil {
		t.Fatalf("delete: %v", err)
	}
	var out bytes.Buffer
	rows, err := db.Query(`SELECT COUNT(*), MIN(v), MAX(v) FROM t`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	for _, row := range rows.All() {
		for _, v := range row {
			fmt.Fprintf(&out, "%v|", v)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	run := dbRun{stats: rt.Enclave.Stats(), results: out.String()}
	if f, err := host.OpenFile("diff.db", hostfs.ORead); err == nil {
		info, _ := f.Stat()
		run.hostDB = make([]byte, info.Size)
		f.ReadAt(run.hostDB, 0)
		f.Close()
	}
	return run
}

// TestSwitchlessOffCountsBitIdentical is the off-mode half of the PR 2
// acceptance criteria: with the ring disabled the refactored dispatch
// helpers must produce exactly the pre-switchless counters — no switchless
// activity, deterministic ECALL/OCALL counts across identical runs.
func TestSwitchlessOffCountsBitIdentical(t *testing.T) {
	a := runDBWorkload(t, SwitchlessOff, FSIPFS)
	b := runDBWorkload(t, SwitchlessOff, FSIPFS)

	if a.stats.SwitchlessCalls != 0 || a.stats.FallbackOCalls != 0 || a.stats.WorkerWakeups != 0 {
		t.Errorf("switchless counters moved with the ring off: %+v", a.stats)
	}
	if a.stats.ECalls != b.stats.ECalls || a.stats.OCalls != b.stats.OCalls {
		t.Errorf("off-mode counts not deterministic: %+v vs %+v", a.stats, b.stats)
	}
	if a.stats.PageFaults != b.stats.PageFaults || a.stats.Evictions != b.stats.Evictions {
		t.Errorf("off-mode paging not deterministic: %+v vs %+v", a.stats, b.stats)
	}
	if a.stats.OCalls == 0 {
		t.Fatal("workload performed no OCALLs; the differential proves nothing")
	}
	if a.results != b.results {
		t.Errorf("off-mode results differ: %q vs %q", a.results, b.results)
	}
}

// TestSwitchlessDifferentialIPFS is the on-mode half over the trusted
// backend (no write batching on protected files): every boundary request
// must either ride the ring or fall back, conserving the total —
// OCalls_off == OCalls_on + SwitchlessCalls_on — with byte-identical
// observable results and bit-identical EPC paging.
func TestSwitchlessDifferentialIPFS(t *testing.T) {
	off := runDBWorkload(t, SwitchlessOff, FSIPFS)
	on := runDBWorkload(t, SwitchlessOn, FSIPFS)

	if off.stats.ECalls != on.stats.ECalls {
		t.Errorf("ECalls: off=%d on=%d", off.stats.ECalls, on.stats.ECalls)
	}
	if got := on.stats.OCalls + on.stats.SwitchlessCalls; got != off.stats.OCalls {
		t.Errorf("request conservation violated: off OCalls=%d, on OCalls+Switchless=%d (%+v)",
			off.stats.OCalls, got, on.stats)
	}
	if on.stats.SwitchlessCalls == 0 {
		t.Error("ring never engaged; the differential proves nothing")
	}
	if off.stats.PageFaults != on.stats.PageFaults || off.stats.Evictions != on.stats.Evictions {
		t.Errorf("EPC paging diverged: off=%+v on=%+v", off.stats, on.stats)
	}
	if off.results != on.results {
		t.Errorf("query results differ:\noff: %q\non:  %q", off.results, on.results)
	}
}

// TestSwitchlessDifferentialHostFS exercises the untrusted-POSIX backend,
// where adjacent-write batching is live: the database file on the host
// must be byte-identical, and batching may only reduce the request count.
func TestSwitchlessDifferentialHostFS(t *testing.T) {
	off := runDBWorkload(t, SwitchlessOff, FSHost)
	on := runDBWorkload(t, SwitchlessOn, FSHost)

	if off.results != on.results {
		t.Errorf("query results differ:\noff: %q\non:  %q", off.results, on.results)
	}
	if !bytes.Equal(off.hostDB, on.hostDB) {
		t.Errorf("host database bytes differ: off=%d bytes, on=%d bytes",
			len(off.hostDB), len(on.hostDB))
	}
	if off.stats.ECalls != on.stats.ECalls {
		t.Errorf("ECalls: off=%d on=%d", off.stats.ECalls, on.stats.ECalls)
	}
	onReqs := on.stats.OCalls + on.stats.SwitchlessCalls
	if onReqs > off.stats.OCalls {
		t.Errorf("switchless mode made MORE requests: off=%d on=%d", off.stats.OCalls, onReqs)
	}
	if on.stats.SwitchlessCalls == 0 {
		t.Error("ring never engaged on the host backend")
	}
	t.Logf("host-backend requests: off=%d on=%d (%.1f%% batched away, %d switchless, %d fallback)",
		off.stats.OCalls, onReqs,
		100*float64(off.stats.OCalls-onReqs)/float64(off.stats.OCalls),
		on.stats.SwitchlessCalls, on.stats.FallbackOCalls)
}

// TestSwitchlessStdoutByteIdentical runs the hello-world guest in both
// modes: stdout and the exit code are WASI-visible results and must match.
func TestSwitchlessStdoutByteIdentical(t *testing.T) {
	run := func(mode SwitchlessMode) (string, uint32) {
		var out bytes.Buffer
		rt, err := NewRuntime(testConfig(func(c *Config) {
			c.Stdout = &out
			c.Switchless = mode
		}))
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		mod, err := rt.LoadModule(helloModule("switchless says hi\n", 3))
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		code, err := inst.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out.String(), code
	}
	offOut, offCode := run(SwitchlessOff)
	onOut, onCode := run(SwitchlessOn)
	if offOut != onOut || offCode != onCode {
		t.Errorf("observable run differs: off=(%q,%d) on=(%q,%d)", offOut, offCode, onOut, onCode)
	}
}
