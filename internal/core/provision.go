package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"twine/internal/sgx"
)

// Provisioning implements the paper's Figure 1 workflow: the application
// provider keeps the Wasm module on its premises and releases it only to
// an attested TWINE enclave, over a channel the host cannot eavesdrop:
//
//  1. the enclave generates an X25519 key pair inside the enclave and
//     obtains a quote whose report data binds the public key;
//  2. the provider verifies the quote with the attestation service,
//     checks the enclave measurement, derives the shared secret and
//     sends the module encrypted with AES-256-GCM;
//  3. the enclave derives the same secret and decrypts the module into
//     reserved memory. Code confidentiality holds end to end (§IV-B).

// ErrAttestation reports a failed verification during provisioning.
var ErrAttestation = errors.New("twine: attestation failed")

type provisionHello struct {
	Quote     sgx.Quote `json:"quote"`
	ClientPub []byte    `json:"client_pub"`
}

type provisionReply struct {
	ServerPub []byte `json:"server_pub"`
	Nonce     []byte `json:"nonce"`
	Module    []byte `json:"module"` // AES-256-GCM ciphertext
}

// Provider is the application provider side of provisioning.
type Provider struct {
	svc      *sgx.AttestationService
	expected [32]byte
	module   []byte
}

// NewProvider serves wasmModule to enclaves whose measurement matches
// expected, verified through svc.
func NewProvider(svc *sgx.AttestationService, expected [32]byte, wasmModule []byte) *Provider {
	return &Provider{svc: svc, expected: expected, module: wasmModule}
}

// Serve performs one provisioning exchange over conn.
func (p *Provider) Serve(conn io.ReadWriter) error {
	var hello provisionHello
	if err := readMsg(conn, &hello); err != nil {
		return err
	}
	if err := p.svc.Verify(hello.Quote); err != nil {
		return fmt.Errorf("%w: %v", ErrAttestation, err)
	}
	if err := sgx.ExpectedMeasurement(hello.Quote.Report, p.expected); err != nil {
		return fmt.Errorf("%w: %v", ErrAttestation, err)
	}
	// The report data must bind the client public key to the quote.
	bind := sha256.Sum256(hello.ClientPub)
	if [32]byte(hello.Quote.Report.Data[:32]) != bind {
		return fmt.Errorf("%w: report does not bind the session key", ErrAttestation)
	}

	curve := ecdh.X25519()
	serverKey, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	clientPub, err := curve.NewPublicKey(hello.ClientPub)
	if err != nil {
		return fmt.Errorf("%w: bad client key: %v", ErrAttestation, err)
	}
	shared, err := serverKey.ECDH(clientPub)
	if err != nil {
		return err
	}
	aead, err := sessionAEAD(shared)
	if err != nil {
		return err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	reply := provisionReply{
		ServerPub: serverKey.PublicKey().Bytes(),
		Nonce:     nonce,
		Module:    aead.Seal(nil, nonce, p.module, []byte("twine-module")),
	}
	return writeMsg(conn, &reply)
}

// FetchModule runs the enclave side of provisioning and loads the
// received module.
func (rt *Runtime) FetchModule(conn io.ReadWriter) (*Module, error) {
	curve := ecdh.X25519()
	var clientKey *ecdh.PrivateKey
	// Key generation happens inside the enclave: the private key never
	// exists outside.
	err := rt.Enclave.ECall("twine_keygen", func() error {
		var kerr error
		clientKey, kerr = curve.GenerateKey(rand.Reader)
		return kerr
	})
	if err != nil {
		return nil, err
	}
	pub := clientKey.PublicKey().Bytes()
	bind := sha256.Sum256(pub)
	quote, err := rt.Platform.Quote(rt.Enclave, bind[:])
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, &provisionHello{Quote: quote, ClientPub: pub}); err != nil {
		return nil, err
	}
	var reply provisionReply
	if err := readMsg(conn, &reply); err != nil {
		return nil, err
	}
	serverPub, err := curve.NewPublicKey(reply.ServerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: bad server key: %v", ErrAttestation, err)
	}
	var wasmBytes []byte
	err = rt.Enclave.ECall("twine_unwrap_module", func() error {
		shared, derr := clientKey.ECDH(serverPub)
		if derr != nil {
			return derr
		}
		aead, derr := sessionAEAD(shared)
		if derr != nil {
			return derr
		}
		pt, derr := aead.Open(nil, reply.Nonce, reply.Module, []byte("twine-module"))
		if derr != nil {
			return fmt.Errorf("%w: module decryption: %v", ErrAttestation, derr)
		}
		wasmBytes = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rt.LoadModule(wasmBytes)
}

// sessionAEAD derives the channel cipher from the ECDH shared secret.
func sessionAEAD(shared []byte) (cipher.AEAD, error) {
	key := sha256.Sum256(append([]byte("twine-session-v1:"), shared...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Length-prefixed JSON framing.
func writeMsg(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func readMsg(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return fmt.Errorf("twine: oversized provisioning message (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}
