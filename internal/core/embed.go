package core

import (
	"fmt"

	"twine/internal/litedb"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// Embedded database support: TWINE's showcase application is SQLite run as
// a Wasm module (§V). The reproduction's database engine executes against
// the runtime's sandboxed linear memory and WASI layer (DESIGN.md §1): the
// page cache lives inside guest memory, and all file I/O passes through
// the registered wasi_snapshot_preview1 host functions.

// EmbeddedDB bundles the shim instance and the database handle.
type EmbeddedDB struct {
	rt   *Runtime
	inst *Instance
	In   *wasm.Instance
	DB   *litedb.DB
	mod  *Module
	cfg  DBConfig
}

// guestECall enters the enclave for database work and flushes the shim
// instance's own WASI state on exit (each instance carries its own
// write-batch state since PR 3).
func (e *EmbeddedDB) guestECall(name string, fn func() error) error {
	return e.rt.guestECallSys(name, e.inst.Sys, fn)
}

// DBConfig sizes an embedded database.
type DBConfig struct {
	// Name is the database file name (litedb.MemoryDBName for in-memory).
	Name string
	// CachePages is the page-cache size (default 2,048 = 8 MiB).
	CachePages int
	// GuestMemPages sizes the guest linear memory in 64 KiB pages;
	// it must hold the marshal window plus the page cache
	// (default: enough for the cache + 128 KiB scratch).
	GuestMemPages uint32
	// Sync/Journal mirror the litedb options.
	Sync    litedb.SyncMode
	Journal litedb.JournalMode
	// MemVFS forces a purely in-memory database whose backing store is
	// still charged against the enclave (Figure 5's in-memory variants).
	MemVFS bool
}

// shimModule builds the guest module whose linear memory hosts the
// database buffers.
func shimModule(pages uint32) []byte {
	m := wasmgen.NewModule()
	m.Memory(pages, pages)
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("_start", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// scratchBytes is the WASI marshal window size.
const scratchBytes = 128 << 10

// OpenDB opens a database inside the runtime: guest memory is allocated
// in the enclave, the page cache is placed in it, and I/O flows through
// WASI to the configured backend (IPFS or host POSIX).
func (rt *Runtime) OpenDB(cfg DBConfig) (*EmbeddedDB, error) {
	if cfg.CachePages <= 0 {
		cfg.CachePages = litedb.DefaultCachePages
	}
	if cfg.GuestMemPages == 0 {
		need := uint32((cfg.CachePages*litedb.PageSize + scratchBytes + wasm.PageSize - 1) / wasm.PageSize)
		cfg.GuestMemPages = need + 2
	}
	mod, err := rt.LoadModule(shimModule(cfg.GuestMemPages))
	if err != nil {
		return nil, fmt.Errorf("twine: shim module: %w", err)
	}
	return rt.openEmbedded(mod, cfg)
}

// openEmbedded instantiates the (already loaded) shim module and opens
// the database over it. Split from OpenDB so Reopen can rebuild a handle
// without loading another module copy into the enclave's reserved region.
func (rt *Runtime) openEmbedded(mod *Module, cfg DBConfig) (*EmbeddedDB, error) {
	inst, err := rt.NewInstance(mod)
	if err != nil {
		return nil, err
	}

	store, err := litedb.NewSandboxStore(inst.In.Memory(), scratchBytes, cfg.CachePages)
	if err != nil {
		return nil, err
	}

	var vfs litedb.VFS
	if cfg.MemVFS || cfg.Name == litedb.MemoryDBName {
		// In-memory database: backing bytes are charged against the
		// enclave through the touch hook (they live in guest address
		// space conceptually).
		mv := litedb.NewMemVFS()
		base := inst.arena
		mem := rt.Enclave.Memory()
		limit := mem.Size() - base
		mv.Touch = func(off, n int64) {
			if off < 0 {
				return
			}
			if off+n > limit {
				off = (off + n) % limit
				n = 1
			}
			_ = mem.Touch(base+off, n)
		}
		vfs = mv
		if cfg.Journal == litedb.JournalDelete {
			cfg.Journal = litedb.JournalMemory
		}
	} else {
		wvfs, err := litedb.NewWASIVFS(rt.Imports, inst.In, 0, scratchBytes)
		if err != nil {
			return nil, err
		}
		vfs = wvfs
	}

	edb := &EmbeddedDB{rt: rt, inst: inst, In: inst.In, mod: mod, cfg: cfg}
	var db *litedb.DB
	err = edb.guestECall("twine_db_open", func() error {
		var oerr error
		db, oerr = litedb.Open(vfs, cfg.Name, litedb.Options{
			CachePages: cfg.CachePages,
			Store:      store,
			Sync:       cfg.Sync,
			Journal:    cfg.Journal,
			Prof:       rt.prof,
		})
		return oerr
	})
	if err != nil {
		return nil, err
	}
	edb.DB = db
	return edb, nil
}

// Reopen closes the handle and rebuilds it from the sealed file, reusing
// the cached shim module: a fresh instance arena, page store and VFS, but
// no new reserved-region load. Snapshot-cloned read replicas refresh this
// way after each group commit advances the shard epoch.
func (e *EmbeddedDB) Reopen() error {
	if err := e.guestECall("twine_db_close", func() error { return e.DB.Close() }); err != nil {
		return err
	}
	if err := e.inst.Release(); err != nil {
		return err
	}
	ne, err := e.rt.openEmbedded(e.mod, e.cfg)
	if err != nil {
		return err
	}
	*e = *ne
	return nil
}

// Exec runs SQL inside the enclave.
func (e *EmbeddedDB) Exec(sql string, args ...litedb.Value) (int64, error) {
	var n int64
	err := e.guestECall("twine_db_exec", func() error {
		var xerr error
		n, xerr = e.DB.Exec(sql, args...)
		return xerr
	})
	return n, err
}

// Query runs a SELECT inside the enclave.
func (e *EmbeddedDB) Query(sql string, args ...litedb.Value) (*litedb.Rows, error) {
	var rows *litedb.Rows
	err := e.guestECall("twine_db_query", func() error {
		var qerr error
		rows, qerr = e.DB.Query(sql, args...)
		return qerr
	})
	return rows, err
}

// ExecStmt runs one pre-parsed statement inside the enclave.
func (e *EmbeddedDB) ExecStmt(st litedb.Stmt, args ...litedb.Value) (int64, error) {
	var n int64
	err := e.guestECall("twine_db_exec", func() error {
		var xerr error
		n, xerr = e.DB.ExecStmt(st, args...)
		return xerr
	})
	return n, err
}

// QueryStmt runs one pre-parsed SELECT (or PRAGMA) inside the enclave.
func (e *EmbeddedDB) QueryStmt(st litedb.Stmt, args ...litedb.Value) (*litedb.Rows, error) {
	var rows *litedb.Rows
	err := e.guestECall("twine_db_query", func() error {
		var qerr error
		rows, qerr = e.DB.QueryStmt(st, args...)
		return qerr
	})
	return rows, err
}

// Batch runs fn against the database inside ONE enclave crossing, so a
// group-committed transaction — BEGIN, every batched statement, COMMIT —
// pays a single ECall and a single protected-FS flush on exit. This is
// the shard service's write path.
func (e *EmbeddedDB) Batch(fn func(db *litedb.DB) error) error {
	return e.guestECall("twine_db_batch", func() error { return fn(e.DB) })
}

// Close closes the database inside the enclave.
func (e *EmbeddedDB) Close() error {
	return e.guestECall("twine_db_close", func() error { return e.DB.Close() })
}

// Release closes the database and frees the shim instance's arena.
func (e *EmbeddedDB) Release() error {
	err := e.Close()
	if rerr := e.inst.Release(); err == nil {
		err = rerr
	}
	return err
}

// --- streaming queries ---

// streamBatch is how many rows one fetch ECall pulls from the in-enclave
// cursor: large enough to amortise the crossing, small enough to keep the
// host-side buffer bounded.
const streamBatch = 128

// DBStream is a streaming cursor over an embedded database query. Rows
// are produced by a litedb.RowIter inside the enclave and pulled across
// the boundary in batches of streamBatch rows, so the host never holds a
// full result set. The handle must not run other statements until the
// stream is closed.
type DBStream struct {
	e    *EmbeddedDB
	it   *litedb.RowIter
	buf  [][]litedb.Value
	pos  int
	cur  []litedb.Value
	err  error
	done bool
}

// QueryStream starts a streaming query inside the enclave.
func (e *EmbeddedDB) QueryStream(sql string, args ...litedb.Value) (*DBStream, error) {
	var it *litedb.RowIter
	err := e.guestECall("twine_db_query", func() error {
		var qerr error
		it, qerr = e.DB.QueryIter(sql, args...)
		return qerr
	})
	if err != nil {
		return nil, err
	}
	return &DBStream{e: e, it: it}, nil
}

// Cols returns the result column names.
func (s *DBStream) Cols() []string { return s.it.Cols() }

// Next advances to the next row, refilling from the enclave cursor when
// the host-side batch is exhausted.
func (s *DBStream) Next() bool {
	if s.pos < len(s.buf) {
		s.cur = s.buf[s.pos]
		s.pos++
		return true
	}
	if s.done || s.err != nil {
		return false
	}
	s.buf = s.buf[:0]
	s.pos = 0
	err := s.e.guestECall("twine_db_fetch", func() error {
		for len(s.buf) < streamBatch {
			if !s.it.Next() {
				s.done = true
				return s.it.Err()
			}
			s.buf = append(s.buf, s.it.Row())
		}
		return nil
	})
	if err != nil {
		s.err = err
		return false
	}
	if len(s.buf) == 0 {
		return false
	}
	s.cur = s.buf[0]
	s.pos = 1
	return true
}

// Row returns the current row after Next reported true.
func (s *DBStream) Row() []litedb.Value { return s.cur }

// Err returns the error that terminated the stream, if any.
func (s *DBStream) Err() error { return s.err }

// MaxBuffered reports the bounded-memory high-water mark: in-enclave
// channel occupancy plus the host-side refill batch.
func (s *DBStream) MaxBuffered() int64 { return s.it.MaxBuffered() + streamBatch }

// Close stops the in-enclave producer and frees the handle for the next
// statement.
func (s *DBStream) Close() error {
	err := s.e.guestECall("twine_db_fetch", func() error { return s.it.Close() })
	if s.err == nil && err != nil {
		s.err = err
	}
	return s.err
}
