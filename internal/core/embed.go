package core

import (
	"fmt"

	"twine/internal/litedb"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// Embedded database support: TWINE's showcase application is SQLite run as
// a Wasm module (§V). The reproduction's database engine executes against
// the runtime's sandboxed linear memory and WASI layer (DESIGN.md §1): the
// page cache lives inside guest memory, and all file I/O passes through
// the registered wasi_snapshot_preview1 host functions.

// EmbeddedDB bundles the shim instance and the database handle.
type EmbeddedDB struct {
	rt   *Runtime
	inst *Instance
	In   *wasm.Instance
	DB   *litedb.DB
	mod  *Module
}

// guestECall enters the enclave for database work and flushes the shim
// instance's own WASI state on exit (each instance carries its own
// write-batch state since PR 3).
func (e *EmbeddedDB) guestECall(name string, fn func() error) error {
	return e.rt.guestECallSys(name, e.inst.Sys, fn)
}

// DBConfig sizes an embedded database.
type DBConfig struct {
	// Name is the database file name (litedb.MemoryDBName for in-memory).
	Name string
	// CachePages is the page-cache size (default 2,048 = 8 MiB).
	CachePages int
	// GuestMemPages sizes the guest linear memory in 64 KiB pages;
	// it must hold the marshal window plus the page cache
	// (default: enough for the cache + 128 KiB scratch).
	GuestMemPages uint32
	// Sync/Journal mirror the litedb options.
	Sync    litedb.SyncMode
	Journal litedb.JournalMode
	// MemVFS forces a purely in-memory database whose backing store is
	// still charged against the enclave (Figure 5's in-memory variants).
	MemVFS bool
}

// shimModule builds the guest module whose linear memory hosts the
// database buffers.
func shimModule(pages uint32) []byte {
	m := wasmgen.NewModule()
	m.Memory(pages, pages)
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("_start", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// scratchBytes is the WASI marshal window size.
const scratchBytes = 128 << 10

// OpenDB opens a database inside the runtime: guest memory is allocated
// in the enclave, the page cache is placed in it, and I/O flows through
// WASI to the configured backend (IPFS or host POSIX).
func (rt *Runtime) OpenDB(cfg DBConfig) (*EmbeddedDB, error) {
	if cfg.CachePages <= 0 {
		cfg.CachePages = litedb.DefaultCachePages
	}
	if cfg.GuestMemPages == 0 {
		need := uint32((cfg.CachePages*litedb.PageSize + scratchBytes + wasm.PageSize - 1) / wasm.PageSize)
		cfg.GuestMemPages = need + 2
	}
	mod, err := rt.LoadModule(shimModule(cfg.GuestMemPages))
	if err != nil {
		return nil, fmt.Errorf("twine: shim module: %w", err)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		return nil, err
	}

	store, err := litedb.NewSandboxStore(inst.In.Memory(), scratchBytes, cfg.CachePages)
	if err != nil {
		return nil, err
	}

	var vfs litedb.VFS
	if cfg.MemVFS || cfg.Name == litedb.MemoryDBName {
		// In-memory database: backing bytes are charged against the
		// enclave through the touch hook (they live in guest address
		// space conceptually).
		mv := litedb.NewMemVFS()
		base := inst.arena
		mem := rt.Enclave.Memory()
		limit := mem.Size() - base
		mv.Touch = func(off, n int64) {
			if off < 0 {
				return
			}
			if off+n > limit {
				off = (off + n) % limit
				n = 1
			}
			_ = mem.Touch(base+off, n)
		}
		vfs = mv
		if cfg.Journal == litedb.JournalDelete {
			cfg.Journal = litedb.JournalMemory
		}
	} else {
		wvfs, err := litedb.NewWASIVFS(rt.Imports, inst.In, 0, scratchBytes)
		if err != nil {
			return nil, err
		}
		vfs = wvfs
	}

	edb := &EmbeddedDB{rt: rt, inst: inst, In: inst.In, mod: mod}
	var db *litedb.DB
	err = edb.guestECall("twine_db_open", func() error {
		var oerr error
		db, oerr = litedb.Open(vfs, cfg.Name, litedb.Options{
			CachePages: cfg.CachePages,
			Store:      store,
			Sync:       cfg.Sync,
			Journal:    cfg.Journal,
			Prof:       rt.prof,
		})
		return oerr
	})
	if err != nil {
		return nil, err
	}
	edb.DB = db
	return edb, nil
}

// Exec runs SQL inside the enclave.
func (e *EmbeddedDB) Exec(sql string, args ...litedb.Value) (int64, error) {
	var n int64
	err := e.guestECall("twine_db_exec", func() error {
		var xerr error
		n, xerr = e.DB.Exec(sql, args...)
		return xerr
	})
	return n, err
}

// Query runs a SELECT inside the enclave.
func (e *EmbeddedDB) Query(sql string, args ...litedb.Value) (*litedb.Rows, error) {
	var rows *litedb.Rows
	err := e.guestECall("twine_db_query", func() error {
		var qerr error
		rows, qerr = e.DB.Query(sql, args...)
		return qerr
	})
	return rows, err
}

// Close closes the database inside the enclave.
func (e *EmbeddedDB) Close() error {
	return e.guestECall("twine_db_close", func() error { return e.DB.Close() })
}
