package core

import (
	"sort"
	"sync"
	"time"
)

// The instance-granularity swap tier (PR 9). The page-level clock sweep
// (internal/sgx) reclaims EPC one 4 KiB page at a time and pays eviction
// cost for pages that will be faulted straight back; when the resident
// *instances* outnumber what the EPC can hold, the right unit of
// reclamation is a whole idle instance. A swapGroup is the registry-wide
// controller: it counts resident warm workers across every enrolled
// pool, and when the count exceeds MaxResident — or the reaper finds
// workers idle past the age threshold — it suspends victims: seal the
// worker's state to untrusted storage, release its arena. Suspension is
// invisible to Submit: acquiring a suspended worker transparently
// resumes it (Pool.resumeWorker).
//
// Victim selection is working-set-weighted, coldest-largest first: fewest
// referenced pages (the clock has swept them — the instance is not in the
// current working set), then most resident pages (reclaims the most EPC),
// then longest idle (LRU tiebreak, which is what keeps a hot set resident
// under a skewed tenant mix). Only idle workers are eligible — a worker
// serving a request is never quiesced under it — and pinned pools are
// exempt.
type swapGroup struct {
	// max is the resident warm-worker bound (0 = unbounded: only the
	// reaper suspends).
	max int

	mu       sync.Mutex
	resident int // warm workers currently holding an arena (+ reservations)
	pools    []*Pool
}

// swapVictim is one idle worker as seen by victim selection.
type swapVictim struct {
	p          *Pool
	w          *worker
	resident   int
	referenced int
	idleSince  time.Time
}

// enroll adds a pool's warm workers to the group's residency accounting
// and immediately enforces the bound — registering tenant N+1 under
// pressure suspends the coldest idle workers, wherever they live.
func (sg *swapGroup) enroll(p *Pool, workers int) {
	sg.mu.Lock()
	sg.pools = append(sg.pools, p)
	sg.resident += workers
	sg.shrinkLocked(sg.max)
	sg.mu.Unlock()
}

// reserve claims one residency slot for a resume, suspending victims
// until the incoming worker fits under the bound. When no victim is idle
// the group over-commits — admission pressure then falls through to the
// page-level clock sweep, and the next release/idle cycle re-balances.
func (sg *swapGroup) reserve() {
	sg.mu.Lock()
	sg.shrinkLocked(sg.max - 1)
	sg.resident++
	sg.mu.Unlock()
}

// unreserve hands a reservation back (the resume failed).
func (sg *swapGroup) unreserve() {
	sg.mu.Lock()
	sg.resident--
	sg.mu.Unlock()
}

// shrinkLocked suspends coldest-largest idle victims until at most
// target workers are resident or no victim remains. Called with sg.mu
// held; pool locks and the suspend ECALLs nest inside, serialising
// reclamation — the same discipline a kernel reclaim path has, and what
// keeps two concurrent resumes from suspending twice as much as needed.
func (sg *swapGroup) shrinkLocked(target int) {
	if sg.max <= 0 {
		return
	}
	for sg.resident > target {
		if !sg.suspendOneLocked(0) {
			return
		}
	}
}

// evictOne suspends a single victim regardless of the bound — the
// allocation-pressure path: a resume (or cold instantiation) that cannot
// find enclave heap for an arena frees one instance's worth and retries.
func (sg *swapGroup) evictOne() bool {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.suspendOneLocked(0)
}

// suspendIdle suspends every eligible worker idle for at least age,
// coldest first (the background reaper's harvest; age 0 drains all idle
// workers). Returns how many were suspended.
func (sg *swapGroup) suspendIdle(age time.Duration) int {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	n := 0
	for sg.suspendOneLocked(age) {
		n++
	}
	return n
}

// victimLess orders candidates best-victim-first: fewest referenced
// pages (out of the clock's working set), then most resident pages
// (largest EPC reclaim), then longest idle (LRU — the tiebreak that
// keeps a hot tenant set resident under a skewed mix).
func victimLess(a, b swapVictim) bool {
	if a.referenced != b.referenced {
		return a.referenced < b.referenced
	}
	if a.resident != b.resident {
		return a.resident > b.resident
	}
	return a.idleSince.Before(b.idleSince)
}

// suspendOneLocked picks and suspends the single best victim: fewest
// referenced pages, then most resident pages, then longest idle. A
// candidate stolen from under us (a concurrent acquire won) or failing
// to suspend is skipped; false means no victim could be suspended.
func (sg *swapGroup) suspendOneLocked(minIdle time.Duration) bool {
	now := time.Now()
	var cands []swapVictim
	for _, p := range sg.pools {
		cands = append(cands, p.victimCandidates(minIdle, now)...)
	}
	sort.Slice(cands, func(i, j int) bool { return victimLess(cands[i], cands[j]) })
	for _, v := range cands {
		if !v.p.stealWorker(v.w) {
			continue
		}
		if err := v.p.suspendWorker(v.w); err != nil {
			v.p.release(v.w)
			continue
		}
		v.p.release(v.w)
		sg.resident--
		return true
	}
	return false
}
