package core

import (
	"testing"

	"twine/internal/wasm"
)

// runTierSweep executes the Fig5-style paging sweep (fidelity_test.go)
// under one engine and reports the paging outcome.
func runTierSweep(t *testing.T, eng wasm.Engine, elems, rounds int, epcUsable int64) paging {
	t.Helper()
	cfg := testConfig(func(c *Config) {
		c.SGX.EPCSize = 2 * epcUsable
		c.SGX.EPCUsable = epcUsable
		c.SGX.HeapSize = 8 << 20
		c.Engine = eng
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	mod, err := rt.LoadModule(sweepModule(elems, rounds))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	var sum uint64
	for i := 0; i < 2; i++ { // cold and warm EPC-TLB
		out, err := inst.Invoke("run")
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		sum = out[0]
	}
	m := rt.Enclave.Memory()
	return paging{faults: m.Faults(), evictions: m.Evictions(), checksum: sum}
}

// TestTierFidelityPaging is the register-tier acceptance guard for SGX
// accounting: under a paging-heavy sweep all four engines must report
// bit-identical fault and eviction counts and checksums. The register
// tier's hoisted guards only run raw windows where every touch would
// have been a no-op; under eviction pressure the guards keep failing
// into their checked fallbacks, which are instruction-for-instruction
// the same accesses the stack tiers perform.
func TestTierFidelityPaging(t *testing.T) {
	interp := runTierSweep(t, wasm.EngineInterp, 32<<10, 3, 64<<10)
	aot := runTierSweep(t, wasm.EngineAOT, 32<<10, 3, 64<<10)
	reg := runTierSweep(t, wasm.EngineRegister, 32<<10, 3, 64<<10)
	super := runTierSweep(t, wasm.EngineSuperblock, 32<<10, 3, 64<<10)

	if aot != interp {
		t.Errorf("aot diverged from interp: %+v vs %+v", aot, interp)
	}
	if reg != interp {
		t.Errorf("register tier diverged from interp: %+v vs %+v", reg, interp)
	}
	if super != interp {
		t.Errorf("superblock tier diverged from interp: %+v vs %+v", super, interp)
	}
	if interp.evictions == 0 {
		t.Fatal("sweep caused no evictions; enlarge the workload")
	}
}

// TestTierFidelityHotEPC repeats the comparison with the working set
// resident: here the register tier's guards PASS (pages stay hot), the
// raw windows run, and the counters must still match — the regime where
// an unsoundly-skipped touch would show up.
func TestTierFidelityHotEPC(t *testing.T) {
	interp := runTierSweep(t, wasm.EngineInterp, 2<<10, 3, 24<<20)
	aot := runTierSweep(t, wasm.EngineAOT, 2<<10, 3, 24<<20)
	reg := runTierSweep(t, wasm.EngineRegister, 2<<10, 3, 24<<20)
	super := runTierSweep(t, wasm.EngineSuperblock, 2<<10, 3, 24<<20)

	if aot != interp {
		t.Errorf("aot diverged from interp: %+v vs %+v", aot, interp)
	}
	if reg != interp {
		t.Errorf("register tier diverged from interp: %+v vs %+v", reg, interp)
	}
	if super != interp {
		t.Errorf("superblock tier diverged from interp: %+v vs %+v", super, interp)
	}
	if interp.evictions != 0 {
		t.Fatalf("resident working set evicted (%d); shrink the workload", interp.evictions)
	}
}
