package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// PR 9 swap-tier coverage: suspend/resume fidelity against a
// never-suspended control, the MaxResident bound and its conservation
// law, pinned-tenant exemption, victim ordering, the reaper, and the
// heap-pressure eviction retry.

// accumModule builds the swap tests' stateful guest: run(x) accumulates
// x into two cells on different 4 KiB chunks (so a suspend delta spans
// chunks) and returns their sum; run(13) traps after no mutation. State
// surviving a suspend/resume cycle is visible in the running sum.
func accumModule() []byte {
	m := wasmgen.NewModule()
	m.Memory(2, 2)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockVoid)
	f.LocalGet(0).I32Const(13).I32Ne().BrIf(0)
	f.Unreachable()
	f.End()
	// mem[8] += x on the first wasm page, mem[70000] += x on the second.
	f.I32Const(8).I32Const(8).I32Load(0).LocalGet(0).I32Add().I32Store(0)
	f.I32Const(70000).I32Const(70000).I32Load(0).LocalGet(0).I32Add().I32Store(0)
	f.I32Const(8).I32Load(0).I32Const(70000).I32Load(0).I32Add()
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

type fidelityRun struct {
	outs     []uint64
	last     [4]int64 // ECalls/OCalls/faults/evictions around the final submit
	total    [4]int64 // same, around the whole run
	trap     *wasm.Trap
	suspends int64
	resumes  int64
}

// driveFidelity runs the same stateful schedule with or without a
// suspend/resume cycle in the middle, on a fresh single-TCS runtime with
// switchless off so enclave transitions count exactly.
func driveFidelity(t *testing.T, withSwap bool) fidelityRun {
	t.Helper()
	cfg := testConfig(func(c *Config) {
		c.SGX.TCSNum = 1
		c.Switchless = SwitchlessOff
		// Roomy EPC: fidelity compares eviction counters, so the workload
		// itself must not sweep — any divergence is then the swap tier's.
		// The heap must fit under usable EPC with headroom (heap pages are
		// resident from enclave init).
		c.SGX.HeapSize = 16 << 20
		c.SGX.EPCSize = 64 << 20
		c.SGX.EPCUsable = 48 << 20
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Enclave.Destroy()
	var rcfg RegistryConfig
	if withSwap {
		rcfg.MaxResident = 1
	}
	reg := rt.NewRegistry(rcfg)
	defer reg.Close()
	ten, err := reg.Register("acc", accumModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	grab := func() [4]int64 {
		s := rt.Enclave.Stats()
		return [4]int64{s.ECalls, s.OCalls, s.PageFaults, s.Evictions}
	}
	delta := func(a, b [4]int64) (d [4]int64) {
		for i := range d {
			d[i] = b[i] - a[i]
		}
		return
	}
	var r fidelityRun
	submit := func(x uint64) {
		out, serr := ten.Submit(x)
		if serr != nil {
			t.Fatalf("Submit(%d): %v", x, serr)
		}
		r.outs = append(r.outs, out[0])
	}

	base := grab()
	submit(1)
	submit(2)
	submit(3)
	if withSwap {
		if n := reg.SuspendIdle(0); n != 1 {
			t.Fatalf("SuspendIdle = %d, want 1", n)
		}
	}
	submit(4) // on the swap run this request transparently resumes
	pre := grab()
	submit(5) // post-resume steady state: must cost exactly what control costs
	r.last = delta(pre, grab())

	if _, terr := ten.Submit(13); !errors.As(terr, &r.trap) {
		t.Fatalf("Submit(13) = %v, want *wasm.Trap", terr)
	}
	r.total = delta(base, grab())
	s := ten.Stats()
	r.suspends, r.resumes = s.Pool.Suspends, s.Pool.Resumes
	return r
}

// TestSuspendResumeFidelity is the PR 9 acceptance guard: a worker that
// was suspended to sealed storage and resumed must be bit-identical to
// one that never left the EPC — same results, same trap kind, and, once
// resumed, the same enclave transition counters per request. Over the
// whole run the swap side may differ by exactly its own ECALLs (one
// twine_suspend, one twine_resume) and the faults of paging the restored
// state back in — nothing else.
func TestSuspendResumeFidelity(t *testing.T) {
	ctrl := driveFidelity(t, false)
	swap := driveFidelity(t, true)

	if len(ctrl.outs) != len(swap.outs) {
		t.Fatalf("schedule lengths diverged: %d vs %d", len(ctrl.outs), len(swap.outs))
	}
	for i := range ctrl.outs {
		if ctrl.outs[i] != swap.outs[i] {
			t.Errorf("request %d: control %d, suspended/resumed %d", i, ctrl.outs[i], swap.outs[i])
		}
	}
	if swap.suspends != 1 || swap.resumes != 1 {
		t.Fatalf("swap run did %d suspends / %d resumes, want 1/1", swap.suspends, swap.resumes)
	}
	if ctrl.suspends != 0 || ctrl.resumes != 0 {
		t.Fatalf("control run touched the swap tier: %d/%d", ctrl.suspends, ctrl.resumes)
	}
	// Steady state after the resume: identical ECALL/OCALL/fault/eviction
	// cost per request.
	if ctrl.last != swap.last {
		t.Errorf("post-resume request cost diverged: control %v, swap %v (ECalls, OCalls, faults, evictions)", ctrl.last, swap.last)
	}
	// Whole run: the swap side's ECALLs are control plus exactly its own.
	if want := ctrl.total[0] + swap.suspends + swap.resumes; swap.total[0] != want {
		t.Errorf("swap run ECalls = %d, want %d (control %d + suspend/resume)", swap.total[0], want, ctrl.total[0])
	}
	if swap.total[1] != ctrl.total[1] {
		t.Errorf("OCalls diverged: control %d, swap %d", ctrl.total[1], swap.total[1])
	}
	if swap.total[3] != ctrl.total[3] {
		t.Errorf("evictions diverged: control %d, swap %d", ctrl.total[3], swap.total[3])
	}
	if ctrl.trap.Kind != swap.trap.Kind {
		t.Errorf("trap kind diverged: control %v, swap %v", ctrl.trap.Kind, swap.trap.Kind)
	}
}

// TestSwapBoundConservation: with four one-worker tenants under
// MaxResident 2, two are always suspended at rest, submits to suspended
// tenants transparently resume (displacing others), every tenant's
// accumulator survives arbitrarily many swap cycles, and the counters
// obey Suspends == Resumes + Suspended.
func TestSwapBoundConservation(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{MaxResident: 2})
	defer reg.Close()

	const tenants = 4
	for i := 0; i < tenants; i++ {
		if _, err := reg.Register(fmt.Sprintf("t%d", i), accumModule(), TenantConfig{Stateful: true}); err != nil {
			t.Fatalf("register t%d: %v", i, err)
		}
	}
	if s := reg.Stats(); s.Suspended != tenants-2 {
		t.Fatalf("after registering %d tenants under bound 2: %d suspended, want %d", tenants, s.Suspended, tenants-2)
	}

	for round := 1; round <= 3; round++ {
		for i := 0; i < tenants; i++ {
			out, err := reg.Submit(fmt.Sprintf("t%d", i), 1)
			if err != nil {
				t.Fatalf("round %d t%d: %v", round, i, err)
			}
			// Two cells accumulate 1 per round; state must have survived
			// this tenant's suspensions.
			if out[0] != uint64(2*round) {
				t.Errorf("round %d t%d = %d, want %d (state lost across swap)", round, i, out[0], 2*round)
			}
		}
	}

	s := reg.Stats()
	if s.Suspends == 0 || s.Resumes == 0 || s.SealBytes == 0 {
		t.Fatalf("round-robin under pressure did not exercise the swap tier: %+v", s)
	}
	if s.Suspends != s.Resumes+s.Suspended {
		t.Errorf("conservation broken: Suspends %d != Resumes %d + Suspended %d", s.Suspends, s.Resumes, s.Suspended)
	}
	if s.Suspended != tenants-2 {
		t.Errorf("at rest %d suspended, want %d (bound not enforced)", s.Suspended, tenants-2)
	}
}

// TestSwapPinnedExempt: a pinned tenant's workers are never chosen as
// victims — pressure lands entirely on the unpinned tenant.
func TestSwapPinnedExempt(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{MaxResident: 1})
	defer reg.Close()

	pinned, err := reg.Register("pinned", accumModule(), TenantConfig{Stateful: true, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := reg.Register("plain", accumModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	// Registering "plain" pushed residency to 2 over a bound of 1; the
	// only eligible victim is plain's own worker.
	if s := reg.Stats(); s.Suspended != 1 || pinned.Stats().Pool.Suspends != 0 {
		t.Fatalf("registration pressure chose the wrong victim: %+v", s)
	}

	// Serving the suspended tenant over-commits (the pinned worker cannot
	// be displaced) and an explicit drain re-suspends only the unpinned one.
	if out, err := plain.Submit(2); err != nil || out[0] != 4 {
		t.Fatalf("plain submit = %v, %v", out, err)
	}
	if n := reg.SuspendIdle(0); n != 1 {
		t.Fatalf("SuspendIdle = %d, want 1 (only the unpinned worker)", n)
	}
	if got := pinned.Stats().Pool.Suspends; got != 0 {
		t.Errorf("pinned tenant suspended %d times, want 0", got)
	}
	if got := plain.Stats().Pool.Suspends; got != 2 {
		t.Errorf("plain tenant suspended %d times, want 2", got)
	}
	// The pinned tenant stayed warm and correct throughout.
	if out, err := pinned.Submit(3); err != nil || out[0] != 6 {
		t.Fatalf("pinned submit = %v, %v", out, err)
	}
}

// TestVictimOrdering pins the working-set weighting: fewest referenced
// pages first (out of the clock's working set), then most resident pages
// (biggest reclaim), then longest idle (LRU tiebreak).
func TestVictimOrdering(t *testing.T) {
	t0 := time.Unix(1000, 0)
	cold := swapVictim{referenced: 0, resident: 8, idleSince: t0}
	coldSmall := swapVictim{referenced: 0, resident: 2, idleSince: t0}
	warm := swapVictim{referenced: 4, resident: 8, idleSince: t0.Add(-time.Hour)}
	older := swapVictim{referenced: 0, resident: 8, idleSince: t0.Add(-time.Minute)}

	if !victimLess(cold, warm) || victimLess(warm, cold) {
		t.Error("swept (unreferenced) worker must be a better victim than a working-set one, whatever the idle age")
	}
	if !victimLess(cold, coldSmall) || victimLess(coldSmall, cold) {
		t.Error("among equally cold workers the larger resident footprint must go first")
	}
	if !victimLess(older, cold) || victimLess(cold, older) {
		t.Error("with equal working sets the longer-idle worker must go first")
	}
}

// TestSwapResumeEvictsUnderHeapPressure: when a resume cannot allocate
// its arena (enclave heap exhausted — physics, not the MaxResident
// policy), resumeWorker evicts one victim per retry until the arena
// fits, instead of failing the request.
func TestSwapResumeEvictsUnderHeapPressure(t *testing.T) {
	cfg := testConfig(func(c *Config) {
		c.SGX.HeapSize = 2 << 20
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Enclave.Destroy()
	// A high bound: the only pressure in this test is the heap itself.
	reg := rt.NewRegistry(RegistryConfig{MaxResident: 100})
	defer reg.Close()
	a, err := reg.Register("a", accumModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register("b", accumModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}

	// Exhaust the heap tail while both arenas are live (the allocator is
	// exact-fit with no coalescing, so later frees make same-sized holes).
	alloc := rt.Enclave.Allocator()
	for _, chunk := range []int64{1 << 20, 64 << 10, 4 << 10, 8} {
		for {
			if _, err := alloc.Alloc(chunk); err != nil {
				break
			}
		}
	}
	// Suspend both workers: the only free heap is now their two arena
	// holes. Consume one, leaving room for exactly one resumed arena.
	if n := reg.SuspendIdle(0); n != 2 {
		t.Fatalf("SuspendIdle = %d, want 2", n)
	}
	if _, err := alloc.Alloc(64); err != nil {
		t.Fatalf("consuming an arena hole: %v", err)
	}

	// Tenant a resumes into the last hole; tenant b's resume then finds
	// no heap and must displace a to proceed.
	if out, err := a.Submit(1); err != nil || out[0] != 2 {
		t.Fatalf("a.Submit = %v, %v", out, err)
	}
	out, err := b.Submit(1)
	if err != nil {
		t.Fatalf("resume under heap exhaustion: %v", err)
	}
	if out[0] != 2 {
		t.Errorf("b.Submit = %d, want 2 (state lost)", out[0])
	}
	if s := a.Stats().Pool; s.Suspends != 2 || s.Suspended != 1 {
		t.Errorf("heap pressure did not displace the idle worker: %+v", s)
	}
	if s := reg.Stats(); s.Suspends != s.Resumes+s.Suspended {
		t.Errorf("conservation broken: %+v", s)
	}
}

// TestSwapReaper: with IdleSuspendAge set, an idle worker is suspended in
// the background without any admission pressure, and the next Submit
// transparently resumes it with its state intact.
func TestSwapReaper(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{IdleSuspendAge: 20 * time.Millisecond, ReaperInterval: 10 * time.Millisecond})
	defer reg.Close()

	ten, err := reg.Register("idle", accumModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := ten.Submit(5); err != nil || out[0] != 10 {
		t.Fatalf("first submit = %v, %v", out, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for ten.Stats().Pool.Suspended == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never suspended the idle worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	out, err := ten.Submit(7)
	if err != nil {
		t.Fatalf("post-reap submit: %v", err)
	}
	if out[0] != 24 {
		t.Errorf("post-reap submit = %d, want 24 (state lost)", out[0])
	}
	s := ten.Stats()
	if s.Pool.Resumes == 0 || s.Pool.Suspends != s.Pool.Resumes+s.Pool.Suspended {
		t.Errorf("reaper counters inconsistent: %+v", s.Pool)
	}
	if s.ResumeLatency.Count != s.Pool.Resumes {
		t.Errorf("resume histogram saw %d resumes, counters saw %d", s.ResumeLatency.Count, s.Pool.Resumes)
	}
}
