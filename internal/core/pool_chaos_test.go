package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"twine/internal/chaos"
	"twine/internal/sgx"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// PR 6 pool fault-containment coverage: admission control (overload,
// deadlines), deterministic Close, and worker quarantine + repair.

// trapModule builds a worker with a poisoned path: run(0) bumps a memory
// counter and returns it (the stateful baseline); run(x≠0) first bumps
// the counter, then traps — leaving the mutation behind, exactly the
// half-applied state quarantine must scrub.
func trapModule() []byte {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	f.I32Const(0).I32Const(0).I32Load(0).I32Const(1).I32Add().I32Store(0)
	f.Block(wasmgen.BlockVoid)
	f.LocalGet(0).I32Eqz().BrIf(0)
	f.Unreachable()
	f.End()
	f.I32Const(0).I32Load(0)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// occupy drains every worker from the pool's free list so subsequent
// Submits deterministically queue; the returned function puts them back.
func occupy(t *testing.T, pool *Pool) func() {
	t.Helper()
	var held []*worker
	for i := 0; i < pool.Size(); i++ {
		held = append(held, pool.takeWorker(t))
	}
	return func() {
		for _, w := range held {
			pool.release(w)
		}
	}
}

// waitQueueDepth blocks until the pool's queue gauge reaches n.
func waitQueueDepth(t *testing.T, pool *Pool, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().QueueDepth != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", n, pool.Stats().QueueDepth)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestPoolOverloadExactCounters drives the pool through a fully
// deterministic overload episode and requires the exact counter set:
// one request queues (admitted), one is rejected at the cap, the queued
// one completes once a worker frees — Requests=1, Waits=2, Rejected=1,
// TimedOut=0, QueueDepth=0.
func TestPoolOverloadExactCounters(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	release := occupy(t, pool)

	// Request A is admitted to the queue.
	resA := make(chan error, 1)
	go func() {
		_, err := pool.Submit(3)
		resA <- err
	}()
	waitQueueDepth(t, pool, 1)

	// Request B finds the queue at MaxQueue and is rejected immediately.
	if _, err := pool.Submit(4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit over cap = %v, want ErrOverloaded", err)
	}

	// A worker frees; A completes.
	release()
	if err := <-resA; err != nil {
		t.Fatalf("queued Submit: %v", err)
	}

	want := PoolStats{Requests: 1, Waits: 2, Rejected: 1}
	if got := pool.Stats(); got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
}

// TestPoolSubmitTimeout: a queued Submit abandons the wait after
// SubmitTimeout with an ErrOverloaded-wrapped error, counted in TimedOut;
// once a worker frees, the next Submit succeeds.
func TestPoolSubmitTimeout(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1, SubmitTimeout: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	release := occupy(t, pool)
	if _, err := pool.Submit(1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit = %v, want timeout wrapping ErrOverloaded", err)
	}
	if s := pool.Stats(); s.TimedOut != 1 || s.Rejected != 0 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want exactly 1 timed-out", s)
	}
	release()
	if _, err := pool.Submit(1); err != nil {
		t.Fatalf("Submit after worker freed: %v", err)
	}
}

// TestPoolSubmitCtxDeadline: a context deadline bounds the wait (counted
// with the timeouts, classifiable as ErrOverloaded), while plain
// cancellation surfaces as the bare context error — cancellation is the
// caller's choice, not the pool's saturation.
func TestPoolSubmitCtxDeadline(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	release := occupy(t, pool)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = pool.SubmitCtx(ctx, 1)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitCtx = %v, want ErrOverloaded wrapping DeadlineExceeded", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := pool.SubmitCtx(ctx2, 1)
		res <- err
	}()
	waitQueueDepth(t, pool, 1)
	cancel2()
	if err := <-res; !errors.Is(err, context.Canceled) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled SubmitCtx = %v, want bare context.Canceled", err)
	}
	if s := pool.Stats(); s.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1 (the deadline, not the cancellation)", s.TimedOut)
	}
}

// TestPoolCloseReleasesQueuedSubmits is the Close/Submit race contract:
// every Submit queued at Close time observes ErrPoolClosed — even one
// that wins the race for a worker freed after Close — and no worker
// leaks from the free list.
func TestPoolCloseReleasesQueuedSubmits(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	release := occupy(t, pool)

	const queued = 3
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = pool.Submit(1)
		}()
	}
	waitQueueDepth(t, pool, queued)

	_ = pool.Close()
	// The worker frees after Close: a queued Submit may win it, but must
	// hand it back and still report ErrPoolClosed.
	release()
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, ErrPoolClosed) {
			t.Errorf("queued Submit %d = %v, want ErrPoolClosed", i, err)
		}
	}
	if got := pool.freeLen(); got != pool.Size() {
		t.Errorf("free list holds %d workers after Close, want %d (worker leaked)", got, pool.Size())
	}
	if s := pool.Stats(); s.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after Close drained the queue", s.QueueDepth)
	}
}

// TestPoolQuarantineRepair: a trapping request leaves a half-applied
// mutation in its worker; the pool must quarantine the worker and reset
// it to the snapshot, so the next request sees pristine state — not the
// trap's leftovers.
func TestPoolQuarantineRepair(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(trapModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Two clean requests accumulate worker state: 1, then 2.
	for want := uint64(1); want <= 2; want++ {
		out, err := pool.Submit(0)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if out[0] != want {
			t.Fatalf("counter = %d, want %d", out[0], want)
		}
	}

	// The poisoned request bumps the counter to 3 and traps.
	_, err = pool.Submit(1)
	var trap *wasm.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("poisoned Submit = %v, want a wasm trap", err)
	}

	// Repair reset the worker to the snapshot: the counter restarts at 1,
	// not 4 — the trap's half-applied bump was scrubbed.
	out, err := pool.Submit(0)
	if err != nil {
		t.Fatalf("Submit after repair: %v", err)
	}
	if out[0] != 1 {
		t.Errorf("counter after repair = %d, want 1 (snapshot state)", out[0])
	}

	s := pool.Stats()
	if s.Quarantined != 1 || s.Repaired != 1 {
		t.Errorf("stats = %+v, want 1 quarantined, 1 repaired", s)
	}
	if s.Requests != 3 {
		t.Errorf("Requests = %d, want 3 (the trap does not count)", s.Requests)
	}
}

// TestPoolRepairIsolatesWASIState: repair also replaces the worker's WASI
// system, so descriptor state dirtied by a failed request cannot leak
// into its successors.
func TestPoolRepairIsolatesWASIState(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(trapModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	w := pool.takeWorker(t)
	sysBefore := w.Sys
	pool.release(w)

	if _, err := pool.Submit(1); err == nil {
		t.Fatal("poisoned Submit did not fail")
	}

	w = pool.takeWorker(t)
	defer pool.release(w)
	if w.Sys == sysBefore {
		t.Error("repair kept the failed request's WASI system")
	}
	if got := w.In.HostCtx(); got != w.Sys {
		t.Error("repaired instance's host context does not match its new system")
	}
}

// TestQuarantineClassification pins the failure taxonomy: guest traps and
// unknown host errors poison a worker; a destroyed enclave and transient
// host faults do not.
func TestQuarantineClassification(t *testing.T) {
	if quarantinable(sgx.ErrDestroyed) {
		t.Error("destroyed enclave classified quarantinable; there is nothing to repair")
	}
	if quarantinable(chaos.Transient(errors.New("host stall"))) {
		t.Error("transient host fault classified quarantinable; guest state is intact")
	}
	if !quarantinable(&wasm.Trap{Kind: wasm.TrapUnreachable}) {
		t.Error("guest trap not classified quarantinable")
	}
	if !quarantinable(errors.New("unknown host failure")) {
		t.Error("unknown error not classified quarantinable; must fail safe")
	}
}

// TestPoolFidelity extends TestConcurrencyFidelity to the serving path:
// a quarantine-free single-worker pool run must be bit-identical — SGX
// counters and checksum — to the same workload driven sequentially on a
// plain instance. The pool adds containment machinery, never cost or
// divergence, when no fault fires.
func TestPoolFidelity(t *testing.T) {
	const requests = 2
	workload := func(drive func(rt *Runtime, mod *Module) uint64) (stats [4]int64, checksum uint64) {
		cfg := testConfig(func(c *Config) {
			c.SGX.EPCSize = 128 << 10
			c.SGX.EPCUsable = 64 << 10
			c.SGX.HeapSize = 8 << 20
			c.SGX.TCSNum = 1
			c.Switchless = SwitchlessOff
		})
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		defer rt.Enclave.Destroy()
		mod, err := rt.LoadModule(sweepModule(16<<10, 2))
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		checksum = drive(rt, mod)
		s := rt.Enclave.Stats()
		return [4]int64{s.ECalls, s.OCalls, s.PageFaults, s.Evictions}, checksum
	}

	seqStats, seqSum := workload(func(rt *Runtime, mod *Module) uint64 {
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		var sum uint64
		for i := 0; i < requests; i++ {
			out, err := inst.Invoke("run")
			if err != nil {
				t.Fatalf("Invoke: %v", err)
			}
			sum = out[0]
		}
		return sum
	})

	poolStats, poolSum := workload(func(rt *Runtime, mod *Module) uint64 {
		pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		defer pool.Close()
		var sum uint64
		for i := 0; i < requests; i++ {
			out, err := pool.Submit()
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			sum = out[0]
		}
		if s := pool.Stats(); s.Quarantined != 0 || s.Repaired != 0 {
			t.Fatalf("fault-free run quarantined workers: %+v", s)
		}
		return sum
	})

	if seqStats != poolStats {
		t.Errorf("fidelity broken: sequential %v, pool %v (ECalls, OCalls, faults, evictions)", seqStats, poolStats)
	}
	if seqSum != poolSum {
		t.Errorf("checksum diverged: sequential %#x, pool %#x", seqSum, poolSum)
	}
	if seqStats[2] == 0 || seqStats[3] == 0 {
		t.Fatal("workload did not page; fidelity test proves nothing")
	}
}
