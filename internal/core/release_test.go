package core

import (
	"testing"
)

// The PR 9 swap tier is only a win if suspending an instance actually
// returns its EPC: every arena page must drop to pageAbsent and the
// enclave heap must get the arena back. These tests pin that accounting
// exactly — a single leaked page per suspend would silently re-create
// the pressure the tier exists to relieve.

// TestReleaseReturnsAllArenaPages: after Instance.Release, the arena's
// resident-page count is exactly zero and the allocator's in-use bytes
// are back at their pre-instantiation baseline.
func TestReleaseReturnsAllArenaPages(t *testing.T) {
	rt, err := NewRuntime(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	_, _, baseline := rt.Enclave.Allocator().Stats()

	inst, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatal(err)
	}
	// Run the guest so the arena is genuinely populated, not just mapped.
	if _, err := inst.Invoke("run"); err != nil {
		t.Fatal(err)
	}
	if res, _ := inst.ResidencyStats(); res == 0 {
		t.Fatal("no arena pages resident after an invocation; test is vacuous")
	}
	if _, _, inUse := rt.Enclave.Allocator().Stats(); inUse <= baseline {
		t.Fatalf("allocator in-use %d not above baseline %d with a live instance", inUse, baseline)
	}

	evBefore := rt.Enclave.Stats().Evictions
	if err := inst.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}

	if res, ref := inst.ResidencyStats(); res != 0 || ref != 0 {
		t.Errorf("post-Release residency = %d resident / %d referenced, want 0/0", res, ref)
	}
	if _, _, inUse := rt.Enclave.Allocator().Stats(); inUse != baseline {
		t.Errorf("allocator in-use = %d after Release, want baseline %d (arena leaked)", inUse, baseline)
	}
	// Release is EREMOVE, not EWB: dropping the pages must not be billed
	// as (or counted as) evictions.
	if evAfter := rt.Enclave.Stats().Evictions; evAfter != evBefore {
		t.Errorf("Release charged %d evictions; EREMOVE must be free", evAfter-evBefore)
	}
	// Idempotent: a second Release is a no-op, not a double free.
	if err := inst.Release(); err != nil {
		t.Errorf("second Release: %v", err)
	}
}

// TestReleaseManyInstancesZeroResidue: repeated instantiate/run/release
// cycles return to the same floor every time — no cumulative EPC or heap
// residue across N lifecycles (the suspend path runs this loop forever).
func TestReleaseManyInstancesZeroResidue(t *testing.T) {
	rt, err := NewRuntime(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	_, _, baseline := rt.Enclave.Allocator().Stats()
	residentFloor := rt.Enclave.Memory().Resident()

	for i := 0; i < 8; i++ {
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if _, err := inst.Invoke("run", uint64(i)); err != nil {
			t.Fatalf("cycle %d run: %v", i, err)
		}
		if err := inst.Release(); err != nil {
			t.Fatalf("cycle %d Release: %v", i, err)
		}
		if _, _, inUse := rt.Enclave.Allocator().Stats(); inUse != baseline {
			t.Fatalf("cycle %d: allocator in-use %d, want %d", i, inUse, baseline)
		}
		// The floor may have been measured with the EPC at capacity, in
		// which case a mid-cycle sweep can leave residency slightly under
		// it; the leak symptom is monotonic growth above the floor.
		if got := rt.Enclave.Memory().Resident(); got > residentFloor {
			t.Fatalf("cycle %d: %d EPC pages resident, above floor %d (residue)", i, got, residentFloor)
		}
	}
}
