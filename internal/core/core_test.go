package core

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/sgx"
	"twine/internal/wasm"
	"twine/wasmgen"
)

func testConfig(mutate ...func(*Config)) Config {
	cfg := Config{
		PlatformSeed: "core-test",
		SGX:          sgx.TestConfig(),
	}
	cfg.SGX.HeapSize = 64 << 20
	cfg.SGX.EPCSize = 16 << 20
	cfg.SGX.EPCUsable = 12 << 20
	for _, m := range mutate {
		m(&cfg)
	}
	return cfg
}

// helloModule writes a line to stdout and exits with the given code.
func helloModule(text string, exitCode int32) []byte {
	m := wasmgen.NewModule()
	fdWrite := m.ImportFunc("wasi_snapshot_preview1", "fd_write",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	procExit := m.ImportFunc("wasi_snapshot_preview1", "proc_exit", wasmgen.Sig(wasmgen.I32))
	m.Memory(1, 1)
	m.Data(64, []byte(text))
	f := m.Func(wasmgen.Sig())
	f.I32Const(0).I32Const(64).I32Store(0)
	f.I32Const(4).I32Const(int32(len(text))).I32Store(0)
	f.I32Const(1).I32Const(0).I32Const(1).I32Const(16).Call(fdWrite).Drop()
	f.I32Const(exitCode).Call(procExit)
	f.End()
	m.Export("_start", f)
	return m.Bytes()
}

func TestRunHelloWorld(t *testing.T) {
	var out bytes.Buffer
	rt, err := NewRuntime(testConfig(func(c *Config) { c.Stdout = &out }))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	mod, err := rt.LoadModule(helloModule("hello enclave\n", 0))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.WasmBytes == 0 || mod.AotIns == 0 {
		t.Errorf("module metrics empty: %+v", mod)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	code, err := inst.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if out.String() != "hello enclave\n" {
		t.Errorf("stdout = %q", out.String())
	}
	// The run entered the enclave and stdout left through an OCALL.
	st := rt.Enclave.Stats()
	if st.ECalls == 0 || st.OCalls == 0 {
		t.Errorf("stats = %+v, want crossings", st)
	}
}

func TestExitCodePropagates(t *testing.T) {
	rt, _ := NewRuntime(testConfig())
	mod, _ := rt.LoadModule(helloModule("x", 7))
	inst, _ := rt.NewInstance(mod)
	code, err := inst.Run()
	if err != nil || code != 7 {
		t.Errorf("Run = %d, %v, want 7", code, err)
	}
}

func TestInvokeExportedFunction(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig(wasmgen.I64).Returns(wasmgen.I64))
	f.LocalGet(0).LocalGet(0).I64Mul().End()
	m.Export("square", f)
	rt, _ := NewRuntime(testConfig())
	mod, err := rt.LoadModule(m.Bytes())
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	inst, _ := rt.NewInstance(mod)
	out, err := inst.Invoke("square", 12)
	if err != nil || out[0] != 144 {
		t.Errorf("square(12) = %v, %v", out, err)
	}
}

func TestBadModuleRejected(t *testing.T) {
	rt, _ := NewRuntime(testConfig())
	if _, err := rt.LoadModule([]byte("not wasm")); err == nil {
		t.Error("garbage module loaded")
	}
}

func TestGuestMemoryMustFitEnclave(t *testing.T) {
	cfg := testConfig()
	cfg.SGX.HeapSize = 4 << 20 // tiny heap
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	m := wasmgen.NewModule()
	m.Memory(128, 128) // wants 8 MiB of guest memory
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("_start", f)
	mod, err := rt.LoadModule(m.Bytes())
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if _, err := rt.NewInstance(mod); err == nil {
		t.Error("instance fit in an enclave that is too small")
	}
}

func TestEmbeddedDBOverIPFS(t *testing.T) {
	host := hostfs.NewMemFS()
	rt, err := NewRuntime(testConfig(func(c *Config) {
		c.HostFS = host
		c.FS = FSIPFS
	}))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	db, err := rt.OpenDB(DBConfig{Name: "trusted.db", CachePages: 64})
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO t (b) VALUES ('SECRET-MARKER-XYZ'), ('row2')`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM t`)
	if err != nil || rows.All()[0][0].Int() != 2 {
		t.Fatalf("count = %v, %v", rows, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Ciphertext on the untrusted host.
	raw, err := host.OpenFile("trusted.db", hostfs.ORead)
	if err != nil {
		t.Fatalf("host file: %v", err)
	}
	defer raw.Close()
	info, _ := raw.Stat()
	disk := make([]byte, info.Size)
	raw.ReadAt(disk, 0)
	if bytes.Contains(disk, []byte("SECRET-MARKER-XYZ")) {
		t.Fatal("plaintext on untrusted host")
	}
}

func TestEmbeddedDBInMemory(t *testing.T) {
	rt, _ := NewRuntime(testConfig())
	db, err := rt.OpenDB(DBConfig{Name: ":memory:", CachePages: 32, MemVFS: true})
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	defer db.Close()
	db.Exec(`CREATE TABLE t (a INTEGER)`)
	db.Exec(`INSERT INTO t VALUES (1),(2),(3)`)
	rows, err := db.Query(`SELECT SUM(a) FROM t`)
	if err != nil || rows.All()[0][0].Int() != 6 {
		t.Errorf("sum = %v, %v", rows, err)
	}
}

func TestProvisioningEndToEnd(t *testing.T) {
	module := helloModule("provisioned!\n", 0)
	var out bytes.Buffer
	rt, err := NewRuntime(testConfig(func(c *Config) { c.Stdout = &out }))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	svc := sgx.NewAttestationService()
	svc.Register(rt.Platform)
	provider := NewProvider(svc, rt.Enclave.Measurement(), module)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- provider.Serve(server) }()
	mod, err := rt.FetchModule(client)
	if err != nil {
		t.Fatalf("FetchModule: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if code, err := inst.Run(); err != nil || code != 0 {
		t.Fatalf("Run = %d, %v", code, err)
	}
	if out.String() != "provisioned!\n" {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestProvisioningRejectsWrongMeasurement(t *testing.T) {
	rt, _ := NewRuntime(testConfig())
	svc := sgx.NewAttestationService()
	svc.Register(rt.Platform)
	var wrong [32]byte
	wrong[0] = 0xFF
	provider := NewProvider(svc, wrong, []byte("module"))

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		err := provider.Serve(server)
		server.Close() // release the peer blocked on the reply
		done <- err
	}()
	_, fetchErr := rt.FetchModule(client)
	serveErr := <-done
	if !errors.Is(serveErr, ErrAttestation) {
		t.Errorf("Serve = %v, want ErrAttestation", serveErr)
	}
	if fetchErr == nil {
		t.Error("FetchModule succeeded against refusing provider")
	}
}

func TestProvisioningRejectsUnknownPlatform(t *testing.T) {
	rt, _ := NewRuntime(testConfig())
	svc := sgx.NewAttestationService() // platform NOT registered
	provider := NewProvider(svc, rt.Enclave.Measurement(), []byte("module"))
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		err := provider.Serve(server)
		server.Close()
		done <- err
	}()
	_, _ = rt.FetchModule(client)
	if err := <-done; !errors.Is(err, ErrAttestation) {
		t.Errorf("Serve = %v, want ErrAttestation", err)
	}
}

func TestDisableUntrustedPOSIX(t *testing.T) {
	rt, err := NewRuntime(testConfig(func(c *Config) {
		c.FS = FSHost
		c.DisableUntrustedPOSIX = true
	}))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if _, err := rt.OpenDB(DBConfig{Name: "blocked.db", CachePages: 32}); err == nil {
		t.Error("host-backed DB opened with untrusted POSIX disabled")
	} else if !strings.Contains(err.Error(), "ENOTCAPABLE") {
		t.Logf("note: error was %v", err)
	}
}

func TestMathImports(t *testing.T) {
	m := wasmgen.NewModule()
	exp := m.ImportFunc("math", "exp", wasmgen.Sig(wasmgen.F64).Returns(wasmgen.F64))
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig(wasmgen.F64).Returns(wasmgen.F64))
	f.LocalGet(0).Call(exp).End()
	m.Export("e", f)
	rt, _ := NewRuntime(testConfig())
	mod, err := rt.LoadModule(m.Bytes())
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	inst, _ := rt.NewInstance(mod)
	out, err := inst.Invoke("e", pf64(1))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := f64(out[0]); got < 2.7 || got > 2.72 {
		t.Errorf("exp(1) = %v", got)
	}
}

func TestEngineSelection(t *testing.T) {
	for _, eng := range []wasm.Engine{wasm.EngineInterp, wasm.EngineAOT} {
		rt, err := NewRuntime(testConfig(func(c *Config) { c.Engine = eng }))
		if err != nil {
			t.Fatalf("NewRuntime(%v): %v", eng, err)
		}
		mod, _ := rt.LoadModule(helloModule("x", 0))
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance(%v): %v", eng, err)
		}
		if code, err := inst.Run(); err != nil || code != 0 {
			t.Errorf("engine %v: run = %d, %v", eng, code, err)
		}
	}
}
