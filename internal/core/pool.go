package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/chaos"
	"twine/internal/sgx"
	"twine/internal/wasi"
	"twine/internal/wasm"
)

// The serving front door (PR 3, hardened in PR 6). TWINE's evaluation
// drives one instance at a time; a runtime serving real traffic
// multiplexes many requests over a fixed set of enclave resources. Pool
// is that front door: N instances of one module, each with isolated
// guest memory and WASI state, served concurrently through the enclave's
// TCS pool.
//
// Worker instantiation is copy-from-snapshot: the first worker is built
// the expensive way (decode, AoT translation, linking, data segments,
// start function — all inside an ECALL), its post-initialisation state is
// snapshotted once, and every further worker is stamped out as a memory
// copy. Workers are long-lived and stateful across requests, the standard
// serving trade: per-request isolation costs a re-instantiation, per-
// worker isolation costs nothing.
//
// PR 6 adds fault containment on both sides of that trade:
//
//   - Admission control. An overloaded pool fails fast (ErrOverloaded)
//     instead of queueing without bound: MaxQueue caps how many Submits
//     may wait, SubmitTimeout / a context deadline bounds how long.
//   - Quarantine and repair. A request failure can leave a long-lived
//     worker with corrupted guest state (a trap aborts mid-mutation).
//     Failed workers are quarantined and repaired from the pool snapshot
//     — the same bytes a fresh worker is stamped from — before they serve
//     again, so one poisoned request cannot poison its successors.

// PoolConfig sizes a serving pool.
type PoolConfig struct {
	// Workers is the number of concurrent instances (default: the
	// enclave's TCS count — more workers than TCS just queue on entry).
	Workers int
	// Entry is the exported guest function invoked per request
	// (default "run").
	Entry string
	// Init, when set, names an exported function invoked once on the
	// first worker before the snapshot is taken, so one-time guest
	// initialisation (a WASI _start, a warmup routine) is shared by every
	// worker instead of re-run per instance.
	Init string
	// HostIO, when set, is executed outside the enclave (a classic OCALL)
	// at the start of every request, modelling the untrusted transport a
	// server pays per request — receiving the request and delivering the
	// response through host memory. Blocking work belongs here, not on
	// the switchless ring.
	HostIO func() error
	// MaxQueue caps how many Submits may wait for a worker at once
	// (0 = unbounded). A Submit arriving with the queue full fails
	// immediately with ErrOverloaded instead of joining it — admission
	// control, so overload surfaces as fast rejections rather than
	// unbounded latency.
	MaxQueue int
	// SubmitTimeout bounds how long a queued Submit waits for a worker
	// (0 = forever). On expiry the Submit fails with an error wrapping
	// ErrOverloaded. A tighter context deadline passed to SubmitCtx wins.
	SubmitTimeout time.Duration
	// Stdout/Stderr receive the workers' guest output (default: discard;
	// a shared writer would interleave concurrent workers' output).
	Stdout io.Writer
	Stderr io.Writer
}

// PoolStats counts serving activity.
type PoolStats struct {
	// Requests is the number of completed Submit calls.
	Requests int64
	// Waits is the number of Submits that found every worker busy and had
	// to queue — the pool-level saturation signal (the enclave-level one
	// is Stats.TCSWaits).
	Waits int64
	// Rejected counts Submits refused at admission because the queue was
	// already MaxQueue deep.
	Rejected int64
	// TimedOut counts queued Submits abandoned on SubmitTimeout or a
	// context deadline.
	TimedOut int64
	// QueueDepth is the number of Submits currently waiting for a worker
	// (a gauge, not a counter).
	QueueDepth int64
	// Quarantined counts workers pulled from service after a request
	// failure; Repaired counts those successfully reset from the pool
	// snapshot (the difference is repairs that themselves failed and will
	// be retried on the worker's next failure).
	Quarantined int64
	Repaired    int64
}

// Pool serves concurrent requests over N instances of one module.
// Submit and Serve are safe for concurrent use; Close may race them (a
// queued Submit observes ErrPoolClosed deterministically).
type Pool struct {
	rt            *Runtime
	mod           *Module
	entry         string
	hostIO        func() error
	workers       chan *Instance
	size          int
	maxQueue      int
	submitTimeout time.Duration

	// snap is the post-init state every worker was stamped from; repair
	// resets a quarantined worker to it. ids gives each worker its stable
	// identity (for the repaired WASI clone's argv); read-only after
	// NewPool.
	snap   *wasm.Snapshot
	ids    map[*Instance]int
	newSys func(i int) (*wasi.System, error)

	requests    int64 // atomic
	waits       int64 // atomic
	rejected    int64 // atomic
	timedOut    int64 // atomic
	queued      int64 // atomic gauge
	quarantined int64 // atomic
	repaired    int64 // atomic

	closeOnce sync.Once
	closed    chan struct{}
}

var (
	// ErrPoolClosed is returned by Submit after Close.
	ErrPoolClosed = errors.New("twine: pool closed")
	// ErrOverloaded is returned (possibly wrapped) when admission control
	// refuses or abandons a Submit: the queue is MaxQueue deep, or no
	// worker freed up within SubmitTimeout / the context deadline. It is
	// the caller's backpressure signal — shed load or retry later.
	ErrOverloaded = errors.New("twine: pool overloaded")
)

// NewPool builds a serving pool of cfg.Workers instances of mod. The
// first instance is fully instantiated (and optionally initialised via
// cfg.Init); the rest are copied from its snapshot.
func (rt *Runtime) NewPool(mod *Module, cfg PoolConfig) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = rt.Enclave.TCSCount()
	}
	if cfg.Entry == "" {
		cfg.Entry = "run"
	}
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}

	p := &Pool{
		rt:            rt,
		mod:           mod,
		entry:         cfg.Entry,
		hostIO:        cfg.HostIO,
		size:          cfg.Workers,
		maxQueue:      cfg.MaxQueue,
		submitTimeout: cfg.SubmitTimeout,
		ids:           make(map[*Instance]int, cfg.Workers),
		closed:        make(chan struct{}),
	}
	p.workers = make(chan *Instance, cfg.Workers)
	p.newSys = func(i int) (*wasi.System, error) {
		return rt.Sys.Clone(wasi.CloneOptions{
			Args:   []string{fmt.Sprintf("worker-%d", i)},
			Stdout: stdout,
			Stderr: stderr,
		})
	}

	// Worker 0: the expensive path, once.
	sys0, err := p.newSys(0)
	if err != nil {
		return nil, err
	}
	first, err := rt.newInstance(mod, sys0, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Init != "" {
		if _, err := first.Invoke(cfg.Init); err != nil {
			return nil, fmt.Errorf("twine: pool init %q: %w", cfg.Init, err)
		}
	}
	p.snap = first.In.Snapshot()
	p.ids[first] = 0
	p.workers <- first

	// Workers 1..N-1: copy-from-snapshot.
	for i := 1; i < cfg.Workers; i++ {
		sys, err := p.newSys(i)
		if err != nil {
			return nil, err
		}
		w, err := rt.newInstance(mod, sys, p.snap)
		if err != nil {
			return nil, err
		}
		p.ids[w] = i
		p.workers <- w
	}
	return p, nil
}

// Size returns the number of worker instances.
func (p *Pool) Size() int { return p.size }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Requests:    atomic.LoadInt64(&p.requests),
		Waits:       atomic.LoadInt64(&p.waits),
		Rejected:    atomic.LoadInt64(&p.rejected),
		TimedOut:    atomic.LoadInt64(&p.timedOut),
		QueueDepth:  atomic.LoadInt64(&p.queued),
		Quarantined: atomic.LoadInt64(&p.quarantined),
		Repaired:    atomic.LoadInt64(&p.repaired),
	}
}

// Submit serves one request with no deadline beyond the pool's own
// SubmitTimeout: it binds a free worker (queueing while all are busy,
// subject to admission control), enters the enclave, runs the
// per-request host I/O (if any) and the entry function against args, and
// returns the results. Safe for any number of concurrent callers.
func (p *Pool) Submit(args ...uint64) ([]uint64, error) {
	return p.SubmitCtx(context.Background(), args...)
}

// SubmitCtx is Submit bounded by ctx: a Submit still waiting for a
// worker when ctx's deadline expires fails with an error wrapping
// ErrOverloaded (plain cancellation returns ctx.Err()). The deadline
// covers admission, not guest execution — once a worker is bound the
// request runs to completion, the same containment boundary the enclave
// itself has (an ECALL cannot be interrupted from outside).
func (p *Pool) SubmitCtx(ctx context.Context, args ...uint64) ([]uint64, error) {
	w, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}

	var out []uint64
	serr := p.rt.guestECallSys("twine_serve", w.Sys, func() error {
		if p.hostIO != nil {
			if err := p.rt.Enclave.OCall("serve.io", p.hostIO); err != nil {
				return err
			}
		}
		var ierr error
		out, ierr = w.In.Invoke(p.entry, args...)
		return ierr
	})
	if serr != nil && quarantinable(serr) {
		atomic.AddInt64(&p.quarantined, 1)
		p.repair(w)
	}
	p.workers <- w
	if serr != nil {
		return nil, serr
	}
	atomic.AddInt64(&p.requests, 1)
	return out, nil
}

// acquire binds a free worker under the pool's admission policy.
func (p *Pool) acquire(ctx context.Context) (*Instance, error) {
	select {
	case <-p.closed:
		return nil, ErrPoolClosed
	default:
	}
	var w *Instance
	select {
	case w = <-p.workers:
	default:
		// Every worker is busy: join the queue, subject to admission
		// control. The gauge is incremented before the MaxQueue check so
		// concurrent arrivals cannot all observe a below-cap depth.
		atomic.AddInt64(&p.waits, 1)
		depth := atomic.AddInt64(&p.queued, 1)
		if p.maxQueue > 0 && depth > int64(p.maxQueue) {
			atomic.AddInt64(&p.queued, -1)
			atomic.AddInt64(&p.rejected, 1)
			return nil, fmt.Errorf("%w: queue full (%d waiting)", ErrOverloaded, p.maxQueue)
		}
		var expire <-chan time.Time
		if p.submitTimeout > 0 {
			t := time.NewTimer(p.submitTimeout)
			defer t.Stop()
			expire = t.C
		}
		select {
		case w = <-p.workers:
			atomic.AddInt64(&p.queued, -1)
		case <-expire:
			atomic.AddInt64(&p.queued, -1)
			atomic.AddInt64(&p.timedOut, 1)
			return nil, fmt.Errorf("%w: no worker within %v", ErrOverloaded, p.submitTimeout)
		case <-ctx.Done():
			atomic.AddInt64(&p.queued, -1)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				atomic.AddInt64(&p.timedOut, 1)
				return nil, fmt.Errorf("%w: %w", ErrOverloaded, ctx.Err())
			}
			return nil, ctx.Err()
		case <-p.closed:
			atomic.AddInt64(&p.queued, -1)
			return nil, ErrPoolClosed
		}
	}
	// Close may have raced the bind: a worker handed to a Submit that
	// loses that race goes straight back, so every queued Submit observes
	// ErrPoolClosed deterministically and no worker is leaked out of the
	// free list.
	select {
	case <-p.closed:
		p.workers <- w
		return nil, ErrPoolClosed
	default:
	}
	return w, nil
}

// quarantinable classifies a request failure (PR 6). A guest trap or an
// unclassified host error aborted the request at an arbitrary point: the
// worker's memory may hold a half-applied mutation, so it must be
// repaired before serving again. Two classes are exempt: a destroyed
// enclave (sgx.ErrDestroyed — every worker is dead and there is nothing
// to reset them into), and a transient host fault that escaped the WASI
// boundary's bounded retry (chaos.IsTransient — the fault was outside
// the enclave; by the transient contract the guest-visible operation
// never happened, so the worker's state is the pre-request state).
func quarantinable(err error) bool {
	return !errors.Is(err, sgx.ErrDestroyed) && !chaos.IsTransient(err)
}

// repair rebuilds a quarantined worker in place: guest memory, globals
// and table are reset to the pool snapshot inside an ECALL (the reset
// mutates in-enclave state, so it is accounted like any enclave entry)
// and the WASI system is re-cloned, discarding descriptor state the
// failed request may have dirtied. On failure the worker is returned to
// service unrepaired — never leaking free-list capacity — and the next
// failure retries.
func (p *Pool) repair(w *Instance) {
	sys, err := p.newSys(p.ids[w])
	if err != nil {
		return
	}
	if err := p.rt.Enclave.ECall("twine_repair", func() error {
		return w.In.ResetFromSnapshot(p.snap)
	}); err != nil {
		return
	}
	w.Sys = sys
	w.In.SetHostCtx(sys)
	atomic.AddInt64(&p.repaired, 1)
}

// Serve runs n requests across the pool's workers and blocks until all
// have completed. args(i) supplies request i's arguments (nil means no
// arguments); done(i, out, err), when non-nil, receives each result and
// may be called from multiple goroutines concurrently. Serve returns the
// first error encountered (remaining requests still run to completion).
func (p *Pool) Serve(n int, args func(i int) []uint64, done func(i int, out []uint64, err error)) error {
	return p.ServeCtx(context.Background(), n, args, done)
}

// ServeCtx is Serve with every request bounded by ctx (see SubmitCtx).
func (p *Pool) ServeCtx(ctx context.Context, n int, args func(i int) []uint64, done func(i int, out []uint64, err error)) error {
	if n <= 0 {
		return nil
	}
	var (
		next     int64 = -1
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	workers := p.size
	if workers > n {
		workers = n
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				var a []uint64
				if args != nil {
					a = args(i)
				}
				out, err := p.SubmitCtx(ctx, a...)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				if done != nil {
					done(i, out, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Close retires the pool. In-flight Submits complete; queued Submits fail
// with ErrPoolClosed (deterministically — a Submit that wins the race for
// a freed worker after Close re-checks and returns it, see acquire). The
// runtime and its enclave stay alive (they may serve other pools);
// destroying the enclave is the runtime owner's call.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}
