package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"twine/internal/wasi"
)

// The serving front door (PR 3). TWINE's evaluation drives one instance
// at a time; a runtime serving real traffic multiplexes many requests
// over a fixed set of enclave resources. Pool is that front door: N
// instances of one module, each with isolated guest memory and WASI
// state, served concurrently through the enclave's TCS pool.
//
// Worker instantiation is copy-from-snapshot: the first worker is built
// the expensive way (decode, AoT translation, linking, data segments,
// start function — all inside an ECALL), its post-initialisation state is
// snapshotted once, and every further worker is stamped out as a memory
// copy. Workers are long-lived and stateful across requests, the standard
// serving trade: per-request isolation costs a re-instantiation, per-
// worker isolation costs nothing.

// PoolConfig sizes a serving pool.
type PoolConfig struct {
	// Workers is the number of concurrent instances (default: the
	// enclave's TCS count — more workers than TCS just queue on entry).
	Workers int
	// Entry is the exported guest function invoked per request
	// (default "run").
	Entry string
	// Init, when set, names an exported function invoked once on the
	// first worker before the snapshot is taken, so one-time guest
	// initialisation (a WASI _start, a warmup routine) is shared by every
	// worker instead of re-run per instance.
	Init string
	// HostIO, when set, is executed outside the enclave (a classic OCALL)
	// at the start of every request, modelling the untrusted transport a
	// server pays per request — receiving the request and delivering the
	// response through host memory. Blocking work belongs here, not on
	// the switchless ring.
	HostIO func() error
	// Stdout/Stderr receive the workers' guest output (default: discard;
	// a shared writer would interleave concurrent workers' output).
	Stdout io.Writer
	Stderr io.Writer
}

// PoolStats counts serving activity.
type PoolStats struct {
	// Requests is the number of completed Submit calls.
	Requests int64
	// Waits is the number of Submits that found every worker busy and had
	// to queue — the pool-level saturation signal (the enclave-level one
	// is Stats.TCSWaits).
	Waits int64
}

// Pool serves concurrent requests over N instances of one module.
// Submit and Serve are safe for concurrent use; Close is not (quiesce
// first, like any server shutdown).
type Pool struct {
	rt      *Runtime
	mod     *Module
	entry   string
	hostIO  func() error
	workers chan *Instance
	size    int

	requests int64 // atomic
	waits    int64 // atomic

	closeOnce sync.Once
	closed    chan struct{}
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("twine: pool closed")

// NewPool builds a serving pool of cfg.Workers instances of mod. The
// first instance is fully instantiated (and optionally initialised via
// cfg.Init); the rest are copied from its snapshot.
func (rt *Runtime) NewPool(mod *Module, cfg PoolConfig) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = rt.Enclave.TCSCount()
	}
	if cfg.Entry == "" {
		cfg.Entry = "run"
	}
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}

	p := &Pool{
		rt:     rt,
		mod:    mod,
		entry:  cfg.Entry,
		hostIO: cfg.HostIO,
		size:   cfg.Workers,
		closed: make(chan struct{}),
	}
	p.workers = make(chan *Instance, cfg.Workers)

	newSys := func(i int) (*wasi.System, error) {
		return rt.Sys.Clone(wasi.CloneOptions{
			Args:   []string{fmt.Sprintf("worker-%d", i)},
			Stdout: stdout,
			Stderr: stderr,
		})
	}

	// Worker 0: the expensive path, once.
	sys0, err := newSys(0)
	if err != nil {
		return nil, err
	}
	first, err := rt.newInstance(mod, sys0, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Init != "" {
		if _, err := first.Invoke(cfg.Init); err != nil {
			return nil, fmt.Errorf("twine: pool init %q: %w", cfg.Init, err)
		}
	}
	snap := first.In.Snapshot()
	p.workers <- first

	// Workers 1..N-1: copy-from-snapshot.
	for i := 1; i < cfg.Workers; i++ {
		sys, err := newSys(i)
		if err != nil {
			return nil, err
		}
		w, err := rt.newInstance(mod, sys, snap)
		if err != nil {
			return nil, err
		}
		p.workers <- w
	}
	return p, nil
}

// Size returns the number of worker instances.
func (p *Pool) Size() int { return p.size }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Requests: atomic.LoadInt64(&p.requests),
		Waits:    atomic.LoadInt64(&p.waits),
	}
}

// Submit serves one request: it binds a free worker (blocking while all
// are busy), enters the enclave, runs the per-request host I/O (if any)
// and the entry function against args, and returns the results. Safe for
// any number of concurrent callers.
func (p *Pool) Submit(args ...uint64) ([]uint64, error) {
	select {
	case <-p.closed:
		return nil, ErrPoolClosed
	default:
	}
	var w *Instance
	select {
	case w = <-p.workers:
	default:
		atomic.AddInt64(&p.waits, 1)
		select {
		case w = <-p.workers:
		case <-p.closed:
			return nil, ErrPoolClosed
		}
	}
	defer func() { p.workers <- w }()

	var out []uint64
	err := p.rt.guestECallSys("twine_serve", w.Sys, func() error {
		if p.hostIO != nil {
			if err := p.rt.Enclave.OCall("serve.io", p.hostIO); err != nil {
				return err
			}
		}
		var ierr error
		out, ierr = w.In.Invoke(p.entry, args...)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&p.requests, 1)
	return out, nil
}

// Serve runs n requests across the pool's workers and blocks until all
// have completed. args(i) supplies request i's arguments (nil means no
// arguments); done(i, out, err), when non-nil, receives each result and
// may be called from multiple goroutines concurrently. Serve returns the
// first error encountered (remaining requests still run to completion).
func (p *Pool) Serve(n int, args func(i int) []uint64, done func(i int, out []uint64, err error)) error {
	if n <= 0 {
		return nil
	}
	var (
		next     int64 = -1
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	workers := p.size
	if workers > n {
		workers = n
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				var a []uint64
				if args != nil {
					a = args(i)
				}
				out, err := p.Submit(a...)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				if done != nil {
					done(i, out, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Close retires the pool. In-flight Submits complete; queued Submits fail
// with ErrPoolClosed. The runtime and its enclave stay alive (they may
// serve other pools); destroying the enclave is the runtime owner's call.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}
