package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/chaos"
	"twine/internal/sgx"
	"twine/internal/wasi"
	"twine/internal/wasm"
)

// The serving front door (PR 3, hardened in PR 6, made multi-tenant-ready
// in PR 8). TWINE's evaluation drives one instance at a time; a runtime
// serving real traffic multiplexes many requests over a fixed set of
// enclave resources. Pool is that front door: N instances of one module,
// each with isolated guest memory and WASI state, served concurrently
// through the enclave's TCS pool.
//
// Worker instantiation is copy-from-snapshot: the first worker is built
// the expensive way (decode, AoT translation, linking, data segments,
// start function — all inside an ECALL), its post-initialisation state is
// snapshotted once, and every further worker is stamped out as a memory
// copy. Workers are long-lived; whether they are stateful across requests
// is the pool's serving mode:
//
//   - Default (PR 3): workers keep their guest state between requests —
//     the standard stateful-serving trade.
//   - FreshState (PR 8): every request sees the golden snapshot. A
//     completed worker is reset in place (Instance.ResetFromSnapshot —
//     the PR 6 repair path promoted to the hot path, inside the same
//     serve ECALL) before re-entering the free list, so per-request
//     isolation costs one in-place memory copy, not a re-instantiation.
//   - ColdStart (PR 8, ablation): every request instantiates a fresh
//     instance from the snapshot and releases it afterwards — what
//     per-request isolation costs without warm free lists, the baseline
//     the fig-tenants benchmark prices warm reset against.
//
// PR 6 adds fault containment on both sides of that trade:
//
//   - Admission control. An overloaded pool fails fast (ErrOverloaded)
//     instead of queueing without bound: MaxQueue caps how many Submits
//     may wait, SubmitTimeout / a context deadline bounds how long.
//   - Quarantine and repair. A request failure can leave a long-lived
//     worker with corrupted guest state (a trap aborts mid-mutation).
//     Failed workers are quarantined and repaired from the pool snapshot
//     — the same bytes a fresh worker is stamped from — before they serve
//     again, so one poisoned request cannot poison its successors.
//
// PR 8 also makes acquisition FIFO-fair: waiters queue in arrival order
// and a freed worker is handed directly to the head waiter, so a stream
// of hot submitters cannot starve an earlier arrival (the regression the
// starvation test pins).

// PoolConfig sizes a serving pool.
type PoolConfig struct {
	// Workers is the number of concurrent instances (default: the
	// enclave's TCS count — more workers than TCS just queue on entry).
	Workers int
	// Entry is the exported guest function invoked per request
	// (default "run").
	Entry string
	// Init, when set, names an exported function invoked once on the
	// first worker before the snapshot is taken, so one-time guest
	// initialisation (a WASI _start, a warmup routine) is shared by every
	// worker instead of re-run per instance.
	Init string
	// HostIO, when set, is executed outside the enclave (a classic OCALL)
	// at the start of every request, modelling the untrusted transport a
	// server pays per request — receiving the request and delivering the
	// response through host memory. Blocking work belongs here, not on
	// the switchless ring.
	HostIO func() error
	// MaxQueue caps how many Submits may wait for a worker at once
	// (0 = unbounded). A Submit arriving with the queue full fails
	// immediately with ErrOverloaded instead of joining it — admission
	// control, so overload surfaces as fast rejections rather than
	// unbounded latency.
	MaxQueue int
	// SubmitTimeout bounds how long a queued Submit waits for a worker
	// (0 = forever). On expiry the Submit fails with an error wrapping
	// ErrOverloaded. A tighter context deadline passed to SubmitCtx wins.
	SubmitTimeout time.Duration
	// FreshState serves every request from the golden snapshot (PR 8):
	// after a successful request the worker is reset in place inside the
	// same serve ECALL, and its WASI descriptor table is re-cloned when
	// the request changed its shape. Per-request isolation on warm
	// workers — the registry's default serving mode.
	FreshState bool
	// ColdStart instantiates a fresh instance per request from the
	// snapshot and releases it afterwards (PR 8). It exists to price
	// FreshState: same isolation, none of the warm-free-list machinery.
	// Mutually exclusive with FreshState.
	ColdStart bool
	// Stdout/Stderr receive the workers' guest output (default: discard;
	// a shared writer would interleave concurrent workers' output).
	Stdout io.Writer
	Stderr io.Writer

	// swap, when set, enrolls the pool's warm workers in a registry-wide
	// swap tier (PR 9): idle workers may be suspended — state sealed to
	// untrusted storage, EPC arena released — and are transparently
	// resumed when acquired. swapLabel prefixes the per-worker sealing
	// labels; pinned exempts this pool's workers from victim selection.
	// Set by Registry.Register; unexported because the swap group's
	// lifecycle (and its reaper) belongs to the registry.
	swap      *swapGroup
	swapLabel string
	pinned    bool
}

// PoolStats counts serving activity. Stats() captures the admission-side
// fields (Waits, Rejected, TimedOut, QueueDepth) in one consistent
// snapshot under the pool lock, so QueueDepth can never be observed above
// MaxQueue (PR 8 — previously the gauge was sampled non-atomically with
// the counters).
type PoolStats struct {
	// Requests is the number of completed Submit calls.
	Requests int64
	// Waits is the number of Submits that found every worker busy and had
	// to queue — the pool-level saturation signal (the enclave-level one
	// is Stats.TCSWaits).
	Waits int64
	// Rejected counts Submits refused at admission because the queue was
	// already MaxQueue deep.
	Rejected int64
	// TimedOut counts queued Submits abandoned on SubmitTimeout or a
	// context deadline.
	TimedOut int64
	// QueueDepth is the number of Submits currently waiting for a worker
	// (a gauge, not a counter).
	QueueDepth int64
	// Quarantined counts workers pulled from service after a request
	// failure; Repaired counts those successfully reset from the pool
	// snapshot (the difference is repairs that themselves failed and will
	// be retried on the worker's next failure).
	Quarantined int64
	Repaired    int64
	// WarmResets counts requests whose worker was reset in place from the
	// warm free list (FreshState serving, PR 8); ColdStarts counts
	// requests served by a per-request instantiation (ColdStart serving).
	WarmResets int64
	ColdStarts int64
	// Suspends counts workers swapped out of the EPC (state sealed to
	// untrusted storage, arena discarded); Resumes counts workers swapped
	// back in on acquisition. Suspended is the current gauge; the
	// conservation law Suspends == Resumes + Suspended always holds.
	// SealBytes totals the sealed blob bytes written by suspends — the
	// swap tier's untrusted-storage traffic (PR 9).
	Suspends  int64
	Resumes   int64
	Suspended int64
	SealBytes int64
}

// poolWaiter is one queued Submit. A freed worker is handed directly to
// the head waiter through its buffered channel (a direct handoff, so
// wakeup order is exactly arrival order); a waiter that abandons the
// queue (timeout, cancellation, close) removes itself under the pool
// lock, or — having lost that race to a concurrent handoff — receives the
// worker and puts it back.
type poolWaiter struct {
	ch chan *worker
}

// worker is one pool slot: a stable identity plus whatever currently
// backs it. A warm worker embeds a live *Instance; a suspended worker
// (PR 9) has Instance == nil and carries its sealed state instead; a
// ColdStart pool's slots are pure concurrency tokens (Instance and
// sealed both nil, distinguished by Pool.cold). The identity fields —
// id, the WASI fingerprint baseline — survive suspension; descriptor
// state does not (resume re-clones the WASI system, exactly like
// repair). Mutated only by the goroutine currently holding the worker,
// except idleSince (pool lock) and the suspend path (which first steals
// the worker off the free list, making itself the holder).
type worker struct {
	*Instance
	id     int
	fdOpen int
	fdNext int32
	// sealed is the worker's suspended state: an AES-GCM blob sealed
	// under the pool's per-worker label, holding the snapshot delta
	// against the golden snapshot. Non-nil exactly while suspended.
	sealed []byte
	// idleSince is when the worker last entered the free list; victim
	// selection prefers the longest-idle among equally cold workers.
	idleSince time.Time
}

// Pool serves concurrent requests over N instances of one module.
// Submit and Serve are safe for concurrent use; Close may race them (a
// queued Submit observes ErrPoolClosed deterministically).
type Pool struct {
	rt            *Runtime
	mod           *Module
	entry         string
	hostIO        func() error
	size          int
	maxQueue      int
	submitTimeout time.Duration
	fresh         bool
	cold          bool
	pinned        bool
	swapLabel     string

	// swap is the registry-wide swap group this pool's warm workers are
	// enrolled in (nil: no swap tier, workers stay resident until Close).
	swap *swapGroup

	// snap is the post-init state every worker was stamped from; warm
	// reset, repair and swap resume restore it. newSys builds a worker's
	// WASI clone.
	snap   *wasm.Snapshot
	newSys func(i int) (*wasi.System, error)

	// mu guards the free list, the FIFO waiter queue, the closed flag and
	// the admission counters, so admission decisions and Stats snapshots
	// are mutually consistent.
	mu         sync.Mutex
	free       []*worker
	waiters    []*poolWaiter
	waits      int64
	rejected   int64
	timedOut   int64
	closedFlag bool

	requests     int64 // atomic
	quarantined  int64 // atomic
	repaired     int64 // atomic
	warmResets   int64 // atomic
	coldStarts   int64 // atomic
	coldSeq      int64 // atomic: cold instances' WASI identity sequence
	suspends     int64 // atomic
	resumes      int64 // atomic
	suspendedNow int64 // atomic gauge
	sealBytes    int64 // atomic

	hist       latencyHist
	resumeHist latencyHist

	closeOnce sync.Once
	closed    chan struct{}
}

var (
	// ErrPoolClosed is returned by Submit after Close.
	ErrPoolClosed = errors.New("twine: pool closed")
	// ErrOverloaded is returned (possibly wrapped) when admission control
	// refuses or abandons a Submit: the queue is MaxQueue deep, or no
	// worker freed up within SubmitTimeout / the context deadline. It is
	// the caller's backpressure signal — shed load or retry later.
	ErrOverloaded = errors.New("twine: pool overloaded")
)

// NewPool builds a serving pool of cfg.Workers instances of mod. The
// first instance is fully instantiated (and optionally initialised via
// cfg.Init); the rest are copied from its snapshot. In ColdStart mode the
// first instance exists only to produce the snapshot: its arena is
// released and the pool's slots are pure concurrency tokens.
func (rt *Runtime) NewPool(mod *Module, cfg PoolConfig) (*Pool, error) {
	if cfg.FreshState && cfg.ColdStart {
		return nil, errors.New("twine: PoolConfig.FreshState and ColdStart are mutually exclusive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = rt.Enclave.TCSCount()
	}
	if cfg.Entry == "" {
		cfg.Entry = "run"
	}
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}

	p := &Pool{
		rt:            rt,
		mod:           mod,
		entry:         cfg.Entry,
		hostIO:        cfg.HostIO,
		size:          cfg.Workers,
		maxQueue:      cfg.MaxQueue,
		submitTimeout: cfg.SubmitTimeout,
		fresh:         cfg.FreshState,
		cold:          cfg.ColdStart,
		pinned:        cfg.pinned,
		swapLabel:     cfg.swapLabel,
		free:          make([]*worker, 0, cfg.Workers),
		closed:        make(chan struct{}),
	}
	if !p.cold {
		// Cold pools never enroll: their slots hold no EPC between
		// requests, so there is nothing to swap out.
		p.swap = cfg.swap
	}
	if p.swapLabel == "" {
		p.swapLabel = "swap:pool"
	}
	p.newSys = func(i int) (*wasi.System, error) {
		return rt.Sys.Clone(wasi.CloneOptions{
			Args:   []string{fmt.Sprintf("worker-%d", i)},
			Stdout: stdout,
			Stderr: stderr,
		})
	}

	// Worker 0: the expensive path, once.
	sys0, err := p.newSys(0)
	if err != nil {
		return nil, err
	}
	first, err := rt.newInstance(mod, sys0, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Init != "" {
		if _, err := first.Invoke(cfg.Init); err != nil {
			return nil, fmt.Errorf("twine: pool init %q: %w", cfg.Init, err)
		}
	}
	p.snap = first.In.Snapshot()

	if p.cold {
		// The snapshot holds its own copy of the golden state; the
		// template instance's arena is returned to the enclave and the
		// free list degenerates to cfg.Workers concurrency tokens.
		if err := first.Release(); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Workers; i++ {
			p.free = append(p.free, &worker{id: i, idleSince: time.Now()})
		}
		return p, nil
	}

	p.free = append(p.free, p.bind(first, 0))

	// Workers 1..N-1: copy-from-snapshot.
	for i := 1; i < cfg.Workers; i++ {
		sys, err := p.newSys(i)
		if err != nil {
			return nil, err
		}
		w, err := rt.newInstance(mod, sys, p.snap)
		if err != nil {
			return nil, err
		}
		p.free = append(p.free, p.bind(w, i))
	}
	if p.swap != nil {
		// Enroll under the registry-wide resident bound: the group may
		// immediately suspend this pool's (or another pool's) coldest idle
		// workers to get back under MaxResident.
		p.swap.enroll(p, len(p.free))
	}
	return p, nil
}

// bind wraps an instance as a pool worker, recording its identity and
// clean WASI fingerprint.
func (p *Pool) bind(inst *Instance, id int) *worker {
	open, next := inst.Sys.FdFingerprint()
	return &worker{Instance: inst, id: id, fdOpen: open, fdNext: next, idleSince: time.Now()}
}

// sealLabel is the worker's sealing label: stable across its
// suspend/resume cycles, distinct across workers and tenants, so a blob
// sealed for one worker can never rehydrate another.
func (p *Pool) sealLabel(id int) string {
	return fmt.Sprintf("%s:%d", p.swapLabel, id)
}

// Size returns the number of worker instances.
func (p *Pool) Size() int { return p.size }

// Stats returns a snapshot of the pool counters. The admission-side
// fields are captured together under the pool lock, so the reported
// QueueDepth is the depth the Waits/Rejected/TimedOut counters describe
// and never exceeds MaxQueue.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	s := PoolStats{
		Waits:      p.waits,
		Rejected:   p.rejected,
		TimedOut:   p.timedOut,
		QueueDepth: int64(len(p.waiters)),
	}
	p.mu.Unlock()
	s.Requests = atomic.LoadInt64(&p.requests)
	s.Quarantined = atomic.LoadInt64(&p.quarantined)
	s.Repaired = atomic.LoadInt64(&p.repaired)
	s.WarmResets = atomic.LoadInt64(&p.warmResets)
	s.ColdStarts = atomic.LoadInt64(&p.coldStarts)
	s.Suspends = atomic.LoadInt64(&p.suspends)
	s.Resumes = atomic.LoadInt64(&p.resumes)
	s.Suspended = atomic.LoadInt64(&p.suspendedNow)
	s.SealBytes = atomic.LoadInt64(&p.sealBytes)
	return s
}

// Latency returns the pool's completed-request latency summary
// (fixed-bucket histogram quantiles; wall time from admission to
// completion, queueing included).
func (p *Pool) Latency() LatencySummary { return p.hist.summary() }

// ResumeLatency returns the swap tier's resume-cost summary: wall time
// from acquiring a suspended worker to it being serve-ready (unseal,
// delta apply, re-instantiation, EPC page-in — and any victim suspension
// the resume had to perform to find headroom).
func (p *Pool) ResumeLatency() LatencySummary { return p.resumeHist.summary() }

// Submit serves one request with no deadline beyond the pool's own
// SubmitTimeout: it binds a free worker (queueing while all are busy,
// subject to admission control), enters the enclave, runs the
// per-request host I/O (if any) and the entry function against args, and
// returns the results. Safe for any number of concurrent callers.
func (p *Pool) Submit(args ...uint64) ([]uint64, error) {
	return p.SubmitCtx(context.Background(), args...)
}

// SubmitCtx is Submit bounded by ctx: a Submit still waiting for a
// worker when ctx's deadline expires fails with an error wrapping
// ErrOverloaded (plain cancellation returns ctx.Err()). The deadline
// covers admission, not guest execution — once a worker is bound the
// request runs to completion, the same containment boundary the enclave
// itself has (an ECALL cannot be interrupted from outside).
func (p *Pool) SubmitCtx(ctx context.Context, args ...uint64) ([]uint64, error) {
	start := time.Now()
	w, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}

	var out []uint64
	var serr error
	if p.cold {
		out, serr = p.serveCold(args)
	} else {
		out, serr = p.serveWarm(w, args)
	}
	p.release(w)
	p.hist.observe(time.Since(start))
	if serr != nil {
		return nil, serr
	}
	atomic.AddInt64(&p.requests, 1)
	return out, nil
}

// serveWarm serves one request on a long-lived worker. In FreshState mode
// the worker is reset to the golden snapshot inside the same serve ECALL
// after a successful invoke — the warm free-list hot path — and its WASI
// state is re-cloned only when the request changed the descriptor-table
// shape. Failures quarantine and repair exactly as in stateful mode.
func (p *Pool) serveWarm(w *worker, args []uint64) ([]uint64, error) {
	var out []uint64
	serr := p.rt.guestECallSys("twine_serve", w.Sys, func() error {
		if p.hostIO != nil {
			if err := p.rt.Enclave.OCall("serve.io", p.hostIO); err != nil {
				return err
			}
		}
		var ierr error
		out, ierr = w.In.Invoke(p.entry, args...)
		if ierr != nil || !p.fresh {
			return ierr
		}
		// Warm reset on the hot path: the worker re-enters the free list
		// already stamped back to the golden snapshot, for one in-place
		// copy inside the ECALL the request already paid — no extra
		// transition, no arena allocation, no re-linking.
		if rerr := w.In.ResetFromSnapshot(p.snap); rerr != nil {
			return fmt.Errorf("twine: warm reset: %w", rerr)
		}
		atomic.AddInt64(&p.warmResets, 1)
		return nil
	})
	if serr != nil {
		if quarantinable(serr) {
			atomic.AddInt64(&p.quarantined, 1)
			p.repair(w)
		}
		return nil, serr
	}
	if p.fresh {
		if open, next := w.Sys.FdFingerprint(); open != w.fdOpen || next != w.fdNext {
			// The request dirtied the descriptor table: per-request
			// isolation requires a fresh WASI clone (cheap — a new fd map
			// over the shared storage; no enclave crossing). On clone
			// failure the worker keeps serving with the dirty table and
			// the next failure path re-clones via repair.
			if sys, err := p.newSys(w.id); err == nil {
				w.Sys = sys
				w.In.SetHostCtx(sys)
				w.fdOpen, w.fdNext = sys.FdFingerprint()
			}
		}
	}
	return out, nil
}

// serveCold serves one request on a fresh instance stamped from the pool
// snapshot and released afterwards — the per-request instantiation
// baseline FreshState is priced against. The acquired slot only bounds
// concurrency; no quarantine is needed because nothing outlives the
// request.
func (p *Pool) serveCold(args []uint64) ([]uint64, error) {
	id := int(atomic.AddInt64(&p.coldSeq, 1))
	sys, err := p.newSys(id)
	if err != nil {
		return nil, err
	}
	cw, err := p.rt.newInstance(p.mod, sys, p.snap)
	if err != nil {
		return nil, err
	}
	defer cw.Release()
	atomic.AddInt64(&p.coldStarts, 1)
	var out []uint64
	serr := p.rt.guestECallSys("twine_serve", cw.Sys, func() error {
		if p.hostIO != nil {
			if err := p.rt.Enclave.OCall("serve.io", p.hostIO); err != nil {
				return err
			}
		}
		var ierr error
		out, ierr = cw.In.Invoke(p.entry, args...)
		return ierr
	})
	if serr != nil {
		return nil, serr
	}
	return out, nil
}

// acquire binds a free worker under the pool's admission policy. Wakeup
// order is FIFO-fair: a Submit that finds earlier arrivals queued joins
// the queue behind them even if a worker happens to be free (release
// prefers waiters, so a free worker coexisting with waiters is a
// transient), and a freed worker is handed directly to the head waiter.
func (p *Pool) acquire(ctx context.Context) (*worker, error) {
	p.mu.Lock()
	if p.closedFlag {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if len(p.waiters) == 0 && len(p.free) > 0 {
		w := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.mu.Unlock()
		return p.postAcquire(w)
	}
	// Every worker is busy (or earlier arrivals are queued): join the
	// queue, subject to admission control. The depth check and the
	// enqueue are one critical section, so concurrent arrivals cannot all
	// observe a below-cap depth and the queue never exceeds MaxQueue.
	p.waits++
	if p.maxQueue > 0 && len(p.waiters) >= p.maxQueue {
		p.rejected++
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: queue full (%d waiting)", ErrOverloaded, p.maxQueue)
	}
	wtr := &poolWaiter{ch: make(chan *worker, 1)}
	p.waiters = append(p.waiters, wtr)
	p.mu.Unlock()

	var expire <-chan time.Time
	if p.submitTimeout > 0 {
		t := time.NewTimer(p.submitTimeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case w := <-wtr.ch:
		return p.postAcquire(w)
	case <-expire:
		p.abandon(wtr)
		p.mu.Lock()
		p.timedOut++
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: no worker within %v", ErrOverloaded, p.submitTimeout)
	case <-ctx.Done():
		p.abandon(wtr)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			p.mu.Lock()
			p.timedOut++
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %w", ErrOverloaded, ctx.Err())
		}
		return nil, ctx.Err()
	case <-p.closed:
		p.abandon(wtr)
		return nil, ErrPoolClosed
	}
}

// postAcquire is the gate every successful bind passes through. First
// the close re-check: a worker handed to a Submit that lost the race
// with Close goes straight back, so every queued Submit observes
// ErrPoolClosed deterministically and no worker is leaked out of the
// free list. Then transparent resume (PR 9): a suspended worker is
// rehydrated — unsealed, delta-applied, re-instantiated — before the
// caller sees it, so suspension is invisible to Submit beyond latency.
func (p *Pool) postAcquire(w *worker) (*worker, error) {
	select {
	case <-p.closed:
		p.release(w)
		return nil, ErrPoolClosed
	default:
	}
	if !p.cold && w.Instance == nil {
		if err := p.resumeWorker(w); err != nil {
			// The worker keeps its sealed state; the next acquisition
			// retries the resume.
			p.release(w)
			return nil, fmt.Errorf("twine: resume worker %d: %w", w.id, err)
		}
	}
	return w, nil
}

// abandon removes a waiter that gave up (timeout, cancellation, close).
// If a concurrent release already popped it, the handoff is in flight:
// receive the worker and put it back so pool capacity is not leaked.
func (p *Pool) abandon(wtr *poolWaiter) {
	p.mu.Lock()
	for i, q := range p.waiters {
		if q == wtr {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			p.mu.Unlock()
			return
		}
	}
	p.mu.Unlock()
	p.release(<-wtr.ch)
}

// release returns a worker to the pool: a direct handoff to the head
// waiter when one is queued (FIFO — the handoff, not a broadcast, is
// what makes wakeup order arrival order), the free list otherwise.
func (p *Pool) release(w *worker) {
	p.mu.Lock()
	if len(p.waiters) > 0 {
		wtr := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		wtr.ch <- w // buffered: a waiter is popped at most once
		return
	}
	w.idleSince = time.Now()
	p.free = append(p.free, w)
	p.mu.Unlock()
}

// quarantinable classifies a request failure (PR 6). A guest trap or an
// unclassified host error aborted the request at an arbitrary point: the
// worker's memory may hold a half-applied mutation, so it must be
// repaired before serving again. Two classes are exempt: a destroyed
// enclave (sgx.ErrDestroyed — every worker is dead and there is nothing
// to reset them into), and a transient host fault that escaped the WASI
// boundary's bounded retry (chaos.IsTransient — the fault was outside
// the enclave; by the transient contract the guest-visible operation
// never happened, so the worker's state is the pre-request state).
func quarantinable(err error) bool {
	return !errors.Is(err, sgx.ErrDestroyed) && !chaos.IsTransient(err)
}

// repair rebuilds a quarantined worker in place: guest memory, globals
// and table are reset to the pool snapshot inside an ECALL (the reset
// mutates in-enclave state, so it is accounted like any enclave entry)
// and the WASI system is re-cloned, discarding descriptor state the
// failed request may have dirtied. On failure the worker is returned to
// service unrepaired — never leaking free-list capacity — and the next
// failure retries.
func (p *Pool) repair(w *worker) {
	sys, err := p.newSys(w.id)
	if err != nil {
		return
	}
	if err := p.rt.Enclave.ECall("twine_repair", func() error {
		return w.In.ResetFromSnapshot(p.snap)
	}); err != nil {
		return
	}
	w.Sys = sys
	w.In.SetHostCtx(sys)
	w.fdOpen, w.fdNext = sys.FdFingerprint()
	atomic.AddInt64(&p.repaired, 1)
}

// suspendWorker swaps a warm worker out of the EPC (PR 9): its state is
// encoded as a delta against the golden snapshot, sealed under the
// worker's label inside one twine_suspend ECALL, and its arena is
// released — EPC residency for the worker drops to exactly zero. The
// caller must hold the worker exclusively (stolen from the free list or
// never published). WASI descriptor state does not survive: suspension
// has repair semantics, the resumed worker gets a fresh clone — the same
// contract FreshState serving already imposes per request, and the
// reason victim selection only considers idle workers.
func (p *Pool) suspendWorker(w *worker) error {
	label := p.sealLabel(w.id)
	var blob []byte
	err := p.rt.Enclave.ECall("twine_suspend", func() error {
		delta, derr := w.In.SnapshotDelta(p.snap)
		if derr != nil {
			return derr
		}
		var serr error
		blob, serr = p.rt.Enclave.Seal(label, delta)
		return serr
	})
	if err != nil {
		return err
	}
	if err := w.Instance.Release(); err != nil {
		return err
	}
	w.Instance = nil
	w.sealed = blob
	atomic.AddInt64(&p.suspends, 1)
	atomic.AddInt64(&p.suspendedNow, 1)
	atomic.AddInt64(&p.sealBytes, int64(len(blob)))
	return nil
}

// resumeWorker swaps a suspended worker back in: unseal, apply the delta
// to the golden snapshot, re-instantiate, and page the restored memory
// into the EPC — all inside one twine_resume ECALL, so a resumed
// worker's next invocation faults exactly like one that never left
// (ELDU semantics: swap-in writes the pages, so they are resident and
// referenced). Before allocating, the swap group is asked for headroom,
// which may synchronously suspend victims elsewhere; if the arena still
// does not fit (EPC headroom is policy, enclave heap is physics), one
// more victim is evicted per retry until the group runs out of victims.
func (p *Pool) resumeWorker(w *worker) (err error) {
	start := time.Now()
	if p.swap != nil {
		// Reserve the residency slot up front (suspending victims as
		// needed); a failed resume hands it back.
		p.swap.reserve()
		defer func() {
			if err != nil {
				p.swap.unreserve()
			}
		}()
	}
	sys, err := p.newSys(w.id)
	if err != nil {
		return err
	}
	label := p.sealLabel(w.id)
	var inst *Instance
	for {
		err = p.rt.Enclave.ECall("twine_resume", func() error {
			delta, derr := p.rt.Enclave.Unseal(label, w.sealed)
			if derr != nil {
				return derr
			}
			snap, aerr := wasm.ApplySnapshotDelta(p.snap, delta)
			if aerr != nil {
				return aerr
			}
			var ierr error
			inst, ierr = p.rt.instantiate(p.mod, sys, snap)
			if ierr != nil {
				return ierr
			}
			if n := int64(snap.MemBytes()); n > 0 {
				_ = inst.mem.Touch(inst.arena, n)
			}
			return nil
		})
		if err == nil {
			break
		}
		if p.swap == nil || !errors.Is(err, sgx.ErrOutOfMemory) {
			return err
		}
		if !p.swap.evictOne() {
			return err
		}
	}
	w.Instance = inst
	w.sealed = nil
	w.fdOpen, w.fdNext = sys.FdFingerprint()
	atomic.AddInt64(&p.resumes, 1)
	atomic.AddInt64(&p.suspendedNow, -1)
	p.resumeHist.observe(time.Since(start))
	return nil
}

// victimCandidates snapshots this pool's idle, resident, stealable
// workers for the swap group's victim selection, with their working-set
// stats. Pinned and cold pools, closed pools, suspended workers and
// workers idle for less than minIdle are excluded.
func (p *Pool) victimCandidates(minIdle time.Duration, now time.Time) []swapVictim {
	if p.pinned || p.cold {
		return nil
	}
	p.mu.Lock()
	if p.closedFlag {
		p.mu.Unlock()
		return nil
	}
	var out []swapVictim
	for _, w := range p.free {
		if w.Instance == nil {
			continue
		}
		if now.Sub(w.idleSince) < minIdle {
			continue
		}
		res, ref := w.ResidencyStats()
		out = append(out, swapVictim{p: p, w: w, resident: res, referenced: ref, idleSince: w.idleSince})
	}
	p.mu.Unlock()
	return out
}

// stealWorker removes w from the free list if it is still there,
// making the caller its exclusive holder. It fails when a concurrent
// acquire got there first — victim selection then moves on.
func (p *Pool) stealWorker(w *worker) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, q := range p.free {
		if q == w {
			p.free = append(p.free[:i], p.free[i+1:]...)
			return true
		}
	}
	return false
}

// Serve runs n requests across the pool's workers and blocks until all
// have completed. args(i) supplies request i's arguments (nil means no
// arguments); done(i, out, err), when non-nil, receives each result and
// may be called from multiple goroutines concurrently. Serve returns the
// first error encountered (remaining requests still run to completion).
func (p *Pool) Serve(n int, args func(i int) []uint64, done func(i int, out []uint64, err error)) error {
	return p.ServeCtx(context.Background(), n, args, done)
}

// ServeCtx is Serve with every request bounded by ctx (see SubmitCtx).
func (p *Pool) ServeCtx(ctx context.Context, n int, args func(i int) []uint64, done func(i int, out []uint64, err error)) error {
	if n <= 0 {
		return nil
	}
	var (
		next     int64 = -1
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	workers := p.size
	if workers > n {
		workers = n
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				var a []uint64
				if args != nil {
					a = args(i)
				}
				out, err := p.SubmitCtx(ctx, a...)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				if done != nil {
					done(i, out, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Close retires the pool. In-flight Submits complete; queued Submits fail
// with ErrPoolClosed (deterministically — a Submit that wins the race for
// a freed worker after Close re-checks and returns it, see postAcquire).
// The runtime and its enclave stay alive (they may serve other pools);
// destroying the enclave is the runtime owner's call.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closedFlag = true
		p.mu.Unlock()
		close(p.closed)
	})
	return nil
}
