package core

import "math"

// Bit-pattern helpers for host math intrinsics.
func f64(v uint64) float64  { return math.Float64frombits(v) }
func pf64(f float64) uint64 { return math.Float64bits(f) }

func mexp(x float64) float64    { return math.Exp(x) }
func mpow(x, y float64) float64 { return math.Pow(x, y) }
