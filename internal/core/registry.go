package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// The multi-tenant front door (PR 8). TWINE's trust argument is
// per-module — attestation binds a tenant to the bytes it runs — but an
// embedded runtime hosting many tenants cannot afford per-tenant copies
// of everything. The Registry splits the serving state by what may be
// shared and what must not:
//
//   - Compiled code is content-addressed and shared. Register hashes the
//     module bytes (SHA-256) and compiles each distinct binary exactly
//     once per enclave — the single expensive twine_load_module ECALL —
//     no matter how many tenants register it. Compiled code is immutable
//     (the reserved region is sealed execute-only at load), so sharing it
//     leaks nothing between tenants.
//   - Everything mutable is per-tenant: each tenant owns its Pool, its
//     workers' guest memories and WASI descriptor tables, its golden
//     snapshot (taken after the tenant's own Init ran), its admission
//     queue and its latency accounting. One tenant's overload rejects
//     that tenant's requests (ErrOverloaded) and nobody else's; one
//     tenant's guest state is unreachable from another's workers.
//
// Tenants default to FreshState serving — every request sees the golden
// snapshot via warm in-place reset — because cross-request isolation is
// the safe default when request origins are mutually untrusting. A
// tenant that wants the stateful-serving trade (PR 3) opts in with
// TenantConfig.Stateful.

// ErrUnknownTenant is returned by Registry.Submit for a name no Register
// call created.
var ErrUnknownTenant = errors.New("twine: unknown tenant")

// TenantConfig shapes one tenant's serving pool. The zero value is a
// one-worker, FreshState tenant with an unbounded queue, entry "run".
type TenantConfig struct {
	// Workers is the tenant's worker count (default 1 — tenants share the
	// enclave's TCS pool, so a tenant's workers bound its concurrency
	// share, not the enclave's).
	Workers int
	// Entry and Init are as in PoolConfig (default entry "run").
	Entry string
	Init  string
	// HostIO, when set, runs outside the enclave at the start of every
	// request (see PoolConfig.HostIO).
	HostIO func() error
	// MaxQueue is this tenant's queue share: how many of its Submits may
	// wait at once before further ones are rejected with ErrOverloaded
	// (0 = unbounded). Per-tenant, so one tenant saturating its share
	// never consumes another's admission capacity.
	MaxQueue int
	// SubmitTimeout bounds a queued Submit's wait (see PoolConfig).
	SubmitTimeout time.Duration
	// Stateful opts out of FreshState serving: the tenant's workers keep
	// guest state across requests (the PR 3 trade).
	Stateful bool
	// ColdStart serves by per-request instantiation (the warm-free-list
	// ablation; see PoolConfig.ColdStart). Mutually exclusive with
	// Stateful.
	ColdStart bool
	// Stdout/Stderr receive the tenant's guest output (default discard).
	Stdout io.Writer
	Stderr io.Writer
}

// Tenant is one registered (module, config) pair and its serving pool.
type Tenant struct {
	name string
	mod  *Module
	pool *Pool
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Module returns the tenant's (possibly shared) compiled module.
func (t *Tenant) Module() *Module { return t.mod }

// Pool returns the tenant's serving pool.
func (t *Tenant) Pool() *Pool { return t.pool }

// Submit serves one request for this tenant (see Pool.Submit).
func (t *Tenant) Submit(args ...uint64) ([]uint64, error) {
	return t.pool.Submit(args...)
}

// SubmitCtx is Submit bounded by ctx (see Pool.SubmitCtx).
func (t *Tenant) SubmitCtx(ctx context.Context, args ...uint64) ([]uint64, error) {
	return t.pool.SubmitCtx(ctx, args...)
}

// Stats returns the tenant's serving counters and latency summary.
func (t *Tenant) Stats() TenantStats {
	return TenantStats{Pool: t.pool.Stats(), Latency: t.pool.Latency()}
}

// TenantStats is one tenant's accounting: pool counters plus the
// fixed-bucket latency quantiles.
type TenantStats struct {
	Pool    PoolStats
	Latency LatencySummary
}

// RegistryStats summarises the registry: how much compiled code is
// shared and each tenant's serving accounting.
type RegistryStats struct {
	// Tenants is the number of registered tenants; CompiledModules the
	// number of distinct binaries actually compiled. Their difference is
	// code sharing at work.
	Tenants         int
	CompiledModules int
	// CompileHits counts Register calls served from the compiled-code
	// cache instead of a twine_load_module ECALL.
	CompileHits int64
	// PerTenant maps tenant name to its accounting.
	PerTenant map[string]TenantStats
}

// Registry is the multi-tenant serving front door: a content-addressed
// compiled-module cache plus a named tenant table. Safe for concurrent
// use; Register and Submit may race freely.
type Registry struct {
	rt *Runtime

	mu      sync.Mutex
	mods    map[[sha256.Size]byte]*Module
	tenants map[string]*Tenant
	hits    int64
	closed  bool
}

// NewRegistry creates an empty registry over the runtime's enclave.
func (rt *Runtime) NewRegistry() *Registry {
	return &Registry{
		rt:      rt,
		mods:    make(map[[sha256.Size]byte]*Module),
		tenants: make(map[string]*Tenant),
	}
}

// Register creates tenant name serving wasmBytes under cfg. The bytes
// are compiled only if no previous Register delivered the same binary
// (content hash, not name, keys the cache); the tenant's pool — workers,
// snapshot, queue, accounting — is always its own. Duplicate names are
// an error: a tenant's identity must not be silently rebound.
func (r *Registry) Register(name string, wasmBytes []byte, cfg TenantConfig) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("twine: empty tenant name")
	}
	if cfg.Stateful && cfg.ColdStart {
		return nil, errors.New("twine: TenantConfig.Stateful and ColdStart are mutually exclusive")
	}
	key := sha256.Sum256(wasmBytes)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("twine: tenant %q already registered", name)
	}
	mod, cached := r.mods[key]
	r.mu.Unlock()

	// Compile outside the registry lock: loading is an ECALL and may be
	// slow; concurrent Registers of the same new binary may both compile,
	// and the loser's copy is dropped in favour of the first published —
	// wasteful but correct (compiled code is immutable).
	if !cached {
		m, err := r.rt.LoadModule(wasmBytes)
		if err != nil {
			return nil, fmt.Errorf("twine: register %q: %w", name, err)
		}
		r.mu.Lock()
		if prior, ok := r.mods[key]; ok {
			mod = prior
			r.hits++
		} else {
			r.mods[key] = m
			mod = m
		}
		r.mu.Unlock()
	} else {
		r.mu.Lock()
		r.hits++
		r.mu.Unlock()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	pool, err := r.rt.NewPool(mod, PoolConfig{
		Workers:       workers,
		Entry:         cfg.Entry,
		Init:          cfg.Init,
		HostIO:        cfg.HostIO,
		MaxQueue:      cfg.MaxQueue,
		SubmitTimeout: cfg.SubmitTimeout,
		FreshState:    !cfg.Stateful && !cfg.ColdStart,
		ColdStart:     cfg.ColdStart,
		Stdout:        cfg.Stdout,
		Stderr:        cfg.Stderr,
	})
	if err != nil {
		return nil, fmt.Errorf("twine: register %q: %w", name, err)
	}
	ten := &Tenant{name: name, mod: mod, pool: pool}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		pool.Close()
		return nil, ErrPoolClosed
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		pool.Close()
		return nil, fmt.Errorf("twine: tenant %q already registered", name)
	}
	r.tenants[name] = ten
	r.mu.Unlock()
	return ten, nil
}

// Tenant returns the named tenant, or nil if none is registered.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// Submit serves one request for the named tenant.
func (r *Registry) Submit(tenant string, args ...uint64) ([]uint64, error) {
	return r.SubmitCtx(context.Background(), tenant, args...)
}

// SubmitCtx is Submit bounded by ctx. An unknown tenant fails with an
// error wrapping ErrUnknownTenant — an admission failure, never a panic,
// so the front door can face untrusted tenant names.
func (r *Registry) SubmitCtx(ctx context.Context, tenant string, args ...uint64) ([]uint64, error) {
	t := r.Tenant(tenant)
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	return t.pool.SubmitCtx(ctx, args...)
}

// Stats returns a registry-wide snapshot: sharing counters plus each
// tenant's pool stats and latency summary.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	s := RegistryStats{
		Tenants:         len(r.tenants),
		CompiledModules: len(r.mods),
		CompileHits:     r.hits,
		PerTenant:       make(map[string]TenantStats, len(r.tenants)),
	}
	tens := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tens = append(tens, t)
	}
	r.mu.Unlock()
	// Per-tenant stats are taken outside the registry lock: each is a
	// pool-lock snapshot of its own.
	for _, t := range tens {
		s.PerTenant[t.name] = t.Stats()
	}
	return s
}

// Close closes every tenant pool. The runtime and its enclave stay
// alive; compiled modules remain usable by pools created directly.
func (r *Registry) Close() error {
	r.mu.Lock()
	r.closed = true
	tens := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tens = append(tens, t)
	}
	r.mu.Unlock()
	for _, t := range tens {
		t.pool.Close()
	}
	return nil
}
