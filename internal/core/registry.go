package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// The multi-tenant front door (PR 8). TWINE's trust argument is
// per-module — attestation binds a tenant to the bytes it runs — but an
// embedded runtime hosting many tenants cannot afford per-tenant copies
// of everything. The Registry splits the serving state by what may be
// shared and what must not:
//
//   - Compiled code is content-addressed and shared. Register hashes the
//     module bytes (SHA-256) and compiles each distinct binary exactly
//     once per enclave — the single expensive twine_load_module ECALL —
//     no matter how many tenants register it. Compiled code is immutable
//     (the reserved region is sealed execute-only at load), so sharing it
//     leaks nothing between tenants.
//   - Everything mutable is per-tenant: each tenant owns its Pool, its
//     workers' guest memories and WASI descriptor tables, its golden
//     snapshot (taken after the tenant's own Init ran), its admission
//     queue and its latency accounting. One tenant's overload rejects
//     that tenant's requests (ErrOverloaded) and nobody else's; one
//     tenant's guest state is unreachable from another's workers.
//
// Tenants default to FreshState serving — every request sees the golden
// snapshot via warm in-place reset — because cross-request isolation is
// the safe default when request origins are mutually untrusting. A
// tenant that wants the stateful-serving trade (PR 3) opts in with
// TenantConfig.Stateful.

// ErrUnknownTenant is returned by Registry.Submit for a name no Register
// call created.
var ErrUnknownTenant = errors.New("twine: unknown tenant")

// TenantConfig shapes one tenant's serving pool. The zero value is a
// one-worker, FreshState tenant with an unbounded queue, entry "run".
type TenantConfig struct {
	// Workers is the tenant's worker count (default 1 — tenants share the
	// enclave's TCS pool, so a tenant's workers bound its concurrency
	// share, not the enclave's).
	Workers int
	// Entry and Init are as in PoolConfig (default entry "run").
	Entry string
	Init  string
	// HostIO, when set, runs outside the enclave at the start of every
	// request (see PoolConfig.HostIO).
	HostIO func() error
	// MaxQueue is this tenant's queue share: how many of its Submits may
	// wait at once before further ones are rejected with ErrOverloaded
	// (0 = unbounded). Per-tenant, so one tenant saturating its share
	// never consumes another's admission capacity.
	MaxQueue int
	// SubmitTimeout bounds a queued Submit's wait (see PoolConfig).
	SubmitTimeout time.Duration
	// Stateful opts out of FreshState serving: the tenant's workers keep
	// guest state across requests (the PR 3 trade).
	Stateful bool
	// ColdStart serves by per-request instantiation (the warm-free-list
	// ablation; see PoolConfig.ColdStart). Mutually exclusive with
	// Stateful.
	ColdStart bool
	// Pinned exempts this tenant's workers from swap-tier victim
	// selection (PR 9): they stay EPC-resident whatever the pressure —
	// for latency-critical tenants that cannot afford a resume on their
	// path. Pinned workers still count against RegistryConfig.MaxResident.
	Pinned bool
	// Stdout/Stderr receive the tenant's guest output (default discard).
	Stdout io.Writer
	Stderr io.Writer
}

// Tenant is one registered (module, config) pair and its serving pool.
type Tenant struct {
	name string
	mod  *Module
	pool *Pool
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Module returns the tenant's (possibly shared) compiled module.
func (t *Tenant) Module() *Module { return t.mod }

// Pool returns the tenant's serving pool.
func (t *Tenant) Pool() *Pool { return t.pool }

// Submit serves one request for this tenant (see Pool.Submit).
func (t *Tenant) Submit(args ...uint64) ([]uint64, error) {
	return t.pool.Submit(args...)
}

// SubmitCtx is Submit bounded by ctx (see Pool.SubmitCtx).
func (t *Tenant) SubmitCtx(ctx context.Context, args ...uint64) ([]uint64, error) {
	return t.pool.SubmitCtx(ctx, args...)
}

// Stats returns the tenant's serving counters and latency summaries.
func (t *Tenant) Stats() TenantStats {
	return TenantStats{
		Pool:          t.pool.Stats(),
		Latency:       t.pool.Latency(),
		ResumeLatency: t.pool.ResumeLatency(),
	}
}

// TenantStats is one tenant's accounting: pool counters plus the
// fixed-bucket latency quantiles for requests and for swap resumes.
type TenantStats struct {
	Pool          PoolStats
	Latency       LatencySummary
	ResumeLatency LatencySummary
}

// RegistryStats summarises the registry: how much compiled code is
// shared, the swap tier's aggregate activity, and each tenant's serving
// accounting.
type RegistryStats struct {
	// Tenants is the number of registered tenants; CompiledModules the
	// number of distinct binaries actually compiled. Their difference is
	// code sharing at work.
	Tenants         int
	CompiledModules int
	// CompileHits counts Register calls served from the compiled-code
	// cache instead of a twine_load_module ECALL.
	CompileHits int64
	// Swap-tier aggregates over every tenant (PR 9); the conservation law
	// Suspends == Resumes + Suspended holds across the registry.
	Suspends  int64
	Resumes   int64
	Suspended int64
	SealBytes int64
	// PerTenant maps tenant name to its accounting.
	PerTenant map[string]TenantStats
}

// RegistryConfig shapes the registry's swap tier (PR 9). The zero value
// disables it: workers stay EPC-resident until Close, exactly the PR 8
// behaviour.
type RegistryConfig struct {
	// MaxResident bounds how many warm workers may hold EPC arenas at
	// once across every tenant (0 = unbounded). Registering or resuming
	// past the bound synchronously suspends the coldest-largest idle
	// workers — state sealed to untrusted storage, arenas released — and
	// the next Submit for a suspended tenant transparently resumes one.
	MaxResident int
	// IdleSuspendAge, when positive, starts a background reaper that
	// suspends any non-pinned worker idle for at least this long, even
	// under the bound — returning EPC headroom to whatever else the
	// enclave runs.
	IdleSuspendAge time.Duration
	// ReaperInterval is how often the reaper sweeps (default:
	// IdleSuspendAge/2, floor 10ms). Ignored when IdleSuspendAge is 0.
	ReaperInterval time.Duration
}

// Registry is the multi-tenant serving front door: a content-addressed
// compiled-module cache plus a named tenant table. Safe for concurrent
// use; Register and Submit may race freely.
type Registry struct {
	rt   *Runtime
	swap *swapGroup // nil when the swap tier is disabled

	mu      sync.Mutex
	mods    map[[sha256.Size]byte]*Module
	tenants map[string]*Tenant
	hits    int64
	closed  bool

	reaperStop chan struct{}
	reaperDone chan struct{}
}

// NewRegistry creates an empty registry over the runtime's enclave. The
// zero RegistryConfig gives the PR 8 registry; MaxResident and/or
// IdleSuspendAge turn on the swap tier (PR 9).
func (rt *Runtime) NewRegistry(cfg RegistryConfig) *Registry {
	r := &Registry{
		rt:      rt,
		mods:    make(map[[sha256.Size]byte]*Module),
		tenants: make(map[string]*Tenant),
	}
	if cfg.MaxResident > 0 || cfg.IdleSuspendAge > 0 {
		r.swap = &swapGroup{max: cfg.MaxResident}
	}
	if cfg.IdleSuspendAge > 0 {
		interval := cfg.ReaperInterval
		if interval <= 0 {
			interval = cfg.IdleSuspendAge / 2
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		r.reaperStop = make(chan struct{})
		r.reaperDone = make(chan struct{})
		go r.reap(interval, cfg.IdleSuspendAge)
	}
	return r
}

// reap is the background reaper: every interval it suspends workers idle
// for at least age. Suspension failures are skipped inside suspendIdle;
// the reaper itself never errors.
func (r *Registry) reap(interval, age time.Duration) {
	defer close(r.reaperDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.reaperStop:
			return
		case <-tick.C:
			r.swap.suspendIdle(age)
		}
	}
}

// SuspendIdle synchronously suspends every eligible worker idle for at
// least olderThan (0 drains all idle workers) and returns how many were
// suspended. A no-op 0 when the swap tier is disabled. Useful to shed
// EPC ahead of known pressure — and for tests that need deterministic
// suspension without waiting on the reaper.
func (r *Registry) SuspendIdle(olderThan time.Duration) int {
	if r.swap == nil {
		return 0
	}
	return r.swap.suspendIdle(olderThan)
}

// Register creates tenant name serving wasmBytes under cfg. The bytes
// are compiled only if no previous Register delivered the same binary
// (content hash, not name, keys the cache); the tenant's pool — workers,
// snapshot, queue, accounting — is always its own. Duplicate names are
// an error: a tenant's identity must not be silently rebound.
func (r *Registry) Register(name string, wasmBytes []byte, cfg TenantConfig) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("twine: empty tenant name")
	}
	if cfg.Stateful && cfg.ColdStart {
		return nil, errors.New("twine: TenantConfig.Stateful and ColdStart are mutually exclusive")
	}
	key := sha256.Sum256(wasmBytes)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("twine: tenant %q already registered", name)
	}
	mod, cached := r.mods[key]
	r.mu.Unlock()

	// Compile outside the registry lock: loading is an ECALL and may be
	// slow; concurrent Registers of the same new binary may both compile,
	// and the loser's copy is dropped in favour of the first published —
	// wasteful but correct (compiled code is immutable).
	if !cached {
		m, err := r.rt.LoadModule(wasmBytes)
		if err != nil {
			return nil, fmt.Errorf("twine: register %q: %w", name, err)
		}
		r.mu.Lock()
		if prior, ok := r.mods[key]; ok {
			mod = prior
			r.hits++
		} else {
			r.mods[key] = m
			mod = m
		}
		r.mu.Unlock()
	} else {
		r.mu.Lock()
		r.hits++
		r.mu.Unlock()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	pcfg := PoolConfig{
		Workers:       workers,
		Entry:         cfg.Entry,
		Init:          cfg.Init,
		HostIO:        cfg.HostIO,
		MaxQueue:      cfg.MaxQueue,
		SubmitTimeout: cfg.SubmitTimeout,
		FreshState:    !cfg.Stateful && !cfg.ColdStart,
		ColdStart:     cfg.ColdStart,
		Stdout:        cfg.Stdout,
		Stderr:        cfg.Stderr,
	}
	// Cold-start pools hold no warm workers — nothing for the swap tier
	// to account for or suspend.
	if r.swap != nil && !cfg.ColdStart {
		pcfg.swap = r.swap
		pcfg.swapLabel = "swap:" + name
		pcfg.pinned = cfg.Pinned
	}
	pool, err := r.rt.NewPool(mod, pcfg)
	if err != nil {
		return nil, fmt.Errorf("twine: register %q: %w", name, err)
	}
	ten := &Tenant{name: name, mod: mod, pool: pool}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		pool.Close()
		return nil, ErrPoolClosed
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		pool.Close()
		return nil, fmt.Errorf("twine: tenant %q already registered", name)
	}
	r.tenants[name] = ten
	r.mu.Unlock()
	return ten, nil
}

// Tenant returns the named tenant, or nil if none is registered.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// Submit serves one request for the named tenant.
func (r *Registry) Submit(tenant string, args ...uint64) ([]uint64, error) {
	return r.SubmitCtx(context.Background(), tenant, args...)
}

// SubmitCtx is Submit bounded by ctx. An unknown tenant fails with an
// error wrapping ErrUnknownTenant — an admission failure, never a panic,
// so the front door can face untrusted tenant names.
func (r *Registry) SubmitCtx(ctx context.Context, tenant string, args ...uint64) ([]uint64, error) {
	t := r.Tenant(tenant)
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	return t.pool.SubmitCtx(ctx, args...)
}

// Stats returns a registry-wide snapshot: sharing counters plus each
// tenant's pool stats and latency summary.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	s := RegistryStats{
		Tenants:         len(r.tenants),
		CompiledModules: len(r.mods),
		CompileHits:     r.hits,
		PerTenant:       make(map[string]TenantStats, len(r.tenants)),
	}
	tens := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tens = append(tens, t)
	}
	r.mu.Unlock()
	// Per-tenant stats are taken outside the registry lock: each is a
	// pool-lock snapshot of its own.
	for _, t := range tens {
		ts := t.Stats()
		s.PerTenant[t.name] = ts
		s.Suspends += ts.Pool.Suspends
		s.Resumes += ts.Pool.Resumes
		s.Suspended += ts.Pool.Suspended
		s.SealBytes += ts.Pool.SealBytes
	}
	return s
}

// Close stops the reaper and closes every tenant pool. The runtime and
// its enclave stay alive; compiled modules remain usable by pools
// created directly.
func (r *Registry) Close() error {
	r.mu.Lock()
	r.closed = true
	tens := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tens = append(tens, t)
	}
	r.mu.Unlock()
	if r.reaperStop != nil {
		close(r.reaperStop)
		<-r.reaperDone
	}
	for _, t := range tens {
		t.pool.Close()
	}
	return nil
}
