package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twine/wasmgen"
)

// openerModule builds a WASI-dirtying guest: run() opens (creating)
// "req.txt" against the preopened root (fd 3) without closing it, so each
// call grows the descriptor table by one. It returns errno*256 + the new
// fd, which exposes whether WASI state persists across requests: a clean
// clone always hands out fd 4 (0..2 stdio, 3 preopen), a dirty one counts
// up.
func openerModule() []byte {
	m := wasmgen.NewModule()
	pathOpen := m.ImportFunc("wasi_snapshot_preview1", "path_open",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32,
			wasmgen.I64, wasmgen.I64, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	m.Memory(1, 1)
	path := "req.txt"
	m.Data(64, []byte(path))
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	f.I32Const(3).I32Const(0).I32Const(64).I32Const(int32(len(path))).
		I32Const(1).                                     // oflags: CREAT
		I64Const((1 << 29) - 1).I64Const((1 << 29) - 1). // rights: all
		I32Const(0).I32Const(128).Call(pathOpen)
	f.I32Const(256).I32Mul()
	f.I32Const(128).I32Load(0).I32Add()
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// TestPoolFIFONoStarvation is the PR 8 fairness regression: two hot
// submitters looping against a one-worker pool must not starve a queued
// third. The episode is fully sequenced — worker held, hot A queued, hot
// B queued, victim queued, worker released — so FIFO handoff makes the
// completion order (and, with the counter module, each request's return
// value) deterministic: the victim sees counter value 3, never more,
// even though both hot submitters keep re-queueing the moment they
// complete. The pre-PR 8 pool handed freed workers to whichever Submit
// won a channel race, which let the hot pair leapfrog the victim
// arbitrarily long. Run under -race in CI.
func TestPoolFIFONoStarvation(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	w := pool.takeWorker(t)

	const hotRounds = 25
	var wg sync.WaitGroup
	hot := func() {
		defer wg.Done()
		for i := 0; i < hotRounds; i++ {
			if _, err := pool.Submit(); err != nil {
				t.Errorf("hot submit: %v", err)
				return
			}
		}
	}
	// Sequence the queue: hot A, then hot B, then the victim.
	wg.Add(1)
	go hot()
	waitQueueDepth(t, pool, 1)
	wg.Add(1)
	go hot()
	waitQueueDepth(t, pool, 2)

	victim := make(chan uint64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, err := pool.Submit()
		if err != nil {
			t.Errorf("victim submit: %v", err)
			victim <- 0
			return
		}
		victim <- out[0]
	}()
	waitQueueDepth(t, pool, 3)

	pool.release(w)
	if got := <-victim; got != 3 {
		t.Errorf("victim served as request %d, want 3 (queued third; FIFO broken)", got)
	}
	wg.Wait()
	if s := pool.Stats(); s.Requests != 2*hotRounds+1 {
		t.Errorf("Requests = %d, want %d", s.Requests, 2*hotRounds+1)
	}
}

// TestPoolQueueDepthCapped (satellite 2): QueueDepth is captured under
// the pool lock together with the admission counters, so it can never be
// observed above MaxQueue — here a held worker turns 10 concurrent
// Submits into a deterministic admission episode (3 queued, 7 rejected)
// while a sampler hammers Stats() the whole time.
func TestPoolQueueDepthCapped(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	const maxQueue = 3
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1, MaxQueue: maxQueue})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	w := pool.takeWorker(t)

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := pool.Stats().QueueDepth; d > maxQueue {
				t.Errorf("QueueDepth = %d > MaxQueue = %d", d, maxQueue)
				return
			}
		}
	}()

	const submits = 10
	var rejected int64
	var wg sync.WaitGroup
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Submit(1); err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("submit failed with %v, want ErrOverloaded", err)
				}
				atomic.AddInt64(&rejected, 1)
			}
		}()
	}
	// All 10 race admission against the held worker: exactly maxQueue are
	// admitted, the rest bounce. Wait for the episode to settle before
	// releasing, so the queued trio drains deterministically.
	waitQueueDepth(t, pool, maxQueue)
	// The rejected goroutines may still be racing admission; converge on
	// the counter before releasing so the queued trio drains alone.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Rejected != submits-maxQueue {
		if time.Now().After(deadline) {
			t.Fatalf("Rejected never reached %d (now %d)", submits-maxQueue, pool.Stats().Rejected)
		}
		time.Sleep(50 * time.Microsecond)
	}
	pool.release(w)
	wg.Wait()
	close(stop)
	sampler.Wait()

	s := pool.Stats()
	want := PoolStats{Requests: maxQueue, Waits: submits, Rejected: submits - maxQueue}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
	if got := atomic.LoadInt64(&rejected); got != submits-maxQueue {
		t.Errorf("rejected submits = %d, want %d", got, submits-maxQueue)
	}
}

// TestPoolFreshStateServing: in FreshState mode every request sees the
// golden snapshot — the counter module reports 1 on every request, on
// every worker, because completed workers are reset in place before
// re-entering the free list. The WarmResets counter proves the hot path
// (not repair) did the resetting.
func TestPoolFreshStateServing(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 2, FreshState: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const n = 20
	if err := pool.Serve(n, nil, func(i int, out []uint64, err error) {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		if out[0] != 1 {
			t.Errorf("request %d saw counter %d; state leaked across requests", i, out[0])
		}
	}); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s := pool.Stats()
	if s.Requests != n || s.WarmResets != n || s.ColdStarts != 0 {
		t.Errorf("stats = %+v, want Requests=WarmResets=%d, ColdStarts=0", s, n)
	}
	if l := pool.Latency(); l.Count != n || l.P50 <= 0 || l.P99 < l.P50 {
		t.Errorf("latency summary inconsistent: %+v", l)
	}
}

// TestPoolFreshStateFdIsolation (satellite 4, descriptor-table half):
// a guest that opens a file per request — without closing it — must see
// an identical fd table on every one of 100 serve/reset cycles. The
// opener module returns the fd it was handed: always 4 on a clean clone.
// After the storm the worker's fingerprint is back at its bind-time
// baseline, proving the dirty-table re-clone ran.
func TestPoolFreshStateFdIsolation(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(openerModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1, FreshState: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for i := 0; i < 100; i++ {
		out, err := pool.Submit()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		// errno*256 + fd: errno 0 and fd 4 == a pristine table.
		if out[0] != 4 {
			t.Fatalf("cycle %d returned %d, want errno 0 / fd 4 (WASI state leaked)", i, out[0])
		}
	}
	w := pool.takeWorker(t)
	defer pool.release(w)
	if open, next := w.Sys.FdFingerprint(); open != 4 || next != 4 {
		t.Errorf("worker fd fingerprint after storm = (%d, %d), want (4, 4)", open, next)
	}
}

// TestPoolColdStartServing: ColdStart mode prices per-request isolation
// without warm free lists — a fresh instance per request, released after.
// Same observable isolation as FreshState (counter always 1); the
// allocator must absorb 50 instantiate/release cycles inside an 8 MiB
// heap (a leaked arena per request would exhaust it in ~14), proving
// Instance.Release really returns arenas.
func TestPoolColdStartServing(t *testing.T) {
	cfg := testConfig(func(c *Config) {
		c.SGX.TCSNum = 2
		c.SGX.HeapSize = 8 << 20
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewPool(mod, PoolConfig{FreshState: true, ColdStart: true}); err == nil {
		t.Fatal("NewPool accepted FreshState+ColdStart")
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 2, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const n = 50
	if err := pool.Serve(n, nil, func(i int, out []uint64, err error) {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		if out[0] != 1 {
			t.Errorf("request %d saw counter %d on a cold instance", i, out[0])
		}
	}); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s := pool.Stats()
	if s.Requests != n || s.ColdStarts != n || s.WarmResets != 0 {
		t.Errorf("stats = %+v, want Requests=ColdStarts=%d, WarmResets=0", s, n)
	}
}
