package core

import (
	"io"
	"sync"
	"testing"

	"twine/wasmgen"
)

// pureModule builds a read-only kernel: run(x) folds a data segment into
// a checksum and adds x. No writes — every invocation on any worker must
// return the same value for the same argument, which is what lets the
// pool tests compare concurrent results against a sequential reference.
func pureModule() []byte {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	seg := make([]byte, 256)
	for i := range seg {
		seg[i] = byte(i*7 + 3)
	}
	m.Data(0, seg)

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	i, s := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.I32)
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(int32(len(seg))).I32GeS().BrIf(1)
	f.LocalGet(s).LocalGet(i).I32Load8U(0).I32Add().LocalSet(s)
	f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(s).LocalGet(0).I32Add()
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// counterModule builds a stateful worker: run() bumps a memory cell and
// returns the new value, exposing whether instances share state.
func counterModule() []byte {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	f.I32Const(0).I32Const(0).I32Load(0).I32Const(1).I32Add().I32Store(0)
	f.I32Const(0).I32Load(0)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// White-box free-list access for tests that hold workers out of service
// or inspect them directly. Workers taken this way go back through
// p.release, the same path a completing Submit uses.
func (p *Pool) takeWorker(t *testing.T) *worker {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		t.Fatal("free list empty")
	}
	w := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return w
}

// freeLen reports the current free-list size.
func (p *Pool) freeLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

func poolRuntime(t *testing.T, tcs int) *Runtime {
	t.Helper()
	cfg := testConfig(func(c *Config) {
		c.SGX.TCSNum = tcs
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt
}

// TestPoolServeMatchesSequential: a batch served concurrently over the
// pool must compute exactly what a lone instance computes.
func TestPoolServeMatchesSequential(t *testing.T) {
	rt := poolRuntime(t, 4)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	ref, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	want := make([]uint64, 16)
	for i := range want {
		out, err := ref.Invoke("run", uint64(i))
		if err != nil {
			t.Fatalf("reference Invoke: %v", err)
		}
		want[i] = out[0]
	}

	pool, err := rt.NewPool(mod, PoolConfig{Workers: 4})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()

	got := make([]uint64, len(want))
	var mu sync.Mutex
	err = pool.Serve(len(want),
		func(i int) []uint64 { return []uint64{uint64(i)} },
		func(i int, out []uint64, err error) {
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			mu.Lock()
			got[i] = out[0]
			mu.Unlock()
		})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s := pool.Stats(); s.Requests != int64(len(want)) {
		t.Errorf("pool Requests = %d, want %d", s.Requests, len(want))
	}
	if es := rt.Enclave.Stats(); es.TCSMaxBusy > 4 {
		t.Errorf("TCSMaxBusy = %d with 4 TCS", es.TCSMaxBusy)
	}
}

// TestPoolWorkersIsolated (white-box): every worker owns a distinct wasm
// instance, WASI System and guest memory; writing one worker's memory
// must not show in another's.
func TestPoolWorkersIsolated(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 3})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()

	var workers []*worker
	for i := 0; i < pool.Size(); i++ {
		workers = append(workers, pool.takeWorker(t))
	}
	defer func() {
		for _, w := range workers {
			pool.release(w)
		}
	}()
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			if workers[i].In == workers[j].In {
				t.Errorf("workers %d and %d share a wasm instance", i, j)
			}
			if workers[i].Sys == workers[j].Sys {
				t.Errorf("workers %d and %d share a WASI System", i, j)
			}
			if workers[i].arena == workers[j].arena {
				t.Errorf("workers %d and %d share an enclave arena", i, j)
			}
		}
		if workers[i].Sys == rt.Sys {
			t.Errorf("worker %d uses the runtime's primary System", i)
		}
	}

	// Mutate worker 0's guest memory through its counter; the others stay
	// untouched.
	if _, err := workers[0].Invoke("run"); err != nil {
		t.Fatal(err)
	}
	out1, err := workers[1].Invoke("run")
	if err != nil {
		t.Fatal(err)
	}
	if out1[0] != 1 {
		t.Errorf("worker 1 counter = %d after worker 0 ran; state leaked", out1[0])
	}
}

// TestPoolStatefulWorkers documents the serving contract: workers are
// long-lived, so per-worker state accumulates across requests; with one
// worker the counter is strictly sequential.
func TestPoolStatefulWorkers(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 1; i <= 3; i++ {
		out, err := pool.Submit()
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if out[0] != uint64(i) {
			t.Errorf("submit %d returned %d", i, out[0])
		}
	}
}

// TestPoolSubmitAfterClose: a closed pool rejects new requests.
func TestPoolSubmitAfterClose(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.NewPool(mod, PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = pool.Close()
	if _, err := pool.Submit(0); err != ErrPoolClosed {
		t.Errorf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

// TestConcurrentPlainInstancesWASI: plain NewInstance instances carry
// their own WASI System clones, so concurrent guests doing WASI traffic
// (fd_write + proc_exit here) never race on a shared descriptor table —
// the regression this pins ran all WASI calls of every instance through
// one System.
func TestConcurrentPlainInstancesWASI(t *testing.T) {
	cfg := testConfig(func(c *Config) {
		c.SGX.TCSNum = 4
		c.Stdout = io.Discard // shared writer must be concurrency-safe
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(helloModule("concurrent wasi traffic\n", 7))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	const n = 6
	instances := make([]*Instance, n)
	for i := range instances {
		if instances[i], err = rt.NewInstance(mod); err != nil {
			t.Fatalf("NewInstance %d: %v", i, err)
		}
		if instances[i].Sys == rt.Sys {
			t.Fatal("plain instance shares the runtime's primary System")
		}
	}
	var wg sync.WaitGroup
	for i := range instances {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, err := instances[i].Run()
			if err != nil {
				t.Errorf("instance %d Run: %v", i, err)
				return
			}
			if code != 7 {
				t.Errorf("instance %d exit code = %d, want 7", i, code)
			}
		}()
	}
	wg.Wait()
	// Exit state is per-instance: each clone recorded its own proc_exit.
	for i := range instances {
		if exited, code := instances[i].Sys.Exited(); !exited || code != 7 {
			t.Errorf("instance %d Sys exited=%v code=%d", i, exited, code)
		}
	}
	if exited, _ := rt.Sys.Exited(); exited {
		t.Error("primary System saw a proc_exit; instance state leaked")
	}
}

// TestConcurrencyFidelity is the PR 3 acceptance guard: with one TCS (and
// switchless off, the bit-exact dispatch) a sequential workload's
// ECALL/OCALL/fault/eviction counters must be identical to the same
// workload on a many-TCS enclave driven sequentially — the TCS pool adds
// capacity, never costs.
func TestConcurrencyFidelity(t *testing.T) {
	run := func(tcs int) (sgxStats [4]int64, checksum uint64) {
		cfg := testConfig(func(c *Config) {
			c.SGX.EPCSize = 128 << 10
			c.SGX.EPCUsable = 64 << 10
			c.SGX.HeapSize = 8 << 20
			c.SGX.TCSNum = tcs
			c.Switchless = SwitchlessOff
		})
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		defer rt.Enclave.Destroy()
		mod, err := rt.LoadModule(sweepModule(16<<10, 2))
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		var sum uint64
		for i := 0; i < 2; i++ {
			out, err := inst.Invoke("run")
			if err != nil {
				t.Fatalf("Invoke: %v", err)
			}
			sum = out[0]
		}
		s := rt.Enclave.Stats()
		return [4]int64{s.ECalls, s.OCalls, s.PageFaults, s.Evictions}, sum
	}

	one, sum1 := run(1)
	many, sumN := run(8)
	if one != many {
		t.Errorf("counter fidelity broken: TCS=1 %v, TCS=8 %v (ECalls, OCalls, faults, evictions)", one, many)
	}
	if sum1 != sumN {
		t.Errorf("checksum diverged: TCS=1 %#x, TCS=8 %#x", sum1, sumN)
	}
	if one[2] == 0 || one[3] == 0 {
		t.Fatal("workload did not page; fidelity test proves nothing")
	}
}

// TestInstanceConcurrentInvoke: distinct plain instances (not a pool) of
// one module run concurrently through the TCS pool and compute the
// sequential answer.
func TestInstanceConcurrentInvoke(t *testing.T) {
	rt := poolRuntime(t, 4)
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(pureModule())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatal(err)
	}
	refOut, err := ref.Invoke("run", 11)
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	instances := make([]*Instance, n)
	for i := range instances {
		if instances[i], err = rt.NewInstance(mod); err != nil {
			t.Fatalf("NewInstance %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	for i := range instances {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				out, err := instances[i].Invoke("run", 11)
				if err != nil {
					t.Errorf("instance %d: %v", i, err)
					return
				}
				if out[0] != refOut[0] {
					t.Errorf("instance %d = %d, want %d", i, out[0], refOut[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}
