// Package core implements TWINE itself (paper §IV): a WebAssembly runtime
// embedded in an SGX enclave behind a WASI system interface (§IV-B). The
// Wasm runtime executes entirely inside the enclave; WASI is the bridge
// between trusted and untrusted worlds (§IV-C), routing each call either
// to a trusted implementation (Intel protected file system, in-enclave
// entropy, monotonic-guarded clock) or to a guarded POSIX layer outside
// the enclave.
//
// Modules are supplied through a single ECALL and copied into the
// enclave's reserved memory (§IV-B), so application code never exists in
// plaintext outside the enclave once provisioning (see provision.go) is
// used. The embedded trusted database facade (embed.go) is the paper's
// flagship workload (§V), executing the SQLite-alike against sandboxed
// linear memory with file I/O served by the protected FS (§V-F).
//
// # Cost-model invariants
//
// core is where the per-layer cost models compose, and where their
// fidelity is enforced (fidelity_test.go, switchless_test.go):
//
//   - guest linear memory is charged against the enclave's EPC through a
//     page-aligned arena, so EPC paging counts are bit-identical with the
//     software EPC-TLB enabled or disabled (Config.NoEPCTLB);
//   - OCALL dispatch is adaptive (Config.Switchless, default on): hot
//     host calls ride the switchless ring, everything else pays the
//     classic two transitions. With the ring off, boundary counters are
//     bit-identical to the pre-switchless runtime; with it on,
//     WASI-visible results are byte-identical and
//     OCalls_off == OCalls_on + SwitchlessCalls_on holds for unbatched
//     workloads;
//   - launch, load and transition times are attributed to the profiling
//     registry so Tables II/III and Figure 7 can be rebuilt from any run.
//
// # Concurrency and the serving pool (PR 3)
//
// A Module is the immutable half of the split: decoded and AoT-translated
// code and link tables are shared by every instance. An Instance is the
// mutable half — guest memory (its own enclave arena), globals, table and
// its own WASI System (fd table, args, clock guards) over the shared
// storage backend. Distinct instances run concurrently, bounded by the
// enclave's TCS pool (sgx.Config.TCSNum); a single Instance stays
// single-threaded.
//
// Pool is the serving front door: N worker instances of one module,
// stamped out by copy-from-snapshot (the first worker's post-
// initialisation memory/globals/table are captured once; further workers
// cost one memory copy instead of decode+translate+link+segments+start).
// Submit serves one request on a free worker; Serve fans a batch across
// all of them. Pool-level saturation shows up in PoolStats.Waits,
// enclave-level saturation in sgx Stats.TCSWaits.
//
// Concurrency fidelity invariant: with TCSNum == 1 and SwitchlessOff, a
// sequential workload's ECALL/OCALL/fault/eviction counters are
// bit-identical to the pre-concurrency runtime (fidelity_test.go); the
// cost models gained locks, not new costs.
//
// # Fault containment (PR 6)
//
// The serving pool bounds and contains failure instead of letting it
// spread. Admission control first: PoolConfig.MaxQueue caps how many
// submits may wait for a worker and PoolConfig.SubmitTimeout (or a
// context deadline via SubmitCtx/ServeCtx) bounds how long they wait;
// work the pool cannot take fails fast with ErrOverloaded, leaving no
// side effect. Containment second: a request that returns an error has
// run arbitrary guest code against its worker's memory, so the pool
// assumes the worker is corrupt, quarantines it, and repairs it from the
// instantiation snapshot (memory/globals/table restored in-place, a
// fresh WASI System) before it serves again. Two error classes are
// exempt: sgx.ErrDestroyed (the enclave is gone — nothing to repair)
// and chaos-transient errors ("the call never happened" — guest state
// is intact, and the WASI boundary retries them under
// Config.HostRetryMax before the pool ever sees one). PoolStats counts
// all of it: Rejected, TimedOut, QueueDepth, Quarantined, Repaired.
//
// Fault-containment fidelity invariant: on a fault-free run the whole
// machinery is inert — a 1-worker pool's ECALL/OCALL/fault/eviction
// counters and results are bit-identical to a sequential NewInstance
// run (pool_chaos_test.go), and a zero chaos.Plan or nil Injector is a
// strict no-op at every hook.
//
// # Multi-tenant serving (PR 8)
//
// Registry is the multi-tenant front door over Pool, splitting serving
// state by what may be shared and what must not:
//
//   - Compiled code is content-addressed (SHA-256 of the module bytes)
//     and shared: each distinct binary is compiled by exactly one
//     twine_load_module ECALL per enclave, however many tenants register
//     it, and is immutable thereafter (the reserved region is sealed
//     execute-only outside load ECALLs). RegistryStats.CompileHits
//     counts Registers served from the cache.
//   - Everything mutable is per-tenant: workers, guest memories, WASI
//     descriptor tables, the golden snapshot (captured after the
//     tenant's own Init), the admission queue (TenantConfig.MaxQueue is
//     a per-tenant queue share — one tenant's overload rejects only
//     that tenant's submits) and the latency histogram behind
//     TenantStats.Latency.
//
// Tenants serve FreshState by default: after a successful request the
// worker is reset in place from the golden snapshot — inside the same
// serve ECALL, via the allocation-free Instance.ResetFromSnapshot — so
// every request observes identical initial state without per-request
// instantiation (PoolStats.WarmResets). TenantConfig.Stateful opts into
// PR 3 state-carrying workers; TenantConfig.ColdStart is the ablation
// that instantiates per request (PoolStats.ColdStarts). Worker handoff
// is FIFO-fair: a freed worker goes to the longest-waiting submit, so
// hot tenants or hot submitters cannot starve a patient one.
//
// Multi-tenant fidelity invariant: a 1-tenant registry at 1 TCS with
// switchless and batching off serves with ECALL/OCALL/fault/eviction
// counters and results bit-identical to a sequential
// invoke-plus-reset loop over one instance (registry_test.go), and a
// warm-reset worker is bit-identical to a fresh snapshot instantiation
// (wasm/reset_test.go) — warm serving is an optimisation, never an
// observable state change.
//
// # EPC-pressure lifecycle (PR 9)
//
// When resident instances outnumber what the EPC holds, the page-level
// clock sweep thrashes: every request faults its working set back one
// 4 KiB EWB/ELDU-priced page at a time. The swap tier
// (RegistryConfig.MaxResident / IdleSuspendAge, swap.go) reclaims at
// instance granularity instead. Each warm worker is in one of two
// states:
//
//	warm      — holds an enclave arena; acquirable by Submit.
//	suspended — Instance released; state lives as a sealed delta
//	            (globals + table + dirty-vs-golden 4 KiB chunks,
//	            wasm.SnapshotDelta) in untrusted storage.
//
// warm → suspended happens only while the worker is idle (never under a
// request), via three triggers: the admission bound (resident workers
// would exceed MaxResident), enclave-heap pressure (a resume or cold
// instantiation out of arena memory suspends one victim and retries),
// and the background reaper (workers idle past IdleSuspendAge).
// suspended → warm happens transparently inside Submit: unseal, apply
// the delta to the golden snapshot, re-instantiate, pre-touch the
// restored extent (the ELDU analogue). Victim selection is working-set-
// weighted, coldest-largest first: fewest clock-referenced pages, then
// most resident pages, then longest idle; TenantConfig.Pinned exempts a
// tenant (it still counts against the bound).
//
// Lifecycle invariants (swap_test.go, release_test.go):
//
//   - suspension is complete: after suspendWorker the arena's resident
//     page count is exactly zero and the allocator gets every arena
//     byte back (Release is EREMOVE — never billed as evictions);
//   - counters are conserved at rest: Suspends == Resumes + Suspended,
//     per pool and registry-wide;
//   - fidelity: a suspended-then-resumed worker is bit-identical to one
//     that never left the EPC — same results, same trap kinds, same
//     ECALL/OCALL/fault/eviction counters modulo the suspend and resume
//     ECALLs themselves (TestSuspendResumeFidelity);
//   - WASI state does not survive suspension: the resume builds a fresh
//     System from the tenant template, exactly like quarantine repair;
//   - when no victim is idle the group over-commits rather than blocks
//     — pressure falls through to the page-level clock sweep and the
//     next release/idle cycle re-balances.
package core
