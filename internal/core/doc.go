// Package core implements TWINE itself (paper §IV): a WebAssembly runtime
// embedded in an SGX enclave behind a WASI system interface (§IV-B). The
// Wasm runtime executes entirely inside the enclave; WASI is the bridge
// between trusted and untrusted worlds (§IV-C), routing each call either
// to a trusted implementation (Intel protected file system, in-enclave
// entropy, monotonic-guarded clock) or to a guarded POSIX layer outside
// the enclave.
//
// Modules are supplied through a single ECALL and copied into the
// enclave's reserved memory (§IV-B), so application code never exists in
// plaintext outside the enclave once provisioning (see provision.go) is
// used. The embedded trusted database facade (embed.go) is the paper's
// flagship workload (§V), executing the SQLite-alike against sandboxed
// linear memory with file I/O served by the protected FS (§V-F).
//
// # Cost-model invariants
//
// core is where the per-layer cost models compose, and where their
// fidelity is enforced (fidelity_test.go, switchless_test.go):
//
//   - guest linear memory is charged against the enclave's EPC through a
//     page-aligned arena, so EPC paging counts are bit-identical with the
//     software EPC-TLB enabled or disabled (Config.NoEPCTLB);
//   - OCALL dispatch is adaptive (Config.Switchless, default on): hot
//     host calls ride the switchless ring, everything else pays the
//     classic two transitions. With the ring off, boundary counters are
//     bit-identical to the pre-switchless runtime; with it on,
//     WASI-visible results are byte-identical and
//     OCalls_off == OCalls_on + SwitchlessCalls_on holds for unbatched
//     workloads;
//   - launch, load and transition times are attributed to the profiling
//     registry so Tables II/III and Figure 7 can be rebuilt from any run.
//
// # Concurrency and the serving pool (PR 3)
//
// A Module is the immutable half of the split: decoded and AoT-translated
// code and link tables are shared by every instance. An Instance is the
// mutable half — guest memory (its own enclave arena), globals, table and
// its own WASI System (fd table, args, clock guards) over the shared
// storage backend. Distinct instances run concurrently, bounded by the
// enclave's TCS pool (sgx.Config.TCSNum); a single Instance stays
// single-threaded.
//
// Pool is the serving front door: N worker instances of one module,
// stamped out by copy-from-snapshot (the first worker's post-
// initialisation memory/globals/table are captured once; further workers
// cost one memory copy instead of decode+translate+link+segments+start).
// Submit serves one request on a free worker; Serve fans a batch across
// all of them. Pool-level saturation shows up in PoolStats.Waits,
// enclave-level saturation in sgx Stats.TCSWaits.
//
// Concurrency fidelity invariant: with TCSNum == 1 and SwitchlessOff, a
// sequential workload's ECALL/OCALL/fault/eviction counters are
// bit-identical to the pre-concurrency runtime (fidelity_test.go); the
// cost models gained locks, not new costs.
package core
