package core

import (
	"testing"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// sweepModule builds a Fig5-style paging workload: repeated sequential
// sweeps over an f64 array several times the usable EPC, so the clock
// hand churns and evictions dominate. The exported run() performs
// A[i] += r for every element in each round, then returns the array sum.
func sweepModule(elems, rounds int) []byte {
	const base = 64
	m := wasmgen.NewModule()
	pages := (uint32(base+elems*8) + wasm.PageSize - 1) / wasm.PageSize
	m.Memory(pages, pages)

	f := m.Func(wasmgen.Sig().Returns(wasmgen.F64))
	r, i, sum := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.F64)

	forLoop := func(idx uint32, limit int32, body func()) {
		f.I32Const(0).LocalSet(idx)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(idx).I32Const(limit).I32GeS().BrIf(1)
		body()
		f.LocalGet(idx).I32Const(1).I32Add().LocalSet(idx)
		f.Br(0)
		f.End()
		f.End()
	}

	forLoop(r, int32(rounds), func() {
		forLoop(i, int32(elems), func() {
			// A[i] = A[i] + f64(r)
			f.LocalGet(i).I32Const(8).I32Mul().I32Const(base).I32Add()
			f.LocalGet(i).I32Const(8).I32Mul().I32Const(base).I32Add().F64Load(0)
			f.LocalGet(r).F64ConvertI32S()
			f.F64Add()
			f.F64Store(0)
		})
	})
	forLoop(i, int32(elems), func() {
		f.LocalGet(sum)
		f.LocalGet(i).I32Const(8).I32Mul().I32Const(base).I32Add().F64Load(0)
		f.F64Add().LocalSet(sum)
	})
	f.LocalGet(sum)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

type paging struct {
	faults, evictions int64
	checksum          uint64
}

func runSweep(t *testing.T, noTLB bool) paging {
	t.Helper()
	cfg := testConfig(func(c *Config) {
		// 16 resident pages against a 64-page guest array: every sweep
		// round pages heavily, exactly the regime where a TLB bug would
		// change the counts.
		c.SGX.EPCSize = 128 << 10
		c.SGX.EPCUsable = 64 << 10
		c.SGX.HeapSize = 8 << 20
		c.NoEPCTLB = noTLB
	})
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	mod, err := rt.LoadModule(sweepModule(32<<10, 3)) // 256 KiB array, 3 passes
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	var sum uint64
	for i := 0; i < 2; i++ { // two invocations: cold and warm TLB
		out, err := inst.Invoke("run")
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		sum = out[0]
	}
	m := rt.Enclave.Memory()
	return paging{faults: m.Faults(), evictions: m.Evictions(), checksum: sum}
}

// TestEPCTLBFidelity is the acceptance guard for the software EPC-TLB:
// under a paging-heavy sweep the enclave must report bit-identical fault
// and eviction counts with the TLB enabled and disabled, because a TLB
// hit is only ever taken where the touch would have been a no-op.
func TestEPCTLBFidelity(t *testing.T) {
	withTLB := runSweep(t, false)
	without := runSweep(t, true)

	if withTLB.faults != without.faults {
		t.Errorf("faults: TLB=%d, no-TLB=%d — EPC model diverged", withTLB.faults, without.faults)
	}
	if withTLB.evictions != without.evictions {
		t.Errorf("evictions: TLB=%d, no-TLB=%d — EPC model diverged", withTLB.evictions, without.evictions)
	}
	if withTLB.checksum != without.checksum {
		t.Errorf("checksum: TLB=%#x, no-TLB=%#x", withTLB.checksum, without.checksum)
	}
	// The workload must actually have paged, or the test proves nothing.
	if without.evictions == 0 {
		t.Fatal("sweep caused no evictions; enlarge the workload")
	}
}

// TestEPCTLBFidelityUnderPressure repeats the comparison with an EPC so
// small that nearly every access round-trips through the clock — the
// generation counter is then bumped constantly and the TLB must keep
// re-validating without ever skipping a countable touch.
func TestEPCTLBFidelityUnderPressure(t *testing.T) {
	run := func(noTLB bool) paging {
		cfg := testConfig(func(c *Config) {
			c.SGX.EPCSize = 64 << 10
			c.SGX.EPCUsable = 8 << 10 // 2 resident pages: maximal churn
			c.SGX.HeapSize = 8 << 20
			c.NoEPCTLB = noTLB
		})
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		mod, err := rt.LoadModule(sweepModule(8<<10, 2))
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		out, err := inst.Invoke("run")
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		m := rt.Enclave.Memory()
		return paging{faults: m.Faults(), evictions: m.Evictions(), checksum: out[0]}
	}
	withTLB := run(false)
	without := run(true)
	if withTLB != without {
		t.Errorf("paging state diverged under pressure: TLB=%+v no-TLB=%+v", withTLB, without)
	}
	if without.evictions == 0 {
		t.Fatal("pressure sweep caused no evictions")
	}
}
