package core

import (
	"fmt"
	"io"
	"time"

	"twine/internal/chaos"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasi"
	"twine/internal/wasm"
)

// FSKind selects the file-system routing of the WASI layer.
type FSKind int

const (
	// FSIPFS routes file operations to the Intel protected file system
	// (TWINE's configuration: data encrypted and integrity-checked).
	FSIPFS FSKind = iota
	// FSHost forwards file operations to untrusted POSIX via OCALLs
	// (WAMR's original WASI implementation, the paper's baseline).
	FSHost
)

func (k FSKind) String() string {
	if k == FSHost {
		return "host-posix"
	}
	return "ipfs"
}

// SwitchlessMode controls the switchless-OCALL subsystem (PR 2): a shared
// request ring drained by an untrusted worker, so hot host calls skip the
// two enclave transitions a classic OCALL pays.
type SwitchlessMode int

const (
	// SwitchlessAuto enables the ring — the default for the twine variant,
	// matching the follow-up paper's runtime. (The sgx-lkl comparison
	// variant builds its enclave directly and never enables a ring.)
	SwitchlessAuto SwitchlessMode = iota
	// SwitchlessOff forces every OCALL through the classic two-transition
	// path, bit-identical to the pre-switchless runtime — used by ablation
	// benchmarks and the fidelity tests.
	SwitchlessOff
	// SwitchlessOn explicitly enables the ring (same effect as Auto).
	SwitchlessOn
)

func (m SwitchlessMode) String() string {
	if m == SwitchlessOff {
		return "off"
	}
	return "on"
}

// RuntimeVersion is the enclave code identity string; it determines the
// measurement (MRENCLAVE) of every TWINE enclave of this build.
const RuntimeVersion = "twine-runtime-go-1.0"

// Config assembles a TWINE runtime.
type Config struct {
	// PlatformSeed selects the simulated CPU (sealing identity).
	PlatformSeed string
	// SGX configures the enclave; zero value = sgx.DefaultConfig().
	SGX sgx.Config
	// Engine is the Wasm execution engine (default AoT, like TWINE).
	Engine wasm.Engine
	// FS selects trusted (IPFS) or untrusted (host POSIX) file routing.
	FS FSKind
	// IPFSMode selects the standard or optimised protected FS (§V-F).
	IPFSMode ipfs.Mode
	// IPFSCacheNodes overrides the protected-FS node cache size.
	IPFSCacheNodes int
	// DisableUntrustedPOSIX applies the strict-mode compile flag (§IV-C).
	DisableUntrustedPOSIX bool
	// HostFS is the untrusted world (default: fresh in-memory FS).
	HostFS hostfs.FS
	// Preopens maps guest paths to host directories (default "/" -> "").
	Preopens map[string]string
	// Args/Env/stdio for the WASI program.
	Args   []string
	Env    []string
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
	// MaxMemoryPages caps guest linear memory (0 = module limit).
	MaxMemoryPages uint32
	// NoEPCTLB disables the interpreter's software EPC-TLB, forcing the
	// EPC model to be consulted on every guest memory access. The TLB is
	// exactly semantics-preserving (identical fault/eviction counts), so
	// this knob exists only for ablation benchmarks and fidelity tests.
	NoEPCTLB bool
	// Chaos, when set, injects faults at the WASI/host boundary (PR 6):
	// each boundary crossing consults the injector's plan before the host
	// operation runs. The zero/nil value is a strict no-op — the fidelity
	// rule the chaos tests enforce.
	Chaos *chaos.Injector
	// HostRetryMax bounds transient-fault recovery at the WASI boundary:
	// a crossing failing with a chaos.ErrTransient-wrapped error is
	// re-issued up to this many times (0 = no retries, every error
	// surfaces). HostRetryBackoff is slept before the first retry and
	// doubles on each further one.
	HostRetryMax     int
	HostRetryBackoff time.Duration
	// Switchless selects the OCALL dispatch strategy (default: on). With
	// the ring off, ECALL/OCALL counts are bit-identical to the
	// pre-switchless runtime; with it on, WASI-visible results are
	// byte-identical while hot host calls skip the enclave transitions
	// (see internal/core's differential tests).
	Switchless SwitchlessMode
	// SwitchlessBatch enables batched cold-start admission on the ring
	// (PR 8): a request that finds the drain worker parked is staged in
	// the ring before the worker is signalled, so it rides its own wakeup
	// instead of falling back to a classic OCall, and adjacent requests
	// admitted while the ring is non-empty share that wakeup
	// (sgx.Stats.BatchedWakeups). Off by default — the unbatched ring is
	// bit-identical to PR 2. Ignored when Switchless is SwitchlessOff.
	SwitchlessBatch bool
	// Prof collects counters and timers.
	Prof *prof.Registry
}

// Runtime is a live TWINE enclave ready to load modules.
type Runtime struct {
	cfg      Config
	Platform *sgx.Platform
	Enclave  *sgx.Enclave
	Host     hostfs.FS
	PFS      *ipfs.FS
	Sys      *wasi.System
	Imports  *wasm.ImportObject

	prof *prof.Registry

	// hostBE is the primary host backend; clones (one per instance) share
	// its fault plan and retry counters.
	hostBE *wasi.HostBackend

	// LaunchTime is the wall time spent creating the enclave and wiring
	// the runtime (Table IIIa "Launch").
	LaunchTime time.Duration
}

// HostRetryStats reports WASI-boundary retry activity aggregated across
// the runtime's primary WASI system and every per-instance clone.
func (rt *Runtime) HostRetryStats() wasi.RetryStats {
	return rt.hostBE.RetryCounters()
}

// NewRuntime builds the enclave and the WASI plumbing.
func NewRuntime(cfg Config) (*Runtime, error) {
	start := time.Now()
	if cfg.SGX.EPCSize == 0 {
		cfg.SGX = sgx.DefaultConfig()
	}
	cfg.SGX.Prof = cfg.Prof
	if cfg.HostFS == nil {
		cfg.HostFS = hostfs.NewMemFS()
	}
	if cfg.Preopens == nil {
		cfg.Preopens = map[string]string{"/": ""}
	}
	// Normalize out-of-range engine values; EngineAOT is already the zero
	// value, so only an explicit EngineInterp or EngineRegister selects
	// another tier. The register tier (PR 4) is wired like Switchless: a
	// plain Config knob, with the fused AoT path as the bit-identical
	// default.
	if cfg.Engine != wasm.EngineInterp && cfg.Engine != wasm.EngineRegister &&
		cfg.Engine != wasm.EngineSuperblock {
		cfg.Engine = wasm.EngineAOT
	}

	rt := &Runtime{cfg: cfg, Host: cfg.HostFS, prof: cfg.Prof}
	rt.Platform = sgx.NewPlatform(cfg.PlatformSeed)
	enclave, err := rt.Platform.NewEnclave(cfg.SGX, []byte(RuntimeVersion))
	if err != nil {
		return nil, fmt.Errorf("twine: enclave creation: %w", err)
	}
	rt.Enclave = enclave
	if cfg.Switchless != SwitchlessOff {
		scfg := sgx.DefaultSwitchlessConfig(cfg.SGX)
		scfg.Batch = cfg.SwitchlessBatch
		enclave.EnableSwitchless(scfg)
	}

	hostBE := wasi.NewHostBackend(cfg.HostFS, enclave)
	hostBE.Chaos = cfg.Chaos
	hostBE.Retry = wasi.RetryPolicy{Max: cfg.HostRetryMax, Backoff: cfg.HostRetryBackoff}
	rt.hostBE = hostBE
	var backend wasi.Backend
	if cfg.FS == FSIPFS {
		rt.PFS = ipfs.New(enclave, cfg.HostFS, ipfs.Options{
			Mode:       cfg.IPFSMode,
			CacheNodes: cfg.IPFSCacheNodes,
			Prof:       cfg.Prof,
		})
		backend = wasi.NewIPFSBackend(rt.PFS, hostBE)
	} else {
		backend = hostBE
	}

	sys, err := wasi.NewSystem(wasi.Config{
		Args:                  cfg.Args,
		Env:                   cfg.Env,
		Stdin:                 cfg.Stdin,
		Stdout:                cfg.Stdout,
		Stderr:                cfg.Stderr,
		FS:                    backend,
		Preopens:              cfg.Preopens,
		Enclave:               enclave,
		DisableUntrustedPOSIX: cfg.DisableUntrustedPOSIX,
		Prof:                  cfg.Prof,
	})
	if err != nil {
		return nil, err
	}
	rt.Sys = sys
	imp := wasm.NewImportObject()
	sys.Register(imp)
	registerMathImports(imp)
	rt.Imports = imp
	rt.LaunchTime = time.Since(start)
	return rt, nil
}

// registerMathImports provides the libm-equivalent host functions LLVM
// would otherwise inline; PolyBench kernels import exp and pow. They are
// trusted (in-enclave) intrinsics: no OCALL.
func registerMathImports(imp *wasm.ImportObject) {
	f64f64 := wasm.FuncType{Params: []wasm.ValueType{wasm.F64}, Results: []wasm.ValueType{wasm.F64}}
	f64x2 := wasm.FuncType{Params: []wasm.ValueType{wasm.F64, wasm.F64}, Results: []wasm.ValueType{wasm.F64}}
	imp.AddFunc(wasm.HostFunc{Module: "math", Name: "exp", Type: f64f64,
		Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
			return in.Ret1(pf64(mexp(f64(a[0])))), nil
		}})
	imp.AddFunc(wasm.HostFunc{Module: "math", Name: "pow", Type: f64x2,
		Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
			return in.Ret1(pf64(mpow(f64(a[0]), f64(a[1])))), nil
		}})
}

// Module is a loaded, AoT-prepared application.
type Module struct {
	Compiled *wasm.Compiled
	// WasmBytes is the size of the delivered binary; AotIns counts the
	// translated instructions (Table IIIb artefact sizes).
	WasmBytes int64
	AotIns    int64
	// LoadTime is the in-enclave decode+translate time.
	LoadTime time.Duration
}

// LoadModule supplies a Wasm binary to the enclave through the single
// ECALL TWINE exposes (§IV-C): the code is copied into reserved memory,
// decoded, validated and AoT-translated, then the region is sealed
// execute-only. A further module re-opens the region for the duration of
// its load (SGX2 EMODPE semantics — the flip happens inside the ECALL,
// so the region is never writable while guest code can run) and appends;
// loaded code itself is immutable, which is what lets the multi-tenant
// registry share one compiled module across tenants.
func (rt *Runtime) LoadModule(wasmBytes []byte) (*Module, error) {
	start := time.Now()
	var mod *Module
	err := rt.Enclave.ECall("twine_load_module", func() error {
		rt.Enclave.Reserved().Protect(sgx.PermRW)
		defer rt.Enclave.Reserved().Protect(sgx.PermRX) // reseal on every path
		if _, err := rt.Enclave.Reserved().Load(wasmBytes); err != nil {
			return fmt.Errorf("twine: reserved memory: %w", err)
		}
		m, err := wasm.Decode(wasmBytes)
		if err != nil {
			return err
		}
		c, err := wasm.Compile(m)
		if err != nil {
			return err
		}
		mod = &Module{Compiled: c, WasmBytes: int64(len(wasmBytes)), AotIns: c.NumInstructions()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The register tier translates at load time (AoT, like wamrc); its
	// translation counters are part of the load profile. Instances run
	// the guarded (touch-hook) form exactly when the EPC-TLB is on, so
	// report that form — not a second translation that never executes.
	if rt.cfg.Engine == wasm.EngineRegister {
		st := mod.Compiled.RegStats(!rt.cfg.NoEPCTLB)
		rt.prof.Add("wasm.reg.funcs", st.Funcs)
		rt.prof.Add("wasm.reg.bailouts", st.Bailouts)
		rt.prof.Add("wasm.reg.folds", st.Folds)
		rt.prof.Add("wasm.reg.props", st.Props)
		rt.prof.Add("wasm.reg.deadstores", st.DeadStores)
		rt.prof.Add("wasm.reg.fused", st.Fused)
		rt.prof.Add("wasm.reg.hoists", st.Hoists)
	}
	// The superblock tier (PR 7) stacks on the register form: its
	// translation counters describe how many innermost loops became
	// idiom or step traces, and how many bailed back to the register
	// interpreter. Same guarded/unguarded reporting rule as above.
	if rt.cfg.Engine == wasm.EngineSuperblock {
		st := mod.Compiled.SuperStats(!rt.cfg.NoEPCTLB)
		rt.prof.Add("wasm.super.funcs", int64(st.Funcs))
		rt.prof.Add("wasm.super.regbail", int64(st.RegBail))
		rt.prof.Add("wasm.super.loops", int64(st.Loops))
		rt.prof.Add("wasm.super.idioms", int64(st.Idioms))
		rt.prof.Add("wasm.super.steploops", int64(st.StepLoops))
		rt.prof.Add("wasm.super.bailouts", int64(st.Bailouts))
	}
	mod.LoadTime = time.Since(start)
	rt.prof.AddTime("twine.load", mod.LoadTime)
	return mod, nil
}

// Instance is an instantiated module whose linear memory is charged
// against the enclave's EPC. Each Instance owns its WASI state (Sys) — a
// clone of the runtime's primary System with its own descriptor table,
// clock guards and write-batch state over the shared storage — so
// distinct instances never share mutable WASI state. A single Instance
// is not safe for concurrent use; run distinct instances concurrently
// instead (the TCS pool bounds how many execute at once).
type Instance struct {
	rt  *Runtime
	In  *wasm.Instance
	Sys *wasi.System
	mem *sgx.Memory
	// arena is the enclave region backing the guest linear memory. It is
	// aligned to the enclave page size so guest 4 KiB pages and enclave
	// EPC pages coincide — the alignment the EPC-TLB contract requires.
	// arenaLen is its length in bytes (the guest's maximum linear memory).
	arena    int64
	arenaLen int64
	// allocOff is the raw allocator offset backing arena (arena rounds it
	// up to a page boundary); Release frees it. -1 once released.
	allocOff int64
}

// Release returns the instance's guest arena to the enclave allocator
// and discards its EPC pages (no eviction cost — the contents are dead,
// there is nothing to write back). After Release the instance must not
// execute again; its pages are reusable by future instantiations and its
// EPC residency is exactly zero — the invariant the swap tier depends on
// (a suspended instance must free real EPC headroom, and a leak here
// silently shrinks effective EPC; release_test.go pins it). Release is
// also what makes per-request cold instantiation (the warm-reset ablation
// baseline) sustainable — without it every request would leak a full
// guest arena. Idempotent.
func (inst *Instance) Release() error {
	if inst.allocOff < 0 {
		return nil
	}
	off := inst.allocOff
	inst.allocOff = -1
	err := inst.rt.Enclave.Allocator().Free(off)
	// Discard after Free: Free touches its block header, which lives on
	// the page below the page-aligned arena, so the discard covers exactly
	// the arena pages and nothing the allocator still uses.
	inst.mem.Discard(inst.arena, inst.arenaLen)
	return err
}

// ResidencyStats reports how many of the instance's arena pages are
// currently EPC-resident and how many of those are referenced (hold a
// clock second chance) — the per-instance working-set probe the swap
// tier's victim selection keys on. A released instance reports zero.
func (inst *Instance) ResidencyStats() (resident, referenced int) {
	if inst.allocOff < 0 {
		return 0, 0
	}
	return inst.mem.RangeResidency(inst.arena, inst.arenaLen)
}

// NewInstance instantiates mod inside the enclave with its own WASI
// state (a clone of the runtime's primary System — same args, stdio,
// preopens and storage, fresh descriptor table).
func (rt *Runtime) NewInstance(mod *Module) (*Instance, error) {
	sys, err := rt.Sys.Clone(wasi.CloneOptions{})
	if err != nil {
		return nil, err
	}
	return rt.newInstance(mod, sys, nil)
}

// newInstance carves a guest arena out of the enclave and instantiates
// mod over sys, inside one twine_instantiate ECALL. With a snapshot, the
// instance's memory, globals and table are copied from it (no
// data-segment replay, no start function) — the cheap path the serving
// pool stamps workers out with.
func (rt *Runtime) newInstance(mod *Module, sys *wasi.System, snap *wasm.Snapshot) (*Instance, error) {
	var inst *Instance
	err := rt.Enclave.ECall("twine_instantiate", func() error {
		var ierr error
		inst, ierr = rt.instantiate(mod, sys, snap)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return inst, nil
}

// instantiate is newInstance without the ECALL wrapper: the caller is
// already inside the enclave. The swap tier's resume path needs this —
// rehydrating a suspended worker happens inside its own twine_resume
// ECALL, and same-goroutine ECALL re-entry is rejected by design.
func (rt *Runtime) instantiate(mod *Module, sys *wasi.System, snap *wasm.Snapshot) (*Instance, error) {
	inst := &Instance{rt: rt, Sys: sys, mem: rt.Enclave.Memory()}

	// Reserve enclave memory for the guest's maximum linear memory so
	// EPC pressure reflects guest usage.
	maxPages := uint32(wasm.MaxPages)
	if len(mod.Compiled.Module.Memories) > 0 {
		l := mod.Compiled.Module.Memories[0]
		if l.HasMax {
			maxPages = l.Max
		}
	}
	if rt.cfg.MaxMemoryPages != 0 && rt.cfg.MaxMemoryPages < maxPages {
		maxPages = rt.cfg.MaxMemoryPages
	}
	need := int64(maxPages)*wasm.PageSize + sgx.PageSize
	off, err := rt.Enclave.Allocator().Alloc(need)
	if err != nil {
		return nil, fmt.Errorf("twine: guest memory (%d pages) does not fit the enclave: %w", maxPages, err)
	}
	inst.allocOff = off
	inst.arena = (off + sgx.PageSize - 1) &^ (sgx.PageSize - 1)
	inst.arenaLen = int64(maxPages) * wasm.PageSize

	// The arena base is pre-translated into the view once; the per-access
	// hook is then a single add instead of a capture-and-check closure.
	view := inst.mem.ViewAt(inst.arena)
	var touchGen *uint64
	if !rt.cfg.NoEPCTLB {
		touchGen = inst.mem.GenRef()
	}

	cfg := wasm.Config{
		Engine:         rt.cfg.Engine,
		MaxMemoryPages: rt.cfg.MaxMemoryPages,
		Touch:          view.Touch,
		TouchGen:       touchGen,
		HostCtx:        sys,
	}
	var in *wasm.Instance
	if snap != nil {
		in, err = wasm.InstantiateFromSnapshot(mod.Compiled, rt.Imports, snap, cfg)
	} else {
		in, err = wasm.Instantiate(mod.Compiled, rt.Imports, cfg)
	}
	if err != nil {
		inst.allocOff = -1
		_ = rt.Enclave.Allocator().Free(off)
		return nil, err
	}
	inst.In = in
	return inst, nil
}

// guestECall enters the enclave, runs fn, then submits any write-behind
// WASI state (batched small writes) before exiting, so the untrusted
// store is consistent with eager-write semantics whenever the enclave is
// not executing — even for guests that never close their descriptors.
func (rt *Runtime) guestECall(name string, fn func() error) error {
	return rt.guestECallSys(name, rt.Sys, fn)
}

// guestECallSys is guestECall for a specific instance's WASI state: the
// flush covers exactly the System the guest entry could have dirtied.
func (rt *Runtime) guestECallSys(name string, sys *wasi.System, fn func() error) error {
	return rt.Enclave.ECall(name, func() error {
		err := fn()
		if ferr := sys.FlushFS(); err == nil {
			err = ferr
		}
		return err
	})
}

// Run executes the WASI start routine (_start) inside the enclave and
// returns the guest exit code.
func (inst *Instance) Run() (uint32, error) {
	var code uint32
	err := inst.rt.guestECallSys("twine_run", inst.Sys, func() error {
		_, err := inst.In.Invoke("_start")
		if err != nil {
			if tr, ok := err.(*wasm.Trap); ok && tr.Kind == wasm.TrapExit {
				code = tr.Code
				return nil
			}
			return err
		}
		return nil
	})
	return code, err
}

// Invoke calls an exported guest function inside the enclave.
func (inst *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	var out []uint64
	err := inst.rt.guestECallSys("twine_invoke", inst.Sys, func() error {
		var ierr error
		out, ierr = inst.In.Invoke(name, args...)
		return ierr
	})
	return out, err
}

// ECall runs fn inside the enclave (for embedders such as the trusted
// database facade, whose host-side code must account enclave crossings).
func (rt *Runtime) ECall(name string, fn func() error) error {
	return rt.Enclave.ECall(name, fn)
}
