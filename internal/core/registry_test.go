package core

import (
	"errors"
	"testing"

	"twine/internal/wasm"
)

// TestTenantFidelity is the PR 8 acceptance guard: one tenant on one TCS
// with switchless dispatch (and thus batching) off must be bit-identical
// to a sequential baseline — same results, same ECALL/OCALL/fault/
// eviction counters on a workload that actually pages, same trap kinds on
// failure. The baseline mirrors the tenant's construction exactly: one
// WASI clone, one instantiation, one snapshot, then per request one
// composite ECALL running {invoke; reset-from-snapshot} — what the
// registry's default FreshState serving does. The front door may add
// capacity; it must never add or reorder enclave transitions.
func TestTenantFidelity(t *testing.T) {
	const requests = 2
	workload := func(module []byte, drive func(rt *Runtime, module []byte) (uint64, error)) (stats [4]int64, checksum uint64, err error) {
		cfg := testConfig(func(c *Config) {
			c.SGX.EPCSize = 128 << 10
			c.SGX.EPCUsable = 64 << 10
			c.SGX.HeapSize = 8 << 20
			c.SGX.TCSNum = 1
			c.Switchless = SwitchlessOff
		})
		rt, nerr := NewRuntime(cfg)
		if nerr != nil {
			t.Fatalf("NewRuntime: %v", nerr)
		}
		defer rt.Enclave.Destroy()
		checksum, err = drive(rt, module)
		s := rt.Enclave.Stats()
		return [4]int64{s.ECalls, s.OCalls, s.PageFaults, s.Evictions}, checksum, err
	}

	// Sequential baseline: one load, one instance, one snapshot, then the
	// composite serve ECALL hand-rolled per request.
	sequential := func(rt *Runtime, module []byte) (uint64, error) {
		mod, err := rt.LoadModule(module)
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		snap := inst.In.Snapshot()
		var sum uint64
		for i := 0; i < requests; i++ {
			var out []uint64
			serr := rt.guestECallSys("twine_serve", inst.Sys, func() error {
				var ierr error
				out, ierr = inst.In.Invoke("run")
				if ierr != nil {
					return ierr
				}
				return inst.In.ResetFromSnapshot(snap)
			})
			if serr != nil {
				return 0, serr
			}
			sum = out[0]
		}
		return sum, nil
	}

	// The front door: a one-tenant registry in its default serving mode
	// (one worker, FreshState). Register performs the same single load.
	tenant := func(rt *Runtime, module []byte) (uint64, error) {
		reg := rt.NewRegistry(RegistryConfig{})
		defer reg.Close()
		ten, err := reg.Register("solo", module, TenantConfig{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		var sum uint64
		for i := 0; i < requests; i++ {
			out, err := reg.Submit("solo")
			if err != nil {
				return 0, err
			}
			sum = out[0]
		}
		if s := ten.Stats(); s.Pool.WarmResets != requests || s.Pool.Quarantined != 0 {
			t.Fatalf("tenant run off the warm path: %+v", s)
		}
		return sum, nil
	}

	seqStats, seqSum, seqErr := workload(sweepModule(16<<10, 2), sequential)
	tenStats, tenSum, tenErr := workload(sweepModule(16<<10, 2), tenant)
	if seqErr != nil || tenErr != nil {
		t.Fatalf("sweep errored: sequential %v, tenant %v", seqErr, tenErr)
	}
	if seqStats != tenStats {
		t.Errorf("fidelity broken: sequential %v, tenant %v (ECalls, OCalls, faults, evictions)", seqStats, tenStats)
	}
	if seqSum != tenSum {
		t.Errorf("checksum diverged: sequential %#x, tenant %#x", seqSum, tenSum)
	}
	if seqStats[2] == 0 || seqStats[3] == 0 {
		t.Fatal("workload did not page; fidelity test proves nothing")
	}

	// Trap kinds must match too: a guest trap surfaces through the front
	// door as the same *wasm.Trap the sequential path sees.
	trapDrive := func(drive func(rt *Runtime, module []byte) (uint64, error)) *wasm.Trap {
		_, _, err := workload(trapModule(), drive)
		var tr *wasm.Trap
		if !errors.As(err, &tr) {
			t.Fatalf("trap workload returned %v, want *wasm.Trap", err)
		}
		return tr
	}
	seqTrap := trapDrive(func(rt *Runtime, module []byte) (uint64, error) {
		mod, err := rt.LoadModule(module)
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		inst, err := rt.NewInstance(mod)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		serr := rt.guestECallSys("twine_serve", inst.Sys, func() error {
			_, ierr := inst.In.Invoke("run", 1) // nonzero arg = trap
			return ierr
		})
		return 0, serr
	})
	tenTrap := trapDrive(func(rt *Runtime, module []byte) (uint64, error) {
		reg := rt.NewRegistry(RegistryConfig{})
		defer reg.Close()
		if _, err := reg.Register("solo", module, TenantConfig{}); err != nil {
			t.Fatalf("Register: %v", err)
		}
		_, err := reg.Submit("solo", 1)
		return 0, err
	})
	if seqTrap.Kind != tenTrap.Kind {
		t.Errorf("trap kind diverged: sequential %v, tenant %v", seqTrap.Kind, tenTrap.Kind)
	}
}

// TestRegistrySharedCompiledCode (the tentpole's cache): two tenants
// registering identical bytes share one *Module — one twine_load_module
// ECALL, one reserved-region footprint — while a third with different
// bytes compiles its own.
func TestRegistrySharedCompiledCode(t *testing.T) {
	rt := poolRuntime(t, 4)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{})
	defer reg.Close()

	before := rt.Enclave.Stats().ECalls
	a, err := reg.Register("tenant-a", pureModule(), TenantConfig{})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	afterFirst := rt.Enclave.Stats().ECalls
	b, err := reg.Register("tenant-b", pureModule(), TenantConfig{})
	if err != nil {
		t.Fatalf("register b: %v", err)
	}
	if a.Module() != b.Module() {
		t.Error("identical bytes produced distinct compiled modules")
	}
	if _, err := reg.Register("tenant-c", counterModule(), TenantConfig{}); err != nil {
		t.Fatalf("register c: %v", err)
	}

	s := reg.Stats()
	if s.Tenants != 3 || s.CompiledModules != 2 || s.CompileHits != 1 {
		t.Errorf("registry stats = %+v, want 3 tenants / 2 modules / 1 hit", s)
	}
	// The cache hit must have skipped the load ECALL: registering b costs
	// the same number of load ECALLs as registering nothing (pool
	// construction ECALLs remain, so compare loads via the module count).
	loadsFirst := afterFirst - before
	if loadsFirst < 1 {
		t.Fatalf("first register did %d ECalls, expected at least the module load", loadsFirst)
	}

	// Both tenants of the shared module still compute correctly.
	outA, err := reg.Submit("tenant-a", 5)
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	outB, err := reg.Submit("tenant-b", 5)
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if outA[0] != outB[0] {
		t.Errorf("shared module diverged: %d vs %d", outA[0], outB[0])
	}
}

// TestRegistryTenantIsolation: tenants sharing compiled code never share
// mutable state — each pool has its own workers and its own golden
// snapshot, so a stateful tenant's counter advances independently.
func TestRegistryTenantIsolation(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{})
	defer reg.Close()

	a, err := reg.Register("a", counterModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register("b", counterModule(), TenantConfig{Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Module() != b.Module() {
		t.Fatal("tenants should share the compiled module")
	}
	for i := 1; i <= 3; i++ {
		out, err := a.Submit()
		if err != nil {
			t.Fatalf("a submit %d: %v", i, err)
		}
		if out[0] != uint64(i) {
			t.Errorf("a submit %d = %d", i, out[0])
		}
	}
	out, err := b.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Errorf("b's first request saw counter %d; tenant state leaked", out[0])
	}

	s := reg.Stats()
	if s.PerTenant["a"].Pool.Requests != 3 || s.PerTenant["b"].Pool.Requests != 1 {
		t.Errorf("per-tenant accounting wrong: %+v", s.PerTenant)
	}
	if s.PerTenant["a"].Latency.Count != 3 {
		t.Errorf("tenant a latency count = %d, want 3", s.PerTenant["a"].Latency.Count)
	}
}

// TestRegistryPerTenantBackpressure: one tenant exhausting its queue
// share is rejected with ErrOverloaded while another tenant keeps being
// served — overload is contained to the tenant that caused it.
func TestRegistryPerTenantBackpressure(t *testing.T) {
	rt := poolRuntime(t, 2)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{})
	defer reg.Close()

	a, err := reg.Register("hog", pureModule(), TenantConfig{Workers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("quiet", pureModule(), TenantConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	// Hold the hog's only worker and fill its single queue slot.
	w := a.Pool().takeWorker(t)
	queued := make(chan error, 1)
	go func() {
		_, err := reg.Submit("hog", 1)
		queued <- err
	}()
	waitQueueDepth(t, a.Pool(), 1)

	if _, err := reg.Submit("hog", 1); !errors.Is(err, ErrOverloaded) {
		t.Errorf("hog over its share = %v, want ErrOverloaded", err)
	}
	// The quiet tenant is untouched by the hog's overload.
	if _, err := reg.Submit("quiet", 1); err != nil {
		t.Errorf("quiet tenant rejected during hog overload: %v", err)
	}

	a.Pool().release(w)
	if err := <-queued; err != nil {
		t.Errorf("hog's queued request failed after release: %v", err)
	}
	s := reg.Stats()
	if s.PerTenant["hog"].Pool.Rejected != 1 || s.PerTenant["quiet"].Pool.Rejected != 0 {
		t.Errorf("rejection not contained to the hog: %+v", s.PerTenant)
	}
}

// TestRegistryAdmissionErrors: unknown tenants, duplicate names and
// invalid configs fail cleanly; a closed registry refuses new tenants.
func TestRegistryAdmissionErrors(t *testing.T) {
	rt := poolRuntime(t, 1)
	defer rt.Enclave.Destroy()
	reg := rt.NewRegistry(RegistryConfig{})

	if _, err := reg.Submit("nobody"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant = %v, want ErrUnknownTenant", err)
	}
	if _, err := reg.Register("", pureModule(), TenantConfig{}); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, err := reg.Register("x", pureModule(), TenantConfig{Stateful: true, ColdStart: true}); err == nil {
		t.Error("Stateful+ColdStart accepted")
	}
	if _, err := reg.Register("x", pureModule(), TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("x", counterModule(), TenantConfig{}); err == nil {
		t.Error("duplicate tenant name accepted")
	}
	if reg.Tenant("x") == nil || reg.Tenant("y") != nil {
		t.Error("Tenant lookup inconsistent")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("y", pureModule(), TenantConfig{}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("register after close = %v, want ErrPoolClosed", err)
	}
	if _, err := reg.Submit("x"); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("submit after close = %v, want ErrPoolClosed", err)
	}
}
