package core

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-bucket request-latency histogram (PR 8): bucket i
// counts completed requests whose wall time fell in [2^(i-1), 2^i)
// microseconds (bucket 0 is sub-microsecond), so 40 buckets span sub-µs to
// days. Log-spaced fixed buckets keep recording to one atomic add with no
// allocation — cheap enough for every request on the serving hot path —
// while quantile error is bounded by the 2x bucket width, which is plenty
// for the p50/p95/p99 per-tenant accounting the registry exposes.
//
// Recording and reading race benignly: observe is an atomic add, and
// summary loads each bucket atomically, so a summary taken under load is a
// coherent-enough snapshot (each counter is exact; the set may straddle a
// few in-flight requests).
type latencyHist struct {
	counts [histBuckets]int64 // atomic
}

const histBuckets = 40

// observe records one completed request's wall time.
func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, else floor(log2(us))+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	atomic.AddInt64(&h.counts[b], 1)
}

// LatencySummary is the per-pool (and, through the registry, per-tenant)
// latency accounting: completed-request count and upper-bound quantiles
// from the fixed-bucket histogram. Quantiles are bucket upper bounds, so
// they over-report by at most 2x — stable for dashboards and regression
// ratios, not for sub-bucket precision.
type LatencySummary struct {
	Count         int64
	P50, P95, P99 time.Duration
}

// summary computes the quantile summary from one coherent pass over the
// buckets.
func (h *latencyHist) summary() LatencySummary {
	var counts [histBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = atomic.LoadInt64(&h.counts[i])
		total += counts[i]
	}
	s := LatencySummary{Count: total}
	if total == 0 {
		return s
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation.
func quantile(counts *[histBuckets]int64, total int64, q float64) time.Duration {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is bucket i's exclusive upper bound: 2^i microseconds.
func bucketUpper(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}
