package core

import (
	"sync"
	"testing"
	"time"
)

// TestLatencyHistQuantiles pins the histogram contract: quantiles are
// bucket upper bounds (2^i µs), ceil-rank selection, so a 90/10 split of
// 1 ms and 100 ms observations puts p50 in the 1 ms bucket (upper bound
// 1.024 ms) and p95/p99 in the 100 ms bucket (upper bound ~131 ms).
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if s := h.summary(); s != (LatencySummary{}) {
		t.Errorf("empty summary = %+v, want zero", s)
	}
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(100 * time.Millisecond)
	}
	s := h.summary()
	if s.Count != 100 {
		t.Errorf("Count = %d, want 100", s.Count)
	}
	if want := 1024 * time.Microsecond; s.P50 != want {
		t.Errorf("P50 = %v, want %v", s.P50, want)
	}
	if want := 131072 * time.Microsecond; s.P95 != want || s.P99 != want {
		t.Errorf("P95/P99 = %v/%v, want both %v", s.P95, s.P99, want)
	}
}

// TestLatencyHistEdges: sub-microsecond observations land in bucket 0
// (upper bound 1 µs) and a single observation is every quantile.
func TestLatencyHistEdges(t *testing.T) {
	var h latencyHist
	h.observe(500 * time.Nanosecond)
	s := h.summary()
	if s.Count != 1 || s.P50 != time.Microsecond || s.P99 != time.Microsecond {
		t.Errorf("summary = %+v, want Count 1 and 1µs quantiles", s)
	}
}

// TestLatencyHistConcurrent: observe is one atomic add, so concurrent
// recorders never lose counts (run under -race in CI).
func TestLatencyHistConcurrent(t *testing.T) {
	var h latencyHist
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.summary(); s.Count != goroutines*each {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*each)
	}
}
