package sgxlkl

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/litedb"
	"twine/internal/sgx"
)

func buildAndLaunch(t *testing.T, blocks int) (*Runtime, hostfs.FS) {
	t.Helper()
	fs := hostfs.NewMemFS()
	var key [16]byte
	if err := BuildImage(fs, "disk.img", ImageConfig{Blocks: blocks, Key: key}); err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	enclave, err := sgx.NewPlatform("lkl").NewEnclave(sgx.TestConfig(), []byte("sgx-lkl"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	rt, err := Launch(enclave, fs, "disk.img", key, nil)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt, fs
}

func TestImageRoundTrip(t *testing.T) {
	rt, _ := buildAndLaunch(t, 64)
	vfs := rt.VFS()
	f, err := vfs.Open("test.db", true)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3*BlockSize+17)
	if _, err := f.WriteAt(payload, 100); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := make([]byte, len(payload))
	n, err := f.ReadAt(got, 100)
	if err != nil || n != len(payload) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("image data corrupted")
	}
	size, _ := f.Size()
	if size != 100+int64(len(payload)) {
		t.Errorf("size = %d", size)
	}
}

func TestPersistenceAcrossRelaunch(t *testing.T) {
	fs := hostfs.NewMemFS()
	var key [16]byte
	if err := BuildImage(fs, "d.img", ImageConfig{Blocks: 32, Key: key}); err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	platform := sgx.NewPlatform("lkl2")
	enc1, _ := platform.NewEnclave(sgx.TestConfig(), []byte("lkl"))
	rt, err := Launch(enc1, fs, "d.img", key, nil)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	f, _ := rt.VFS().Open("x.db", true)
	f.WriteAt([]byte("persisted data"), 0)
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	enc2, _ := platform.NewEnclave(sgx.TestConfig(), []byte("lkl"))
	rt2, err := Launch(enc2, fs, "d.img", key, nil)
	if err != nil {
		t.Fatalf("relaunch: %v", err)
	}
	defer rt2.Close()
	f2, err := rt2.VFS().Open("x.db", false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	buf := make([]byte, 14)
	f2.ReadAt(buf, 0)
	if string(buf) != "persisted data" {
		t.Errorf("relaunched content = %q", buf)
	}
}

func TestImageCiphertextOnHost(t *testing.T) {
	rt, fs := buildAndLaunch(t, 32)
	f, _ := rt.VFS().Open("s.db", true)
	f.WriteAt([]byte("LKL-SECRET-MARKER-0123456789"), 0)
	if err := rt.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	raw, _ := fs.OpenFile("disk.img", hostfs.ORead)
	defer raw.Close()
	info, _ := raw.Stat()
	disk := make([]byte, info.Size)
	raw.ReadAt(disk, 0)
	if bytes.Contains(disk, []byte("LKL-SECRET-MARKER-0123456789")) {
		t.Fatal("plaintext visible in image file")
	}
}

func TestImageTamperDetectedAtLaunch(t *testing.T) {
	fs := hostfs.NewMemFS()
	var key [16]byte
	BuildImage(fs, "t.img", ImageConfig{Blocks: 8, Key: key})
	raw, _ := fs.OpenFile("t.img", hostfs.ORead|hostfs.OWrite)
	var b [1]byte
	raw.ReadAt(b[:], blockOff(3)+5)
	b[0] ^= 1
	raw.WriteAt(b[:], blockOff(3)+5)
	raw.Close()
	enclave, _ := sgx.NewPlatform("x").NewEnclave(sgx.TestConfig(), []byte("lkl"))
	if _, err := Launch(enclave, fs, "t.img", key, nil); !errors.Is(err, ErrBadImage) {
		t.Errorf("tampered launch = %v, want ErrBadImage", err)
	}
}

func TestJournalExtent(t *testing.T) {
	rt, _ := buildAndLaunch(t, 64)
	vfs := rt.VFS()
	if ok, _ := vfs.Exists("a.db-journal"); ok {
		t.Error("journal exists before creation")
	}
	j, err := vfs.Open("a.db-journal", true)
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	j.WriteAt([]byte("journal entry"), 0)
	if ok, _ := vfs.Exists("a.db-journal"); !ok {
		t.Error("journal missing after write")
	}
	if err := vfs.Delete("a.db-journal"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if ok, _ := vfs.Exists("a.db-journal"); ok {
		t.Error("journal exists after delete")
	}
}

func TestExtentFull(t *testing.T) {
	rt, _ := buildAndLaunch(t, 16) // 12 db blocks, 4 journal
	f, _ := rt.VFS().Open("big.db", true)
	big := make([]byte, 13*BlockSize)
	if _, err := f.WriteAt(big, 0); !errors.Is(err, ErrImageFull) {
		t.Errorf("oversized write = %v, want ErrImageFull", err)
	}
}

func TestSQLOnLKLImage(t *testing.T) {
	rt, _ := buildAndLaunch(t, 256)
	db, err := litedb.Open(rt.VFS(), "app.db", litedb.Options{CachePages: 32})
	if err != nil {
		t.Fatalf("litedb.Open: %v", err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(`INSERT INTO t (b) VALUES ('row')`); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	row, err := db.QueryRow(`SELECT COUNT(*) FROM t`)
	if err != nil || row[0].Int() != 50 {
		t.Fatalf("count = %v, %v", row, err)
	}
	// Transactions (journal extent) work.
	if _, err := db.Exec(`BEGIN; INSERT INTO t (b) VALUES ('x'); ROLLBACK`); err != nil {
		t.Fatalf("txn: %v", err)
	}
	row, _ = db.QueryRow(`SELECT COUNT(*) FROM t`)
	if row[0].Int() != 50 {
		t.Errorf("count after rollback = %v", row[0])
	}
}

func TestLaunchTouchesWholeImage(t *testing.T) {
	fs := hostfs.NewMemFS()
	var key [16]byte
	BuildImage(fs, "d.img", ImageConfig{Blocks: 64, Key: key})
	enclave, _ := sgx.NewPlatform("t").NewEnclave(sgx.TestConfig(), []byte("lkl"))
	before := enclave.Memory().Faults()
	rt, err := Launch(enclave, fs, "d.img", key, nil)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer rt.Close()
	if got := enclave.Memory().Faults() - before; got < 64 {
		t.Errorf("launch faulted %d pages, want >= 64 (whole image mapped)", got)
	}
	if rt.ImageBytes() != 64*BlockSize {
		t.Errorf("ImageBytes = %d", rt.ImageBytes())
	}
}

func TestExtentNaming(t *testing.T) {
	v := &lklVFS{}
	if v.extentOf("foo.db") != extDB || v.extentOf("foo.db-journal") != extJournal {
		t.Error("extent mapping wrong")
	}
	if !strings.HasSuffix("x-journal", "-journal") {
		t.Error("sanity")
	}
}
