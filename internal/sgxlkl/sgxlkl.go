// Package sgxlkl simulates the SGX-LKL library OS, the paper's empirical
// baseline for running *native* code inside SGX enclaves (§V-A): the
// application and its data live on an encrypted disk image that is mapped
// into enclave memory in full, native code executes at full speed inside
// the enclave, and block writes are re-encrypted and written through to
// the untrusted image file.
//
// The disk image is the minimal ext4 stand-in the experiments need: a
// header plus two fixed extents (database and journal) of 4 KiB blocks,
// each block encrypted with a fresh AES-GCM key kept in a key table at
// the end of the image (the dm-crypt + dm-integrity analogue).
//
// Costs reproduced: image generation at build time (Table IIIa), a heavy
// launch (read + decrypt + verify the whole image into enclave memory),
// a large enclave footprint (Table IIIb), and in-enclave I/O that counts
// against the EPC (Figures 4-6).
package sgxlkl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"twine/internal/hostfs"
	"twine/internal/litedb"
	"twine/internal/prof"
	"twine/internal/sgx"
)

// BlockSize is the image block granularity.
const BlockSize = 4096

// keySlot is the per-block key+tag record in the key table.
const keySlot = 32

var imageMagic = [8]byte{'L', 'K', 'L', 'I', 'M', 'G', '1', 0}

// Header layout (block 0, plaintext):
//
//	magic(8) nBlocks(4) dbCap(4) jCap(4) dbSize(8) jSize(8)
const (
	hdrNBlocksOff = 8
	hdrDBCapOff   = 12
	hdrJCapOff    = 16
	hdrDBSizeOff  = 20
	hdrJSizeOff   = 28
)

// Package errors.
var (
	ErrBadImage  = errors.New("sgxlkl: bad disk image")
	ErrImageFull = errors.New("sgxlkl: extent full")
)

// ImageConfig sizes a disk image.
type ImageConfig struct {
	// Blocks is the number of data blocks (image data size = Blocks*4KiB).
	Blocks int
	// DBFrac is the fraction of blocks given to the database extent
	// (remainder is the journal extent). Default 0.75.
	DBFrac float64
	// Key encrypts the image (shared between image builder and enclave,
	// standing in for SGX-LKL's disk encryption key provisioning).
	Key [16]byte
}

// BuildImage creates an encrypted, zero-filled image file on the host.
// The paper measures this as "Generate disk image" (Table IIIa).
func BuildImage(fs hostfs.FS, path string, cfg ImageConfig) error {
	if cfg.Blocks <= 0 {
		return fmt.Errorf("sgxlkl: non-positive image size")
	}
	if cfg.DBFrac <= 0 || cfg.DBFrac >= 1 {
		cfg.DBFrac = 0.75
	}
	f, err := fs.OpenFile(path, hostfs.OWrite|hostfs.OCreate|hostfs.OTrunc)
	if err != nil {
		return err
	}
	defer f.Close()

	dbCap := int(float64(cfg.Blocks) * cfg.DBFrac)
	jCap := cfg.Blocks - dbCap
	var hdr [BlockSize]byte
	copy(hdr[:8], imageMagic[:])
	binary.BigEndian.PutUint32(hdr[hdrNBlocksOff:], uint32(cfg.Blocks))
	binary.BigEndian.PutUint32(hdr[hdrDBCapOff:], uint32(dbCap))
	binary.BigEndian.PutUint32(hdr[hdrJCapOff:], uint32(jCap))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}

	// Encrypt every (zero) block with a fresh key; the work is what the
	// paper's image generation pays.
	zero := make([]byte, BlockSize)
	ct := make([]byte, BlockSize+16)
	slot := make([]byte, keySlot)
	for b := 0; b < cfg.Blocks; b++ {
		key, tag, err := sealBlock(zero, ct)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(ct[:BlockSize], blockOff(b)); err != nil {
			return err
		}
		copy(slot[:16], key[:])
		copy(slot[16:], tag[:])
		if _, err := f.WriteAt(slot, keyOff(cfg.Blocks, b)); err != nil {
			return err
		}
	}
	return f.Sync()
}

func blockOff(b int) int64 { return BlockSize + int64(b)*BlockSize }

func keyOff(nBlocks, b int) int64 {
	return BlockSize + int64(nBlocks)*BlockSize + int64(b)*keySlot
}

var zeroNonce [12]byte

func sealBlock(plain, ctOut []byte) (key, tag [16]byte, err error) {
	if _, err = rand.Read(key[:]); err != nil {
		return
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return
	}
	out := aead.Seal(ctOut[:0], zeroNonce[:], plain, nil)
	copy(tag[:], out[len(plain):])
	return
}

func openBlock(key, tag [16]byte, ct, plainOut, scratch []byte) error {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	buf := append(scratch[:0], ct...)
	buf = append(buf, tag[:]...)
	if _, err := aead.Open(plainOut[:0], zeroNonce[:], buf, nil); err != nil {
		return fmt.Errorf("%w: block authentication failed: %v", ErrBadImage, err)
	}
	return nil
}

// Runtime is a launched SGX-LKL instance: the decrypted image in enclave
// memory plus the write-through machinery.
type Runtime struct {
	enclave *sgx.Enclave
	fs      hostfs.FS
	file    hostfs.File
	proff   *prof.Registry

	nBlocks int
	dbCap   int
	jCap    int
	dbSize  int64
	jSize   int64

	plain    []byte // decrypted image (conceptually enclave memory)
	dirty    map[int]struct{}
	hdrDirty bool

	arena   int64 // enclave arena for EPC accounting
	arenaOK bool

	scratch [BlockSize + 16]byte
	ctBuf   [BlockSize + 16]byte
	closed  bool
}

// Launch loads the image into the enclave, decrypting and verifying every
// block — the heavyweight startup the paper measures (Table IIIa: 6.1 s
// on their testbed).
func Launch(enclave *sgx.Enclave, fs hostfs.FS, path string, key [16]byte, reg *prof.Registry) (*Runtime, error) {
	_ = key // the per-block keys live in the key table; `key` reserved for header MAC extensions
	r := &Runtime{enclave: enclave, fs: fs, proff: reg, dirty: make(map[int]struct{})}
	err := r.ocall("lkl.open", func() error {
		f, oerr := fs.OpenFile(path, hostfs.ORead|hostfs.OWrite)
		r.file = f
		return oerr
	})
	if err != nil {
		return nil, err
	}
	var hdr [BlockSize]byte
	if err := r.readHost(hdr[:], 0); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	r.nBlocks = int(binary.BigEndian.Uint32(hdr[hdrNBlocksOff:]))
	r.dbCap = int(binary.BigEndian.Uint32(hdr[hdrDBCapOff:]))
	r.jCap = int(binary.BigEndian.Uint32(hdr[hdrJCapOff:]))
	r.dbSize = int64(binary.BigEndian.Uint64(hdr[hdrDBSizeOff:]))
	r.jSize = int64(binary.BigEndian.Uint64(hdr[hdrJSizeOff:]))
	if r.nBlocks <= 0 || r.dbCap+r.jCap != r.nBlocks {
		return nil, fmt.Errorf("%w: inconsistent extents", ErrBadImage)
	}

	// Claim enclave memory for the whole image (the SGX-LKL footprint).
	if enclave != nil {
		need := int64(r.nBlocks)*BlockSize + sgx.PageSize
		off, err := enclave.Allocator().Alloc(need)
		if err != nil {
			return nil, fmt.Errorf("sgxlkl: enclave too small for image: %w", err)
		}
		r.arena = (off + sgx.PageSize - 1) &^ (sgx.PageSize - 1)
		r.arenaOK = true
	}
	r.plain = make([]byte, r.nBlocks*BlockSize)

	// Read, decrypt, verify every block.
	slot := make([]byte, keySlot)
	for b := 0; b < r.nBlocks; b++ {
		if err := r.readHost(r.ctBuf[:BlockSize], blockOff(b)); err != nil {
			return nil, err
		}
		if err := r.readHost(slot, keyOff(r.nBlocks, b)); err != nil {
			return nil, err
		}
		var bkey, btag [16]byte
		copy(bkey[:], slot[:16])
		copy(btag[:], slot[16:])
		r.touch(b)
		if err := openBlock(bkey, btag, r.ctBuf[:BlockSize], r.plain[b*BlockSize:(b+1)*BlockSize], r.scratch[:]); err != nil {
			return nil, fmt.Errorf("block %d: %w", b, err)
		}
	}
	return r, nil
}

func (r *Runtime) ocall(name string, fn func() error) error {
	if r.enclave == nil || !r.enclave.Inside() {
		return fn()
	}
	return r.enclave.OCall(name, fn)
}

func (r *Runtime) readHost(p []byte, off int64) error {
	return r.ocall("lkl.read", func() error {
		n, err := r.file.ReadAt(p, off)
		if err != nil {
			return err
		}
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return nil
	})
}

// touch charges EPC residency for a block of the in-enclave image.
func (r *Runtime) touch(block int) {
	if r.arenaOK {
		_ = r.enclave.Memory().Touch(r.arena+int64(block)*BlockSize, BlockSize)
	}
}

// flushBlock re-encrypts one block and writes it through to the host.
func (r *Runtime) flushBlock(b int) error {
	r.touch(b)
	key, tag, err := sealBlock(r.plain[b*BlockSize:(b+1)*BlockSize], r.ctBuf[:])
	if err != nil {
		return err
	}
	return r.ocall("lkl.write", func() error {
		if _, err := r.file.WriteAt(r.ctBuf[:BlockSize], blockOff(b)); err != nil {
			return err
		}
		var slot [keySlot]byte
		copy(slot[:16], key[:])
		copy(slot[16:], tag[:])
		_, err := r.file.WriteAt(slot[:], keyOff(r.nBlocks, b))
		return err
	})
}

func (r *Runtime) flushHeader() error {
	var hdr [BlockSize]byte
	copy(hdr[:8], imageMagic[:])
	binary.BigEndian.PutUint32(hdr[hdrNBlocksOff:], uint32(r.nBlocks))
	binary.BigEndian.PutUint32(hdr[hdrDBCapOff:], uint32(r.dbCap))
	binary.BigEndian.PutUint32(hdr[hdrJCapOff:], uint32(r.jCap))
	binary.BigEndian.PutUint64(hdr[hdrDBSizeOff:], uint64(r.dbSize))
	binary.BigEndian.PutUint64(hdr[hdrJSizeOff:], uint64(r.jSize))
	return r.ocall("lkl.write", func() error {
		_, err := r.file.WriteAt(hdr[:], 0)
		return err
	})
}

// Sync flushes all dirty blocks and the header.
func (r *Runtime) Sync() error {
	sp := r.proff.Start("lkl.sync")
	defer sp.Stop()
	for b := range r.dirty {
		if err := r.flushBlock(b); err != nil {
			return err
		}
		delete(r.dirty, b)
	}
	if r.hdrDirty {
		if err := r.flushHeader(); err != nil {
			return err
		}
		r.hdrDirty = false
	}
	return r.ocall("lkl.fsync", func() error { return r.file.Sync() })
}

// Close flushes and releases the image.
func (r *Runtime) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.Sync(); err != nil {
		return err
	}
	return r.ocall("lkl.close", func() error { return r.file.Close() })
}

// ImageBytes reports the in-enclave image footprint.
func (r *Runtime) ImageBytes() int64 { return int64(len(r.plain)) }

// --- VFS over the image ---

// extent identifies one of the two image regions.
type extent int

const (
	extDB extent = iota
	extJournal
)

// VFS returns a litedb VFS backed by the image: the main database file
// maps to the db extent, any "*-journal" name to the journal extent.
func (r *Runtime) VFS() litedb.VFS { return &lklVFS{rt: r} }

type lklVFS struct{ rt *Runtime }

func (v *lklVFS) extentOf(name string) extent {
	if strings.HasSuffix(name, "-journal") {
		return extJournal
	}
	return extDB
}

// Open implements litedb.VFS.
func (v *lklVFS) Open(name string, create bool) (litedb.DBFile, error) {
	e := v.extentOf(name)
	size := v.rt.sizeOf(e)
	if size == 0 && !create {
		return nil, fmt.Errorf("%w: %s", litedb.ErrNotFound, name)
	}
	return &lklFile{rt: v.rt, ext: e}, nil
}

// Delete implements litedb.VFS.
func (v *lklVFS) Delete(name string) error {
	e := v.extentOf(name)
	v.rt.setSize(e, 0)
	v.rt.hdrDirty = true
	return v.rt.flushHeader()
}

// Exists implements litedb.VFS.
func (v *lklVFS) Exists(name string) (bool, error) {
	return v.rt.sizeOf(v.extentOf(name)) > 0, nil
}

func (r *Runtime) sizeOf(e extent) int64 {
	if e == extDB {
		return r.dbSize
	}
	return r.jSize
}

func (r *Runtime) setSize(e extent, size int64) {
	if e == extDB {
		r.dbSize = size
	} else {
		r.jSize = size
	}
	r.hdrDirty = true
}

func (r *Runtime) extentBase(e extent) int {
	if e == extDB {
		return 0
	}
	return r.dbCap
}

func (r *Runtime) extentCap(e extent) int64 {
	if e == extDB {
		return int64(r.dbCap) * BlockSize
	}
	return int64(r.jCap) * BlockSize
}

type lklFile struct {
	rt  *Runtime
	ext extent
}

// ReadAt reads from the decrypted in-enclave image.
func (f *lklFile) ReadAt(p []byte, off int64) (int, error) {
	size := f.rt.sizeOf(f.ext)
	if off >= size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	base := int64(f.rt.extentBase(f.ext)) * BlockSize
	for b := off / BlockSize; b <= (off+n-1)/BlockSize; b++ {
		f.rt.touch(f.rt.extentBase(f.ext) + int(b))
	}
	copy(p[:n], f.rt.plain[base+off:base+off+n])
	return int(n), nil
}

// WriteAt writes into the image and marks blocks for write-through.
func (f *lklFile) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.rt.extentCap(f.ext) {
		return 0, fmt.Errorf("%w (%s extent, need %d bytes of %d)",
			ErrImageFull, map[extent]string{extDB: "db", extJournal: "journal"}[f.ext],
			off+int64(len(p)), f.rt.extentCap(f.ext))
	}
	base := int64(f.rt.extentBase(f.ext)) * BlockSize
	copy(f.rt.plain[base+off:], p)
	first := f.rt.extentBase(f.ext) + int(off/BlockSize)
	last := f.rt.extentBase(f.ext) + int((off+int64(len(p))-1)/BlockSize)
	for b := first; b <= last; b++ {
		f.rt.touch(b)
		f.rt.dirty[b] = struct{}{}
	}
	if off+int64(len(p)) > f.rt.sizeOf(f.ext) {
		f.rt.setSize(f.ext, off+int64(len(p)))
	}
	return len(p), nil
}

// Truncate implements DBFile.
func (f *lklFile) Truncate(size int64) error {
	if size > f.rt.extentCap(f.ext) {
		return ErrImageFull
	}
	cur := f.rt.sizeOf(f.ext)
	if size > cur {
		base := int64(f.rt.extentBase(f.ext)) * BlockSize
		for i := base + cur; i < base+size; i++ {
			f.rt.plain[i] = 0
		}
	}
	f.rt.setSize(f.ext, size)
	return nil
}

// Sync flushes this file's extent (all dirty blocks — block granularity
// does not distinguish extents, matching dm-crypt behaviour).
func (f *lklFile) Sync() error { return f.rt.Sync() }

// Size implements DBFile.
func (f *lklFile) Size() (int64, error) { return f.rt.sizeOf(f.ext), nil }

// Close implements DBFile (extents stay mapped).
func (f *lklFile) Close() error { return nil }
