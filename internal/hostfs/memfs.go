package hostfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory hierarchical file system. It implements FS with
// full support for directories, hard links and symbolic links, so the WASI
// layer can be exercised end to end without touching the disk.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	root    *memNode
	nextIno uint64
	clock   Clock
}

type memNode struct {
	ino      uint64
	typ      FileType
	data     []byte
	children map[string]*memNode // directories
	target   string              // symlinks
	mtime    time.Time
	atime    time.Time
	nlink    int
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	fs := &MemFS{clock: NewRealClock(), nextIno: 1}
	fs.root = &memNode{ino: fs.inode(), typ: TypeDir, children: map[string]*memNode{}, nlink: 1}
	return fs
}

func (fs *MemFS) inode() uint64 {
	ino := fs.nextIno
	fs.nextIno++
	return ino
}

// split cleans a path into components, rejecting escapes above the root.
func splitPath(name string) ([]string, error) {
	name = strings.TrimPrefix(name, "/")
	if name == "" || name == "." {
		return nil, nil
	}
	raw := strings.Split(name, "/")
	var parts []string
	for _, p := range raw {
		switch p {
		case "", ".":
		case "..":
			if len(parts) == 0 {
				return nil, fmt.Errorf("%w: path escapes root: %s", ErrPermission, name)
			}
			parts = parts[:len(parts)-1]
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

const maxSymlinkDepth = 16

// walk resolves name to (parent, leafName, node). node is nil if the leaf
// does not exist. followLeaf controls symlink resolution of the last
// component.
func (fs *MemFS) walk(name string, followLeaf bool) (parent *memNode, leaf string, node *memNode, err error) {
	return fs.walkDepth(name, followLeaf, 0)
}

func (fs *MemFS) walkDepth(name string, followLeaf bool, depth int) (*memNode, string, *memNode, error) {
	if depth > maxSymlinkDepth {
		return nil, "", nil, fmt.Errorf("%w: too many levels of symbolic links", ErrInvalid)
	}
	parts, err := splitPath(name)
	if err != nil {
		return nil, "", nil, err
	}
	if len(parts) == 0 {
		return nil, "", fs.root, nil
	}
	cur := fs.root
	for i, part := range parts {
		if cur.typ != TypeDir {
			return nil, "", nil, fmt.Errorf("%w: %s", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		next, ok := cur.children[part]
		last := i == len(parts)-1
		if last {
			if ok && next.typ == TypeSymlink && followLeaf {
				return fs.walkDepth(joinTarget(parts[:i], next.target), true, depth+1)
			}
			if !ok {
				return cur, part, nil, nil
			}
			return cur, part, next, nil
		}
		if !ok {
			return nil, "", nil, fmt.Errorf("%w: %s", ErrNotExist, strings.Join(parts[:i+1], "/"))
		}
		if next.typ == TypeSymlink {
			rest := strings.Join(parts[i+1:], "/")
			return fs.walkDepth(joinTarget(parts[:i], next.target)+"/"+rest, followLeaf, depth+1)
		}
		cur = next
	}
	panic("unreachable")
}

// joinTarget resolves a symlink target relative to the directory holding
// the link (absolute targets restart from the root).
func joinTarget(dirParts []string, target string) string {
	if strings.HasPrefix(target, "/") {
		return target
	}
	return strings.Join(dirParts, "/") + "/" + target
}

// OpenFile implements FS.
func (fs *MemFS) OpenFile(name string, flag int) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, node, err := fs.walk(name, true)
	if err != nil {
		return nil, err
	}
	switch {
	case node == nil && flag&OCreate == 0:
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	case node == nil:
		node = &memNode{ino: fs.inode(), typ: TypeRegular, mtime: fs.clock.Now(), atime: fs.clock.Now(), nlink: 1}
		parent.children[leaf] = node
		parent.mtime = fs.clock.Now()
	case flag&OExcl != 0 && flag&OCreate != 0:
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	case node.typ == TypeDir && flag&OWrite != 0:
		return nil, fmt.Errorf("%w: %s", ErrIsDir, name)
	case node.typ == TypeDir:
		return &memFile{fs: fs, node: node, name: leafName(name)}, nil
	}
	if flag&OTrunc != 0 {
		node.data = nil
		node.mtime = fs.clock.Now()
	}
	return &memFile{fs: fs, node: node, name: leafName(name), writable: flag&OWrite != 0}, nil
}

func leafName(name string) string {
	parts, _ := splitPath(name)
	if len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

// Mkdir implements FS.
func (fs *MemFS) Mkdir(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, node, err := fs.walk(name, true)
	if err != nil {
		return err
	}
	if node != nil {
		return fmt.Errorf("%w: %s", ErrExist, name)
	}
	if parent == nil {
		return fmt.Errorf("%w: %s", ErrInvalid, name)
	}
	parent.children[leaf] = &memNode{
		ino: fs.inode(), typ: TypeDir, children: map[string]*memNode{},
		mtime: fs.clock.Now(), atime: fs.clock.Now(), nlink: 1,
	}
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, node, err := fs.walk(name, false)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if node == fs.root {
		return fmt.Errorf("%w: cannot remove root", ErrInvalid)
	}
	if node.typ == TypeDir && len(node.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, name)
	}
	node.nlink--
	delete(parent.children, leaf)
	parent.mtime = fs.clock.Now()
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldParent, oldLeaf, node, err := fs.walk(oldName, false)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	newParent, newLeaf, existing, err := fs.walk(newName, false)
	if err != nil {
		return err
	}
	if existing != nil {
		if existing.typ == TypeDir && len(existing.children) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, newName)
		}
		if existing.typ == TypeDir && node.typ != TypeDir {
			return fmt.Errorf("%w: %s", ErrIsDir, newName)
		}
	}
	delete(oldParent.children, oldLeaf)
	newParent.children[newLeaf] = node
	now := fs.clock.Now()
	oldParent.mtime, newParent.mtime = now, now
	return nil
}

// Stat implements FS.
func (fs *MemFS) Stat(name string) (FileInfo, error) { return fs.stat(name, true) }

// Lstat implements FS.
func (fs *MemFS) Lstat(name string) (FileInfo, error) { return fs.stat(name, false) }

func (fs *MemFS) stat(name string, follow bool) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, leaf, node, err := fs.walk(name, follow)
	if err != nil {
		return FileInfo{}, err
	}
	if node == nil {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if leaf == "" {
		leaf = "/"
	}
	return nodeInfo(leaf, node), nil
}

func nodeInfo(name string, n *memNode) FileInfo {
	size := int64(len(n.data))
	if n.typ == TypeSymlink {
		size = int64(len(n.target))
	}
	return FileInfo{Name: name, Size: size, Type: n.typ, ModTime: n.mtime, AccTime: n.atime, Ino: n.ino}
}

// ReadDir implements FS.
func (fs *MemFS) ReadDir(name string) ([]FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, node, err := fs.walk(name, true)
	if err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if node.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
	}
	names := make([]string, 0, len(node.children))
	for n := range node.children {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FileInfo, 0, len(names))
	for _, n := range names {
		out = append(out, nodeInfo(n, node.children[n]))
	}
	return out, nil
}

// Symlink implements FS.
func (fs *MemFS) Symlink(target, link string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, node, err := fs.walk(link, false)
	if err != nil {
		return err
	}
	if node != nil {
		return fmt.Errorf("%w: %s", ErrExist, link)
	}
	parent.children[leaf] = &memNode{
		ino: fs.inode(), typ: TypeSymlink, target: target,
		mtime: fs.clock.Now(), atime: fs.clock.Now(), nlink: 1,
	}
	return nil
}

// Readlink implements FS.
func (fs *MemFS) Readlink(name string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, node, err := fs.walk(name, false)
	if err != nil {
		return "", err
	}
	if node == nil {
		return "", fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if node.typ != TypeSymlink {
		return "", fmt.Errorf("%w: not a symlink: %s", ErrInvalid, name)
	}
	return node.target, nil
}

// Link implements FS.
func (fs *MemFS) Link(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, node, err := fs.walk(oldName, true)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	if node.typ == TypeDir {
		return fmt.Errorf("%w: hard link to directory", ErrPermission)
	}
	parent, leaf, existing, err := fs.walk(newName, false)
	if err != nil {
		return err
	}
	if existing != nil {
		return fmt.Errorf("%w: %s", ErrExist, newName)
	}
	node.nlink++
	parent.children[leaf] = node
	return nil
}

// UTimes implements FS.
func (fs *MemFS) UTimes(name string, atime, mtime time.Time) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, node, err := fs.walk(name, true)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	node.atime, node.mtime = atime, mtime
	return nil
}

// TotalBytes reports the sum of all regular file sizes (used by benchmarks
// to report on-disk footprint).
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	var visit func(n *memNode)
	seen := map[*memNode]bool{}
	visit = func(n *memNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		total += int64(len(n.data))
		for _, c := range n.children {
			visit(c)
		}
	}
	visit(fs.root)
	return total
}

// memFile is an open handle onto a memNode.
type memFile struct {
	fs       *MemFS
	node     *memNode
	name     string
	writable bool
	closed   bool
}

// ReadAt implements File.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.node.typ == TypeDir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if off >= int64(len(f.node.data)) {
		return 0, nil // EOF as a short read; WASI maps n==0 to EOF
	}
	n := copy(p, f.node.data[off:])
	f.node.atime = f.fs.clock.Now()
	return n, nil
}

// WriteAt implements File.
func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrPermission
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if need := off + int64(len(p)); need > int64(len(f.node.data)) {
		f.node.data = growBuf(f.node.data, need)
	}
	copy(f.node.data[off:], p)
	f.node.mtime = f.fs.clock.Now()
	return len(p), nil
}

// growBuf extends data to length need with amortised doubling, so writers
// that extend files incrementally stay linear.
func growBuf(data []byte, need int64) []byte {
	if need <= int64(cap(data)) {
		return data[:need]
	}
	newCap := int64(cap(data)) * 2
	if newCap < need {
		newCap = need
	}
	grown := make([]byte, need, newCap)
	copy(grown, data)
	return grown
}

// Truncate implements File.
func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if !f.writable {
		return ErrPermission
	}
	if size < 0 {
		return ErrInvalid
	}
	switch {
	case size <= int64(len(f.node.data)):
		f.node.data = f.node.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	f.node.mtime = f.fs.clock.Now()
	return nil
}

// Sync implements File (a no-op in memory).
func (f *memFile) Sync() error {
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Stat implements File.
func (f *memFile) Stat() (FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return FileInfo{}, ErrClosed
	}
	return nodeInfo(f.name, f.node), nil
}

// Close implements File.
func (f *memFile) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
