package hostfs

import (
	"sync/atomic"
	"time"
)

// Faulty wraps an FS with deterministic failure injection: after FailAfter
// successful operations, every subsequent operation fails with Err. It is
// used by tests to verify that higher layers (IPFS, WASI, the database)
// surface untrusted-host failures instead of corrupting state.
//
// Two optional schedules refine the default fail-forever-after mode
// (PR 6), so recovery paths — not just first-failure paths — are
// testable:
//
//   - Window > 0 bounds the failure run: only the Window operations
//     after the first FailAfter succeed — ops (FailAfter,
//     FailAfter+Window] — fail; later operations succeed again.
//   - EveryK > 0 selects every Kth operation instead, at a phase within
//     the stride derived from Seed, modelling a persistently flaky host
//     rather than a one-off outage. FailAfter/Window are ignored in this
//     mode.
//
// With both zero the schedule is exactly the historical FailAfter
// behaviour. For arbitrary plans (probabilities, stalls, composed
// windows) use the internal/chaos harness, which generalises this
// wrapper.
type Faulty struct {
	FS        FS
	Err       error
	FailAfter int64
	// Window, when > 0, fails only ops (FailAfter, FailAfter+Window].
	Window int64
	// EveryK, when > 0, fails every Kth op at a Seed-derived phase.
	EveryK int64
	Seed   int64

	ops atomic.Int64
}

// NewFaulty wraps fs so the (failAfter+1)-th and later operations fail
// with err.
func NewFaulty(fs FS, failAfter int64, err error) *Faulty {
	return &Faulty{FS: fs, Err: err, FailAfter: failAfter}
}

// Ops returns the number of operations attempted so far.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

func (f *Faulty) fail() bool {
	op := f.ops.Add(1)
	if f.EveryK > 0 {
		return (op-1)%f.EveryK == f.phase()
	}
	if f.Window > 0 {
		return op > f.FailAfter && op <= f.FailAfter+f.Window
	}
	return op > f.FailAfter
}

// phase maps the seed into [0, EveryK) with a SplitMix64 mix, so distinct
// seeds fault distinct ordinals while each seed stays replayable.
func (f *Faulty) phase() int64 {
	x := uint64(f.Seed) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64((x ^ (x >> 31)) % uint64(f.EveryK))
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int) (File, error) {
	if f.fail() {
		return nil, f.Err
	}
	file, err := f.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, parent: f}, nil
}

// Mkdir implements FS.
func (f *Faulty) Mkdir(name string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Mkdir(name)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Remove(name)
}

// Rename implements FS.
func (f *Faulty) Rename(oldName, newName string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Rename(oldName, newName)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (FileInfo, error) {
	if f.fail() {
		return FileInfo{}, f.Err
	}
	return f.FS.Stat(name)
}

// Lstat implements FS.
func (f *Faulty) Lstat(name string) (FileInfo, error) {
	if f.fail() {
		return FileInfo{}, f.Err
	}
	return f.FS.Lstat(name)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]FileInfo, error) {
	if f.fail() {
		return nil, f.Err
	}
	return f.FS.ReadDir(name)
}

// Symlink implements FS.
func (f *Faulty) Symlink(target, link string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Symlink(target, link)
}

// Readlink implements FS.
func (f *Faulty) Readlink(name string) (string, error) {
	if f.fail() {
		return "", f.Err
	}
	return f.FS.Readlink(name)
}

// Link implements FS.
func (f *Faulty) Link(oldName, newName string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Link(oldName, newName)
}

// UTimes implements FS.
func (f *Faulty) UTimes(name string, atime, mtime time.Time) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.UTimes(name, atime, mtime)
}

type faultyFile struct {
	File
	parent *Faulty
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.parent.fail() {
		return 0, f.parent.Err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	if f.parent.fail() {
		return 0, f.parent.Err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultyFile) Sync() error {
	if f.parent.fail() {
		return f.parent.Err
	}
	return f.File.Sync()
}
