package hostfs

import (
	"sync/atomic"
	"time"
)

// Faulty wraps an FS with deterministic failure injection: after FailAfter
// successful operations, every subsequent operation fails with Err. It is
// used by tests to verify that higher layers (IPFS, WASI, the database)
// surface untrusted-host failures instead of corrupting state.
type Faulty struct {
	FS        FS
	Err       error
	FailAfter int64

	ops atomic.Int64
}

// NewFaulty wraps fs so the (failAfter+1)-th and later operations fail
// with err.
func NewFaulty(fs FS, failAfter int64, err error) *Faulty {
	return &Faulty{FS: fs, Err: err, FailAfter: failAfter}
}

// Ops returns the number of operations attempted so far.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

func (f *Faulty) fail() bool { return f.ops.Add(1) > f.FailAfter }

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int) (File, error) {
	if f.fail() {
		return nil, f.Err
	}
	file, err := f.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, parent: f}, nil
}

// Mkdir implements FS.
func (f *Faulty) Mkdir(name string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Mkdir(name)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Remove(name)
}

// Rename implements FS.
func (f *Faulty) Rename(oldName, newName string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Rename(oldName, newName)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (FileInfo, error) {
	if f.fail() {
		return FileInfo{}, f.Err
	}
	return f.FS.Stat(name)
}

// Lstat implements FS.
func (f *Faulty) Lstat(name string) (FileInfo, error) {
	if f.fail() {
		return FileInfo{}, f.Err
	}
	return f.FS.Lstat(name)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]FileInfo, error) {
	if f.fail() {
		return nil, f.Err
	}
	return f.FS.ReadDir(name)
}

// Symlink implements FS.
func (f *Faulty) Symlink(target, link string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Symlink(target, link)
}

// Readlink implements FS.
func (f *Faulty) Readlink(name string) (string, error) {
	if f.fail() {
		return "", f.Err
	}
	return f.FS.Readlink(name)
}

// Link implements FS.
func (f *Faulty) Link(oldName, newName string) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.Link(oldName, newName)
}

// UTimes implements FS.
func (f *Faulty) UTimes(name string, atime, mtime time.Time) error {
	if f.fail() {
		return f.Err
	}
	return f.FS.UTimes(name, atime, mtime)
}

type faultyFile struct {
	File
	parent *Faulty
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.parent.fail() {
		return 0, f.parent.Err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	if f.parent.fail() {
		return 0, f.parent.Err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultyFile) Sync() error {
	if f.parent.fail() {
		return f.parent.Err
	}
	return f.File.Sync()
}
