package hostfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// DirFS is an FS rooted at a directory of the real operating system file
// system. All paths are confined below the root; attempts to escape fail
// with ErrPermission.
type DirFS struct {
	root string
}

// NewDirFS returns an FS rooted at dir, which must exist.
func NewDirFS(dir string) (*DirFS, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, mapOSError(err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	return &DirFS{root: abs}, nil
}

// resolve confines name under the root.
func (d *DirFS) resolve(name string) (string, error) {
	parts, err := splitPath(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(d.root, filepath.Join(parts...)), nil
}

func mapOSError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("%w: %v", ErrNotExist, err)
	case errors.Is(err, syscall.ENOTEMPTY):
		return fmt.Errorf("%w: %v", ErrNotEmpty, err)
	case errors.Is(err, fs.ErrExist):
		return fmt.Errorf("%w: %v", ErrExist, err)
	case errors.Is(err, fs.ErrPermission):
		return fmt.Errorf("%w: %v", ErrPermission, err)
	default:
		return err
	}
}

func osFlag(flag int) int {
	var f int
	switch {
	case flag&OWrite != 0 && flag&ORead != 0:
		f = os.O_RDWR
	case flag&OWrite != 0:
		f = os.O_WRONLY
	default:
		f = os.O_RDONLY
	}
	if flag&OCreate != 0 {
		f |= os.O_CREATE
	}
	if flag&OTrunc != 0 {
		f |= os.O_TRUNC
	}
	if flag&OExcl != 0 {
		f |= os.O_EXCL
	}
	return f
}

// OpenFile implements FS.
func (d *DirFS) OpenFile(name string, flag int) (File, error) {
	path, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, osFlag(flag), 0o644)
	if err != nil {
		return nil, mapOSError(err)
	}
	return &osFile{f: f}, nil
}

// Mkdir implements FS.
func (d *DirFS) Mkdir(name string) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	return mapOSError(os.Mkdir(path, 0o755))
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	return mapOSError(os.Remove(path))
}

// Rename implements FS.
func (d *DirFS) Rename(oldName, newName string) error {
	op, err := d.resolve(oldName)
	if err != nil {
		return err
	}
	np, err := d.resolve(newName)
	if err != nil {
		return err
	}
	return mapOSError(os.Rename(op, np))
}

// Stat implements FS.
func (d *DirFS) Stat(name string) (FileInfo, error) {
	path, err := d.resolve(name)
	if err != nil {
		return FileInfo{}, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return FileInfo{}, mapOSError(err)
	}
	return osInfo(info), nil
}

// Lstat implements FS.
func (d *DirFS) Lstat(name string) (FileInfo, error) {
	path, err := d.resolve(name)
	if err != nil {
		return FileInfo{}, err
	}
	info, err := os.Lstat(path)
	if err != nil {
		return FileInfo{}, mapOSError(err)
	}
	return osInfo(info), nil
}

func osInfo(info os.FileInfo) FileInfo {
	typ := TypeRegular
	switch {
	case info.IsDir():
		typ = TypeDir
	case info.Mode()&os.ModeSymlink != 0:
		typ = TypeSymlink
	}
	return FileInfo{
		Name:    info.Name(),
		Size:    info.Size(),
		Type:    typ,
		ModTime: info.ModTime(),
		AccTime: info.ModTime(), // portable stand-in; Linux atime needs syscall details
	}
}

// ReadDir implements FS.
func (d *DirFS) ReadDir(name string) ([]FileInfo, error) {
	path, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, mapOSError(err)
	}
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue // raced with deletion
		}
		out = append(out, osInfo(info))
	}
	return out, nil
}

// Symlink implements FS. Targets are kept relative to the FS root.
func (d *DirFS) Symlink(target, link string) error {
	if strings.Contains(target, "..") {
		return fmt.Errorf("%w: symlink target escapes root", ErrPermission)
	}
	path, err := d.resolve(link)
	if err != nil {
		return err
	}
	return mapOSError(os.Symlink(target, path))
}

// Readlink implements FS.
func (d *DirFS) Readlink(name string) (string, error) {
	path, err := d.resolve(name)
	if err != nil {
		return "", err
	}
	t, err := os.Readlink(path)
	return t, mapOSError(err)
}

// Link implements FS.
func (d *DirFS) Link(oldName, newName string) error {
	op, err := d.resolve(oldName)
	if err != nil {
		return err
	}
	np, err := d.resolve(newName)
	if err != nil {
		return err
	}
	return mapOSError(os.Link(op, np))
}

// UTimes implements FS.
func (d *DirFS) UTimes(name string, atime, mtime time.Time) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	return mapOSError(os.Chtimes(path, atime, mtime))
}

type osFile struct{ f *os.File }

func (o *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := o.f.ReadAt(p, off)
	if errors.Is(err, io.EOF) {
		return n, nil // positional short read; EOF conveyed by n < len(p)
	}
	return n, mapOSError(err)
}

func (o *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := o.f.WriteAt(p, off)
	return n, mapOSError(err)
}

func (o *osFile) Truncate(size int64) error { return mapOSError(o.f.Truncate(size)) }
func (o *osFile) Sync() error               { return mapOSError(o.f.Sync()) }

func (o *osFile) Stat() (FileInfo, error) {
	info, err := o.f.Stat()
	if err != nil {
		return FileInfo{}, mapOSError(err)
	}
	return osInfo(info), nil
}

func (o *osFile) Close() error { return mapOSError(o.f.Close()) }
