// Package hostfs models the untrusted host environment outside the
// enclave: a POSIX-like file system surface, a wall clock and an entropy
// source. In TWINE's architecture these are the services the enclave can
// only reach through OCALLs; the WASI layer (internal/wasi) and the
// protected file system (internal/ipfs) wrap them with the appropriate
// enclave crossings and sanity checks.
//
// Two file system implementations are provided: DirFS, rooted at a real
// directory, and MemFS, an in-memory tree used by tests and benchmarks to
// remove disk variance. Faulty wraps any FS with failure injection.
package hostfs

import (
	"errors"
	"io"
	"time"
)

// Open flags, a subset of POSIX semantics sufficient for WASI.
const (
	ORead   = 1 << iota // open for reading
	OWrite              // open for writing
	OCreate             // create if missing
	OTrunc              // truncate to zero length
	OExcl               // with OCreate: fail if it exists
)

// Package errors. They deliberately mirror the POSIX error conditions WASI
// maps to errno values.
var (
	ErrNotExist    = errors.New("hostfs: no such file or directory")
	ErrExist       = errors.New("hostfs: file exists")
	ErrIsDir       = errors.New("hostfs: is a directory")
	ErrNotDir      = errors.New("hostfs: not a directory")
	ErrNotEmpty    = errors.New("hostfs: directory not empty")
	ErrInvalid     = errors.New("hostfs: invalid argument")
	ErrPermission  = errors.New("hostfs: permission denied")
	ErrUnsupported = errors.New("hostfs: operation not supported")
	ErrClosed      = errors.New("hostfs: file already closed")
)

// FileType distinguishes the node kinds WASI cares about.
type FileType int

const (
	TypeRegular FileType = iota
	TypeDir
	TypeSymlink
)

// FileInfo describes a file system node.
type FileInfo struct {
	Name    string
	Size    int64
	Type    FileType
	ModTime time.Time
	AccTime time.Time
	Ino     uint64
}

// IsDir reports whether the node is a directory.
func (fi FileInfo) IsDir() bool { return fi.Type == TypeDir }

// File is an open file handle. Offsets are managed by the caller (the WASI
// layer keeps per-descriptor cursors), so reads and writes are positional.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Stat() (FileInfo, error)
	Close() error
}

// FS is the untrusted host file system surface.
type FS interface {
	// OpenFile opens name with the given flags.
	OpenFile(name string, flag int) (File, error)
	// Mkdir creates a directory.
	Mkdir(name string) error
	// Remove deletes a file or an empty directory.
	Remove(name string) error
	// Rename moves old to new, replacing a non-directory target.
	Rename(oldName, newName string) error
	// Stat follows symlinks; Lstat does not.
	Stat(name string) (FileInfo, error)
	Lstat(name string) (FileInfo, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]FileInfo, error)
	// Symlink, Readlink and Link manage links.
	Symlink(target, link string) error
	Readlink(name string) (string, error)
	Link(oldName, newName string) error
	// UTimes sets access and modification times.
	UTimes(name string, atime, mtime time.Time) error
}

// Clock is the untrusted time source. Enclaves cannot read trusted time on
// SGX1; TWINE fetches it outside and enforces monotonicity on re-entry.
type Clock interface {
	// Now returns wall-clock time.
	Now() time.Time
	// Monotonic returns a monotonic reading in nanoseconds.
	Monotonic() int64
	// Resolution reports the clock granularity.
	Resolution() time.Duration
}

// RealClock reads the process clocks.
type RealClock struct{ base time.Time }

// NewRealClock returns a Clock backed by the Go runtime clocks.
func NewRealClock() *RealClock { return &RealClock{base: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Time { return time.Now() }

// Monotonic implements Clock.
func (c *RealClock) Monotonic() int64 { return int64(time.Since(c.base)) }

// Resolution implements Clock.
func (c *RealClock) Resolution() time.Duration { return time.Nanosecond }
