package hostfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

// eachFS runs a conformance subtest against both implementations.
func eachFS(t *testing.T, name string, fn func(t *testing.T, fsys FS)) {
	t.Helper()
	t.Run(name+"/mem", func(t *testing.T) { fn(t, NewMemFS()) })
	t.Run(name+"/dir", func(t *testing.T) {
		d, err := NewDirFS(t.TempDir())
		if err != nil {
			t.Fatalf("NewDirFS: %v", err)
		}
		fn(t, d)
	})
}

func TestCreateWriteRead(t *testing.T) {
	eachFS(t, "crud", func(t *testing.T, fsys FS) {
		f, err := fsys.OpenFile("a.txt", ORead|OWrite|OCreate)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		buf := make([]byte, 5)
		n, err := f.ReadAt(buf, 6)
		if err != nil || n != 5 || string(buf) != "world" {
			t.Fatalf("ReadAt = %d %q %v", n, buf, err)
		}
		info, err := f.Stat()
		if err != nil || info.Size != 11 {
			t.Fatalf("Stat = %+v, %v", info, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := f.Close(); err == nil && fsysIsMem(fsys) {
			t.Error("double close not detected")
		}
	})
}

func fsysIsMem(fsys FS) bool { _, ok := fsys.(*MemFS); return ok }

func TestOpenMissingFails(t *testing.T) {
	eachFS(t, "missing", func(t *testing.T, fsys FS) {
		if _, err := fsys.OpenFile("nope", ORead); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing = %v, want ErrNotExist", err)
		}
	})
}

func TestExclusiveCreate(t *testing.T) {
	eachFS(t, "excl", func(t *testing.T, fsys FS) {
		f, err := fsys.OpenFile("x", OWrite|OCreate|OExcl)
		if err != nil {
			t.Fatalf("first create: %v", err)
		}
		f.Close()
		if _, err := fsys.OpenFile("x", OWrite|OCreate|OExcl); !errors.Is(err, ErrExist) {
			t.Errorf("second excl create = %v, want ErrExist", err)
		}
	})
}

func TestTruncFlagEmptiesFile(t *testing.T) {
	eachFS(t, "trunc", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("t", OWrite|OCreate)
		f.WriteAt([]byte("data"), 0)
		f.Close()
		f2, err := fsys.OpenFile("t", OWrite|OTrunc)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer f2.Close()
		info, _ := f2.Stat()
		if info.Size != 0 {
			t.Errorf("size after OTrunc = %d", info.Size)
		}
	})
}

func TestSparseWriteZeroFills(t *testing.T) {
	eachFS(t, "sparse", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("s", ORead|OWrite|OCreate)
		defer f.Close()
		f.WriteAt([]byte{0xAA}, 100)
		buf := make([]byte, 101)
		n, err := f.ReadAt(buf, 0)
		if err != nil || n != 101 {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(buf[:100], make([]byte, 100)) {
			t.Error("gap not zero-filled")
		}
		if buf[100] != 0xAA {
			t.Error("payload byte lost")
		}
	})
}

func TestTruncateGrowAndShrink(t *testing.T) {
	eachFS(t, "truncate", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("g", ORead|OWrite|OCreate)
		defer f.Close()
		f.WriteAt([]byte("abcdef"), 0)
		if err := f.Truncate(3); err != nil {
			t.Fatalf("shrink: %v", err)
		}
		info, _ := f.Stat()
		if info.Size != 3 {
			t.Errorf("size after shrink = %d", info.Size)
		}
		if err := f.Truncate(8); err != nil {
			t.Fatalf("grow: %v", err)
		}
		buf := make([]byte, 8)
		f.ReadAt(buf, 0)
		if !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0, 0, 0}) {
			t.Errorf("grown content = %v", buf)
		}
	})
}

func TestMkdirRemoveReadDir(t *testing.T) {
	eachFS(t, "dirs", func(t *testing.T, fsys FS) {
		if err := fsys.Mkdir("d"); err != nil {
			t.Fatalf("Mkdir: %v", err)
		}
		if err := fsys.Mkdir("d"); !errors.Is(err, ErrExist) {
			t.Errorf("duplicate Mkdir = %v, want ErrExist", err)
		}
		for _, name := range []string{"d/b", "d/a", "d/c"} {
			f, err := fsys.OpenFile(name, OWrite|OCreate)
			if err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			f.Close()
		}
		entries, err := fsys.ReadDir("d")
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		if len(entries) != 3 || entries[0].Name != "a" || entries[2].Name != "c" {
			t.Errorf("ReadDir = %+v, want a,b,c sorted", entries)
		}
		if err := fsys.Remove("d"); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("Remove non-empty dir = %v, want ErrNotEmpty", err)
		}
		for _, name := range []string{"d/a", "d/b", "d/c"} {
			if err := fsys.Remove(name); err != nil {
				t.Fatalf("Remove %s: %v", name, err)
			}
		}
		if err := fsys.Remove("d"); err != nil {
			t.Errorf("Remove empty dir = %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	eachFS(t, "rename", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("old", OWrite|OCreate)
		f.WriteAt([]byte("v"), 0)
		f.Close()
		if err := fsys.Rename("old", "new"); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		if _, err := fsys.Stat("old"); !errors.Is(err, ErrNotExist) {
			t.Errorf("old still present: %v", err)
		}
		if _, err := fsys.Stat("new"); err != nil {
			t.Errorf("new missing: %v", err)
		}
		if err := fsys.Rename("ghost", "x"); !errors.Is(err, ErrNotExist) {
			t.Errorf("rename of missing = %v", err)
		}
	})
}

func TestPathEscapeRejected(t *testing.T) {
	eachFS(t, "escape", func(t *testing.T, fsys FS) {
		if _, err := fsys.OpenFile("../../etc/passwd", ORead); !errors.Is(err, ErrPermission) {
			t.Errorf("escape = %v, want ErrPermission", err)
		}
		// Inner dot-dot that stays inside the root is fine.
		fsys.Mkdir("sub")
		f, err := fsys.OpenFile("sub/../ok", OWrite|OCreate)
		if err != nil {
			t.Errorf("inner ..: %v", err)
		} else {
			f.Close()
		}
	})
}

func TestSymlinks(t *testing.T) {
	eachFS(t, "symlink", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("target", OWrite|OCreate)
		f.WriteAt([]byte("payload"), 0)
		f.Close()
		if err := fsys.Symlink("target", "ln"); err != nil {
			t.Fatalf("Symlink: %v", err)
		}
		got, err := fsys.Readlink("ln")
		if err != nil || got != "target" {
			t.Fatalf("Readlink = %q, %v", got, err)
		}
		info, err := fsys.Stat("ln") // follows
		if err != nil || info.Type != TypeRegular {
			t.Errorf("Stat through link = %+v, %v", info, err)
		}
		linfo, err := fsys.Lstat("ln") // does not follow
		if err != nil || linfo.Type != TypeSymlink {
			t.Errorf("Lstat of link = %+v, %v", linfo, err)
		}
		lf, err := fsys.OpenFile("ln", ORead)
		if err != nil {
			t.Fatalf("open via link: %v", err)
		}
		defer lf.Close()
		buf := make([]byte, 7)
		lf.ReadAt(buf, 0)
		if string(buf) != "payload" {
			t.Errorf("read via link = %q", buf)
		}
	})
}

func TestSymlinkLoopDetected(t *testing.T) {
	fsys := NewMemFS()
	fsys.Symlink("b", "a")
	fsys.Symlink("a", "b")
	if _, err := fsys.OpenFile("a", ORead); err == nil {
		t.Error("symlink loop not detected")
	}
}

func TestHardLinks(t *testing.T) {
	eachFS(t, "hardlink", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("orig", ORead|OWrite|OCreate)
		f.WriteAt([]byte("shared"), 0)
		f.Close()
		if err := fsys.Link("orig", "alias"); err != nil {
			t.Fatalf("Link: %v", err)
		}
		// A write through one name is visible through the other.
		f2, _ := fsys.OpenFile("alias", ORead|OWrite)
		f2.WriteAt([]byte("SHARED"), 0)
		f2.Close()
		f3, _ := fsys.OpenFile("orig", ORead)
		defer f3.Close()
		buf := make([]byte, 6)
		f3.ReadAt(buf, 0)
		if string(buf) != "SHARED" {
			t.Errorf("through-link read = %q", buf)
		}
	})
}

func TestUTimes(t *testing.T) {
	eachFS(t, "utimes", func(t *testing.T, fsys FS) {
		f, _ := fsys.OpenFile("t", OWrite|OCreate)
		f.Close()
		want := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
		if err := fsys.UTimes("t", want, want); err != nil {
			t.Fatalf("UTimes: %v", err)
		}
		info, _ := fsys.Stat("t")
		if !info.ModTime.Equal(want) {
			t.Errorf("mtime = %v, want %v", info.ModTime, want)
		}
	})
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	fsys := NewMemFS()
	f, _ := fsys.OpenFile("r", OWrite|OCreate)
	f.Close()
	ro, _ := fsys.OpenFile("r", ORead)
	defer ro.Close()
	if _, err := ro.WriteAt([]byte("x"), 0); !errors.Is(err, ErrPermission) {
		t.Errorf("write on read-only handle = %v, want ErrPermission", err)
	}
	if err := ro.Truncate(0); !errors.Is(err, ErrPermission) {
		t.Errorf("truncate on read-only handle = %v, want ErrPermission", err)
	}
}

// TestMemFSMatchesModel is the property test: a random sequence of
// positional writes against MemFS must read back identically to a plain
// byte-slice model.
func TestMemFSMatchesModel(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	check := func(ops []op) bool {
		fsys := NewMemFS()
		f, err := fsys.OpenFile("model", ORead|OWrite|OCreate)
		if err != nil {
			return false
		}
		defer f.Close()
		var model []byte
		for _, o := range ops {
			off := int64(o.Off % 8192)
			if _, err := f.WriteAt(o.Data, off); err != nil {
				return false
			}
			if need := off + int64(len(o.Data)); need > int64(len(model)) {
				grown := make([]byte, need)
				copy(grown, model)
				model = grown
			}
			copy(model[off:], o.Data)
		}
		info, err := f.Stat()
		if err != nil || info.Size != int64(len(model)) {
			return false
		}
		got := make([]byte, len(model))
		if len(model) > 0 {
			if _, err := f.ReadAt(got, 0); err != nil {
				return false
			}
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFaultyFailsAfterN(t *testing.T) {
	inner := NewMemFS()
	bang := errors.New("disk on fire")
	fsys := NewFaulty(inner, 2, bang)
	if err := fsys.Mkdir("a"); err != nil {
		t.Fatalf("op1: %v", err)
	}
	if err := fsys.Mkdir("b"); err != nil {
		t.Fatalf("op2: %v", err)
	}
	if err := fsys.Mkdir("c"); !errors.Is(err, bang) {
		t.Errorf("op3 = %v, want injected error", err)
	}
	if _, err := fsys.Stat("a"); !errors.Is(err, bang) {
		t.Errorf("op4 = %v, want injected error", err)
	}
}

func TestFaultyFileOps(t *testing.T) {
	bang := errors.New("io error")
	fsys := NewFaulty(NewMemFS(), 1000, bang)
	f, err := fsys.OpenFile("f", ORead|OWrite|OCreate)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fsys.FailAfter = fsys.Ops() // everything from now on fails
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, bang) {
		t.Errorf("WriteAt = %v, want injected error", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, bang) {
		t.Errorf("ReadAt = %v, want injected error", err)
	}
	if err := f.Sync(); !errors.Is(err, bang) {
		t.Errorf("Sync = %v, want injected error", err)
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Monotonic()
	b := c.Monotonic()
	if b < a {
		t.Errorf("monotonic went backwards: %d then %d", a, b)
	}
	if c.Resolution() <= 0 {
		t.Error("non-positive resolution")
	}
	if c.Now().IsZero() {
		t.Error("zero Now")
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fsys := NewMemFS()
	f, _ := fsys.OpenFile("a", OWrite|OCreate)
	f.WriteAt(make([]byte, 100), 0)
	f.Close()
	fsys.Mkdir("d")
	g, _ := fsys.OpenFile("d/b", OWrite|OCreate)
	g.WriteAt(make([]byte, 50), 0)
	g.Close()
	if got := fsys.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d, want 150", got)
	}
}
