package hostfs

import (
	"errors"
	"testing"
)

// faultyOps runs n Stat operations against f and returns the 1-based
// ordinals that failed.
func faultyOps(t *testing.T, f *Faulty, n int64) []int64 {
	t.Helper()
	var failed []int64
	for op := int64(1); op <= n; op++ {
		if _, err := f.Stat("/"); err != nil {
			if !errors.Is(err, f.Err) {
				t.Fatalf("op %d failed with %v, want the injected error", op, err)
			}
			failed = append(failed, op)
		}
	}
	return failed
}

// TestFaultyFailAfterUnchanged pins the historical schedule: ops 1..N
// succeed, everything after fails forever.
func TestFaultyFailAfterUnchanged(t *testing.T) {
	boom := errors.New("boom")
	f := NewFaulty(NewMemFS(), 3, boom)
	failed := faultyOps(t, f, 8)
	if want := []int64{4, 5, 6, 7, 8}; len(failed) != len(want) {
		t.Fatalf("failed ops %v, want %v", failed, want)
	}
	if failed[0] != 4 {
		t.Errorf("first failure at op %d, want 4", failed[0])
	}
	if f.Ops() != 8 {
		t.Errorf("Ops = %d, want 8", f.Ops())
	}
}

// TestFaultyWindow: with a window the FS recovers — exactly ops
// (FailAfter, FailAfter+Window] fail, later ones succeed, which is what
// retry/repair paths need to be provable.
func TestFaultyWindow(t *testing.T) {
	boom := errors.New("boom")
	f := &Faulty{FS: NewMemFS(), Err: boom, FailAfter: 2, Window: 3}
	failed := faultyOps(t, f, 10)
	want := []int64{3, 4, 5}
	if len(failed) != len(want) {
		t.Fatalf("failed ops %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed ops %v, want %v", failed, want)
		}
	}
}

// TestFaultyEveryK: the stride schedule fails one op per K at a seeded
// phase; the same seed replays identically and a different seed
// (generally) moves the phase but keeps the rate.
func TestFaultyEveryK(t *testing.T) {
	boom := errors.New("boom")
	const k, n = 5, 40
	record := func(seed int64) []int64 {
		f := &Faulty{FS: NewMemFS(), Err: boom, EveryK: k, Seed: seed}
		return faultyOps(t, f, n)
	}
	a, b := record(1), record(1)
	if len(a) != len(b) || len(a) != n/k {
		t.Fatalf("seed 1 failed %d/%d ops twice (%d), want %d each", len(a), len(b), n, n/k)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] != k {
			t.Errorf("stride %d between failures %d and %d, want %d", a[i]-a[i-1], a[i-1], a[i], k)
		}
	}
}

// TestFaultyWindowRecoveryOnHandles: data-plane ops (ReadAt/WriteAt)
// share the schedule with path ops, and a write that failed inside the
// window succeeds on retry after it closes.
func TestFaultyWindowRecoveryOnHandles(t *testing.T) {
	boom := errors.New("boom")
	f := &Faulty{FS: NewMemFS(), Err: boom, FailAfter: 1, Window: 1}
	h, err := f.OpenFile("/data", OWrite|OCreate) // op 1: ok
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := h.WriteAt([]byte("x"), 0); !errors.Is(err, boom) { // op 2: fails
		t.Fatalf("WriteAt = %v, want injected fault", err)
	}
	if _, err := h.WriteAt([]byte("x"), 0); err != nil { // op 3: recovered
		t.Fatalf("retry WriteAt = %v, want success", err)
	}
}
