package litedb

import (
	"fmt"
	"math/rand"
	"strings"

	"twine/internal/prof"
)

// Options configures an open database.
type Options struct {
	// CachePages is the page cache capacity (default 2,048 pages, the
	// paper's SQLite configuration).
	CachePages int
	// Store supplies cache buffers (native or Wasm-sandboxed).
	Store PageStore
	// Sync is the PRAGMA synchronous default (normal, like the paper).
	Sync SyncMode
	// Journal is the journal mode (delete, like the paper; memory for
	// in-memory databases).
	Journal JournalMode
	// Prof receives pager and execution counters.
	Prof *prof.Registry
	// RandSeed seeds the SQL random()/randomblob() generator (0 = 1).
	RandSeed int64
}

// DB is an open database handle. Not safe for concurrent use (SQLite's
// single-writer model, reduced to a single connection).
type DB struct {
	vfs     VFS
	name    string
	pager   *Pager
	catalog *Tree
	tables  map[string]*TableSchema
	indexes map[string]*IndexSchema

	explicitTxn bool
	lastInsert  int64
	rng         *rand.Rand
	prof        *prof.Registry
}

// MemoryDBName opens a purely in-memory database when used with a MemVFS.
const MemoryDBName = ":memory:"

// Open opens (creating if needed) the named database on vfs.
func Open(vfs VFS, name string, opts Options) (*DB, error) {
	if name == MemoryDBName {
		vfs = NewMemVFS()
		if opts.Journal == JournalDelete {
			opts.Journal = JournalMemory
		}
	}
	seed := opts.RandSeed
	if seed == 0 {
		seed = 1
	}
	pager, err := OpenPager(vfs, name, PagerOptions{
		CachePages: opts.CachePages,
		Store:      opts.Store,
		Sync:       opts.Sync,
		Journal:    opts.Journal,
		Prof:       opts.Prof,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		vfs: vfs, name: name, pager: pager,
		rng:  rand.New(rand.NewSource(seed)),
		prof: opts.Prof,
	}
	root, err := pager.SchemaRoot()
	if err != nil {
		pager.Close()
		return nil, err
	}
	if root == 0 {
		// Fresh database: create the catalog tree.
		if err := pager.Begin(); err != nil {
			pager.Close()
			return nil, err
		}
		tree, err := CreateTree(pager, false)
		if err != nil {
			pager.Close()
			return nil, err
		}
		if err := pager.SetSchemaRoot(tree.Root()); err != nil {
			pager.Close()
			return nil, err
		}
		if err := pager.Commit(); err != nil {
			pager.Close()
			return nil, err
		}
		db.catalog = tree
	} else {
		db.catalog = OpenTree(pager, root, false)
	}
	if err := db.loadCatalog(); err != nil {
		pager.Close()
		return nil, err
	}
	return db, nil
}

// Close releases the database.
func (db *DB) Close() error { return db.pager.Close() }

// Pager exposes the pager for instrumentation (page counts, cache stats).
func (db *DB) Pager() *Pager { return db.pager }

// LastInsertRowid returns the rowid of the most recent insert.
func (db *DB) LastInsertRowid() int64 { return db.lastInsert }

// Exec runs one or more statements, returning the affected-row count of
// the last one. Positional ? parameters bind to args.
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, st := range stmts {
		_, n, err := db.run(st, args)
		if err != nil {
			return affected, err
		}
		affected = n
	}
	return affected, nil
}

// Query runs a single SELECT (or PRAGMA) and returns its rows.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errEval("Query expects exactly one statement")
	}
	rows, _, err := db.run(stmts[0], args)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		rows = &Rows{}
	}
	return rows, nil
}

// QueryRow runs a SELECT expected to yield a single row.
func (db *DB) QueryRow(sql string, args ...Value) ([]Value, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, nil
	}
	return rows.Row(), nil
}

// run dispatches one statement with autocommit handling.
func (db *DB) run(st Stmt, args []Value) (rows *Rows, affected int64, err error) {
	sp := db.prof.Start("litedb.exec")
	defer sp.Stop()

	switch s := st.(type) {
	case *BeginStmt:
		if db.explicitTxn {
			return nil, 0, fmt.Errorf("%w: transaction already open", ErrTxn)
		}
		if err := db.pager.Begin(); err != nil {
			return nil, 0, err
		}
		db.explicitTxn = true
		return nil, 0, nil
	case *CommitStmt:
		if !db.explicitTxn {
			return nil, 0, fmt.Errorf("%w: no transaction open", ErrTxn)
		}
		db.explicitTxn = false
		return nil, 0, db.pager.Commit()
	case *RollbackStmt:
		if !db.explicitTxn {
			return nil, 0, fmt.Errorf("%w: no transaction open", ErrTxn)
		}
		db.explicitTxn = false
		if err := db.pager.Rollback(); err != nil {
			return nil, 0, err
		}
		// Schema changes may have rolled back.
		return nil, 0, db.loadCatalog()
	case *SelectStmt:
		rows, err := db.execSelect(s, args)
		return rows, 0, err
	case *PragmaStmt:
		return db.execPragma(s)
	}

	// Mutating statements run in a transaction (auto-commit when none is
	// open).
	auto := !db.explicitTxn
	if auto {
		if err := db.pager.Begin(); err != nil {
			return nil, 0, err
		}
	}
	defer func() {
		if err != nil && auto && db.pager.InTxn() {
			_ = db.pager.Rollback()
			_ = db.loadCatalog()
		}
	}()

	switch s := st.(type) {
	case *CreateTableStmt:
		err = db.execCreateTable(s)
	case *CreateIndexStmt:
		err = db.execCreateIndex(s)
	case *DropStmt:
		err = db.execDrop(s)
	case *AlterStmt:
		err = db.execAlter(s)
	case *InsertStmt:
		affected, err = db.execInsert(s, args)
	case *UpdateStmt:
		affected, err = db.execUpdate(s, args)
	case *DeleteStmt:
		affected, err = db.execDelete(s, args)
	case *AnalyzeStmt:
		err = db.execAnalyze()
	case *VacuumStmt:
		err = db.execVacuum()
	default:
		err = errEval("unsupported statement %T", st)
	}
	if err != nil {
		return nil, affected, err
	}
	if auto {
		return nil, affected, db.pager.Commit()
	}
	return nil, affected, nil
}

// --- DDL execution ---

func (db *DB) execCreateTable(st *CreateTableStmt) error {
	key := strings.ToLower(st.Name)
	if _, exists := db.tables[key]; exists {
		if st.IfNotExists {
			return nil
		}
		return errEval("table %s already exists", st.Name)
	}
	tree, err := CreateTree(db.pager, false)
	if err != nil {
		return err
	}
	rowid, err := db.catalogInsert("table", st.Name, st.Name, tree.Root(), encodeTableDef(st.Cols))
	if err != nil {
		return err
	}
	ts := &TableSchema{Name: st.Name, Cols: st.Cols, Root: tree.Root(), RowidPK: -1, catRowid: rowid}
	for i, c := range st.Cols {
		if c.PrimaryKey && c.Affinity == Integer {
			ts.RowidPK = i
		}
	}
	db.tables[key] = ts
	// Implicit unique indexes for UNIQUE columns and non-rowid PKs.
	n := 0
	for i, c := range st.Cols {
		needIdx := c.Unique || (c.PrimaryKey && i != ts.RowidPK)
		if !needIdx {
			continue
		}
		n++
		idxName := fmt.Sprintf("_auto_%s_%d", st.Name, n)
		if err := db.createIndexOn(idxName, ts, []string{c.Name}, true); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) createIndexOn(name string, ts *TableSchema, cols []string, unique bool) error {
	tree, err := CreateTree(db.pager, true)
	if err != nil {
		return err
	}
	idx := &IndexSchema{Name: name, Table: ts.Name, Cols: cols, Unique: unique, Root: tree.Root()}
	for _, cn := range cols {
		ci := ts.colIndex(cn)
		if ci < 0 {
			return errEval("no such column: %s", cn)
		}
		idx.ColIdxs = append(idx.ColIdxs, ci)
	}
	// Populate from existing rows.
	tcur, err := db.treeOf(ts).Cursor()
	if err != nil {
		return err
	}
	for tcur.Valid() {
		payload, err := tcur.Payload()
		if err != nil {
			return err
		}
		row, err := ts.decodeRow(tcur.Rowid(), payload)
		if err != nil {
			return err
		}
		if err := tree.InsertKey(idx.indexKey(row, tcur.Rowid())); err != nil {
			return err
		}
		if err := tcur.Next(); err != nil {
			return err
		}
	}
	rowid, err := db.catalogInsert("index", name, ts.Name, tree.Root(), encodeIndexDef(cols, unique))
	if err != nil {
		return err
	}
	idx.catRowid = rowid
	ts.Indexes = append(ts.Indexes, idx)
	db.indexes[strings.ToLower(name)] = idx
	return nil
}

func (db *DB) execCreateIndex(st *CreateIndexStmt) error {
	if _, exists := db.indexes[strings.ToLower(st.Name)]; exists {
		if st.IfNotExists {
			return nil
		}
		return errEval("index %s already exists", st.Name)
	}
	ts, err := db.table(st.Table)
	if err != nil {
		return err
	}
	return db.createIndexOn(st.Name, ts, st.Cols, st.Unique)
}

func (db *DB) execDrop(st *DropStmt) error {
	if st.Index {
		idx, ok := db.indexes[strings.ToLower(st.Name)]
		if !ok {
			if st.IfExists {
				return nil
			}
			return errEval("no such index: %s", st.Name)
		}
		if err := db.idxTreeOf(idx).FreeRoot(); err != nil {
			return err
		}
		if err := db.catalogDelete(idx.catRowid); err != nil {
			return err
		}
		delete(db.indexes, strings.ToLower(st.Name))
		ts := db.tables[strings.ToLower(idx.Table)]
		for i, ix := range ts.Indexes {
			if ix == idx {
				ts.Indexes = append(ts.Indexes[:i], ts.Indexes[i+1:]...)
				break
			}
		}
		return nil
	}
	ts, ok := db.tables[strings.ToLower(st.Name)]
	if !ok {
		if st.IfExists {
			return nil
		}
		return errEval("no such table: %s", st.Name)
	}
	for _, idx := range ts.Indexes {
		if err := db.idxTreeOf(idx).FreeRoot(); err != nil {
			return err
		}
		if err := db.catalogDelete(idx.catRowid); err != nil {
			return err
		}
		delete(db.indexes, strings.ToLower(idx.Name))
	}
	if err := db.treeOf(ts).FreeRoot(); err != nil {
		return err
	}
	if err := db.catalogDelete(ts.catRowid); err != nil {
		return err
	}
	delete(db.tables, strings.ToLower(st.Name))
	return nil
}

func (db *DB) execAlter(st *AlterStmt) error {
	ts, err := db.table(st.Table)
	if err != nil {
		return err
	}
	switch {
	case st.Rename != "":
		if _, exists := db.tables[strings.ToLower(st.Rename)]; exists {
			return errEval("table %s already exists", st.Rename)
		}
		oldKey := strings.ToLower(ts.Name)
		ts.Name = st.Rename
		if err := db.catalogUpdate(ts.catRowid, "table", ts.Name, ts.Name, ts.Root, encodeTableDef(ts.Cols)); err != nil {
			return err
		}
		for _, idx := range ts.Indexes {
			idx.Table = ts.Name
			if err := db.catalogUpdate(idx.catRowid, "index", idx.Name, ts.Name, idx.Root, encodeIndexDef(idx.Cols, idx.Unique)); err != nil {
				return err
			}
		}
		delete(db.tables, oldKey)
		db.tables[strings.ToLower(ts.Name)] = ts
		return nil
	case st.AddCol != nil:
		if ts.colIndex(st.AddCol.Name) >= 0 {
			return errEval("duplicate column name: %s", st.AddCol.Name)
		}
		if st.AddCol.PrimaryKey || st.AddCol.Unique {
			return errEval("cannot add a PRIMARY KEY or UNIQUE column")
		}
		ts.Cols = append(ts.Cols, *st.AddCol)
		return db.catalogUpdate(ts.catRowid, "table", ts.Name, ts.Name, ts.Root, encodeTableDef(ts.Cols))
	default:
		return errEval("unsupported ALTER TABLE")
	}
}

// execAnalyze gathers per-table row counts into _stats, the paper's
// Speedtest1 test 990 workload.
func (db *DB) execAnalyze() error {
	if _, ok := db.tables["_stats"]; !ok {
		if err := db.execCreateTable(&CreateTableStmt{
			Name: "_stats",
			Cols: []ColumnDef{
				{Name: "tbl", Affinity: Text},
				{Name: "n", Affinity: Integer},
			},
		}); err != nil {
			return err
		}
	}
	stats := db.tables["_stats"]
	// Clear previous stats.
	if err := db.treeOf(stats).Drop(); err != nil {
		return err
	}
	stats.lastRowid = 0
	for _, ts := range db.tables {
		if ts == stats {
			continue
		}
		cur, err := db.treeOf(ts).Cursor()
		if err != nil {
			return err
		}
		var n int64
		for cur.Valid() {
			n++
			if err := cur.Next(); err != nil {
				return err
			}
		}
		rowid, err := db.nextRowid(stats)
		if err != nil {
			return err
		}
		if err := db.insertRow(stats, rowid, []Value{TextVal(ts.Name), IntVal(n)}, true); err != nil {
			return err
		}
	}
	return nil
}

// execVacuum sweeps every table and index (full read pass). Storage is not
// compacted — documented deviation from SQLite.
func (db *DB) execVacuum() error {
	for _, ts := range db.tables {
		cur, err := db.treeOf(ts).Cursor()
		if err != nil {
			return err
		}
		for cur.Valid() {
			if _, err := cur.Payload(); err != nil {
				return err
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		for _, idx := range ts.Indexes {
			icur, err := db.idxTreeOf(idx).Cursor()
			if err != nil {
				return err
			}
			for icur.Valid() {
				if _, err := icur.Key(); err != nil {
					return err
				}
				if err := icur.Next(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// execPragma handles the PRAGMAs the paper's experiments rely on.
func (db *DB) execPragma(st *PragmaStmt) (*Rows, int64, error) {
	oneRow := func(name string, v Value) *Rows {
		return &Rows{Cols: []string{name}, rows: [][]Value{{v}}}
	}
	switch st.Name {
	case "cache_size":
		if st.Value != nil {
			n := int(st.Value.Int())
			if n < 0 {
				// SQLite negative cache_size means KiB; convert to pages.
				n = (-n * 1024) / PageSize
			}
			if err := db.pager.SetCacheSize(n); err != nil {
				return nil, 0, err
			}
		}
		return oneRow("cache_size", IntVal(int64(db.pager.CacheSize()))), 0, nil
	case "page_size":
		return oneRow("page_size", IntVal(PageSize)), 0, nil
	case "page_count":
		return oneRow("page_count", IntVal(int64(db.pager.NPages()))), 0, nil
	case "synchronous":
		if st.Value != nil {
			switch strings.ToLower(st.Value.Text()) {
			case "0", "off":
				db.pager.SetSync(SyncOff)
			case "1", "normal":
				db.pager.SetSync(SyncNormal)
			case "2", "full":
				db.pager.SetSync(SyncFull)
			default:
				return nil, 0, errEval("bad synchronous value")
			}
		}
		return oneRow("synchronous", IntVal(int64(db.pager.opt.Sync))), 0, nil
	case "journal_mode":
		if st.Value != nil {
			switch strings.ToLower(st.Value.Text()) {
			case "delete":
				db.pager.opt.Journal = JournalDelete
			case "memory":
				db.pager.opt.Journal = JournalMemory
			default:
				return nil, 0, errEval("unsupported journal_mode")
			}
		}
		mode := "delete"
		if db.pager.opt.Journal == JournalMemory {
			mode = "memory"
		}
		return oneRow("journal_mode", TextVal(mode)), 0, nil
	case "table_count":
		return oneRow("table_count", IntVal(int64(len(db.tables)))), 0, nil
	default:
		// Unknown PRAGMAs are ignored, as SQLite does.
		return &Rows{}, 0, nil
	}
}
