package litedb

import (
	"encoding/binary"
	"fmt"
)

// B+tree pages. Layout within a 4 KiB page:
//
//	byte  0      flags (leaf/interior, table/index)
//	bytes 1-2    cell count (big endian)
//	bytes 3-4    content start (cells grow down from the end; 0 = PageSize)
//	bytes 5-8    rightmost child (interior) or next leaf (leaf, 0 = none)
//	bytes 9-11   reserved
//	bytes 12..   cell pointer array (u16 offsets, sorted by key)
//
// Table trees key on the 64-bit rowid; index trees key on a serialised
// record whose last column is the rowid. Payloads larger than maxLocal
// spill into an overflow page chain, as SQLite's do.
const (
	flagTableLeaf     = 1
	flagTableInterior = 2
	flagIndexLeaf     = 5
	flagIndexInterior = 6

	pgCountOff   = 1
	pgContentOff = 3
	pgRightOff   = 5
	pgHdrSize    = 12

	// maxLocal is the largest inline payload; bigger payloads overflow.
	// Chosen so a page always holds at least two cells.
	maxLocal = 1500

	// maxIndexKey bounds index keys (separator keys stay inline).
	maxIndexKey = 1024

	// Overflow page layout: u32 next, u16 length, data.
	ovfNextOff = 0
	ovfLenOff  = 4
	ovfHdr     = 6
	ovfCap     = PageSize - ovfHdr
)

// ErrKeyTooLarge reports an index key above maxIndexKey.
var ErrKeyTooLarge = fmt.Errorf("litedb: index key exceeds %d bytes", maxIndexKey)

// Tree is a B+tree rooted at a fixed page.
type Tree struct {
	pg      *Pager
	root    uint32
	isIndex bool
}

// CreateTree allocates an empty tree and returns it (transaction must be
// open).
func CreateTree(pg *Pager, isIndex bool) (*Tree, error) {
	root, err := pg.Alloc()
	if err != nil {
		return nil, err
	}
	initLeaf(root.data, isIndex)
	no := root.no
	pg.Unpin(root)
	return &Tree{pg: pg, root: no, isIndex: isIndex}, nil
}

// OpenTree attaches to an existing tree.
func OpenTree(pg *Pager, root uint32, isIndex bool) *Tree {
	return &Tree{pg: pg, root: root, isIndex: isIndex}
}

// Root returns the root page number.
func (t *Tree) Root() uint32 { return t.root }

func initLeaf(data []byte, isIndex bool) {
	clearBytes(data)
	if isIndex {
		data[0] = flagIndexLeaf
	} else {
		data[0] = flagTableLeaf
	}
	binary.BigEndian.PutUint16(data[pgContentOff:], 0) // 0 == PageSize
}

func initInterior(data []byte, isIndex bool) {
	clearBytes(data)
	if isIndex {
		data[0] = flagIndexInterior
	} else {
		data[0] = flagTableInterior
	}
	binary.BigEndian.PutUint16(data[pgContentOff:], 0)
}

// --- page primitives ---

func cellCount(d []byte) int { return int(binary.BigEndian.Uint16(d[pgCountOff:])) }

func setCellCount(d []byte, n int) { binary.BigEndian.PutUint16(d[pgCountOff:], uint16(n)) }

func contentStart(d []byte) int {
	v := int(binary.BigEndian.Uint16(d[pgContentOff:]))
	if v == 0 {
		return PageSize
	}
	return v
}

func setContentStart(d []byte, v int) {
	if v == PageSize {
		v = 0
	}
	binary.BigEndian.PutUint16(d[pgContentOff:], uint16(v))
}

func rightPtr(d []byte) uint32 { return binary.BigEndian.Uint32(d[pgRightOff:]) }

func setRightPtr(d []byte, v uint32) { binary.BigEndian.PutUint32(d[pgRightOff:], v) }

func isLeaf(d []byte) bool { return d[0] == flagTableLeaf || d[0] == flagIndexLeaf }

func cellPtr(d []byte, i int) int {
	return int(binary.BigEndian.Uint16(d[pgHdrSize+2*i:]))
}

func setCellPtr(d []byte, i, off int) {
	binary.BigEndian.PutUint16(d[pgHdrSize+2*i:], uint16(off))
}

func freeSpace(d []byte) int {
	return contentStart(d) - (pgHdrSize + 2*cellCount(d))
}

// addCell inserts raw cell bytes at position idx, assuming space checked.
func addCell(d []byte, idx int, cell []byte) {
	n := cellCount(d)
	top := contentStart(d) - len(cell)
	copy(d[top:], cell)
	copy(d[pgHdrSize+2*(idx+1):pgHdrSize+2*(n+1)], d[pgHdrSize+2*idx:pgHdrSize+2*n])
	setCellPtr(d, idx, top)
	setCellCount(d, n+1)
	setContentStart(d, top)
}

// removeCell drops the pointer at idx (content space is reclaimed only by
// defragmentation).
func removeCell(d []byte, idx int) {
	n := cellCount(d)
	copy(d[pgHdrSize+2*idx:pgHdrSize+2*(n-1)], d[pgHdrSize+2*(idx+1):pgHdrSize+2*n])
	setCellCount(d, n-1)
}

// cellBytes returns the raw cell at idx. The length is recovered by
// parsing, so callers pass a parse function; to keep things simple we
// return the page tail from the cell start — parsers must not over-read.
func cellBytes(d []byte, i int) []byte { return d[cellPtr(d, i):] }

// defragment rewrites all cells tightly packed.
func defragment(d []byte, cellLen func(c []byte) int) {
	n := cellCount(d)
	type cellCopy struct{ b []byte }
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		c := cellBytes(d, i)
		l := cellLen(c)
		cells[i] = append([]byte(nil), c[:l]...)
	}
	top := PageSize
	for i := n - 1; i >= 0; i-- {
		top -= len(cells[i])
		copy(d[top:], cells[i])
		setCellPtr(d, i, top)
	}
	setContentStart(d, top)
}

// --- cell codecs ---

// Table leaf cell: rowid uvarint | total payload len uvarint | inline
// payload | [u32 overflow head].
func encodeTableLeafCell(dst []byte, rowid int64, payload []byte, ovf uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(rowid))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	inline := len(payload)
	if inline > maxLocal {
		inline = maxLocal
	}
	dst = append(dst, payload[:inline]...)
	if len(payload) > maxLocal {
		dst = binary.BigEndian.AppendUint32(dst, ovf)
	}
	return dst
}

func parseTableLeafCell(c []byte) (rowid int64, total int, inline []byte, ovf uint32, size int) {
	r, n1 := binary.Uvarint(c)
	tl, n2 := binary.Uvarint(c[n1:])
	total = int(tl)
	inl := total
	if inl > maxLocal {
		inl = maxLocal
	}
	off := n1 + n2
	inline = c[off : off+inl]
	size = off + inl
	if total > maxLocal {
		ovf = binary.BigEndian.Uint32(c[size:])
		size += 4
	}
	return int64(r), total, inline, ovf, size
}

func tableLeafCellLen(c []byte) int {
	_, _, _, _, n := parseTableLeafCell(c)
	return n
}

// Table interior cell: u32 child | rowid uvarint. Subtree at child holds
// rowids <= separator.
func encodeTableInteriorCell(dst []byte, child uint32, sep int64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, child)
	return binary.AppendUvarint(dst, uint64(sep))
}

func parseTableInteriorCell(c []byte) (child uint32, sep int64, size int) {
	child = binary.BigEndian.Uint32(c)
	s, n := binary.Uvarint(c[4:])
	return child, int64(s), 4 + n
}

func tableInteriorCellLen(c []byte) int {
	_, _, n := parseTableInteriorCell(c)
	return n
}

// Index leaf cell: key len uvarint | key. Index interior: u32 child | key
// len uvarint | key.
func encodeIndexLeafCell(dst []byte, key []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

func parseIndexLeafCell(c []byte) (key []byte, size int) {
	kl, n := binary.Uvarint(c)
	return c[n : n+int(kl)], n + int(kl)
}

func indexLeafCellLen(c []byte) int {
	_, n := parseIndexLeafCell(c)
	return n
}

func encodeIndexInteriorCell(dst []byte, child uint32, key []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, child)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

func parseIndexInteriorCell(c []byte) (child uint32, key []byte, size int) {
	child = binary.BigEndian.Uint32(c)
	kl, n := binary.Uvarint(c[4:])
	return child, c[4+n : 4+n+int(kl)], 4 + n + int(kl)
}

func indexInteriorCellLen(c []byte) int {
	_, _, n := parseIndexInteriorCell(c)
	return n
}

func (t *Tree) leafCellLen() func([]byte) int {
	if t.isIndex {
		return indexLeafCellLen
	}
	return tableLeafCellLen
}

func (t *Tree) interiorCellLen() func([]byte) int {
	if t.isIndex {
		return indexInteriorCellLen
	}
	return tableInteriorCellLen
}

// --- overflow chains ---

// writeOverflow stores payload[maxLocal:] in a page chain, returning its
// head page number.
func (t *Tree) writeOverflow(rest []byte) (uint32, error) {
	var head, prev uint32
	for len(rest) > 0 {
		pg, err := t.pg.Alloc()
		if err != nil {
			return 0, err
		}
		n := len(rest)
		if n > ovfCap {
			n = ovfCap
		}
		binary.BigEndian.PutUint16(pg.data[ovfLenOff:], uint16(n))
		copy(pg.data[ovfHdr:], rest[:n])
		rest = rest[n:]
		if head == 0 {
			head = pg.no
		} else {
			prevPg, err := t.pg.Get(prev)
			if err != nil {
				t.pg.Unpin(pg)
				return 0, err
			}
			if err := t.pg.Write(prevPg); err != nil {
				t.pg.Unpin(prevPg)
				t.pg.Unpin(pg)
				return 0, err
			}
			binary.BigEndian.PutUint32(prevPg.data[ovfNextOff:], pg.no)
			t.pg.Unpin(prevPg)
		}
		prev = pg.no
		t.pg.Unpin(pg)
	}
	return head, nil
}

// readOverflow appends the chain contents to dst.
func (t *Tree) readOverflow(dst []byte, head uint32) ([]byte, error) {
	for head != 0 {
		pg, err := t.pg.Get(head)
		if err != nil {
			return nil, err
		}
		n := int(binary.BigEndian.Uint16(pg.data[ovfLenOff:]))
		dst = append(dst, pg.data[ovfHdr:ovfHdr+n]...)
		head = binary.BigEndian.Uint32(pg.data[ovfNextOff:])
		t.pg.Unpin(pg)
	}
	return dst, nil
}

// freeOverflow releases a chain.
func (t *Tree) freeOverflow(head uint32) error {
	for head != 0 {
		pg, err := t.pg.Get(head)
		if err != nil {
			return err
		}
		next := binary.BigEndian.Uint32(pg.data[ovfNextOff:])
		t.pg.Unpin(pg)
		if err := t.pg.Free(head); err != nil {
			return err
		}
		head = next
	}
	return nil
}

// --- search helpers ---

// leafFind returns the first cell index whose key >= target and whether an
// exact match was found.
func (t *Tree) leafFind(d []byte, rowid int64, key []byte) (int, bool) {
	lo, hi := 0, cellCount(d)
	for lo < hi {
		mid := (lo + hi) / 2
		c := cellBytes(d, mid)
		var cmp int
		if t.isIndex {
			k, _ := parseIndexLeafCell(c)
			cmp = CompareRecords(k, key)
		} else {
			r, _, _, _, _ := parseTableLeafCell(c)
			switch {
			case r < rowid:
				cmp = -1
			case r > rowid:
				cmp = 1
			}
		}
		if cmp < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < cellCount(d) {
		c := cellBytes(d, lo)
		if t.isIndex {
			k, _ := parseIndexLeafCell(c)
			return lo, CompareRecords(k, key) == 0
		}
		r, _, _, _, _ := parseTableLeafCell(c)
		return lo, r == rowid
	}
	return lo, false
}

// interiorFind returns the child page to descend into for the target.
func (t *Tree) interiorFind(d []byte, rowid int64, key []byte) (childIdx int, child uint32) {
	lo, hi := 0, cellCount(d)
	for lo < hi {
		mid := (lo + hi) / 2
		c := cellBytes(d, mid)
		var cmp int
		if t.isIndex {
			_, k, _ := parseIndexInteriorCell(c)
			cmp = CompareRecords(k, key)
		} else {
			_, sep, _ := parseTableInteriorCell(c)
			switch {
			case sep < rowid:
				cmp = -1
			case sep > rowid:
				cmp = 1
			}
		}
		if cmp < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == cellCount(d) {
		return lo, rightPtr(d)
	}
	c := cellBytes(d, lo)
	if t.isIndex {
		ch, _, _ := parseIndexInteriorCell(c)
		return lo, ch
	}
	ch, _, _ := parseTableInteriorCell(c)
	return lo, ch
}

// maxKeyOf returns the separator key for the last cell of a page (leaf or
// interior) — the key promoted to the parent after a split.
func (t *Tree) maxKeyOf(d []byte) (int64, []byte) {
	n := cellCount(d)
	c := cellBytes(d, n-1)
	if isLeaf(d) {
		if t.isIndex {
			k, _ := parseIndexLeafCell(c)
			return 0, append([]byte(nil), k...)
		}
		r, _, _, _, _ := parseTableLeafCell(c)
		return r, nil
	}
	if t.isIndex {
		_, k, _ := parseIndexInteriorCell(c)
		return 0, append([]byte(nil), k...)
	}
	_, sep, _ := parseTableInteriorCell(c)
	return sep, nil
}

// splitResult describes a page split to the parent.
type splitResult struct {
	sepRowid int64
	sepKey   []byte
	right    uint32
}

// --- insert ---

// Insert stores (rowid, payload) in a table tree, replacing any existing
// row with the same rowid.
func (t *Tree) Insert(rowid int64, payload []byte) error {
	if t.isIndex {
		return fmt.Errorf("litedb: Insert on index tree")
	}
	return t.insertTop(rowid, nil, payload)
}

// InsertKey stores key in an index tree (idempotent for duplicate keys).
func (t *Tree) InsertKey(key []byte) error {
	if !t.isIndex {
		return fmt.Errorf("litedb: InsertKey on table tree")
	}
	if len(key) > maxIndexKey {
		return ErrKeyTooLarge
	}
	return t.insertTop(0, key, nil)
}

func (t *Tree) insertTop(rowid int64, key, payload []byte) error {
	sp, err := t.insertRec(t.root, rowid, key, payload)
	if err != nil {
		return err
	}
	if sp == nil {
		return nil
	}
	// Root split: keep the root page number stable by moving its (low)
	// content to a fresh page and re-initialising the root as interior.
	root, err := t.pg.Get(t.root)
	if err != nil {
		return err
	}
	defer t.pg.Unpin(root)
	left, err := t.pg.Alloc()
	if err != nil {
		return err
	}
	defer t.pg.Unpin(left)
	if err := t.pg.Write(left); err != nil {
		return err
	}
	copy(left.data, root.data)
	if err := t.pg.Write(root); err != nil {
		return err
	}
	initInterior(root.data, t.isIndex)
	var cell []byte
	if t.isIndex {
		cell = encodeIndexInteriorCell(nil, left.no, sp.sepKey)
	} else {
		cell = encodeTableInteriorCell(nil, left.no, sp.sepRowid)
	}
	addCell(root.data, 0, cell)
	setRightPtr(root.data, sp.right)
	return nil
}

func (t *Tree) insertRec(pgNo uint32, rowid int64, key, payload []byte) (*splitResult, error) {
	pg, err := t.pg.Get(pgNo)
	if err != nil {
		return nil, err
	}
	defer t.pg.Unpin(pg)

	if isLeaf(pg.data) {
		return t.leafInsert(pg, rowid, key, payload)
	}

	idx, child := t.interiorFind(pg.data, rowid, key)
	sp, err := t.insertRec(child, rowid, key, payload)
	if err != nil {
		return nil, err
	}
	if sp == nil {
		return nil, nil
	}
	// Child split: child kept the low half (keys <= sep), sp.right holds
	// the high half. Insert (child, sep) at idx; the slot that used to
	// point at child now points at sp.right.
	if err := t.pg.Write(pg); err != nil {
		return nil, err
	}
	if idx == cellCount(pg.data) {
		setRightPtr(pg.data, sp.right)
	} else {
		c := cellBytes(pg.data, idx)
		if t.isIndex {
			_, k, _ := parseIndexInteriorCell(c)
			binary.BigEndian.PutUint32(c, sp.right)
			_ = k
		} else {
			binary.BigEndian.PutUint32(c, sp.right)
		}
	}
	var cell []byte
	if t.isIndex {
		cell = encodeIndexInteriorCell(nil, child, sp.sepKey)
	} else {
		cell = encodeTableInteriorCell(nil, child, sp.sepRowid)
	}
	return t.addCellSplitting(pg, idx, cell, false)
}

// leafInsert places the entry into a leaf, handling replace, overflow and
// splits.
func (t *Tree) leafInsert(pg *Page, rowid int64, key, payload []byte) (*splitResult, error) {
	idx, exact := t.leafFind(pg.data, rowid, key)
	if exact {
		if t.isIndex {
			return nil, nil // index keys are unique by construction
		}
		// Replace: remove the old cell (and overflow) first.
		c := cellBytes(pg.data, idx)
		_, total, _, ovf, _ := parseTableLeafCell(c)
		if total > maxLocal {
			if err := t.freeOverflow(ovf); err != nil {
				return nil, err
			}
		}
		if err := t.pg.Write(pg); err != nil {
			return nil, err
		}
		removeCell(pg.data, idx)
	}

	var cell []byte
	if t.isIndex {
		cell = encodeIndexLeafCell(nil, key)
	} else {
		var ovf uint32
		if len(payload) > maxLocal {
			var err error
			ovf, err = t.writeOverflow(payload[maxLocal:])
			if err != nil {
				return nil, err
			}
		}
		cell = encodeTableLeafCell(nil, rowid, payload, ovf)
	}
	return t.addCellSplitting(pg, idx, cell, true)
}

// addCellSplitting inserts a raw cell at idx, defragmenting and splitting
// as needed. It returns split information for the parent when the page
// divides.
func (t *Tree) addCellSplitting(pg *Page, idx int, cell []byte, leaf bool) (*splitResult, error) {
	if err := t.pg.Write(pg); err != nil {
		return nil, err
	}
	if freeSpace(pg.data) >= len(cell)+2 {
		addCell(pg.data, idx, cell)
		return nil, nil
	}
	cellLen := t.interiorCellLen()
	if leaf {
		cellLen = t.leafCellLen()
	}
	// Try reclaiming fragmented space first.
	if t.fragmentedSpace(pg.data, cellLen) >= len(cell)+2 {
		defragment(pg.data, cellLen)
		if freeSpace(pg.data) >= len(cell)+2 {
			addCell(pg.data, idx, cell)
			return nil, nil
		}
	}
	return t.splitAndInsert(pg, idx, cell, leaf, cellLen)
}

// fragmentedSpace estimates total reclaimable space.
func (t *Tree) fragmentedSpace(d []byte, cellLen func([]byte) int) int {
	used := pgHdrSize + 2*cellCount(d)
	for i := 0; i < cellCount(d); i++ {
		used += cellLen(cellBytes(d, i))
	}
	return PageSize - used
}

// splitAndInsert divides pg's cells (plus the pending one) between pg and
// a fresh right sibling.
func (t *Tree) splitAndInsert(pg *Page, idx int, cell []byte, leaf bool, cellLen func([]byte) int) (*splitResult, error) {
	n := cellCount(pg.data)
	cells := make([][]byte, 0, n+1)
	for i := 0; i < n; i++ {
		c := cellBytes(pg.data, i)
		cells = append(cells, append([]byte(nil), c[:cellLen(c)]...))
	}
	cells = append(cells[:idx], append([][]byte{append([]byte(nil), cell...)}, cells[idx:]...)...)

	// Balance by bytes.
	var totalBytes int
	for _, c := range cells {
		totalBytes += len(c) + 2
	}
	var acc, mid int
	for i, c := range cells {
		acc += len(c) + 2
		if acc >= totalBytes/2 {
			mid = i + 1
			break
		}
	}
	if mid == 0 {
		mid = 1
	}
	if mid >= len(cells) {
		mid = len(cells) - 1
	}

	right, err := t.pg.Alloc()
	if err != nil {
		return nil, err
	}
	defer t.pg.Unpin(right)
	if err := t.pg.Write(right); err != nil {
		return nil, err
	}

	sp := &splitResult{right: right.no}
	if leaf {
		initLeaf(right.data, t.isIndex)
		setRightPtr(right.data, rightPtr(pg.data)) // next-leaf chain
		oldFlag := pg.data[0]
		next := right.no
		// Rebuild left.
		if t.isIndex {
			initLeaf(pg.data, true)
		} else {
			initLeaf(pg.data, false)
		}
		pg.data[0] = oldFlag
		setRightPtr(pg.data, next)
		for i, c := range cells {
			if i < mid {
				addCell(pg.data, cellCount(pg.data), c)
			} else {
				addCell(right.data, cellCount(right.data), c)
			}
		}
		sp.sepRowid, sp.sepKey = t.maxKeyOf(pg.data)
		return sp, nil
	}

	// Interior split: the cell at mid-1 is promoted; its child becomes
	// the left page's rightmost pointer.
	initInterior(right.data, t.isIndex)
	setRightPtr(right.data, rightPtr(pg.data))
	promoted := cells[mid-1]
	var promotedChild uint32
	if t.isIndex {
		ch, k, _ := parseIndexInteriorCell(promoted)
		promotedChild = ch
		sp.sepKey = append([]byte(nil), k...)
	} else {
		ch, sep, _ := parseTableInteriorCell(promoted)
		promotedChild = ch
		sp.sepRowid = sep
	}
	initInterior(pg.data, t.isIndex)
	setRightPtr(pg.data, promotedChild)
	for i, c := range cells {
		switch {
		case i < mid-1:
			addCell(pg.data, cellCount(pg.data), c)
		case i == mid-1:
			// promoted
		default:
			addCell(right.data, cellCount(right.data), c)
		}
	}
	return sp, nil
}

// --- point lookups ---

// Get fetches the payload for rowid from a table tree.
func (t *Tree) Get(rowid int64) ([]byte, bool, error) {
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return nil, false, err
		}
		if isLeaf(pg.data) {
			idx, exact := t.leafFind(pg.data, rowid, nil)
			if !exact {
				t.pg.Unpin(pg)
				return nil, false, nil
			}
			c := cellBytes(pg.data, idx)
			_, total, inline, ovf, _ := parseTableLeafCell(c)
			out := append([]byte(nil), inline...)
			t.pg.Unpin(pg)
			if total > maxLocal {
				out, err = t.readOverflow(out, ovf)
				if err != nil {
					return nil, false, err
				}
			}
			return out, true, nil
		}
		_, child := t.interiorFind(pg.data, rowid, nil)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// HasKey reports whether an index tree contains key.
func (t *Tree) HasKey(key []byte) (bool, error) {
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return false, err
		}
		if isLeaf(pg.data) {
			_, exact := t.leafFind(pg.data, 0, key)
			t.pg.Unpin(pg)
			return exact, nil
		}
		_, child := t.interiorFind(pg.data, 0, key)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// MaxRowid returns the largest rowid in a table tree (0 when empty).
func (t *Tree) MaxRowid() (int64, error) {
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return 0, err
		}
		if isLeaf(pg.data) {
			n := cellCount(pg.data)
			if n == 0 {
				// Rightmost leaf can be empty after deletes; walk is
				// bounded because empty non-rightmost leaves keep their
				// next pointers.
				t.pg.Unpin(pg)
				return t.maxRowidScan()
			}
			r, _, _, _, _ := parseTableLeafCell(cellBytes(pg.data, n-1))
			t.pg.Unpin(pg)
			return r, nil
		}
		child := rightPtr(pg.data)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// maxRowidScan is the slow path when the rightmost leaf is empty.
func (t *Tree) maxRowidScan() (int64, error) {
	cur, err := t.Cursor()
	if err != nil {
		return 0, err
	}
	var max int64
	for cur.Valid() {
		if r := cur.Rowid(); r > max {
			max = r
		}
		if err := cur.Next(); err != nil {
			return 0, err
		}
	}
	return max, nil
}

// --- delete ---

// Delete removes rowid from a table tree. Pages are not rebalanced (lazy
// deletion); empty leaves remain linked until the table is dropped.
func (t *Tree) Delete(rowid int64) (bool, error) {
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return false, err
		}
		if isLeaf(pg.data) {
			idx, exact := t.leafFind(pg.data, rowid, nil)
			if !exact {
				t.pg.Unpin(pg)
				return false, nil
			}
			c := cellBytes(pg.data, idx)
			_, total, _, ovf, _ := parseTableLeafCell(c)
			if err := t.pg.Write(pg); err != nil {
				t.pg.Unpin(pg)
				return false, err
			}
			removeCell(pg.data, idx)
			t.pg.Unpin(pg)
			if total > maxLocal {
				if err := t.freeOverflow(ovf); err != nil {
					return false, err
				}
			}
			return true, nil
		}
		_, child := t.interiorFind(pg.data, rowid, nil)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// DeleteKey removes a key from an index tree.
func (t *Tree) DeleteKey(key []byte) (bool, error) {
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return false, err
		}
		if isLeaf(pg.data) {
			idx, exact := t.leafFind(pg.data, 0, key)
			if !exact {
				t.pg.Unpin(pg)
				return false, nil
			}
			if err := t.pg.Write(pg); err != nil {
				t.pg.Unpin(pg)
				return false, err
			}
			removeCell(pg.data, idx)
			t.pg.Unpin(pg)
			return true, nil
		}
		_, child := t.interiorFind(pg.data, 0, key)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// Drop frees every page of the tree except the root, which is reset to an
// empty leaf (DROP TABLE reuses it via the freelist path in the catalog).
func (t *Tree) Drop() error {
	if err := t.dropRec(t.root); err != nil {
		return err
	}
	root, err := t.pg.Get(t.root)
	if err != nil {
		return err
	}
	defer t.pg.Unpin(root)
	if err := t.pg.Write(root); err != nil {
		return err
	}
	initLeaf(root.data, t.isIndex)
	return nil
}

func (t *Tree) dropRec(pgNo uint32) error {
	pg, err := t.pg.Get(pgNo)
	if err != nil {
		return err
	}
	leaf := isLeaf(pg.data)
	n := cellCount(pg.data)
	var children []uint32
	var overflows []uint32
	if leaf {
		if !t.isIndex {
			for i := 0; i < n; i++ {
				_, total, _, ovf, _ := parseTableLeafCell(cellBytes(pg.data, i))
				if total > maxLocal {
					overflows = append(overflows, ovf)
				}
			}
		}
	} else {
		for i := 0; i < n; i++ {
			c := cellBytes(pg.data, i)
			if t.isIndex {
				ch, _, _ := parseIndexInteriorCell(c)
				children = append(children, ch)
			} else {
				ch, _, _ := parseTableInteriorCell(c)
				children = append(children, ch)
			}
		}
		children = append(children, rightPtr(pg.data))
	}
	t.pg.Unpin(pg)
	for _, ovf := range overflows {
		if err := t.freeOverflow(ovf); err != nil {
			return err
		}
	}
	for _, ch := range children {
		if err := t.dropRec(ch); err != nil {
			return err
		}
	}
	if pgNo != t.root {
		return t.pg.Free(pgNo)
	}
	return nil
}

// FreeRoot releases the root page itself (used when dropping a table or
// index entirely).
func (t *Tree) FreeRoot() error {
	if err := t.Drop(); err != nil {
		return err
	}
	return t.pg.Free(t.root)
}
