// Package litedb is an embeddable SQL database engine written for the
// TWINE reproduction as the stand-in for SQLite v3.32.3 (DESIGN.md §1).
// It mirrors SQLite's architecture — a VFS abstraction at the bottom, a
// 4 KiB pager with a 2,048-page cache and a delete-mode rollback journal,
// B+trees for tables and indexes, SQLite's serial-type record format, and
// a SQL front end (tokenizer, parser, planner, tree-walking executor).
//
// Differences from SQLite that matter for interpreting benchmark results
// are documented in DESIGN.md: execution is a cursor tree walk rather than
// a VDBE, and B-tree deletion is lazy (pages are freed when empty rather
// than rebalanced).
package litedb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates SQL storage classes (SQLite's affinity model reduced to
// storage classes).
type Type int

// Storage classes, in SQLite's cross-type comparison order.
const (
	Null Type = iota
	Integer
	Real
	Text
	Blob
)

func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Integer:
		return "INTEGER"
	case Real:
		return "REAL"
	case Text:
		return "TEXT"
	case Blob:
		return "BLOB"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Value is one SQL value.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   []byte
}

// Constructors.

// NullVal returns the SQL NULL.
func NullVal() Value { return Value{typ: Null} }

// IntVal wraps an INTEGER.
func IntVal(v int64) Value { return Value{typ: Integer, i: v} }

// RealVal wraps a REAL.
func RealVal(v float64) Value { return Value{typ: Real, f: v} }

// TextVal wraps a TEXT.
func TextVal(v string) Value { return Value{typ: Text, s: v} }

// BlobVal wraps a BLOB (the slice is not copied).
func BlobVal(v []byte) Value { return Value{typ: Blob, b: v} }

// Type returns the storage class.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == Null }

// Int returns the value coerced to INTEGER (SQLite CAST semantics for the
// classes we store).
func (v Value) Int() int64 {
	switch v.typ {
	case Integer:
		return v.i
	case Real:
		return int64(v.f)
	case Text:
		n, _ := strconv.ParseInt(strings.TrimSpace(prefixNumber(v.s)), 10, 64)
		return n
	default:
		return 0
	}
}

// Real returns the value coerced to REAL.
func (v Value) Real() float64 {
	switch v.typ {
	case Integer:
		return float64(v.i)
	case Real:
		return v.f
	case Text:
		f, _ := strconv.ParseFloat(strings.TrimSpace(prefixNumber(v.s)), 64)
		return f
	default:
		return 0
	}
}

// prefixNumber trims a string to its leading numeric prefix, as SQLite's
// text-to-number coercion does.
func prefixNumber(s string) string {
	s = strings.TrimSpace(s)
	end := 0
	seenDigit := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			seenDigit = true
			end = i + 1
			continue
		}
		if (c == '+' || c == '-') && i == 0 {
			end = i + 1
			continue
		}
		if c == '.' || c == 'e' || c == 'E' {
			end = i + 1
			continue
		}
		break
	}
	if !seenDigit {
		return "0"
	}
	return s[:end]
}

// Text returns the value coerced to TEXT.
func (v Value) Text() string {
	switch v.typ {
	case Text:
		return v.s
	case Integer:
		return strconv.FormatInt(v.i, 10)
	case Real:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Blob:
		return string(v.b)
	default:
		return ""
	}
}

// Blob returns the raw bytes for BLOBs (nil otherwise).
func (v Value) Blob() []byte {
	if v.typ == Blob {
		return v.b
	}
	return nil
}

// Bool applies SQLite truthiness: NULL is false, numbers by non-zero.
func (v Value) Bool() bool {
	switch v.typ {
	case Null:
		return false
	case Integer:
		return v.i != 0
	case Real:
		return v.f != 0
	default:
		return v.Real() != 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.typ {
	case Null:
		return "NULL"
	case Blob:
		return fmt.Sprintf("x'%x'", v.b)
	case Text:
		return v.s
	default:
		return v.Text()
	}
}

// Compare orders two values with SQLite semantics: NULL < numbers < TEXT
// < BLOB; INTEGER and REAL compare numerically across classes.
func Compare(a, b Value) int {
	ra, rb := rankOf(a.typ), rankOf(b.typ)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // numeric
		if a.typ == Integer && b.typ == Integer {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Real(), b.Real()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		case math.IsNaN(af) && !math.IsNaN(bf):
			return -1
		case !math.IsNaN(af) && math.IsNaN(bf):
			return 1
		default:
			return 0
		}
	case 2: // text
		return strings.Compare(a.s, b.s)
	default: // blob
		return compareBytes(a.b, b.b)
	}
}

func rankOf(t Type) int {
	switch t {
	case Null:
		return 0
	case Integer, Real:
		return 1
	case Text:
		return 2
	default:
		return 3
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// CompareRows orders two rows column-wise with per-column descending
// flags (nil desc means all ascending).
func CompareRows(a, b []Value, desc []bool) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		c := Compare(a[i], b[i])
		if c != 0 {
			if desc != nil && i < len(desc) && desc[i] {
				return -c
			}
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
