package litedb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestSQLMatchesModel drives the full SQL stack with a random workload and
// cross-checks every intermediate state against an in-memory model.
func TestSQLMatchesModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			db := openTestDB(t)
			mustExec(t, db, `CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER)`)
			mustExec(t, db, `CREATE INDEX mv ON m(v)`)
			rng := rand.New(rand.NewSource(seed))
			model := map[int64]int64{}
			nextID := int64(1)

			verify := func() {
				// Count.
				row, err := db.QueryRow(`SELECT COUNT(*) FROM m`)
				if err != nil {
					t.Fatalf("count: %v", err)
				}
				if int(row[0].Int()) != len(model) {
					t.Fatalf("count = %d, model has %d", row[0].Int(), len(model))
				}
				// Full ordered scan.
				rows, err := db.Query(`SELECT id, v FROM m ORDER BY id`)
				if err != nil {
					t.Fatalf("scan: %v", err)
				}
				var ids []int64
				for k := range model {
					ids = append(ids, k)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				if rows.Len() != len(ids) {
					t.Fatalf("scan %d rows, want %d", rows.Len(), len(ids))
				}
				for i, r := range rows.All() {
					if r[0].Int() != ids[i] || r[1].Int() != model[ids[i]] {
						t.Fatalf("row %d = (%v,%v), want (%d,%d)",
							i, r[0], r[1], ids[i], model[ids[i]])
					}
				}
			}

			for op := 0; op < 300; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert
					v := rng.Int63n(50)
					mustExec(t, db, `INSERT INTO m (v) VALUES (?)`, IntVal(v))
					model[nextID] = v
					nextID++
				case 4, 5: // update by indexed value
					oldV := rng.Int63n(50)
					newV := rng.Int63n(50)
					mustExec(t, db, `UPDATE m SET v = ? WHERE v = ?`, IntVal(newV), IntVal(oldV))
					for k, mv := range model {
						if mv == oldV {
							model[k] = newV
						}
					}
				case 6, 7: // delete by id range
					if nextID > 1 {
						lo := rng.Int63n(nextID)
						mustExec(t, db, `DELETE FROM m WHERE id BETWEEN ? AND ?`,
							IntVal(lo), IntVal(lo+3))
						for k := range model {
							if k >= lo && k <= lo+3 {
								delete(model, k)
							}
						}
					}
				case 8: // indexed point query agreement
					v := rng.Int63n(50)
					row, err := db.QueryRow(`SELECT COUNT(*) FROM m WHERE v = ?`, IntVal(v))
					if err != nil {
						t.Fatalf("point: %v", err)
					}
					want := 0
					for _, mv := range model {
						if mv == v {
							want++
						}
					}
					if int(row[0].Int()) != want {
						t.Fatalf("indexed count(v=%d) = %d, want %d", v, row[0].Int(), want)
					}
				case 9: // aggregate agreement
					row, err := db.QueryRow(`SELECT SUM(v) FROM m`)
					if err != nil {
						t.Fatalf("sum: %v", err)
					}
					var want int64
					for _, mv := range model {
						want += mv
					}
					if len(model) == 0 {
						if !row[0].IsNull() {
							t.Fatalf("sum of empty = %v", row[0])
						}
					} else if row[0].Int() != want {
						t.Fatalf("sum = %d, want %d", row[0].Int(), want)
					}
				}
				if op%60 == 0 {
					verify()
				}
			}
			verify()
		})
	}
}

// TestCrashRecoveryAtSQLLevel simulates a crash between journal write and
// commit, then verifies the reopened database sees the pre-transaction
// state with intact indexes.
func TestCrashRecoveryAtSQLLevel(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "crash.db", Options{CachePages: 32})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	mustExec(t, db, `CREATE INDEX iv ON t(v)`)
	for i := 0; i < 50; i++ {
		mustExec(t, db, `INSERT INTO t (v) VALUES (?)`, TextVal(fmt.Sprintf("v%d", i%5)))
	}

	// Open a transaction, mutate heavily, flush dirty pages to the DB
	// file (simulating cache pressure), then "crash".
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `UPDATE t SET v = 'clobbered'`)
	mustExec(t, db, `DELETE FROM t WHERE id <= 25`)
	if err := db.pager.flushAll(); err != nil {
		t.Fatalf("flushAll: %v", err)
	}
	// Crash: abandon the handle without commit/rollback.

	db2, err := Open(vfs, "crash.db", Options{CachePages: 32})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db2.Close()
	row, err := db2.QueryRow(`SELECT COUNT(*) FROM t`)
	if err != nil || row[0].Int() != 50 {
		t.Fatalf("count after recovery = %v, %v", row, err)
	}
	row, _ = db2.QueryRow(`SELECT COUNT(*) FROM t WHERE v = 'clobbered'`)
	if row[0].Int() != 0 {
		t.Errorf("clobbered rows visible after recovery: %v", row[0])
	}
	// The index answers consistently with a full scan.
	idx, _ := db2.QueryRow(`SELECT COUNT(*) FROM t WHERE v = 'v1'`)
	var scanCount int64
	rows, _ := db2.Query(`SELECT v FROM t`)
	for _, r := range rows.All() {
		if r[0].Text() == "v1" {
			scanCount++
		}
	}
	if idx[0].Int() != scanCount {
		t.Errorf("index count %d != scan count %d after recovery", idx[0].Int(), scanCount)
	}
}

// TestLargeTransactionSpillsCleanly exceeds the page cache inside one
// transaction, forcing dirty-page spills, and checks full integrity.
func TestLargeTransactionSpillsCleanly(t *testing.T) {
	db, err := Open(NewMemVFS(), "spill.db", Options{CachePages: 16})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE big (id INTEGER PRIMARY KEY, d BLOB)`)
	mustExec(t, db, `BEGIN`)
	for i := 0; i < 300; i++ { // ~300 KiB of payload through a 64 KiB cache
		mustExec(t, db, `INSERT INTO big (d) VALUES (zeroblob(1024))`)
	}
	mustExec(t, db, `COMMIT`)
	row, err := db.QueryRow(`SELECT COUNT(*), SUM(length(d)) FROM big`)
	if err != nil || row[0].Int() != 300 || row[1].Int() != 300*1024 {
		t.Fatalf("after spill: %v, %v", row, err)
	}
}

// TestRollbackAcrossSpill makes sure pages spilled mid-transaction are
// restored by rollback.
func TestRollbackAcrossSpill(t *testing.T) {
	db, err := Open(NewMemVFS(), "rb.db", Options{CachePages: 16})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, d BLOB)`)
	mustExec(t, db, `INSERT INTO t (d) VALUES (zeroblob(100))`)
	mustExec(t, db, `BEGIN`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, `INSERT INTO t (d) VALUES (zeroblob(1024))`)
	}
	mustExec(t, db, `ROLLBACK`)
	row, err := db.QueryRow(`SELECT COUNT(*) FROM t`)
	if err != nil || row[0].Int() != 1 {
		t.Fatalf("count after rollback = %v, %v", row, err)
	}
	// Database still fully usable.
	mustExec(t, db, `INSERT INTO t (d) VALUES (zeroblob(10))`)
	row, _ = db.QueryRow(`SELECT COUNT(*) FROM t`)
	if row[0].Int() != 2 {
		t.Errorf("count = %v", row[0])
	}
}
