package litedb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record format, following SQLite's design: a header of varints (header
// length, then one serial type per column) followed by the column bodies.
//
// Serial types:
//
//	0        NULL
//	1..6     big-endian signed integers of 1,2,3,4,6,8 bytes
//	7        IEEE-754 float64
//	8, 9     literal integers 0 and 1
//	N>=12 even  BLOB of (N-12)/2 bytes
//	N>=13 odd   TEXT of (N-13)/2 bytes

// putUvarint appends SQLite-style varints (we use the Go uvarint encoding,
// which serves the same purpose with the same asymptotics).
func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func serialTypeOf(v Value) (typ uint64, size int) {
	switch v.typ {
	case Null:
		return 0, 0
	case Integer:
		switch i := v.i; {
		case i == 0:
			return 8, 0
		case i == 1:
			return 9, 0
		case i >= math.MinInt8 && i <= math.MaxInt8:
			return 1, 1
		case i >= math.MinInt16 && i <= math.MaxInt16:
			return 2, 2
		case i >= -(1<<23) && i < 1<<23:
			return 3, 3
		case i >= math.MinInt32 && i <= math.MaxInt32:
			return 4, 4
		case i >= -(1<<47) && i < 1<<47:
			return 5, 6
		default:
			return 6, 8
		}
	case Real:
		return 7, 8
	case Blob:
		return uint64(12 + 2*len(v.b)), len(v.b)
	default: // Text
		return uint64(13 + 2*len(v.s)), len(v.s)
	}
}

// EncodeRecord serialises a row into dst (appended) and returns it.
func EncodeRecord(dst []byte, row []Value) []byte {
	var hdr [10 * 12]byte
	hdrBuf := hdr[:0]
	for _, v := range row {
		st, _ := serialTypeOf(v)
		hdrBuf = putUvarint(hdrBuf, st)
	}
	// Header length includes its own varint; iterate to fixpoint (the
	// length varint rarely changes size).
	hl := len(hdrBuf) + 1
	for {
		if n := uvarintLen(uint64(hl)); n+len(hdrBuf) == hl {
			break
		} else {
			hl = n + len(hdrBuf)
		}
	}
	dst = putUvarint(dst, uint64(hl))
	dst = append(dst, hdrBuf...)
	for _, v := range row {
		st, size := serialTypeOf(v)
		switch {
		case st == 0 || st == 8 || st == 9:
		case st >= 1 && st <= 6:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], uint64(v.i))
			dst = append(dst, tmp[8-size:]...)
		case st == 7:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v.f))
			dst = append(dst, tmp[:]...)
		case st >= 13 && st%2 == 1:
			dst = append(dst, v.s...)
		default:
			dst = append(dst, v.b...)
		}
	}
	return dst
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeRecord parses a serialised row. Text and blob values alias buf.
func DecodeRecord(buf []byte) ([]Value, error) {
	hl, n := binary.Uvarint(buf)
	if n <= 0 || hl > uint64(len(buf)) {
		return nil, fmt.Errorf("litedb: corrupt record header")
	}
	hdr := buf[n:hl]
	body := buf[hl:]
	var row []Value
	for len(hdr) > 0 {
		st, sn := binary.Uvarint(hdr)
		if sn <= 0 {
			return nil, fmt.Errorf("litedb: corrupt serial type")
		}
		hdr = hdr[sn:]
		v, size, err := decodeSerial(st, body)
		if err != nil {
			return nil, err
		}
		body = body[size:]
		row = append(row, v)
	}
	return row, nil
}

func decodeSerial(st uint64, body []byte) (Value, int, error) {
	switch {
	case st == 0:
		return NullVal(), 0, nil
	case st == 8:
		return IntVal(0), 0, nil
	case st == 9:
		return IntVal(1), 0, nil
	case st >= 1 && st <= 6:
		size := []int{0, 1, 2, 3, 4, 6, 8}[st]
		if len(body) < size {
			return Value{}, 0, fmt.Errorf("litedb: truncated integer body")
		}
		var v int64
		for i := 0; i < size; i++ {
			v = v<<8 | int64(body[i])
		}
		// Sign-extend.
		shift := uint(64 - 8*size)
		v = v << shift >> shift
		return IntVal(v), size, nil
	case st == 7:
		if len(body) < 8 {
			return Value{}, 0, fmt.Errorf("litedb: truncated real body")
		}
		return RealVal(math.Float64frombits(binary.BigEndian.Uint64(body))), 8, nil
	case st >= 12 && st%2 == 0:
		size := int(st-12) / 2
		if len(body) < size {
			return Value{}, 0, fmt.Errorf("litedb: truncated blob body")
		}
		return BlobVal(body[:size:size]), size, nil
	case st >= 13:
		size := int(st-13) / 2
		if len(body) < size {
			return Value{}, 0, fmt.Errorf("litedb: truncated text body")
		}
		return TextVal(string(body[:size])), size, nil
	default:
		return Value{}, 0, fmt.Errorf("litedb: unknown serial type %d", st)
	}
}

// CompareRecords orders two serialised rows without fully materialising
// them (used for index keys, where the last column is the rowid
// tiebreaker).
func CompareRecords(a, b []byte) int {
	ra, errA := DecodeRecord(a)
	rb, errB := DecodeRecord(b)
	if errA != nil || errB != nil {
		return compareBytes(a, b)
	}
	return CompareRows(ra, rb, nil)
}
