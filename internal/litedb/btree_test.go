package litedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newTestPager(t *testing.T) *Pager {
	t.Helper()
	p, err := OpenPager(NewMemVFS(), "test.db", PagerOptions{CachePages: 64})
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func mustBegin(t *testing.T, p *Pager) {
	t.Helper()
	if err := p.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
}

func mustCommit(t *testing.T, p *Pager) {
	t.Helper()
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestPagerInitAndReopen(t *testing.T) {
	vfs := NewMemVFS()
	p, err := OpenPager(vfs, "db", PagerOptions{CachePages: 32})
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	if p.NPages() != 1 {
		t.Errorf("fresh db has %d pages", p.NPages())
	}
	mustBegin(t, p)
	pg, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	pg.data[100] = 0xAB
	pg.dirty = true
	no := pg.no
	p.Unpin(pg)
	mustCommit(t, p)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2, err := OpenPager(vfs, "db", PagerOptions{CachePages: 32})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	pg2, err := p2.Get(no)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if pg2.data[100] != 0xAB {
		t.Errorf("persisted byte = %#x", pg2.data[100])
	}
	p2.Unpin(pg2)
}

func TestPagerRollback(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	pg, _ := p.Alloc()
	no := pg.no
	pg.data[0] = 1
	p.Unpin(pg)
	mustCommit(t, p)

	mustBegin(t, p)
	pg, err := p.Get(no)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := p.Write(pg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	pg.data[0] = 99
	p.Unpin(pg)
	if err := p.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}

	pg, _ = p.Get(no)
	if pg.data[0] != 1 {
		t.Errorf("byte after rollback = %d, want 1", pg.data[0])
	}
	p.Unpin(pg)
}

func TestPagerCrashRecovery(t *testing.T) {
	// Simulate a crash: journal written, DB pages partially updated,
	// process dies (we just abandon the pager), then reopen.
	vfs := NewMemVFS()
	p, _ := OpenPager(vfs, "db", PagerOptions{CachePages: 32})
	mustBegin(t, p)
	pg, _ := p.Alloc()
	no := pg.no
	pg.data[7] = 42
	p.Unpin(pg)
	mustCommit(t, p)

	// New transaction modifies the page, journals it, flushes the dirty
	// page to the DB file, but never commits.
	mustBegin(t, p)
	pg, _ = p.Get(no)
	p.Write(pg)
	pg.data[7] = 250
	p.Unpin(pg)
	if err := p.flushAll(); err != nil {
		t.Fatalf("flushAll: %v", err)
	}
	// Crash: do NOT commit, do NOT rollback, just drop the pager.

	p2, err := OpenPager(vfs, "db", PagerOptions{CachePages: 32})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer p2.Close()
	pg2, _ := p2.Get(no)
	if pg2.data[7] != 42 {
		t.Errorf("byte after crash recovery = %d, want 42 (original)", pg2.data[7])
	}
	p2.Unpin(pg2)
	if ok, _ := vfs.Exists("db-journal"); ok {
		t.Error("hot journal not removed after recovery")
	}
}

func TestPagerFreelistReuse(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	pg, _ := p.Alloc()
	no := pg.no
	p.Unpin(pg)
	if err := p.Free(no); err != nil {
		t.Fatalf("Free: %v", err)
	}
	pg2, _ := p.Alloc()
	if pg2.no != no {
		t.Errorf("freed page not reused: got %d, want %d", pg2.no, no)
	}
	p.Unpin(pg2)
	mustCommit(t, p)
}

func TestBtreeInsertGet(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, err := CreateTree(p, false)
	if err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	for i := int64(1); i <= 100; i++ {
		payload := []byte(fmt.Sprintf("row-%d", i))
		if err := tree.Insert(i, payload); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	mustCommit(t, p)
	for i := int64(1); i <= 100; i++ {
		got, ok, err := tree.Get(i)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v", i, ok, err)
		}
		if string(got) != fmt.Sprintf("row-%d", i) {
			t.Errorf("Get(%d) = %q", i, got)
		}
	}
	if _, ok, _ := tree.Get(999); ok {
		t.Error("Get(999) found a ghost row")
	}
}

func TestBtreeSplitsManyRows(t *testing.T) {
	p, err := OpenPager(NewMemVFS(), "big.db", PagerOptions{CachePages: 256})
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	defer p.Close()
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	payload := bytes.Repeat([]byte{0xCD}, 200)
	const n = 5000
	for i := int64(1); i <= n; i++ {
		payload[0] = byte(i)
		if err := tree.Insert(i, payload); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	mustCommit(t, p)

	// Full scan sees everything in order.
	cur, err := tree.Cursor()
	if err != nil {
		t.Fatalf("Cursor: %v", err)
	}
	var count int64
	last := int64(0)
	for cur.Valid() {
		r := cur.Rowid()
		if r <= last {
			t.Fatalf("out of order: %d after %d", r, last)
		}
		pl, err := cur.Payload()
		if err != nil {
			t.Fatalf("Payload: %v", err)
		}
		if pl[0] != byte(r) || len(pl) != 200 {
			t.Fatalf("row %d payload corrupt", r)
		}
		last = r
		count++
		cur.Next()
	}
	if count != n {
		t.Errorf("scanned %d rows, want %d", count, n)
	}
	if max, _ := tree.MaxRowid(); max != n {
		t.Errorf("MaxRowid = %d", max)
	}
}

func TestBtreeRandomOrderInsert(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	for _, i := range perm {
		if err := tree.Insert(int64(i+1), []byte(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	mustCommit(t, p)
	for i := 1; i <= 2000; i++ {
		got, ok, err := tree.Get(int64(i))
		if err != nil || !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, got, ok, err)
		}
	}
}

func TestBtreeReplace(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	tree.Insert(5, []byte("old"))
	tree.Insert(5, []byte("new-value"))
	mustCommit(t, p)
	got, ok, _ := tree.Get(5)
	if !ok || string(got) != "new-value" {
		t.Errorf("replaced value = %q, %v", got, ok)
	}
	// Still exactly one row.
	cur, _ := tree.Cursor()
	n := 0
	for cur.Valid() {
		n++
		cur.Next()
	}
	if n != 1 {
		t.Errorf("row count after replace = %d", n)
	}
}

func TestBtreeDelete(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	for i := int64(1); i <= 500; i++ {
		tree.Insert(i, []byte{byte(i)})
	}
	// Delete evens.
	for i := int64(2); i <= 500; i += 2 {
		ok, err := tree.Delete(i)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if ok, _ := tree.Delete(1000); ok {
		t.Error("deleted a ghost row")
	}
	mustCommit(t, p)
	cur, _ := tree.Cursor()
	for cur.Valid() {
		if cur.Rowid()%2 == 0 {
			t.Fatalf("even rowid %d survived delete", cur.Rowid())
		}
		cur.Next()
	}
	for i := int64(1); i <= 500; i += 2 {
		if _, ok, _ := tree.Get(i); !ok {
			t.Fatalf("odd rowid %d lost", i)
		}
	}
}

func TestBtreeOverflowPayload(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	big := make([]byte, 20000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := tree.Insert(1, big); err != nil {
		t.Fatalf("Insert big: %v", err)
	}
	small := []byte("small")
	tree.Insert(2, small)
	mustCommit(t, p)

	got, ok, err := tree.Get(1)
	if err != nil || !ok {
		t.Fatalf("Get big: %v %v", ok, err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow payload corrupted")
	}
	// Replacing the big row frees its overflow chain.
	mustBegin(t, p)
	free0 := freeCount(t, p)
	tree.Insert(1, []byte("tiny"))
	mustCommit(t, p)
	if freeCount(t, p) <= free0 {
		t.Error("overflow pages not freed on replace")
	}
}

func freeCount(t *testing.T, p *Pager) uint32 {
	t.Helper()
	hdr, err := p.Get(1)
	if err != nil {
		t.Fatalf("Get header: %v", err)
	}
	defer p.Unpin(hdr)
	return uint32(hdr.data[hdrFreeCountOff])<<24 | uint32(hdr.data[hdrFreeCountOff+1])<<16 |
		uint32(hdr.data[hdrFreeCountOff+2])<<8 | uint32(hdr.data[hdrFreeCountOff+3])
}

func TestBtreeCursorSeek(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, false)
	for i := int64(10); i <= 1000; i += 10 {
		tree.Insert(i, []byte{1})
	}
	mustCommit(t, p)
	cur, err := tree.CursorGE(95)
	if err != nil {
		t.Fatalf("CursorGE: %v", err)
	}
	if !cur.Valid() || cur.Rowid() != 100 {
		t.Errorf("seek(95) landed on %d, want 100", cur.Rowid())
	}
	cur, _ = tree.CursorGE(100)
	if cur.Rowid() != 100 {
		t.Errorf("seek(100) landed on %d", cur.Rowid())
	}
	cur, _ = tree.CursorGE(1001)
	if cur.Valid() {
		t.Error("seek past end still valid")
	}
}

func TestIndexTree(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, err := CreateTree(p, true)
	if err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	// Keys: (text value, rowid) records.
	mk := func(s string, rowid int64) []byte {
		return EncodeRecord(nil, []Value{TextVal(s), IntVal(rowid)})
	}
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		if err := tree.InsertKey(mk(w, int64(i+1))); err != nil {
			t.Fatalf("InsertKey: %v", err)
		}
	}
	mustCommit(t, p)

	// In-order scan yields sorted keys.
	cur, _ := tree.Cursor()
	var got []string
	for cur.Valid() {
		k, _ := cur.Key()
		row, err := DecodeRecord(k)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		got = append(got, row[0].Text())
		cur.Next()
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index order = %v", got)
		}
	}

	// Seek.
	cur, _ = tree.CursorKeyGE(EncodeRecord(nil, []Value{TextVal("c")}))
	k, _ := cur.Key()
	row, _ := DecodeRecord(k)
	if row[0].Text() != "charlie" {
		t.Errorf("seek('c') = %s", row[0].Text())
	}

	// Membership and delete.
	if ok, _ := tree.HasKey(mk("delta", 1)); !ok {
		t.Error("HasKey(delta,1) = false")
	}
	mustBegin(t, p)
	if ok, _ := tree.DeleteKey(mk("delta", 1)); !ok {
		t.Error("DeleteKey failed")
	}
	mustCommit(t, p)
	if ok, _ := tree.HasKey(mk("delta", 1)); ok {
		t.Error("deleted key still present")
	}
}

func TestIndexKeyTooLarge(t *testing.T) {
	p := newTestPager(t)
	mustBegin(t, p)
	tree, _ := CreateTree(p, true)
	defer mustCommit(t, p)
	if err := tree.InsertKey(make([]byte, maxIndexKey+1)); err != ErrKeyTooLarge {
		t.Errorf("oversized key: %v", err)
	}
}

// TestBtreeMatchesModel drives a tree with random operations and checks
// against a map-based model.
func TestBtreeMatchesModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Rowid uint16
		Data  []byte
	}
	check := func(ops []op) bool {
		p, err := OpenPager(NewMemVFS(), "q.db", PagerOptions{CachePages: 32})
		if err != nil {
			return false
		}
		defer p.Close()
		if p.Begin() != nil {
			return false
		}
		tree, err := CreateTree(p, false)
		if err != nil {
			return false
		}
		model := map[int64][]byte{}
		for _, o := range ops {
			rowid := int64(o.Rowid%512) + 1
			switch o.Kind % 3 {
			case 0, 1: // insert/replace
				data := append([]byte(nil), o.Data...)
				if tree.Insert(rowid, data) != nil {
					return false
				}
				model[rowid] = data
			case 2:
				ok, err := tree.Delete(rowid)
				if err != nil {
					return false
				}
				_, inModel := model[rowid]
				if ok != inModel {
					return false
				}
				delete(model, rowid)
			}
		}
		if p.Commit() != nil {
			return false
		}
		// Verify via point lookups.
		for rowid, want := range model {
			got, ok, err := tree.Get(rowid)
			if err != nil || !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		// Verify via scan: exactly the model's keys in order.
		var keys []int64
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		cur, err := tree.Cursor()
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !cur.Valid() || cur.Rowid() != k {
				return false
			}
			cur.Next()
		}
		return !cur.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rows := [][]Value{
		{},
		{NullVal()},
		{IntVal(0), IntVal(1), IntVal(-1), IntVal(127), IntVal(-128)},
		{IntVal(32767), IntVal(-32768), IntVal(1 << 22), IntVal(-(1 << 22))},
		{IntVal(1 << 40), IntVal(-(1 << 40)), IntVal(1<<62 + 5)},
		{RealVal(3.14159), RealVal(-0.0), RealVal(1e300)},
		{TextVal(""), TextVal("hello"), TextVal("ünïcødé")},
		{BlobVal(nil), BlobVal([]byte{0, 1, 2, 255})},
		{NullVal(), IntVal(42), RealVal(2.5), TextVal("mix"), BlobVal([]byte("b"))},
	}
	for i, row := range rows {
		enc := EncodeRecord(nil, row)
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if len(dec) != len(row) {
			t.Fatalf("row %d: %d cols, want %d", i, len(dec), len(row))
		}
		for j := range row {
			if Compare(dec[j], row[j]) != 0 {
				t.Errorf("row %d col %d: %v != %v", i, j, dec[j], row[j])
			}
		}
	}
}

// TestRecordPropertyRoundTrip is the testing/quick record-codec property.
func TestRecordPropertyRoundTrip(t *testing.T) {
	check := func(i int64, f float64, s string, b []byte, useNull bool) bool {
		row := []Value{IntVal(i), RealVal(f), TextVal(s), BlobVal(b)}
		if useNull {
			row = append(row, NullVal())
		}
		dec, err := DecodeRecord(EncodeRecord(nil, row))
		if err != nil || len(dec) != len(row) {
			return false
		}
		for j := range row {
			if row[j].typ == Real {
				// NaN compares equal to itself under Compare's total order.
				if Compare(dec[j], row[j]) != 0 {
					return false
				}
				continue
			}
			if Compare(dec[j], row[j]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestValueCompareTotalOrder checks Compare is a valid total order on a
// random sample (antisymmetry + transitivity on triples).
func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{
		NullVal(), IntVal(-5), IntVal(0), IntVal(7), RealVal(-5.5), RealVal(0),
		RealVal(6.9), RealVal(7), TextVal(""), TextVal("a"), TextVal("b"),
		BlobVal(nil), BlobVal([]byte{0}), BlobVal([]byte{1, 2}),
	}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("antisymmetry failed: %v vs %v", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Errorf("transitivity failed: %v <= %v <= %v but a > c", a, b, c)
				}
			}
		}
	}
	// Cross-class ordering.
	if Compare(IntVal(7), RealVal(6.9)) <= 0 {
		t.Error("7 <= 6.9")
	}
	if Compare(IntVal(7), RealVal(7)) != 0 {
		t.Error("int 7 != real 7.0")
	}
	if Compare(NullVal(), IntVal(-999)) >= 0 {
		t.Error("NULL not smallest")
	}
	if Compare(TextVal("zzz"), BlobVal([]byte{0})) >= 0 {
		t.Error("TEXT not before BLOB")
	}
}
