package litedb

import "testing"

// TestRowidRangeScanIncludesZero is a regression test: an upper-bounded
// range scan over an explicit INTEGER PRIMARY KEY must include rows whose
// key is zero or negative (the open lower bound used to start at rowid 1,
// the first automatic rowid).
func TestRowidRangeScanIncludesZero(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	for k := -2; k < 8; k++ {
		mustExec(t, db, `INSERT INTO kv (k, v) VALUES (?, ?)`, IntVal(int64(k)), TextVal("x"))
	}
	cases := []struct {
		q    string
		want int64
	}{
		{`SELECT COUNT(*) FROM kv WHERE k < 8`, 10},
		{`SELECT COUNT(*) FROM kv WHERE k <= 7`, 10},
		{`SELECT COUNT(*) FROM kv WHERE k < 1`, 3},
		{`SELECT COUNT(*) FROM kv WHERE k >= -2`, 10},
		{`SELECT COUNT(*) FROM kv WHERE k > -3`, 10},
		{`SELECT COUNT(*) FROM kv WHERE k BETWEEN -2 AND 0`, 3},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, c.q)
		if got := rows.All()[0][0].Int(); got != c.want {
			t.Errorf("%s = %d, want %d", c.q, got, c.want)
		}
	}
	rows := mustQuery(t, db, `SELECT k FROM kv WHERE k < ?`, IntVal(1))
	if len(rows.All()) != 3 {
		t.Errorf("param upper bound: %v", rows.All())
	}
}
