package litedb

import (
	"testing"

	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/wasi"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// buildWASIEnv wires a guest instance, a WASI system over the given
// backend, and a WASIVFS window.
func buildWASIEnv(t *testing.T, backend wasi.Backend) (*WASIVFS, PageStore) {
	t.Helper()
	sys, err := wasi.NewSystem(wasi.Config{
		FS:       backend,
		Preopens: map[string]string{"/": ""},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	imp := wasm.NewImportObject()
	sys.Register(imp)

	// A shim module whose linear memory carries the marshal window and
	// the page cache (64 pages cache + 128 KiB scratch -> 8 wasm pages).
	m := wasmgen.NewModule()
	m.Memory(16, 16) // 1 MiB
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("_init", f)
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in, err := wasm.Instantiate(c, imp, wasm.Config{})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}

	vfs, err := NewWASIVFS(imp, in, 0, 128<<10)
	if err != nil {
		t.Fatalf("NewWASIVFS: %v", err)
	}
	// Page cache lives in the same linear memory, after the scratch.
	store, err := NewSandboxStore(in.Memory(), 128<<10, 64)
	if err != nil {
		t.Fatalf("NewSandboxStore: %v", err)
	}
	return vfs, store
}

func TestSQLOverWASIHostBackend(t *testing.T) {
	host := hostfs.NewMemFS()
	vfs, store := buildWASIEnv(t, wasi.NewHostBackend(host, nil))
	db, err := Open(vfs, "app.db", Options{CachePages: 64, Store: store})
	if err != nil {
		t.Fatalf("Open over WASI: %v", err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, blob BLOB)`)
	mustExec(t, db, `INSERT INTO t (blob) VALUES (randomblob(500))`)
	mustExec(t, db, `INSERT INTO t (blob) VALUES (randomblob(500))`)
	row, err := db.QueryRow(`SELECT COUNT(*), SUM(length(blob)) FROM t`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if row[0].Int() != 2 || row[1].Int() != 1000 {
		t.Errorf("row = %v", row)
	}
	// The database file exists on the untrusted host.
	if info, err := host.Stat("app.db"); err != nil || info.Size == 0 {
		t.Errorf("host db file: %v, %v", info, err)
	}
}

func TestSQLOverWASIIPFSBackend(t *testing.T) {
	host := hostfs.NewMemFS()
	hostBE := wasi.NewHostBackend(host, nil)
	pfs := ipfs.New(nil, host, ipfs.Options{Mode: ipfs.ModeOptimized})
	backend := wasi.NewIPFSBackend(pfs, hostBE)
	vfs, store := buildWASIEnv(t, backend)

	db, err := Open(vfs, "enc.db", Options{CachePages: 64, Store: store})
	if err != nil {
		t.Fatalf("Open over WASI+IPFS: %v", err)
	}
	mustExec(t, db, `CREATE TABLE secrets (v TEXT)`)
	mustExec(t, db, `INSERT INTO secrets VALUES ('TOP-SECRET-PAYLOAD-STRING')`)
	row, err := db.QueryRow(`SELECT v FROM secrets`)
	if err != nil || row[0].Text() != "TOP-SECRET-PAYLOAD-STRING" {
		t.Fatalf("row = %v, %v", row, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The paper's central property: on the untrusted host, the database
	// is ciphertext.
	raw, err := host.OpenFile("enc.db", hostfs.ORead)
	if err != nil {
		t.Fatalf("raw open: %v", err)
	}
	defer raw.Close()
	info, _ := raw.Stat()
	disk := make([]byte, info.Size)
	raw.ReadAt(disk, 0)
	if containsSub(disk, []byte("TOP-SECRET-PAYLOAD-STRING")) {
		t.Fatal("plaintext row data visible on untrusted host")
	}
	if containsSub(disk, []byte("secrets")) {
		t.Fatal("schema plaintext visible on untrusted host")
	}

	// Reopen: data survives the protected store.
	vfs2, store2 := buildWASIEnv(t, wasi.NewIPFSBackend(pfs, hostBE))
	db2, err := Open(vfs2, "enc.db", Options{CachePages: 64, Store: store2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	row, err = db2.QueryRow(`SELECT COUNT(*) FROM secrets`)
	if err != nil || row[0].Int() != 1 {
		t.Errorf("reopened row = %v, %v", row, err)
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestSandboxStoreBounds(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("f", f)
	mod, _ := wasm.Decode(m.Bytes())
	c, _ := wasm.Compile(mod)
	in, _ := wasm.Instantiate(c, nil, wasm.Config{})
	// 64 KiB memory cannot host 64 pages of cache.
	if _, err := NewSandboxStore(in.Memory(), 0, 64); err == nil {
		t.Error("oversized sandbox store accepted")
	}
	st, err := NewSandboxStore(in.Memory(), 0, 16)
	if err != nil {
		t.Fatalf("NewSandboxStore: %v", err)
	}
	buf := st.Page(3)
	if len(buf) != PageSize {
		t.Errorf("page len = %d", len(buf))
	}
	buf[0] = 0xEE
	if st.Page(3)[0] != 0xEE {
		t.Error("sandbox page not stable")
	}
}
