package litedb

import (
	"fmt"
	"strconv"
	"strings"
)

// Token kinds.
type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString // 'quoted'
	tkBlob   // x'hex'
	tkOp     // punctuation / operators
	tkParam  // ?
)

type token struct {
	kind tokKind
	text string // uppercased for keywords
	raw  string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "DROP": true, "ALTER": true,
	"ADD": true, "COLUMN": true, "RENAME": true, "TO": true, "PRIMARY": true,
	"KEY": true, "NOT": true, "NULL": true, "DEFAULT": true, "AND": true,
	"OR": true, "IN": true, "LIKE": true, "BETWEEN": true, "IS": true,
	"ORDER": true, "BY": true, "GROUP": true, "HAVING": true, "LIMIT": true,
	"OFFSET": true, "ASC": true, "DESC": true, "DISTINCT": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true, "ON": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"PRAGMA": true, "ANALYZE": true, "VACUUM": true, "IF": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CAST": true, "REPLACE": true, "CONFLICT": true, "ABORT": true, "IGNORE": true,
	"GLOB": true, "ESCAPE": true, "COLLATE": true, "NOCASE": true,
	"TRUE": true, "FALSE": true, "ALL": true, "UNION": true, "EXPLAIN": true,
	"WITHOUT": true, "ROWID": true, "AUTOINCREMENT": true, "TEMP": true, "TEMPORARY": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// tokenize splits src into tokens.
func tokenize(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tkEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("litedb: syntax error at offset %d: %s", lx.pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	src := lx.src
	// Skip whitespace and comments.
	for lx.pos < len(src) {
		c := src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(src) && src[lx.pos+1] == '-':
			for lx.pos < len(src) && src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(src) && src[lx.pos+1] == '*':
			end := strings.Index(src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, lx.errf("unterminated comment")
			}
			lx.pos += end + 4
		default:
			goto scan
		}
	}
scan:
	if lx.pos >= len(src) {
		return token{kind: tkEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := src[lx.pos]
	switch {
	case isAlpha(c) || c == '_':
		for lx.pos < len(src) && (isAlnum(src[lx.pos]) || src[lx.pos] == '_') {
			lx.pos++
		}
		word := src[start:lx.pos]
		up := strings.ToUpper(word)
		// x'ABCD' blob literal.
		if (up == "X") && lx.pos < len(src) && src[lx.pos] == '\'' {
			lx.pos++
			hexStart := lx.pos
			for lx.pos < len(src) && src[lx.pos] != '\'' {
				lx.pos++
			}
			if lx.pos >= len(src) {
				return token{}, lx.errf("unterminated blob literal")
			}
			hexStr := src[hexStart:lx.pos]
			lx.pos++
			return token{kind: tkBlob, text: hexStr, raw: hexStr, pos: start}, nil
		}
		if keywords[up] {
			return token{kind: tkKeyword, text: up, raw: word, pos: start}, nil
		}
		return token{kind: tkIdent, text: word, raw: word, pos: start}, nil

	case c >= '0' && c <= '9' || (c == '.' && lx.pos+1 < len(src) && src[lx.pos+1] >= '0' && src[lx.pos+1] <= '9'):
		isFloat := false
		for lx.pos < len(src) {
			d := src[lx.pos]
			if d >= '0' && d <= '9' {
				lx.pos++
			} else if d == '.' && !isFloat {
				isFloat = true
				lx.pos++
			} else if (d == 'e' || d == 'E') && lx.pos+1 < len(src) {
				isFloat = true
				lx.pos++
				if src[lx.pos] == '+' || src[lx.pos] == '-' {
					lx.pos++
				}
			} else {
				break
			}
		}
		text := src[start:lx.pos]
		if isFloat {
			return token{kind: tkFloat, text: text, raw: text, pos: start}, nil
		}
		return token{kind: tkInt, text: text, raw: text, pos: start}, nil

	case c == '\'':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(src) {
			if src[lx.pos] == '\'' {
				if lx.pos+1 < len(src) && src[lx.pos+1] == '\'' {
					sb.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return token{kind: tkString, text: sb.String(), raw: sb.String(), pos: start}, nil
			}
			sb.WriteByte(src[lx.pos])
			lx.pos++
		}
		return token{}, lx.errf("unterminated string")

	case c == '"' || c == '`' || c == '[':
		close := c
		if c == '[' {
			close = ']'
		}
		lx.pos++
		idStart := lx.pos
		for lx.pos < len(src) && src[lx.pos] != close {
			lx.pos++
		}
		if lx.pos >= len(src) {
			return token{}, lx.errf("unterminated quoted identifier")
		}
		id := src[idStart:lx.pos]
		lx.pos++
		return token{kind: tkIdent, text: id, raw: id, pos: start}, nil

	case c == '?':
		lx.pos++
		return token{kind: tkParam, text: "?", raw: "?", pos: start}, nil

	default:
		two := ""
		if lx.pos+1 < len(src) {
			two = src[lx.pos : lx.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "==", "||", "<<", ">>":
			lx.pos += 2
			return token{kind: tkOp, text: two, raw: two, pos: start}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', ';', '.', '&', '|', '~':
			lx.pos++
			return token{kind: tkOp, text: string(c), raw: string(c), pos: start}, nil
		}
		return token{}, lx.errf("unexpected character %q", c)
	}
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isAlnum(c byte) bool { return isAlpha(c) || c >= '0' && c <= '9' }

// parseIntLiteral converts an integer token, tolerating values that
// overflow into float (as SQLite does).
func parseIntLiteral(text string) Value {
	if v, err := strconv.ParseInt(text, 10, 64); err == nil {
		return IntVal(v)
	}
	f, _ := strconv.ParseFloat(text, 64)
	return RealVal(f)
}
