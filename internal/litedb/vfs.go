package litedb

import (
	"errors"
	"fmt"
	"sync"

	"twine/internal/hostfs"
)

// VFS is litedb's virtual file system, mirroring SQLite's VFS layer: the
// pager performs all storage I/O through it, so the same engine runs over
// plain memory, the host file system, WASI, or the Intel protected file
// system (see vfs_wasi.go and the twine core package).
type VFS interface {
	Open(name string, create bool) (DBFile, error)
	Delete(name string) error
	Exists(name string) (bool, error)
}

// DBFile is an open database or journal file.
type DBFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
	Close() error
}

// ErrNotFound is returned by VFS.Open(create=false) for missing files.
var ErrNotFound = errors.New("litedb: file not found")

// --- in-memory VFS ---

// MemVFS keeps files in memory. An optional Touch hook observes every
// byte-range access so enclave variants can charge EPC residency for the
// in-memory database (paper Figure 5's in-memory curves).
type MemVFS struct {
	mu    sync.Mutex
	files map[string]*memVFSFile
	// Touch, when set, is called with (offset, length) of every access.
	Touch func(off, n int64)
}

// NewMemVFS returns an empty in-memory VFS.
func NewMemVFS() *MemVFS {
	return &MemVFS{files: make(map[string]*memVFSFile)}
}

type memVFSFile struct {
	vfs  *MemVFS
	name string
	data []byte
}

// Open implements VFS.
func (v *MemVFS) Open(name string, create bool) (DBFile, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		f = &memVFSFile{vfs: v, name: name}
		v.files[name] = f
	}
	return f, nil
}

// Delete implements VFS.
func (v *MemVFS) Delete(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.files, name)
	return nil
}

// Exists implements VFS.
func (v *MemVFS) Exists(name string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.files[name]
	return ok, nil
}

// TotalBytes reports the memory footprint of all files.
func (v *MemVFS) TotalBytes() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var n int64
	for _, f := range v.files {
		n += int64(len(f.data))
	}
	return n
}

func (f *memVFSFile) ReadAt(p []byte, off int64) (int, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	if f.vfs.Touch != nil {
		f.vfs.Touch(off, int64(len(p)))
	}
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(p, f.data[off:]), nil
}

func (f *memVFSFile) WriteAt(p []byte, off int64) (int, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	if f.vfs.Touch != nil {
		f.vfs.Touch(off, int64(len(p)))
	}
	if need := off + int64(len(p)); need > int64(len(f.data)) {
		if need <= int64(cap(f.data)) {
			f.data = f.data[:need]
		} else {
			newCap := int64(cap(f.data)) * 2
			if newCap < need {
				newCap = need
			}
			grown := make([]byte, need, newCap)
			copy(grown, f.data)
			f.data = grown
		}
	}
	copy(f.data[off:], p)
	return len(p), nil
}

func (f *memVFSFile) Truncate(size int64) error {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	switch {
	case size <= int64(len(f.data)):
		f.data = f.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.data)
		f.data = grown
	}
	return nil
}

func (f *memVFSFile) Sync() error { return nil }

func (f *memVFSFile) Size() (int64, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	return int64(len(f.data)), nil
}

func (f *memVFSFile) Close() error { return nil }

// --- host-FS VFS ---

// HostVFS stores database files on a hostfs.FS (the untrusted host in the
// WAMR baseline configuration).
type HostVFS struct {
	FS hostfs.FS
}

// NewHostVFS wraps fs.
func NewHostVFS(fs hostfs.FS) *HostVFS { return &HostVFS{FS: fs} }

// Open implements VFS.
func (v *HostVFS) Open(name string, create bool) (DBFile, error) {
	flags := hostfs.ORead | hostfs.OWrite
	if create {
		flags |= hostfs.OCreate
	}
	f, err := v.FS.OpenFile(name, flags)
	if err != nil {
		if errors.Is(err, hostfs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, err
	}
	return &hostVFSFile{f: f}, nil
}

// Delete implements VFS.
func (v *HostVFS) Delete(name string) error {
	err := v.FS.Remove(name)
	if errors.Is(err, hostfs.ErrNotExist) {
		return nil
	}
	return err
}

// Exists implements VFS.
func (v *HostVFS) Exists(name string) (bool, error) {
	_, err := v.FS.Stat(name)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, hostfs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

type hostVFSFile struct{ f hostfs.File }

func (h *hostVFSFile) ReadAt(p []byte, off int64) (int, error)  { return h.f.ReadAt(p, off) }
func (h *hostVFSFile) WriteAt(p []byte, off int64) (int, error) { return h.f.WriteAt(p, off) }
func (h *hostVFSFile) Truncate(size int64) error                { return h.f.Truncate(size) }
func (h *hostVFSFile) Sync() error                              { return h.f.Sync() }
func (h *hostVFSFile) Close() error                             { return h.f.Close() }

func (h *hostVFSFile) Size() (int64, error) {
	info, err := h.f.Stat()
	return info.Size, err
}
