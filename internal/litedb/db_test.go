package litedb

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"twine/internal/hostfs"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(NewMemVFS(), "t.db", Options{CachePages: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) int64 {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return rows
}

func rowsAsText(r *Rows) []string {
	var out []string
	for _, row := range r.All() {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, age INTEGER)`)
	mustExec(t, db, `INSERT INTO users (name, age) VALUES ('alice', 30), ('bob', 25), ('carol', 35)`)
	rows := mustQuery(t, db, `SELECT id, name, age FROM users ORDER BY id`)
	got := rowsAsText(rows)
	want := []string{"1|alice|30", "2|bob|25", "3|carol|35"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
}

func TestWhereAndParams(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER, b TEXT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, IntVal(int64(i)), TextVal(fmt.Sprintf("s%d", i)))
	}
	rows := mustQuery(t, db, `SELECT b FROM t WHERE a > ? AND a <= ?`, IntVal(7), IntVal(9))
	got := rowsAsText(rows)
	if len(got) != 2 || got[0] != "s8" || got[1] != "s9" {
		t.Errorf("rows = %v", got)
	}
}

func TestRowidPKAlias(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	mustExec(t, db, `INSERT INTO kv VALUES (100, 'x'), (200, 'y')`)
	row, err := db.QueryRow(`SELECT rowid, k, v FROM kv WHERE k = 200`)
	if err != nil {
		t.Fatalf("QueryRow: %v", err)
	}
	if row[0].Int() != 200 || row[1].Int() != 200 || row[2].Text() != "y" {
		t.Errorf("row = %v", row)
	}
	// Duplicate PK rejected.
	if _, err := db.Exec(`INSERT INTO kv VALUES (100, 'dup')`); err == nil {
		t.Error("duplicate INTEGER PRIMARY KEY accepted")
	}
	// INSERT OR REPLACE succeeds.
	mustExec(t, db, `INSERT OR REPLACE INTO kv VALUES (100, 'replaced')`)
	row, _ = db.QueryRow(`SELECT v FROM kv WHERE k = 100`)
	if row[0].Text() != "replaced" {
		t.Errorf("v = %v", row[0])
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE u (email TEXT UNIQUE, n INTEGER)`)
	mustExec(t, db, `INSERT INTO u VALUES ('a@x.com', 1)`)
	if _, err := db.Exec(`INSERT INTO u VALUES ('a@x.com', 2)`); err == nil ||
		!strings.Contains(err.Error(), "UNIQUE") {
		t.Errorf("duplicate unique = %v", err)
	}
	// NULLs do not conflict.
	mustExec(t, db, `INSERT INTO u VALUES (NULL, 3)`)
	mustExec(t, db, `INSERT INTO u VALUES (NULL, 4)`)
	row, _ := db.QueryRow(`SELECT COUNT(*) FROM u`)
	if row[0].Int() != 3 {
		t.Errorf("count = %v", row[0])
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE n (a TEXT NOT NULL)`)
	if _, err := db.Exec(`INSERT INTO n VALUES (NULL)`); err == nil ||
		!strings.Contains(err.Error(), "NOT NULL") {
		t.Errorf("NULL into NOT NULL = %v", err)
	}
}

func TestDefaults(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE d (a INTEGER, b TEXT DEFAULT 'none', c REAL DEFAULT 2.5)`)
	mustExec(t, db, `INSERT INTO d (a) VALUES (1)`)
	row, _ := db.QueryRow(`SELECT b, c FROM d`)
	if row[0].Text() != "none" || row[1].Real() != 2.5 {
		t.Errorf("defaults = %v", row)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER, b INTEGER)`)
	for i := 1; i <= 100; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, 0)`, IntVal(int64(i)))
	}
	n := mustExec(t, db, `UPDATE t SET b = a * 2 WHERE a <= 50`)
	if n != 50 {
		t.Errorf("update affected %d", n)
	}
	row, _ := db.QueryRow(`SELECT SUM(b) FROM t`)
	if row[0].Int() != 2550 { // 2*(1+..+50)
		t.Errorf("sum = %v", row[0])
	}
	n = mustExec(t, db, `DELETE FROM t WHERE b = 0`)
	if n != 50 {
		t.Errorf("delete affected %d", n)
	}
	row, _ = db.QueryRow(`SELECT COUNT(*) FROM t`)
	if row[0].Int() != 50 {
		t.Errorf("count = %v", row[0])
	}
}

func TestIndexUseAndCorrectness(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER, b TEXT)`)
	mustExec(t, db, `CREATE INDEX ia ON t(a)`)
	for i := 1; i <= 500; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, IntVal(int64(i%50)), TextVal(fmt.Sprintf("v%d", i)))
	}
	// Count pager activity for an indexed point query vs a full scan.
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE a = 7`)
	if rows.All()[0][0].Int() != 10 {
		t.Errorf("indexed count = %v", rows.All()[0][0])
	}
	// Index stays consistent under update/delete.
	mustExec(t, db, `UPDATE t SET a = 99 WHERE a = 7`)
	row, _ := db.QueryRow(`SELECT COUNT(*) FROM t WHERE a = 99`)
	if row[0].Int() != 10 {
		t.Errorf("after update = %v", row[0])
	}
	mustExec(t, db, `DELETE FROM t WHERE a = 99`)
	row, _ = db.QueryRow(`SELECT COUNT(*) FROM t WHERE a = 99`)
	if row[0].Int() != 0 {
		t.Errorf("after delete = %v", row[0])
	}
}

func TestJoin(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE dept (id INTEGER PRIMARY KEY, dname TEXT)`)
	mustExec(t, db, `CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER)`)
	mustExec(t, db, `INSERT INTO dept VALUES (1,'eng'), (2,'ops')`)
	mustExec(t, db, `INSERT INTO emp VALUES (1,'alice',1), (2,'bob',2), (3,'carol',1)`)
	rows := mustQuery(t, db, `
		SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept_id = d.id
		WHERE d.dname = 'eng' ORDER BY e.name`)
	got := rowsAsText(rows)
	if len(got) != 2 || got[0] != "alice|eng" || got[1] != "carol|eng" {
		t.Errorf("join rows = %v", got)
	}
	// Comma join with WHERE.
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM emp, dept WHERE emp.dept_id = dept.id`)
	if rows.All()[0][0].Int() != 3 {
		t.Errorf("comma join count = %v", rows.All()[0][0])
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE s (grp TEXT, v INTEGER)`)
	mustExec(t, db, `INSERT INTO s VALUES ('a',1),('a',2),('a',3),('b',10),('b',20)`)
	rows := mustQuery(t, db, `
		SELECT grp, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v)
		FROM s GROUP BY grp ORDER BY grp`)
	got := rowsAsText(rows)
	if got[0] != "a|3|6|2|1|3" || got[1] != "b|2|30|15|10|20" {
		t.Errorf("group rows = %v", got)
	}
	// HAVING.
	rows = mustQuery(t, db, `SELECT grp FROM s GROUP BY grp HAVING SUM(v) > 10`)
	if len(rows.All()) != 1 || rows.All()[0][0].Text() != "b" {
		t.Errorf("having rows = %v", rowsAsText(rows))
	}
	// Aggregate over empty set.
	row, _ := db.QueryRow(`SELECT COUNT(*), SUM(v) FROM s WHERE v > 1000`)
	if row[0].Int() != 0 || !row[1].IsNull() {
		t.Errorf("empty agg = %v", row)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	for _, v := range []int{5, 3, 9, 1, 7} {
		mustExec(t, db, `INSERT INTO t VALUES (?)`, IntVal(int64(v)))
	}
	rows := mustQuery(t, db, `SELECT a FROM t ORDER BY a DESC LIMIT 2 OFFSET 1`)
	got := rowsAsText(rows)
	if len(got) != 2 || got[0] != "7" || got[1] != "5" {
		t.Errorf("rows = %v", got)
	}
	// ORDER BY ordinal and alias.
	rows = mustQuery(t, db, `SELECT a AS x FROM t ORDER BY 1`)
	if rowsAsText(rows)[0] != "1" {
		t.Errorf("ordinal order = %v", rowsAsText(rows))
	}
	rows = mustQuery(t, db, `SELECT a AS x FROM t ORDER BY x DESC`)
	if rowsAsText(rows)[0] != "9" {
		t.Errorf("alias order = %v", rowsAsText(rows))
	}
}

func TestDistinct(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1),(2),(2),(3),(3),(3)`)
	rows := mustQuery(t, db, `SELECT DISTINCT a FROM t ORDER BY a`)
	if len(rows.All()) != 3 {
		t.Errorf("distinct rows = %v", rowsAsText(rows))
	}
}

func TestExpressions(t *testing.T) {
	db := openTestDB(t)
	checks := []struct {
		sql  string
		want string
	}{
		{`SELECT 1 + 2 * 3`, "7"},
		{`SELECT (1 + 2) * 3`, "9"},
		{`SELECT 7 / 2`, "3"},
		{`SELECT 7.0 / 2`, "3.5"},
		{`SELECT 7 % 3`, "1"},
		{`SELECT 1 / 0`, "NULL"},
		{`SELECT 'a' || 'b' || 'c'`, "abc"},
		{`SELECT -(-5)`, "5"},
		{`SELECT 2 < 3`, "1"},
		{`SELECT NULL = NULL`, "NULL"},
		{`SELECT NULL IS NULL`, "1"},
		{`SELECT 3 IS NOT NULL`, "1"},
		{`SELECT 5 BETWEEN 1 AND 10`, "1"},
		{`SELECT 5 NOT BETWEEN 1 AND 10`, "0"},
		{`SELECT 2 IN (1, 2, 3)`, "1"},
		{`SELECT 9 NOT IN (1, 2, 3)`, "1"},
		{`SELECT 'hello' LIKE 'h%'`, "1"},
		{`SELECT 'hello' LIKE 'H_LLO'`, "1"},
		{`SELECT 'hello' NOT LIKE 'x%'`, "1"},
		{`SELECT length('abc')`, "3"},
		{`SELECT abs(-4)`, "4"},
		{`SELECT upper('ab')`, "AB"},
		{`SELECT lower('AB')`, "ab"},
		{`SELECT substr('hello', 2, 3)`, "ell"},
		{`SELECT substr('hello', -3)`, "llo"},
		{`SELECT coalesce(NULL, NULL, 'x')`, "x"},
		{`SELECT typeof(3)`, "integer"},
		{`SELECT typeof(3.5)`, "real"},
		{`SELECT typeof('s')`, "text"},
		{`SELECT typeof(NULL)`, "null"},
		{`SELECT min(3, 1, 2)`, "1"},
		{`SELECT max(3, 1, 2)`, "3"},
		{`SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END`, "b"},
		{`SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END`, "two"},
		{`SELECT CAST('12' AS INTEGER)`, "12"},
		{`SELECT CAST(3.9 AS INTEGER)`, "3"},
		{`SELECT hex(x'1a2b')`, "1A2B"},
		{`SELECT replace('aXbXc', 'X', '-')`, "a-b-c"},
		{`SELECT instr('hello', 'll')`, "3"},
		{`SELECT round(2.567, 2)`, "2.57"},
		{`SELECT 1 AND NULL`, "NULL"},
		{`SELECT 0 AND NULL`, "0"},
		{`SELECT 1 OR NULL`, "1"},
		{`SELECT 0 OR NULL`, "NULL"},
		{`SELECT NOT 0`, "1"},
		{`SELECT 5 & 3`, "1"},
		{`SELECT 5 | 3`, "7"},
		{`SELECT 1 << 4`, "16"},
		{`SELECT nullif(1, 1)`, "NULL"},
		{`SELECT nullif(1, 2)`, "1"},
		{`SELECT zeroblob(3)`, "x'000000'"},
	}
	for _, c := range checks {
		row, err := db.QueryRow(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if got := row[0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestAlterTable(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'fresh'`)
	// Old rows read the default; new rows store values.
	mustExec(t, db, `INSERT INTO t VALUES (2, 'stored')`)
	rows := mustQuery(t, db, `SELECT a, b FROM t ORDER BY a`)
	got := rowsAsText(rows)
	if got[0] != "1|fresh" || got[1] != "2|stored" {
		t.Errorf("rows = %v", got)
	}
	mustExec(t, db, `ALTER TABLE t RENAME TO t2`)
	if _, err := db.Query(`SELECT * FROM t`); err == nil {
		t.Error("old name still resolves")
	}
	row, _ := db.QueryRow(`SELECT COUNT(*) FROM t2`)
	if row[0].Int() != 2 {
		t.Errorf("renamed count = %v", row[0])
	}
}

func TestDropTableAndIndex(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `CREATE INDEX i ON t(a)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `DROP INDEX i`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := db.Query(`SELECT * FROM t`); err == nil {
		t.Error("dropped table still resolves")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS t`) // no error
	if _, err := db.Exec(`DROP TABLE t`); err == nil {
		t.Error("dropping missing table without IF EXISTS succeeded")
	}
}

func TestTransactions(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `INSERT INTO t VALUES (2)`)
	mustExec(t, db, `ROLLBACK`)
	row, _ := db.QueryRow(`SELECT COUNT(*) FROM t`)
	if row[0].Int() != 0 {
		t.Errorf("count after rollback = %v", row[0])
	}
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `INSERT INTO t VALUES (3)`)
	mustExec(t, db, `COMMIT`)
	row, _ = db.QueryRow(`SELECT COUNT(*) FROM t`)
	if row[0].Int() != 1 {
		t.Errorf("count after commit = %v", row[0])
	}
	// DDL rolls back too.
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `CREATE TABLE t2 (x INTEGER)`)
	mustExec(t, db, `ROLLBACK`)
	if _, err := db.Query(`SELECT * FROM t2`); err == nil {
		t.Error("rolled-back table still exists")
	}
}

func TestPersistenceAcrossReopenSQL(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "p.db", Options{CachePages: 32})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustExec(t, db, `CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)`)
	mustExec(t, db, `CREATE INDEX ib ON t(b)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'one'), (2, 'two')`)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(vfs, "p.db", Options{CachePages: 32})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	row, err := db2.QueryRow(`SELECT b FROM t WHERE b = 'two'`)
	if err != nil || row == nil || row[0].Text() != "two" {
		t.Errorf("reopened query = %v, %v", row, err)
	}
	// Schema survived: duplicate table fails.
	if _, err := db2.Exec(`CREATE TABLE t (x INTEGER)`); err == nil {
		t.Error("schema lost across reopen")
	}
}

func TestInsertSelect(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE src (a INTEGER)`)
	mustExec(t, db, `CREATE TABLE dst (a INTEGER)`)
	mustExec(t, db, `INSERT INTO src VALUES (1),(2),(3)`)
	n := mustExec(t, db, `INSERT INTO dst SELECT a * 10 FROM src`)
	if n != 3 {
		t.Errorf("insert-select affected %d", n)
	}
	row, _ := db.QueryRow(`SELECT SUM(a) FROM dst`)
	if row[0].Int() != 60 {
		t.Errorf("sum = %v", row[0])
	}
}

func TestAnalyzeAndVacuum(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1),(2),(3)`)
	mustExec(t, db, `ANALYZE`)
	row, err := db.QueryRow(`SELECT n FROM _stats WHERE tbl = 't'`)
	if err != nil || row == nil || row[0].Int() != 3 {
		t.Errorf("stats = %v, %v", row, err)
	}
	mustExec(t, db, `VACUUM`)
}

func TestPragmas(t *testing.T) {
	db := openTestDB(t)
	rows := mustQuery(t, db, `PRAGMA page_size`)
	if rows.All()[0][0].Int() != PageSize {
		t.Errorf("page_size = %v", rows.All()[0][0])
	}
	mustExec(t, db, `PRAGMA synchronous = off`)
	rows = mustQuery(t, db, `PRAGMA synchronous`)
	if rows.All()[0][0].Int() != int64(SyncOff) {
		t.Errorf("synchronous = %v", rows.All()[0][0])
	}
	rows = mustQuery(t, db, `PRAGMA page_count`)
	if rows.All()[0][0].Int() < 1 {
		t.Errorf("page_count = %v", rows.All()[0][0])
	}
	mustQuery(t, db, `PRAGMA unknown_pragma`) // ignored
}

func TestHostVFSDatabase(t *testing.T) {
	fs := hostfs.NewMemFS()
	db, err := Open(NewHostVFS(fs), "host.db", Options{CachePages: 32})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (42)`)
	row, _ := db.QueryRow(`SELECT a FROM t`)
	if row[0].Int() != 42 {
		t.Errorf("a = %v", row[0])
	}
	if ok, _ := fs.Stat("host.db"); ok.Size == 0 {
		t.Error("database file empty on host")
	}
}

func TestSQLSyntaxErrors(t *testing.T) {
	db := openTestDB(t)
	for _, sql := range []string{
		`SELEC 1`,
		`SELECT FROM`,
		`CREATE TABLE`,
		`INSERT INTO`,
		`SELECT * FROM missing_table`,
		`SELECT unknown_col FROM sqlite_nothing`,
		`SELECT 'unterminated`,
	} {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
	var e error
	_, e = db.Exec(`SELECT no_such_fn(1)`)
	if e == nil {
		t.Error("unknown function accepted")
	}
}

func TestErrTxnStates(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Exec(`COMMIT`); !errors.Is(err, ErrTxn) {
		t.Errorf("commit without begin = %v", err)
	}
	if _, err := db.Exec(`ROLLBACK`); !errors.Is(err, ErrTxn) {
		t.Errorf("rollback without begin = %v", err)
	}
	mustExec(t, db, `BEGIN`)
	if _, err := db.Exec(`BEGIN`); !errors.Is(err, ErrTxn) {
		t.Errorf("nested begin = %v", err)
	}
	mustExec(t, db, `COMMIT`)
}

func TestLastInsertRowid(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('x')`)
	if db.LastInsertRowid() != 1 {
		t.Errorf("last rowid = %d", db.LastInsertRowid())
	}
	mustExec(t, db, `INSERT INTO t VALUES ('y')`)
	if db.LastInsertRowid() != 2 {
		t.Errorf("last rowid = %d", db.LastInsertRowid())
	}
}

func TestBlobRoundTripSQL(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE b (data BLOB)`)
	blob := make([]byte, 2000)
	for i := range blob {
		blob[i] = byte(i)
	}
	mustExec(t, db, `INSERT INTO b VALUES (?)`, BlobVal(blob))
	row, _ := db.QueryRow(`SELECT data, length(data) FROM b`)
	if row[1].Int() != 2000 {
		t.Fatalf("blob length = %v", row[1])
	}
	got := row[0].Blob()
	for i := range blob {
		if got[i] != blob[i] {
			t.Fatal("blob corrupted")
		}
	}
}

func TestCrossTypeComparisonInSQL(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v)`) // no affinity
	mustExec(t, db, `INSERT INTO t VALUES (1), (2.5), ('text'), (x'00'), (NULL)`)
	// SQLite ordering: NULL < numeric < text < blob.
	rows := mustQuery(t, db, `SELECT typeof(v) FROM t ORDER BY v`)
	got := rowsAsText(rows)
	want := []string{"null", "integer", "real", "text", "blob"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestGroupConcatAndTotal(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (g TEXT, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES ('a',1),('a',2),('b',3)`)
	rows := mustQuery(t, db, `SELECT g, group_concat(v), total(v) FROM t GROUP BY g ORDER BY g`)
	got := rowsAsText(rows)
	if got[0] != "a|1,2|3" || got[1] != "b|3|3" {
		t.Errorf("rows = %v", got)
	}
}
