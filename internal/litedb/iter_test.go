package litedb

import (
	"reflect"
	"testing"
)

// drainIter collects every row from a streaming cursor.
func drainIter(t *testing.T, it *RowIter) [][]Value {
	t.Helper()
	var out [][]Value
	for it.Next() {
		out = append(out, it.Row())
	}
	if err := it.Close(); err != nil {
		t.Fatalf("iter: %v", err)
	}
	return out
}

// TestRowIterMatchesMaterialised proves stream-vs-materialised equality
// across the statement shapes QueryIter handles, streaming or not.
func TestRowIterMatchesMaterialised(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE items (id INTEGER PRIMARY KEY, grp TEXT, qty INTEGER, price REAL)`)
	for i := 1; i <= 200; i++ {
		mustExec(t, db, `INSERT INTO items (grp, qty, price) VALUES (?, ?, ?)`,
			TextVal(string(rune('a'+i%5))), IntVal(int64(i%17)), RealVal(float64(i)*1.5))
	}
	queries := []string{
		`SELECT id, grp, qty FROM items`,
		`SELECT id, qty*2 FROM items WHERE qty > 5`,
		`SELECT id FROM items WHERE grp = 'b' LIMIT 10`,
		`SELECT id FROM items LIMIT 7 OFFSET 30`,
		`SELECT 1+2, 'x'`,
		// Materialising fallbacks behind the same interface:
		`SELECT grp, COUNT(*), SUM(qty) FROM items GROUP BY grp`,
		`SELECT DISTINCT grp FROM items`,
		`SELECT id, price FROM items ORDER BY price DESC LIMIT 5`,
	}
	for _, q := range queries {
		rows := mustQuery(t, db, q)
		it, err := db.QueryIter(q)
		if err != nil {
			t.Fatalf("QueryIter(%s): %v", q, err)
		}
		if !reflect.DeepEqual(it.Cols(), rows.Cols) {
			t.Errorf("%s: cols %v != %v", q, it.Cols(), rows.Cols)
		}
		got := drainIter(t, it)
		want := rows.All()
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows streamed, %d materialised", q, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s row %d: %v != %v", q, i, got[i], want[i])
			}
		}
	}
}

// TestRowIterBoundedMemory scans a table much larger than the stream
// buffer and asserts the producer never ran ahead more than the channel
// capacity allows.
func TestRowIterBoundedMemory(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (id INTEGER PRIMARY KEY, pad TEXT)`)
	mustExec(t, db, `BEGIN`)
	for i := 0; i < 2000; i++ {
		mustExec(t, db, `INSERT INTO big (pad) VALUES (?)`, TextVal("xxxxxxxxxxxxxxxx"))
	}
	mustExec(t, db, `COMMIT`)

	it, err := db.QueryIter(`SELECT id, pad FROM big`)
	if err != nil {
		t.Fatalf("QueryIter: %v", err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n != 2000 {
		t.Fatalf("streamed %d rows, want 2000", n)
	}
	// The bound is the channel capacity plus one row mid-send and one
	// received but not yet acknowledged.
	if max := it.MaxBuffered(); max > iterChanCap+2 {
		t.Fatalf("stream buffered %d rows, cap is %d", max, iterChanCap)
	}
}

// TestRowIterEarlyClose stops a large scan after a few rows; the
// producer must exit and the handle must serve the next statement.
func TestRowIterEarlyClose(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `BEGIN`)
	for i := 0; i < 1000; i++ {
		mustExec(t, db, `INSERT INTO big (id) VALUES (?)`, IntVal(int64(i+1)))
	}
	mustExec(t, db, `COMMIT`)

	it, err := db.QueryIter(`SELECT id FROM big`)
	if err != nil {
		t.Fatalf("QueryIter: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !it.Next() {
			t.Fatalf("Next returned false at row %d", i)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Handle is free again.
	row, err := db.QueryRow(`SELECT COUNT(*) FROM big`)
	if err != nil || row[0].Int() != 1000 {
		t.Fatalf("post-close query: %v %v", row, err)
	}
}

// TestRowIterError surfaces mid-stream evaluation errors through Err.
func TestRowIterError(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (x TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('a')`)
	it, err := db.QueryIter(`SELECT nosuchfunc(x) FROM t`)
	if err != nil {
		// Errors at prepare time are fine too.
		return
	}
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatalf("expected a streamed error")
	}
	_ = it.Close()
}

// TestStmtHelpers covers the coordinator-facing statement APIs.
func TestStmtHelpers(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	stmts, err := ParseAll(`INSERT INTO kv (k, v) VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.ExecStmt(stmts[0], IntVal(7), TextVal("seven"))
	if err != nil || n != 1 {
		t.Fatalf("ExecStmt: n=%d err=%v", n, err)
	}
	qs, err := ParseAll(`SELECT v FROM kv WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryStmt(qs[0], IntVal(7))
	if err != nil || rows.Len() != 1 || rows.All()[0][0].Text() != "seven" {
		t.Fatalf("QueryStmt: %v err=%v", rows, err)
	}

	if aff, ok := db.ColumnAffinity("kv", "v"); !ok || aff != Text {
		t.Fatalf("ColumnAffinity: %v %v", aff, ok)
	}
	if cols, ok := db.TableColumns("kv"); !ok || len(cols) != 2 || cols[0] != "k" {
		t.Fatalf("TableColumns: %v %v", cols, ok)
	}

	v, err := EvalConst(&Binary{Op: "+", L: &Literal{Val: IntVal(2)}, R: &Param{Idx: 1}}, []Value{IntVal(40)})
	if err != nil || v.Int() != 42 {
		t.Fatalf("EvalConst: %v err=%v", v, err)
	}
	if _, err := EvalConst(&ColRef{Col: "k"}, nil); err == nil {
		t.Fatalf("EvalConst accepted a column reference")
	}
}
