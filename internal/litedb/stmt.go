package litedb

import (
	"math/rand"
	"strings"
)

// Statement-level execution and expression helpers for coordinators that
// parse once and route pre-built statements — the tsql shard service
// classifies, splits and rewrites ASTs at its front door and executes
// them here without re-parsing.

// ExecStmt runs one pre-parsed statement with autocommit handling,
// returning its affected-row count.
func (db *DB) ExecStmt(st Stmt, args ...Value) (int64, error) {
	_, n, err := db.run(st, args)
	return n, err
}

// QueryStmt runs one pre-parsed SELECT (or PRAGMA) and returns its rows.
func (db *DB) QueryStmt(st Stmt, args ...Value) (*Rows, error) {
	rows, _, err := db.run(st, args)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		rows = &Rows{}
	}
	return rows, nil
}

// NewRows builds a materialised result set from already-computed rows
// (merge output of a fan-out coordinator).
func NewRows(cols []string, rows [][]Value) *Rows {
	return &Rows{Cols: cols, rows: rows}
}

// EvalConst evaluates a row-independent expression (literals, parameters,
// operators, scalar functions) against args. Column references fail to
// bind, which is exactly the signal routers use to reject non-constant
// keys.
func EvalConst(e Expr, args []Value) (Value, error) {
	if err := bindExpr(e, &bindScope{}); err != nil {
		return Value{}, err
	}
	return eval(e, &evalCtx{args: args, rng: rand.New(rand.NewSource(1))})
}

// ApplyAffinity coerces v under the column affinity rules (the same
// coercion INSERT applies before storing), so hash routing sees the
// stored representation of a key, not its literal spelling.
func ApplyAffinity(v Value, aff Type) Value { return applyAffinity(v, aff) }

// IsAggregate reports whether the call invokes an aggregate function
// (min/max with multiple arguments are scalar, matching SQLite).
func (c *Call) IsAggregate() bool { return callIsAggregate(c) }

// ColumnAffinity returns the declared affinity of table.col.
func (db *DB) ColumnAffinity(table, col string) (Type, bool) {
	ts, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return Null, false
	}
	ci := ts.colIndex(col)
	if ci < 0 {
		return Null, false
	}
	return ts.Cols[ci].Affinity, true
}

// TableColumns returns the declared column names of a table in order.
func (db *DB) TableColumns(table string) ([]string, bool) {
	ts, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	cols := make([]string, len(ts.Cols))
	for i, c := range ts.Cols {
		cols[i] = c.Name
	}
	return cols, true
}
