package litedb

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent SQL parser.
type parser struct {
	toks   []token
	pos    int
	nParam int
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Stmt, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.is(";") {
			p.pos++
		}
		if p.cur().kind == tkEOF {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.is(";") && p.cur().kind != tkEOF {
			return nil, p.errf("expected ';' after statement")
		}
	}
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("litedb: parse error near %q (offset %d): %s", t.raw, t.pos, fmt.Sprintf(format, args...))
}

// is reports whether the current token matches word (keyword or operator).
func (p *parser) is(word string) bool {
	t := p.cur()
	return (t.kind == tkKeyword || t.kind == tkOp) && t.text == word
}

// eat consumes the current token if it matches.
func (p *parser) eat(word string) bool {
	if p.is(word) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(word string) error {
	if !p.eat(word) {
		return p.errf("expected %q", word)
	}
	return nil
}

// ident consumes an identifier (allowing non-reserved keywords as names).
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tkIdent {
		p.pos++
		return t.text, nil
	}
	// Permit a few keyword-ish names commonly used as identifiers.
	if t.kind == tkKeyword {
		switch t.text {
		case "KEY", "TEMP", "REPLACE", "ROWID":
			p.pos++
			return t.raw, nil
		}
	}
	return "", p.errf("expected identifier")
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.is("CREATE"):
		return p.createStmt()
	case p.is("DROP"):
		return p.dropStmt()
	case p.is("ALTER"):
		return p.alterStmt()
	case p.is("INSERT"), p.is("REPLACE"):
		return p.insertStmt()
	case p.is("SELECT"):
		return p.selectStmt()
	case p.is("UPDATE"):
		return p.updateStmt()
	case p.is("DELETE"):
		return p.deleteStmt()
	case p.is("BEGIN"):
		p.pos++
		p.eat("TRANSACTION")
		return &BeginStmt{}, nil
	case p.is("COMMIT"):
		p.pos++
		p.eat("TRANSACTION")
		return &CommitStmt{}, nil
	case p.is("ROLLBACK"):
		p.pos++
		p.eat("TRANSACTION")
		return &RollbackStmt{}, nil
	case p.is("PRAGMA"):
		return p.pragmaStmt()
	case p.is("ANALYZE"):
		p.pos++
		if p.cur().kind == tkIdent {
			p.pos++ // optional table name, ignored
		}
		return &AnalyzeStmt{}, nil
	case p.is("VACUUM"):
		p.pos++
		return &VacuumStmt{}, nil
	default:
		return nil, p.errf("unsupported statement")
	}
}

// --- DDL ---

func (p *parser) createStmt() (Stmt, error) {
	p.pos++ // CREATE
	p.eat("TEMP")
	p.eat("TEMPORARY")
	unique := p.eat("UNIQUE")
	switch {
	case p.eat("TABLE"):
		if unique {
			return nil, p.errf("UNIQUE TABLE")
		}
		return p.createTable()
	case p.eat("INDEX"):
		return p.createIndex(unique)
	default:
		return nil, p.errf("expected TABLE or INDEX")
	}
}

func (p *parser) ifNotExists() (bool, error) {
	if p.eat("IF") {
		if err := p.expect("NOT"); err != nil {
			return false, err
		}
		if err := p.expect("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) createTable() (Stmt, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name, IfNotExists: ine}
	for {
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, *col)
		if p.eat(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	// Optional WITHOUT ROWID is parsed and ignored (all tables are rowid
	// tables here).
	if p.eat("WITHOUT") {
		if err := p.expect("ROWID"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) columnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	col := &ColumnDef{Name: name, Affinity: Null}
	// Optional type (type names are ordinary identifiers in SQLite).
	if t := p.cur(); t.kind == tkIdent {
		switch strings.ToUpper(t.text) {
		case "INTEGER", "INT", "BOOLEAN", "BIGINT", "SMALLINT":
			col.Affinity = Integer
			p.pos++
		case "TEXT", "VARCHAR", "CHAR", "CLOB", "STRING":
			col.Affinity = Text
			p.pos++
			p.skipTypeArgs()
		case "REAL", "DOUBLE", "FLOAT", "NUMERIC", "DECIMAL":
			col.Affinity = Real
			p.pos++
			p.skipTypeArgs()
		case "BLOB":
			col.Affinity = Blob
			p.pos++
		}
	}
	for {
		switch {
		case p.eat("PRIMARY"):
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			p.eat("ASC")
			p.eat("DESC")
			p.eat("AUTOINCREMENT")
			col.PrimaryKey = true
		case p.eat("NOT"):
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.eat("UNIQUE"):
			col.Unique = true
		case p.eat("DEFAULT"):
			v, err := p.literalValue()
			if err != nil {
				return nil, err
			}
			col.Default = &v
		case p.eat("COLLATE"):
			p.pos++ // collation name, ignored (binary collation only)
		default:
			return col, nil
		}
	}
}

func (p *parser) skipTypeArgs() {
	if p.eat("(") {
		depth := 1
		for depth > 0 && p.cur().kind != tkEOF {
			if p.is("(") {
				depth++
			}
			if p.is(")") {
				depth--
			}
			p.pos++
		}
	}
}

func (p *parser) literalValue() (Value, error) {
	t := p.cur()
	neg := false
	if p.is("-") {
		neg = true
		p.pos++
		t = p.cur()
	}
	switch t.kind {
	case tkInt:
		p.pos++
		v := parseIntLiteral(t.text)
		if neg {
			if v.Type() == Integer {
				return IntVal(-v.Int()), nil
			}
			return RealVal(-v.Real()), nil
		}
		return v, nil
	case tkFloat:
		p.pos++
		f, _ := strconv.ParseFloat(t.text, 64)
		if neg {
			f = -f
		}
		return RealVal(f), nil
	case tkString:
		p.pos++
		return TextVal(t.text), nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return NullVal(), nil
		case "TRUE":
			p.pos++
			return IntVal(1), nil
		case "FALSE":
			p.pos++
			return IntVal(0), nil
		}
	}
	return Value{}, p.errf("expected literal")
}

func (p *parser) createIndex(unique bool) (Stmt, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{Name: name, Table: table, Unique: unique, IfNotExists: ine}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.eat("ASC")
		p.eat("DESC")
		st.Cols = append(st.Cols, col)
		if !p.eat(",") {
			break
		}
	}
	return st, p.expect(")")
}

func (p *parser) dropStmt() (Stmt, error) {
	p.pos++ // DROP
	st := &DropStmt{}
	switch {
	case p.eat("TABLE"):
	case p.eat("INDEX"):
		st.Index = true
	default:
		return nil, p.errf("expected TABLE or INDEX")
	}
	if p.eat("IF") {
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) alterStmt() (Stmt, error) {
	p.pos++ // ALTER
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &AlterStmt{Table: table}
	switch {
	case p.eat("RENAME"):
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
		newName, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Rename = newName
	case p.eat("ADD"):
		p.eat("COLUMN")
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		st.AddCol = col
	default:
		return nil, p.errf("expected RENAME TO or ADD COLUMN")
	}
	return st, nil
}

// --- DML ---

func (p *parser) insertStmt() (Stmt, error) {
	st := &InsertStmt{}
	if p.eat("REPLACE") {
		st.OrReplace = true
	} else {
		p.pos++ // INSERT
		if p.eat("OR") {
			if !p.eat("REPLACE") {
				return nil, p.errf("only INSERT OR REPLACE is supported")
			}
			st.OrReplace = true
		}
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.eat("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.eat(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.eat("VALUES"):
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.eat(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.eat(",") {
				break
			}
		}
	case p.is("SELECT"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Select = sel.(*SelectStmt)
	default:
		return nil, p.errf("expected VALUES or SELECT")
	}
	return st, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	p.pos++ // SELECT
	st := &SelectStmt{}
	if p.eat("DISTINCT") {
		st.Distinct = true
	} else {
		p.eat("ALL")
	}
	for {
		rc := ResultCol{}
		if p.is("*") {
			p.pos++
			rc.Star = true
		} else if p.cur().kind == tkIdent && p.peek().kind == tkOp && p.peek().text == "." &&
			p.pos+2 < len(p.toks) && p.toks[p.pos+2].text == "*" {
			rc.Star = true
			rc.StarTable = p.cur().text
			p.pos += 3
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			rc.Expr = e
			if p.eat("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				rc.Alias = alias
			} else if p.cur().kind == tkIdent {
				rc.Alias = p.cur().text
				p.pos++
			}
		}
		st.Cols = append(st.Cols, rc)
		if !p.eat(",") {
			break
		}
	}
	if p.eat("FROM") {
		refs, err := p.fromClause()
		if err != nil {
			return nil, err
		}
		st.From = refs
	}
	if p.eat("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.eat("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.eat(",") {
				break
			}
		}
		if p.eat("HAVING") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Having = e
		}
	}
	if p.eat("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.eat("DESC") {
				term.Desc = true
			} else {
				p.eat("ASC")
			}
			st.OrderBy = append(st.OrderBy, term)
			if !p.eat(",") {
				break
			}
		}
	}
	if p.eat("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
		if p.eat("OFFSET") {
			o, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Offset = o
		} else if p.eat(",") {
			// LIMIT offset, count
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Offset = st.Limit
			st.Limit = c
		}
	}
	return st, nil
}

func (p *parser) fromClause() ([]TableRef, error) {
	var refs []TableRef
	first, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case p.eat(","):
			r, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.is("JOIN") || p.is("INNER") || p.is("CROSS") || p.is("LEFT"):
			if p.eat("LEFT") {
				return nil, p.errf("LEFT JOIN is not supported")
			}
			p.eat("INNER")
			p.eat("CROSS")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			if p.eat("ON") {
				on, err := p.expr()
				if err != nil {
					return nil, err
				}
				r.On = on
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	r := TableRef{Name: name}
	if p.eat("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		r.Alias = alias
	} else if p.cur().kind == tkIdent {
		r.Alias = p.cur().text
		p.pos++
	}
	return r, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	p.pos++ // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: col, Expr: e})
		if !p.eat(",") {
			break
		}
	}
	if p.eat("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.pos++ // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.eat("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) pragmaStmt() (Stmt, error) {
	p.pos++ // PRAGMA
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &PragmaStmt{Name: strings.ToLower(name)}
	if p.eat("=") {
		v, err := p.pragmaValue()
		if err != nil {
			return nil, err
		}
		st.Value = &v
	} else if p.eat("(") {
		v, err := p.pragmaValue()
		if err != nil {
			return nil, err
		}
		st.Value = &v
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) pragmaValue() (Value, error) {
	if p.cur().kind == tkIdent || p.cur().kind == tkKeyword {
		v := TextVal(strings.ToLower(p.cur().text))
		p.pos++
		return v, nil
	}
	return p.literalValue()
}

// --- expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.eat("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.eat("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.eat("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.predicate()
}

// predicate handles comparisons, IS, IN, LIKE, BETWEEN.
func (p *parser) predicate() (Expr, error) {
	l, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.is("=") || p.is("==") || p.is("!=") || p.is("<>"):
			op := "="
			if p.cur().text == "!=" || p.cur().text == "<>" {
				op = "!="
			}
			p.pos++
			r, err := p.comparison()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.eat("IS"):
			not := p.eat("NOT")
			if p.eat("NULL") {
				l = &IsNull{X: l, Not: not}
			} else {
				r, err := p.comparison()
				if err != nil {
					return nil, err
				}
				op := "IS"
				if not {
					op = "ISNOT"
				}
				l = &Binary{Op: op, L: l, R: r}
			}
		case p.is("IN") || (p.is("NOT") && p.peek().text == "IN"):
			not := p.eat("NOT")
			p.pos++ // IN
			if err := p.expect("("); err != nil {
				return nil, err
			}
			in := &InList{X: l, Not: not}
			if !p.is(")") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.eat(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			l = in
		case p.is("LIKE") || (p.is("NOT") && p.peek().text == "LIKE"):
			not := p.eat("NOT")
			p.pos++ // LIKE
			r, err := p.comparison()
			if err != nil {
				return nil, err
			}
			l = &Like{X: l, Pattern: r, Not: not}
		case p.is("BETWEEN") || (p.is("NOT") && p.peek().text == "BETWEEN"):
			not := p.eat("NOT")
			p.pos++ // BETWEEN
			lo, err := p.comparison()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := p.comparison()
			if err != nil {
				return nil, err
			}
			l = &Between{X: l, Lo: lo, Hi: hi, Not: not}
		default:
			return l, nil
		}
	}
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.bitwise()
	if err != nil {
		return nil, err
	}
	for p.is("<") || p.is("<=") || p.is(">") || p.is(">=") {
		op := p.cur().text
		p.pos++
		r, err := p.bitwise()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) bitwise() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for p.is("<<") || p.is(">>") || p.is("&") || p.is("|") {
		op := p.cur().text
		p.pos++
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.is("+") || p.is("-") {
		op := p.cur().text
		p.pos++
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.concat()
	if err != nil {
		return nil, err
	}
	for p.is("*") || p.is("/") || p.is("%") {
		op := p.cur().text
		p.pos++
		r, err := p.concat()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) concat() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.is("||") {
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.is("-"), p.is("+"), p.is("~"):
		op := p.cur().text
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			return x, nil
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkInt:
		p.pos++
		return &Literal{Val: parseIntLiteral(t.text)}, nil
	case tkFloat:
		p.pos++
		f, _ := strconv.ParseFloat(t.text, 64)
		return &Literal{Val: RealVal(f)}, nil
	case tkString:
		p.pos++
		return &Literal{Val: TextVal(t.text)}, nil
	case tkBlob:
		p.pos++
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, p.errf("bad blob literal: %v", err)
		}
		return &Literal{Val: BlobVal(b)}, nil
	case tkParam:
		p.pos++
		p.nParam++
		return &Param{Idx: p.nParam}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Literal{Val: NullVal()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: IntVal(1)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: IntVal(0)}, nil
		case "CASE":
			return p.caseExpr()
		case "CAST":
			return p.castExpr()
		case "NOT":
			p.pos++
			x, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: "NOT", X: x}, nil
		case "ROWID":
			p.pos++
			return &ColRef{Col: "rowid"}, nil
		case "REPLACE": // replace() function
			return p.callExpr()
		}
		return nil, p.errf("unexpected keyword %s", t.text)
	case tkIdent:
		// Function call?
		if p.peek().kind == tkOp && p.peek().text == "(" {
			return p.callExpr()
		}
		// table.column?
		if p.peek().kind == tkOp && p.peek().text == "." {
			tbl := t.text
			p.pos += 2
			col, err := p.ident()
			if err != nil {
				// t.rowid
				if p.is("ROWID") {
					p.pos++
					return &ColRef{Table: tbl, Col: "rowid"}, nil
				}
				return nil, err
			}
			return &ColRef{Table: tbl, Col: col}, nil
		}
		p.pos++
		return &ColRef{Col: t.text}, nil
	case tkOp:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token")
}

func (p *parser) callExpr() (Expr, error) {
	name := strings.ToLower(p.cur().raw)
	p.pos++
	if err := p.expect("("); err != nil {
		return nil, err
	}
	call := &Call{Name: name}
	if p.is("*") {
		p.pos++
		call.Star = true
		return call, p.expect(")")
	}
	p.eat("DISTINCT") // aggregate DISTINCT is parsed but not deduplicated
	if !p.is(")") {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if !p.eat(",") {
				break
			}
		}
	}
	return call, p.expect(")")
}

func (p *parser) caseExpr() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	if !p.is("WHEN") {
		op, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.eat("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Res: res})
	}
	if p.eat("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	return ce, p.expect("END")
}

func (p *parser) castExpr() (Expr, error) {
	p.pos++ // CAST
	if err := p.expect("("); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	tn, err := p.ident()
	if err != nil {
		return nil, err
	}
	var to Type
	switch strings.ToUpper(tn) {
	case "INTEGER", "INT", "BIGINT":
		to = Integer
	case "TEXT", "VARCHAR", "CHAR":
		to = Text
		p.skipTypeArgs()
	case "REAL", "DOUBLE", "FLOAT", "NUMERIC":
		to = Real
	case "BLOB":
		to = Blob
	default:
		return nil, p.errf("unsupported cast type %s", tn)
	}
	return &Cast{X: x, To: to}, p.expect(")")
}
