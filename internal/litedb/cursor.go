package litedb

// Cursor iterates a tree in key order. It stores (page, index) rather than
// pinning pages, so it stays valid across cache evictions; mutating the
// tree while a cursor is open invalidates it (the executor materialises
// target rowids before UPDATE/DELETE for this reason).
type Cursor struct {
	t     *Tree
	pgNo  uint32
	idx   int
	valid bool
}

// Cursor returns a cursor positioned at the first entry.
func (t *Tree) Cursor() (*Cursor, error) {
	c := &Cursor{t: t}
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return nil, err
		}
		if isLeaf(pg.data) {
			t.pg.Unpin(pg)
			c.pgNo = pgNo
			c.idx = 0
			c.valid = true
			return c, c.skipEmpty()
		}
		var child uint32
		if cellCount(pg.data) == 0 {
			child = rightPtr(pg.data)
		} else {
			cb := cellBytes(pg.data, 0)
			if t.isIndex {
				child, _, _ = parseIndexInteriorCell(cb)
			} else {
				child, _, _ = parseTableInteriorCell(cb)
			}
		}
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// CursorGE returns a cursor at the first entry with rowid >= target
// (table trees).
func (t *Tree) CursorGE(rowid int64) (*Cursor, error) {
	return t.seek(rowid, nil)
}

// CursorKeyGE returns a cursor at the first entry with key >= target
// (index trees).
func (t *Tree) CursorKeyGE(key []byte) (*Cursor, error) {
	return t.seek(0, key)
}

func (t *Tree) seek(rowid int64, key []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	pgNo := t.root
	for {
		pg, err := t.pg.Get(pgNo)
		if err != nil {
			return nil, err
		}
		if isLeaf(pg.data) {
			idx, _ := t.leafFind(pg.data, rowid, key)
			t.pg.Unpin(pg)
			c.pgNo = pgNo
			c.idx = idx
			c.valid = true
			return c, c.skipEmpty()
		}
		_, child := t.interiorFind(pg.data, rowid, key)
		t.pg.Unpin(pg)
		pgNo = child
	}
}

// skipEmpty advances past exhausted leaves (including empty ones left by
// lazy deletion).
func (c *Cursor) skipEmpty() error {
	for c.valid {
		pg, err := c.t.pg.Get(c.pgNo)
		if err != nil {
			return err
		}
		n := cellCount(pg.data)
		next := rightPtr(pg.data)
		c.t.pg.Unpin(pg)
		if c.idx < n {
			return nil
		}
		if next == 0 {
			c.valid = false
			return nil
		}
		c.pgNo = next
		c.idx = 0
	}
	return nil
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Next advances to the following entry.
func (c *Cursor) Next() error {
	if !c.valid {
		return nil
	}
	c.idx++
	return c.skipEmpty()
}

// Rowid returns the current table-tree rowid.
func (c *Cursor) Rowid() int64 {
	pg, err := c.t.pg.Get(c.pgNo)
	if err != nil {
		return 0
	}
	defer c.t.pg.Unpin(pg)
	r, _, _, _, _ := parseTableLeafCell(cellBytes(pg.data, c.idx))
	return r
}

// Payload returns a copy of the current table-tree payload.
func (c *Cursor) Payload() ([]byte, error) {
	pg, err := c.t.pg.Get(c.pgNo)
	if err != nil {
		return nil, err
	}
	_, total, inline, ovf, _ := parseTableLeafCell(cellBytes(pg.data, c.idx))
	out := append([]byte(nil), inline...)
	c.t.pg.Unpin(pg)
	if total > maxLocal {
		return c.t.readOverflow(out, ovf)
	}
	return out, nil
}

// Key returns a copy of the current index-tree key.
func (c *Cursor) Key() ([]byte, error) {
	pg, err := c.t.pg.Get(c.pgNo)
	if err != nil {
		return nil, err
	}
	defer c.t.pg.Unpin(pg)
	k, _ := parseIndexLeafCell(cellBytes(pg.data, c.idx))
	return append([]byte(nil), k...), nil
}
