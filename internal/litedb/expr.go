package litedb

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// evalCtx carries the row scope and parameters during evaluation.
type evalCtx struct {
	rows    [][]Value // one row per FROM source
	rowids  []int64
	args    []Value
	aggVals []Value // aggregate results during finalisation
	aggMode bool
	rng     *rand.Rand
}

// errEval reports an evaluation failure.
func errEval(format string, args ...any) error {
	return fmt.Errorf("litedb: %s", fmt.Sprintf(format, args...))
}

// bindScope names the FROM sources for column resolution.
type bindScope struct {
	names   []string // alias or table name per source
	schemas []*TableSchema
}

// bindExpr resolves every ColRef in e against the scope.
func bindExpr(e Expr, sc *bindScope) error {
	switch x := e.(type) {
	case nil, *Literal, *Param:
		return nil
	case *ColRef:
		return sc.resolve(x)
	case *Unary:
		return bindExpr(x.X, sc)
	case *Binary:
		if err := bindExpr(x.L, sc); err != nil {
			return err
		}
		return bindExpr(x.R, sc)
	case *Like:
		if err := bindExpr(x.X, sc); err != nil {
			return err
		}
		return bindExpr(x.Pattern, sc)
	case *InList:
		if err := bindExpr(x.X, sc); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := bindExpr(it, sc); err != nil {
				return err
			}
		}
		return nil
	case *Between:
		for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
			if err := bindExpr(sub, sc); err != nil {
				return err
			}
		}
		return nil
	case *IsNull:
		return bindExpr(x.X, sc)
	case *Call:
		for _, a := range x.Args {
			if err := bindExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	case *CaseExpr:
		if err := bindExpr(x.Operand, sc); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := bindExpr(w.Cond, sc); err != nil {
				return err
			}
			if err := bindExpr(w.Res, sc); err != nil {
				return err
			}
		}
		return bindExpr(x.Else, sc)
	case *Cast:
		return bindExpr(x.X, sc)
	default:
		return errEval("unknown expression %T", e)
	}
}

func (sc *bindScope) resolve(cr *ColRef) error {
	if cr.bound {
		return nil
	}
	found := false
	for i, name := range sc.names {
		if cr.Table != "" && !strings.EqualFold(cr.Table, name) {
			continue
		}
		schema := sc.schemas[i]
		if strings.EqualFold(cr.Col, "rowid") ||
			(schema.RowidPK >= 0 && strings.EqualFold(cr.Col, schema.Cols[schema.RowidPK].Name)) {
			if found {
				return errEval("ambiguous column %s", cr.Col)
			}
			cr.src, cr.col, found = i, -1, true
			continue
		}
		for ci, col := range schema.Cols {
			if strings.EqualFold(col.Name, cr.Col) {
				if found {
					return errEval("ambiguous column %s", cr.Col)
				}
				cr.src, cr.col, found = i, ci, true
				break
			}
		}
	}
	if !found {
		return errEval("no such column: %s", colRefName(cr))
	}
	cr.bound = true
	return nil
}

func colRefName(cr *ColRef) string {
	if cr.Table != "" {
		return cr.Table + "." + cr.Col
	}
	return cr.Col
}

// eval computes the value of e in ctx.
func eval(e Expr, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Idx > len(ctx.args) {
			return Value{}, errEval("missing argument %d", x.Idx)
		}
		return ctx.args[x.Idx-1], nil
	case *ColRef:
		if !x.bound {
			return Value{}, errEval("unbound column %s", colRefName(x))
		}
		if x.col == -1 {
			return IntVal(ctx.rowids[x.src]), nil
		}
		row := ctx.rows[x.src]
		if x.col >= len(row) {
			return NullVal(), nil // ALTER TABLE ADD COLUMN: old rows are short
		}
		return row[x.col], nil
	case *Unary:
		return evalUnary(x, ctx)
	case *Binary:
		return evalBinary(x, ctx)
	case *Like:
		return evalLike(x, ctx)
	case *InList:
		return evalIn(x, ctx)
	case *Between:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Value{}, err
		}
		lo, err := eval(x.Lo, ctx)
		if err != nil {
			return Value{}, err
		}
		hi, err := eval(x.Hi, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return NullVal(), nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return boolVal(in), nil
	case *IsNull:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return boolVal(res), nil
	case *Call:
		if ctx.aggMode && isAggregate(x.Name) {
			return ctx.aggVals[x.aggIdx], nil
		}
		return evalCall(x, ctx)
	case *CaseExpr:
		return evalCase(x, ctx)
	case *Cast:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Value{}, err
		}
		return castTo(v, x.To), nil
	default:
		return Value{}, errEval("cannot evaluate %T", e)
	}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func evalUnary(x *Unary, ctx *evalCtx) (Value, error) {
	v, err := eval(x.X, ctx)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() && x.Op != "NOT" {
		return NullVal(), nil
	}
	switch x.Op {
	case "-":
		if v.Type() == Integer {
			return IntVal(-v.Int()), nil
		}
		return RealVal(-v.Real()), nil
	case "~":
		return IntVal(^v.Int()), nil
	case "NOT":
		if v.IsNull() {
			return NullVal(), nil
		}
		return boolVal(!v.Bool()), nil
	default:
		return Value{}, errEval("bad unary %s", x.Op)
	}
}

func evalBinary(x *Binary, ctx *evalCtx) (Value, error) {
	// Three-valued AND/OR evaluate lazily.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := eval(x.L, ctx)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "AND" {
			if !l.IsNull() && !l.Bool() {
				return boolVal(false), nil
			}
			r, err := eval(x.R, ctx)
			if err != nil {
				return Value{}, err
			}
			switch {
			case !r.IsNull() && !r.Bool():
				return boolVal(false), nil
			case l.IsNull() || r.IsNull():
				return NullVal(), nil
			default:
				return boolVal(true), nil
			}
		}
		if !l.IsNull() && l.Bool() {
			return boolVal(true), nil
		}
		r, err := eval(x.R, ctx)
		if err != nil {
			return Value{}, err
		}
		switch {
		case !r.IsNull() && r.Bool():
			return boolVal(true), nil
		case l.IsNull() || r.IsNull():
			return NullVal(), nil
		default:
			return boolVal(false), nil
		}
	}

	l, err := eval(x.L, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, ctx)
	if err != nil {
		return Value{}, err
	}

	switch x.Op {
	case "IS":
		return boolVal(Compare(l, r) == 0), nil
	case "ISNOT":
		return boolVal(Compare(l, r) != 0), nil
	}
	if l.IsNull() || r.IsNull() {
		return NullVal(), nil
	}
	switch x.Op {
	case "=":
		return boolVal(Compare(l, r) == 0), nil
	case "!=":
		return boolVal(Compare(l, r) != 0), nil
	case "<":
		return boolVal(Compare(l, r) < 0), nil
	case "<=":
		return boolVal(Compare(l, r) <= 0), nil
	case ">":
		return boolVal(Compare(l, r) > 0), nil
	case ">=":
		return boolVal(Compare(l, r) >= 0), nil
	case "||":
		return TextVal(l.Text() + r.Text()), nil
	case "+", "-", "*":
		if l.Type() == Integer && r.Type() == Integer {
			a, b := l.Int(), r.Int()
			switch x.Op {
			case "+":
				return IntVal(a + b), nil
			case "-":
				return IntVal(a - b), nil
			default:
				return IntVal(a * b), nil
			}
		}
		a, b := l.Real(), r.Real()
		switch x.Op {
		case "+":
			return RealVal(a + b), nil
		case "-":
			return RealVal(a - b), nil
		default:
			return RealVal(a * b), nil
		}
	case "/":
		if l.Type() == Integer && r.Type() == Integer {
			if r.Int() == 0 {
				return NullVal(), nil
			}
			return IntVal(l.Int() / r.Int()), nil
		}
		if r.Real() == 0 {
			return NullVal(), nil
		}
		return RealVal(l.Real() / r.Real()), nil
	case "%":
		if r.Int() == 0 {
			return NullVal(), nil
		}
		return IntVal(l.Int() % r.Int()), nil
	case "<<":
		return IntVal(l.Int() << uint64(r.Int()&63)), nil
	case ">>":
		return IntVal(l.Int() >> uint64(r.Int()&63)), nil
	case "&":
		return IntVal(l.Int() & r.Int()), nil
	case "|":
		return IntVal(l.Int() | r.Int()), nil
	default:
		return Value{}, errEval("bad operator %s", x.Op)
	}
}

func evalLike(x *Like, ctx *evalCtx) (Value, error) {
	v, err := eval(x.X, ctx)
	if err != nil {
		return Value{}, err
	}
	pat, err := eval(x.Pattern, ctx)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || pat.IsNull() {
		return NullVal(), nil
	}
	m := likeMatch(pat.Text(), v.Text())
	if x.Not {
		m = !m
	}
	return boolVal(m), nil
}

// likeMatch implements SQLite LIKE: '%' any sequence, '_' any character,
// ASCII case-insensitive.
func likeMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	return likeRec(p, t)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

func evalIn(x *InList, ctx *evalCtx) (Value, error) {
	v, err := eval(x.X, ctx)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return NullVal(), nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := eval(item, ctx)
		if err != nil {
			return Value{}, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if Compare(v, iv) == 0 {
			return boolVal(!x.Not), nil
		}
	}
	if sawNull {
		return NullVal(), nil
	}
	return boolVal(x.Not), nil
}

func evalCase(x *CaseExpr, ctx *evalCtx) (Value, error) {
	var operand Value
	hasOperand := x.Operand != nil
	if hasOperand {
		var err error
		operand, err = eval(x.Operand, ctx)
		if err != nil {
			return Value{}, err
		}
	}
	for _, w := range x.Whens {
		c, err := eval(w.Cond, ctx)
		if err != nil {
			return Value{}, err
		}
		matched := false
		if hasOperand {
			matched = !c.IsNull() && !operand.IsNull() && Compare(operand, c) == 0
		} else {
			matched = !c.IsNull() && c.Bool()
		}
		if matched {
			return eval(w.Res, ctx)
		}
	}
	if x.Else != nil {
		return eval(x.Else, ctx)
	}
	return NullVal(), nil
}

func castTo(v Value, to Type) Value {
	if v.IsNull() {
		return v
	}
	switch to {
	case Integer:
		return IntVal(v.Int())
	case Real:
		return RealVal(v.Real())
	case Text:
		return TextVal(v.Text())
	case Blob:
		if v.Type() == Blob {
			return v
		}
		return BlobVal([]byte(v.Text()))
	default:
		return v
	}
}

// applyAffinity coerces an inserted value toward a column affinity,
// following SQLite's (lossless-only) rules.
func applyAffinity(v Value, aff Type) Value {
	if v.IsNull() || aff == Null {
		return v
	}
	switch aff {
	case Integer:
		switch v.Type() {
		case Integer:
			return v
		case Real:
			if f := v.Real(); f == math.Trunc(f) && !math.IsInf(f, 0) && f >= -9.2e18 && f <= 9.2e18 {
				return IntVal(int64(f))
			}
			return v
		case Text:
			s := strings.TrimSpace(v.Text())
			var iv int64
			var fv float64
			if _, err := fmt.Sscanf(s, "%d", &iv); err == nil && fmt.Sprint(iv) == s {
				return IntVal(iv)
			}
			if _, err := fmt.Sscanf(s, "%g", &fv); err == nil {
				return RealVal(fv)
			}
			return v
		}
	case Real:
		switch v.Type() {
		case Integer:
			return RealVal(v.Real())
		case Text:
			s := strings.TrimSpace(v.Text())
			var fv float64
			if _, err := fmt.Sscanf(s, "%g", &fv); err == nil {
				return RealVal(fv)
			}
		}
	case Text:
		switch v.Type() {
		case Integer, Real:
			return TextVal(v.Text())
		}
	}
	return v
}

// --- functions ---

func isAggregate(name string) bool {
	switch name {
	case "count", "sum", "avg", "total", "min", "max", "group_concat":
		return true
	}
	return false
}

// Note: min/max with multiple arguments are scalar functions; with one
// argument they are aggregates (matching SQLite).
func callIsAggregate(c *Call) bool {
	if !isAggregate(c.Name) {
		return false
	}
	if (c.Name == "min" || c.Name == "max") && len(c.Args) > 1 {
		return false
	}
	return true
}

func evalCall(x *Call, ctx *evalCtx) (Value, error) {
	if callIsAggregate(x) {
		return Value{}, errEval("aggregate %s() used outside aggregation", x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, ctx)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "length":
		if args[0].IsNull() {
			return NullVal(), nil
		}
		if args[0].Type() == Blob {
			return IntVal(int64(len(args[0].Blob()))), nil
		}
		return IntVal(int64(len(args[0].Text()))), nil
	case "abs":
		if args[0].IsNull() {
			return NullVal(), nil
		}
		if args[0].Type() == Integer {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return IntVal(v), nil
		}
		return RealVal(math.Abs(args[0].Real())), nil
	case "upper":
		return TextVal(strings.ToUpper(args[0].Text())), nil
	case "lower":
		return TextVal(strings.ToLower(args[0].Text())), nil
	case "substr", "substring":
		return substr(args)
	case "coalesce", "ifnull":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return NullVal(), nil
	case "nullif":
		if len(args) == 2 && Compare(args[0], args[1]) == 0 {
			return NullVal(), nil
		}
		return args[0], nil
	case "typeof":
		return TextVal(strings.ToLower(args[0].Type().String())), nil
	case "min", "max":
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return NullVal(), nil
			}
			c := Compare(a, best)
			if (x.Name == "min" && c < 0) || (x.Name == "max" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "random":
		return IntVal(ctx.rng.Int63() - ctx.rng.Int63()), nil
	case "randomblob":
		n := int(args[0].Int())
		if n < 1 {
			n = 1
		}
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(ctx.rng.Intn(256))
		}
		return BlobVal(b), nil
	case "zeroblob":
		n := int(args[0].Int())
		if n < 0 {
			n = 0
		}
		return BlobVal(make([]byte, n)), nil
	case "hex":
		src := args[0].Blob()
		if src == nil {
			src = []byte(args[0].Text())
		}
		const digits = "0123456789ABCDEF"
		out := make([]byte, 2*len(src))
		for i, b := range src {
			out[2*i] = digits[b>>4]
			out[2*i+1] = digits[b&0xF]
		}
		return TextVal(string(out)), nil
	case "replace":
		return TextVal(strings.ReplaceAll(args[0].Text(), args[1].Text(), args[2].Text())), nil
	case "instr":
		return IntVal(int64(strings.Index(args[0].Text(), args[1].Text()) + 1)), nil
	case "round":
		if args[0].IsNull() {
			return NullVal(), nil
		}
		digits := 0
		if len(args) > 1 {
			digits = int(args[1].Int())
		}
		scale := math.Pow10(digits)
		return RealVal(math.Round(args[0].Real()*scale) / scale), nil
	case "changes", "last_insert_rowid":
		return Value{}, errEval("%s() must be called through the DB API", x.Name)
	default:
		return Value{}, errEval("no such function: %s", x.Name)
	}
}

func substr(args []Value) (Value, error) {
	if args[0].IsNull() {
		return NullVal(), nil
	}
	s := args[0].Text()
	start := int(args[1].Int())
	length := len(s)
	if len(args) > 2 {
		length = int(args[2].Int())
	}
	// SQLite 1-based semantics with negative start counting from the end.
	if start < 0 {
		start = len(s) + start + 1
		if start < 1 {
			length += start - 1
			start = 1
		}
	}
	if start < 1 {
		start = 1
	}
	i := start - 1
	if i >= len(s) || length <= 0 {
		return TextVal(""), nil
	}
	end := i + length
	if end > len(s) {
		end = len(s)
	}
	return TextVal(s[i:end]), nil
}

// --- aggregates ---

type aggAcc struct {
	call    *Call
	count   int64
	sumI    int64
	sumF    float64
	sawReal bool
	sawAny  bool
	minV    Value
	maxV    Value
	concat  []string
}

func (a *aggAcc) step(ctx *evalCtx) error {
	if a.call.Star {
		a.count++
		return nil
	}
	v, err := eval(a.call.Args[0], ctx)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.count++
	switch a.call.Name {
	case "sum", "avg", "total":
		if v.Type() == Real {
			a.sawReal = true
		}
		a.sumI += v.Int()
		a.sumF += v.Real()
	case "min":
		if !a.sawAny || Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case "max":
		if !a.sawAny || Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	case "group_concat":
		a.concat = append(a.concat, v.Text())
	}
	a.sawAny = true
	return nil
}

func (a *aggAcc) result() Value {
	switch a.call.Name {
	case "count":
		return IntVal(a.count)
	case "sum":
		if !a.sawAny {
			return NullVal()
		}
		if a.sawReal {
			return RealVal(a.sumF)
		}
		return IntVal(a.sumI)
	case "total":
		return RealVal(a.sumF)
	case "avg":
		if a.count == 0 {
			return NullVal()
		}
		return RealVal(a.sumF / float64(a.count))
	case "min":
		if !a.sawAny {
			return NullVal()
		}
		return a.minV
	case "max":
		if !a.sawAny {
			return NullVal()
		}
		return a.maxV
	case "group_concat":
		if !a.sawAny {
			return NullVal()
		}
		return TextVal(strings.Join(a.concat, ","))
	default:
		return NullVal()
	}
}

// collectAggregates walks expressions, assigning aggIdx to each aggregate
// call and returning the accumulator prototypes.
func collectAggregates(exprs []Expr) []*aggAcc {
	var accs []*aggAcc
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Call:
			if callIsAggregate(x) {
				x.aggIdx = len(accs)
				accs = append(accs, &aggAcc{call: x})
				return // aggregate args are evaluated per-row by step
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Like:
			walk(x.X)
			walk(x.Pattern)
		case *InList:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *IsNull:
			walk(x.X)
		case *CaseExpr:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Res)
			}
			walk(x.Else)
		case *Cast:
			walk(x.X)
		}
	}
	for _, e := range exprs {
		if e != nil {
			walk(e)
		}
	}
	return accs
}
