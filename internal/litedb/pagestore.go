package litedb

import (
	"fmt"

	"twine/internal/wasm"
)

// PageStore supplies the pager's cache buffers. The native store hands out
// plain Go slices; the sandbox store places buffers inside a WebAssembly
// linear memory, so every page acquisition pays the sandbox's
// bounds-checked access (and, when the linear memory carries an enclave
// touch hook, the EPC residency cost). This is how the reproduction
// imposes the "SQLite compiled to Wasm" memory tax on the same code paths
// (DESIGN.md §1).
type PageStore interface {
	// Page returns the buffer backing cache slot i, charging one access.
	Page(slot int) []byte
	// Cap returns the number of slots.
	Cap() int
}

// TouchStore wraps a PageStore, invoking a hook on every slot access.
// Enclave variants use it to charge page-cache residency against the EPC.
type TouchStore struct {
	Inner  PageStore
	OnPage func(slot int)
}

// NewTouchStore wraps inner.
func NewTouchStore(inner PageStore, onPage func(slot int)) PageStore {
	return &TouchStore{Inner: inner, OnPage: onPage}
}

// Page implements PageStore.
func (s *TouchStore) Page(slot int) []byte {
	if s.OnPage != nil {
		s.OnPage(slot)
	}
	return s.Inner.Page(slot)
}

// Cap implements PageStore.
func (s *TouchStore) Cap() int { return s.Inner.Cap() }

// nativeStore allocates page buffers on the Go heap.
type nativeStore struct {
	bufs [][]byte
}

// NewNativeStore returns a PageStore of n direct buffers.
func NewNativeStore(n int) PageStore {
	return &nativeStore{bufs: make([][]byte, n)}
}

func (s *nativeStore) Page(slot int) []byte {
	if s.bufs[slot] == nil {
		s.bufs[slot] = make([]byte, PageSize)
	}
	return s.bufs[slot]
}

func (s *nativeStore) Cap() int { return len(s.bufs) }

// sandboxStore places page buffers in a Wasm linear memory.
type sandboxStore struct {
	mem   *wasm.Memory
	base  uint32
	slots int
}

// NewSandboxStore maps n page slots starting at base inside mem. The
// memory must be large enough; grow it before calling.
func NewSandboxStore(mem *wasm.Memory, base uint32, n int) (PageStore, error) {
	need := uint64(base) + uint64(n)*PageSize
	if need > uint64(mem.Len()) {
		return nil, fmt.Errorf("litedb: sandbox store needs %d bytes, memory has %d", need, mem.Len())
	}
	return &sandboxStore{mem: mem, base: base, slots: n}, nil
}

func (s *sandboxStore) Page(slot int) []byte {
	b, err := s.mem.Bytes(s.base+uint32(slot)*PageSize, PageSize)
	if err != nil {
		// Unreachable by construction; fail loudly rather than corrupt.
		panic(fmt.Sprintf("litedb: sandbox store slot %d: %v", slot, err))
	}
	return b
}

func (s *sandboxStore) Cap() int { return s.slots }
