package litedb

// AST node definitions for the supported SQL dialect (a practical subset
// of SQLite's: DDL, DML, joins, aggregates, ORDER/GROUP/LIMIT, PRAGMA,
// ANALYZE, VACUUM and transactions).

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// ColumnDef is one column in CREATE TABLE / ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	Affinity   Type // INTEGER/REAL/TEXT/BLOB (Null = no affinity)
	PrimaryKey bool
	NotNull    bool
	Unique     bool
	Default    *Value
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name        string
	Table       string
	Cols        []string
	Unique      bool
	IfNotExists bool
}

// DropStmt is DROP TABLE / DROP INDEX.
type DropStmt struct {
	Index    bool
	Name     string
	IfExists bool
}

// AlterStmt is ALTER TABLE ... RENAME TO / ADD COLUMN.
type AlterStmt struct {
	Table  string
	Rename string     // non-empty for RENAME TO
	AddCol *ColumnDef // non-nil for ADD COLUMN
}

// InsertStmt is INSERT INTO (with VALUES or SELECT source).
type InsertStmt struct {
	Table     string
	Cols      []string
	Rows      [][]Expr
	Select    *SelectStmt
	OrReplace bool
}

// ResultCol is one SELECT output column.
type ResultCol struct {
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// TableRef is one FROM item.
type TableRef struct {
	Name  string
	Alias string
	// On is the join condition attaching this item to the previous ones
	// (nil for the first item or comma/cross joins).
	On Expr
}

// OrderTerm is one ORDER BY term.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// SelectStmt is SELECT.
type SelectStmt struct {
	Distinct bool
	Cols     []ResultCol
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderTerm
	Limit    Expr
	Offset   Expr
}

// UpdateStmt is UPDATE.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM.
type DeleteStmt struct {
	Table string
	Where Expr
}

// BeginStmt, CommitStmt, RollbackStmt control transactions.
type BeginStmt struct{}

// CommitStmt commits.
type CommitStmt struct{}

// RollbackStmt rolls back.
type RollbackStmt struct{}

// PragmaStmt is PRAGMA name [= value] / PRAGMA name(value).
type PragmaStmt struct {
	Name  string
	Value *Value
}

// AnalyzeStmt gathers statistics (paper's Speedtest1 test 990).
type AnalyzeStmt struct{}

// VacuumStmt sweeps the database.
type VacuumStmt struct{}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropStmt) stmt()        {}
func (*AlterStmt) stmt()       {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*PragmaStmt) stmt()      {}
func (*AnalyzeStmt) stmt()     {}
func (*VacuumStmt) stmt()      {}

// Expr is any expression node.
type Expr interface{ expr() }

// Literal is a constant.
type Literal struct{ Val Value }

// Param is a ? placeholder (1-based position).
type Param struct{ Idx int }

// ColRef references table.column (Table may be empty).
type ColRef struct {
	Table string
	Col   string
	// Resolved at bind time: source index and column index; col == -1
	// denotes the rowid.
	src, col int
	bound    bool
}

// Unary is -x, +x, ~x or NOT x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator.
type Binary struct {
	Op   string
	L, R Expr
}

// Like is x [NOT] LIKE pattern.
type Like struct {
	X, Pattern Expr
	Not        bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a function or aggregate invocation.
type Call struct {
	Name string // lowercase
	Args []Expr
	Star bool // COUNT(*)
	// aggIdx is assigned during aggregate planning.
	aggIdx int
}

// CaseExpr is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type CaseExpr struct {
	Operand Expr
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN arm.
type WhenClause struct {
	Cond Expr
	Res  Expr
}

// Cast is CAST(x AS type).
type Cast struct {
	X  Expr
	To Type
}

func (*Literal) expr()  {}
func (*Param) expr()    {}
func (*ColRef) expr()   {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}
func (*Like) expr()     {}
func (*InList) expr()   {}
func (*Between) expr()  {}
func (*IsNull) expr()   {}
func (*Call) expr()     {}
func (*CaseExpr) expr() {}
func (*Cast) expr()     {}
