package litedb

import (
	"fmt"

	"twine/internal/wasi"
	"twine/internal/wasm"
)

// WASIVFS routes database I/O through the WASI layer exactly as a Wasm
// guest would: paths and buffers are marshalled through the instance's
// linear memory and every operation enters the registered
// wasi_snapshot_preview1 host functions (fd_seek + fd_read + fd_write +
// fd_sync + ...). In TWINE's configuration those functions are backed by
// the Intel protected file system inside the enclave; in the WAMR baseline
// they forward to untrusted POSIX.
//
// This is the mechanism by which the reproduction imposes the syscall
// marshalling cost of "SQLite compiled to Wasm" on litedb (DESIGN.md §1).
type WASIVFS struct {
	imp *wasm.ImportObject
	in  *wasm.Instance

	// Scratch layout inside guest memory:
	//   base+0    iovec (8 B)
	//   base+16   result slots (u32/u64)
	//   base+128  path buffer (pathCap)
	//   base+4096 data window (dataCap)
	base    uint32
	pathCap uint32
	dataCap uint32

	dirFD uint32 // preopened directory descriptor (3)

	fns map[string]wasm.HostFunc
}

const (
	wvIovec  = 0
	wvResult = 16
	wvPath   = 128
	wvData   = 4096
)

// NewWASIVFS builds a VFS over the WASI host functions registered in imp,
// using [base, base+size) of the instance's linear memory as its marshal
// window. size must be at least 8 KiB; the data window is size-4096 bytes.
func NewWASIVFS(imp *wasm.ImportObject, in *wasm.Instance, base, size uint32) (*WASIVFS, error) {
	if size < 8192 {
		return nil, fmt.Errorf("litedb: WASI VFS scratch too small (%d)", size)
	}
	if err := in.Memory().Range(base, size); err != nil {
		return nil, fmt.Errorf("litedb: WASI VFS scratch out of bounds: %w", err)
	}
	v := &WASIVFS{
		imp: imp, in: in, base: base,
		pathCap: wvData - wvPath,
		dataCap: size - wvData,
		dirFD:   3,
		fns:     make(map[string]wasm.HostFunc),
	}
	for _, name := range []string{
		"path_open", "path_unlink_file", "path_filestat_get",
		"fd_read", "fd_write", "fd_seek", "fd_sync", "fd_close",
		"fd_filestat_get", "fd_filestat_set_size",
	} {
		fn, ok := imp.Func(wasi.ModuleName, name)
		if !ok {
			return nil, fmt.Errorf("litedb: WASI import %s not registered", name)
		}
		v.fns[name] = fn
	}
	return v, nil
}

// call invokes a registered WASI function and returns its errno.
func (v *WASIVFS) call(name string, args ...uint64) (wasi.Errno, error) {
	res, err := v.fns[name].Fn(v.in, args)
	if err != nil {
		return 0, err
	}
	if len(res) == 0 {
		return 0, nil
	}
	return wasi.Errno(uint16(res[0])), nil
}

func (v *WASIVFS) putPath(name string) (ptr, n uint32, err error) {
	if uint32(len(name)) > v.pathCap {
		return 0, 0, fmt.Errorf("litedb: path too long: %s", name)
	}
	buf, err := v.in.Memory().Bytes(v.base+wvPath, uint32(len(name)))
	if err != nil {
		return 0, 0, err
	}
	copy(buf, name)
	return v.base + wvPath, uint32(len(name)), nil
}

func wasiErr(op string, errno wasi.Errno) error {
	return fmt.Errorf("litedb: wasi %s: %v", op, errno)
}

// Open implements VFS.
func (v *WASIVFS) Open(name string, create bool) (DBFile, error) {
	ptr, n, err := v.putPath(name)
	if err != nil {
		return nil, err
	}
	var oflags uint64
	if create {
		oflags = 1 // O_CREAT
	}
	errno, err := v.call("path_open",
		uint64(v.dirFD), 0, uint64(ptr), uint64(n), oflags,
		uint64(wasi.RightsAll), uint64(wasi.RightsAll), 0,
		uint64(v.base+wvResult))
	if err != nil {
		return nil, err
	}
	if errno == wasi.ErrnoNoent && !create {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if errno != wasi.ErrnoSuccess {
		return nil, wasiErr("path_open", errno)
	}
	fd, err := v.in.Memory().ReadU32(v.base + wvResult)
	if err != nil {
		return nil, err
	}
	return &wasiDBFile{v: v, fd: fd}, nil
}

// Delete implements VFS.
func (v *WASIVFS) Delete(name string) error {
	ptr, n, err := v.putPath(name)
	if err != nil {
		return err
	}
	errno, err := v.call("path_unlink_file", uint64(v.dirFD), uint64(ptr), uint64(n))
	if err != nil {
		return err
	}
	if errno != wasi.ErrnoSuccess && errno != wasi.ErrnoNoent {
		return wasiErr("path_unlink_file", errno)
	}
	return nil
}

// Exists implements VFS.
func (v *WASIVFS) Exists(name string) (bool, error) {
	ptr, n, err := v.putPath(name)
	if err != nil {
		return false, err
	}
	errno, err := v.call("path_filestat_get",
		uint64(v.dirFD), 1, uint64(ptr), uint64(n), uint64(v.base+wvResult+64))
	if err != nil {
		return false, err
	}
	switch errno {
	case wasi.ErrnoSuccess:
		return true, nil
	case wasi.ErrnoNoent:
		return false, nil
	default:
		return false, wasiErr("path_filestat_get", errno)
	}
}

type wasiDBFile struct {
	v  *WASIVFS
	fd uint32
}

func (f *wasiDBFile) seek(off int64) error {
	errno, err := f.v.call("fd_seek", uint64(f.fd), uint64(off), 0, uint64(f.v.base+wvResult))
	if err != nil {
		return err
	}
	if errno != wasi.ErrnoSuccess {
		return wasiErr("fd_seek", errno)
	}
	return nil
}

// ReadAt implements DBFile, chunking through the guest data window.
func (f *wasiDBFile) ReadAt(p []byte, off int64) (int, error) {
	mem := f.v.in.Memory()
	var done int
	for done < len(p) {
		chunk := uint32(len(p) - done)
		if chunk > f.v.dataCap {
			chunk = f.v.dataCap
		}
		if err := f.seek(off + int64(done)); err != nil {
			return done, err
		}
		mem.WriteU32(f.v.base+wvIovec, f.v.base+wvData)
		mem.WriteU32(f.v.base+wvIovec+4, chunk)
		errno, err := f.v.call("fd_read",
			uint64(f.fd), uint64(f.v.base+wvIovec), 1, uint64(f.v.base+wvResult))
		if err != nil {
			return done, err
		}
		if errno != wasi.ErrnoSuccess {
			return done, wasiErr("fd_read", errno)
		}
		n, _ := mem.ReadU32(f.v.base + wvResult)
		if n == 0 {
			return done, nil // EOF: positional short read
		}
		src, err := mem.Bytes(f.v.base+wvData, n)
		if err != nil {
			return done, err
		}
		copy(p[done:], src)
		done += int(n)
		if n < chunk {
			return done, nil
		}
	}
	return done, nil
}

// WriteAt implements DBFile.
func (f *wasiDBFile) WriteAt(p []byte, off int64) (int, error) {
	mem := f.v.in.Memory()
	var done int
	for done < len(p) {
		chunk := uint32(len(p) - done)
		if chunk > f.v.dataCap {
			chunk = f.v.dataCap
		}
		dst, err := mem.Bytes(f.v.base+wvData, chunk)
		if err != nil {
			return done, err
		}
		copy(dst, p[done:done+int(chunk)])
		if err := f.seek(off + int64(done)); err != nil {
			return done, err
		}
		mem.WriteU32(f.v.base+wvIovec, f.v.base+wvData)
		mem.WriteU32(f.v.base+wvIovec+4, chunk)
		errno, err := f.v.call("fd_write",
			uint64(f.fd), uint64(f.v.base+wvIovec), 1, uint64(f.v.base+wvResult))
		if err != nil {
			return done, err
		}
		if errno != wasi.ErrnoSuccess {
			return done, wasiErr("fd_write", errno)
		}
		n, _ := mem.ReadU32(f.v.base + wvResult)
		done += int(n)
		if n < chunk {
			return done, fmt.Errorf("litedb: short wasi write (%d of %d)", n, chunk)
		}
	}
	return done, nil
}

// Truncate implements DBFile.
func (f *wasiDBFile) Truncate(size int64) error {
	errno, err := f.v.call("fd_filestat_set_size", uint64(f.fd), uint64(size))
	if err != nil {
		return err
	}
	if errno != wasi.ErrnoSuccess {
		return wasiErr("fd_filestat_set_size", errno)
	}
	return nil
}

// Sync implements DBFile.
func (f *wasiDBFile) Sync() error {
	errno, err := f.v.call("fd_sync", uint64(f.fd))
	if err != nil {
		return err
	}
	if errno != wasi.ErrnoSuccess {
		return wasiErr("fd_sync", errno)
	}
	return nil
}

// Size implements DBFile.
func (f *wasiDBFile) Size() (int64, error) {
	errno, err := f.v.call("fd_filestat_get", uint64(f.fd), uint64(f.v.base+wvResult+64))
	if err != nil {
		return 0, err
	}
	if errno != wasi.ErrnoSuccess {
		return 0, wasiErr("fd_filestat_get", errno)
	}
	// filestat.size is at offset 32.
	size, err := f.v.in.Memory().ReadU64(f.v.base + wvResult + 64 + 32)
	return int64(size), err
}

// Close implements DBFile.
func (f *wasiDBFile) Close() error {
	errno, err := f.v.call("fd_close", uint64(f.fd))
	if err != nil {
		return err
	}
	if errno != wasi.ErrnoSuccess {
		return wasiErr("fd_close", errno)
	}
	return nil
}
