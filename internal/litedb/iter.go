package litedb

import (
	"errors"
	"sync/atomic"
)

// Streaming result cursor (the "ted" shape from the related-work repos):
// rows flow over a bounded channel from a producer goroutine walking the
// join loop, so large scans never materialise the whole result set. The
// fan-out merge in the tsql shard service consumes per-shard streams the
// same way.

// iterChanCap bounds the rows buffered between producer and consumer; it
// is the streaming memory ceiling a scan of any size is held to.
const iterChanCap = 64

// errIterStop aborts the producer scan early (LIMIT satisfied or Close).
var errIterStop = errors.New("litedb: row iterator stopped")

type iterMsg struct {
	row []Value
	err error
}

// RowIter is a streaming cursor over one SELECT's rows. The owning DB
// handle must not run another statement until the iterator is exhausted
// (Next returned false) or closed. Not safe for concurrent use.
type RowIter struct {
	cols    []string
	ch      chan iterMsg
	stop    chan struct{}
	stopped bool
	cur     []Value
	err     error

	// buffered serves statements that inherently materialise
	// (aggregation, DISTINCT, ORDER BY, PRAGMA).
	buffered *Rows

	pending    int64 // rows in flight producer->consumer
	maxPending int64
}

// QueryIter runs a single SELECT (or PRAGMA) and returns a streaming
// cursor over its rows. Plain selects — including joins, WHERE and
// LIMIT/OFFSET — stream with bounded buffering; aggregation, GROUP BY,
// DISTINCT and ORDER BY fall back to the materialising executor behind
// the same interface.
func (db *DB) QueryIter(sql string, args ...Value) (*RowIter, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errEval("QueryIter expects exactly one statement")
	}
	st, ok := stmts[0].(*SelectStmt)
	if !ok {
		rows, _, err := db.run(stmts[0], args)
		if err != nil {
			return nil, err
		}
		if rows == nil {
			rows = &Rows{}
		}
		return &RowIter{cols: rows.Cols, buffered: rows}, nil
	}
	return db.queryIterSelect(st, args)
}

func (db *DB) queryIterSelect(st *SelectStmt, args []Value) (*RowIter, error) {
	pl, err := db.prepareSelect(st)
	if err != nil {
		return nil, err
	}
	if len(pl.accs) > 0 || len(st.GroupBy) > 0 || st.Having != nil ||
		st.Distinct || len(pl.orderEx) > 0 {
		rows, err := db.execSelect(st, args)
		if err != nil {
			return nil, err
		}
		return &RowIter{cols: rows.Cols, buffered: rows}, nil
	}

	ctx := &evalCtx{
		rows:   make([][]Value, len(pl.schemas)),
		rowids: make([]int64, len(pl.schemas)),
		args:   args,
		rng:    db.rng,
	}
	// LIMIT/OFFSET are row-independent; evaluate before the scan.
	limit, offset := -1, 0
	if st.Limit != nil {
		lv, err := eval(st.Limit, ctx)
		if err != nil {
			return nil, err
		}
		limit = int(lv.Int())
	}
	if st.Offset != nil {
		ov, err := eval(st.Offset, ctx)
		if err != nil {
			return nil, err
		}
		if offset = int(ov.Int()); offset < 0 {
			offset = 0
		}
	}

	it := &RowIter{
		cols: pl.resNames,
		ch:   make(chan iterMsg, iterChanCap),
		stop: make(chan struct{}),
	}
	sp := db.prof.Start("litedb.exec")
	go func() {
		defer close(it.ch)
		defer sp.Stop()
		skip, left := offset, limit
		emit := func() error {
			if left == 0 {
				return errIterStop
			}
			proj := make([]Value, len(pl.resExprs))
			for i, e := range pl.resExprs {
				v, err := eval(e, ctx)
				if err != nil {
					return err
				}
				proj[i] = v
			}
			if skip > 0 {
				skip--
				return nil
			}
			if err := it.send(iterMsg{row: proj}); err != nil {
				return err
			}
			if left > 0 {
				if left--; left == 0 {
					return errIterStop
				}
			}
			return nil
		}
		var err error
		if len(pl.schemas) == 0 {
			// SELECT without FROM: one projected row (WHERE is ignored,
			// matching the materialising executor).
			err = emit()
		} else {
			err = db.joinLoop(pl, ctx, 0, emit)
		}
		if err != nil && err != errIterStop {
			_ = it.send(iterMsg{err: err})
		}
	}()
	return it, nil
}

// send hands one message to the consumer, giving up when the iterator is
// closed early.
func (it *RowIter) send(m iterMsg) error {
	if m.err == nil {
		n := atomic.AddInt64(&it.pending, 1)
		for {
			max := atomic.LoadInt64(&it.maxPending)
			if n <= max || atomic.CompareAndSwapInt64(&it.maxPending, max, n) {
				break
			}
		}
	}
	select {
	case it.ch <- m:
		return nil
	case <-it.stop:
		return errIterStop
	}
}

// Cols returns the result column names.
func (it *RowIter) Cols() []string { return it.cols }

// Next advances to the next row, reporting availability. After a false
// return, check Err.
func (it *RowIter) Next() bool {
	if it.buffered != nil {
		if !it.buffered.Next() {
			return false
		}
		it.cur = it.buffered.Row()
		return true
	}
	m, ok := <-it.ch
	if !ok {
		return false
	}
	if m.err != nil {
		it.err = m.err
		return false
	}
	atomic.AddInt64(&it.pending, -1)
	it.cur = m.row
	return true
}

// Row returns the current row after Next reported true.
func (it *RowIter) Row() []Value { return it.cur }

// Err returns the error that terminated the stream, if any.
func (it *RowIter) Err() error { return it.err }

// Close stops the producer and drains the channel; the DB handle is free
// for the next statement once Close returns. Safe after exhaustion.
func (it *RowIter) Close() error {
	if it.buffered != nil {
		return it.err
	}
	if !it.stopped {
		it.stopped = true
		close(it.stop)
	}
	for range it.ch {
	}
	return it.err
}

// MaxBuffered reports the high-water mark of rows held between producer
// and consumer — the bounded-memory guarantee streaming tests assert on.
func (it *RowIter) MaxBuffered() int64 { return atomic.LoadInt64(&it.maxPending) }
