package litedb

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The catalog is a table B+tree (root recorded in the database header)
// holding one record per schema object, in the spirit of sqlite_master:
//
//	[type TEXT ("table"|"index"), name TEXT, tbl_name TEXT,
//	 rootpage INTEGER, def TEXT (JSON)]

// TableSchema describes a table.
type TableSchema struct {
	Name string
	Cols []ColumnDef
	Root uint32
	// RowidPK is the column index aliasing the rowid (INTEGER PRIMARY
	// KEY), or -1.
	RowidPK int
	Indexes []*IndexSchema

	catRowid  int64
	lastRowid int64 // cache for auto-assignment; 0 = unknown
}

// IndexSchema describes an index.
type IndexSchema struct {
	Name    string
	Table   string
	Cols    []string
	ColIdxs []int
	Unique  bool
	Root    uint32

	catRowid int64
}

// colIndex resolves a column name within the table.
func (t *TableSchema) colIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// schemaDefJSON is the serialised column/index definition.
type schemaDefJSON struct {
	Cols   []colDefJSON `json:"cols,omitempty"`
	IdxCol []string     `json:"idx_cols,omitempty"`
	Unique bool         `json:"unique,omitempty"`
}

type colDefJSON struct {
	Name     string  `json:"name"`
	Affinity int     `json:"aff"`
	PK       bool    `json:"pk,omitempty"`
	NotNull  bool    `json:"nn,omitempty"`
	Unique   bool    `json:"uq,omitempty"`
	DefType  int     `json:"dt,omitempty"`
	DefInt   int64   `json:"di,omitempty"`
	DefReal  float64 `json:"dr,omitempty"`
	DefText  string  `json:"ds,omitempty"`
}

func encodeTableDef(cols []ColumnDef) string {
	def := schemaDefJSON{}
	for _, c := range cols {
		j := colDefJSON{Name: c.Name, Affinity: int(c.Affinity), PK: c.PrimaryKey, NotNull: c.NotNull, Unique: c.Unique}
		if c.Default != nil {
			j.DefType = int(c.Default.Type()) + 1
			switch c.Default.Type() {
			case Integer:
				j.DefInt = c.Default.Int()
			case Real:
				j.DefReal = c.Default.Real()
			case Text:
				j.DefText = c.Default.Text()
			}
		}
		def.Cols = append(def.Cols, j)
	}
	b, _ := json.Marshal(def)
	return string(b)
}

func decodeTableDef(s string) ([]ColumnDef, error) {
	var def schemaDefJSON
	if err := json.Unmarshal([]byte(s), &def); err != nil {
		return nil, fmt.Errorf("litedb: corrupt table definition: %w", err)
	}
	var cols []ColumnDef
	for _, j := range def.Cols {
		c := ColumnDef{Name: j.Name, Affinity: Type(j.Affinity), PrimaryKey: j.PK, NotNull: j.NotNull, Unique: j.Unique}
		if j.DefType != 0 {
			var v Value
			switch Type(j.DefType - 1) {
			case Null:
				v = NullVal()
			case Integer:
				v = IntVal(j.DefInt)
			case Real:
				v = RealVal(j.DefReal)
			case Text:
				v = TextVal(j.DefText)
			}
			c.Default = &v
		}
		cols = append(cols, c)
	}
	return cols, nil
}

func encodeIndexDef(cols []string, unique bool) string {
	b, _ := json.Marshal(schemaDefJSON{IdxCol: cols, Unique: unique})
	return string(b)
}

func decodeIndexDef(s string) ([]string, bool, error) {
	var def schemaDefJSON
	if err := json.Unmarshal([]byte(s), &def); err != nil {
		return nil, false, fmt.Errorf("litedb: corrupt index definition: %w", err)
	}
	return def.IdxCol, def.Unique, nil
}

// loadCatalog scans the catalog tree into the schema cache.
func (db *DB) loadCatalog() error {
	db.tables = make(map[string]*TableSchema)
	db.indexes = make(map[string]*IndexSchema)
	cur, err := db.catalog.Cursor()
	if err != nil {
		return err
	}
	type pendingIdx struct {
		idx *IndexSchema
	}
	var pending []pendingIdx
	for cur.Valid() {
		payload, err := cur.Payload()
		if err != nil {
			return err
		}
		row, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		if len(row) < 5 {
			return fmt.Errorf("%w: catalog row too short", ErrCorrupt)
		}
		kind, name, tbl := row[0].Text(), row[1].Text(), row[2].Text()
		root := uint32(row[3].Int())
		switch kind {
		case "table":
			cols, err := decodeTableDef(row[4].Text())
			if err != nil {
				return err
			}
			ts := &TableSchema{Name: name, Cols: cols, Root: root, RowidPK: -1, catRowid: cur.Rowid()}
			for i, c := range cols {
				if c.PrimaryKey && c.Affinity == Integer {
					ts.RowidPK = i
				}
			}
			db.tables[strings.ToLower(name)] = ts
		case "index":
			cols, unique, err := decodeIndexDef(row[4].Text())
			if err != nil {
				return err
			}
			idx := &IndexSchema{Name: name, Table: tbl, Cols: cols, Unique: unique, Root: root, catRowid: cur.Rowid()}
			pending = append(pending, pendingIdx{idx})
		default:
			return fmt.Errorf("%w: unknown catalog kind %q", ErrCorrupt, kind)
		}
		if err := cur.Next(); err != nil {
			return err
		}
	}
	for _, p := range pending {
		ts, ok := db.tables[strings.ToLower(p.idx.Table)]
		if !ok {
			return fmt.Errorf("%w: index %s references missing table %s", ErrCorrupt, p.idx.Name, p.idx.Table)
		}
		for _, cn := range p.idx.Cols {
			ci := ts.colIndex(cn)
			if ci < 0 {
				return fmt.Errorf("%w: index %s references missing column %s", ErrCorrupt, p.idx.Name, cn)
			}
			p.idx.ColIdxs = append(p.idx.ColIdxs, ci)
		}
		ts.Indexes = append(ts.Indexes, p.idx)
		db.indexes[strings.ToLower(p.idx.Name)] = p.idx
	}
	return nil
}

// catalogInsert appends one schema record and returns its rowid.
func (db *DB) catalogInsert(kind, name, tbl string, root uint32, def string) (int64, error) {
	max, err := db.catalog.MaxRowid()
	if err != nil {
		return 0, err
	}
	rowid := max + 1
	rec := EncodeRecord(nil, []Value{
		TextVal(kind), TextVal(name), TextVal(tbl), IntVal(int64(root)), TextVal(def),
	})
	if err := db.catalog.Insert(rowid, rec); err != nil {
		return 0, err
	}
	return rowid, db.pager.BumpCookie()
}

// catalogUpdate rewrites a schema record in place.
func (db *DB) catalogUpdate(rowid int64, kind, name, tbl string, root uint32, def string) error {
	rec := EncodeRecord(nil, []Value{
		TextVal(kind), TextVal(name), TextVal(tbl), IntVal(int64(root)), TextVal(def),
	})
	if err := db.catalog.Insert(rowid, rec); err != nil {
		return err
	}
	return db.pager.BumpCookie()
}

// catalogDelete removes a schema record.
func (db *DB) catalogDelete(rowid int64) error {
	if _, err := db.catalog.Delete(rowid); err != nil {
		return err
	}
	return db.pager.BumpCookie()
}
