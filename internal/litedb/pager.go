package litedb

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"

	"twine/internal/prof"
)

// PageSize is the database page size (4 KiB, matching the paper's SQLite
// configuration and the SGX page granularity).
const PageSize = 4096

// DefaultCachePages matches SQLite's configuration in the paper: a
// 2,048-page cache of 4 KiB pages (8 MiB).
const DefaultCachePages = 2048

// Database header layout (page 1).
const (
	hdrMagicOff      = 0  // 16 bytes
	hdrPageCountOff  = 16 // u32
	hdrFreelistOff   = 20 // u32 head page (0 = none)
	hdrFreeCountOff  = 24 // u32
	hdrSchemaRootOff = 28 // u32
	hdrCookieOff     = 32 // u32 schema cookie
)

var dbMagic = [16]byte{'L', 'i', 't', 'e', 'D', 'B', ' ', 'f', 'o', 'r', 'm', 'a', 't', ' ', '1', 0}

var journalMagic = [8]byte{'L', 'D', 'B', 'J', 'R', 'N', 'L', '1'}

// SyncMode mirrors PRAGMA synchronous.
type SyncMode int

// Sync modes.
const (
	SyncOff SyncMode = iota
	SyncNormal
	SyncFull
)

// JournalMode mirrors PRAGMA journal_mode (delete or memory).
type JournalMode int

// Journal modes.
const (
	JournalDelete JournalMode = iota
	JournalMemory
)

// Package errors.
var (
	ErrCorrupt    = errors.New("litedb: database corrupt")
	ErrTxn        = errors.New("litedb: transaction state error")
	ErrCacheFull  = errors.New("litedb: page cache exhausted (all pages pinned)")
	ErrPageBounds = errors.New("litedb: page number out of range")
)

// PagerOptions configures a pager.
type PagerOptions struct {
	CachePages int
	Store      PageStore
	Sync       SyncMode
	Journal    JournalMode
	Prof       *prof.Registry
}

// Page is a pinned page image. Data is only valid while pinned.
type Page struct {
	no    uint32
	slot  int
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// No returns the page number (1-based).
func (p *Page) No() uint32 { return p.no }

// Data returns the page image.
func (p *Page) Data() []byte { return p.data }

// Pager provides transactional page access over a VFS file, with a fixed
// page cache and a rollback journal (delete mode), following SQLite's
// pager design.
type Pager struct {
	vfs   VFS
	name  string
	file  DBFile
	opt   PagerOptions
	store PageStore

	cache map[uint32]*Page
	lru   *list.List // clean, unpinned pages (eviction candidates)
	free  []int      // free cache slots

	nPages uint32

	inTxn      bool
	origNPages uint32
	journaled  map[uint32][]byte // original images (JournalMemory)
	jFile      DBFile            // journal file (JournalDelete)
	jCount     int
}

// OpenPager opens or creates the database file.
func OpenPager(vfs VFS, name string, opt PagerOptions) (*Pager, error) {
	if opt.CachePages <= 0 {
		opt.CachePages = DefaultCachePages
	}
	if opt.CachePages < 16 {
		opt.CachePages = 16
	}
	if opt.Store == nil {
		opt.Store = NewNativeStore(opt.CachePages)
	}
	if opt.Store.Cap() < opt.CachePages {
		return nil, fmt.Errorf("litedb: store has %d slots, cache wants %d", opt.Store.Cap(), opt.CachePages)
	}
	f, err := vfs.Open(name, true)
	if err != nil {
		return nil, err
	}
	p := &Pager{
		vfs: vfs, name: name, file: f, opt: opt, store: opt.Store,
		cache: make(map[uint32]*Page), lru: list.New(),
	}
	for i := opt.CachePages - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	if err := p.recoverJournal(); err != nil {
		f.Close()
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		if err := p.initialize(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// Provisional size so the header page passes bounds checks; the
		// header's own page count replaces it.
		p.nPages = uint32(size / PageSize)
		if p.nPages == 0 {
			f.Close()
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		if err := p.loadHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return p, nil
}

func (p *Pager) initialize() error {
	p.nPages = 1
	hdr, err := p.allocSlotFor(1)
	if err != nil {
		return err
	}
	clearBytes(hdr.data)
	copy(hdr.data[hdrMagicOff:], dbMagic[:])
	binary.BigEndian.PutUint32(hdr.data[hdrPageCountOff:], 1)
	hdr.dirty = true
	p.unpinInternal(hdr)
	// Flush immediately so the file is well-formed.
	return p.flushAll()
}

func (p *Pager) loadHeader() error {
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	defer p.Unpin(hdr)
	if [16]byte(hdr.data[hdrMagicOff:hdrMagicOff+16]) != dbMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	p.nPages = binary.BigEndian.Uint32(hdr.data[hdrPageCountOff:])
	if p.nPages == 0 {
		return fmt.Errorf("%w: zero page count", ErrCorrupt)
	}
	return nil
}

// NPages returns the database size in pages.
func (p *Pager) NPages() uint32 { return p.nPages }

// CacheSize returns the configured cache capacity in pages.
func (p *Pager) CacheSize() int { return p.opt.CachePages }

// SetCacheSize is a no-op shrink guard used by PRAGMA cache_size; growing
// beyond the store capacity is refused.
func (p *Pager) SetCacheSize(n int) error {
	if n > p.store.Cap() {
		return fmt.Errorf("litedb: cache_size %d exceeds store capacity %d", n, p.store.Cap())
	}
	if n < 16 {
		n = 16
	}
	p.opt.CachePages = n
	return nil
}

// SetSync updates PRAGMA synchronous.
func (p *Pager) SetSync(m SyncMode) { p.opt.Sync = m }

// --- cache ---

func (p *Pager) allocSlotFor(no uint32) (*Page, error) {
	if len(p.free) == 0 {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	slot := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	pg := &Page{no: no, slot: slot, data: p.store.Page(slot), pins: 1}
	p.cache[no] = pg
	return pg, nil
}

func (p *Pager) evictOne() error {
	// Prefer a clean unpinned page.
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*Page)
		if pg.pins == 0 && !pg.dirty {
			p.dropPage(pg)
			return nil
		}
	}
	// Spill a dirty unpinned page (it is already journaled).
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*Page)
		if pg.pins == 0 && pg.dirty {
			if err := p.writePage(pg); err != nil {
				return err
			}
			pg.dirty = false
			p.dropPage(pg)
			return nil
		}
	}
	return ErrCacheFull
}

func (p *Pager) dropPage(pg *Page) {
	if pg.elem != nil {
		p.lru.Remove(pg.elem)
		pg.elem = nil
	}
	delete(p.cache, pg.no)
	p.free = append(p.free, pg.slot)
}

// Get pins page no, reading it from the file on a miss.
func (p *Pager) Get(no uint32) (*Page, error) {
	if no == 0 || no > p.nPages {
		return nil, fmt.Errorf("%w: page %d of %d", ErrPageBounds, no, p.nPages)
	}
	if pg, ok := p.cache[no]; ok {
		p.opt.Prof.Incr("pager.hit")
		if pg.elem != nil {
			p.lru.Remove(pg.elem)
			pg.elem = nil
		}
		pg.pins++
		// Re-acquire through the store so sandboxed variants charge the
		// access.
		pg.data = p.store.Page(pg.slot)
		return pg, nil
	}
	p.opt.Prof.Incr("pager.miss")
	// Evict first if needed so the slot exists.
	for len(p.free) == 0 {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	pg, err := p.allocSlotFor(no)
	if err != nil {
		return nil, err
	}
	sp := p.opt.Prof.Start("pager.read")
	n, err := p.file.ReadAt(pg.data, int64(no-1)*PageSize)
	sp.Stop()
	if err != nil {
		p.dropPage(pg)
		return nil, err
	}
	for i := n; i < PageSize; i++ {
		pg.data[i] = 0
	}
	return pg, nil
}

// Unpin releases a pinned page.
func (p *Pager) Unpin(pg *Page) { p.unpinInternal(pg) }

func (p *Pager) unpinInternal(pg *Page) {
	if pg.pins <= 0 {
		panic("litedb: unpin of unpinned page")
	}
	pg.pins--
	if pg.pins == 0 && pg.elem == nil {
		pg.elem = p.lru.PushFront(pg)
	}
}

// Write declares intent to modify a pinned page, journaling its original
// image on first touch within the transaction.
func (p *Pager) Write(pg *Page) error {
	if !p.inTxn {
		return fmt.Errorf("%w: write outside transaction", ErrTxn)
	}
	if !pg.dirty || p.notJournaled(pg.no) {
		if err := p.journalPage(pg); err != nil {
			return err
		}
	}
	pg.dirty = true
	return nil
}

func (p *Pager) notJournaled(no uint32) bool {
	_, ok := p.journaled[no]
	return !ok && no <= p.origNPages
}

func (p *Pager) journalPage(pg *Page) error {
	if _, ok := p.journaled[pg.no]; ok {
		return nil
	}
	if pg.no > p.origNPages {
		// Fresh page this transaction: no original image to preserve.
		p.journaled[pg.no] = nil
		return nil
	}
	orig := append([]byte(nil), pg.data...)
	p.journaled[pg.no] = orig
	if p.opt.Journal == JournalDelete {
		if err := p.appendJournal(pg.no, orig); err != nil {
			return err
		}
	}
	return nil
}

// --- allocation ---

// Alloc returns a fresh pinned, zeroed, journaled page.
func (p *Pager) Alloc() (*Page, error) {
	if !p.inTxn {
		return nil, fmt.Errorf("%w: alloc outside transaction", ErrTxn)
	}
	hdr, err := p.Get(1)
	if err != nil {
		return nil, err
	}
	freeHead := binary.BigEndian.Uint32(hdr.data[hdrFreelistOff:])
	if freeHead != 0 {
		fp, err := p.Get(freeHead)
		if err != nil {
			p.Unpin(hdr)
			return nil, err
		}
		next := binary.BigEndian.Uint32(fp.data[1:5])
		if err := p.Write(hdr); err != nil {
			p.Unpin(fp)
			p.Unpin(hdr)
			return nil, err
		}
		binary.BigEndian.PutUint32(hdr.data[hdrFreelistOff:], next)
		cnt := binary.BigEndian.Uint32(hdr.data[hdrFreeCountOff:])
		if cnt > 0 {
			binary.BigEndian.PutUint32(hdr.data[hdrFreeCountOff:], cnt-1)
		}
		p.Unpin(hdr)
		if err := p.Write(fp); err != nil {
			p.Unpin(fp)
			return nil, err
		}
		clearBytes(fp.data)
		return fp, nil
	}
	p.Unpin(hdr)

	// Extend the file.
	no := p.nPages + 1
	p.nPages = no
	for len(p.free) == 0 {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	pg, err := p.allocSlotFor(no)
	if err != nil {
		return nil, err
	}
	clearBytes(pg.data)
	p.journaled[no] = nil // fresh page
	pg.dirty = true
	if err := p.updatePageCount(); err != nil {
		return nil, err
	}
	return pg, nil
}

// Free returns a page to the freelist.
func (p *Pager) Free(no uint32) error {
	if !p.inTxn {
		return fmt.Errorf("%w: free outside transaction", ErrTxn)
	}
	pg, err := p.Get(no)
	if err != nil {
		return err
	}
	if err := p.Write(pg); err != nil {
		p.Unpin(pg)
		return err
	}
	hdr, err := p.Get(1)
	if err != nil {
		p.Unpin(pg)
		return err
	}
	if err := p.Write(hdr); err != nil {
		p.Unpin(hdr)
		p.Unpin(pg)
		return err
	}
	head := binary.BigEndian.Uint32(hdr.data[hdrFreelistOff:])
	clearBytes(pg.data)
	pg.data[0] = 0xFF // freelist marker
	binary.BigEndian.PutUint32(pg.data[1:5], head)
	binary.BigEndian.PutUint32(hdr.data[hdrFreelistOff:], no)
	cnt := binary.BigEndian.Uint32(hdr.data[hdrFreeCountOff:])
	binary.BigEndian.PutUint32(hdr.data[hdrFreeCountOff:], cnt+1)
	p.Unpin(hdr)
	p.Unpin(pg)
	return nil
}

func (p *Pager) updatePageCount() error {
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	defer p.Unpin(hdr)
	if err := p.Write(hdr); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(hdr.data[hdrPageCountOff:], p.nPages)
	return nil
}

// SchemaRoot reads the catalog root page number from the header.
func (p *Pager) SchemaRoot() (uint32, error) {
	hdr, err := p.Get(1)
	if err != nil {
		return 0, err
	}
	defer p.Unpin(hdr)
	return binary.BigEndian.Uint32(hdr.data[hdrSchemaRootOff:]), nil
}

// SetSchemaRoot stores the catalog root page number.
func (p *Pager) SetSchemaRoot(no uint32) error {
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	defer p.Unpin(hdr)
	if err := p.Write(hdr); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(hdr.data[hdrSchemaRootOff:], no)
	return nil
}

// BumpCookie increments the schema cookie (schema change marker).
func (p *Pager) BumpCookie() error {
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	defer p.Unpin(hdr)
	if err := p.Write(hdr); err != nil {
		return err
	}
	c := binary.BigEndian.Uint32(hdr.data[hdrCookieOff:])
	binary.BigEndian.PutUint32(hdr.data[hdrCookieOff:], c+1)
	return nil
}

// --- transactions ---

// InTxn reports whether a transaction is open.
func (p *Pager) InTxn() bool { return p.inTxn }

// Begin opens a transaction.
func (p *Pager) Begin() error {
	if p.inTxn {
		return fmt.Errorf("%w: nested transaction", ErrTxn)
	}
	p.inTxn = true
	p.origNPages = p.nPages
	p.journaled = make(map[uint32][]byte)
	p.jCount = 0
	return nil
}

func (p *Pager) journalName() string { return p.name + "-journal" }

func (p *Pager) appendJournal(no uint32, data []byte) error {
	if p.jFile == nil {
		f, err := p.vfs.Open(p.journalName(), true)
		if err != nil {
			return err
		}
		p.jFile = f
		var hdr [16]byte
		copy(hdr[:8], journalMagic[:])
		binary.BigEndian.PutUint32(hdr[8:], p.origNPages)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return err
		}
	}
	sp := p.opt.Prof.Start("pager.journal")
	defer sp.Stop()
	off := int64(16) + int64(p.jCount)*(4+PageSize)
	var noBuf [4]byte
	binary.BigEndian.PutUint32(noBuf[:], no)
	if _, err := p.jFile.WriteAt(noBuf[:], off); err != nil {
		return err
	}
	if _, err := p.jFile.WriteAt(data, off+4); err != nil {
		return err
	}
	p.jCount++
	return nil
}

// Commit flushes dirty pages and finalises the journal, with sync points
// per the configured synchronous mode.
func (p *Pager) Commit() error {
	if !p.inTxn {
		return fmt.Errorf("%w: commit without begin", ErrTxn)
	}
	sp := p.opt.Prof.Start("pager.commit")
	defer sp.Stop()
	if p.jFile != nil && p.opt.Sync >= SyncNormal {
		if err := p.jFile.Sync(); err != nil {
			return err
		}
	}
	if err := p.flushAll(); err != nil {
		return err
	}
	if p.opt.Sync >= SyncNormal {
		if err := p.file.Sync(); err != nil {
			return err
		}
	}
	if err := p.discardJournal(); err != nil {
		return err
	}
	p.inTxn = false
	p.journaled = nil
	return nil
}

func (p *Pager) flushAll() error {
	for _, pg := range p.cache {
		if pg.dirty {
			if err := p.writePage(pg); err != nil {
				return err
			}
			pg.dirty = false
		}
	}
	return nil
}

func (p *Pager) writePage(pg *Page) error {
	sp := p.opt.Prof.Start("pager.write")
	defer sp.Stop()
	// Refresh the slot view (and charge the access) before writing out.
	pg.data = p.store.Page(pg.slot)
	_, err := p.file.WriteAt(pg.data, int64(pg.no-1)*PageSize)
	return err
}

func (p *Pager) discardJournal() error {
	if p.jFile != nil {
		if err := p.jFile.Close(); err != nil {
			return err
		}
		p.jFile = nil
		if err := p.vfs.Delete(p.journalName()); err != nil {
			return err
		}
	}
	p.jCount = 0
	return nil
}

// Rollback restores every journaled page and the original size.
func (p *Pager) Rollback() error {
	if !p.inTxn {
		return fmt.Errorf("%w: rollback without begin", ErrTxn)
	}
	for no, orig := range p.journaled {
		if orig == nil {
			// Page created this transaction: drop it from cache.
			if pg, ok := p.cache[no]; ok && pg.pins == 0 {
				pg.dirty = false
				p.dropPage(pg)
			}
			continue
		}
		pg, ok := p.cache[no]
		if !ok {
			var err error
			for len(p.free) == 0 {
				if err := p.evictOne(); err != nil {
					return err
				}
			}
			pg, err = p.allocSlotFor(no)
			if err != nil {
				return err
			}
			pg.pins--
			pg.elem = p.lru.PushFront(pg)
		}
		pg.data = p.store.Page(pg.slot)
		copy(pg.data, orig)
		pg.dirty = true
	}
	p.nPages = p.origNPages
	// Drop cached pages beyond the restored size.
	for no, pg := range p.cache {
		if no > p.nPages && pg.pins == 0 {
			pg.dirty = false
			p.dropPage(pg)
		}
	}
	if err := p.flushAll(); err != nil {
		return err
	}
	if err := p.file.Truncate(int64(p.nPages) * PageSize); err != nil {
		return err
	}
	if err := p.discardJournal(); err != nil {
		return err
	}
	p.inTxn = false
	p.journaled = nil
	return nil
}

// recoverJournal replays a hot journal left by a crash.
func (p *Pager) recoverJournal() error {
	ok, err := p.vfs.Exists(p.journalName())
	if err != nil || !ok {
		return err
	}
	jf, err := p.vfs.Open(p.journalName(), false)
	if err != nil {
		return err
	}
	defer jf.Close()
	var hdr [16]byte
	if n, err := jf.ReadAt(hdr[:], 0); err != nil || n < 16 {
		// Empty/garbage journal: discard it.
		return p.vfs.Delete(p.journalName())
	}
	if [8]byte(hdr[:8]) != journalMagic {
		return p.vfs.Delete(p.journalName())
	}
	origNPages := binary.BigEndian.Uint32(hdr[8:12])
	size, err := jf.Size()
	if err != nil {
		return err
	}
	entries := (size - 16) / (4 + PageSize)
	buf := make([]byte, 4+PageSize)
	for i := int64(0); i < entries; i++ {
		off := 16 + i*(4+PageSize)
		if n, err := jf.ReadAt(buf, off); err != nil || n < len(buf) {
			break // torn tail: restore what we have
		}
		no := binary.BigEndian.Uint32(buf[:4])
		if _, err := p.file.WriteAt(buf[4:], int64(no-1)*PageSize); err != nil {
			return err
		}
	}
	if err := p.file.Truncate(int64(origNPages) * PageSize); err != nil {
		return err
	}
	if err := p.file.Sync(); err != nil {
		return err
	}
	return p.vfs.Delete(p.journalName())
}

// Close flushes (committing is the caller's job) and closes the file.
func (p *Pager) Close() error {
	if p.inTxn {
		if err := p.Rollback(); err != nil {
			return err
		}
	}
	if err := p.flushAll(); err != nil {
		return err
	}
	return p.file.Close()
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
