package litedb

import (
	"fmt"
	"sort"
	"strings"
)

// --- schema lookups ---

func (db *DB) table(name string) (*TableSchema, error) {
	ts, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("litedb: no such table: %s", name)
	}
	return ts, nil
}

// --- row codec helpers ---

// encodeRow serialises a table row; the rowid-aliasing column is stored as
// NULL (the rowid itself is the key), as SQLite does.
func (ts *TableSchema) encodeRow(vals []Value) []byte {
	if ts.RowidPK >= 0 {
		saved := vals[ts.RowidPK]
		vals[ts.RowidPK] = NullVal()
		rec := EncodeRecord(nil, vals)
		vals[ts.RowidPK] = saved
		return rec
	}
	return EncodeRecord(nil, vals)
}

// decodeRow parses a stored row, padding columns added by ALTER TABLE and
// substituting the rowid for its aliasing column.
func (ts *TableSchema) decodeRow(rowid int64, payload []byte) ([]Value, error) {
	row, err := DecodeRecord(payload)
	if err != nil {
		return nil, err
	}
	for len(row) < len(ts.Cols) {
		c := ts.Cols[len(row)]
		if c.Default != nil {
			row = append(row, *c.Default)
		} else {
			row = append(row, NullVal())
		}
	}
	if ts.RowidPK >= 0 {
		row[ts.RowidPK] = IntVal(rowid)
	}
	return row, nil
}

// indexKey builds the index entry for a row: indexed values plus rowid.
func (idx *IndexSchema) indexKey(row []Value, rowid int64) []byte {
	vals := make([]Value, 0, len(idx.ColIdxs)+1)
	for _, ci := range idx.ColIdxs {
		vals = append(vals, row[ci])
	}
	vals = append(vals, IntVal(rowid))
	return EncodeRecord(nil, vals)
}

// --- row mutation with index maintenance ---

func (db *DB) treeOf(ts *TableSchema) *Tree {
	return OpenTree(db.pager, ts.Root, false)
}

func (db *DB) idxTreeOf(idx *IndexSchema) *Tree {
	return OpenTree(db.pager, idx.Root, true)
}

// checkUnique probes unique indexes for a conflicting row, returning its
// rowid (or 0).
func (db *DB) checkUnique(ts *TableSchema, idx *IndexSchema, row []Value) (int64, error) {
	vals := make([]Value, 0, len(idx.ColIdxs))
	for _, ci := range idx.ColIdxs {
		v := row[ci]
		if v.IsNull() {
			return 0, nil // NULLs never conflict
		}
		vals = append(vals, v)
	}
	prefix := EncodeRecord(nil, vals)
	cur, err := db.idxTreeOf(idx).CursorKeyGE(prefix)
	if err != nil {
		return 0, err
	}
	if !cur.Valid() {
		return 0, nil
	}
	key, err := cur.Key()
	if err != nil {
		return 0, err
	}
	kvals, err := DecodeRecord(key)
	if err != nil {
		return 0, err
	}
	if len(kvals) != len(vals)+1 {
		return 0, nil
	}
	for i := range vals {
		if Compare(kvals[i], vals[i]) != 0 {
			return 0, nil
		}
	}
	return kvals[len(vals)].Int(), nil
}

// insertRow writes a fully materialised row, enforcing constraints.
func (db *DB) insertRow(ts *TableSchema, rowid int64, row []Value, orReplace bool) error {
	for i, c := range ts.Cols {
		if c.NotNull && row[i].IsNull() && i != ts.RowidPK {
			return fmt.Errorf("litedb: NOT NULL constraint failed: %s.%s", ts.Name, c.Name)
		}
	}
	tree := db.treeOf(ts)
	if _, exists, err := tree.Get(rowid); err != nil {
		return err
	} else if exists {
		if !orReplace {
			return fmt.Errorf("litedb: UNIQUE constraint failed: %s.rowid", ts.Name)
		}
		if err := db.deleteRowByID(ts, rowid); err != nil {
			return err
		}
	}
	for _, idx := range ts.Indexes {
		if !idx.Unique {
			continue
		}
		conflict, err := db.checkUnique(ts, idx, row)
		if err != nil {
			return err
		}
		if conflict != 0 && conflict != rowid {
			if !orReplace {
				return fmt.Errorf("litedb: UNIQUE constraint failed: %s", idx.Name)
			}
			if err := db.deleteRowByID(ts, conflict); err != nil {
				return err
			}
		}
	}
	if err := tree.Insert(rowid, ts.encodeRow(row)); err != nil {
		return err
	}
	for _, idx := range ts.Indexes {
		if err := db.idxTreeOf(idx).InsertKey(idx.indexKey(row, rowid)); err != nil {
			return err
		}
	}
	if rowid > ts.lastRowid {
		ts.lastRowid = rowid
	}
	db.lastInsert = rowid
	return nil
}

// deleteRowByID removes a row and its index entries.
func (db *DB) deleteRowByID(ts *TableSchema, rowid int64) error {
	tree := db.treeOf(ts)
	payload, ok, err := tree.Get(rowid)
	if err != nil || !ok {
		return err
	}
	row, err := ts.decodeRow(rowid, payload)
	if err != nil {
		return err
	}
	for _, idx := range ts.Indexes {
		if _, err := db.idxTreeOf(idx).DeleteKey(idx.indexKey(row, rowid)); err != nil {
			return err
		}
	}
	_, err = tree.Delete(rowid)
	return err
}

// nextRowid assigns an automatic rowid.
func (db *DB) nextRowid(ts *TableSchema) (int64, error) {
	if ts.lastRowid == 0 {
		max, err := db.treeOf(ts).MaxRowid()
		if err != nil {
			return 0, err
		}
		ts.lastRowid = max
	}
	ts.lastRowid++
	return ts.lastRowid, nil
}

// --- access planning ---

type pathKind int

const (
	pathFull pathKind = iota
	pathRowidEq
	pathRowidRange
	pathIndexEq
)

// accessPath is the chosen way to enumerate one FROM source.
type accessPath struct {
	kind     pathKind
	eq       Expr // rowid/index probe expression
	idx      *IndexSchema
	lo, hi   Expr // rowid range bounds (nil = open)
	loStrict bool
	hiStrict bool
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// maxSrcOf returns the highest source index referenced (-1 for none).
func maxSrcOf(e Expr) int {
	max := -1
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColRef:
			if x.bound && x.src > max {
				max = x.src
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Like:
			walk(x.X)
			walk(x.Pattern)
		case *InList:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *IsNull:
			walk(x.X)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *CaseExpr:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Res)
			}
			walk(x.Else)
		case *Cast:
			walk(x.X)
		}
	}
	walk(e)
	return max
}

// isRowidRef reports whether e is a rowid reference of source src.
func isRowidRef(e Expr, src int) bool {
	cr, ok := e.(*ColRef)
	return ok && cr.bound && cr.src == src && cr.col == -1
}

// colOf returns (colIdx, true) when e is a plain column of source src.
func colOf(e Expr, src int) (int, bool) {
	cr, ok := e.(*ColRef)
	if ok && cr.bound && cr.src == src && cr.col >= 0 {
		return cr.col, true
	}
	return 0, false
}

// planAccess picks an access path for source level from its conjuncts.
func planAccess(ts *TableSchema, level int, conds []Expr) accessPath {
	path := accessPath{kind: pathFull}
	for _, c := range conds {
		b, ok := c.(*Binary)
		if !ok {
			if bt, ok := c.(*Between); ok && isRowidRef(bt.X, level) && !bt.Not &&
				maxSrcOf(bt.Lo) < level && maxSrcOf(bt.Hi) < level {
				path.kind = pathRowidRange
				path.lo, path.hi = bt.Lo, bt.Hi
				return path
			}
			continue
		}
		l, r, op := b.L, b.R, b.Op
		// Normalise "expr OP col" to "col OP' expr".
		if maxSrcOf(l) < level && maxSrcOf(r) == level {
			l, r = r, l
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		if maxSrcOf(r) >= level {
			continue // probe expression not yet bound at this level
		}
		if isRowidRef(l, level) {
			switch op {
			case "=":
				path.kind = pathRowidEq
				path.eq = r
				return path // best possible
			case ">", ">=":
				if path.kind == pathFull || path.kind == pathRowidRange {
					path.kind = pathRowidRange
					path.lo, path.loStrict = r, op == ">"
				}
			case "<", "<=":
				if path.kind == pathFull || path.kind == pathRowidRange {
					path.kind = pathRowidRange
					path.hi, path.hiStrict = r, op == "<"
				}
			}
			continue
		}
		if op == "=" {
			if ci, ok := colOf(l, level); ok {
				for _, idx := range ts.Indexes {
					if len(idx.ColIdxs) >= 1 && idx.ColIdxs[0] == ci {
						if path.kind == pathFull || path.kind == pathRowidRange {
							path.kind = pathIndexEq
							path.idx = idx
							path.eq = r
						}
						break
					}
				}
			}
		}
	}
	return path
}

// scanSource enumerates one FROM source under its access path, filtering
// with its conjuncts, and calls emit with (rowid, row) bound into ctx.
func (db *DB) scanSource(ts *TableSchema, level int, conds []Expr, ctx *evalCtx, emit func() error) error {
	path := planAccess(ts, level, conds)
	tree := db.treeOf(ts)

	try := func(rowid int64, payload []byte) error {
		row, err := ts.decodeRow(rowid, payload)
		if err != nil {
			return err
		}
		ctx.rows[level] = row
		ctx.rowids[level] = rowid
		for _, c := range conds {
			v, err := eval(c, ctx)
			if err != nil {
				return err
			}
			if v.IsNull() || !v.Bool() {
				return nil
			}
		}
		return emit()
	}

	switch path.kind {
	case pathRowidEq:
		v, err := eval(path.eq, ctx)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		payload, ok, err := tree.Get(v.Int())
		if err != nil || !ok {
			return err
		}
		return try(v.Int(), payload)

	case pathRowidRange:
		// Explicit INTEGER PRIMARY KEY values may be zero or negative, so
		// an open lower bound starts at the smallest representable rowid,
		// not at the first automatic one.
		start := int64(-1 << 63)
		if path.lo != nil {
			v, err := eval(path.lo, ctx)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			start = v.Int()
			if path.loStrict {
				start++
			}
		}
		var end int64 = 1<<63 - 1
		if path.hi != nil {
			v, err := eval(path.hi, ctx)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			end = v.Int()
			if path.hiStrict {
				end--
			}
		}
		cur, err := tree.CursorGE(start)
		if err != nil {
			return err
		}
		for cur.Valid() {
			rowid := cur.Rowid()
			if rowid > end {
				return nil
			}
			payload, err := cur.Payload()
			if err != nil {
				return err
			}
			if err := try(rowid, payload); err != nil {
				return err
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		return nil

	case pathIndexEq:
		v, err := eval(path.eq, ctx)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		prefix := EncodeRecord(nil, []Value{v})
		cur, err := db.idxTreeOf(path.idx).CursorKeyGE(prefix)
		if err != nil {
			return err
		}
		for cur.Valid() {
			key, err := cur.Key()
			if err != nil {
				return err
			}
			kvals, err := DecodeRecord(key)
			if err != nil {
				return err
			}
			if len(kvals) < 2 || Compare(kvals[0], v) != 0 {
				return nil // past the matching prefix
			}
			rowid := kvals[len(kvals)-1].Int()
			payload, ok, err := tree.Get(rowid)
			if err != nil {
				return err
			}
			if ok {
				if err := try(rowid, payload); err != nil {
					return err
				}
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		return nil

	default: // full scan
		cur, err := tree.Cursor()
		if err != nil {
			return err
		}
		for cur.Valid() {
			payload, err := cur.Payload()
			if err != nil {
				return err
			}
			if err := try(cur.Rowid(), payload); err != nil {
				return err
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		return nil
	}
}

// --- SELECT ---

// Rows is a materialised result set.
type Rows struct {
	Cols []string
	rows [][]Value
	pos  int
}

// Next advances to the next row, reporting availability.
func (r *Rows) Next() bool {
	if r.pos >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row after Next reported true.
func (r *Rows) Row() []Value { return r.rows[r.pos-1] }

// Len returns the total number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// All returns every row.
func (r *Rows) All() [][]Value { return r.rows }

type selectPlan struct {
	st        *SelectStmt
	schemas   []*TableSchema
	resExprs  []Expr
	resNames  []string
	conds     [][]Expr // per-level conjuncts
	accs      []*aggAcc
	orderEx   []Expr
	orderDesc []bool
}

func (db *DB) prepareSelect(st *SelectStmt) (*selectPlan, error) {
	pl := &selectPlan{st: st}
	sc := &bindScope{}
	for _, ref := range st.From {
		ts, err := db.table(ref.Name)
		if err != nil {
			return nil, err
		}
		name := ref.Alias
		if name == "" {
			name = ref.Name
		}
		sc.names = append(sc.names, name)
		sc.schemas = append(sc.schemas, ts)
		pl.schemas = append(pl.schemas, ts)
	}

	// Expand stars.
	for _, rc := range st.Cols {
		if !rc.Star {
			pl.resExprs = append(pl.resExprs, rc.Expr)
			name := rc.Alias
			if name == "" {
				if cr, ok := rc.Expr.(*ColRef); ok {
					name = cr.Col
				} else {
					name = fmt.Sprintf("col%d", len(pl.resExprs))
				}
			}
			pl.resNames = append(pl.resNames, name)
			continue
		}
		for si, ts := range pl.schemas {
			if rc.StarTable != "" && !strings.EqualFold(rc.StarTable, sc.names[si]) {
				continue
			}
			for ci, col := range ts.Cols {
				cr := &ColRef{Table: sc.names[si], Col: col.Name, src: si, col: ci, bound: true}
				if ts.RowidPK == ci {
					cr.col = -1
				}
				pl.resExprs = append(pl.resExprs, cr)
				pl.resNames = append(pl.resNames, col.Name)
			}
		}
	}
	if len(pl.resExprs) == 0 {
		return nil, errEval("empty select list")
	}

	// Bind result expressions, WHERE, ON, GROUP BY, HAVING.
	for _, e := range pl.resExprs {
		if err := bindExpr(e, sc); err != nil {
			return nil, err
		}
	}
	if err := bindExpr(st.Where, sc); err != nil {
		return nil, err
	}
	for i := range st.From {
		if err := bindExpr(st.From[i].On, sc); err != nil {
			return nil, err
		}
	}
	for _, g := range st.GroupBy {
		if err := bindExpr(g, sc); err != nil {
			return nil, err
		}
	}
	if err := bindExpr(st.Having, sc); err != nil {
		return nil, err
	}

	// ORDER BY terms: ordinals and aliases refer to result columns.
	for _, term := range st.OrderBy {
		e := term.Expr
		if lit, ok := e.(*Literal); ok && lit.Val.Type() == Integer {
			ord := int(lit.Val.Int())
			if ord < 1 || ord > len(pl.resExprs) {
				return nil, errEval("ORDER BY ordinal %d out of range", ord)
			}
			e = pl.resExprs[ord-1]
		} else if cr, ok := e.(*ColRef); ok && cr.Table == "" {
			for i, n := range pl.resNames {
				if strings.EqualFold(n, cr.Col) {
					e = pl.resExprs[i]
					break
				}
			}
		}
		if err := bindExpr(e, sc); err != nil {
			return nil, err
		}
		pl.orderEx = append(pl.orderEx, e)
		pl.orderDesc = append(pl.orderDesc, term.Desc)
	}

	// Distribute conjuncts to join levels.
	var conjuncts []Expr
	conjuncts = splitConjuncts(st.Where, conjuncts)
	for i := range st.From {
		conjuncts = splitConjuncts(st.From[i].On, conjuncts)
	}
	pl.conds = make([][]Expr, len(st.From))
	if len(st.From) > 0 {
		for _, c := range conjuncts {
			lvl := maxSrcOf(c)
			if lvl < 0 {
				lvl = 0
			}
			pl.conds[lvl] = append(pl.conds[lvl], c)
		}
	}

	// Aggregates.
	aggScan := append(append([]Expr{}, pl.resExprs...), st.Having)
	aggScan = append(aggScan, pl.orderEx...)
	pl.accs = collectAggregates(aggScan)
	return pl, nil
}

type outRow struct {
	proj []Value
	keys []Value
}

func (db *DB) execSelect(st *SelectStmt, args []Value) (*Rows, error) {
	pl, err := db.prepareSelect(st)
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{
		rows:   make([][]Value, len(pl.schemas)),
		rowids: make([]int64, len(pl.schemas)),
		args:   args,
		rng:    db.rng,
	}

	isAgg := len(pl.accs) > 0 || len(pl.st.GroupBy) > 0
	var out []outRow

	project := func() error {
		or := outRow{proj: make([]Value, len(pl.resExprs))}
		for i, e := range pl.resExprs {
			v, err := eval(e, ctx)
			if err != nil {
				return err
			}
			or.proj[i] = v
		}
		if len(pl.orderEx) > 0 {
			or.keys = make([]Value, len(pl.orderEx))
			for i, e := range pl.orderEx {
				v, err := eval(e, ctx)
				if err != nil {
					return err
				}
				or.keys[i] = v
			}
		}
		out = append(out, or)
		return nil
	}

	if isAgg {
		type group struct {
			accs   []*aggAcc
			rows   [][]Value
			rowids []int64
		}
		groups := make(map[string]*group)
		var order []string
		newGroup := func() *group {
			g := &group{accs: make([]*aggAcc, len(pl.accs))}
			for i, a := range pl.accs {
				g.accs[i] = &aggAcc{call: a.call}
			}
			return g
		}
		step := func() error {
			key := ""
			if len(pl.st.GroupBy) > 0 {
				kv := make([]Value, len(pl.st.GroupBy))
				for i, ge := range pl.st.GroupBy {
					v, err := eval(ge, ctx)
					if err != nil {
						return err
					}
					kv[i] = v
				}
				key = string(EncodeRecord(nil, kv))
			}
			g, ok := groups[key]
			if !ok {
				g = newGroup()
				g.rows = append([][]Value{}, ctx.rows...)
				g.rowids = append([]int64{}, ctx.rowids...)
				groups[key] = g
				order = append(order, key)
			}
			for _, a := range g.accs {
				if err := a.step(ctx); err != nil {
					return err
				}
			}
			return nil
		}
		if err := db.joinLoop(pl, ctx, 0, step); err != nil {
			return nil, err
		}
		if len(groups) == 0 && len(pl.st.GroupBy) == 0 {
			groups[""] = newGroup()
			order = append(order, "")
		}
		for _, key := range order {
			g := groups[key]
			ctx.aggMode = true
			ctx.aggVals = make([]Value, len(g.accs))
			for i, a := range g.accs {
				ctx.aggVals[i] = a.result()
			}
			if g.rows != nil {
				copy(ctx.rows, g.rows)
				copy(ctx.rowids, g.rowids)
			} else {
				for i := range ctx.rows {
					ctx.rows[i] = make([]Value, len(pl.schemas[i].Cols))
					for j := range ctx.rows[i] {
						ctx.rows[i][j] = NullVal()
					}
				}
			}
			if pl.st.Having != nil {
				hv, err := eval(pl.st.Having, ctx)
				if err != nil {
					return nil, err
				}
				if hv.IsNull() || !hv.Bool() {
					continue
				}
			}
			if err := project(); err != nil {
				return nil, err
			}
		}
		ctx.aggMode = false
	} else {
		if len(pl.schemas) == 0 {
			// SELECT without FROM.
			if err := project(); err != nil {
				return nil, err
			}
		} else if err := db.joinLoop(pl, ctx, 0, project); err != nil {
			return nil, err
		}
	}

	// DISTINCT.
	if pl.st.Distinct {
		seen := make(map[string]bool, len(out))
		dedup := out[:0]
		for _, or := range out {
			k := string(EncodeRecord(nil, or.proj))
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, or)
			}
		}
		out = dedup
	}

	// ORDER BY.
	if len(pl.orderEx) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return CompareRows(out[i].keys, out[j].keys, pl.orderDesc) < 0
		})
	}

	// LIMIT / OFFSET.
	if pl.st.Limit != nil {
		lv, err := eval(pl.st.Limit, ctx)
		if err != nil {
			return nil, err
		}
		limit := int(lv.Int())
		offset := 0
		if pl.st.Offset != nil {
			ov, err := eval(pl.st.Offset, ctx)
			if err != nil {
				return nil, err
			}
			offset = int(ov.Int())
		}
		if offset < 0 {
			offset = 0
		}
		if offset > len(out) {
			offset = len(out)
		}
		end := len(out)
		if limit >= 0 && offset+limit < end {
			end = offset + limit
		}
		out = out[offset:end]
	}

	rows := &Rows{Cols: pl.resNames, rows: make([][]Value, len(out))}
	for i, or := range out {
		rows.rows[i] = or.proj
	}
	return rows, nil
}

// joinLoop performs the nested-loop join over FROM sources.
func (db *DB) joinLoop(pl *selectPlan, ctx *evalCtx, level int, emit func() error) error {
	if level == len(pl.schemas) {
		return emit()
	}
	return db.scanSource(pl.schemas[level], level, pl.conds[level], ctx, func() error {
		return db.joinLoop(pl, ctx, level+1, emit)
	})
}

// --- INSERT / UPDATE / DELETE ---

func (db *DB) execInsert(st *InsertStmt, args []Value) (int64, error) {
	ts, err := db.table(st.Table)
	if err != nil {
		return 0, err
	}
	// Column targets.
	targets := make([]int, 0, len(ts.Cols))
	if len(st.Cols) == 0 {
		for i := range ts.Cols {
			targets = append(targets, i)
		}
	} else {
		for _, cn := range st.Cols {
			ci := ts.colIndex(cn)
			if ci < 0 {
				return 0, errEval("table %s has no column %s", ts.Name, cn)
			}
			targets = append(targets, ci)
		}
	}

	var sourceRows [][]Value
	if st.Select != nil {
		res, err := db.execSelect(st.Select, args)
		if err != nil {
			return 0, err
		}
		sourceRows = res.rows
	} else {
		ctx := &evalCtx{args: args, rng: db.rng}
		for _, exprRow := range st.Rows {
			if len(exprRow) != len(targets) {
				return 0, errEval("%d values for %d columns", len(exprRow), len(targets))
			}
			vals := make([]Value, len(exprRow))
			for i, e := range exprRow {
				if err := bindExpr(e, &bindScope{}); err != nil {
					return 0, err
				}
				v, err := eval(e, ctx)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			sourceRows = append(sourceRows, vals)
		}
	}

	var count int64
	for _, src := range sourceRows {
		if len(src) != len(targets) {
			return 0, errEval("%d values for %d columns", len(src), len(targets))
		}
		row := make([]Value, len(ts.Cols))
		provided := make([]bool, len(ts.Cols))
		for i, ci := range targets {
			row[ci] = applyAffinity(src[i], ts.Cols[ci].Affinity)
			provided[ci] = true
		}
		for i := range row {
			if !provided[i] {
				if ts.Cols[i].Default != nil {
					row[i] = *ts.Cols[i].Default
				} else {
					row[i] = NullVal()
				}
			}
		}
		var rowid int64
		if ts.RowidPK >= 0 && !row[ts.RowidPK].IsNull() {
			rowid = row[ts.RowidPK].Int()
		} else {
			rowid, err = db.nextRowid(ts)
			if err != nil {
				return count, err
			}
			if ts.RowidPK >= 0 {
				row[ts.RowidPK] = IntVal(rowid)
			}
		}
		if err := db.insertRow(ts, rowid, row, st.OrReplace); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func (db *DB) execUpdate(st *UpdateStmt, args []Value) (int64, error) {
	ts, err := db.table(st.Table)
	if err != nil {
		return 0, err
	}
	sc := &bindScope{names: []string{st.Table}, schemas: []*TableSchema{ts}}
	if err := bindExpr(st.Where, sc); err != nil {
		return 0, err
	}
	setCols := make([]int, len(st.Sets))
	for i, set := range st.Sets {
		ci := ts.colIndex(set.Col)
		rowidTarget := strings.EqualFold(set.Col, "rowid")
		if ci < 0 && !rowidTarget {
			return 0, errEval("no such column: %s", set.Col)
		}
		if rowidTarget {
			ci = -1
		}
		setCols[i] = ci
		if err := bindExpr(set.Expr, sc); err != nil {
			return 0, err
		}
	}

	ctx := &evalCtx{rows: make([][]Value, 1), rowids: make([]int64, 1), args: args, rng: db.rng}
	conds := splitConjuncts(st.Where, nil)

	// Materialise targets first: mutating while scanning invalidates
	// cursors.
	type target struct {
		rowid int64
		row   []Value
	}
	var targets2 []target
	err = db.scanSource(ts, 0, conds, ctx, func() error {
		row := append([]Value{}, ctx.rows[0]...)
		targets2 = append(targets2, target{ctx.rowids[0], row})
		return nil
	})
	if err != nil {
		return 0, err
	}

	var count int64
	for _, tg := range targets2 {
		ctx.rows[0] = tg.row
		ctx.rowids[0] = tg.rowid
		newRow := append([]Value{}, tg.row...)
		newRowid := tg.rowid
		for i, set := range st.Sets {
			v, err := eval(set.Expr, ctx)
			if err != nil {
				return count, err
			}
			if setCols[i] == -1 || setCols[i] == ts.RowidPK {
				newRowid = v.Int()
				if setCols[i] >= 0 {
					newRow[setCols[i]] = IntVal(newRowid)
				}
			} else {
				newRow[setCols[i]] = applyAffinity(v, ts.Cols[setCols[i]].Affinity)
			}
		}
		if err := db.deleteRowByID(ts, tg.rowid); err != nil {
			return count, err
		}
		if err := db.insertRow(ts, newRowid, newRow, false); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func (db *DB) execDelete(st *DeleteStmt, args []Value) (int64, error) {
	ts, err := db.table(st.Table)
	if err != nil {
		return 0, err
	}
	sc := &bindScope{names: []string{st.Table}, schemas: []*TableSchema{ts}}
	if err := bindExpr(st.Where, sc); err != nil {
		return 0, err
	}
	ctx := &evalCtx{rows: make([][]Value, 1), rowids: make([]int64, 1), args: args, rng: db.rng}
	conds := splitConjuncts(st.Where, nil)
	var rowids []int64
	err = db.scanSource(ts, 0, conds, ctx, func() error {
		rowids = append(rowids, ctx.rowids[0])
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, rowid := range rowids {
		if err := db.deleteRowByID(ts, rowid); err != nil {
			return int64(len(rowids)), err
		}
	}
	return int64(len(rowids)), nil
}
