package polybench

import "math"

// Solver and statistics kernels.

// nativeExp/nativeSqrt mirror the Wasm-side intrinsics exactly (same Go
// functions back the "math" host imports), keeping checksums bit-equal.
func nativeExp(x float64) float64  { return math.Exp(x) }
func nativeSqrt(x float64) float64 { return math.Sqrt(x) }

// spdInit builds the positive-definite input PolyBench uses for
// cholesky/ludcmp: A = B*B^T with B lower-triangular.
func spdInitNative(n int) []float64 {
	A := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			A[i*n+j] = float64(-j%n)/float64(n) + 1
		}
		for j := i + 1; j < n; j++ {
			A[i*n+j] = 0
		}
		A[i*n+i] = 1
	}
	B := make([]float64, n*n)
	for t := 0; t < n; t++ {
		for r := 0; r < n; r++ {
			for s := 0; s < n; s++ {
				B[r*n+s] += A[r*n+t] * A[s*n+t]
			}
		}
	}
	return B
}

func spdInitK(k *K, name string, n int) {
	k.Arr("__spd", n, n)
	k.For("i", IC(0), IC(n), func() {
		k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
			k.Store("__spd", []Iex{IV("i"), IV("j")},
				Add(Div(F(ISub(IC(0), IMod(IV("j"), IC(n)))), F(IC(n))), FC(1)))
		})
		k.For("j", IAdd(IV("i"), IC(1)), IC(n), func() {
			k.Store("__spd", []Iex{IV("i"), IV("j")}, FC(0))
		})
		k.Store("__spd", []Iex{IV("i"), IV("i")}, FC(1))
	})
	k.For("i", IC(0), IC(n), func() {
		k.For("j", IC(0), IC(n), func() {
			k.Store(name, []Iex{IV("i"), IV("j")}, FC(0))
		})
	})
	k.For("t", IC(0), IC(n), func() {
		k.For("r", IC(0), IC(n), func() {
			k.For("s", IC(0), IC(n), func() {
				k.AddTo(name, []Iex{IV("r"), IV("s")},
					Mul(A("__spd", IV("r"), IV("t")), A("__spd", IV("s"), IV("t"))))
			})
		})
	})
}

// --- cholesky ---

func kCholesky() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		spdInitK(k, "A", n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IV("i"), func() {
				k.For("l", IC(0), IV("j"), func() {
					k.Store("A", []Iex{IV("i"), IV("j")},
						Sub(A("A", IV("i"), IV("j")),
							Mul(A("A", IV("i"), IV("l")), A("A", IV("j"), IV("l")))))
				})
				k.Store("A", []Iex{IV("i"), IV("j")},
					Div(A("A", IV("i"), IV("j")), A("A", IV("j"), IV("j"))))
			})
			k.For("l", IC(0), IV("i"), func() {
				k.Store("A", []Iex{IV("i"), IV("i")},
					Sub(A("A", IV("i"), IV("i")),
						Mul(A("A", IV("i"), IV("l")), A("A", IV("i"), IV("l")))))
			})
			k.Store("A", []Iex{IV("i"), IV("i")}, Sqrt(A("A", IV("i"), IV("i"))))
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		A := spdInitNative(n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				for l := 0; l < j; l++ {
					A[i*n+j] -= A[i*n+l] * A[j*n+l]
				}
				A[i*n+j] /= A[j*n+j]
			}
			for l := 0; l < i; l++ {
				A[i*n+i] -= A[i*n+l] * A[i*n+l]
			}
			A[i*n+i] = nativeSqrt(A[i*n+i])
		}
		return sum(A)
	}
	return Kernel{Name: "cholesky", Build: build, Native: native}
}

// --- lu ---

func kLu() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		spdInitK(k, "A", n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IV("i"), func() {
				k.For("l", IC(0), IV("j"), func() {
					k.Store("A", []Iex{IV("i"), IV("j")},
						Sub(A("A", IV("i"), IV("j")),
							Mul(A("A", IV("i"), IV("l")), A("A", IV("l"), IV("j")))))
				})
				k.Store("A", []Iex{IV("i"), IV("j")},
					Div(A("A", IV("i"), IV("j")), A("A", IV("j"), IV("j"))))
			})
			k.For("j", IV("i"), IC(n), func() {
				k.For("l", IC(0), IV("i"), func() {
					k.Store("A", []Iex{IV("i"), IV("j")},
						Sub(A("A", IV("i"), IV("j")),
							Mul(A("A", IV("i"), IV("l")), A("A", IV("l"), IV("j")))))
				})
			})
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		A := spdInitNative(n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				for l := 0; l < j; l++ {
					A[i*n+j] -= A[i*n+l] * A[l*n+j]
				}
				A[i*n+j] /= A[j*n+j]
			}
			for j := i; j < n; j++ {
				for l := 0; l < i; l++ {
					A[i*n+j] -= A[i*n+l] * A[l*n+j]
				}
			}
		}
		return sum(A)
	}
	return Kernel{Name: "lu", Build: build, Native: native}
}

// --- ludcmp: LU + solve ---

func kLudcmp() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("b", n)
		k.Arr("x", n)
		k.Arr("y", n)
		spdInitK(k, "A", n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("b", []Iex{IV("i")},
				Add(Div(F(IAdd(IV("i"), IC(1))), F(IC(n))), FC(4)))
		})
		// LU (same as lu kernel).
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IV("i"), func() {
				k.SetF("w", A("A", IV("i"), IV("j")))
				k.For("l", IC(0), IV("j"), func() {
					k.SetF("w", Sub(FV("w"), Mul(A("A", IV("i"), IV("l")), A("A", IV("l"), IV("j")))))
				})
				k.Store("A", []Iex{IV("i"), IV("j")}, Div(FV("w"), A("A", IV("j"), IV("j"))))
			})
			k.For("j", IV("i"), IC(n), func() {
				k.SetF("w", A("A", IV("i"), IV("j")))
				k.For("l", IC(0), IV("i"), func() {
					k.SetF("w", Sub(FV("w"), Mul(A("A", IV("i"), IV("l")), A("A", IV("l"), IV("j")))))
				})
				k.Store("A", []Iex{IV("i"), IV("j")}, FV("w"))
			})
		})
		// Forward substitution.
		k.For("i", IC(0), IC(n), func() {
			k.SetF("w", A("b", IV("i")))
			k.For("j", IC(0), IV("i"), func() {
				k.SetF("w", Sub(FV("w"), Mul(A("A", IV("i"), IV("j")), A("y", IV("j")))))
			})
			k.Store("y", []Iex{IV("i")}, FV("w"))
		})
		// Back substitution.
		k.ForDown("i", IC(n), IC(0), func() {
			k.SetF("w", A("y", IV("i")))
			k.For("j", IAdd(IV("i"), IC(1)), IC(n), func() {
				k.SetF("w", Sub(FV("w"), Mul(A("A", IV("i"), IV("j")), A("x", IV("j")))))
			})
			k.Store("x", []Iex{IV("i")}, Div(FV("w"), A("A", IV("i"), IV("i"))))
		})
		return k.Finish("x")
	}
	native := func(n int) float64 {
		A := spdInitNative(n)
		b := make([]float64, n)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = float64(i+1)/float64(n) + 4
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				w := A[i*n+j]
				for l := 0; l < j; l++ {
					w -= A[i*n+l] * A[l*n+j]
				}
				A[i*n+j] = w / A[j*n+j]
			}
			for j := i; j < n; j++ {
				w := A[i*n+j]
				for l := 0; l < i; l++ {
					w -= A[i*n+l] * A[l*n+j]
				}
				A[i*n+j] = w
			}
		}
		for i := 0; i < n; i++ {
			w := b[i]
			for j := 0; j < i; j++ {
				w -= A[i*n+j] * y[j]
			}
			y[i] = w
		}
		for i := n - 1; i >= 0; i-- {
			w := y[i]
			for j := i + 1; j < n; j++ {
				w -= A[i*n+j] * x[j]
			}
			x[i] = w / A[i*n+i]
		}
		return sum(x)
	}
	return Kernel{Name: "ludcmp", Build: build, Native: native}
}

// --- trisolv ---

func kTrisolv() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("L", n, n)
		k.Arr("x", n)
		k.Arr("b", n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("b", []Iex{IV("i")}, F(IV("i")))
			k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
				k.Store("L", []Iex{IV("i"), IV("j")},
					Div(Mul(FC(2), F(IAdd(IAdd(IV("i"), IV("j")), IC(n)))), Mul(FC(2), F(IC(n)))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.SetF("w", A("b", IV("i")))
			k.For("j", IC(0), IV("i"), func() {
				k.SetF("w", Sub(FV("w"), Mul(A("L", IV("i"), IV("j")), A("x", IV("j")))))
			})
			k.Store("x", []Iex{IV("i")}, Div(FV("w"), A("L", IV("i"), IV("i"))))
		})
		return k.Finish("x")
	}
	native := func(n int) float64 {
		L := make([]float64, n*n)
		x := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = float64(i)
			for j := 0; j <= i; j++ {
				L[i*n+j] = 2 * float64(i+j+n) / (2 * float64(n))
			}
		}
		for i := 0; i < n; i++ {
			w := b[i]
			for j := 0; j < i; j++ {
				w -= L[i*n+j] * x[j]
			}
			x[i] = w / L[i*n+i]
		}
		return sum(x)
	}
	return Kernel{Name: "trisolv", Build: build, Native: native}
}

// --- durbin ---

func kDurbin() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("r", n)
		k.Arr("y", n)
		k.Arr("z", n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("r", []Iex{IV("i")}, F(IAdd(ISub(IC(n), IV("i")), IC(1))))
		})
		k.Store("y", []Iex{IC(0)}, Neg(A("r", IC(0))))
		k.SetF("beta", FC(1))
		k.SetF("alpha", Neg(A("r", IC(0))))
		k.For("i", IC(1), IC(n), func() {
			k.SetF("beta", Mul(Sub(FC(1), Mul(FV("alpha"), FV("alpha"))), FV("beta")))
			k.SetF("s", FC(0))
			k.For("j", IC(0), IV("i"), func() {
				k.SetF("s", Add(FV("s"),
					Mul(A("r", ISub(ISub(IV("i"), IV("j")), IC(1))), A("y", IV("j")))))
			})
			k.SetF("alpha", Neg(Div(Add(A("r", IV("i")), FV("s")), FV("beta"))))
			k.For("j", IC(0), IV("i"), func() {
				k.Store("z", []Iex{IV("j")},
					Add(A("y", IV("j")),
						Mul(FV("alpha"), A("y", ISub(ISub(IV("i"), IV("j")), IC(1))))))
			})
			k.For("j", IC(0), IV("i"), func() {
				k.Store("y", []Iex{IV("j")}, A("z", IV("j")))
			})
			k.Store("y", []Iex{IV("i")}, FV("alpha"))
		})
		return k.Finish("y")
	}
	native := func(n int) float64 {
		r := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			r[i] = float64(n - i + 1)
		}
		y[0] = -r[0]
		beta := 1.0
		alpha := -r[0]
		for i := 1; i < n; i++ {
			beta = (1 - alpha*alpha) * beta
			s := 0.0
			for j := 0; j < i; j++ {
				s += r[i-j-1] * y[j]
			}
			alpha = -(r[i] + s) / beta
			for j := 0; j < i; j++ {
				z[j] = y[j] + alpha*y[i-j-1]
			}
			for j := 0; j < i; j++ {
				y[j] = z[j]
			}
			y[i] = alpha
		}
		return sum(y)
	}
	return Kernel{Name: "durbin", Build: build, Native: native}
}

// --- gramschmidt ---

func kGramschmidt() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("R", n, n)
		k.Arr("Q", n, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("A", []Iex{IV("i"), IV("j")},
					Add(Div(F(IMod(IMul(IV("i"), IV("j")), IC(n))), F(IC(n))), FC(1)))
				k.Store("Q", []Iex{IV("i"), IV("j")}, FC(0))
				k.Store("R", []Iex{IV("i"), IV("j")}, FC(0))
			})
		})
		k.For("l", IC(0), IC(n), func() {
			k.SetF("nrm", FC(0))
			k.For("i", IC(0), IC(n), func() {
				k.SetF("nrm", Add(FV("nrm"),
					Mul(A("A", IV("i"), IV("l")), A("A", IV("i"), IV("l")))))
			})
			k.Store("R", []Iex{IV("l"), IV("l")}, Sqrt(FV("nrm")))
			k.For("i", IC(0), IC(n), func() {
				k.Store("Q", []Iex{IV("i"), IV("l")},
					Div(A("A", IV("i"), IV("l")), A("R", IV("l"), IV("l"))))
			})
			k.For("j", IAdd(IV("l"), IC(1)), IC(n), func() {
				k.Store("R", []Iex{IV("l"), IV("j")}, FC(0))
				k.For("i", IC(0), IC(n), func() {
					k.AddTo("R", []Iex{IV("l"), IV("j")},
						Mul(A("Q", IV("i"), IV("l")), A("A", IV("i"), IV("j"))))
				})
				k.For("i", IC(0), IC(n), func() {
					k.Store("A", []Iex{IV("i"), IV("j")},
						Sub(A("A", IV("i"), IV("j")),
							Mul(A("Q", IV("i"), IV("l")), A("R", IV("l"), IV("j")))))
				})
			})
		})
		return k.Finish("R", "Q")
	}
	native := func(n int) float64 {
		A := make([]float64, n*n)
		R := make([]float64, n*n)
		Q := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				A[i*n+j] = float64((i*j)%n)/float64(n) + 1
			}
		}
		for l := 0; l < n; l++ {
			nrm := 0.0
			for i := 0; i < n; i++ {
				nrm += A[i*n+l] * A[i*n+l]
			}
			R[l*n+l] = nativeSqrt(nrm)
			for i := 0; i < n; i++ {
				Q[i*n+l] = A[i*n+l] / R[l*n+l]
			}
			for j := l + 1; j < n; j++ {
				R[l*n+j] = 0
				for i := 0; i < n; i++ {
					R[l*n+j] += Q[i*n+l] * A[i*n+j]
				}
				for i := 0; i < n; i++ {
					A[i*n+j] = A[i*n+j] - Q[i*n+l]*R[l*n+j]
				}
			}
		}
		return sum(R) + sum(Q)
	}
	return Kernel{Name: "gramschmidt", Build: build, Native: native}
}

// --- correlation ---

func kCorrelation() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("data", n, n)
		k.Arr("corr", n, n)
		k.Arr("mean", n)
		k.Arr("stddev", n)
		initMatF(k, "data", n, n, 1, n)
		fn := F(IC(n))
		k.For("j", IC(0), IC(n), func() {
			k.Store("mean", []Iex{IV("j")}, FC(0))
			k.For("i", IC(0), IC(n), func() {
				k.AddTo("mean", []Iex{IV("j")}, A("data", IV("i"), IV("j")))
			})
			k.Store("mean", []Iex{IV("j")}, Div(A("mean", IV("j")), fn))
		})
		k.For("j", IC(0), IC(n), func() {
			k.Store("stddev", []Iex{IV("j")}, FC(0))
			k.For("i", IC(0), IC(n), func() {
				k.SetF("d", Sub(A("data", IV("i"), IV("j")), A("mean", IV("j"))))
				k.AddTo("stddev", []Iex{IV("j")}, Mul(FV("d"), FV("d")))
			})
			k.Store("stddev", []Iex{IV("j")}, Sqrt(Div(A("stddev", IV("j")), fn)))
			// Guard near-zero stddev like PolyBench does.
			k.SetF("sd", A("stddev", IV("j")))
			k.Store("stddev", []Iex{IV("j")}, FMax(FV("sd"), FC(0.1)))
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("data", []Iex{IV("i"), IV("j")},
					Div(Sub(A("data", IV("i"), IV("j")), A("mean", IV("j"))),
						Mul(Sqrt(fn), A("stddev", IV("j")))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.Store("corr", []Iex{IV("i"), IV("i")}, FC(1))
			k.For("j", IAdd(IV("i"), IC(1)), IC(n), func() {
				k.Store("corr", []Iex{IV("i"), IV("j")}, FC(0))
				k.For("l", IC(0), IC(n), func() {
					k.AddTo("corr", []Iex{IV("i"), IV("j")},
						Mul(A("data", IV("l"), IV("i")), A("data", IV("l"), IV("j"))))
				})
				k.Store("corr", []Iex{IV("j"), IV("i")}, A("corr", IV("i"), IV("j")))
			})
		})
		return k.Finish("corr")
	}
	native := func(n int) float64 {
		data := mat(n, n, 1, n)
		corr := make([]float64, n*n)
		mean := make([]float64, n)
		stddev := make([]float64, n)
		fn := float64(n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				mean[j] += data[i*n+j]
			}
			mean[j] /= fn
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				d := data[i*n+j] - mean[j]
				stddev[j] += d * d
			}
			stddev[j] = nativeSqrt(stddev[j] / fn)
			if !(stddev[j] > 0.1) {
				stddev[j] = 0.1
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				data[i*n+j] = (data[i*n+j] - mean[j]) / (nativeSqrt(fn) * stddev[j])
			}
		}
		for i := 0; i < n; i++ {
			corr[i*n+i] = 1
			for j := i + 1; j < n; j++ {
				for l := 0; l < n; l++ {
					corr[i*n+j] += data[l*n+i] * data[l*n+j]
				}
				corr[j*n+i] = corr[i*n+j]
			}
		}
		return sum(corr)
	}
	return Kernel{Name: "correlation", Build: build, Native: native}
}

// --- covariance ---

func kCovariance() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("data", n, n)
		k.Arr("cov", n, n)
		k.Arr("mean", n)
		initMatF(k, "data", n, n, 1, n)
		fn := F(IC(n))
		k.For("j", IC(0), IC(n), func() {
			k.Store("mean", []Iex{IV("j")}, FC(0))
			k.For("i", IC(0), IC(n), func() {
				k.AddTo("mean", []Iex{IV("j")}, A("data", IV("i"), IV("j")))
			})
			k.Store("mean", []Iex{IV("j")}, Div(A("mean", IV("j")), fn))
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("data", []Iex{IV("i"), IV("j")},
					Sub(A("data", IV("i"), IV("j")), A("mean", IV("j"))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IV("i"), IC(n), func() {
				k.Store("cov", []Iex{IV("i"), IV("j")}, FC(0))
				k.For("l", IC(0), IC(n), func() {
					k.AddTo("cov", []Iex{IV("i"), IV("j")},
						Mul(A("data", IV("l"), IV("i")), A("data", IV("l"), IV("j"))))
				})
				k.Store("cov", []Iex{IV("i"), IV("j")},
					Div(A("cov", IV("i"), IV("j")), Sub(fn, FC(1))))
				k.Store("cov", []Iex{IV("j"), IV("i")}, A("cov", IV("i"), IV("j")))
			})
		})
		return k.Finish("cov")
	}
	native := func(n int) float64 {
		data := mat(n, n, 1, n)
		cov := make([]float64, n*n)
		mean := make([]float64, n)
		fn := float64(n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				mean[j] += data[i*n+j]
			}
			mean[j] /= fn
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				data[i*n+j] -= mean[j]
			}
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				for l := 0; l < n; l++ {
					cov[i*n+j] += data[l*n+i] * data[l*n+j]
				}
				cov[i*n+j] /= fn - 1
				cov[j*n+i] = cov[i*n+j]
			}
		}
		return sum(cov)
	}
	return Kernel{Name: "covariance", Build: build, Native: native}
}
