package polybench

import (
	"math"
	"testing"

	"twine/internal/wasm"
)

// TestTierDifferential runs every PolyBench kernel under all four
// execution tiers — interpreter, fused AoT, the PR 4 register tier and
// the PR 7 superblock tier — and requires bit-identical checksums. The
// interpreter is the reference semantics; the register tier's folding,
// propagation and fusion, and the superblock tier's loop traces, must
// never change a result bit (floats are deliberately never folded at
// translation time for exactly this reason).
func TestTierDifferential(t *testing.T) {
	const n = 12
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			bin := k.Build(n)
			mod, err := wasm.Decode(bin)
			if err != nil {
				t.Fatal(err)
			}
			c, err := wasm.Compile(mod)
			if err != nil {
				t.Fatal(err)
			}
			var sums [4]uint64
			for i, eng := range []wasm.Engine{wasm.EngineInterp, wasm.EngineAOT, wasm.EngineRegister, wasm.EngineSuperblock} {
				imp := wasm.NewImportObject()
				MathImports(imp)
				in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: eng})
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				// Two invocations: the second runs over dirtied memory,
				// exercising re-initialisation under each tier.
				for r := 0; r < 2; r++ {
					out, err := in.Invoke("run")
					if err != nil {
						t.Fatalf("%v: %v", eng, err)
					}
					sums[i] = out[0]
				}
			}
			if sums[0] != sums[1] || sums[0] != sums[2] || sums[0] != sums[3] {
				t.Errorf("checksum mismatch: interp=%x (%v) aot=%x reg=%x super=%x",
					sums[0], math.Float64frombits(sums[0]), sums[1], sums[2], sums[3])
			}
			// The register and superblock tiers must actually have engaged
			// (no silent wholesale bailout to the fused form / register
			// interpreter). Instantiated without a touch hook above:
			// unguarded form.
			if st := c.RegStats(false); st.Funcs == 0 {
				t.Errorf("register translation bailed out entirely: %+v", st)
			}
			if st := c.SuperStats(false); st.Idioms+st.StepLoops == 0 {
				t.Errorf("superblock translation traced no loops: %+v", st)
			}
		})
	}
}
