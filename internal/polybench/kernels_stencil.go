package polybench

// Stencil and dynamic-programming kernels. Time-stepped kernels use
// tsteps = n/8 (minimum 2) so problem size scales with one parameter.

func tstepsOf(n int) int {
	t := n / 8
	if t < 2 {
		t = 2
	}
	return t
}

// --- jacobi-1d ---

func kJacobi1d() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("A", n)
		k.Arr("B", n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("A", []Iex{IV("i")}, Div(F(IAdd(IV("i"), IC(2))), F(IC(n))))
			k.Store("B", []Iex{IV("i")}, Div(F(IAdd(IV("i"), IC(3))), F(IC(n))))
		})
		k.For("t", IC(0), IC(t), func() {
			k.For("i", IC(1), IC(n-1), func() {
				k.Store("B", []Iex{IV("i")},
					Mul(FC(0.33333), Add(Add(A("A", ISub(IV("i"), IC(1))), A("A", IV("i"))),
						A("A", IAdd(IV("i"), IC(1))))))
			})
			k.For("i", IC(1), IC(n-1), func() {
				k.Store("A", []Iex{IV("i")},
					Mul(FC(0.33333), Add(Add(A("B", ISub(IV("i"), IC(1))), A("B", IV("i"))),
						A("B", IAdd(IV("i"), IC(1))))))
			})
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		A := make([]float64, n)
		B := make([]float64, n)
		for i := 0; i < n; i++ {
			A[i] = float64(i+2) / float64(n)
			B[i] = float64(i+3) / float64(n)
		}
		for ts := 0; ts < t; ts++ {
			for i := 1; i < n-1; i++ {
				B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])
			}
			for i := 1; i < n-1; i++ {
				A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1])
			}
		}
		return sum(A)
	}
	return Kernel{Name: "jacobi-1d", Build: build, Native: native}
}

// --- jacobi-2d ---

func kJacobi2d() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		initMatF(k, "A", n, n, 2, n)
		initMatF(k, "B", n, n, 3, n)
		step := func(dst, src string) {
			k.For("i", IC(1), IC(n-1), func() {
				k.For("j", IC(1), IC(n-1), func() {
					k.Store(dst, []Iex{IV("i"), IV("j")},
						Mul(FC(0.2), Add(Add(Add(Add(
							A(src, IV("i"), IV("j")),
							A(src, IV("i"), ISub(IV("j"), IC(1)))),
							A(src, IV("i"), IAdd(IV("j"), IC(1)))),
							A(src, IAdd(IV("i"), IC(1)), IV("j"))),
							A(src, ISub(IV("i"), IC(1)), IV("j")))))
				})
			})
		}
		k.For("t", IC(0), IC(t), func() {
			step("B", "A")
			step("A", "B")
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		A := mat(n, n, 2, n)
		B := mat(n, n, 3, n)
		step := func(dst, src []float64) {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					dst[i*n+j] = 0.2 * (src[i*n+j] + src[i*n+j-1] + src[i*n+j+1] +
						src[(i+1)*n+j] + src[(i-1)*n+j])
				}
			}
		}
		for ts := 0; ts < t; ts++ {
			step(B, A)
			step(A, B)
		}
		return sum(A)
	}
	return Kernel{Name: "jacobi-2d", Build: build, Native: native}
}

// --- seidel-2d ---

func kSeidel2d() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("A", n, n)
		initMatF(k, "A", n, n, 2, n)
		k.For("t", IC(0), IC(t), func() {
			k.For("i", IC(1), IC(n-1), func() {
				k.For("j", IC(1), IC(n-1), func() {
					k.Store("A", []Iex{IV("i"), IV("j")},
						Div(Add(Add(Add(Add(Add(Add(Add(Add(
							A("A", ISub(IV("i"), IC(1)), ISub(IV("j"), IC(1))),
							A("A", ISub(IV("i"), IC(1)), IV("j"))),
							A("A", ISub(IV("i"), IC(1)), IAdd(IV("j"), IC(1)))),
							A("A", IV("i"), ISub(IV("j"), IC(1)))),
							A("A", IV("i"), IV("j"))),
							A("A", IV("i"), IAdd(IV("j"), IC(1)))),
							A("A", IAdd(IV("i"), IC(1)), ISub(IV("j"), IC(1)))),
							A("A", IAdd(IV("i"), IC(1)), IV("j"))),
							A("A", IAdd(IV("i"), IC(1)), IAdd(IV("j"), IC(1)))),
							FC(9.0)))
				})
			})
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		A := mat(n, n, 2, n)
		for ts := 0; ts < t; ts++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1] +
						A[i*n+j-1] + A[i*n+j] + A[i*n+j+1] +
						A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1]) / 9.0
				}
			}
		}
		return sum(A)
	}
	return Kernel{Name: "seidel-2d", Build: build, Native: native}
}

// --- fdtd-2d ---

func kFdtd2d() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("ex", n, n)
		k.Arr("ey", n, n)
		k.Arr("hz", n, n)
		k.Arr("fict", t)
		k.For("i", IC(0), IC(t), func() {
			k.Store("fict", []Iex{IV("i")}, F(IV("i")))
		})
		initMatF(k, "ex", n, n, 1, n)
		initMatF(k, "ey", n, n, 2, n)
		initMatF(k, "hz", n, n, 3, n)
		k.For("t", IC(0), IC(t), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("ey", []Iex{IC(0), IV("j")}, A("fict", IV("t")))
			})
			k.For("i", IC(1), IC(n), func() {
				k.For("j", IC(0), IC(n), func() {
					k.Store("ey", []Iex{IV("i"), IV("j")},
						Sub(A("ey", IV("i"), IV("j")),
							Mul(FC(0.5), Sub(A("hz", IV("i"), IV("j")),
								A("hz", ISub(IV("i"), IC(1)), IV("j"))))))
				})
			})
			k.For("i", IC(0), IC(n), func() {
				k.For("j", IC(1), IC(n), func() {
					k.Store("ex", []Iex{IV("i"), IV("j")},
						Sub(A("ex", IV("i"), IV("j")),
							Mul(FC(0.5), Sub(A("hz", IV("i"), IV("j")),
								A("hz", IV("i"), ISub(IV("j"), IC(1)))))))
				})
			})
			k.For("i", IC(0), IC(n-1), func() {
				k.For("j", IC(0), IC(n-1), func() {
					k.Store("hz", []Iex{IV("i"), IV("j")},
						Sub(A("hz", IV("i"), IV("j")),
							Mul(FC(0.7), Sub(Add(
								Sub(A("ex", IV("i"), IAdd(IV("j"), IC(1))), A("ex", IV("i"), IV("j"))),
								A("ey", IAdd(IV("i"), IC(1)), IV("j"))),
								A("ey", IV("i"), IV("j"))))))
				})
			})
		})
		return k.Finish("hz")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		ex := mat(n, n, 1, n)
		ey := mat(n, n, 2, n)
		hz := mat(n, n, 3, n)
		fict := make([]float64, t)
		for i := range fict {
			fict[i] = float64(i)
		}
		for ts := 0; ts < t; ts++ {
			for j := 0; j < n; j++ {
				ey[j] = fict[ts]
			}
			for i := 1; i < n; i++ {
				for j := 0; j < n; j++ {
					ey[i*n+j] = ey[i*n+j] - 0.5*(hz[i*n+j]-hz[(i-1)*n+j])
				}
			}
			for i := 0; i < n; i++ {
				for j := 1; j < n; j++ {
					ex[i*n+j] = ex[i*n+j] - 0.5*(hz[i*n+j]-hz[i*n+j-1])
				}
			}
			for i := 0; i < n-1; i++ {
				for j := 0; j < n-1; j++ {
					hz[i*n+j] = hz[i*n+j] - 0.7*(ex[i*n+j+1]-ex[i*n+j]+ey[(i+1)*n+j]-ey[i*n+j])
				}
			}
		}
		return sum(hz)
	}
	return Kernel{Name: "fdtd-2d", Build: build, Native: native}
}

// --- heat-3d ---

func kHeat3d() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("A", n, n, n)
		k.Arr("B", n, n, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.For("l", IC(0), IC(n), func() {
					v := Div(F(IAdd(IAdd(IV("i"), IV("j")), ISub(IC(n), IV("l")))), F(IC(10*n)))
					k.Store("A", []Iex{IV("i"), IV("j"), IV("l")}, v)
					k.Store("B", []Iex{IV("i"), IV("j"), IV("l")}, v)
				})
			})
		})
		step := func(dst, src string) {
			k.For("i", IC(1), IC(n-1), func() {
				k.For("j", IC(1), IC(n-1), func() {
					k.For("l", IC(1), IC(n-1), func() {
						lap := func(hiI, loI, hiJ, loJ, hiL, loL Fex) Fex {
							dx := Add(Sub(hiI, Mul(FC(2), A(src, IV("i"), IV("j"), IV("l")))), loI)
							dy := Add(Sub(hiJ, Mul(FC(2), A(src, IV("i"), IV("j"), IV("l")))), loJ)
							dz := Add(Sub(hiL, Mul(FC(2), A(src, IV("i"), IV("j"), IV("l")))), loL)
							return Add(Add(Mul(FC(0.125), dx), Mul(FC(0.125), dy)),
								Add(Mul(FC(0.125), dz), A(src, IV("i"), IV("j"), IV("l"))))
						}
						k.Store(dst, []Iex{IV("i"), IV("j"), IV("l")}, lap(
							A(src, IAdd(IV("i"), IC(1)), IV("j"), IV("l")),
							A(src, ISub(IV("i"), IC(1)), IV("j"), IV("l")),
							A(src, IV("i"), IAdd(IV("j"), IC(1)), IV("l")),
							A(src, IV("i"), ISub(IV("j"), IC(1)), IV("l")),
							A(src, IV("i"), IV("j"), IAdd(IV("l"), IC(1))),
							A(src, IV("i"), IV("j"), ISub(IV("l"), IC(1)))))
					})
				})
			})
		}
		k.For("t", IC(0), IC(t), func() {
			step("B", "A")
			step("A", "B")
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		at := func(m []float64, i, j, l int) int { return (i*n+j)*n + l }
		A := make([]float64, n*n*n)
		B := make([]float64, n*n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for l := 0; l < n; l++ {
					v := float64(i+j+(n-l)) / float64(10*n)
					A[at(A, i, j, l)] = v
					B[at(B, i, j, l)] = v
				}
			}
		}
		step := func(dst, src []float64) {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					for l := 1; l < n-1; l++ {
						c := src[at(src, i, j, l)]
						dx := src[at(src, i+1, j, l)] - 2*c + src[at(src, i-1, j, l)]
						dy := src[at(src, i, j+1, l)] - 2*c + src[at(src, i, j-1, l)]
						dz := src[at(src, i, j, l+1)] - 2*c + src[at(src, i, j, l-1)]
						dst[at(dst, i, j, l)] = 0.125*dx + 0.125*dy + (0.125*dz + c)
					}
				}
			}
		}
		for ts := 0; ts < t; ts++ {
			step(B, A)
			step(A, B)
		}
		return sum(A)
	}
	return Kernel{Name: "heat-3d", Build: build, Native: native}
}

// --- adi: alternating direction implicit ---

func kAdi() Kernel {
	build := func(n int) []byte {
		t := tstepsOf(n)
		k := NewK()
		k.Arr("u", n, n)
		k.Arr("v", n, n)
		k.Arr("p", n, n)
		k.Arr("q", n, n)
		initMatF(k, "u", n, n, 2, n)
		// Coefficients from the PolyBench source with DX=1/n, DT=1/t.
		a, b, c, d, e, f := adiCoeffs(n, t)
		k.For("t", IC(0), IC(t), func() {
			// Column sweep.
			k.For("i", IC(1), IC(n-1), func() {
				k.Store("v", []Iex{IC(0), IV("i")}, FC(1))
				k.Store("p", []Iex{IV("i"), IC(0)}, FC(0))
				k.Store("q", []Iex{IV("i"), IC(0)}, FC(1))
				k.For("j", IC(1), IC(n-1), func() {
					k.Store("p", []Iex{IV("i"), IV("j")},
						Div(Neg(FC(c)), Add(Mul(FC(a), A("p", IV("i"), ISub(IV("j"), IC(1)))), FC(b))))
					k.Store("q", []Iex{IV("i"), IV("j")},
						Div(Sub(Sub(Add(Mul(Neg(FC(d)), A("u", IV("j"), ISub(IV("i"), IC(1)))),
							Mul(Add(FC(1), Mul(FC(2), FC(d))), A("u", IV("j"), IV("i")))),
							Mul(FC(f), A("u", IV("j"), IAdd(IV("i"), IC(1))))),
							Mul(FC(a), A("q", IV("i"), ISub(IV("j"), IC(1))))),
							Add(Mul(FC(a), A("p", IV("i"), ISub(IV("j"), IC(1)))), FC(b))))
				})
				k.Store("v", []Iex{IC(n - 1), IV("i")}, FC(1))
				k.ForDown("j", IC(n-1), IC(1), func() {
					k.Store("v", []Iex{IV("j"), IV("i")},
						Add(Mul(A("p", IV("i"), IV("j")), A("v", IAdd(IV("j"), IC(1)), IV("i"))),
							A("q", IV("i"), IV("j"))))
				})
			})
			// Row sweep.
			k.For("i", IC(1), IC(n-1), func() {
				k.Store("u", []Iex{IV("i"), IC(0)}, FC(1))
				k.Store("p", []Iex{IV("i"), IC(0)}, FC(0))
				k.Store("q", []Iex{IV("i"), IC(0)}, FC(1))
				k.For("j", IC(1), IC(n-1), func() {
					k.Store("p", []Iex{IV("i"), IV("j")},
						Div(Neg(FC(f)), Add(Mul(FC(d), A("p", IV("i"), ISub(IV("j"), IC(1)))), FC(e))))
					k.Store("q", []Iex{IV("i"), IV("j")},
						Div(Sub(Sub(Add(Mul(Neg(FC(a)), A("v", ISub(IV("i"), IC(1)), IV("j"))),
							Mul(Add(FC(1), Mul(FC(2), FC(a))), A("v", IV("i"), IV("j")))),
							Mul(FC(c), A("v", IAdd(IV("i"), IC(1)), IV("j")))),
							Mul(FC(d), A("q", IV("i"), ISub(IV("j"), IC(1))))),
							Add(Mul(FC(d), A("p", IV("i"), ISub(IV("j"), IC(1)))), FC(e))))
				})
				k.Store("u", []Iex{IV("i"), IC(n - 1)}, FC(1))
				k.ForDown("j", IC(n-1), IC(1), func() {
					k.Store("u", []Iex{IV("i"), IV("j")},
						Add(Mul(A("p", IV("i"), IV("j")), A("u", IV("i"), IAdd(IV("j"), IC(1)))),
							A("q", IV("i"), IV("j"))))
				})
			})
		})
		return k.Finish("u")
	}
	native := func(n int) float64 {
		t := tstepsOf(n)
		a, b, c, d, e, f := adiCoeffs(n, t)
		u := mat(n, n, 2, n)
		v := make([]float64, n*n)
		p := make([]float64, n*n)
		q := make([]float64, n*n)
		for ts := 0; ts < t; ts++ {
			for i := 1; i < n-1; i++ {
				v[0*n+i] = 1
				p[i*n+0] = 0
				q[i*n+0] = 1
				for j := 1; j < n-1; j++ {
					p[i*n+j] = -c / (a*p[i*n+j-1] + b)
					q[i*n+j] = (-d*u[j*n+i-1] + (1+2*d)*u[j*n+i] - f*u[j*n+i+1] - a*q[i*n+j-1]) /
						(a*p[i*n+j-1] + b)
				}
				v[(n-1)*n+i] = 1
				for j := n - 2; j >= 1; j-- {
					v[j*n+i] = p[i*n+j]*v[(j+1)*n+i] + q[i*n+j]
				}
			}
			for i := 1; i < n-1; i++ {
				u[i*n+0] = 1
				p[i*n+0] = 0
				q[i*n+0] = 1
				for j := 1; j < n-1; j++ {
					p[i*n+j] = -f / (d*p[i*n+j-1] + e)
					q[i*n+j] = (-a*v[(i-1)*n+j] + (1+2*a)*v[i*n+j] - c*v[(i+1)*n+j] - d*q[i*n+j-1]) /
						(d*p[i*n+j-1] + e)
				}
				u[i*n+n-1] = 1
				for j := n - 2; j >= 1; j-- {
					u[i*n+j] = p[i*n+j]*u[i*n+j+1] + q[i*n+j]
				}
			}
		}
		return sum(u)
	}
	return Kernel{Name: "adi", Build: build, Native: native}
}

func adiCoeffs(n, t int) (a, b, c, d, e, f float64) {
	dx := 1.0 / float64(n)
	dy := 1.0 / float64(n)
	dt := 1.0 / float64(t)
	b1, b2 := 2.0, 1.0
	mul1 := b1 * dt / (dx * dx)
	mul2 := b2 * dt / (dy * dy)
	a = -mul1 / 2
	b = 1 + mul1
	c = a
	d = -mul2 / 2
	e = 1 + mul2
	f = d
	return
}

// --- floyd-warshall (min-plus) ---

func kFloydWarshall() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("P", n, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("P", []Iex{IV("i"), IV("j")},
					F(IMod(IMul(IV("i"), IV("j")), IC(7))))
				k.If(INe(IMod(IAdd(IAdd(IV("i"), IV("j")), IC(1)), IC(13)), IC(0)), func() {
					// unreachable-ish edge: large weight
					k.Store("P", []Iex{IV("i"), IV("j")},
						Add(A("P", IV("i"), IV("j")), F(IMod(IAdd(IV("i"), IV("j")), IC(11)))))
				})
			})
		})
		k.For("l", IC(0), IC(n), func() {
			k.For("i", IC(0), IC(n), func() {
				k.For("j", IC(0), IC(n), func() {
					k.Store("P", []Iex{IV("i"), IV("j")},
						FMin(A("P", IV("i"), IV("j")),
							Add(A("P", IV("i"), IV("l")), A("P", IV("l"), IV("j")))))
				})
			})
		})
		return k.Finish("P")
	}
	native := func(n int) float64 {
		P := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				P[i*n+j] = float64((i * j) % 7)
				if (i+j+1)%13 != 0 {
					P[i*n+j] += float64((i + j) % 11)
				}
			}
		}
		for l := 0; l < n; l++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if v := P[i*n+l] + P[l*n+j]; v < P[i*n+j] {
						P[i*n+j] = v
					}
				}
			}
		}
		return sum(P)
	}
	return Kernel{Name: "floyd-warshall", Build: build, Native: native}
}

// --- nussinov (DP with max) ---

func kNussinov() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("T", n, n)
		k.Arr("seq", n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("seq", []Iex{IV("i")}, F(IMod(IAdd(IV("i"), IC(1)), IC(4))))
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("T", []Iex{IV("i"), IV("j")}, FC(0))
			})
		})
		k.ForDown("i", IC(n), IC(0), func() {
			k.For("j", IAdd(IV("i"), IC(1)), IC(n), func() {
				k.If(IGt(IV("j"), IC(0)), func() {
					k.Store("T", []Iex{IV("i"), IV("j")},
						FMax(A("T", IV("i"), IV("j")), A("T", IV("i"), ISub(IV("j"), IC(1)))))
				})
				k.If(ILt(IAdd(IV("i"), IC(1)), IC(n)), func() {
					k.Store("T", []Iex{IV("i"), IV("j")},
						FMax(A("T", IV("i"), IV("j")), A("T", IAdd(IV("i"), IC(1)), IV("j"))))
				})
				k.If(IGt(IV("j"), IC(0)), func() {
					k.If(ILt(IAdd(IV("i"), IC(1)), IC(n)), func() {
						k.IfElse(ILt(IV("i"), ISub(IV("j"), IC(1))), func() {
							// match(seq[i], seq[j]): seq[i]+seq[j] == 3
							k.SetF("m", FC(0))
							k.If(IEq(IAdd(IMod(IAdd(IV("i"), IC(1)), IC(4)), IMod(IAdd(IV("j"), IC(1)), IC(4))), IC(3)), func() {
								k.SetF("m", FC(1))
							})
							k.Store("T", []Iex{IV("i"), IV("j")},
								FMax(A("T", IV("i"), IV("j")),
									Add(A("T", IAdd(IV("i"), IC(1)), ISub(IV("j"), IC(1))), FV("m"))))
						}, func() {
							k.Store("T", []Iex{IV("i"), IV("j")},
								FMax(A("T", IV("i"), IV("j")),
									A("T", IAdd(IV("i"), IC(1)), ISub(IV("j"), IC(1)))))
						})
					})
				})
				k.For("l", IAdd(IV("i"), IC(1)), IV("j"), func() {
					k.Store("T", []Iex{IV("i"), IV("j")},
						FMax(A("T", IV("i"), IV("j")),
							Add(A("T", IV("i"), IV("l")), A("T", IAdd(IV("l"), IC(1)), IV("j")))))
				})
			})
		})
		return k.Finish("T")
	}
	native := func(n int) float64 {
		T := make([]float64, n*n)
		match := func(i, j int) float64 {
			if (i+1)%4+(j+1)%4 == 3 {
				return 1
			}
			return 0
		}
		fmax := func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				if j > 0 {
					T[i*n+j] = fmax(T[i*n+j], T[i*n+j-1])
				}
				if i+1 < n {
					T[i*n+j] = fmax(T[i*n+j], T[(i+1)*n+j])
				}
				if j > 0 && i+1 < n {
					if i < j-1 {
						T[i*n+j] = fmax(T[i*n+j], T[(i+1)*n+j-1]+match(i, j))
					} else {
						T[i*n+j] = fmax(T[i*n+j], T[(i+1)*n+j-1])
					}
				}
				for l := i + 1; l < j; l++ {
					T[i*n+j] = fmax(T[i*n+j], T[i*n+l]+T[(l+1)*n+j])
				}
			}
		}
		return sum(T)
	}
	return Kernel{Name: "nussinov", Build: build, Native: native}
}

// --- deriche (recursive edge filter; uses exp/pow imports) ---

func kDeriche() Kernel {
	build := func(n int) []byte {
		w, h := n, n
		k := NewK()
		k.Arr("img", w, h)
		k.Arr("y1", w, h)
		k.Arr("y2", w, h)
		k.Arr("out", w, h)
		k.For("i", IC(0), IC(w), func() {
			k.For("j", IC(0), IC(h), func() {
				k.Store("img", []Iex{IV("i"), IV("j")},
					Div(F(IMod(IMul(IMod(IAdd(IV("i"), IC(313)), IC(991)), IMod(IAdd(IV("j"), IC(991)), IC(65536))), IC(65536))), F(IC(65536))))
			})
		})
		// alpha = 0.25; coefficients via exp/pow.
		k.SetF("a0", Div(Mul(Mul(FC(0.0), FC(0)), FC(0)), FC(1))) // placeholder zero
		k.SetF("k0", Div(Mul(Sub(FC(1), Exp(Neg(FC(0.25)))), Sub(FC(1), Exp(Neg(FC(0.25))))),
			Add(FC(1), Sub(Mul(Mul(FC(2), FC(0.25)), Exp(Neg(FC(0.25)))), Exp(Neg(FC(0.5)))))))
		k.SetF("a1", FV("k0"))
		k.SetF("a2", Mul(Mul(FV("k0"), Exp(Neg(FC(0.25)))), Sub(FC(0.25), FC(1))))
		k.SetF("a3", Mul(Mul(FV("k0"), Exp(Neg(FC(0.25)))), Add(FC(0.25), FC(1))))
		k.SetF("a4", Mul(Neg(FV("k0")), Exp(Neg(FC(0.5)))))
		k.SetF("b1", Mul(FC(2), Exp(Neg(FC(0.25)))))
		k.SetF("b2", Neg(Exp(Neg(FC(0.5)))))
		// Horizontal pass.
		k.For("i", IC(0), IC(w), func() {
			k.SetF("ym1", FC(0))
			k.SetF("ym2", FC(0))
			k.SetF("xm1", FC(0))
			k.For("j", IC(0), IC(h), func() {
				k.SetF("cur", Add(Add(Mul(FV("a1"), A("img", IV("i"), IV("j"))), Mul(FV("a2"), FV("xm1"))),
					Add(Mul(FV("b1"), FV("ym1")), Mul(FV("b2"), FV("ym2")))))
				k.Store("y1", []Iex{IV("i"), IV("j")}, FV("cur"))
				k.SetF("xm1", A("img", IV("i"), IV("j")))
				k.SetF("ym2", FV("ym1"))
				k.SetF("ym1", FV("cur"))
			})
			k.SetF("yp1", FC(0))
			k.SetF("yp2", FC(0))
			k.SetF("xp1", FC(0))
			k.SetF("xp2", FC(0))
			k.ForDown("j", IC(h), IC(0), func() {
				k.SetF("cur", Add(Add(Mul(FV("a3"), FV("xp1")), Mul(FV("a4"), FV("xp2"))),
					Add(Mul(FV("b1"), FV("yp1")), Mul(FV("b2"), FV("yp2")))))
				k.Store("y2", []Iex{IV("i"), IV("j")}, FV("cur"))
				k.SetF("xp2", FV("xp1"))
				k.SetF("xp1", A("img", IV("i"), IV("j")))
				k.SetF("yp2", FV("yp1"))
				k.SetF("yp1", FV("cur"))
			})
			k.For("j", IC(0), IC(h), func() {
				k.Store("out", []Iex{IV("i"), IV("j")},
					Add(A("y1", IV("i"), IV("j")), A("y2", IV("i"), IV("j"))))
			})
		})
		return k.Finish("out")
	}
	native := func(n int) float64 {
		w, h := n, n
		img := make([]float64, w*h)
		for i := 0; i < w; i++ {
			for j := 0; j < h; j++ {
				img[i*h+j] = float64((((i+313)%991)*((j+991)%65536))%65536) / 65536.0
			}
		}
		exp := nativeExp
		k0 := ((1 - exp(-0.25)) * (1 - exp(-0.25))) / (1 + (2*0.25*exp(-0.25) - exp(-0.5)))
		a1 := k0
		a2 := k0 * exp(-0.25) * (0.25 - 1)
		a3 := k0 * exp(-0.25) * (0.25 + 1)
		a4 := -k0 * exp(-0.5)
		b1 := 2 * exp(-0.25)
		b2 := -exp(-0.5)
		y1 := make([]float64, w*h)
		y2 := make([]float64, w*h)
		out := make([]float64, w*h)
		for i := 0; i < w; i++ {
			ym1, ym2, xm1 := 0.0, 0.0, 0.0
			for j := 0; j < h; j++ {
				cur := (a1*img[i*h+j] + a2*xm1) + (b1*ym1 + b2*ym2)
				y1[i*h+j] = cur
				xm1 = img[i*h+j]
				ym2 = ym1
				ym1 = cur
			}
			yp1, yp2, xp1, xp2 := 0.0, 0.0, 0.0, 0.0
			for j := h - 1; j >= 0; j-- {
				cur := (a3*xp1 + a4*xp2) + (b1*yp1 + b2*yp2)
				y2[i*h+j] = cur
				xp2 = xp1
				xp1 = img[i*h+j]
				yp2 = yp1
				yp1 = cur
			}
			for j := 0; j < h; j++ {
				out[i*h+j] = y1[i*h+j] + y2[i*h+j]
			}
		}
		return sum(out)
	}
	return Kernel{Name: "deriche", Build: build, Native: native}
}
