// Package polybench reimplements the PolyBench/C 4.2 kernels used by the
// paper's Figure 3. Every kernel exists twice: as native Go, and as a real
// WebAssembly module built by a small loop-nest DSL that compiles to
// wasmgen output — so the Wasm side of the comparison executes genuine
// Wasm bytecode through TWINE's runtime, exactly as the paper's
// wamrc-compiled binaries did.
package polybench

import (
	"fmt"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// --- integer (index) expressions ---

// Iex is an i32-valued expression.
type Iex interface{ emitI(k *K) }

type icon int32

func (c icon) emitI(k *K) { k.f.I32Const(int32(c)) }

// IC is an i32 constant.
func IC(v int) Iex { return icon(v) }

type ivar string

func (v ivar) emitI(k *K) { k.f.LocalGet(k.ilocal(string(v))) }

// IV reads an index local.
func IV(name string) Iex { return ivar(name) }

type ibin struct {
	op   byte // '+', '-', '*', '/', '%'
	l, r Iex
}

func (b ibin) emitI(k *K) {
	b.l.emitI(k)
	b.r.emitI(k)
	switch b.op {
	case '+':
		k.f.I32Add()
	case '-':
		k.f.I32Sub()
	case '*':
		k.f.I32Mul()
	case '/':
		k.f.I32DivS()
	case '%':
		k.f.I32RemS()
	}
}

// IAdd, ISub, IMul, IDiv, IMod build i32 arithmetic.
func IAdd(l, r Iex) Iex { return ibin{'+', l, r} }
func ISub(l, r Iex) Iex { return ibin{'-', l, r} }
func IMul(l, r Iex) Iex { return ibin{'*', l, r} }
func IDiv(l, r Iex) Iex { return ibin{'/', l, r} }
func IMod(l, r Iex) Iex { return ibin{'%', l, r} }

// --- float expressions ---

// Fex is an f64-valued expression.
type Fex interface{ emitF(k *K) }

type fcon float64

func (c fcon) emitF(k *K) { k.f.F64Const(float64(c)) }

// FC is an f64 constant.
func FC(v float64) Fex { return fcon(v) }

type fvar string

func (v fvar) emitF(k *K) { k.f.LocalGet(k.flocal(string(v))) }

// FV reads an f64 scalar local.
func FV(name string) Fex { return fvar(name) }

type fbin struct {
	op   byte // '+', '-', '*', '/'
	l, r Fex
}

func (b fbin) emitF(k *K) {
	b.l.emitF(k)
	b.r.emitF(k)
	switch b.op {
	case '+':
		k.f.F64Add()
	case '-':
		k.f.F64Sub()
	case '*':
		k.f.F64Mul()
	case '/':
		k.f.F64Div()
	}
}

// Add, Sub, Mul, Div build f64 arithmetic.
func Add(l, r Fex) Fex { return fbin{'+', l, r} }
func Sub(l, r Fex) Fex { return fbin{'-', l, r} }
func Mul(l, r Fex) Fex { return fbin{'*', l, r} }
func Div(l, r Fex) Fex { return fbin{'/', l, r} }

type funop struct {
	op string
	x  Fex
}

func (u funop) emitF(k *K) {
	u.x.emitF(k)
	switch u.op {
	case "neg":
		k.f.F64Neg()
	case "sqrt":
		k.f.F64Sqrt()
	case "abs":
		k.f.F64Abs()
	case "exp":
		k.f.Call(k.expFn)
	}
}

// Neg, Sqrt, FAbs, Exp build f64 unaries (Exp is the math.exp import).
func Neg(x Fex) Fex  { return funop{"neg", x} }
func Sqrt(x Fex) Fex { return funop{"sqrt", x} }
func FAbs(x Fex) Fex { return funop{"abs", x} }
func Exp(x Fex) Fex  { return funop{"exp", x} }

type fbin2 struct {
	op   string
	l, r Fex
}

func (b fbin2) emitF(k *K) {
	b.l.emitF(k)
	b.r.emitF(k)
	switch b.op {
	case "min":
		k.f.F64Min()
	case "max":
		k.f.F64Max()
	case "pow":
		k.f.Call(k.powFn)
	}
}

// FMin, FMax, Pow build f64 binaries (Pow is the math.pow import).
func FMin(l, r Fex) Fex { return fbin2{"min", l, r} }
func FMax(l, r Fex) Fex { return fbin2{"max", l, r} }
func Pow(l, r Fex) Fex  { return fbin2{"pow", l, r} }

// F converts an index expression to f64.
func F(i Iex) Fex { return fconv{i} }

type fconv struct{ i Iex }

func (c fconv) emitF(k *K) {
	c.i.emitI(k)
	k.f.F64ConvertI32S()
}

// A reads an array element.
func A(name string, idx ...Iex) Fex { return aref{name, idx} }

type aref struct {
	name string
	idx  []Iex
}

func (a aref) emitF(k *K) {
	k.emitAddr(a.name, a.idx)
	k.f.F64Load(0)
}

// cmpKind for loop conditions and If.
type Cmp struct {
	op   string // "<", "<=", ">", ">=", "==", "!="
	l, r Iex
}

// ILt etc. build i32 comparisons for If.
func ILt(l, r Iex) Cmp { return Cmp{"<", l, r} }
func ILe(l, r Iex) Cmp { return Cmp{"<=", l, r} }
func IGt(l, r Iex) Cmp { return Cmp{">", l, r} }
func IGe(l, r Iex) Cmp { return Cmp{">=", l, r} }
func IEq(l, r Iex) Cmp { return Cmp{"==", l, r} }
func INe(l, r Iex) Cmp { return Cmp{"!=", l, r} }

func (c Cmp) emit(k *K) {
	c.l.emitI(k)
	c.r.emitI(k)
	switch c.op {
	case "<":
		k.f.I32LtS()
	case "<=":
		k.f.I32LeS()
	case ">":
		k.f.I32GtS()
	case ">=":
		k.f.I32GeS()
	case "==":
		k.f.I32Eq()
	case "!=":
		k.f.I32Ne()
	}
}

// --- kernel builder ---

type arrInfo struct {
	base    uint32
	strides []int // element strides per dimension (innermost = 1)
}

// K assembles one kernel module.
type K struct {
	m       *wasmgen.Module
	f       *wasmgen.Func
	ilocals map[string]uint32
	flocals map[string]uint32
	arrays  map[string]arrInfo
	nextOff uint32
	expFn   *wasmgen.Func
	powFn   *wasmgen.Func
}

// NewK starts a kernel builder. The "run" function takes no parameters
// and returns the f64 checksum.
func NewK() *K {
	m := wasmgen.NewModule()
	k := &K{
		m:       m,
		ilocals: map[string]uint32{},
		flocals: map[string]uint32{},
		arrays:  map[string]arrInfo{},
		nextOff: 64, // leave the first cache line free
	}
	k.expFn = m.ImportFunc("math", "exp", wasmgen.Sig(wasmgen.F64).Returns(wasmgen.F64))
	k.powFn = m.ImportFunc("math", "pow", wasmgen.Sig(wasmgen.F64, wasmgen.F64).Returns(wasmgen.F64))
	k.f = m.Func(wasmgen.Sig().Returns(wasmgen.F64))
	return k
}

// Arr declares an f64 array with the given dimensions, returning its name.
func (k *K) Arr(name string, dims ...int) string {
	elems := 1
	strides := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = elems
		elems *= dims[i]
	}
	k.arrays[name] = arrInfo{base: k.nextOff, strides: strides}
	k.nextOff += uint32(elems) * 8
	return name
}

func (k *K) ilocal(name string) uint32 {
	if idx, ok := k.ilocals[name]; ok {
		return idx
	}
	idx := k.f.AddLocal(wasmgen.I32)
	k.ilocals[name] = idx
	return idx
}

func (k *K) flocal(name string) uint32 {
	if idx, ok := k.flocals[name]; ok {
		return idx
	}
	idx := k.f.AddLocal(wasmgen.F64)
	k.flocals[name] = idx
	return idx
}

// emitAddr leaves the byte address of an element on the stack (i32).
func (k *K) emitAddr(name string, idx []Iex) {
	info, ok := k.arrays[name]
	if !ok {
		panic(fmt.Sprintf("polybench: unknown array %s", name))
	}
	if len(idx) != len(info.strides) {
		panic(fmt.Sprintf("polybench: %s has %d dims, got %d indexes", name, len(info.strides), len(idx)))
	}
	// linear = sum(idx[d] * stride[d])
	first := true
	for d, ix := range idx {
		ix.emitI(k)
		if info.strides[d] != 1 {
			k.f.I32Const(int32(info.strides[d]))
			k.f.I32Mul()
		}
		if !first {
			k.f.I32Add()
		}
		first = false
	}
	k.f.I32Const(8)
	k.f.I32Mul()
	k.f.I32Const(int32(info.base))
	k.f.I32Add()
}

// SetI assigns an index local.
func (k *K) SetI(name string, v Iex) {
	v.emitI(k)
	k.f.LocalSet(k.ilocal(name))
}

// SetF assigns an f64 scalar local.
func (k *K) SetF(name string, v Fex) {
	v.emitF(k)
	k.f.LocalSet(k.flocal(name))
}

// Store writes an array element.
func (k *K) Store(name string, idx []Iex, v Fex) {
	k.emitAddr(name, idx)
	v.emitF(k)
	k.f.F64Store(0)
}

// For emits: for name := lo; name < hi; name++ { body }.
func (k *K) For(name string, lo, hi Iex, body func()) {
	k.ForStep(name, lo, hi, 1, body)
}

// ForStep allows a custom positive step.
func (k *K) ForStep(name string, lo, hi Iex, step int, body func()) {
	idx := k.ilocal(name)
	lo.emitI(k)
	k.f.LocalSet(idx)
	k.f.Block(wasmgen.BlockVoid)
	k.f.Loop(wasmgen.BlockVoid)
	k.f.LocalGet(idx)
	hi.emitI(k)
	k.f.I32GeS()
	k.f.BrIf(1)
	body()
	k.f.LocalGet(idx)
	k.f.I32Const(int32(step))
	k.f.I32Add()
	k.f.LocalSet(idx)
	k.f.Br(0)
	k.f.End()
	k.f.End()
}

// ForDown emits: for name := hi-1; name >= lo; name-- { body }.
func (k *K) ForDown(name string, hi, lo Iex, body func()) {
	idx := k.ilocal(name)
	hi.emitI(k)
	k.f.I32Const(1)
	k.f.I32Sub()
	k.f.LocalSet(idx)
	k.f.Block(wasmgen.BlockVoid)
	k.f.Loop(wasmgen.BlockVoid)
	k.f.LocalGet(idx)
	lo.emitI(k)
	k.f.I32LtS()
	k.f.BrIf(1)
	body()
	k.f.LocalGet(idx)
	k.f.I32Const(1)
	k.f.I32Sub()
	k.f.LocalSet(idx)
	k.f.Br(0)
	k.f.End()
	k.f.End()
}

// If emits a conditional.
func (k *K) If(c Cmp, then func()) {
	c.emit(k)
	k.f.If(wasmgen.BlockVoid)
	then()
	k.f.End()
}

// IfElse emits a conditional with an else branch.
func (k *K) IfElse(c Cmp, then, els func()) {
	c.emit(k)
	k.f.If(wasmgen.BlockVoid)
	then()
	k.f.Else()
	els()
	k.f.End()
}

// AddTo does A[idx] += v.
func (k *K) AddTo(name string, idx []Iex, v Fex) {
	k.Store(name, idx, Add(A(name, idx...), v))
}

// Finish computes the checksum (sum of the named arrays' elements) and
// assembles the module bytes.
func (k *K) Finish(sumArrays ...string) []byte {
	sum := k.flocal("__sum")
	for _, name := range sumArrays {
		info := k.arrays[name]
		elems := info.strides[0]
		if len(info.strides) > 0 {
			// total = stride[0] * dim[0]; recover total from base of next
			// array or nextOff — simpler: stride[0] is the size of one
			// slice of the first dimension, so iterate bytes directly.
			elems = 0
		}
		_ = elems
		total := k.arrayElems(name)
		k.For("__s", IC(0), IC(total), func() {
			k.f.LocalGet(sum)
			k.emitAddr1D(name, IV("__s"))
			k.f.F64Load(0)
			k.f.F64Add()
			k.f.LocalSet(sum)
		})
	}
	k.f.LocalGet(sum)
	k.f.End()
	k.m.Export("run", k.f)
	k.m.ExportMemory("memory")

	pages := (k.nextOff + wasm.PageSize - 1) / wasm.PageSize
	if pages == 0 {
		pages = 1
	}
	k.m.Memory(pages, pages)
	return k.m.Bytes()
}

// arrayElems computes the total element count of an array.
func (k *K) arrayElems(name string) int {
	info := k.arrays[name]
	// Find the next base (arrays are allocated contiguously).
	next := k.nextOff
	for _, other := range k.arrays {
		if other.base > info.base && other.base < next {
			next = other.base
		}
	}
	return int(next-info.base) / 8
}

// emitAddr1D addresses element i of the flattened array.
func (k *K) emitAddr1D(name string, i Iex) {
	info := k.arrays[name]
	i.emitI(k)
	k.f.I32Const(8)
	k.f.I32Mul()
	k.f.I32Const(int32(info.base))
	k.f.I32Add()
}
