package polybench

// Kernel registry: the 30 PolyBench/C benchmarks of the paper's Figure 3.
// Each kernel provides a native Go implementation and a Wasm module
// builder; both perform identical floating-point operations in identical
// order, so their checksums agree bit-for-bit on strict-IEEE hardware.

// Kernel is one PolyBench benchmark.
type Kernel struct {
	Name string
	// Build compiles the kernel (problem size n) to a Wasm module whose
	// exported "run" returns the checksum.
	Build func(n int) []byte
	// Native runs the same computation in Go.
	Native func(n int) float64
}

// All returns the 30 kernels in the paper's order.
func All() []Kernel {
	return []Kernel{
		k2mm(), k3mm(), kAdi(), kAtax(), kBicg(), kCholesky(),
		kCorrelation(), kCovariance(), kDeriche(), kDoitgen(), kDurbin(),
		kFdtd2d(), kFloydWarshall(), kGemm(), kGemver(), kGesummv(),
		kGramschmidt(), kHeat3d(), kJacobi1d(), kJacobi2d(), kLu(),
		kLudcmp(), kMvt(), kNussinov(), kSeidel2d(), kSymm(), kSyr2k(),
		kSyrk(), kTrisolv(), kTrmm(),
	}
}

// ByName finds a kernel.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// initMat is the shared PolyBench-style deterministic initialiser.
func initMat(i, j, c, n int) float64 { return float64((i*j+c)%n) / float64(n) }

func initMatF(k *K, name string, rows, cols, c, n int) {
	k.For("i", IC(0), IC(rows), func() {
		k.For("j", IC(0), IC(cols), func() {
			k.Store(name, []Iex{IV("i"), IV("j")},
				Div(F(IMod(IAdd(IMul(IV("i"), IV("j")), IC(c)), IC(n))), F(IC(n))))
		})
	})
}

func initVecF(k *K, name string, len_, c, n int) {
	k.For("i", IC(0), IC(len_), func() {
		k.Store(name, []Iex{IV("i")},
			Div(F(IMod(IAdd(IV("i"), IC(c)), IC(n))), F(IC(n))))
	})
}

// --- 2mm: D := alpha*A*B*C + beta*D ---

func k2mm() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("C", n, n)
		k.Arr("D", n, n)
		k.Arr("tmp", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initMatF(k, "C", n, n, 3, n)
		initMatF(k, "D", n, n, 4, n)
		alpha, beta := FC(1.5), FC(1.2)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("tmp", []Iex{IV("i"), IV("j")}, FC(0))
				k.For("l", IC(0), IC(n), func() {
					k.AddTo("tmp", []Iex{IV("i"), IV("j")},
						Mul(Mul(alpha, A("A", IV("i"), IV("l"))), A("B", IV("l"), IV("j"))))
				})
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("D", []Iex{IV("i"), IV("j")}, Mul(A("D", IV("i"), IV("j")), beta))
				k.For("l", IC(0), IC(n), func() {
					k.AddTo("D", []Iex{IV("i"), IV("j")},
						Mul(A("tmp", IV("i"), IV("l")), A("C", IV("l"), IV("j"))))
				})
			})
		})
		return k.Finish("D")
	}
	native := func(n int) float64 {
		A := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		C := mat(n, n, 3, n)
		D := mat(n, n, 4, n)
		tmp := make([]float64, n*n)
		alpha, beta := 1.5, 1.2
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				tmp[i*n+j] = 0
				for l := 0; l < n; l++ {
					tmp[i*n+j] += alpha * A[i*n+l] * B[l*n+j]
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				D[i*n+j] *= beta
				for l := 0; l < n; l++ {
					D[i*n+j] += tmp[i*n+l] * C[l*n+j]
				}
			}
		}
		return sum(D)
	}
	return Kernel{Name: "2mm", Build: build, Native: native}
}

func mat(rows, cols, c, n int) []float64 {
	m := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m[i*cols+j] = initMat(i, j, c, n)
		}
	}
	return m
}

func vec(len_, c, n int) []float64 {
	v := make([]float64, len_)
	for i := range v {
		v[i] = float64((i+c)%n) / float64(n)
	}
	return v
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// --- 3mm: G := (A*B) * (C*D) ---

func k3mm() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("C", n, n)
		k.Arr("D", n, n)
		k.Arr("E", n, n)
		k.Arr("F", n, n)
		k.Arr("G", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initMatF(k, "C", n, n, 3, n)
		initMatF(k, "D", n, n, 4, n)
		mm := func(dst, l, r string) {
			k.For("i", IC(0), IC(n), func() {
				k.For("j", IC(0), IC(n), func() {
					k.Store(dst, []Iex{IV("i"), IV("j")}, FC(0))
					k.For("l2", IC(0), IC(n), func() {
						k.AddTo(dst, []Iex{IV("i"), IV("j")},
							Mul(A(l, IV("i"), IV("l2")), A(r, IV("l2"), IV("j"))))
					})
				})
			})
		}
		mm("E", "A", "B")
		mm("F", "C", "D")
		mm("G", "E", "F")
		return k.Finish("G")
	}
	native := func(n int) float64 {
		A := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		C := mat(n, n, 3, n)
		D := mat(n, n, 4, n)
		mm := func(l, r []float64) []float64 {
			out := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					for l2 := 0; l2 < n; l2++ {
						out[i*n+j] += l[i*n+l2] * r[l2*n+j]
					}
				}
			}
			return out
		}
		return sum(mm(mm(A, B), mm(C, D)))
	}
	return Kernel{Name: "3mm", Build: build, Native: native}
}

// --- atax: y = A^T (A x) ---

func kAtax() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("x", n)
		k.Arr("y", n)
		k.Arr("t", n)
		initMatF(k, "A", n, n, 1, n)
		initVecF(k, "x", n, 0, n)
		k.For("i", IC(0), IC(n), func() { k.Store("y", []Iex{IV("i")}, FC(0)) })
		k.For("i", IC(0), IC(n), func() {
			k.Store("t", []Iex{IV("i")}, FC(0))
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("t", []Iex{IV("i")}, Mul(A("A", IV("i"), IV("j")), A("x", IV("j"))))
			})
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("y", []Iex{IV("j")}, Mul(A("A", IV("i"), IV("j")), A("t", IV("i"))))
			})
		})
		return k.Finish("y")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		x := vec(n, 0, n)
		y := make([]float64, n)
		t := make([]float64, n)
		for i := 0; i < n; i++ {
			t[i] = 0
			for j := 0; j < n; j++ {
				t[i] += Am[i*n+j] * x[j]
			}
			for j := 0; j < n; j++ {
				y[j] += Am[i*n+j] * t[i]
			}
		}
		return sum(y)
	}
	return Kernel{Name: "atax", Build: build, Native: native}
}

// --- bicg: s = A^T r ; q = A p ---

func kBicg() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("s", n)
		k.Arr("q", n)
		k.Arr("p", n)
		k.Arr("r", n)
		initMatF(k, "A", n, n, 1, n)
		initVecF(k, "p", n, 1, n)
		initVecF(k, "r", n, 2, n)
		k.For("i", IC(0), IC(n), func() { k.Store("s", []Iex{IV("i")}, FC(0)) })
		k.For("i", IC(0), IC(n), func() {
			k.Store("q", []Iex{IV("i")}, FC(0))
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("s", []Iex{IV("j")}, Mul(A("r", IV("i")), A("A", IV("i"), IV("j"))))
				k.AddTo("q", []Iex{IV("i")}, Mul(A("A", IV("i"), IV("j")), A("p", IV("j"))))
			})
		})
		return k.Finish("s", "q")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		p := vec(n, 1, n)
		r := vec(n, 2, n)
		s := make([]float64, n)
		q := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s[j] += r[i] * Am[i*n+j]
				q[i] += Am[i*n+j] * p[j]
			}
		}
		return sum(s) + sum(q)
	}
	return Kernel{Name: "bicg", Build: build, Native: native}
}

// --- gemm: C := alpha*A*B + beta*C ---

func kGemm() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("C", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initMatF(k, "C", n, n, 3, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("C", []Iex{IV("i"), IV("j")}, Mul(A("C", IV("i"), IV("j")), FC(1.2)))
			})
			k.For("l", IC(0), IC(n), func() {
				k.For("j", IC(0), IC(n), func() {
					k.AddTo("C", []Iex{IV("i"), IV("j")},
						Mul(Mul(FC(1.5), A("A", IV("i"), IV("l"))), A("B", IV("l"), IV("j"))))
				})
			})
		})
		return k.Finish("C")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		C := mat(n, n, 3, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				C[i*n+j] *= 1.2
			}
			for l := 0; l < n; l++ {
				for j := 0; j < n; j++ {
					C[i*n+j] += 1.5 * Am[i*n+l] * B[l*n+j]
				}
			}
		}
		return sum(C)
	}
	return Kernel{Name: "gemm", Build: build, Native: native}
}

// --- gemver: multiple vector ops ---

func kGemver() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		for _, v := range []string{"u1", "v1", "u2", "v2", "w", "x", "y", "z"} {
			k.Arr(v, n)
		}
		initMatF(k, "A", n, n, 1, n)
		initVecF(k, "u1", n, 1, n)
		initVecF(k, "v1", n, 2, n)
		initVecF(k, "u2", n, 3, n)
		initVecF(k, "v2", n, 4, n)
		initVecF(k, "y", n, 5, n)
		initVecF(k, "z", n, 6, n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("w", []Iex{IV("i")}, FC(0))
			k.Store("x", []Iex{IV("i")}, FC(0))
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.Store("A", []Iex{IV("i"), IV("j")},
					Add(A("A", IV("i"), IV("j")),
						Add(Mul(A("u1", IV("i")), A("v1", IV("j"))),
							Mul(A("u2", IV("i")), A("v2", IV("j"))))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("x", []Iex{IV("i")}, Mul(Mul(FC(1.2), A("A", IV("j"), IV("i"))), A("y", IV("j"))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.AddTo("x", []Iex{IV("i")}, A("z", IV("i")))
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("w", []Iex{IV("i")}, Mul(Mul(FC(1.5), A("A", IV("i"), IV("j"))), A("x", IV("j"))))
			})
		})
		return k.Finish("w")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		u1, v1 := vec(n, 1, n), vec(n, 2, n)
		u2, v2 := vec(n, 3, n), vec(n, 4, n)
		y, z := vec(n, 5, n), vec(n, 6, n)
		w := make([]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				Am[i*n+j] = Am[i*n+j] + (u1[i]*v1[j] + u2[i]*v2[j])
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x[i] += 1.2 * Am[j*n+i] * y[j]
			}
		}
		for i := 0; i < n; i++ {
			x[i] += z[i]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w[i] += 1.5 * Am[i*n+j] * x[j]
			}
		}
		return sum(w)
	}
	return Kernel{Name: "gemver", Build: build, Native: native}
}

// --- gesummv: y = alpha*A*x + beta*B*x ---

func kGesummv() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("x", n)
		k.Arr("y", n)
		k.Arr("t", n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initVecF(k, "x", n, 0, n)
		k.For("i", IC(0), IC(n), func() {
			k.Store("t", []Iex{IV("i")}, FC(0))
			k.Store("y", []Iex{IV("i")}, FC(0))
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("t", []Iex{IV("i")}, Mul(A("A", IV("i"), IV("j")), A("x", IV("j"))))
				k.AddTo("y", []Iex{IV("i")}, Mul(A("B", IV("i"), IV("j")), A("x", IV("j"))))
			})
			k.Store("y", []Iex{IV("i")},
				Add(Mul(FC(1.5), A("t", IV("i"))), Mul(FC(1.2), A("y", IV("i")))))
		})
		return k.Finish("y")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		x := vec(n, 0, n)
		y := make([]float64, n)
		t := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t[i] += Am[i*n+j] * x[j]
				y[i] += B[i*n+j] * x[j]
			}
			y[i] = 1.5*t[i] + 1.2*y[i]
		}
		return sum(y)
	}
	return Kernel{Name: "gesummv", Build: build, Native: native}
}

// --- mvt: x1 += A y1 ; x2 += A^T y2 ---

func kMvt() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("x1", n)
		k.Arr("x2", n)
		k.Arr("y1", n)
		k.Arr("y2", n)
		initMatF(k, "A", n, n, 1, n)
		initVecF(k, "x1", n, 1, n)
		initVecF(k, "x2", n, 2, n)
		initVecF(k, "y1", n, 3, n)
		initVecF(k, "y2", n, 4, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("x1", []Iex{IV("i")}, Mul(A("A", IV("i"), IV("j")), A("y1", IV("j"))))
			})
		})
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.AddTo("x2", []Iex{IV("i")}, Mul(A("A", IV("j"), IV("i")), A("y2", IV("j"))))
			})
		})
		return k.Finish("x1", "x2")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		x1, x2 := vec(n, 1, n), vec(n, 2, n)
		y1, y2 := vec(n, 3, n), vec(n, 4, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x1[i] += Am[i*n+j] * y1[j]
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x2[i] += Am[j*n+i] * y2[j]
			}
		}
		return sum(x1) + sum(x2)
	}
	return Kernel{Name: "mvt", Build: build, Native: native}
}

// --- doitgen: 3D sum-product ---

func kDoitgen() Kernel {
	build := func(n int) []byte {
		r, q, p := n, n, n
		k := NewK()
		k.Arr("A", r, q, p)
		k.Arr("C4", p, p)
		k.Arr("s", p)
		k.For("i", IC(0), IC(r), func() {
			k.For("j", IC(0), IC(q), func() {
				k.For("l", IC(0), IC(p), func() {
					k.Store("A", []Iex{IV("i"), IV("j"), IV("l")},
						Div(F(IMod(IAdd(IMul(IV("i"), IV("j")), IV("l")), IC(p))), F(IC(p))))
				})
			})
		})
		initMatF(k, "C4", p, p, 1, p)
		k.For("i", IC(0), IC(r), func() {
			k.For("j", IC(0), IC(q), func() {
				k.For("l", IC(0), IC(p), func() {
					k.Store("s", []Iex{IV("l")}, FC(0))
					k.For("m", IC(0), IC(p), func() {
						k.AddTo("s", []Iex{IV("l")},
							Mul(A("A", IV("i"), IV("j"), IV("m")), A("C4", IV("m"), IV("l"))))
					})
				})
				k.For("l", IC(0), IC(p), func() {
					k.Store("A", []Iex{IV("i"), IV("j"), IV("l")}, A("s", IV("l")))
				})
			})
		})
		return k.Finish("A")
	}
	native := func(n int) float64 {
		r, q, p := n, n, n
		Aa := make([]float64, r*q*p)
		for i := 0; i < r; i++ {
			for j := 0; j < q; j++ {
				for l := 0; l < p; l++ {
					Aa[(i*q+j)*p+l] = float64((i*j+l)%p) / float64(p)
				}
			}
		}
		C4 := mat(p, p, 1, p)
		s := make([]float64, p)
		for i := 0; i < r; i++ {
			for j := 0; j < q; j++ {
				for l := 0; l < p; l++ {
					s[l] = 0
					for m := 0; m < p; m++ {
						s[l] += Aa[(i*q+j)*p+m] * C4[m*p+l]
					}
				}
				for l := 0; l < p; l++ {
					Aa[(i*q+j)*p+l] = s[l]
				}
			}
		}
		return sum(Aa)
	}
	return Kernel{Name: "doitgen", Build: build, Native: native}
}

// --- syrk: C := alpha*A*A^T + beta*C (lower triangular) ---

func kSyrk() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("C", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "C", n, n, 2, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
				k.Store("C", []Iex{IV("i"), IV("j")}, Mul(A("C", IV("i"), IV("j")), FC(1.2)))
			})
			k.For("l", IC(0), IC(n), func() {
				k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
					k.AddTo("C", []Iex{IV("i"), IV("j")},
						Mul(Mul(FC(1.5), A("A", IV("i"), IV("l"))), A("A", IV("j"), IV("l"))))
				})
			})
		})
		return k.Finish("C")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		C := mat(n, n, 2, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				C[i*n+j] *= 1.2
			}
			for l := 0; l < n; l++ {
				for j := 0; j <= i; j++ {
					C[i*n+j] += 1.5 * Am[i*n+l] * Am[j*n+l]
				}
			}
		}
		return sum(C)
	}
	return Kernel{Name: "syrk", Build: build, Native: native}
}

// --- syr2k ---

func kSyr2k() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("C", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initMatF(k, "C", n, n, 3, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
				k.Store("C", []Iex{IV("i"), IV("j")}, Mul(A("C", IV("i"), IV("j")), FC(1.2)))
			})
			k.For("l", IC(0), IC(n), func() {
				k.For("j", IC(0), IAdd(IV("i"), IC(1)), func() {
					k.AddTo("C", []Iex{IV("i"), IV("j")},
						Add(Mul(Mul(A("A", IV("j"), IV("l")), FC(1.5)), A("B", IV("i"), IV("l"))),
							Mul(Mul(A("B", IV("j"), IV("l")), FC(1.5)), A("A", IV("i"), IV("l")))))
				})
			})
		})
		return k.Finish("C")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		C := mat(n, n, 3, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				C[i*n+j] *= 1.2
			}
			for l := 0; l < n; l++ {
				for j := 0; j <= i; j++ {
					C[i*n+j] += Am[j*n+l]*1.5*B[i*n+l] + B[j*n+l]*1.5*Am[i*n+l]
				}
			}
		}
		return sum(C)
	}
	return Kernel{Name: "syr2k", Build: build, Native: native}
}

// --- symm: symmetric matrix multiply ---

func kSymm() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		k.Arr("C", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		initMatF(k, "C", n, n, 3, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.SetF("temp2", FC(0))
				k.For("l", IC(0), IV("i"), func() {
					k.AddTo("C", []Iex{IV("l"), IV("j")},
						Mul(Mul(FC(1.5), A("B", IV("i"), IV("j"))), A("A", IV("i"), IV("l"))))
					k.SetF("temp2", Add(FV("temp2"),
						Mul(A("B", IV("l"), IV("j")), A("A", IV("i"), IV("l")))))
				})
				k.Store("C", []Iex{IV("i"), IV("j")},
					Add(Add(Mul(FC(1.2), A("C", IV("i"), IV("j"))),
						Mul(Mul(FC(1.5), A("B", IV("i"), IV("j"))), A("A", IV("i"), IV("i")))),
						Mul(FC(1.5), FV("temp2"))))
			})
		})
		return k.Finish("C")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		C := mat(n, n, 3, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				temp2 := 0.0
				for l := 0; l < i; l++ {
					C[l*n+j] += 1.5 * B[i*n+j] * Am[i*n+l]
					temp2 += B[l*n+j] * Am[i*n+l]
				}
				C[i*n+j] = 1.2*C[i*n+j] + 1.5*B[i*n+j]*Am[i*n+i] + 1.5*temp2
			}
		}
		return sum(C)
	}
	return Kernel{Name: "symm", Build: build, Native: native}
}

// --- trmm: triangular matrix multiply ---

func kTrmm() Kernel {
	build := func(n int) []byte {
		k := NewK()
		k.Arr("A", n, n)
		k.Arr("B", n, n)
		initMatF(k, "A", n, n, 1, n)
		initMatF(k, "B", n, n, 2, n)
		k.For("i", IC(0), IC(n), func() {
			k.For("j", IC(0), IC(n), func() {
				k.For("l", IAdd(IV("i"), IC(1)), IC(n), func() {
					k.AddTo("B", []Iex{IV("i"), IV("j")},
						Mul(A("A", IV("l"), IV("i")), A("B", IV("l"), IV("j"))))
				})
				k.Store("B", []Iex{IV("i"), IV("j")}, Mul(FC(1.5), A("B", IV("i"), IV("j"))))
			})
		})
		return k.Finish("B")
	}
	native := func(n int) float64 {
		Am := mat(n, n, 1, n)
		B := mat(n, n, 2, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for l := i + 1; l < n; l++ {
					B[i*n+j] += Am[l*n+i] * B[l*n+j]
				}
				B[i*n+j] = 1.5 * B[i*n+j]
			}
		}
		return sum(B)
	}
	return Kernel{Name: "trmm", Build: build, Native: native}
}
