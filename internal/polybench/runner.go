package polybench

import (
	"fmt"
	"math"
	"time"

	"twine/internal/core"
	"twine/internal/wasm"
)

// MathImports registers the libm-equivalent host functions kernels import
// ("math".exp / "math".pow) for standalone (non-enclave) execution.
func MathImports(imp *wasm.ImportObject) {
	f1 := wasm.FuncType{Params: []wasm.ValueType{wasm.F64}, Results: []wasm.ValueType{wasm.F64}}
	f2 := wasm.FuncType{Params: []wasm.ValueType{wasm.F64, wasm.F64}, Results: []wasm.ValueType{wasm.F64}}
	imp.AddFunc(wasm.HostFunc{Module: "math", Name: "exp", Type: f1,
		Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
			return in.Ret1(math.Float64bits(math.Exp(math.Float64frombits(a[0])))), nil
		}})
	imp.AddFunc(wasm.HostFunc{Module: "math", Name: "pow", Type: f2,
		Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
			return in.Ret1(math.Float64bits(math.Pow(math.Float64frombits(a[0]), math.Float64frombits(a[1])))), nil
		}})
}

// RunNative executes the Go twin and returns (checksum, elapsed).
func RunNative(k Kernel, n int) (float64, time.Duration) {
	start := time.Now()
	sum := k.Native(n)
	return sum, time.Since(start)
}

// RunWasm executes the kernel as a Wasm module outside any enclave (the
// paper's "WAMR" configuration). The returned duration covers execution
// only (module build/compile excluded, like the paper's AoT-ahead setup).
func RunWasm(k Kernel, n int, engine wasm.Engine) (float64, time.Duration, error) {
	bin := k.Build(n)
	mod, err := wasm.Decode(bin)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	imp := wasm.NewImportObject()
	MathImports(imp)
	in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: engine})
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	start := time.Now()
	out, err := in.Invoke("run")
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	return math.Float64frombits(out[0]), elapsed, nil
}

// RunTwine executes the kernel inside a TWINE runtime (enclave + AoT).
func RunTwine(k Kernel, n int, cfg core.Config) (float64, time.Duration, error) {
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		return 0, 0, err
	}
	mod, err := rt.LoadModule(k.Build(n))
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	start := time.Now()
	out, err := inst.Invoke("run")
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", k.Name, err)
	}
	return math.Float64frombits(out[0]), elapsed, nil
}

// MinMemoryPages reports the smallest linear-memory cap (in 64 KiB pages)
// under which the kernel still instantiates — the paper's §V-B memory
// sweep probes exactly this boundary.
func MinMemoryPages(k Kernel, n int) (uint32, error) {
	bin := k.Build(n)
	mod, err := wasm.Decode(bin)
	if err != nil {
		return 0, err
	}
	if len(mod.Memories) == 0 {
		return 0, fmt.Errorf("%s: no memory", k.Name)
	}
	return mod.Memories[0].Min, nil
}
