package polybench

import (
	"math"
	"testing"

	"twine/internal/core"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// TestAllKernelsAgree is the central validation of the Figure 3 pipeline:
// for every one of the 30 kernels, the native Go implementation and the
// Wasm module (under both engines) must produce matching checksums.
func TestAllKernelsAgree(t *testing.T) {
	const n = 18
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			want, _ := RunNative(k, n)
			if math.IsNaN(want) || math.IsInf(want, 0) {
				t.Fatalf("native checksum not finite: %v", want)
			}
			for _, eng := range []wasm.Engine{wasm.EngineInterp, wasm.EngineAOT} {
				got, _, err := RunWasm(k, n, eng)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if !closeEnough(got, want) {
					t.Errorf("%v checksum = %v, native = %v", eng, got, want)
				}
			}
		})
	}
}

// closeEnough tolerates last-ulp differences (we expect bit-equality on
// amd64, but stay portable).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestKernelCount(t *testing.T) {
	if got := len(All()); got != 30 {
		t.Fatalf("kernel count = %d, want 30 (the paper's Figure 3 set)", got)
	}
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gemm"); !ok {
		t.Error("gemm not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ghost kernel found")
	}
}

func TestTwineExecutionMatches(t *testing.T) {
	// A representative subset through the full enclave stack.
	cfg := core.Config{PlatformSeed: "pb", SGX: sgx.TestConfig()}
	cfg.SGX.HeapSize = 128 << 20
	cfg.SGX.EPCSize = 32 << 20
	cfg.SGX.EPCUsable = 24 << 20
	cfg.SGX.ReservedSize = 8 << 20
	const n = 14
	for _, name := range []string{"gemm", "jacobi-2d", "cholesky", "deriche"} {
		k, ok := ByName(name)
		if !ok {
			t.Fatalf("kernel %s missing", name)
		}
		want, _ := RunNative(k, n)
		got, _, err := RunTwine(k, n, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !closeEnough(got, want) {
			t.Errorf("%s: twine = %v, native = %v", name, got, want)
		}
	}
}

func TestMinMemoryPages(t *testing.T) {
	k, _ := ByName("2mm")
	small, err := MinMemoryPages(k, 16)
	if err != nil {
		t.Fatalf("MinMemoryPages: %v", err)
	}
	big, err := MinMemoryPages(k, 64)
	if err != nil {
		t.Fatalf("MinMemoryPages: %v", err)
	}
	if big <= small {
		t.Errorf("memory need did not grow with n: %d -> %d", small, big)
	}
	// Instantiation under a too-small cap fails (the §V-B sweep endpoint).
	bin := k.Build(64)
	mod, _ := wasm.Decode(bin)
	c, _ := wasm.Compile(mod)
	imp := wasm.NewImportObject()
	MathImports(imp)
	if _, err := wasm.Instantiate(c, imp, wasm.Config{MaxMemoryPages: big - 1}); err == nil {
		t.Error("instantiated below the kernel's memory floor")
	}
}

func TestWasmIsSlowerThanNative(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Directional sanity for Figure 3: interpreting Wasm costs more than
	// native execution on a compute-bound kernel.
	k, _ := ByName("gemm")
	const n = 64
	_, tn := RunNative(k, n)
	_, tw, err := RunWasm(k, n, wasm.EngineAOT)
	if err != nil {
		t.Fatal(err)
	}
	if tw < tn {
		t.Errorf("wasm (%v) faster than native (%v)?", tw, tn)
	}
}
