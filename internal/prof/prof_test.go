package prof

import (
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Incr("x")
	r.AddTime("t", time.Second)
	r.Time("t", func() {})
	r.Start("t").Stop()
	r.Reset()
	r.SetEnabled(true)
	if got := r.Counter("x"); got != 0 {
		t.Fatalf("nil registry counter = %d, want 0", got)
	}
	if got := r.Timer("t"); got != 0 {
		t.Fatalf("nil registry timer = %v, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Timers) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCountersAccumulate(t *testing.T) {
	r := NewRegistry()
	r.Add("reads", 3)
	r.Incr("reads")
	r.Add("writes", 2)
	if got := r.Counter("reads"); got != 4 {
		t.Errorf("reads = %d, want 4", got)
	}
	if got := r.Counter("writes"); got != 2 {
		t.Errorf("writes = %d, want 2", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
}

func TestTimersAccumulate(t *testing.T) {
	r := NewRegistry()
	r.AddTime("io", 10*time.Millisecond)
	r.AddTime("io", 5*time.Millisecond)
	if got := r.Timer("io"); got != 15*time.Millisecond {
		t.Errorf("io = %v, want 15ms", got)
	}
}

func TestSpanMeasuresElapsedTime(t *testing.T) {
	r := NewRegistry()
	sp := r.Start("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.Stop()
	if got := r.Timer("sleep"); got < 2*time.Millisecond {
		t.Errorf("span recorded %v, want >= 2ms", got)
	}
}

func TestDisabledRegistryIgnoresEvents(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 1)
	r.SetEnabled(false)
	r.Add("a", 1)
	r.AddTime("t", time.Second)
	if got := r.Counter("a"); got != 1 {
		t.Errorf("a = %d, want 1 (event while disabled must be dropped)", got)
	}
	if got := r.Timer("t"); got != 0 {
		t.Errorf("t = %v, want 0", got)
	}
	r.SetEnabled(true)
	r.Add("a", 1)
	if got := r.Counter("a"); got != 2 {
		t.Errorf("a = %d, want 2 after re-enable", got)
	}
}

func TestResetClears(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 5)
	r.AddTime("t", time.Second)
	r.Reset()
	if r.Counter("a") != 0 || r.Timer("t") != 0 {
		t.Fatal("reset did not clear registry")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 1)
	snap := r.Snapshot()
	r.Add("a", 1)
	if snap.Counters["a"] != 1 {
		t.Errorf("snapshot mutated by later Add: %d", snap.Counters["a"])
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 1)
	r.AddTime("t", time.Second)
	prev := r.Snapshot()
	r.Add("a", 2)
	r.Add("b", 7)
	r.AddTime("t", time.Second)
	d := r.Snapshot().Sub(prev)
	if d.Counters["a"] != 2 {
		t.Errorf("delta a = %d, want 2", d.Counters["a"])
	}
	if d.Counters["b"] != 7 {
		t.Errorf("delta b = %d, want 7", d.Counters["b"])
	}
	if d.Timers["t"] != time.Second {
		t.Errorf("delta t = %v, want 1s", d.Timers["t"])
	}
	if _, ok := d.Counters["zero"]; ok {
		t.Error("zero deltas must be omitted")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Incr("n")
				r.AddTime("t", time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
	if got := r.Timer("t"); got != 8000*time.Nanosecond {
		t.Errorf("t = %v, want 8000ns", got)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Add("b.count", 2)
	r.Add("a.count", 1)
	r.AddTime("z.time", time.Millisecond)
	out := r.Snapshot().String()
	if out == "" {
		t.Fatal("empty string output")
	}
	// Timers render before counters; names sorted within each group.
	wantOrder := []string{"z.time", "a.count", "b.count"}
	last := -1
	for _, name := range wantOrder {
		idx := indexOf(out, name)
		if idx < 0 {
			t.Fatalf("output missing %q:\n%s", name, out)
		}
		if idx < last {
			t.Fatalf("output order wrong, %q appears too early:\n%s", name, out)
		}
		last = idx
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
