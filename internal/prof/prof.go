// Package prof provides a lightweight profiling registry used across the
// TWINE reproduction to attribute wall-clock time and event counts to named
// components (e.g. "ipfs.memset", "sgx.ocall", "litedb.exec").
//
// The paper's Figure 7 breaks the random-read workload down into SQLite
// inner work, read operations, OCALL transitions and memory clearing; every
// one of those series is produced by timers and counters registered here.
//
// A Registry is safe for concurrent use. Timing has deliberately low
// overhead (one monotonic clock read on start and stop) so that it can stay
// enabled during benchmark runs.
package prof

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry accumulates named counters and timers.
//
// The zero value is not ready for use; construct one with NewRegistry. A nil
// *Registry is valid everywhere and records nothing, so components can be
// wired unconditionally and profiled only when the caller provides a
// registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	timers   map[string]time.Duration
	enabled  bool
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		timers:   make(map[string]time.Duration),
		enabled:  true,
	}
}

// SetEnabled toggles recording. A disabled registry keeps its accumulated
// values but ignores new events.
func (r *Registry) SetEnabled(v bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.enabled = v
	r.mu.Unlock()
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.enabled {
		r.counters[name] += n
	}
	r.mu.Unlock()
}

// Incr increments the named counter by one.
func (r *Registry) Incr(name string) { r.Add(name, 1) }

// AddTime accumulates d under the named timer.
func (r *Registry) AddTime(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.enabled {
		r.timers[name] += d
	}
	r.mu.Unlock()
}

// Span is an in-flight timed region created by Start.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// Start begins timing a region attributed to name. Call Stop on the returned
// span. Start on a nil registry returns a no-op span.
func (r *Registry) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// Stop ends the span and accumulates its elapsed time.
func (s Span) Stop() {
	if s.r == nil {
		return
	}
	s.r.AddTime(s.name, time.Since(s.start))
}

// Time runs fn while attributing its wall time to name.
func (r *Registry) Time(name string, fn func()) {
	sp := r.Start(name)
	fn()
	sp.Stop()
}

// Counter returns the current value of the named counter.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Timer returns the accumulated duration of the named timer.
func (r *Registry) Timer(name string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timers[name]
}

// Reset clears all counters and timers.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.counters {
		delete(r.counters, k)
	}
	for k := range r.timers {
		delete(r.timers, k)
	}
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters map[string]int64
	Timers   map[string]time.Duration
}

// Snapshot copies the registry's current contents.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]int64),
		Timers:   make(map[string]time.Duration),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		snap.Counters[k] = v
	}
	for k, v := range r.timers {
		snap.Timers[k] = v
	}
	return snap
}

// Sub returns the delta snapshot cur − prev (clamped at zero is NOT applied;
// negative deltas indicate a Reset happened in between and are reported
// as-is so callers can detect them).
func (cur Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64),
		Timers:   make(map[string]time.Duration),
	}
	for k, v := range cur.Counters {
		if d := v - prev.Counters[k]; d != 0 {
			out.Counters[k] = d
		}
	}
	for k, v := range cur.Timers {
		if d := v - prev.Timers[k]; d != 0 {
			out.Timers[k] = d
		}
	}
	return out
}

// String renders the snapshot sorted by name, timers first, for reports.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Timers))
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-32s %12s\n", k, s.Timers[k])
	}
	names = names[:0]
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", k, s.Counters[k])
	}
	return b.String()
}
