// Package speedtest ports SQLite's Speedtest1 performance suite — the
// workload behind the paper's Figure 4 — to the litedb engine. The 29
// numbered experiments the paper runs (100…990) are reproduced with the
// same workload intent: bulk inserts (ordered/unordered/indexed), indexed
// and unindexed range selects, text selects, index creation, deletes and
// refills, schema alteration, narrow and wide updates, REPLACE upserts,
// primary-key point queries, DISTINCT scans, an integrity sweep and
// ANALYZE.
//
// Two tests of the original require features outside litedb's dialect and are
// substituted with equivalent-pressure workloads, documented per test.
package speedtest

import (
	"fmt"
	"math/rand"
	"strings"

	"twine/internal/litedb"
)

// Execer is the database surface the suite drives (implemented by
// litedb.DB, core.EmbeddedDB and the bench harness handles).
type Execer interface {
	Exec(sql string, args ...litedb.Value) (int64, error)
	Query(sql string, args ...litedb.Value) (*litedb.Rows, error)
}

// Test is one numbered Speedtest1 experiment.
type Test struct {
	ID   int
	Name string
	// Setup marks tests that run as part of the suite but are not
	// plotted in the paper's Figure 4 (index creation).
	Setup bool
	Run   func(db Execer, st *State) error
}

// State carries the deterministic workload generator.
type State struct {
	Scale int // 100 reproduces the proportions of the paper's runs, scaled down
	rng   *rand.Rand
}

// NewState builds a deterministic state; scale <= 0 selects 100.
func NewState(scale int) *State {
	if scale <= 0 {
		scale = 100
	}
	return &State{Scale: scale, rng: rand.New(rand.NewSource(42))}
}

// n scales a row count. Speedtest1's 25,000-row tests map to 250*scale/100.
func (st *State) n(base int) int {
	v := base * st.Scale / 10000
	if v < 10 {
		v = 10
	}
	return v
}

func (st *State) rand(n int) int { return st.rng.Intn(n) }

// numberName converts a number to its English name, as speedtest1 does to
// generate realistic text payloads.
func numberName(n int) string {
	ones := []string{"zero", "one", "two", "three", "four", "five", "six",
		"seven", "eight", "nine", "ten", "eleven", "twelve", "thirteen",
		"fourteen", "fifteen", "sixteen", "seventeen", "eighteen", "nineteen"}
	tens := []string{"", "", "twenty", "thirty", "forty", "fifty", "sixty",
		"seventy", "eighty", "ninety"}
	if n < 0 {
		return "minus " + numberName(-n)
	}
	switch {
	case n < 20:
		return ones[n]
	case n < 100:
		s := tens[n/10]
		if n%10 != 0 {
			s += " " + ones[n%10]
		}
		return s
	case n < 1000:
		s := ones[n/100] + " hundred"
		if n%100 != 0 {
			s += " " + numberName(n%100)
		}
		return s
	case n < 1000000:
		s := numberName(n/1000) + " thousand"
		if n%1000 != 0 {
			s += " " + numberName(n%1000)
		}
		return s
	default:
		s := numberName(n/1000000) + " million"
		if n%1000000 != 0 {
			s += " " + numberName(n%1000000)
		}
		return s
	}
}

func iv(n int) litedb.Value    { return litedb.IntVal(int64(n)) }
func tv(s string) litedb.Value { return litedb.TextVal(s) }

// fillT1 populates t1 with n rows of speedtest1's (a, b, c) shape.
func fillT1(db Execer, st *State, n int, ordered bool) error {
	if _, err := db.Exec(`BEGIN`); err != nil {
		return err
	}
	for i := 1; i <= n; i++ {
		a := i
		if !ordered {
			a = st.rand(n*2) + 1
		}
		b := st.rand(1000000)
		if _, err := db.Exec(`INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)`,
			iv(a), iv(b), tv(numberName(b%100000))); err != nil {
			_, _ = db.Exec(`ROLLBACK`)
			return err
		}
	}
	_, err := db.Exec(`COMMIT`)
	return err
}

// All returns the suite in the paper's Figure 4 order.
func All() []Test {
	return []Test{
		{ID: 100, Name: "25000 INSERTs into table with no index", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t1 (a INTEGER, b INTEGER, c TEXT)`); err != nil {
				return err
			}
			return fillT1(db, st, st.n(25000), false)
		}},
		{ID: 110, Name: "25000 ordered INSERTS with one index/PK", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t2 (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)`); err != nil {
				return err
			}
			n := st.n(25000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 1; i <= n; i++ {
				b := st.rand(1000000)
				if _, err := db.Exec(`INSERT INTO t2 VALUES (?, ?, ?)`,
					iv(i), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 120, Name: "25000 unordered INSERTS with one index/PK", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t3 (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)`); err != nil {
				return err
			}
			n := st.n(25000)
			perm := st.rng.Perm(n)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for _, p := range perm {
				b := st.rand(1000000)
				if _, err := db.Exec(`INSERT INTO t3 VALUES (?, ?, ?)`,
					iv(p+1), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 130, Name: "25 SELECTS, numeric BETWEEN, unindexed", Run: selectsNumericUnindexed},
		{ID: 140, Name: "10 SELECTS, LIKE, unindexed", Run: func(db Execer, st *State) error {
			for i := 0; i < 10; i++ {
				pat := "%" + numberName(st.rand(1000))[:4] + "%"
				if _, err := db.Query(`SELECT COUNT(*), AVG(b) FROM t1 WHERE c LIKE ?`, tv(pat)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 142, Name: "10 SELECTS w/ORDER BY, unindexed", Run: func(db Execer, st *State) error {
			for i := 0; i < 10; i++ {
				lo := st.rand(1000000)
				if _, err := db.Query(`SELECT a, b, c FROM t1 WHERE b > ? ORDER BY c`, iv(lo)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 145, Name: "10 SELECTS w/ORDER BY and LIMIT, unindexed", Run: func(db Execer, st *State) error {
			for i := 0; i < 10; i++ {
				lo := st.rand(1000000)
				if _, err := db.Query(`SELECT a, b, c FROM t1 WHERE b > ? ORDER BY c LIMIT 12`, iv(lo)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 150, Name: "CREATE INDEX five times", Setup: true, Run: func(db Execer, st *State) error {
			for _, ddl := range []string{
				`CREATE INDEX i1b ON t1(b)`,
				`CREATE INDEX i1c ON t1(c)`,
				`CREATE INDEX i2b ON t2(b)`,
				`CREATE INDEX i2c ON t2(c)`,
				`CREATE INDEX i3b ON t3(b)`,
			} {
				if _, err := db.Exec(ddl); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 160, Name: "10000 SELECTS, numeric BETWEEN, indexed", Run: func(db Execer, st *State) error {
			n := st.n(10000)
			for i := 0; i < n; i++ {
				lo := st.rand(1000000)
				if _, err := db.Query(`SELECT COUNT(*) FROM t1 WHERE b = ?`, iv(lo)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 161, Name: "10000 SELECTS, numeric BETWEEN, PK", Run: func(db Execer, st *State) error {
			n := st.n(10000)
			max := st.n(25000)
			for i := 0; i < n; i++ {
				lo := st.rand(max) + 1
				if _, err := db.Query(`SELECT c FROM t2 WHERE a BETWEEN ? AND ?`,
					iv(lo), iv(lo+10)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 170, Name: "10000 SELECTS, text BETWEEN, indexed", Run: func(db Execer, st *State) error {
			n := st.n(10000)
			for i := 0; i < n; i++ {
				name := numberName(st.rand(100000))
				if _, err := db.Query(`SELECT COUNT(*) FROM t1 WHERE c = ?`, tv(name)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 180, Name: "50000 INSERTS with three indexes", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t4 (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)`); err != nil {
				return err
			}
			if _, err := db.Exec(`CREATE INDEX i4b ON t4(b); CREATE INDEX i4c ON t4(c)`); err != nil {
				return err
			}
			n := st.n(50000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 1; i <= n; i++ {
				b := st.rand(1000000)
				if _, err := db.Exec(`INSERT INTO t4 VALUES (?, ?, ?)`,
					iv(i), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 190, Name: "DELETE and REFILL one table", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`DELETE FROM t3`); err != nil {
				return err
			}
			n := st.n(25000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 1; i <= n; i++ {
				b := st.rand(1000000)
				if _, err := db.Exec(`INSERT INTO t3 VALUES (?, ?, ?)`,
					iv(i), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 210, Name: "ALTER TABLE ADD COLUMN, and query", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`ALTER TABLE t2 ADD COLUMN d INTEGER DEFAULT 123`); err != nil {
				return err
			}
			_, err := db.Query(`SELECT SUM(d) FROM t2`)
			return err
		}},
		{ID: 230, Name: "10000 UPDATES, numeric BETWEEN, indexed", Run: func(db Execer, st *State) error {
			n := st.n(10000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				lo := st.rand(1000000)
				if _, err := db.Exec(`UPDATE t1 SET b = b + 1 WHERE b BETWEEN ? AND ?`,
					iv(lo), iv(lo+50)); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 240, Name: "50000 UPDATES of individual rows", Run: func(db Execer, st *State) error {
			n := st.n(50000)
			max := st.n(25000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if _, err := db.Exec(`UPDATE t2 SET b = b + 1 WHERE a = ?`,
					iv(st.rand(max)+1)); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 250, Name: "One big UPDATE of the whole table", Run: func(db Execer, st *State) error {
			_, err := db.Exec(`UPDATE t2 SET b = b + 1`)
			return err
		}},
		{ID: 260, Name: "Query added column after filling", Run: func(db Execer, st *State) error {
			_, err := db.Query(`SELECT SUM(b), SUM(d) FROM t2`)
			return err
		}},
		{ID: 270, Name: "10000 DELETEs, numeric BETWEEN, indexed", Run: func(db Execer, st *State) error {
			n := st.n(10000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				lo := st.rand(1000000)
				if _, err := db.Exec(`DELETE FROM t4 WHERE b BETWEEN ? AND ?`,
					iv(lo), iv(lo+10)); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 280, Name: "50000 DELETEs of individual rows", Run: func(db Execer, st *State) error {
			n := st.n(50000)
			max := st.n(25000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if _, err := db.Exec(`DELETE FROM t4 WHERE a = ?`, iv(st.rand(max)+1)); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 290, Name: "Refill two tables with REPLACE", Run: func(db Execer, st *State) error {
			n := st.n(25000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 1; i <= n; i++ {
				b := st.rand(1000000)
				if _, err := db.Exec(`INSERT OR REPLACE INTO t2 (a, b, c) VALUES (?, ?, ?)`,
					iv(i), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
				if _, err := db.Exec(`INSERT OR REPLACE INTO t3 VALUES (?, ?, ?)`,
					iv(i), iv(b), tv(numberName(b%100000))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 300, Name: "Refill a table from a full scan", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t5 (a INTEGER, b INTEGER, c TEXT)`); err != nil {
				return err
			}
			_, err := db.Exec(`INSERT INTO t5 SELECT a, b, c FROM t1`)
			return err
		}},
		// 320 in the original uses a correlated subquery; substituted with
		// the equivalent-pressure grouped aggregate over the same data.
		{ID: 320, Name: "Grouped aggregate over full table (orig: subquery)", Run: func(db Execer, st *State) error {
			_, err := db.Query(`SELECT b % 100, COUNT(*), AVG(a) FROM t1 GROUP BY b % 100`)
			return err
		}},
		{ID: 400, Name: "70000 REPLACE ops on an IPK", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t6 (a INTEGER PRIMARY KEY, b TEXT)`); err != nil {
				return err
			}
			n := st.n(70000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				key := st.rand(st.n(70000)) + 1
				if _, err := db.Exec(`INSERT OR REPLACE INTO t6 VALUES (?, ?)`,
					iv(key), tv(numberName(key))); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 410, Name: "70000 SELECTS on an IPK", Run: func(db Execer, st *State) error {
			n := st.n(70000)
			for i := 0; i < n; i++ {
				if _, err := db.Query(`SELECT b FROM t6 WHERE a = ?`,
					iv(st.rand(st.n(70000))+1)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 500, Name: "70000 REPLACE on TEXT PK", Run: func(db Execer, st *State) error {
			if _, err := db.Exec(`CREATE TABLE t7 (a TEXT PRIMARY KEY, b INTEGER)`); err != nil {
				return err
			}
			n := st.n(70000)
			if _, err := db.Exec(`BEGIN`); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				key := st.rand(st.n(70000)) + 1
				if _, err := db.Exec(`INSERT OR REPLACE INTO t7 VALUES (?, ?)`,
					tv(numberName(key)), iv(key)); err != nil {
					return err
				}
			}
			_, err := db.Exec(`COMMIT`)
			return err
		}},
		{ID: 510, Name: "70000 SELECTS on a TEXT PK", Run: func(db Execer, st *State) error {
			n := st.n(70000)
			for i := 0; i < n; i++ {
				key := numberName(st.rand(st.n(70000)) + 1)
				if _, err := db.Query(`SELECT b FROM t7 WHERE a = ?`, tv(key)); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: 520, Name: "70000 SELECT DISTINCT", Run: func(db Execer, st *State) error {
			if _, err := db.Query(`SELECT DISTINCT b FROM t1`); err != nil {
				return err
			}
			_, err := db.Query(`SELECT DISTINCT c FROM t1`)
			return err
		}},
		// 980 in the original is PRAGMA integrity_check; substituted with a
		// full sweep of every table and index (VACUUM performs exactly
		// that read pattern in this engine).
		{ID: 980, Name: "Integrity sweep (orig: PRAGMA integrity_check)", Run: func(db Execer, st *State) error {
			_, err := db.Exec(`VACUUM`)
			return err
		}},
		{ID: 990, Name: "ANALYZE", Run: func(db Execer, st *State) error {
			_, err := db.Exec(`ANALYZE`)
			return err
		}},
	}
}

func selectsNumericUnindexed(db Execer, st *State) error {
	for i := 0; i < 25; i++ {
		lo := st.rand(1000000)
		if _, err := db.Query(
			`SELECT COUNT(*), AVG(b), SUM(length(c)) FROM t1 WHERE b BETWEEN ? AND ?`,
			iv(lo), iv(lo+100000)); err != nil {
			return err
		}
	}
	return nil
}

// IDs lists the test numbers in order.
func IDs() []int {
	tests := All()
	ids := make([]int, len(tests))
	for i, t := range tests {
		ids[i] = t.ID
	}
	return ids
}

// ByID finds a test.
func ByID(id int) (Test, bool) {
	for _, t := range All() {
		if t.ID == id {
			return t, true
		}
	}
	return Test{}, false
}

// Describe renders the suite for documentation.
func Describe() string {
	var b strings.Builder
	for _, t := range All() {
		fmt.Fprintf(&b, "%4d  %s\n", t.ID, t.Name)
	}
	return b.String()
}
