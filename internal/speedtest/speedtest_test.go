package speedtest

import (
	"testing"

	"twine/internal/litedb"
)

func TestNumberName(t *testing.T) {
	cases := map[int]string{
		0:       "zero",
		7:       "seven",
		13:      "thirteen",
		20:      "twenty",
		42:      "forty two",
		100:     "one hundred",
		101:     "one hundred one",
		999:     "nine hundred ninety nine",
		1000:    "one thousand",
		1234:    "one thousand two hundred thirty four",
		1000000: "one million",
		-5:      "minus five",
	}
	for n, want := range cases {
		if got := numberName(n); got != want {
			t.Errorf("numberName(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	tests := All()
	if len(tests) != 30 {
		t.Fatalf("suite has %d tests, want 30", len(tests))
	}
	plotted := 0
	last := 0
	for _, tc := range tests {
		if tc.ID <= last {
			t.Errorf("test IDs not increasing at %d", tc.ID)
		}
		last = tc.ID
		if !tc.Setup {
			plotted++
		}
		if tc.Run == nil {
			t.Errorf("test %d has no runner", tc.ID)
		}
	}
	if plotted != 29 {
		t.Errorf("%d plotted tests, want 29 (paper Figure 4)", plotted)
	}
	if _, ok := ByID(990); !ok {
		t.Error("ANALYZE test missing")
	}
	if _, ok := ByID(555); ok {
		t.Error("ghost test found")
	}
	if Describe() == "" {
		t.Error("empty description")
	}
}

func TestStateDeterminism(t *testing.T) {
	a, b := NewState(50), NewState(50)
	for i := 0; i < 100; i++ {
		if a.rand(1000) != b.rand(1000) {
			t.Fatal("state not deterministic")
		}
	}
	if NewState(0).Scale != 100 {
		t.Error("default scale not applied")
	}
}

func TestScaling(t *testing.T) {
	st := NewState(100)
	if st.n(25000) != 250 {
		t.Errorf("n(25000) at scale 100 = %d, want 250", st.n(25000))
	}
	if NewState(1).n(25000) < 10 {
		t.Error("scaled count below floor")
	}
}

// TestFullSuiteRuns executes every test against a plain litedb database —
// the ground-truth pass that the bench harness variants are compared to.
func TestFullSuiteRuns(t *testing.T) {
	db, err := litedb.Open(litedb.NewMemVFS(), ":memory:", litedb.Options{CachePages: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	st := NewState(30)
	for _, tc := range All() {
		if err := tc.Run(db, st); err != nil {
			t.Fatalf("test %d (%s): %v", tc.ID, tc.Name, err)
		}
	}
	// Sanity: the suite left real data behind.
	row, err := db.QueryRow(`SELECT COUNT(*) FROM t1`)
	if err != nil || row[0].Int() == 0 {
		t.Errorf("t1 empty after suite: %v, %v", row, err)
	}
}
