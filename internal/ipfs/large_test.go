package ipfs

import (
	"bytes"
	"io"
	"testing"

	"twine/internal/hostfs"
)

// Large-file stress: write a multi-MHT file with interleaved
// read-modify-write at pager-like granularity, then verify.
func TestLargeInterleavedRW(t *testing.T) {
	backing := hostfs.NewMemFS()
	for _, mode := range []Mode{ModeStandard, ModeOptimized} {
		fs := New(nil, backing, Options{Mode: mode, CacheNodes: 48})
		name := "big-" + mode.String()
		f, err := fs.Open(name, hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, 4096)
		const nPages = 6000 // ~24 MiB, several MHT levels
		for i := 0; i < nPages; i++ {
			for j := range page {
				page[j] = byte(i + j)
			}
			if _, err := f.Seek(int64(i)*4096, SeekStart); err != nil {
				if err2 := f.ExtendTo(int64(i+1) * 4096); err2 != nil {
					t.Fatalf("extend %d: %v", i, err2)
				}
				if _, err := f.Seek(int64(i)*4096, SeekStart); err != nil {
					t.Fatalf("seek %d: %v", i, err)
				}
			}
			if _, err := f.Write(page); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			// Interleave random re-reads like the pager does.
			if i%7 == 3 {
				k := i / 2
				if _, err := f.Seek(int64(k)*4096, SeekStart); err != nil {
					t.Fatalf("reseek: %v", err)
				}
				buf := make([]byte, 4096)
				if _, err := io.ReadFull(fileRd{f}, buf); err != nil {
					t.Fatalf("read %d at size %d: %v", k, i, err)
				}
				for j := range buf {
					if buf[j] != byte(k+j) {
						t.Fatalf("page %d corrupt at %d", k, j)
					}
				}
			}
			if i%500 == 499 {
				if err := f.Flush(); err != nil {
					t.Fatalf("flush @%d: %v", i, err)
				}
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		g, err := fs.Open(name, hostfs.ORead)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		buf := make([]byte, 4096)
		for i := 0; i < nPages; i++ {
			if _, err := g.Seek(int64(i)*4096, SeekStart); err != nil {
				t.Fatalf("seek: %v", err)
			}
			if _, err := io.ReadFull(fileRd{g}, buf); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			want := byte(i)
			if buf[0] != want || !bytes.Equal(buf[:4], []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}) {
				t.Fatalf("page %d content wrong", i)
			}
		}
		g.Close()
	}
}

type fileRd struct{ f *File }

func (r fileRd) Read(p []byte) (int, error) { return r.f.Read(p) }
