package ipfs

import (
	"io"
	"math/rand"
	"testing"

	"twine/internal/hostfs"
)

// No-Flush stress: rely purely on eviction write-back (SyncOff pattern).
func TestNoFlushEvictionConsistency(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{Mode: ModeOptimized, CacheNodes: 48})
	f, err := fs.Open("db", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 4096)
	content := map[int]byte{}
	rng := rand.New(rand.NewSource(5))
	maxPage := 0
	buf := make([]byte, 4096)
	for op := 0; op < 60000; op++ {
		if rng.Intn(3) != 0 || maxPage == 0 { // write (append-biased)
			p := maxPage
			if maxPage > 0 && rng.Intn(4) == 0 {
				p = rng.Intn(maxPage) // rewrite
			}
			for j := range page {
				page[j] = byte(p) ^ byte(op)
			}
			if _, err := f.Seek(int64(p)*4096, SeekStart); err != nil {
				if err := f.ExtendTo(int64(p) * 4096); err != nil {
					t.Fatalf("op%d extend: %v", op, err)
				}
				if _, err := f.Seek(int64(p)*4096, SeekStart); err != nil {
					t.Fatalf("op%d seek: %v", op, err)
				}
			}
			if _, err := f.Write(page); err != nil {
				t.Fatalf("op%d write p%d: %v", op, p, err)
			}
			content[p] = byte(p) ^ byte(op)
			if p == maxPage {
				maxPage++
			}
		} else { // read
			p := rng.Intn(maxPage)
			if _, err := f.Seek(int64(p)*4096, SeekStart); err != nil {
				t.Fatalf("op%d rseek: %v", op, err)
			}
			if _, err := io.ReadFull(nfRd{f}, buf); err != nil {
				t.Fatalf("op%d read p%d (max %d): %v", op, p, maxPage, err)
			}
			if buf[0] != content[p] || buf[4095] != content[p] {
				t.Fatalf("op%d: p%d = %d, want %d", op, p, buf[0], content[p])
			}
		}
	}
	t.Logf("reached %d pages", maxPage)
}

type nfRd struct{ f *File }

func (r nfRd) Read(p []byte) (int, error) { return r.f.Read(p) }
