package ipfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"twine/internal/hostfs"
	"twine/internal/prof"
	"twine/internal/sgx"
)

// eachMode runs a subtest under both IPFS modes; the optimized variant
// must be behaviourally identical to the standard one.
func eachMode(t *testing.T, name string, fn func(t *testing.T, fs *FS, backing *hostfs.MemFS)) {
	t.Helper()
	for _, mode := range []Mode{ModeStandard, ModeOptimized} {
		t.Run(name+"/"+mode.String(), func(t *testing.T) {
			backing := hostfs.NewMemFS()
			fn(t, New(nil, backing, Options{Mode: mode}), backing)
		})
	}
}

func TestLayoutMath(t *testing.T) {
	// Intel's interleaving: meta(0), MHT0(1), data 0..95 at 2..97,
	// MHT1(98), data 96..191 at 99..194, ...
	tests := []struct{ d, phys int64 }{
		{0, 2}, {1, 3}, {95, 97}, {96, 99}, {191, 194}, {192, 196},
	}
	for _, tc := range tests {
		if got := dataPhys(tc.d); got != tc.phys {
			t.Errorf("dataPhys(%d) = %d, want %d", tc.d, got, tc.phys)
		}
	}
	if got := mhtPhys(0); got != 1 {
		t.Errorf("mhtPhys(0) = %d, want 1", got)
	}
	if got := mhtPhys(1); got != 98 {
		t.Errorf("mhtPhys(1) = %d, want 98", got)
	}
	// Parent relations.
	if m, s := dataParent(100); m != 1 || s != 4 {
		t.Errorf("dataParent(100) = (%d,%d), want (1,4)", m, s)
	}
	if p, s := mhtParent(1); p != 0 || s != dataPerMHT {
		t.Errorf("mhtParent(1) = (%d,%d), want (0,%d)", p, s, dataPerMHT)
	}
	if p, s := mhtParent(33); p != 1 || s != dataPerMHT {
		t.Errorf("mhtParent(33) = (%d,%d), want (1,%d)", p, s, dataPerMHT)
	}
	// No two distinct nodes may share a physical index.
	seen := map[int64]string{}
	for d := int64(0); d < 1000; d++ {
		p := dataPhys(d)
		if prev, ok := seen[p]; ok {
			t.Fatalf("phys %d used by data %d and %s", p, d, prev)
		}
		seen[p] = "data"
	}
	for k := int64(0); k < 12; k++ {
		p := mhtPhys(k)
		if prev, ok := seen[p]; ok {
			t.Fatalf("phys %d used by mht %d and %s", p, k, prev)
		}
		seen[p] = "mht"
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	eachMode(t, "roundtrip", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, err := fs.Open("db", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		payload := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16,000 B, ~4 nodes
		if _, err := f.Write(payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if _, err := f.Seek(0, SeekStart); err != nil {
			t.Fatalf("Seek: %v", err)
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(readerOf(f), got); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("read-back mismatch")
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

type fileReader struct{ f *File }

func (r fileReader) Read(p []byte) (int, error) { return r.f.Read(p) }
func readerOf(f *File) io.Reader                { return fileReader{f} }

func TestPersistenceAcrossReopen(t *testing.T) {
	eachMode(t, "reopen", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, _ := fs.Open("p", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		payload := bytes.Repeat([]byte{0x5A}, 3*NodeSize+123)
		f.Write(payload)
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		g, err := fs.Open("p", hostfs.ORead)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer g.Close()
		if g.Size() != int64(len(payload)) {
			t.Fatalf("size after reopen = %d, want %d", g.Size(), len(payload))
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(readerOf(g), got); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("persisted data mismatch")
		}
	})
}

func TestCiphertextOnDisk(t *testing.T) {
	eachMode(t, "ciphertext", func(t *testing.T, fs *FS, backing *hostfs.MemFS) {
		f, _ := fs.Open("secret.db", hostfs.OCreate|hostfs.OWrite)
		secret := bytes.Repeat([]byte("TOP-SECRET-ROW!!"), 600)
		f.Write(secret)
		f.Close()
		raw, err := backing.OpenFile("secret.db", hostfs.ORead)
		if err != nil {
			t.Fatalf("raw open: %v", err)
		}
		defer raw.Close()
		info, _ := raw.Stat()
		disk := make([]byte, info.Size)
		raw.ReadAt(disk, 0)
		if bytes.Contains(disk, []byte("TOP-SECRET-ROW!!")) {
			t.Fatal("plaintext leaked to untrusted storage")
		}
	})
}

func TestTamperDetection(t *testing.T) {
	eachMode(t, "tamper", func(t *testing.T, fs *FS, backing *hostfs.MemFS) {
		f, _ := fs.Open("t", hostfs.OCreate|hostfs.OWrite)
		f.Write(bytes.Repeat([]byte{7}, 2*NodeSize))
		f.Close()

		// Flip one byte in the first data node's ciphertext.
		raw, _ := backing.OpenFile("t", hostfs.ORead|hostfs.OWrite)
		var b [1]byte
		off := dataPhys(0)*NodeSize + 100
		raw.ReadAt(b[:], off)
		b[0] ^= 0xFF
		raw.WriteAt(b[:], off)
		raw.Close()

		g, err := fs.Open("t", hostfs.ORead)
		if err != nil {
			t.Fatalf("open after tamper: %v (meta untouched, open must succeed)", err)
		}
		defer g.Close()
		buf := make([]byte, NodeSize)
		if _, err := g.Read(buf); !errors.Is(err, ErrIntegrity) {
			t.Errorf("read of tampered node = %v, want ErrIntegrity", err)
		}
	})
}

func TestMHTTamperDetection(t *testing.T) {
	eachMode(t, "tamper-mht", func(t *testing.T, fs *FS, backing *hostfs.MemFS) {
		f, _ := fs.Open("t", hostfs.OCreate|hostfs.OWrite)
		f.Write(bytes.Repeat([]byte{9}, NodeSize))
		f.Close()

		raw, _ := backing.OpenFile("t", hostfs.ORead|hostfs.OWrite)
		var b [1]byte
		off := mhtPhys(0)*NodeSize + 5
		raw.ReadAt(b[:], off)
		b[0] ^= 0x01
		raw.WriteAt(b[:], off)
		raw.Close()

		g, err := fs.Open("t", hostfs.ORead)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer g.Close()
		buf := make([]byte, 16)
		if _, err := g.Read(buf); !errors.Is(err, ErrIntegrity) {
			t.Errorf("read under tampered MHT = %v, want ErrIntegrity", err)
		}
	})
}

func TestWrongKeyRejected(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	key1 := [16]byte{1}
	key2 := [16]byte{2}
	f, err := fs.OpenWithKey("k", hostfs.OCreate|hostfs.OWrite, key1)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	f.Write([]byte("data"))
	f.Close()
	if _, err := fs.OpenWithKey("k", hostfs.ORead, key2); !errors.Is(err, ErrBadName) {
		t.Errorf("open with wrong key = %v, want ErrBadName", err)
	}
}

func TestRenamedFileRejected(t *testing.T) {
	// The file name participates in metadata authentication, so renaming
	// a protected file on the untrusted FS breaks its binding (as Intel's
	// "file name mismatch" check does).
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	f, _ := fs.Open("orig", hostfs.OCreate|hostfs.OWrite)
	f.Write([]byte("bound"))
	f.Close()
	if err := backing.Rename("orig", "moved"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fs.Open("moved", hostfs.ORead); !errors.Is(err, ErrBadName) {
		t.Errorf("open of renamed file = %v, want ErrBadName", err)
	}
}

func TestRollbackNotDetected(t *testing.T) {
	// Documented limitation (paper §IV-D): swapping the whole file with
	// an older snapshot is NOT detected.
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	f, _ := fs.Open("r", hostfs.OCreate|hostfs.OWrite)
	f.Write([]byte("version-1"))
	f.Close()

	// Snapshot the untrusted bytes.
	raw, _ := backing.OpenFile("r", hostfs.ORead)
	info, _ := raw.Stat()
	snap := make([]byte, info.Size)
	raw.ReadAt(snap, 0)
	raw.Close()

	f2, _ := fs.Open("r", hostfs.OWrite|hostfs.ORead)
	f2.Seek(0, SeekStart)
	f2.Write([]byte("version-2"))
	f2.Close()

	// Roll back.
	raw2, _ := backing.OpenFile("r", hostfs.OWrite|hostfs.OTrunc)
	raw2.WriteAt(snap, 0)
	raw2.Close()

	g, err := fs.Open("r", hostfs.ORead)
	if err != nil {
		t.Fatalf("open after rollback: %v (rollback must go undetected)", err)
	}
	defer g.Close()
	buf := make([]byte, 9)
	g.Read(buf)
	if string(buf) != "version-1" {
		t.Errorf("rolled-back content = %q, want version-1", buf)
	}
}

func TestSeekSemantics(t *testing.T) {
	eachMode(t, "seek", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, _ := fs.Open("s", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		defer f.Close()
		f.Write(make([]byte, 100))

		if pos, err := f.Seek(50, SeekStart); err != nil || pos != 50 {
			t.Errorf("SeekStart = %d, %v", pos, err)
		}
		if pos, err := f.Seek(10, SeekCurrent); err != nil || pos != 60 {
			t.Errorf("SeekCurrent = %d, %v", pos, err)
		}
		if pos, err := f.Seek(-10, SeekEnd); err != nil || pos != 90 {
			t.Errorf("SeekEnd = %d, %v", pos, err)
		}
		// Intel semantics: no seeking beyond the end.
		if _, err := f.Seek(101, SeekStart); !errors.Is(err, ErrSeekPastEnd) {
			t.Errorf("seek past end = %v, want ErrSeekPastEnd", err)
		}
		if _, err := f.Seek(-1, SeekStart); err == nil {
			t.Error("negative seek accepted")
		}
		if _, err := f.Seek(0, 99); err == nil {
			t.Error("bad whence accepted")
		}
	})
}

func TestExtendToWritesNulls(t *testing.T) {
	eachMode(t, "extend", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, _ := fs.Open("e", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		defer f.Close()
		f.Write([]byte("abc"))
		if err := f.ExtendTo(NodeSize + 10); err != nil {
			t.Fatalf("ExtendTo: %v", err)
		}
		if f.Size() != NodeSize+10 {
			t.Fatalf("size = %d", f.Size())
		}
		// Now the SQLite pattern works: seek to former past-EOF and write.
		if _, err := f.Seek(NodeSize, SeekStart); err != nil {
			t.Fatalf("seek into extension: %v", err)
		}
		f.Write([]byte("xyz"))
		f.Seek(0, SeekStart)
		got := make([]byte, NodeSize+10)
		io.ReadFull(readerOf(f), got)
		if string(got[:3]) != "abc" || got[3] != 0 || string(got[NodeSize:NodeSize+3]) != "xyz" {
			t.Error("extension content wrong")
		}
	})
}

func TestTruncate(t *testing.T) {
	eachMode(t, "truncate", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, _ := fs.Open("tr", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		defer f.Close()
		f.Write(bytes.Repeat([]byte{1}, 2*NodeSize))
		if err := f.Truncate(100); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if f.Size() != 100 {
			t.Errorf("size = %d", f.Size())
		}
		if f.Tell() != 100 {
			t.Errorf("cursor = %d, want clamped to 100", f.Tell())
		}
		if err := f.Truncate(200); err != nil {
			t.Fatalf("grow: %v", err)
		}
		f.Seek(100, SeekStart)
		buf := make([]byte, 100)
		io.ReadFull(readerOf(f), buf)
		if !bytes.Equal(buf, make([]byte, 100)) {
			t.Error("grown region not zeroed")
		}
	})
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	f, _ := fs.Open("ro", hostfs.OCreate|hostfs.OWrite)
	f.Write([]byte("x"))
	f.Close()
	g, _ := fs.Open("ro", hostfs.ORead)
	defer g.Close()
	if _, err := g.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write on read-only = %v, want ErrReadOnly", err)
	}
	if err := g.Truncate(0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("truncate on read-only = %v, want ErrReadOnly", err)
	}
}

func TestCacheEviction(t *testing.T) {
	eachMode(t, "eviction", func(t *testing.T, fs *FS, _ *hostfs.MemFS) {
		f, _ := fs.Open("big", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		defer f.Close()
		// Write far more nodes than the cache holds (default floor 8).
		payload := make([]byte, 64*NodeSize)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		f.Write(payload)
		if got := f.CachedNodes(); got > fs.opt.CacheNodes+8 {
			t.Errorf("cache grew to %d nodes, cap %d", got, fs.opt.CacheNodes)
		}
		f.Seek(0, SeekStart)
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(readerOf(f), got); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("data corrupted across evictions")
		}
	})
}

func TestSmallCacheLargeFile(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{CacheNodes: 1}) // floored to 8
	f, _ := fs.Open("s", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
	payload := make([]byte, 200*NodeSize) // spans multiple MHT nodes
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	g, err := fs.Open("s", hostfs.ORead)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(readerOf(g), got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-MHT file corrupted")
	}
}

func TestModesProduceIdenticalPlaintext(t *testing.T) {
	// The §V-F optimisation must not change observable behaviour.
	write := func(mode Mode) []byte {
		backing := hostfs.NewMemFS()
		fs := New(nil, backing, Options{Mode: mode})
		f, _ := fs.Open("x", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		for i := 0; i < 10; i++ {
			f.Write(bytes.Repeat([]byte{byte(i)}, 1000))
		}
		f.Seek(500, SeekStart)
		f.Write([]byte("patch"))
		f.Close()
		g, _ := fs.Open("x", hostfs.ORead)
		defer g.Close()
		out := make([]byte, g.Size())
		io.ReadFull(readerOf(g), out)
		return out
	}
	if !bytes.Equal(write(ModeStandard), write(ModeOptimized)) {
		t.Fatal("modes disagree on plaintext")
	}
}

func TestOptimizedModeSkipsMemset(t *testing.T) {
	run := func(mode Mode) int64 {
		backing := hostfs.NewMemFS()
		reg := prof.NewRegistry()
		fs := New(nil, backing, Options{Mode: mode, Prof: reg})
		f, _ := fs.Open("m", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		f.Write(make([]byte, 40*NodeSize))
		f.Seek(0, SeekStart)
		io.ReadFull(readerOf(f), make([]byte, 40*NodeSize))
		f.Close()
		return int64(reg.Timer("ipfs.memset"))
	}
	if std := run(ModeStandard); std == 0 {
		t.Error("standard mode recorded no memset time")
	}
	if opt := run(ModeOptimized); opt != 0 {
		t.Errorf("optimized mode recorded %d memset time, want 0", opt)
	}
}

func TestEnclaveDerivedKeys(t *testing.T) {
	platform := sgx.NewPlatform("fs-test")
	enclave, err := platform.NewEnclave(sgx.TestConfig(), []byte("twine"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	backing := hostfs.NewMemFS()
	fs := New(enclave, backing, Options{})

	err = enclave.ECall("main", func() error {
		f, err := fs.Open("sealed", hostfs.OCreate|hostfs.OWrite)
		if err != nil {
			return err
		}
		f.Write([]byte("enclave data"))
		return f.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if enclave.Stats().OCalls == 0 {
		t.Error("no OCALLs recorded for protected-file I/O from the enclave")
	}

	// The same enclave code on the same platform can reopen it.
	enclave2, _ := platform.NewEnclave(sgx.TestConfig(), []byte("twine"))
	fs2 := New(enclave2, backing, Options{})
	err = enclave2.ECall("main", func() error {
		f, err := fs2.Open("sealed", hostfs.ORead)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 12)
		f.Read(buf)
		if string(buf) != "enclave data" {
			t.Errorf("read = %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reopen in second enclave: %v", err)
	}

	// A different platform cannot derive the key.
	other, _ := sgx.NewPlatform("other-cpu").NewEnclave(sgx.TestConfig(), []byte("twine"))
	fs3 := New(other, backing, Options{})
	err = other.ECall("main", func() error {
		_, err := fs3.Open("sealed", hostfs.ORead)
		return err
	})
	if !errors.Is(err, ErrBadName) {
		t.Errorf("foreign platform open = %v, want ErrBadName", err)
	}
}

func TestBackingFailurePropagates(t *testing.T) {
	bang := errors.New("injected")
	backing := hostfs.NewFaulty(hostfs.NewMemFS(), 1<<30, bang)
	fs := New(nil, backing, Options{})
	f, err := fs.Open("ff", hostfs.OCreate|hostfs.OWrite)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Write(make([]byte, 4*NodeSize))
	backing.FailAfter = backing.Ops() // fail everything from here
	if err := f.Flush(); !errors.Is(err, bang) {
		t.Errorf("Flush with failing backing = %v, want injected error", err)
	}
}

func TestRemoveAndExists(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	f, _ := fs.Open("gone", hostfs.OCreate|hostfs.OWrite)
	f.Write([]byte("x"))
	f.Close()
	if !fs.Exists("gone") {
		t.Error("Exists = false for existing file")
	}
	if err := fs.Remove("gone"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if fs.Exists("gone") {
		t.Error("Exists = true after Remove")
	}
}

func TestClosedFileRejectsOps(t *testing.T) {
	backing := hostfs.NewMemFS()
	fs := New(nil, backing, Options{})
	f, _ := fs.Open("c", hostfs.OCreate|hostfs.OWrite)
	f.Close()
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after close = %v", err)
	}
	if _, err := f.Write([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after close = %v", err)
	}
	if _, err := f.Seek(0, SeekStart); !errors.Is(err, ErrClosed) {
		t.Errorf("Seek after close = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v", err)
	}
}

// TestRandomOpsMatchModel drives a protected file with random
// write/seek/read sequences and cross-checks against an in-memory model.
func TestRandomOpsMatchModel(t *testing.T) {
	type op struct {
		Kind byte
		Off  uint16
		Data []byte
	}
	for _, mode := range []Mode{ModeStandard, ModeOptimized} {
		mode := mode
		check := func(ops []op) bool {
			backing := hostfs.NewMemFS()
			fs := New(nil, backing, Options{Mode: mode, CacheNodes: 8})
			f, err := fs.Open("model", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
			if err != nil {
				return false
			}
			var model []byte
			for _, o := range ops {
				switch o.Kind % 2 {
				case 0: // seek (clamped) + write
					off := int64(o.Off) % (int64(len(model)) + 1)
					if _, err := f.Seek(off, SeekStart); err != nil {
						return false
					}
					if len(o.Data) > 0 {
						if _, err := f.Write(o.Data); err != nil {
							return false
						}
						if need := off + int64(len(o.Data)); need > int64(len(model)) {
							grown := make([]byte, need)
							copy(grown, model)
							model = grown
						}
						copy(model[off:], o.Data)
					}
				case 1: // seek + read
					off := int64(o.Off) % (int64(len(model)) + 1)
					if _, err := f.Seek(off, SeekStart); err != nil {
						return false
					}
					want := len(model) - int(off)
					if want > 64 {
						want = 64
					}
					buf := make([]byte, 64)
					n, err := f.Read(buf)
					if err != nil && err != io.EOF {
						return false
					}
					if n != want && !(want > 0 && n > 0 && n <= want) {
						// Read may return fewer bytes only at node
						// boundaries; tolerate short reads but never
						// wrong bytes.
						return false
					}
					if !bytes.Equal(buf[:n], model[off:int(off)+n]) {
						return false
					}
				}
			}
			if err := f.Close(); err != nil {
				return false
			}
			// Reopen and verify the whole content.
			g, err := fs.Open("model", hostfs.ORead)
			if err != nil {
				return false
			}
			defer g.Close()
			if g.Size() != int64(len(model)) {
				return false
			}
			got := make([]byte, len(model))
			if len(model) > 0 {
				if _, err := io.ReadFull(readerOf(g), got); err != nil {
					return false
				}
			}
			return bytes.Equal(got, model)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}
