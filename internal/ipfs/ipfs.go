package ipfs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"sync/atomic"

	"twine/internal/hostfs"
	"twine/internal/prof"
	"twine/internal/sgx"
)

// NodeSize is the protected-file node granularity (4 KiB, one SGX page).
const NodeSize = 4096

// Intel MHT fan-out: 96 data children + 32 MHT children per MHT node.
const (
	dataPerMHT = 96
	mhtPerMHT  = 32
	entrySize  = 32 // 16-byte AES key + 16-byte GCM tag
)

// Mode selects the standard (Intel) or optimized (paper §V-F) node
// lifecycle.
type Mode int

const (
	// ModeStandard is the Intel SGX SDK behaviour.
	ModeStandard Mode = iota
	// ModeOptimized applies the paper's memset and zero-copy fixes.
	ModeOptimized
)

func (m Mode) String() string {
	if m == ModeOptimized {
		return "optimized"
	}
	return "standard"
}

// Package errors.
var (
	ErrIntegrity   = errors.New("ipfs: integrity check failed")
	ErrBadName     = errors.New("ipfs: file name mismatch")
	ErrSeekPastEnd = errors.New("ipfs: seek beyond end of file")
	ErrClosed      = errors.New("ipfs: file closed")
	ErrReadOnly    = errors.New("ipfs: file opened read-only")
)

// DefaultCacheNodes is the SDK's default node-cache capacity.
const DefaultCacheNodes = 48

// Options configures an FS.
type Options struct {
	// Mode selects standard or optimized behaviour. Default standard.
	Mode Mode
	// CacheNodes is the per-file LRU node cache capacity.
	CacheNodes int
	// Prof receives timing attribution.
	Prof *prof.Registry
}

// FS is a protected file system living partly inside an enclave (trusted
// library) and partly outside (untrusted backing store reached via OCALLs).
//
// The FS value itself is immutable after New and may be shared by any
// number of concurrently open Files (a concurrent runtime's instances
// each open their own handles); per-handle state lives in File. The
// node-cache counters are atomics so concurrent handles account without
// racing.
type FS struct {
	enclave *sgx.Enclave // nil means "no enclave" (plain library use)
	backing hostfs.FS
	opt     Options

	// epcArena is the enclave-memory region used to account node-buffer
	// EPC residency (see node.go). Zero when enclave is nil.
	epcArena     int64
	epcArenaOK   bool
	epcSlotBytes int64

	// Node-cache accounting across every File of this FS (atomic): a hit
	// serves a node from the in-enclave LRU, a miss walks the Merkle path
	// through the boundary. The ratio is the §V-F knob CacheNodes turns.
	cacheHits   int64
	cacheMisses int64
}

// CacheStats returns the node-cache hit/miss totals across all files.
func (fs *FS) CacheStats() (hits, misses int64) {
	return atomic.LoadInt64(&fs.cacheHits), atomic.LoadInt64(&fs.cacheMisses)
}

// cacheHit/cacheMiss account one lookup; safe from concurrent Files.
func (fs *FS) cacheHit() {
	atomic.AddInt64(&fs.cacheHits, 1)
	fs.opt.Prof.Incr("ipfs.cache.hit")
}

func (fs *FS) cacheMiss() {
	atomic.AddInt64(&fs.cacheMisses, 1)
	fs.opt.Prof.Incr("ipfs.cache.miss")
}

// New builds a protected FS over the untrusted backing store. enclave may
// be nil, in which case keys fall back to a file-name-derived key and no
// OCALL costs are charged (useful for unit tests of the data structure).
func New(enclave *sgx.Enclave, backing hostfs.FS, opt Options) *FS {
	if opt.CacheNodes <= 0 {
		opt.CacheNodes = DefaultCacheNodes
	}
	// A Merkle path (data node plus MHT ancestors) must fit in the cache
	// with headroom, or loads could evict their own parents mid-walk.
	if opt.CacheNodes < 8 {
		opt.CacheNodes = 8
	}
	fs := &FS{enclave: enclave, backing: backing, opt: opt}
	if enclave != nil {
		// Two pages per slot (ciphertext + plaintext) in standard mode;
		// optimized keeps only plaintext but the arena is sized for both.
		fs.epcSlotBytes = 2 * NodeSize
		need := int64(opt.CacheNodes)*fs.epcSlotBytes + sgx.PageSize
		if off, err := enclave.Allocator().Alloc(need); err == nil {
			fs.epcArena = (off + sgx.PageSize - 1) &^ (sgx.PageSize - 1)
			fs.epcArenaOK = true
		}
	}
	return fs
}

// Mode returns the FS operating mode.
func (fs *FS) Mode() Mode { return fs.opt.Mode }

// ocall runs fn outside the enclave, or directly when no enclave is
// attached. Metadata-sized requests; node I/O uses ocallN with the node
// payload so the switchless policy sees the real transfer size.
func (fs *FS) ocall(name string, fn func() error) error {
	return fs.ocallN(name, 0, fn)
}

// ocallN crosses the boundary for a request marshalling payload bytes.
// With a switchless ring enabled on the enclave the request rides it (node
// reads and writes are TWINE's hottest OCALLs — §V-F measures them as a
// dominant share of the random-read breakdown); without one this is
// exactly the classic two-transition OCall.
func (fs *FS) ocallN(name string, payload int, fn func() error) error {
	if fs.enclave == nil || !fs.enclave.Inside() {
		return fn()
	}
	return fs.enclave.SwitchlessOCall(name, payload, fn)
}

// fileKey derives the automatic file key: bound to the enclave identity
// and the file name, as Intel's auto-key scheme is (§IV-E).
func (fs *FS) fileKey(name string) [16]byte {
	var key [16]byte
	if fs.enclave != nil {
		k := fs.enclave.SealKey("ipfs:" + name)
		copy(key[:], k[:16])
		return key
	}
	// Library use without an enclave: name-derived development key.
	sum := gcmKDF("ipfs-dev-key:" + name)
	copy(key[:], sum[:16])
	return key
}

// Open opens (or creates, with hostfs.OCreate) a protected file using the
// automatic enclave-derived key.
func (fs *FS) Open(name string, flag int) (*File, error) {
	return fs.OpenWithKey(name, flag, fs.fileKey(name))
}

// OpenWithKey opens a protected file with an explicit 128-bit key,
// mirroring sgx_fopen's key parameter for portable files.
func (fs *FS) OpenWithKey(name string, flag int, key [16]byte) (*File, error) {
	var backing hostfs.File
	err := fs.ocall("ipfs.open", func() error {
		var oerr error
		backing, oerr = fs.backing.OpenFile(name, flag|hostfs.ORead|hostfs.OWrite)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	f := newFile(fs, name, backing, key, flag)
	if err := f.loadMeta(); err != nil {
		cerr := f.closeBacking()
		_ = cerr
		return nil, err
	}
	return f, nil
}

// Remove deletes a protected file from the untrusted store. As in Intel's
// design this needs no key: deletion is exactly the attack IPFS does not
// defend against.
func (fs *FS) Remove(name string) error {
	return fs.ocall("ipfs.remove", func() error { return fs.backing.Remove(name) })
}

// Exists reports whether the untrusted store has a file by this name.
func (fs *FS) Exists(name string) bool {
	found := false
	_ = fs.ocall("ipfs.stat", func() error {
		_, err := fs.backing.Stat(name)
		found = err == nil
		return nil
	})
	return found
}

// --- crypto helpers ---

var zeroNonce [12]byte

// sealNodeInto encrypts a NodeSize plaintext with a fresh random key into
// dst (which must hold NodeSize bytes of ciphertext), returning the key
// and GCM tag to store in the parent entry. scratch must have capacity for
// NodeSize+16 bytes. A fresh key per write makes the zero nonce safe
// (Intel's scheme).
func sealNodeInto(plaintext, dst, scratch []byte) (key [16]byte, tag [16]byte, err error) {
	if _, err = rand.Read(key[:]); err != nil {
		return key, tag, err
	}
	aead, err := newAEAD(key)
	if err != nil {
		return key, tag, err
	}
	out := aead.Seal(scratch[:0], zeroNonce[:], plaintext, nil)
	copy(dst, out[:len(plaintext)])
	copy(tag[:], out[len(plaintext):])
	return key, tag, nil
}

// openNode authenticates and decrypts ciphertext (with its detached tag)
// into dst, which must hold len(ciphertext) bytes. scratch must have
// capacity for NodeSize+16 bytes.
func openNode(key, tag [16]byte, ciphertext, dst, scratch []byte) error {
	aead, err := newAEAD(key)
	if err != nil {
		return err
	}
	buf := append(scratch[:0], ciphertext...)
	buf = append(buf, tag[:]...)
	if _, err := aead.Open(dst[:0], zeroNonce[:], buf, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrIntegrity, err)
	}
	return nil
}

func newAEAD(key [16]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

func gcmKDF(s string) [32]byte {
	// Small deterministic KDF for non-enclave keys.
	var out [32]byte
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	for i := range out {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		out[i] = byte(h >> 56)
	}
	return out
}
