// Package ipfs reimplements the Intel Protected File System (IPFS) that
// TWINE maps WASI file operations onto (paper §IV-D/E): files stored on the
// untrusted host are structured as a Merkle tree of 4 KiB nodes, each node
// encrypted and authenticated with AES-GCM under a fresh random key kept in
// its parent node, with the root key/MAC sealed into a metadata node under
// a key derived from the enclave's sealing identity. Confidentiality and
// integrity hold at rest; rollback of whole files is (deliberately, as in
// Intel's design) not detected.
//
// The node layout follows Intel's: node 0 is the metadata node; Merkle-hash
// -tree (MHT) nodes each hold 96 entries for data-node children and 32
// entries for MHT children; a data node carries 4 KiB of file plaintext.
//
// Two operating modes reproduce the paper's §V-F study:
//
//   - ModeStandard mirrors the SGX SDK implementation: every node added to
//     the LRU cache first has its entire structure cleared (memset), the
//     plaintext buffer is cleared again when a node is dropped, and the
//     ciphertext read by the OCALL is copied into enclave memory before
//     being decrypted (the edger8r-generated copy).
//   - ModeOptimized applies the paper's fixes: no clearing (fields are
//     simply assigned), and decryption reads directly from the untrusted
//     buffer, MAC-then-encrypt style, so the enclave keeps no ciphertext
//     copy at all.
//
// # Cost-model invariants
//
// Every byte leaving the enclave is ciphertext, and every boundary
// crossing is visible to the cost model: node reads and writes funnel
// through one size-aware helper (ocallN with a NodeSize payload), so when
// the enclave has a switchless ring (§V-F's dominant OCALL share, PR 2)
// they ride it, and when it does not they pay exactly one classic OCALL
// each — bit-identical to the pre-switchless runtime. Node-cache EPC
// residency is charged against the enclave memory arena, so protected-file
// working sets larger than the EPC page exactly like the paper's Figure 5.
//
// Time spent is attributed to the prof registry under "ipfs.memset",
// "sgx.ocall" (including the edge copy), "sgx.switchless" (ring rides),
// "ipfs.crypto" and "ipfs.read" / "ipfs.write", from which the Figure 7
// breakdown is reconstructed.
package ipfs
