package ipfs

import (
	"sync"
	"testing"

	"twine/internal/hostfs"
)

// TestCacheStatsConcurrentFiles exercises the FS-level node-cache
// counters from several concurrently open files (the PR 3 latent-race
// satellite: counters shared across handles must be atomic). Run under
// -race this is the regression test; functionally, hits+misses must
// cover every node lookup and hits must be non-zero for a re-read.
func TestCacheStatsConcurrentFiles(t *testing.T) {
	host := hostfs.NewMemFS()
	fs := New(nil, host, Options{CacheNodes: 16})

	payload := make([]byte, 4*NodeSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	const files = 4
	var wg sync.WaitGroup
	for i := 0; i < files; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := string(rune('a'+i)) + ".bin"
			f, err := fs.Open(name, hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
			if err != nil {
				t.Errorf("Open %s: %v", name, err)
				return
			}
			if _, err := f.Write(payload); err != nil {
				t.Errorf("Write %s: %v", name, err)
				return
			}
			// Re-read from the front: the nodes are cached, so this is
			// the hit path.
			if _, err := f.Seek(0, SeekStart); err != nil {
				t.Errorf("Seek %s: %v", name, err)
				return
			}
			buf := make([]byte, len(payload))
			if _, err := f.Read(buf); err != nil {
				t.Errorf("Read %s: %v", name, err)
				return
			}
			if err := f.Close(); err != nil {
				t.Errorf("Close %s: %v", name, err)
			}
		}()
	}
	wg.Wait()

	hits, misses := fs.CacheStats()
	if hits == 0 {
		t.Error("no cache hits recorded for a cached re-read")
	}
	if misses == 0 {
		t.Error("no cache misses recorded for first-touch nodes")
	}
	// Every file materialises at least its data nodes once.
	if wantMiss := int64(files * 4); misses < wantMiss {
		t.Errorf("misses = %d, want at least %d", misses, wantMiss)
	}
}
