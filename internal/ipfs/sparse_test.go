package ipfs

import (
	"io"
	"math/rand"
	"testing"

	"twine/internal/hostfs"
)

// TestRandomOrderPageWrites mimics a pager committing a large cache in map
// iteration order: pages land far beyond EOF (triggering the extend-with-
// nulls path) and in random order, across multiple "transactions".
func TestRandomOrderPageWrites(t *testing.T) {
	for _, mode := range []Mode{ModeStandard, ModeOptimized} {
		backing := hostfs.NewMemFS()
		fs := New(nil, backing, Options{Mode: mode, CacheNodes: 48})
		f, err := fs.Open("db", hostfs.OCreate|hostfs.OWrite|hostfs.ORead)
		if err != nil {
			t.Fatal(err)
		}
		const nPages = 3000
		page := make([]byte, 4096)
		written := make(map[int]byte)
		rng := rand.New(rand.NewSource(3))
		for txn := 0; txn < 6; txn++ {
			lo, hi := txn*500, (txn+1)*500
			perm := rng.Perm(hi - lo)
			for _, d := range perm {
				p := lo + d
				for j := range page {
					page[j] = byte(p)
				}
				target := int64(p) * 4096
				if _, err := f.Seek(target, SeekStart); err != nil {
					if err := f.ExtendTo(target); err != nil {
						t.Fatalf("extend p%d: %v", p, err)
					}
					if _, err := f.Seek(target, SeekStart); err != nil {
						t.Fatalf("seek p%d: %v", p, err)
					}
				}
				if _, err := f.Write(page); err != nil {
					t.Fatalf("write p%d: %v", p, err)
				}
				written[p] = byte(p)
			}
			if err := f.Flush(); err != nil {
				t.Fatalf("flush txn %d: %v", txn, err)
			}
			// Random re-reads after each "commit".
			buf := make([]byte, 4096)
			for i := 0; i < 100; i++ {
				p := rng.Intn(hi)
				if _, err := f.Seek(int64(p)*4096, SeekStart); err != nil {
					t.Fatalf("seek: %v", err)
				}
				if _, err := io.ReadFull(rd{f}, buf); err != nil {
					t.Fatalf("mode %v txn %d: read p%d: %v", mode, txn, p, err)
				}
				if buf[0] != written[p] || buf[4095] != written[p] {
					t.Fatalf("mode %v: p%d = %d, want %d", mode, p, buf[0], written[p])
				}
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		_ = nPages
	}
}

type rd struct{ f *File }

func (r rd) Read(p []byte) (int, error) { return r.f.Read(p) }
