package ipfs

import (
	"container/list"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"twine/internal/hostfs"
)

// Seek whences (POSIX values).
const (
	SeekStart   = 0
	SeekCurrent = 1
	SeekEnd     = 2
)

var metaMagic = [8]byte{'T', 'W', 'P', 'F', 'S', 'v', '1', 0}

const metaVersion = 1

// File is an open protected file. Like Intel's sgx_fopen handles it keeps
// its own cursor; Read and Write operate at the cursor and Seek moves it
// (never beyond the end of file — the limitation TWINE's WASI layer works
// around by explicitly extending files with null bytes, §IV-E).
//
// A File is not safe for concurrent use.
type File struct {
	fs      *FS
	name    string
	backing hostfs.File
	key     [16]byte
	flag    int

	size      int64
	offset    int64
	dataNodes int64 // number of data nodes materialised

	haveRoot  bool
	rootKey   [16]byte
	rootTag   [16]byte
	metaDirty bool

	cache     map[int64]*node
	lru       *list.List
	freeSlots []int
	bufPool   [][]byte
	evicting  bool

	// untrusted is the host-side scratch buffer OCALLs read into /
	// write from; conceptually it lives outside the enclave.
	untrusted [NodeSize]byte
	// scratch backs AEAD seal/open so node crypto does not allocate.
	scratch [NodeSize + 16]byte

	closed bool
}

func newFile(fs *FS, name string, backing hostfs.File, key [16]byte, flag int) *File {
	f := &File{
		fs:      fs,
		name:    name,
		backing: backing,
		key:     key,
		flag:    flag,
		cache:   make(map[int64]*node),
		lru:     list.New(),
	}
	for i := fs.opt.CacheNodes - 1; i >= 0; i-- {
		f.freeSlots = append(f.freeSlots, i)
	}
	return f
}

func (f *File) writable() bool { return f.flag&hostfs.OWrite != 0 }

// Size returns the current logical file size.
func (f *File) Size() int64 { return f.size }

// Tell returns the cursor position.
func (f *File) Tell() int64 { return f.offset }

// Name returns the file name the handle was opened with.
func (f *File) Name() string { return f.name }

// CachedNodes reports how many nodes the LRU currently holds (testing aid).
func (f *File) CachedNodes() int { return len(f.cache) }

// --- metadata node ---

func (f *File) loadMeta() error {
	var hostSize int64
	err := f.fs.ocall("ipfs.stat", func() error {
		info, serr := f.backing.Stat()
		if serr != nil {
			return serr
		}
		hostSize = info.Size
		return nil
	})
	if err != nil {
		return err
	}
	if hostSize == 0 {
		// Fresh file.
		f.size = 0
		f.metaDirty = true
		return nil
	}
	if hostSize < NodeSize {
		return fmt.Errorf("%w: truncated metadata node", ErrIntegrity)
	}
	var meta [NodeSize]byte
	if err := f.readPhys(0, meta[:]); err != nil {
		return err
	}
	if [8]byte(meta[0:8]) != metaMagic {
		return fmt.Errorf("%w: bad magic", ErrIntegrity)
	}
	if binary.LittleEndian.Uint32(meta[8:12]) != metaVersion {
		return fmt.Errorf("%w: unsupported version", ErrIntegrity)
	}
	nonce := meta[12:24]
	ct := meta[24 : 24+40+16] // rootKey(16) rootTag(16) size(8) + GCM tag(16)
	aead, err := newAEAD(f.key)
	if err != nil {
		return err
	}
	pt, err := aead.Open(nil, nonce, ct, []byte(f.name))
	if err != nil {
		return fmt.Errorf("%w: metadata authentication (wrong key or renamed file?)", ErrBadName)
	}
	copy(f.rootKey[:], pt[0:16])
	copy(f.rootTag[:], pt[16:32])
	f.size = int64(binary.LittleEndian.Uint64(pt[32:40]))
	f.haveRoot = f.size > 0
	f.dataNodes = (f.size + NodeSize - 1) / NodeSize
	return nil
}

func (f *File) writeMeta() error {
	var meta [NodeSize]byte
	copy(meta[0:8], metaMagic[:])
	binary.LittleEndian.PutUint32(meta[8:12], metaVersion)
	nonce := meta[12:24]
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	var pt [40]byte
	copy(pt[0:16], f.rootKey[:])
	copy(pt[16:32], f.rootTag[:])
	binary.LittleEndian.PutUint64(pt[32:40], uint64(f.size))
	aead, err := newAEAD(f.key)
	if err != nil {
		return err
	}
	aead.Seal(meta[24:24], nonce, pt[:], []byte(f.name))
	if err := f.writePhys(0, meta[:]); err != nil {
		return err
	}
	f.metaDirty = false
	return nil
}

// --- raw node I/O (crossing the enclave boundary) ---

// readPhys reads the physical node into dst via an OCALL. dst is treated
// as untrusted memory here; the trusted copy-in happens in loadNode.
func (f *File) readPhys(phys int64, dst []byte) error {
	return f.fs.ocallN("ipfs.read", NodeSize, func() error {
		n, err := f.backing.ReadAt(dst, phys*NodeSize)
		if err != nil {
			return err
		}
		if n < len(dst) {
			// Zero-fill short reads (sparse region).
			for i := n; i < len(dst); i++ {
				dst[i] = 0
			}
		}
		return nil
	})
}

func (f *File) writePhys(phys int64, src []byte) error {
	return f.fs.ocallN("ipfs.write", NodeSize, func() error {
		_, err := f.backing.WriteAt(src, phys*NodeSize)
		return err
	})
}

// --- node cache ---

// touchSlot charges EPC residency for one page of a cache slot.
// page 0 = plaintext buffer, page 1 = ciphertext buffer.
func (f *File) touchSlot(n *node, page int64) {
	if n == nil || n.slot < 0 || !f.fs.epcArenaOK {
		return
	}
	off := f.fs.epcArena + int64(n.slot)*f.fs.epcSlotBytes + page*NodeSize
	_ = f.fs.enclave.Memory().Touch(off, NodeSize)
}

// insertNode places n into the cache, evicting as needed, and applies the
// ModeStandard node-clearing cost. It returns the node that ends up
// representing n.phys: eviction write-backs can fault the very node being
// inserted back in through its parent chain, in which case the freshly
// loaded (and possibly already re-dirtied) copy must win — inserting n
// over it would orphan live entries and corrupt the tree.
func (f *File) insertNode(n *node) (*node, error) {
	if !f.evicting {
		for len(f.cache) >= f.fs.opt.CacheNodes {
			if err := f.evictOne(); err != nil {
				return nil, err
			}
		}
	}
	if existing, ok := f.cache[n.phys]; ok {
		f.putBuf(n.plain)
		f.putBuf(n.cipher)
		f.touchLRU(existing)
		return existing, nil
	}
	if len(f.freeSlots) > 0 {
		n.slot = f.freeSlots[len(f.freeSlots)-1]
		f.freeSlots = f.freeSlots[:len(f.freeSlots)-1]
	} else {
		n.slot = -1
	}
	if f.fs.opt.Mode == ModeStandard {
		// Intel clears the whole node structure on insertion: both 4 KiB
		// buffers plus metadata, touching the corresponding EPC pages.
		sp := f.fs.opt.Prof.Start("ipfs.memset")
		f.touchSlot(n, 0)
		f.touchSlot(n, 1)
		clear(n.plain)
		clear(n.cipher)
		sp.Stop()
	}
	n.elem = f.lru.PushFront(n)
	f.cache[n.phys] = n
	return n, nil
}

func (f *File) newNode(phys int64, isMHT bool, idx int64) *node {
	n := &node{phys: phys, isMHT: isMHT, idx: idx, slot: -1}
	n.plain = f.takeBuf()
	if f.fs.opt.Mode == ModeStandard {
		n.cipher = f.takeBuf()
	}
	return n
}

// takeBuf reuses a buffer from the pool when available. Reused buffers may
// hold stale plaintext; every consumer either fully overwrites them
// (decrypt) or clears them (fresh/sparse nodes), mirroring Intel's node
// recycling.
func (f *File) takeBuf() []byte {
	if n := len(f.bufPool); n > 0 {
		b := f.bufPool[n-1]
		f.bufPool = f.bufPool[:n-1]
		return b
	}
	return make([]byte, NodeSize)
}

func (f *File) putBuf(b []byte) {
	if b != nil {
		f.bufPool = append(f.bufPool, b)
	}
}

// touchLRU marks n most recently used.
func (f *File) touchLRU(n *node) { f.lru.MoveToFront(n.elem) }

// evictOne drops the least recently used node, writing it back if dirty
// and applying the ModeStandard plaintext-clearing cost.
func (f *File) evictOne() error {
	back := f.lru.Back()
	if back == nil {
		return nil
	}
	victim := back.Value.(*node)
	f.evicting = true
	err := f.writeBack(victim)
	f.evicting = false
	if err != nil {
		return err
	}
	f.lru.Remove(back)
	delete(f.cache, victim.phys)
	if f.fs.opt.Mode == ModeStandard {
		// Intel clears the plaintext buffer before releasing the node.
		sp := f.fs.opt.Prof.Start("ipfs.memset")
		f.touchSlot(victim, 0)
		clear(victim.plain)
		sp.Stop()
	}
	if victim.slot >= 0 {
		f.freeSlots = append(f.freeSlots, victim.slot)
	}
	f.putBuf(victim.plain)
	f.putBuf(victim.cipher)
	return nil
}

// writeBack encrypts a dirty node with a fresh key, stores the (key, tag)
// entry in its parent, and writes the ciphertext outside via OCALL.
func (f *File) writeBack(n *node) error {
	if !n.dirty {
		return nil
	}
	var key, tag [16]byte
	var err error
	sp := f.fs.opt.Prof.Start("ipfs.crypto")
	if f.fs.opt.Mode == ModeStandard {
		// Encrypt into the enclave-side ciphertext buffer...
		f.touchSlot(n, 0)
		f.touchSlot(n, 1)
		key, tag, err = sealNodeInto(n.plain, n.cipher, f.scratch[:])
		sp.Stop()
		if err != nil {
			return err
		}
		// ...then cross the boundary: edger8r copies it out.
		if err := f.fs.ocallN("ipfs.write", NodeSize, func() error {
			copy(f.untrusted[:], n.cipher)
			_, werr := f.backing.WriteAt(f.untrusted[:], n.phys*NodeSize)
			return werr
		}); err != nil {
			return err
		}
	} else {
		// Optimized: encrypt straight into the untrusted buffer.
		f.touchSlot(n, 0)
		key, tag, err = sealNodeInto(n.plain, f.untrusted[:], f.scratch[:])
		sp.Stop()
		if err != nil {
			return err
		}
		if err := f.fs.ocallN("ipfs.write", NodeSize, func() error {
			_, werr := f.backing.WriteAt(f.untrusted[:], n.phys*NodeSize)
			return werr
		}); err != nil {
			return err
		}
	}
	n.dirty = false
	return f.storeEntry(n, key, tag)
}

// storeEntry records a child's fresh (key, tag) in its parent.
func (f *File) storeEntry(n *node, key, tag [16]byte) error {
	if n.isMHT && n.idx == 0 {
		f.rootKey, f.rootTag = key, tag
		f.haveRoot = true
		f.metaDirty = true
		return nil
	}
	var parentIdx int64
	var slot int
	if n.isMHT {
		parentIdx, slot = mhtParent(n.idx)
	} else {
		parentIdx, slot = dataParent(n.idx)
	}
	parent, err := f.loadMHT(parentIdx)
	if err != nil {
		return err
	}
	f.touchSlot(parent, 0)
	parent.setEntry(slot, key, tag)
	return nil
}

// loadMHT returns MHT node k, reading and verifying it (or materialising
// an empty one if it has never been written).
func (f *File) loadMHT(k int64) (*node, error) {
	phys := mhtPhys(k)
	if n, ok := f.cache[phys]; ok {
		f.fs.cacheHit()
		f.touchLRU(n)
		return n, nil
	}
	f.fs.cacheMiss()
	// Resolve the parent entry before inserting, so the eviction the
	// insert may trigger cannot race with the parent lookup.
	var key, tag [16]byte
	exists := false
	if k == 0 {
		if f.haveRoot {
			key, tag, exists = f.rootKey, f.rootTag, true
		}
	} else {
		parentIdx, slot := mhtParent(k)
		parent, err := f.loadMHT(parentIdx)
		if err != nil {
			return nil, err
		}
		if !parent.entryIsZero(slot) {
			key, tag = parent.entry(slot)
			exists = true
		}
	}
	n := f.newNode(phys, true, k)
	inserted, err := f.insertNode(n)
	if err != nil {
		return nil, err
	}
	if inserted != n {
		// Faulted in by an eviction write-back during the insert; it is
		// already decrypted and authoritative.
		return inserted, nil
	}
	if !exists {
		// Fresh MHT node: zero entries. ModeOptimized must still zero it
		// (entries are semantically zero), but that is an assignment of
		// required values, not the wholesale structure clear Intel does.
		if f.fs.opt.Mode == ModeOptimized {
			clear(n.plain)
		}
		return n, nil
	}
	if err := f.decryptInto(n, key, tag); err != nil {
		return nil, err
	}
	return n, nil
}

// loadData returns data node d, reading and verifying it (or materialising
// a zero node for unwritten regions).
func (f *File) loadData(d int64) (*node, error) {
	phys := dataPhys(d)
	if n, ok := f.cache[phys]; ok {
		f.fs.cacheHit()
		f.touchLRU(n)
		return n, nil
	}
	f.fs.cacheMiss()
	parentIdx, slot := dataParent(d)
	parent, err := f.loadMHT(parentIdx)
	if err != nil {
		return nil, err
	}
	var key, tag [16]byte
	exists := false
	if !parent.entryIsZero(slot) {
		key, tag = parent.entry(slot)
		exists = true
	}
	n := f.newNode(phys, false, d)
	inserted, err := f.insertNode(n)
	if err != nil {
		return nil, err
	}
	if inserted != n {
		return inserted, nil
	}
	if !exists {
		if f.fs.opt.Mode == ModeOptimized {
			clear(n.plain) // sparse region reads as zeroes
		}
		return n, nil
	}
	if err := f.decryptInto(n, key, tag); err != nil {
		return nil, err
	}
	return n, nil
}

// decryptInto performs the OCALL read and decryption according to the FS
// mode: standard copies ciphertext into the enclave before decrypting,
// optimized decrypts directly from the untrusted buffer.
func (f *File) decryptInto(n *node, key, tag [16]byte) error {
	if f.fs.opt.Mode == ModeStandard {
		if err := f.fs.ocallN("ipfs.read", NodeSize, func() error {
			if err := f.readRaw(n.phys); err != nil {
				return err
			}
			// The edger8r-generated edge routine copies the out-buffer
			// into enclave memory: this is the copy §V-F removes.
			f.touchSlot(n, 1)
			copy(n.cipher, f.untrusted[:])
			return nil
		}); err != nil {
			return err
		}
		sp := f.fs.opt.Prof.Start("ipfs.crypto")
		f.touchSlot(n, 0)
		err := openNode(key, tag, n.cipher, n.plain, f.scratch[:])
		sp.Stop()
		return err
	}
	// Optimized: the enclave receives only a pointer to the untrusted
	// buffer and decrypts from it in place (MAC-then-encrypt rationale in
	// the paper: authentication is computed over data already inside the
	// enclave as it decrypts).
	if err := f.fs.ocallN("ipfs.read", NodeSize, func() error { return f.readRaw(n.phys) }); err != nil {
		return err
	}
	sp := f.fs.opt.Prof.Start("ipfs.crypto")
	f.touchSlot(n, 0)
	err := openNode(key, tag, f.untrusted[:], n.plain, f.scratch[:])
	sp.Stop()
	return err
}

// readRaw fills f.untrusted with the physical node's ciphertext. Must be
// called from outside the enclave (inside an OCALL body).
func (f *File) readRaw(phys int64) error {
	nread, err := f.backing.ReadAt(f.untrusted[:], phys*NodeSize)
	if err != nil {
		return err
	}
	for i := nread; i < NodeSize; i++ {
		f.untrusted[i] = 0
	}
	return nil
}

// --- public I/O ---

// Read reads up to len(p) bytes at the cursor, advancing it. At end of
// file it returns (0, io.EOF).
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	sp := f.fs.opt.Prof.Start("ipfs.readpath")
	defer sp.Stop()
	if f.offset >= f.size {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	max := f.size - f.offset
	if int64(len(p)) < max {
		max = int64(len(p))
	}
	var done int64
	for done < max {
		d := (f.offset + done) / NodeSize
		in := (f.offset + done) % NodeSize
		n, err := f.loadData(d)
		if err != nil {
			return int(done), err
		}
		f.touchSlot(n, 0)
		c := copy(p[done:max], n.plain[in:])
		done += int64(c)
	}
	f.offset += done
	return int(done), nil
}

// Write writes p at the cursor, advancing it and extending the file as
// needed.
func (f *File) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable() {
		return 0, ErrReadOnly
	}
	sp := f.fs.opt.Prof.Start("ipfs.writepath")
	defer sp.Stop()
	var done int
	for done < len(p) {
		d := (f.offset + int64(done)) / NodeSize
		in := (f.offset + int64(done)) % NodeSize
		n, err := f.loadData(d)
		if err != nil {
			return done, err
		}
		f.touchSlot(n, 0)
		c := copy(n.plain[in:], p[done:])
		n.dirty = true
		done += c
		if d >= f.dataNodes {
			f.dataNodes = d + 1
		}
	}
	f.offset += int64(done)
	if f.offset > f.size {
		f.size = f.offset
		f.metaDirty = true
	}
	return done, nil
}

// Seek moves the cursor. Like Intel's sgx_fseek it refuses to move beyond
// the end of file (ErrSeekPastEnd); TWINE's WASI layer implements
// past-the-end seeks by extending the file with null bytes first.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	var target int64
	switch whence {
	case SeekStart:
		target = offset
	case SeekCurrent:
		target = f.offset + offset
	case SeekEnd:
		target = f.size + offset
	default:
		return 0, fmt.Errorf("ipfs: bad whence %d", whence)
	}
	if target < 0 {
		return 0, fmt.Errorf("ipfs: negative seek target %d", target)
	}
	if target > f.size {
		return 0, fmt.Errorf("%w: %d > size %d", ErrSeekPastEnd, target, f.size)
	}
	f.offset = target
	return target, nil
}

// ExtendTo grows the file to newSize by appending null bytes, the
// workaround TWINE's WASI layer applies for SQLite's write-past-EOF
// pattern (§IV-E). It leaves the cursor where it was.
func (f *File) ExtendTo(newSize int64) error {
	if newSize <= f.size {
		return nil
	}
	if !f.writable() {
		return ErrReadOnly
	}
	saved := f.offset
	f.offset = f.size
	zeros := make([]byte, NodeSize)
	for f.size < newSize {
		chunk := newSize - f.size
		if chunk > NodeSize {
			chunk = NodeSize
		}
		if _, err := f.Write(zeros[:chunk]); err != nil {
			f.offset = saved
			return err
		}
	}
	f.offset = saved
	return nil
}

// Truncate shrinks or grows the logical file size. Shrinking only adjusts
// the size (stale nodes become unreachable); growing delegates to ExtendTo.
func (f *File) Truncate(newSize int64) error {
	if f.closed {
		return ErrClosed
	}
	if !f.writable() {
		return ErrReadOnly
	}
	if newSize < 0 {
		return fmt.Errorf("ipfs: negative truncate size")
	}
	if newSize > f.size {
		return f.ExtendTo(newSize)
	}
	f.size = newSize
	f.dataNodes = (newSize + NodeSize - 1) / NodeSize
	if f.offset > f.size {
		f.offset = f.size
	}
	f.metaDirty = true
	return nil
}

// Flush writes all dirty state (data nodes, MHT path, metadata) to the
// untrusted store and syncs it.
func (f *File) Flush() error {
	if f.closed {
		return ErrClosed
	}
	// Data nodes first (their write-back dirties parent MHT entries),
	// then MHT nodes in descending index order: a node's parent always
	// has a smaller index, so one pass settles a path to the root.
	// Write-backs may fault evicted parents back in, so iterate until a
	// pass finds nothing dirty.
	for pass := 0; ; pass++ {
		var mhts []*node
		var datas []*node
		for _, n := range f.cache {
			if !n.dirty {
				continue
			}
			if n.isMHT {
				mhts = append(mhts, n)
			} else {
				datas = append(datas, n)
			}
		}
		if len(mhts) == 0 && len(datas) == 0 {
			break
		}
		if pass > 64 {
			return fmt.Errorf("ipfs: flush did not converge")
		}
		for _, n := range datas {
			if err := f.writeBack(n); err != nil {
				return err
			}
		}
		sort.Slice(mhts, func(i, j int) bool { return mhts[i].idx > mhts[j].idx })
		for _, n := range mhts {
			if err := f.writeBack(n); err != nil {
				return err
			}
		}
	}
	if f.metaDirty {
		if err := f.writeMeta(); err != nil {
			return err
		}
	}
	return f.fs.ocall("ipfs.sync", func() error { return f.backing.Sync() })
}

// Close flushes and releases the handle.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	if err := f.Flush(); err != nil {
		_ = f.closeBacking()
		return err
	}
	return f.closeBacking()
}

func (f *File) closeBacking() error {
	f.closed = true
	return f.fs.ocall("ipfs.close", func() error { return f.backing.Close() })
}
