package ipfs

import "container/list"

// Merkle layout (Intel's interleaving): node 0 is the metadata node, MHT
// node k sits at physical index 1+k*97, and the 96 data nodes it covers
// follow it. Every MHT node holds 96 data-child entries then 32 MHT-child
// entries of 32 bytes each (16-byte key + 16-byte GCM tag).

func dataPhys(d int64) int64 { return 2 + d + d/dataPerMHT }

func mhtPhys(k int64) int64 { return 1 + k*(dataPerMHT+1) }

// dataParent returns the MHT index and entry slot covering data node d.
func dataParent(d int64) (mht int64, slot int) {
	return d / dataPerMHT, int(d % dataPerMHT)
}

// mhtParent returns the parent MHT index and entry slot for MHT k >= 1.
func mhtParent(k int64) (parent int64, slot int) {
	return (k - 1) / mhtPerMHT, dataPerMHT + int((k-1)%mhtPerMHT)
}

// node is one cached, decrypted protected-file node.
type node struct {
	phys  int64
	isMHT bool
	idx   int64 // data index, or MHT index when isMHT

	plain  []byte // decrypted content (NodeSize)
	cipher []byte // enclave-side ciphertext buffer (ModeStandard only)

	dirty bool
	slot  int // EPC accounting slot, -1 when none
	elem  *list.Element
}

// entry reads the 32-byte child entry at slot from an MHT node's plaintext.
func (n *node) entry(slot int) (key, tag [16]byte) {
	off := slot * entrySize
	copy(key[:], n.plain[off:off+16])
	copy(tag[:], n.plain[off+16:off+32])
	return key, tag
}

// setEntry writes a child entry and marks the node dirty.
func (n *node) setEntry(slot int, key, tag [16]byte) {
	off := slot * entrySize
	copy(n.plain[off:off+16], key[:])
	copy(n.plain[off+16:off+32], tag[:])
	n.dirty = true
}

// entryIsZero reports whether the child entry at slot has never been
// written (the child node does not exist yet).
func (n *node) entryIsZero(slot int) bool {
	off := slot * entrySize
	for _, b := range n.plain[off : off+entrySize] {
		if b != 0 {
			return false
		}
	}
	return true
}
