package bench

import "testing"

// TestSuspendSwapAttribution: a swap-mode fig-suspend run at a small
// pressure geometry must actually exercise the tier — suspends and
// resumes both nonzero, counters conserved — and RunSuspend's built-in
// stale-state validation must pass (it returns an error otherwise).
func TestSuspendSwapAttribution(t *testing.T) {
	res, err := RunSuspend(SuspendConfig{Mode: "swap", MaxResident: 2, Tenants: 6, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspends == 0 || res.Resumes == 0 {
		t.Fatalf("swap tier idle: %+v", res)
	}
	if res.Suspends != res.Resumes+res.Suspended {
		t.Fatalf("conservation broken: %+v", res)
	}
	if res.ResumeCount == 0 || res.ResumeP99 <= 0 {
		t.Fatalf("resume latency not measured: %+v", res)
	}
	if res.SealBytes == 0 {
		t.Fatalf("no bytes sealed: %+v", res)
	}
	if res.ReqPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
}

// TestSuspendAblationsClean: the resident ablation and the cold floor
// must not touch the swap tier at all — any nonzero suspend counter
// there means the attribution in BENCH_8.json is lying.
func TestSuspendAblationsClean(t *testing.T) {
	for _, mode := range []string{"resident", "cold"} {
		res, err := RunSuspend(SuspendConfig{Mode: mode, MaxResident: 2, Tenants: 6, Requests: 30})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Suspends != 0 || res.Resumes != 0 || res.Suspended != 0 || res.SealBytes != 0 {
			t.Fatalf("%s mode leaked into the swap tier: %+v", mode, res)
		}
	}
}

// TestSuspendRejectsVacuousGeometry: a tenant count at or under the
// resident bound cannot create pressure; RunSuspend must refuse it
// rather than report a meaningless zero-suspend "swap" point.
func TestSuspendRejectsVacuousGeometry(t *testing.T) {
	if _, err := RunSuspend(SuspendConfig{Mode: "swap", MaxResident: 4, Tenants: 4, Requests: 10}); err == nil {
		t.Fatal("tenants <= MaxResident accepted")
	}
	if _, err := RunSuspend(SuspendConfig{Mode: "warm"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestSealSnapScaling: seal cost must be measured and monotone-ish —
// the 16× larger payload cannot be cheaper to seal than the smallest
// (AES-GCM is linear in the payload).
func TestSealSnapScaling(t *testing.T) {
	pts, err := RunSealSnap([]int64{64 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.SealNs <= 0 || p.UnsealNs <= 0 || p.MBPerSec <= 0 {
			t.Fatalf("vacuous measurement: %+v", p)
		}
	}
	if pts[1].SealNs <= pts[0].SealNs {
		t.Fatalf("sealing 1 MiB (%.0fns) not dearer than 64 KiB (%.0fns)", pts[1].SealNs, pts[0].SealNs)
	}
}
