// Package bench wires the four execution variants of the paper's SQLite
// experiments (Figures 4-6, Tables II-III) over the litedb engine:
//
//	Native   litedb on the host, direct memory, direct I/O
//	WAMR     litedb inside the Wasm sandbox (linear-memory page cache,
//	         WASI-marshalled I/O), no enclave
//	Twine    the WAMR stack inside the SGX enclave, with the Intel
//	         protected file system as the trusted backend
//	SGX-LKL  native-speed execution inside the enclave over an encrypted
//	         disk image mapped into enclave memory
//
// each in an in-memory and an on-file storage configuration.
package bench

import (
	"fmt"
	"time"

	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/litedb"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/sgxlkl"
	"twine/internal/wasi"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// Variant identifies an execution stack.
type Variant int

// Variants.
const (
	Native Variant = iota
	WAMR
	Twine
	SGXLKL
)

func (v Variant) String() string {
	switch v {
	case Native:
		return "native"
	case WAMR:
		return "wamr"
	case Twine:
		return "twine"
	case SGXLKL:
		return "sgx-lkl"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Storage selects in-memory or on-file databases.
type Storage int

// Storage kinds.
const (
	Mem Storage = iota
	File
)

func (s Storage) String() string {
	if s == File {
		return "file"
	}
	return "mem"
}

// Options configures a database handle.
type Options struct {
	// CachePages is the page cache size (default 2,048 = 8 MiB, paper).
	CachePages int
	// SGX configures enclave variants (zero = DefaultConfig; tests use
	// smaller EPCs).
	SGX sgx.Config
	// SGXMode overrides hardware/simulation (Figure 6).
	SGXMode sgx.Mode
	// IPFSMode selects the standard or optimised protected FS (§V-F).
	IPFSMode ipfs.Mode
	// IPFSCacheNodes overrides the protected-FS node cache size (0 =
	// ipfs.DefaultCacheNodes).
	IPFSCacheNodes int
	// Switchless selects the OCALL dispatch for the Twine variant (PR 2):
	// default on, core.SwitchlessOff restores the two-transition baseline.
	// SGX-LKL builds its enclave directly and is always switchless-off.
	Switchless core.SwitchlessMode
	// HostPOSIX routes the Twine variant's file I/O to the untrusted
	// POSIX layer instead of the protected FS — WAMR's original WASI
	// design run inside the enclave (§IV-C), the configuration whose
	// per-call boundary crossings the switchless ring targets.
	HostPOSIX bool
	// ImageBlocks sizes the SGX-LKL disk image (file variant).
	ImageBlocks int
	// Sync is the synchronous mode (default normal, paper).
	Sync litedb.SyncMode
	// Prof receives all counters.
	Prof *prof.Registry
}

// DB is an open benchmark database of some variant.
type DB struct {
	Variant Variant
	Storage Storage

	db      *litedb.DB
	enclave *sgx.Enclave
	rt      *core.Runtime
	edb     *core.EmbeddedDB
	lkl     *sgxlkl.Runtime
	host    *hostfs.MemFS
	prof    *prof.Registry

	// OpenTime is the time spent building the stack (Table IIIa Launch).
	OpenTime time.Duration
}

// dbName is the benchmark database file name.
const dbName = "bench.db"

// Open builds the requested variant.
func Open(v Variant, s Storage, opt Options) (*DB, error) {
	start := time.Now()
	if opt.CachePages <= 0 {
		opt.CachePages = litedb.DefaultCachePages
	}
	if opt.SGX.EPCSize == 0 {
		opt.SGX = sgx.DefaultConfig()
	}
	// The paper runs SQLite in its default "normal" synchronous mode.
	if opt.Sync == litedb.SyncOff {
		opt.Sync = litedb.SyncNormal
	}
	opt.SGX.Mode = opt.SGXMode
	opt.SGX.Prof = opt.Prof
	h := &DB{Variant: v, Storage: s, host: hostfs.NewMemFS(), prof: opt.Prof}

	var err error
	switch v {
	case Native:
		err = h.openNative(s, opt)
	case WAMR:
		err = h.openWAMR(s, opt)
	case Twine:
		err = h.openTwine(s, opt)
	case SGXLKL:
		err = h.openLKL(s, opt)
	default:
		err = fmt.Errorf("bench: unknown variant %d", int(v))
	}
	if err != nil {
		return nil, fmt.Errorf("bench: open %v/%v: %w", v, s, err)
	}
	h.OpenTime = time.Since(start)
	return h, nil
}

func (h *DB) openNative(s Storage, opt Options) error {
	var vfs litedb.VFS
	name := dbName
	if s == Mem {
		vfs = litedb.NewMemVFS()
		name = litedb.MemoryDBName
	} else {
		vfs = litedb.NewHostVFS(h.host)
	}
	db, err := litedb.Open(vfs, name, litedb.Options{
		CachePages: opt.CachePages, Sync: opt.Sync, Prof: opt.Prof,
	})
	h.db = db
	return err
}

// wamrShim builds the sandbox instance for the non-enclave Wasm variant.
func wamrShim(cachePages int, imp *wasm.ImportObject) (*wasm.Instance, litedb.PageStore, error) {
	pages := uint32((cachePages*litedb.PageSize+benchScratch+wasm.PageSize-1)/wasm.PageSize) + 2
	m := wasmgen.NewModule()
	m.Memory(pages, pages)
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("_start", f)
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		return nil, nil, err
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		return nil, nil, err
	}
	in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: wasm.EngineAOT})
	if err != nil {
		return nil, nil, err
	}
	store, err := litedb.NewSandboxStore(in.Memory(), benchScratch, cachePages)
	if err != nil {
		return nil, nil, err
	}
	return in, store, nil
}

const benchScratch = 128 << 10

func (h *DB) openWAMR(s Storage, opt Options) error {
	sys, err := wasi.NewSystem(wasi.Config{
		FS:       wasi.NewHostBackend(h.host, nil),
		Preopens: map[string]string{"/": ""},
		Prof:     opt.Prof,
	})
	if err != nil {
		return err
	}
	imp := wasm.NewImportObject()
	sys.Register(imp)
	in, store, err := wamrShim(opt.CachePages, imp)
	if err != nil {
		return err
	}
	var vfs litedb.VFS
	name := dbName
	if s == Mem {
		vfs = litedb.NewMemVFS()
		name = litedb.MemoryDBName
	} else {
		wv, err := litedb.NewWASIVFS(imp, in, 0, benchScratch)
		if err != nil {
			return err
		}
		vfs = wv
	}
	db, err := litedb.Open(vfs, name, litedb.Options{
		CachePages: opt.CachePages, Store: store, Sync: opt.Sync, Prof: opt.Prof,
	})
	h.db = db
	return err
}

func (h *DB) openTwine(s Storage, opt Options) error {
	fsKind := core.FSIPFS
	if opt.HostPOSIX {
		fsKind = core.FSHost
	}
	rt, err := core.NewRuntime(core.Config{
		PlatformSeed:   "bench",
		SGX:            opt.SGX,
		FS:             fsKind,
		IPFSMode:       opt.IPFSMode,
		IPFSCacheNodes: opt.IPFSCacheNodes,
		Switchless:     opt.Switchless,
		HostFS:         h.host,
		Prof:           opt.Prof,
	})
	if err != nil {
		return err
	}
	h.rt = rt
	h.enclave = rt.Enclave
	name := dbName
	if s == Mem {
		name = litedb.MemoryDBName
	}
	edb, err := rt.OpenDB(core.DBConfig{
		Name:       name,
		CachePages: opt.CachePages,
		Sync:       opt.Sync,
		MemVFS:     s == Mem,
	})
	if err != nil {
		return err
	}
	h.edb = edb
	return nil
}

func (h *DB) openLKL(s Storage, opt Options) error {
	platform := sgx.NewPlatform("bench-lkl")
	// SGX-LKL enclaves are heavier (Table IIIb): add the image footprint
	// on top of the configured heap.
	cfg := opt.SGX
	if s == File {
		if opt.ImageBlocks <= 0 {
			opt.ImageBlocks = 16 << 10 // 64 MiB image by default
		}
		cfg.HeapSize += int64(opt.ImageBlocks+64) * sgxlkl.BlockSize
	}
	enclave, err := platform.NewEnclave(cfg, []byte("sgx-lkl-image"))
	if err != nil {
		return err
	}
	h.enclave = enclave

	var vfs litedb.VFS
	name := dbName
	if s == Mem {
		mv := litedb.NewMemVFS()
		// The in-memory database occupies enclave memory.
		if arena, aerr := enclave.Allocator().Alloc(64 << 10); aerr == nil {
			base := arena
			mem := enclave.Memory()
			limit := mem.Size() - base
			mv.Touch = func(off, n int64) {
				if off >= 0 && off+n <= limit {
					_ = mem.Touch(base+off, n)
				} else if limit > 0 {
					_ = mem.Touch(base+(off%limit+limit)%limit, 1)
				}
			}
		}
		vfs = mv
		name = litedb.MemoryDBName
	} else {
		var key [16]byte
		if err := sgxlkl.BuildImage(h.host, "disk.img", sgxlkl.ImageConfig{
			Blocks: opt.ImageBlocks, Key: key,
		}); err != nil {
			return err
		}
		lkl, err := sgxlkl.Launch(enclave, h.host, "disk.img", key, opt.Prof)
		if err != nil {
			return err
		}
		h.lkl = lkl
		vfs = lkl.VFS()
	}

	// Native execution inside the enclave: page cache counts against the
	// EPC through a touch-wrapped store.
	store := litedb.NewNativeStore(opt.CachePages)
	if arena, aerr := enclave.Allocator().Alloc(int64(opt.CachePages)*litedb.PageSize + sgx.PageSize); aerr == nil {
		base := (arena + sgx.PageSize - 1) &^ (sgx.PageSize - 1)
		mem := enclave.Memory()
		store = litedb.NewTouchStore(store, func(slot int) {
			_ = mem.Touch(base+int64(slot)*litedb.PageSize, litedb.PageSize)
		})
	}
	db, err := litedb.Open(vfs, name, litedb.Options{
		CachePages: opt.CachePages, Store: store, Sync: opt.Sync, Prof: opt.Prof,
	})
	h.db = db
	return err
}

// Exec runs SQL under the variant's execution model.
func (h *DB) Exec(sql string, args ...litedb.Value) (int64, error) {
	switch {
	case h.edb != nil:
		return h.edb.Exec(sql, args...)
	case h.enclave != nil:
		var n int64
		err := h.enclave.ECall("db_exec", func() error {
			var xerr error
			n, xerr = h.db.Exec(sql, args...)
			return xerr
		})
		return n, err
	default:
		return h.db.Exec(sql, args...)
	}
}

// Query runs a SELECT under the variant's execution model.
func (h *DB) Query(sql string, args ...litedb.Value) (*litedb.Rows, error) {
	switch {
	case h.edb != nil:
		return h.edb.Query(sql, args...)
	case h.enclave != nil:
		var rows *litedb.Rows
		err := h.enclave.ECall("db_query", func() error {
			var qerr error
			rows, qerr = h.db.Query(sql, args...)
			return qerr
		})
		return rows, err
	default:
		return h.db.Query(sql, args...)
	}
}

// Enclave exposes the enclave for stats (nil for non-enclave variants).
func (h *DB) Enclave() *sgx.Enclave { return h.enclave }

// HostBytes reports the untrusted storage footprint.
func (h *DB) HostBytes() int64 { return h.host.TotalBytes() }

// Close tears the stack down. Enclave variants destroy their enclave,
// which also retires the switchless worker so back-to-back benchmark runs
// cannot interfere with each other.
func (h *DB) Close() error {
	switch {
	case h.edb != nil:
		err := h.edb.Close()
		if h.enclave != nil {
			h.enclave.Destroy()
		}
		return err
	case h.enclave != nil && h.db != nil:
		err := h.enclave.ECall("db_close", func() error { return h.db.Close() })
		if h.lkl != nil {
			if lerr := h.lkl.Close(); err == nil {
				err = lerr
			}
		}
		return err
	case h.db != nil:
		return h.db.Close()
	default:
		return nil
	}
}
