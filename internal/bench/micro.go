package bench

import (
	"fmt"
	"math/rand"
	"time"

	"twine/internal/ipfs"
	"twine/internal/litedb"
	"twine/internal/prof"
)

// The micro-benchmark suite of §V-D: a single table with an
// auto-incrementing primary key and a 1 KiB blob column, filled in 1,000
// row batches; after each batch the suite measures batch insertion time,
// a full sequential read, and random point reads. Figure 5 plots these
// against database size; Table II summarises them split at the EPC limit.

// RecordBytes is the blob payload size (1 KiB, §V-D).
const RecordBytes = 1024

// Point is one measurement at a database size.
type Point struct {
	Records  int
	Insert   time.Duration // inserting the last batch
	SeqRead  time.Duration // reading every record in order
	RandRead time.Duration // RandReads random point lookups
}

// Series is a full sweep for one variant/storage pair.
type Series struct {
	Variant  Variant
	Storage  Storage
	Points   []Point
	OpenTime time.Duration
}

// MicroConfig parameterises the sweep.
type MicroConfig struct {
	// MaxRecords and Step define the database-size axis (paper: 1k steps
	// to 175k records; scale down for quick runs).
	MaxRecords int
	Step       int
	// RandReads is the number of random lookups per point (bounded so
	// large sweeps stay tractable).
	RandReads int
	// Options passes through to Open.
	Options Options
}

// DefaultMicroConfig returns a laptop-scale sweep.
func DefaultMicroConfig() MicroConfig {
	return MicroConfig{MaxRecords: 8000, Step: 1000, RandReads: 200}
}

// RunMicro sweeps one variant/storage pair.
func RunMicro(v Variant, s Storage, cfg MicroConfig) (Series, error) {
	if cfg.Step <= 0 {
		cfg.Step = 1000
	}
	if cfg.MaxRecords < cfg.Step {
		cfg.MaxRecords = cfg.Step
	}
	if cfg.RandReads <= 0 {
		cfg.RandReads = 200
	}
	db, err := Open(v, s, cfg.Options)
	if err != nil {
		return Series{}, err
	}
	defer db.Close()
	series := Series{Variant: v, Storage: s, OpenTime: db.OpenTime}

	if _, err := db.Exec(`CREATE TABLE kv (id INTEGER PRIMARY KEY, data BLOB)`); err != nil {
		return series, err
	}
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, RecordBytes)

	for size := cfg.Step; size <= cfg.MaxRecords; size += cfg.Step {
		// Insert one batch.
		start := time.Now()
		if _, err := db.Exec(`BEGIN`); err != nil {
			return series, err
		}
		for i := 0; i < cfg.Step; i++ {
			rng.Read(payload)
			if _, err := db.Exec(`INSERT INTO kv (data) VALUES (?)`,
				litedb.BlobVal(payload)); err != nil {
				return series, err
			}
		}
		if _, err := db.Exec(`COMMIT`); err != nil {
			return series, err
		}
		insert := time.Since(start)

		// Sequential read of every record.
		start = time.Now()
		rows, err := db.Query(`SELECT SUM(length(data)) FROM kv`)
		if err != nil {
			return series, err
		}
		if got := rows.All()[0][0].Int(); got != int64(size)*RecordBytes {
			return series, fmt.Errorf("bench: sequential read saw %d bytes, want %d", got, int64(size)*RecordBytes)
		}
		seq := time.Since(start)

		// Random point reads.
		start = time.Now()
		for i := 0; i < cfg.RandReads; i++ {
			id := rng.Int63n(int64(size)) + 1
			rows, err := db.Query(`SELECT length(data) FROM kv WHERE id = ?`, litedb.IntVal(id))
			if err != nil {
				return series, err
			}
			if rows.Len() != 1 {
				return series, fmt.Errorf("bench: random read of id %d found %d rows", id, rows.Len())
			}
		}
		rand_ := time.Since(start)

		series.Points = append(series.Points, Point{
			Records: size, Insert: insert, SeqRead: seq, RandRead: rand_,
		})
	}
	return series, nil
}

// Table2Row is one row of the paper's Table II: run time normalised to
// native, split at the EPC limit.
type Table2Row struct {
	Op      string
	Storage Storage
	// BelowEPC / AboveEPC are medians of points below/above the limit,
	// normalised against the native variant's same-region median.
	SGXLKLBelow, SGXLKLAbove float64
	TwineBelow, TwineAbove   float64
	WAMRAll                  float64
}

// Table2 derives the summary from four sweeps per storage mode.
// epcRecords is the database size at which the enclave working set
// crosses the usable EPC.
func Table2(series map[Variant]Series, storage Storage, epcRecords int) []Table2Row {
	ops := []struct {
		name string
		get  func(Point) time.Duration
	}{
		{"insert", func(p Point) time.Duration { return p.Insert }},
		{"seq-read", func(p Point) time.Duration { return p.SeqRead }},
		{"rand-read", func(p Point) time.Duration { return p.RandRead }},
	}
	var rows []Table2Row
	for _, op := range ops {
		med := func(v Variant, above bool) float64 {
			s, ok := series[v]
			if !ok {
				return 0
			}
			var xs []float64
			for _, p := range s.Points {
				if (p.Records > epcRecords) == above {
					xs = append(xs, float64(op.get(p)))
				}
			}
			return median(xs)
		}
		nBelow := med(Native, false)
		nAbove := med(Native, true)
		if nAbove == 0 {
			nAbove = nBelow
		}
		norm := func(x, base float64) float64 {
			if base == 0 {
				return 0
			}
			return x / base
		}
		rows = append(rows, Table2Row{
			Op:          op.name,
			Storage:     storage,
			SGXLKLBelow: norm(med(SGXLKL, false), nBelow),
			SGXLKLAbove: norm(med(SGXLKL, true), nAbove),
			TwineBelow:  norm(med(Twine, false), nBelow),
			TwineAbove:  norm(med(Twine, true), nAbove),
			WAMRAll:     norm(med(WAMR, false), nBelow),
		})
	}
	return rows
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64{}, xs...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	}
	n := len(sorted)
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Breakdown is Figure 7's random-read time decomposition. The paper's
// OCALL series is Boundary(): classic transitions plus switchless ring
// rides, which PR 2 moves most boundary work onto.
type Breakdown struct {
	Total      time.Duration
	ReadPath   time.Duration // total protected-FS read-path time
	Memset     time.Duration // ipfs node clearing
	OCall      time.Duration // enclave transitions (incl. the edge copy)
	Switchless time.Duration // switchless ring rides (no transition)
	Crypto     time.Duration // AES-GCM node processing
	ReadOther  time.Duration // remaining protected-FS read-path time
	SQLite     time.Duration // remaining engine time
}

// Boundary is the reconstructed Figure 7 OCALL series: all host-call time,
// whether it paid transitions or rode the ring.
func (b Breakdown) Boundary() time.Duration { return b.OCall + b.Switchless }

// RunBreakdown measures the Figure 7 workload: random reads over a
// populated Twine/file database, with the protected FS in the given mode.
func RunBreakdown(records, reads int, optimised bool, opt Options) (Breakdown, error) {
	reg := prof.NewRegistry()
	opt.Prof = reg
	if optimised {
		opt.IPFSMode = ipfs.ModeOptimized
	} else {
		opt.IPFSMode = ipfs.ModeStandard
	}
	db, err := Open(Twine, File, opt)
	if err != nil {
		return Breakdown{}, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (id INTEGER PRIMARY KEY, data BLOB)`); err != nil {
		return Breakdown{}, err
	}
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, RecordBytes)
	if _, err := db.Exec(`BEGIN`); err != nil {
		return Breakdown{}, err
	}
	for i := 0; i < records; i++ {
		rng.Read(payload)
		if _, err := db.Exec(`INSERT INTO kv (data) VALUES (?)`, litedb.BlobVal(payload)); err != nil {
			return Breakdown{}, err
		}
	}
	if _, err := db.Exec(`COMMIT`); err != nil {
		return Breakdown{}, err
	}

	reg.Reset()
	start := time.Now()
	for i := 0; i < reads; i++ {
		id := rng.Int63n(int64(records)) + 1
		if _, err := db.Query(`SELECT length(data) FROM kv WHERE id = ?`, litedb.IntVal(id)); err != nil {
			return Breakdown{}, err
		}
	}
	total := time.Since(start)
	snap := reg.Snapshot()

	b := Breakdown{
		Total:      total,
		ReadPath:   snap.Timers["ipfs.readpath"],
		Memset:     snap.Timers["ipfs.memset"],
		OCall:      snap.Timers["sgx.ocall"],
		Switchless: snap.Timers["sgx.switchless"],
		Crypto:     snap.Timers["ipfs.crypto"],
	}
	readPath := b.ReadPath
	inner := b.Memset + b.OCall + b.Switchless + b.Crypto
	if readPath > inner {
		b.ReadOther = readPath - inner
	}
	if total > readPath {
		b.SQLite = total - readPath
	}
	return b, nil
}
