package bench

import "testing"

// TestTenantsWarmAttribution: a warm fig-tenants run must serve every
// request off the warm free list (WarmResets == Requests, no cold
// starts) and compile the shared binary exactly once — the counters the
// CI smoke rejects on.
func TestTenantsWarmAttribution(t *testing.T) {
	res, err := RunTenants(TenantsConfig{TCS: 2, Tenants: 4, Requests: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmResets != int64(res.Requests) || res.ColdStarts != 0 {
		t.Fatalf("warm attribution wrong: %+v", res)
	}
	if res.CompiledModules != 1 || res.CompileHits != int64(res.Tenants-1) {
		t.Fatalf("code sharing wrong: %+v", res)
	}
	if res.ReqPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
}

// TestTenantsColdAttribution: the cold ablation instantiates per
// request and never batches (batch admission is off).
func TestTenantsColdAttribution(t *testing.T) {
	res, err := RunTenants(TenantsConfig{TCS: 2, Tenants: 4, Requests: 32, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdStarts != int64(res.Requests) || res.WarmResets != 0 {
		t.Fatalf("cold attribution wrong: %+v", res)
	}
	if res.BatchedWakeups != 0 {
		t.Fatalf("cold run counted batched wakeups: %+v", res)
	}
}

// TestWarmColdOrdering: the three provisioning strategies measure in
// the order the free-list design assumes — in-place reset strictly
// cheaper than instantiating from the snapshot.
func TestWarmColdOrdering(t *testing.T) {
	res, err := RunWarmCold(16, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullNs <= 0 || res.SnapshotNs <= 0 || res.ResetNs <= 0 {
		t.Fatalf("vacuous measurement: %+v", res)
	}
	if res.ResetNs >= res.SnapshotNs {
		t.Fatalf("warm reset (%.0fns) not cheaper than snapshot instantiation (%.0fns)",
			res.ResetNs, res.SnapshotNs)
	}
}
