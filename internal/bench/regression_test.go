package bench

import (
	"testing"

	"twine/internal/sgx"
)

func sgxDefaultForRepro() sgx.Config {
	cfg := sgx.DefaultConfig()
	cfg.EPCSize = 20 << 20
	cfg.EPCUsable = 12 << 20
	cfg.HeapSize = int64(20000)*RecordBytes*3 + (256 << 20)
	return cfg
}

// TestTwineFileLargeSweep is the regression test for the protected-FS
// node-cache bug found during the Figure 5 sweep: eviction write-backs
// could fault the node being inserted back in through its parent chain,
// and the duplicate insert orphaned live MHT entries.
func TestTwineFileLargeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := MicroConfig{MaxRecords: 20000, Step: 2000, RandReads: 300, Options: Options{CachePages: 2048, ImageBlocks: 2048}}
	cfg.Options.SGX = sgxDefaultForRepro()
	if _, err := RunMicro(Twine, File, cfg); err != nil {
		t.Fatal(err)
	}
}
