package bench

import (
	"fmt"
	"io"
	"time"

	"twine/internal/hostfs"
	"twine/internal/sgx"
	"twine/internal/sgxlkl"
	"twine/internal/speedtest"
)

// SpeedtestResult is one Figure 4 bar: elapsed time for one test under
// one variant/storage pair.
type SpeedtestResult struct {
	TestID  int
	Name    string
	Setup   bool // not plotted in Figure 4 (index creation)
	Variant Variant
	Storage Storage
	Elapsed time.Duration
	Err     error
}

// RunSpeedtest executes the full Speedtest1 suite on one database,
// returning per-test timings. Scale follows speedtest.NewState.
func RunSpeedtest(v Variant, s Storage, scale int, opt Options) ([]SpeedtestResult, error) {
	db, err := Open(v, s, opt)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	st := speedtest.NewState(scale)
	var out []SpeedtestResult
	for _, t := range speedtest.All() {
		start := time.Now()
		err := t.Run(db, st)
		out = append(out, SpeedtestResult{
			TestID: t.ID, Name: t.Name, Setup: t.Setup, Variant: v, Storage: s,
			Elapsed: time.Since(start), Err: err,
		})
		if err != nil {
			return out, fmt.Errorf("bench: speedtest %d on %v/%v: %w", t.ID, v, s, err)
		}
	}
	return out, nil
}

// CostReport is the Table III data for one variant.
type CostReport struct {
	Variant Variant
	// Times (Table IIIa).
	CompileOrLoad time.Duration // AoT translate / image generation
	Launch        time.Duration // stack construction until first query
	// Sizes (Table IIIb).
	HostBytes    int64 // artifacts on untrusted storage
	EnclaveBytes int64 // enclave memory reserved
}

// Costs measures the Table III factors by standing each stack up and
// running a canary query.
func Costs(opt Options) ([]CostReport, error) {
	var out []CostReport
	for _, v := range []Variant{Native, WAMR, Twine, SGXLKL} {
		var r CostReport
		r.Variant = v

		if v == SGXLKL {
			// Image generation is the SGX-LKL "compile" analogue.
			fs := hostfs.NewMemFS()
			var key [16]byte
			start := time.Now()
			if err := sgxlkl.BuildImage(fs, "img", sgxlkl.ImageConfig{Blocks: 4096, Key: key}); err != nil {
				return nil, err
			}
			r.CompileOrLoad = time.Since(start)
		}

		start := time.Now()
		db, err := Open(v, File, opt)
		if err != nil {
			return nil, err
		}
		if _, err := db.Exec(`CREATE TABLE c (x INTEGER); INSERT INTO c VALUES (1)`); err != nil {
			db.Close()
			return nil, err
		}
		r.Launch = time.Since(start)
		r.HostBytes = db.HostBytes()
		if enc := db.Enclave(); enc != nil {
			r.EnclaveBytes = enc.Memory().Size()
		}
		db.Close()
		out = append(out, r)
	}
	return out, nil
}

// WriteSeries renders a Figure 5 style table.
func WriteSeries(w io.Writer, all []Series) {
	fmt.Fprintf(w, "%-10s %-5s %9s %12s %12s %12s\n",
		"variant", "store", "records", "insert", "seq-read", "rand-read")
	for _, s := range all {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-10s %-5s %9d %12s %12s %12s\n",
				s.Variant, s.Storage, p.Records, p.Insert, p.SeqRead, p.RandRead)
		}
	}
}

// EPCRecordEstimate estimates the database size (records) at which the
// enclave working set crosses the usable EPC, for annotating Figure 5.
func EPCRecordEstimate(cfg sgx.Config) int {
	if cfg.EPCUsable == 0 {
		cfg = sgx.DefaultConfig()
	}
	return int(cfg.EPCUsable / RecordBytes)
}
