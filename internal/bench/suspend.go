package bench

import (
	"crypto/rand"
	"fmt"
	"time"

	"twine/internal/core"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/wasmgen"
)

// The fig-suspend workload (PR 9): many stateful tenants on an EPC far
// too small to keep them all resident, under a skewed (80/20) request
// mix. Three treatments answer what the instance-granularity swap tier
// buys:
//
//   - swap (PR 9): MaxResident bounds the warm instances; the coldest
//     are sealed out to untrusted storage and transparently resumed on
//     their next request. The hot set stays resident (the LRU tiebreak
//     in victim selection), so 80% of requests never pay a resume.
//   - resident (ablation): every tenant stays warm. The same EPC
//     pressure is then served one 4 KiB page at a time by the clock
//     sweep — every request faults its working set back in through
//     EWB/ELDU-priced paging.
//   - cold (floor): per-request instantiation. No state survives, no
//     EPC is held between requests — the do-nothing baseline any swap
//     tier must beat.
//
// Tenants are *stateful* accumulators, which is the point: resident and
// swap must produce bit-identical final sums (state survives swapping),
// and the run fails loudly on any stale-state read.

// SuspendConfig parameterises one fig-suspend point.
type SuspendConfig struct {
	// Mode is "swap", "resident" or "cold".
	Mode string
	// MaxResident is the swap tier's resident-instance bound (swap mode
	// only; default 4).
	MaxResident int
	// Tenants is the tenant count (default 10 × MaxResident — the
	// acceptance geometry: ten times more tenants than the EPC holds).
	Tenants int
	// Requests is the total request count (default 50 per tenant).
	Requests int
	// SGX overrides the enclave geometry (zero = a deliberately small
	// EPC, ~2 MiB usable, so residency is genuinely scarce).
	SGX sgx.Config
	// Prof receives counters.
	Prof *prof.Registry
}

// SuspendResult is one measured fig-suspend point.
type SuspendResult struct {
	Mode        string
	Tenants     int
	MaxResident int
	Requests    int
	Elapsed     time.Duration
	ReqPerSec   float64
	// Swap-tier counters; the conservation law Suspends == Resumes +
	// Suspended holds at rest. All zero outside swap mode.
	Suspends  int64
	Resumes   int64
	Suspended int64
	SealBytes int64
	// ResumeCount/ResumeP50/ResumeP99 summarise the resume latency
	// histogram across all tenants (worst tenant's quantiles).
	ResumeCount int64
	ResumeP50   time.Duration
	ResumeP99   time.Duration
	// PageFaults/Evictions attribute where the paging work went: the
	// resident ablation pays sweeps, the swap tier mostly does not.
	PageFaults int64
	Evictions  int64
}

// suspendGuest builds the stateful accumulator with a read-mostly
// working set — the shape the delta encoding exploits. run(x) adds x
// into 4 cells on distinct 4 KiB chunks (the mutable state: 16 KiB
// dirty vs golden) and reads one cell from each of the other 28 chunks
// (read-only: touched, EPC-resident, but never encoded in a suspend
// delta), returning the sum of all 32 cells = 4·(acc so far). The
// instance's EPC working set is thus ~128 KiB while its sealed delta is
// ~16 KiB. run(0) is a pure read: the stale-state probe.
func suspendGuest() []byte {
	m := wasmgen.NewModule()
	m.Memory(2, 2)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	s, i := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.I32)
	for c := 0; c < 32; c++ {
		off := int32(c*4096 + 8)
		if c < 4 {
			f.I32Const(off).I32Const(off).I32Load(0).LocalGet(0).I32Add().I32Store(0)
		}
		f.LocalGet(s).I32Const(off).I32Load(0).I32Add().LocalSet(s)
	}
	// The request's compute: a checksum stride over the whole 128 KiB
	// working set (offsets ≡ 0 mod 128, which never hits the accumulator
	// cells at ≡ 8, so the folded values are all zero and the return
	// value stays 4·acc). This is what makes a request cost something —
	// serving kernels read their state, they don't just bump a counter.
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(128 << 10).I32GeS().BrIf(1)
	f.LocalGet(s).LocalGet(i).I32Load(0).I32Add().LocalSet(s)
	f.LocalGet(i).I32Const(128).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(s)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// RunSuspend serves one fig-suspend point under the skewed schedule:
// request i goes to hot tenant i mod N four times out of five, and to
// the cold tail round-robin on the fifth — the mix where working-set
// victim selection either keeps the hot set resident or doesn't.
func RunSuspend(cfg SuspendConfig) (SuspendResult, error) {
	switch cfg.Mode {
	case "swap", "resident", "cold":
	default:
		return SuspendResult{}, fmt.Errorf("bench: unknown suspend mode %q", cfg.Mode)
	}
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = 4
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 10 * cfg.MaxResident
	}
	if cfg.Tenants <= cfg.MaxResident {
		return SuspendResult{}, fmt.Errorf("bench: %d tenants under a bound of %d is not a pressure workload", cfg.Tenants, cfg.MaxResident)
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 50 * cfg.Tenants
	}
	if cfg.SGX.EPCSize == 0 {
		cfg.SGX = sgx.DefaultConfig()
		// Scarce EPC: ~2 MiB usable holds the swap bound's arenas
		// (MaxResident × 132 KiB) comfortably, the full tenant set not
		// remotely. The heap itself must be large enough that every
		// arena fits in the resident ablation.
		cfg.SGX.EPCSize = 4 << 20
		cfg.SGX.EPCUsable = 2 << 20
		cfg.SGX.HeapSize = 32 << 20
	}
	cfg.SGX.Prof = cfg.Prof

	rt, err := core.NewRuntime(core.Config{
		PlatformSeed: "bench-suspend",
		SGX:          cfg.SGX,
		Switchless:   core.SwitchlessOff,
		Prof:         cfg.Prof,
	})
	if err != nil {
		return SuspendResult{}, err
	}
	defer rt.Enclave.Destroy()

	var rcfg core.RegistryConfig
	if cfg.Mode == "swap" {
		rcfg.MaxResident = cfg.MaxResident
	}
	reg := rt.NewRegistry(rcfg)
	defer reg.Close()

	bin := suspendGuest()
	names := make([]string, cfg.Tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		tcfg := core.TenantConfig{Workers: 1, Stateful: cfg.Mode != "cold", ColdStart: cfg.Mode == "cold"}
		if _, err := reg.Register(names[i], bin, tcfg); err != nil {
			return SuspendResult{}, err
		}
	}

	// The 80/20 schedule over a deterministic value stream: 80% of
	// requests go to a hot set one smaller than the resident bound —
	// leaving the swap tier one slot for the transient tail visitor, so
	// keeping the hot set resident is possible but only if victim
	// selection actually prefers the cold tail. expected[t] tracks each
	// tenant's accumulator for the stale-state sweep.
	hot := cfg.MaxResident - 1
	if hot < 1 {
		hot = 1
	}
	tail := cfg.Tenants - hot
	expected := make([]int64, cfg.Tenants)
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		t := i % hot
		if i%5 == 4 {
			t = hot + (i/5)%tail
		}
		x := int64(i%7 + 1)
		out, err := reg.Submit(names[t], uint64(x))
		if err != nil {
			return SuspendResult{}, fmt.Errorf("bench: request %d (tenant %s): %w", i, names[t], err)
		}
		if cfg.Mode == "cold" {
			expected[t] = 0 // cold serving starts fresh every request
		}
		expected[t] += x
		if got, want := int64(out[0]), 4*expected[t]; got != want {
			return SuspendResult{}, fmt.Errorf("bench: stale state at request %d: tenant %s returned %d, want %d", i, names[t], got, want)
		}
	}
	elapsed := time.Since(start)

	// Stale-state sweep: run(0) reads every tenant's accumulator without
	// mutating it. Order-independent — any lost or misapplied suspend
	// delta shows here even if the tenant's last serving request passed.
	for t, name := range names {
		want := int64(0)
		if cfg.Mode != "cold" {
			want = 4 * expected[t]
		}
		out, err := reg.Submit(name, 0)
		if err != nil {
			return SuspendResult{}, fmt.Errorf("bench: final read of %s: %w", name, err)
		}
		if int64(out[0]) != want {
			return SuspendResult{}, fmt.Errorf("bench: stale state in final read: tenant %s returned %d, want %d", name, out[0], want)
		}
	}

	rs := reg.Stats()
	es := rt.Enclave.Stats()
	res := SuspendResult{
		Mode:        cfg.Mode,
		Tenants:     cfg.Tenants,
		MaxResident: cfg.MaxResident,
		Requests:    cfg.Requests,
		Elapsed:     elapsed,
		ReqPerSec:   float64(cfg.Requests) / elapsed.Seconds(),
		Suspends:    rs.Suspends,
		Resumes:     rs.Resumes,
		Suspended:   rs.Suspended,
		SealBytes:   rs.SealBytes,
		PageFaults:  es.PageFaults,
		Evictions:   es.Evictions,
	}
	for _, ts := range rs.PerTenant {
		res.ResumeCount += ts.ResumeLatency.Count
		if ts.ResumeLatency.P50 > res.ResumeP50 {
			res.ResumeP50 = ts.ResumeLatency.P50
		}
		if ts.ResumeLatency.P99 > res.ResumeP99 {
			res.ResumeP99 = ts.ResumeLatency.P99
		}
	}
	if cfg.Mode == "swap" {
		if res.Suspends == 0 || res.Resumes == 0 {
			return res, fmt.Errorf("bench: swap mode never suspended (%d suspends / %d resumes); geometry is not a pressure workload", res.Suspends, res.Resumes)
		}
		if res.Suspends != res.Resumes+res.Suspended {
			return res, fmt.Errorf("bench: swap counters not conserved: %d suspends != %d resumes + %d suspended", res.Suspends, res.Resumes, res.Suspended)
		}
	}
	return res, nil
}

// SealSnapPoint is one seal+unseal round trip at a given snapshot size.
type SealSnapPoint struct {
	Size     int64
	SealNs   float64
	UnsealNs float64
	// MBPerSec is the one-way seal throughput.
	MBPerSec float64
}

// RunSealSnap measures what sealing a suspended instance's snapshot
// costs as the snapshot grows — the swap tier's per-suspend price is
// this plus the delta encoding, and it scales linearly (AES-GCM over
// the payload), while the win (EPC pages released) scales with the
// same size. Sizes default to 64 KiB through 16 MiB.
func RunSealSnap(sizes []int64) ([]SealSnapPoint, error) {
	if len(sizes) == 0 {
		sizes = []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	}
	cfg := sgx.DefaultConfig()
	e, err := sgx.NewPlatform("bench-sealsnap").NewEnclave(cfg, []byte("sealsnap"))
	if err != nil {
		return nil, err
	}
	defer e.Destroy()

	out := make([]SealSnapPoint, 0, len(sizes))
	for _, size := range sizes {
		payload := make([]byte, size)
		if _, err := rand.Read(payload); err != nil {
			return nil, err
		}
		iters := int(64 << 20 / size)
		if iters < 3 {
			iters = 3
		}
		if iters > 64 {
			iters = 64
		}
		var blob []byte
		start := time.Now()
		for i := 0; i < iters; i++ {
			if blob, err = e.Seal("sealsnap", payload); err != nil {
				return nil, err
			}
		}
		sealNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Unseal("sealsnap", blob); err != nil {
				return nil, err
			}
		}
		unsealNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		out = append(out, SealSnapPoint{
			Size:     size,
			SealNs:   sealNs,
			UnsealNs: unsealNs,
			MBPerSec: float64(size) / (sealNs / 1e9) / (1 << 20),
		})
	}
	return out, nil
}
