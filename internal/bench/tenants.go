package bench

import (
	"fmt"
	"sync"
	"time"

	"twine/internal/core"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// The fig-tenants workload (PR 8): N tenants sharing one enclave through
// the multi-tenant registry, each serving requests from its own pool at
// a fixed TCS count. Every tenant registers the *same* module bytes, so
// the registry compiles once and the grid isolates the serving-path
// question: what does per-request isolation cost as tenants multiply?
// Two treatments answer it:
//
//   - warm (PR 8): FreshState tenants — completed workers are reset in
//     place on the free list — with switchless batching on, so adjacent
//     tenants' host calls share ring wakeups.
//   - cold (ablation): ColdStart tenants — a fresh instance is stamped
//     from the snapshot for every request and released after — with
//     batching off. Same isolation guarantee, none of the PR 8
//     machinery.
//
// Each request computes a small checksum in-enclave and writes a 16-byte
// response line through WASI fd_write, so the switchless ring sees real
// per-request traffic.

// TenantsConfig parameterises one fig-tenants point.
type TenantsConfig struct {
	// TCS is the enclave's thread-control-structure count (default 4 —
	// the grid's fixed axis).
	TCS int
	// Tenants is the tenant count; each tenant gets a one-worker pool.
	Tenants int
	// Requests is the total request count, split evenly across tenants
	// (default 64 per tenant).
	Requests int
	// Cold switches to the per-request-instantiation ablation.
	Cold bool
	// SGX overrides the enclave geometry (zero = DefaultConfig).
	SGX sgx.Config
	// Prof receives counters.
	Prof *prof.Registry
}

// TenantsResult is one measured fig-tenants point.
type TenantsResult struct {
	Tenants   int
	Requests  int
	Elapsed   time.Duration
	ReqPerSec float64
	// WarmResets / ColdStarts attribute the serving mode: a warm run has
	// WarmResets == Requests and ColdStarts == 0; a cold run the reverse.
	WarmResets int64
	ColdStarts int64
	// CompiledModules / CompileHits prove code sharing: for T tenants of
	// one binary they are 1 and T-1.
	CompiledModules int
	CompileHits     int64
	// BatchedWakeups counts switchless ring wakeups saved by batch
	// admission (zero in the cold treatment, which runs batching off).
	BatchedWakeups int64
	// WorstP99 is the slowest tenant's p99 request latency.
	WorstP99 time.Duration
}

// tenantGuest builds the per-request serving kernel: run(x) folds a
// 256-byte data segment into a checksum seeded by x, writes a 16-byte
// response through fd_write (one host call per request — ring traffic),
// and returns the checksum.
func tenantGuest() []byte {
	m := wasmgen.NewModule()
	fdWrite := m.ImportFunc("wasi_snapshot_preview1", "fd_write",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	m.Memory(1, 1)
	seg := make([]byte, 256)
	for i := range seg {
		seg[i] = byte(i*13 + 5)
	}
	m.Data(64, seg)
	m.Data(512, []byte("response-body-ok"))

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	i, s := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.I32)
	f.LocalGet(0).LocalSet(s)
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(int32(len(seg))).I32GeS().BrIf(1)
	f.LocalGet(s).LocalGet(i).I32Const(64).I32Add().I32Load8U(0).I32Add().LocalSet(s)
	f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	// iovec at 0: base 512, len 16; fd_write(stdout, iovec, 1, nwritten@32)
	f.I32Const(0).I32Const(512).I32Store(0)
	f.I32Const(4).I32Const(16).I32Store(0)
	f.I32Const(1).I32Const(0).I32Const(1).I32Const(32).Call(fdWrite).Drop()
	f.LocalGet(s)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

// RunTenants serves one fig-tenants point: cfg.Tenants tenants of one
// shared module, each driven by its own client goroutine, reporting
// aggregate requests/sec and the sharing/serving counters.
func RunTenants(cfg TenantsConfig) (TenantsResult, error) {
	if cfg.TCS <= 0 {
		cfg.TCS = 4
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64 * cfg.Tenants
	}
	if cfg.SGX.EPCSize == 0 {
		cfg.SGX = sgx.DefaultConfig()
	}
	cfg.SGX.TCSNum = cfg.TCS
	cfg.SGX.Prof = cfg.Prof

	rt, err := core.NewRuntime(core.Config{
		PlatformSeed:    "bench-tenants",
		SGX:             cfg.SGX,
		Switchless:      core.SwitchlessOn,
		SwitchlessBatch: !cfg.Cold,
		Prof:            cfg.Prof,
	})
	if err != nil {
		return TenantsResult{}, err
	}
	defer rt.Enclave.Destroy()

	reg := rt.NewRegistry(core.RegistryConfig{})
	defer reg.Close()
	bin := tenantGuest()
	tenants := make([]*core.Tenant, cfg.Tenants)
	for i := range tenants {
		tcfg := core.TenantConfig{Workers: 1, ColdStart: cfg.Cold}
		t, err := reg.Register(fmt.Sprintf("tenant-%d", i), bin, tcfg)
		if err != nil {
			return TenantsResult{}, err
		}
		tenants[i] = t
	}

	per := cfg.Requests / cfg.Tenants
	total := per * cfg.Tenants
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	start := time.Now()
	for _, t := range tenants {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < per; r++ {
				if _, err := t.Submit(uint64(r)); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return TenantsResult{}, firstErr
	}

	rs := reg.Stats()
	res := TenantsResult{
		Tenants:         cfg.Tenants,
		Requests:        total,
		Elapsed:         elapsed,
		ReqPerSec:       float64(total) / elapsed.Seconds(),
		CompiledModules: rs.CompiledModules,
		CompileHits:     rs.CompileHits,
		BatchedWakeups:  rt.Enclave.Stats().BatchedWakeups,
	}
	for _, ts := range rs.PerTenant {
		res.WarmResets += ts.Pool.WarmResets
		res.ColdStarts += ts.Pool.ColdStarts
		if ts.Latency.P99 > res.WorstP99 {
			res.WorstP99 = ts.Latency.P99
		}
	}
	return res, nil
}

// WarmColdResult reports the warm-reset microbenchmark: what one
// ready-to-serve instance costs under each provisioning strategy.
type WarmColdResult struct {
	// FullNs is a full Instantiate: value-stack allocation, linking,
	// data-segment replay.
	FullNs float64
	// SnapshotNs is InstantiateFromSnapshot: fresh buffers, state copied
	// from the golden snapshot.
	SnapshotNs float64
	// ResetNs is ResetFromSnapshot on a live instance: the PR 8 warm
	// free-list hot path — in-place copy, no allocation.
	ResetNs float64
}

// ColdWarmRatio is the headline: how many times cheaper a warm reset is
// than the cold per-request instantiation it replaces.
func (r WarmColdResult) ColdWarmRatio() float64 {
	if r.ResetNs == 0 {
		return 0
	}
	return r.SnapshotNs / r.ResetNs
}

// RunWarmCold measures the three provisioning strategies at the wasm
// layer (no enclave — the arena and transition costs are priced by
// fig-tenants; this isolates the runtime-state work) over a module with
// `pages` pages of linear memory, `iters` iterations each.
func RunWarmCold(pages, iters int) (WarmColdResult, error) {
	if pages <= 0 {
		pages = 16
	}
	if iters <= 0 {
		iters = 50
	}
	m := wasmgen.NewModule()
	m.Memory(uint32(pages), uint32(pages))
	seg := make([]byte, 4096)
	for i := range seg {
		seg[i] = byte(i)
	}
	m.Data(0, seg)
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	f.I32Const(0).I32Load(0)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")

	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		return WarmColdResult{}, err
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		return WarmColdResult{}, err
	}
	golden, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		return WarmColdResult{}, err
	}
	snap := golden.Snapshot()

	var res WarmColdResult
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wasm.Instantiate(c, nil, wasm.Config{}); err != nil {
			return res, err
		}
	}
	res.FullNs = float64(time.Since(start).Nanoseconds()) / float64(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{}); err != nil {
			return res, err
		}
	}
	res.SnapshotNs = float64(time.Since(start).Nanoseconds()) / float64(iters)

	warm, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{})
	if err != nil {
		return res, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := warm.ResetFromSnapshot(snap); err != nil {
			return res, err
		}
	}
	res.ResetNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
	return res, nil
}
