package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"twine/internal/chaos"
	"twine/internal/core"
	"twine/internal/polybench"
	"twine/internal/prof"
	"twine/internal/sgx"
)

// The fig-throughput workload (PR 3): a serving scenario over the
// concurrent enclave runtime. Each request runs a CPU-bound PolyBench
// kernel inside the enclave plus one untrusted host interaction
// (receiving the request / delivering the response through host memory —
// a classic OCALL whose body waits on the simulated transport). With one
// TCS every request serialises end to end, transport wait included; with
// N TCS the waits overlap, which is exactly the capacity a TCS pool buys
// a server: requests/sec scales with TCS until the CPU (the kernel time)
// saturates.

// ThroughputConfig parameterises one fig-throughput point.
type ThroughputConfig struct {
	// TCS is the enclave's thread-control-structure count.
	TCS int
	// Workers is the pool size (default: TCS).
	Workers int
	// Requests is the number of requests served (default 64).
	Requests int
	// Kernel is the PolyBench kernel run per request (default "gemm");
	// KernelN is its problem size (default 16).
	Kernel  string
	KernelN int
	// HostIODelay is the untrusted transport wait per request (default
	// 500µs — a LAN round trip plus host-side queueing).
	HostIODelay time.Duration
	// FaultRate injects a permanent fault into the per-request host I/O
	// with this probability (PR 6's fig-faults series): the request fails
	// and its worker rides the pool's quarantine + snapshot-repair path.
	// The decision is a seeded hash of (FaultSeed, request ordinal), so a
	// series is replayable. 0 disables injection entirely.
	FaultRate float64
	FaultSeed int64
	// SGX overrides the enclave geometry (zero = DefaultConfig).
	SGX sgx.Config
	// Switchless selects the OCALL dispatch (transport I/O is blocking
	// and always classic; this only affects incidental host calls).
	Switchless core.SwitchlessMode
	// Prof receives counters.
	Prof *prof.Registry
}

// ThroughputResult is one measured fig-throughput point.
type ThroughputResult struct {
	TCS       int
	Workers   int
	Requests  int
	Elapsed   time.Duration
	ReqPerSec float64
	// Enclave-side saturation counters for the run.
	TCSWaits   int64
	TCSMaxBusy int64
	// PoolWaits is the pool-level queueing count.
	PoolWaits int64
	// Failed/Quarantined/Repaired count the fault-containment activity of
	// the run (all zero when FaultRate is 0 — the fidelity rule).
	Failed      int64
	Quarantined int64
	Repaired    int64
	// LaunchTime and SnapshotWorkers document the instantiation side:
	// how long runtime+module setup took and how many workers were
	// stamped from the snapshot instead of fully instantiated.
	LaunchTime      time.Duration
	SnapshotWorkers int
}

// RunThroughput builds a concurrent Twine runtime with cfg.TCS thread
// slots, a pool of cfg.Workers kernel instances, and serves
// cfg.Requests requests, reporting wall-clock throughput.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	if cfg.TCS <= 0 {
		cfg.TCS = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.TCS
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Kernel == "" {
		cfg.Kernel = "gemm"
	}
	if cfg.KernelN <= 0 {
		cfg.KernelN = 16
	}
	if cfg.HostIODelay == 0 {
		cfg.HostIODelay = 500 * time.Microsecond
	}
	if cfg.SGX.EPCSize == 0 {
		cfg.SGX = sgx.DefaultConfig()
	}
	cfg.SGX.TCSNum = cfg.TCS
	cfg.SGX.Prof = cfg.Prof

	k, ok := polybench.ByName(cfg.Kernel)
	if !ok {
		return ThroughputResult{}, fmt.Errorf("bench: unknown kernel %q", cfg.Kernel)
	}

	setup := time.Now()
	rt, err := core.NewRuntime(core.Config{
		PlatformSeed: "bench-throughput",
		SGX:          cfg.SGX,
		Switchless:   cfg.Switchless,
		Prof:         cfg.Prof,
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer rt.Enclave.Destroy()
	mod, err := rt.LoadModule(k.Build(cfg.KernelN))
	if err != nil {
		return ThroughputResult{}, err
	}

	var inj *chaos.Injector
	if cfg.FaultRate > 0 {
		inj = chaos.New(chaos.Plan{
			Seed: cfg.FaultSeed,
			Prob: cfg.FaultRate,
			Err:  errors.New("bench: injected transport fault"),
		})
	}
	delay := cfg.HostIODelay
	pool, err := rt.NewPool(mod, core.PoolConfig{
		Workers: cfg.Workers,
		Entry:   "run",
		HostIO: func() error {
			if err := inj.Op(); err != nil { // nil injector: strict no-op
				return err
			}
			time.Sleep(delay)
			return nil
		},
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer pool.Close()
	launch := time.Since(setup)

	var failed int64
	start := time.Now()
	serr := pool.Serve(cfg.Requests, nil, func(i int, out []uint64, err error) {
		if err != nil {
			atomic.AddInt64(&failed, 1)
		}
	})
	elapsed := time.Since(start)
	if serr != nil && inj == nil {
		// With injection on, request failures are the workload; without
		// it, any failure is a real error.
		return ThroughputResult{}, serr
	}

	es := rt.Enclave.Stats()
	ps := pool.Stats()
	return ThroughputResult{
		TCS:             cfg.TCS,
		Workers:         cfg.Workers,
		Requests:        cfg.Requests,
		Elapsed:         elapsed,
		ReqPerSec:       float64(cfg.Requests) / elapsed.Seconds(),
		TCSWaits:        es.TCSWaits,
		TCSMaxBusy:      es.TCSMaxBusy,
		PoolWaits:       ps.Waits,
		Failed:          atomic.LoadInt64(&failed),
		Quarantined:     ps.Quarantined,
		Repaired:        ps.Repaired,
		LaunchTime:      launch,
		SnapshotWorkers: cfg.Workers - 1,
	}, nil
}
