package bench

import (
	"strings"
	"testing"
	"time"

	"twine/internal/litedb"
	"twine/internal/sgx"
)

// testOpts keeps enclave variants small and fast for unit tests.
func testOpts() Options {
	cfg := sgx.TestConfig()
	cfg.HeapSize = 96 << 20
	cfg.EPCSize = 16 << 20
	cfg.EPCUsable = 12 << 20
	cfg.ReservedSize = 4 << 20
	return Options{CachePages: 64, SGX: cfg, ImageBlocks: 2048}
}

// TestAllVariantsAnswerIdentically is the matrix correctness gate: every
// variant/storage pair must produce the same query results.
func TestAllVariantsAnswerIdentically(t *testing.T) {
	workload := func(db *DB) (string, error) {
		if _, err := db.Exec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c INTEGER)`); err != nil {
			return "", err
		}
		if _, err := db.Exec(`CREATE INDEX ic ON t(c)`); err != nil {
			return "", err
		}
		if _, err := db.Exec(`BEGIN`); err != nil {
			return "", err
		}
		for i := 1; i <= 200; i++ {
			if _, err := db.Exec(`INSERT INTO t (b, c) VALUES (?, ?)`,
				litedb.TextVal(strings.Repeat("x", i%37)), litedb.IntVal(int64(i%10))); err != nil {
				return "", err
			}
		}
		if _, err := db.Exec(`COMMIT`); err != nil {
			return "", err
		}
		if _, err := db.Exec(`UPDATE t SET c = c + 100 WHERE c = 3`); err != nil {
			return "", err
		}
		if _, err := db.Exec(`DELETE FROM t WHERE c = 7`); err != nil {
			return "", err
		}
		rows, err := db.Query(`
			SELECT c, COUNT(*), SUM(length(b)) FROM t GROUP BY c ORDER BY c`)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, r := range rows.All() {
			for _, v := range r {
				sb.WriteString(v.String())
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
		}
		return sb.String(), nil
	}

	var golden string
	for _, v := range []Variant{Native, WAMR, Twine, SGXLKL} {
		for _, s := range []Storage{Mem, File} {
			t.Run(v.String()+"/"+s.String(), func(t *testing.T) {
				db, err := Open(v, s, testOpts())
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				defer db.Close()
				got, err := workload(db)
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				if golden == "" {
					golden = got
					return
				}
				if got != golden {
					t.Errorf("results diverge from native:\ngot:\n%s\nwant:\n%s", got, golden)
				}
			})
		}
	}
}

func TestMicroSweepSmall(t *testing.T) {
	cfg := MicroConfig{MaxRecords: 600, Step: 300, RandReads: 20, Options: testOpts()}
	for _, v := range []Variant{Native, Twine} {
		s, err := RunMicro(v, File, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(s.Points) != 2 {
			t.Fatalf("%v: %d points, want 2", v, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Insert <= 0 || p.SeqRead <= 0 || p.RandRead <= 0 {
				t.Errorf("%v: non-positive timing %+v", v, p)
			}
		}
	}
}

func TestSpeedtestOnNative(t *testing.T) {
	res, err := RunSpeedtest(Native, Mem, 40, testOpts())
	if err != nil {
		t.Fatalf("RunSpeedtest: %v", err)
	}
	plotted := 0
	for _, r := range res {
		if !r.Setup {
			plotted++
		}
	}
	if plotted != 29 {
		t.Fatalf("%d plotted tests, want 29 (paper figure 4)", plotted)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("test %d: %v", r.TestID, r.Err)
		}
		if r.Elapsed <= 0 {
			t.Errorf("test %d: non-positive elapsed", r.TestID)
		}
	}
}

func TestSpeedtestOnTwineFile(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier integration")
	}
	res, err := RunSpeedtest(Twine, File, 15, testOpts())
	if err != nil {
		t.Fatalf("RunSpeedtest: %v", err)
	}
	if len(res) != 30 {
		t.Fatalf("%d tests ran, want 30 (29 plotted + index setup)", len(res))
	}
}

func TestTable2Shape(t *testing.T) {
	series := map[Variant]Series{}
	for v, mult := range map[Variant]float64{Native: 1, WAMR: 8, Twine: 12, SGXLKL: 3} {
		var s Series
		for i := 1; i <= 4; i++ {
			d := time.Duration(mult * float64(i*1000))
			s.Points = append(s.Points, Point{Records: i * 100, Insert: d, SeqRead: d, RandRead: d})
		}
		series[v] = s
	}
	rows := Table2(series, Mem, 200)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WAMRAll < 7.9 || r.WAMRAll > 8.1 {
			t.Errorf("%s: WAMR norm = %v, want ~8", r.Op, r.WAMRAll)
		}
		if r.TwineBelow < 11.9 || r.TwineBelow > 12.1 {
			t.Errorf("%s: Twine below = %v, want ~12", r.Op, r.TwineBelow)
		}
	}
}

func TestCosts(t *testing.T) {
	reports, err := Costs(testOpts())
	if err != nil {
		t.Fatalf("Costs: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("%d reports", len(reports))
	}
	byV := map[Variant]CostReport{}
	for _, r := range reports {
		byV[r.Variant] = r
		if r.Launch <= 0 {
			t.Errorf("%v: non-positive launch", r.Variant)
		}
	}
	if byV[Native].EnclaveBytes != 0 {
		t.Error("native variant reports enclave memory")
	}
	if byV[Twine].EnclaveBytes == 0 || byV[SGXLKL].EnclaveBytes == 0 {
		t.Error("enclave variants report no enclave memory")
	}
	// SGX-LKL's image makes its enclave bigger than Twine's (Table IIIb).
	if byV[SGXLKL].EnclaveBytes <= byV[Twine].EnclaveBytes {
		t.Errorf("SGX-LKL enclave (%d) not larger than Twine's (%d)",
			byV[SGXLKL].EnclaveBytes, byV[Twine].EnclaveBytes)
	}
	if byV[SGXLKL].CompileOrLoad <= 0 {
		t.Error("SGX-LKL image generation unmeasured")
	}
}

func TestBreakdownModes(t *testing.T) {
	std, err := RunBreakdown(300, 150, false, testOpts())
	if err != nil {
		t.Fatalf("standard: %v", err)
	}
	optm, err := RunBreakdown(300, 150, true, testOpts())
	if err != nil {
		t.Fatalf("optimized: %v", err)
	}
	if std.Memset == 0 {
		t.Error("standard mode shows no memset time (Figure 7's dominant cost)")
	}
	if optm.Memset != 0 {
		t.Errorf("optimized mode still spends %v in memset", optm.Memset)
	}
	if std.Boundary() == 0 || optm.Boundary() == 0 {
		t.Error("no boundary (OCALL + switchless) time recorded")
	}
}

func TestEPCRecordEstimate(t *testing.T) {
	cfg := sgx.DefaultConfig()
	if got := EPCRecordEstimate(cfg); got != int(cfg.EPCUsable)/RecordBytes {
		t.Errorf("estimate = %d", got)
	}
}
