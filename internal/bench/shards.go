package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/hostfs"
	"twine/tsql"
)

// The fig-shards workload (PR 10): the sharded sealed-SQL serving tier
// under client load. Each request is one front-door operation — a routed
// point read, a cross-shard scan, or a write — and each shard sub-request
// pays an untrusted transport wait while its serving handle is held (the
// fig-throughput idiom). With one shard every request serialises on one
// sealed database; with N shards the transport waits of requests routed
// to different partitions overlap, so point-read throughput scales with
// the shard count until the in-enclave query CPU saturates.

// ShardsConfig parameterises one fig-shards point.
type ShardsConfig struct {
	// Shards is the number of hash partitions (default 1).
	Shards int
	// Replicas is the serving-handle count per shard (default 1).
	Replicas int
	// Clients is the number of concurrent client goroutines (default 8);
	// it is held constant across shard counts so the series isolates
	// partitioning, not offered load.
	Clients int
	// Requests is the number of requests served (default 256).
	Requests int
	// Rows is the pre-ingested table size (default 256).
	Rows int
	// TCS is the per-shard enclave thread-slot count (default 4).
	TCS int
	// Workload is "point" (routed single-shard reads), "scan"
	// (cross-shard merged aggregates) or "mixed" (alternating routed
	// inserts and point reads; inserts ride the group-commit queue).
	Workload string
	// HostIODelay is the untrusted transport wait per shard sub-request
	// (default 300µs).
	HostIODelay time.Duration
}

// ShardsResult is one measured fig-shards point.
type ShardsResult struct {
	Shards    int
	Replicas  int
	Clients   int
	Requests  int
	Workload  string
	Elapsed   time.Duration
	ReqPerSec float64
	// PointReads is the per-shard routed-read census; MaxShardShare is
	// the busiest shard's fraction of them (1/Shards is perfect spread,
	// 1.0 means the partitioner degenerated).
	PointReads    []int64
	MaxShardShare float64
	// Routing and write-tier activity for the run.
	FanOuts          int64
	Writes           int64
	GroupCommits     int64
	GroupedStmts     int64
	ReplicaRefreshes int64
}

// shardsValue is the deterministic payload checked on every read.
func shardsValue(k int) string { return fmt.Sprintf("val-%06d", k*2654435761%1000003) }

// RunShards opens a sharded service on a fresh in-memory host, ingests
// the table, serves the workload from concurrent clients and verifies
// every response against the deterministic payload.
func RunShards(cfg ShardsConfig) (ShardsResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 256
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 256
	}
	if cfg.TCS <= 0 {
		cfg.TCS = 4
	}
	if cfg.Workload == "" {
		cfg.Workload = "point"
	}
	if cfg.HostIODelay == 0 {
		cfg.HostIODelay = 300 * time.Microsecond
	}

	base := tsql.Config{
		Path:         "bench.db",
		HostFS:       hostfs.NewMemFS(),
		PlatformSeed: "bench-shards",
		CacheKiB:     256,
	}
	base.SGX.EPCSize = 16 << 20
	base.SGX.EPCUsable = 12 << 20
	base.SGX.HeapSize = 96 << 20
	base.SGX.ReservedSize = 4 << 20
	base.SGX.TCSNum = cfg.TCS

	delay := cfg.HostIODelay
	svc, err := tsql.OpenService(tsql.ShardConfig{
		Base:        base,
		Shards:      cfg.Shards,
		Replicas:    cfg.Replicas,
		RouteTable:  "kv",
		RouteColumn: "k",
		HostIO:      func(int) error { time.Sleep(delay); return nil },
	})
	if err != nil {
		return ShardsResult{}, err
	}
	defer svc.Close()

	if _, err := svc.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		return ShardsResult{}, err
	}
	const batch = 32
	for at := 0; at < cfg.Rows; at += batch {
		end := at + batch
		if end > cfg.Rows {
			end = cfg.Rows
		}
		var rows []string
		for k := at; k < end; k++ {
			rows = append(rows, fmt.Sprintf("(%d, '%s')", k, shardsValue(k)))
		}
		if _, err := svc.Exec(`INSERT INTO kv (k, v) VALUES ` + strings.Join(rows, ", ")); err != nil {
			return ShardsResult{}, err
		}
	}

	// expectSum/expectCount are the scan workload's reference answers.
	var expectSum int64
	for k := 0; k < cfg.Rows; k++ {
		expectSum += int64(k)
	}

	pointRead := func(k int) error {
		row, err := svc.QueryRow(`SELECT v FROM kv WHERE k = ?`, tsql.Int(int64(k)))
		if err != nil {
			return err
		}
		if row == nil || row[0].Text() != shardsValue(k) {
			return fmt.Errorf("bench: k=%d read %v, want %q", k, row, shardsValue(k))
		}
		return nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		firstMu sync.Mutex
		first   error
	)
	fail := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
	}

	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				switch cfg.Workload {
				case "point":
					if err := pointRead(int(uint32(i*2654435761)) % cfg.Rows); err != nil {
						fail(err)
						return
					}
				case "scan":
					row, err := svc.QueryRow(`SELECT COUNT(*), SUM(k) FROM kv WHERE k < ?`, tsql.Int(int64(cfg.Rows)))
					if err != nil {
						fail(err)
						return
					}
					if row[0].Int() < int64(cfg.Rows) || row[1].Int() < expectSum {
						fail(fmt.Errorf("bench: scan saw %v, want >= [%d %d]", row, cfg.Rows, expectSum))
						return
					}
				case "mixed":
					if i%2 == 0 {
						k := cfg.Rows + i
						if _, err := svc.Exec(`INSERT INTO kv (k, v) VALUES (?, ?)`,
							tsql.Int(int64(k)), tsql.Text(shardsValue(k))); err != nil {
							fail(err)
							return
						}
						if err := pointRead(k); err != nil { // read-your-writes
							fail(err)
							return
						}
					} else if err := pointRead(int(uint32(i*2654435761)) % cfg.Rows); err != nil {
						fail(err)
						return
					}
				default:
					fail(fmt.Errorf("bench: unknown workload %q", cfg.Workload))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return ShardsResult{}, first
	}

	st := svc.Stats()
	res := ShardsResult{
		Shards:           cfg.Shards,
		Replicas:         cfg.Replicas,
		Clients:          cfg.Clients,
		Requests:         cfg.Requests,
		Workload:         cfg.Workload,
		Elapsed:          elapsed,
		ReqPerSec:        float64(cfg.Requests) / elapsed.Seconds(),
		PointReads:       st.PointReads,
		FanOuts:          st.FanOuts,
		Writes:           st.Writes,
		GroupCommits:     st.GroupCommits,
		GroupedStmts:     st.GroupedStmts,
		ReplicaRefreshes: st.ReplicaRefreshes,
	}
	var sum, max int64
	for _, p := range st.PointReads {
		sum += p
		if p > max {
			max = p
		}
	}
	if sum > 0 {
		res.MaxShardShare = float64(max) / float64(sum)
	}
	return res, nil
}
