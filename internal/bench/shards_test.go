package bench

import (
	"testing"
	"time"
)

// TestRunShardsSmoke runs a scaled-down point/scan/mixed triple on 2
// shards and checks the routing census: reads spread across partitions,
// writes batch into group commits, every response verified in RunShards.
func TestRunShardsSmoke(t *testing.T) {
	point, err := RunShards(ShardsConfig{
		Shards: 2, Clients: 4, Requests: 32, Rows: 64,
		Workload: "point", HostIODelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("point: %v", err)
	}
	if point.ReqPerSec <= 0 {
		t.Fatalf("point: no throughput: %+v", point)
	}
	if point.MaxShardShare >= 1 {
		t.Fatalf("point: every read landed on one shard: %+v", point)
	}

	scan, err := RunShards(ShardsConfig{
		Shards: 2, Clients: 4, Requests: 16, Rows: 64,
		Workload: "scan", HostIODelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if scan.FanOuts != int64(scan.Requests) {
		t.Fatalf("scan: %d fan-outs for %d requests", scan.FanOuts, scan.Requests)
	}

	mixed, err := RunShards(ShardsConfig{
		Shards: 2, Replicas: 2, Clients: 4, Requests: 32, Rows: 64,
		Workload: "mixed", HostIODelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("mixed: %v", err)
	}
	if mixed.GroupCommits == 0 || mixed.Writes == 0 {
		t.Fatalf("mixed: write tier idle: %+v", mixed)
	}
}
