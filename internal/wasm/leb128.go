package wasm

import (
	"errors"
	"fmt"
)

// LEB128 primitives shared by the decoder (and mirrored by the public
// wasmgen emitter).

var errLEBOverflow = errors.New("wasm: LEB128 value overflows target type")

// reader is a cursor over the module bytes.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) len() int   { return len(r.buf) - r.pos }
func (r *reader) done() bool { return r.pos >= len(r.buf) }

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, errUnexpectedEOF
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

var errUnexpectedEOF = errors.New("wasm: unexpected end of section or function")

// uleb decodes an unsigned LEB128 integer of at most bits bits.
func (r *reader) uleb(bits int) (uint64, error) {
	var result uint64
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		if shift+7 > uint(bits) && b>>(uint(bits)-shift) != 0 {
			return 0, fmt.Errorf("%w (u%d)", errLEBOverflow, bits)
		}
		result |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			return result, nil
		}
		shift += 7
		if shift >= uint(bits)+7 {
			return 0, fmt.Errorf("%w (u%d)", errLEBOverflow, bits)
		}
	}
}

// sleb decodes a signed LEB128 integer of at most bits bits.
func (r *reader) sleb(bits int) (int64, error) {
	var result int64
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		result |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			// Sign-extend.
			if shift < 64 && b&0x40 != 0 {
				result |= -1 << shift
			}
			// Range check.
			if bits < 64 {
				min := int64(-1) << (uint(bits) - 1)
				max := int64(1)<<(uint(bits)-1) - 1
				if result < min || result > max {
					return 0, fmt.Errorf("%w (s%d)", errLEBOverflow, bits)
				}
			}
			return result, nil
		}
		if shift >= 64+7 {
			return 0, fmt.Errorf("%w (s%d)", errLEBOverflow, bits)
		}
	}
}

func (r *reader) u32() (uint32, error) {
	v, err := r.uleb(32)
	return uint32(v), err
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendUleb appends an unsigned LEB128 encoding of v to dst. Exported for
// reuse by the wasmgen emitter.
func AppendUleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendSleb appends a signed LEB128 encoding of v to dst.
func AppendSleb(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		done := (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0)
		if !done {
			b |= 0x80
		}
		dst = append(dst, b)
		if done {
			return dst
		}
	}
}
