package wasm

// The AoT "compilation" step: a peephole pass that rewrites lowered code
// into fused superinstructions, standing in for wamrc's ahead-of-time
// translation. Fusion never crosses a branch-target boundary, so all
// control transfers stay valid after the rewrite; semantics are preserved
// exactly (in particular, float operations are never combined — no FMA
// contraction).

// fuseFunc returns a fused copy of fn; fn itself is not modified so the
// same Compiled module can back interpreter and AoT instances.
func fuseFunc(fn compiledFunc) compiledFunc {
	old := fn.code
	// Collect branch-target boundaries.
	isTarget := make([]bool, len(old)+1)
	isTarget[0] = true
	for _, i := range old {
		switch i.op {
		case opLoweredBr, opLoweredBrIf, opLoweredBrIfZ:
			isTarget[i.a] = true
		}
	}
	for _, tbl := range fn.brTables {
		for _, t := range tbl {
			isTarget[t.pc] = true
		}
	}

	free := func(pc int) bool { return pc < len(old) && !isTarget[pc] }
	isConst := func(op uint16) bool {
		switch op {
		case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
			return true
		}
		return false
	}
	isI32Cmp := func(op uint16) bool {
		switch byte(op) {
		case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU,
			OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
			return op < 0x100
		}
		return false
	}
	isF64Cmp := func(op uint16) bool {
		switch byte(op) {
		case OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge:
			return op < 0x100
		}
		return false
	}

	newCode := make([]ins, 0, len(old))
	remap := make([]int32, len(old)+1)
	pc := 0
	for pc < len(old) {
		remap[pc] = int32(len(newCode))
		i := old[pc]
		fused := false
		switch {
		// local.get x; i32.const c; i32.add; local.set x  =>  incr_local
		case i.op == uint16(OpLocalGet) &&
			free(pc+1) && old[pc+1].op == uint16(OpI32Const) &&
			free(pc+2) && old[pc+2].op == uint16(OpI32Add) &&
			free(pc+3) && old[pc+3].op == uint16(OpLocalSet) && old[pc+3].a == i.a:
			newCode = append(newCode, ins{op: opFusedIncrLocal, a: i.a, imm: old[pc+1].imm})
			pc += 4
			fused = true

		// i32 compare; br_if  =>  cmp_br (drop/keep must fit the packing)
		case isI32Cmp(i.op) && free(pc+1) && old[pc+1].op == opLoweredBrIf &&
			old[pc+1].b < 0x8000 && old[pc+1].c < 0x8000:
			br := old[pc+1]
			newCode = append(newCode, ins{
				op: opFusedCmpBr, a: br.a, b: int32(i.op),
				c: br.b<<16 | br.c,
			})
			pc += 2
			fused = true

		// i32.const s; i32.mul; i32.const b; i32.add; f64.load off
		//   =>  scale_base_f64_load  (the array-element address+access
		//        tail every A[i][j] read compiles to: one dispatch, one
		//        bounds check, one EPC touch)
		case i.op == uint16(OpI32Const) &&
			free(pc+1) && old[pc+1].op == uint16(OpI32Mul) &&
			free(pc+2) && old[pc+2].op == uint16(OpI32Const) &&
			free(pc+3) && old[pc+3].op == uint16(OpI32Add) &&
			free(pc+4) && old[pc+4].op == uint16(OpF64Load):
			newCode = append(newCode, ins{op: opFusedScaleBaseF64Load,
				a: int32(uint32(i.imm)), b: int32(uint32(old[pc+2].imm)), imm: old[pc+4].imm})
			pc += 5
			fused = true

		// i32.const s; i32.mul; i32.const b; i32.add  =>  scale_base
		// (address finalize ahead of a store, whose value is still to be
		// computed)
		case i.op == uint16(OpI32Const) &&
			free(pc+1) && old[pc+1].op == uint16(OpI32Mul) &&
			free(pc+2) && old[pc+2].op == uint16(OpI32Const) &&
			free(pc+3) && old[pc+3].op == uint16(OpI32Add):
			newCode = append(newCode, ins{op: opFusedScaleBase,
				a: int32(uint32(i.imm)), b: int32(uint32(old[pc+2].imm))})
			pc += 4
			fused = true

		// i32.const b; i32.add; f64.load off  =>  scale_base_f64_load
		// with unit scale (flattened 1-D element access)
		case i.op == uint16(OpI32Const) &&
			free(pc+1) && old[pc+1].op == uint16(OpI32Add) &&
			free(pc+2) && old[pc+2].op == uint16(OpF64Load):
			newCode = append(newCode, ins{op: opFusedScaleBaseF64Load,
				a: 1, b: int32(uint32(i.imm)), imm: old[pc+2].imm})
			pc += 3
			fused = true

		// local.get x; i32.const c; i32.mul  =>  local_mul_const
		// (the stride multiply opening every row-major address)
		case i.op == uint16(OpLocalGet) &&
			free(pc+1) && old[pc+1].op == uint16(OpI32Const) &&
			free(pc+2) && old[pc+2].op == uint16(OpI32Mul):
			newCode = append(newCode, ins{op: opFusedLocalMulC, a: i.a, imm: old[pc+1].imm})
			pc += 3
			fused = true

		// local.get a; local.get b  =>  local_get2
		case i.op == uint16(OpLocalGet) && free(pc+1) && old[pc+1].op == uint16(OpLocalGet):
			newCode = append(newCode, ins{op: opFusedLocalGet2, a: i.a, b: old[pc+1].a})
			pc += 2
			fused = true

		// local.get a; const c  =>  local_get_const
		case i.op == uint16(OpLocalGet) && free(pc+1) && isConst(old[pc+1].op):
			newCode = append(newCode, ins{op: opFusedLocalGetC, a: i.a, imm: old[pc+1].imm})
			pc += 2
			fused = true

		// local.get a; f64.load off  =>  f64_load_local
		case i.op == uint16(OpLocalGet) && free(pc+1) && old[pc+1].op == uint16(OpF64Load):
			newCode = append(newCode, ins{op: opFusedF64LoadLocal, a: i.a, imm: old[pc+1].imm})
			pc += 2
			fused = true

		// local.get a; i32.load off  =>  i32_load_local
		case i.op == uint16(OpLocalGet) && free(pc+1) && old[pc+1].op == uint16(OpI32Load):
			newCode = append(newCode, ins{op: opFusedI32LoadLocal, a: i.a, imm: old[pc+1].imm})
			pc += 2
			fused = true

		// local.get a; i32.add  =>  add_local (folding an index term into
		// the running address)
		case i.op == uint16(OpLocalGet) && free(pc+1) && old[pc+1].op == uint16(OpI32Add):
			newCode = append(newCode, ins{op: opFusedAddLocal, a: i.a})
			pc += 2
			fused = true

		// local.get a; f64.store off  =>  f64_store_local
		case i.op == uint16(OpLocalGet) && free(pc+1) && old[pc+1].op == uint16(OpF64Store):
			newCode = append(newCode, ins{op: opFusedF64StoreLocal,
				a: int32(uint32(old[pc+1].imm)), b: i.a})
			pc += 2
			fused = true

		// f64.const c; f64.store off  =>  f64_store_const (array init
		// loops)
		case i.op == uint16(OpF64Const) && free(pc+1) && old[pc+1].op == uint16(OpF64Store):
			newCode = append(newCode, ins{op: opFusedF64StoreConst,
				a: int32(uint32(old[pc+1].imm)), imm: i.imm})
			pc += 2
			fused = true

		// f64.add; f64.store off  =>  f64_add_store (the tail of every
		// A[i][j] += v accumulation)
		case i.op == uint16(OpF64Add) && free(pc+1) && old[pc+1].op == uint16(OpF64Store):
			newCode = append(newCode, ins{op: opFusedF64AddStore,
				a: int32(uint32(old[pc+1].imm))})
			pc += 2
			fused = true

		// f64.mul; f64.add  =>  f64_mul_add. Both roundings are kept at
		// execution, so this is not an FMA contraction — semantics are
		// bit-identical to the unfused pair.
		case i.op == uint16(OpF64Mul) && free(pc+1) && old[pc+1].op == uint16(OpF64Add):
			newCode = append(newCode, ins{op: opFusedF64MulAdd})
			pc += 2
			fused = true

		// f64.load off; f64 compare  =>  f64_load_cmp
		case i.op == uint16(OpF64Load) && free(pc+1) && isF64Cmp(old[pc+1].op):
			newCode = append(newCode, ins{op: opFusedF64LoadCmp,
				b: int32(old[pc+1].op), imm: i.imm})
			pc += 2
			fused = true

		// i32.const c; i32.mul  =>  i32_mul_const
		case i.op == uint16(OpI32Const) && free(pc+1) && old[pc+1].op == uint16(OpI32Mul):
			newCode = append(newCode, ins{op: opFusedI32MulConst, imm: i.imm})
			pc += 2
			fused = true

		// i32.const c; i32.add  =>  i32_add_const
		case i.op == uint16(OpI32Const) && free(pc+1) && old[pc+1].op == uint16(OpI32Add):
			newCode = append(newCode, ins{op: opFusedI32AddConst, imm: i.imm})
			pc += 2
			fused = true

		// i64.const c; i64.add  =>  i64_add_const
		case i.op == uint16(OpI64Const) && free(pc+1) && old[pc+1].op == uint16(OpI64Add):
			newCode = append(newCode, ins{op: opFusedI64AddConst, imm: i.imm})
			pc += 2
			fused = true
		}
		if !fused {
			newCode = append(newCode, i)
			pc++
		}
	}
	remap[len(old)] = int32(len(newCode))

	// Remap branch targets (all of which are boundaries by construction).
	for idx := range newCode {
		switch newCode[idx].op {
		case opLoweredBr, opLoweredBrIf, opLoweredBrIfZ, opFusedCmpBr:
			newCode[idx].a = remap[newCode[idx].a]
		}
	}
	newTables := make([][]brTarget, len(fn.brTables))
	for ti, tbl := range fn.brTables {
		nt := make([]brTarget, len(tbl))
		for i, t := range tbl {
			nt[i] = brTarget{pc: remap[t.pc], drop: t.drop, keep: t.keep}
		}
		newTables[ti] = nt
	}
	out := fn
	out.code = newCode
	out.brTables = newTables
	return out
}
