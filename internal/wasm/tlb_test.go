package wasm_test

import (
	"testing"

	"twine/internal/wasm"
	"twine/wasmgen"
)

const epcPage = 4096 // the EPC-TLB caching granularity (sgx.PageSize)

// countingHook returns a touch hook that tallies calls and bytes.
func countingHook(calls *int, spans *[][2]int64) wasm.TouchFunc {
	return func(off, n int64) {
		*calls++
		if spans != nil {
			*spans = append(*spans, [2]int64{off, n})
		}
	}
}

func newTestMemory(t *testing.T, pages uint32) *wasm.Memory {
	t.Helper()
	m, err := wasm.NewMemory(wasm.Limits{Min: pages, Max: 4 * pages, HasMax: true}, 0)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	return m
}

// TestTLBElidesRepeatedTouches is the core TLB property: with a
// generation word installed, only the first access of a page reaches the
// hook; the rest are proven no-ops.
func TestTLBElidesRepeatedTouches(t *testing.T) {
	m := newTestMemory(t, 1)
	var calls int
	gen := uint64(1)
	m.SetTouchGen(countingHook(&calls, nil), &gen)

	for i := uint32(0); i < 100; i++ {
		if err := m.Range(i*8, 8); err != nil {
			t.Fatalf("Range: %v", err)
		}
	}
	if calls != 1 {
		t.Errorf("hook calls = %d for 100 same-page accesses, want 1", calls)
	}

	// A different page in the same generation costs exactly one more.
	if err := m.Range(epcPage+8, 8); err != nil {
		t.Fatalf("Range: %v", err)
	}
	if calls != 2 {
		t.Errorf("hook calls = %d after second page, want 2", calls)
	}
}

// TestTLBGenerationInvalidates: moving the generation word re-arms every
// cached page.
func TestTLBGenerationInvalidates(t *testing.T) {
	m := newTestMemory(t, 1)
	var calls int
	gen := uint64(1)
	m.SetTouchGen(countingHook(&calls, nil), &gen)

	_ = m.Range(0, 8)
	_ = m.Range(8, 8)
	if calls != 1 {
		t.Fatalf("hook calls = %d, want 1", calls)
	}
	gen++ // the provider swept or evicted
	_ = m.Range(16, 8)
	if calls != 2 {
		t.Errorf("hook calls = %d after generation bump, want 2", calls)
	}
	_ = m.Range(24, 8)
	if calls != 2 {
		t.Errorf("hook calls = %d, want 2 (page re-cached at new generation)", calls)
	}
}

// TestTLBMultiPageSpansForwarded: spans crossing a page boundary are
// never cached and always reach the hook unchanged, preserving the
// provider's view of bulk accesses.
func TestTLBMultiPageSpansForwarded(t *testing.T) {
	m := newTestMemory(t, 1)
	var calls int
	var spans [][2]int64
	gen := uint64(1)
	m.SetTouchGen(countingHook(&calls, &spans), &gen)

	for i := 0; i < 3; i++ {
		if err := m.Range(epcPage-4, 8); err != nil {
			t.Fatalf("Range: %v", err)
		}
	}
	if calls != 3 {
		t.Errorf("hook calls = %d for 3 boundary-crossing accesses, want 3", calls)
	}
	for _, s := range spans {
		if s != [2]int64{epcPage - 4, 8} {
			t.Errorf("span %v reached the hook, want [%d 8]", s, epcPage-4)
		}
	}
}

// TestPlainTouchSeesEveryAccess: without a generation word the hook
// semantics are unchanged — every access calls it.
func TestPlainTouchSeesEveryAccess(t *testing.T) {
	m := newTestMemory(t, 1)
	var calls int
	m.SetTouch(countingHook(&calls, nil))
	for i := uint32(0); i < 10; i++ {
		_ = m.Range(0, 8)
	}
	if calls != 10 {
		t.Errorf("hook calls = %d, want 10 with plain SetTouch", calls)
	}
}

// TestTLBThroughInterpreter checks the elision end to end: guest loads
// and stores in a hot loop must reach the hook once per page, under both
// engines.
func TestTLBThroughInterpreter(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		m.Memory(1, 1)
		// sum += mem[i*8] for i in 0..512, all within page 0..1.
		f := m.Func(wasmgen.Sig().Returns(wasmgen.F64))
		i, sum := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.F64)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(i).I32Const(512).I32GeS().BrIf(1)
		f.LocalGet(sum)
		f.LocalGet(i).I32Const(8).I32Mul().F64Load(0)
		f.F64Add().LocalSet(sum)
		f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(sum)
		f.End()
		m.Export("run", f)

		mod, err := wasm.Decode(m.Bytes())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		c, err := wasm.Compile(mod)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		var calls int
		gen := uint64(7)
		in, err := wasm.Instantiate(c, nil, wasm.Config{
			Engine:   e,
			Touch:    countingHook(&calls, nil),
			TouchGen: &gen,
		})
		if err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		calls = 0
		if _, err := in.Invoke("run"); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		// 512 8-byte loads cover exactly one 4 KiB page... plus the first
		// byte of the next (offset 4088 + 8 ends at 4096; offset 4088 is
		// in page 0). 512*8 = 4096 bytes = page 0 only.
		if calls != 1 {
			t.Errorf("engine %v: hook calls = %d for 512 same-page loads, want 1", e, calls)
		}
	})
}

// TestGrowReturnsOldPagesAndZeroFills covers the spec behaviour across
// the in-place and reallocating growth paths.
func TestGrowReturnsOldPagesAndZeroFills(t *testing.T) {
	m := newTestMemory(t, 1) // min 1, max 4
	b, err := m.Bytes(0, 8)
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	copy(b, "westwind")

	if got := m.Grow(1); got != 1 {
		t.Fatalf("Grow(1) = %d, want 1", got)
	}
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", m.Pages())
	}
	// Old data survives growth.
	if s, _ := m.ReadString(0, 8); s != "westwind" {
		t.Errorf("data after grow = %q", s)
	}
	// The grown region reads as zero.
	v, err := m.ReadU64(wasm.PageSize + 8)
	if err != nil {
		t.Fatalf("ReadU64 in grown region: %v", err)
	}
	if v != 0 {
		t.Errorf("grown region = %#x, want 0", v)
	}

	if got := m.Grow(2); got != 2 {
		t.Fatalf("Grow(2) = %d, want 2", got)
	}
	if s, _ := m.ReadString(0, 8); s != "westwind" {
		t.Errorf("data after second grow = %q", s)
	}
	// At the limit now; any further growth must fail without side
	// effects.
	if got := m.Grow(1); got != -1 {
		t.Errorf("Grow past max = %d, want -1", got)
	}
	if m.Pages() != 4 {
		t.Errorf("Pages after failed grow = %d, want 4", m.Pages())
	}
}

// TestGrowKeepsTouchAndTLBConsistent: after growth the hook still fires
// for the new region, and pages cached before the grow stay elided (the
// guest→provider page mapping is unchanged by growth).
func TestGrowKeepsTouchAndTLBConsistent(t *testing.T) {
	m := newTestMemory(t, 1)
	var calls int
	gen := uint64(1)
	m.SetTouchGen(countingHook(&calls, nil), &gen)

	_ = m.Range(0, 8) // cache page 0
	if calls != 1 {
		t.Fatalf("hook calls = %d, want 1", calls)
	}
	if got := m.Grow(1); got != 1 {
		t.Fatalf("Grow = %d", got)
	}
	// Old page still cached...
	_ = m.Range(8, 8)
	if calls != 1 {
		t.Errorf("hook calls = %d after grow, want 1 (page 0 still cached)", calls)
	}
	// ...and the new region is charged on first use.
	if err := m.Range(wasm.PageSize, 8); err != nil {
		t.Fatalf("Range in grown region: %v", err)
	}
	if calls != 2 {
		t.Errorf("hook calls = %d, want 2 (new page charged)", calls)
	}
}

// TestGrowZeroDelta is the degenerate case: memory.grow 0 reports the
// current size and changes nothing.
func TestGrowZeroDelta(t *testing.T) {
	m := newTestMemory(t, 2)
	if got := m.Grow(0); got != 2 {
		t.Errorf("Grow(0) = %d, want 2", got)
	}
	if m.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", m.Pages())
	}
}
