package wasm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"twine/wasmgen"
)

// fuzz_tier_test.go — the cross-tier differential fuzzer (PR 7).
//
// FuzzTierDifferential decodes the fuzz input as a little program spec,
// builds a structured module from it (counted loops over affine f64
// walks, i32/i64 arithmetic with tee/set chains, br_table ladders,
// masked and deliberately-wild memory accesses), and runs it under all
// four engines against a fake EPC pager. Every observable must agree
// bit-for-bit with the interpreter: result slots, trap kind AND message,
// final linear memory, globals, the exact touch-hook call sequence, and
// the pager's fault/eviction counters. InsRetired is the one observable
// that legitimately differs per tier and is not compared.
//
// The generator is deliberately biased toward the superblock tier's
// attack surface: innermost self-loops that the idiom matcher accepts
// (and near-misses it must bail on), unaligned accesses that disqualify
// the raw trip guard, loop limits that sit at the i32 wrap boundary, and
// pager capacities small enough that guards keep failing mid-trip.

// fakePager is a deterministic FIFO page cache standing in for the SGX
// EPC: a touch to a non-resident page faults it in, evicting (and
// bumping the paging generation, which re-arms every EPC-TLB entry) when
// over capacity. It records the full hook-call sequence.
type fakePager struct {
	gen      uint64 // pointed at by Config.TouchGen in guarded mode
	capPages int
	resident []int64
	faults   int64
	evicts   int64
	log      [][2]int64
}

func (p *fakePager) touch(off, n int64) {
	p.log = append(p.log, [2]int64{off, n})
	for pg := off >> 12; pg <= (off+n-1)>>12; pg++ {
		hit := false
		for _, q := range p.resident {
			if q == pg {
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		p.faults++
		if len(p.resident) >= p.capPages {
			p.resident = p.resident[1:]
			p.evicts++
			p.gen++
		}
		p.resident = append(p.resident, pg)
	}
}

// progReader consumes the fuzz input as a byte stream; reads past the
// end return zero so every input decodes to some program.
type progReader struct {
	b []byte
	i int
}

func (r *progReader) u8() byte {
	if r.i >= len(r.b) {
		return 0
	}
	v := r.b[r.i]
	r.i++
	return v
}

func (r *progReader) u16() uint16 {
	return uint16(r.u8()) | uint16(r.u8())<<8
}

func (r *progReader) done() bool { return r.i >= len(r.b) }

// buildTierModule turns a program spec into module bytes. The module
// exports "run" () -> i64 over a 64 KiB memory seeded with
// deterministic pseudo-random f64s in its first 24 KiB.
func buildTierModule(data []byte) []byte {
	r := &progReader{b: data}
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	gI := m.Global(wasmgen.I64, true, 7)
	gF := m.Global(wasmgen.F64, true, 0x3FF8000000000000) // 1.5

	// Seed the data region so loads see varied, reproducible values.
	seed := make([]byte, 24<<10)
	x := uint32(0x9E3779B9) ^ uint32(len(data))
	for i := range seed {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		seed[i] = byte(x)
	}
	// Clear f64 exponent bytes so the region decodes to finite smallish
	// floats rather than NaN/Inf soup (NaNs still enter via arithmetic).
	for i := 7; i < len(seed); i += 8 {
		seed[i] &= 0x3F
	}
	m.Data(0, seed)

	f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
	var L [4]uint32
	for i := range L {
		L[i] = f.AddLocal(wasmgen.I32)
	}
	acc := f.AddLocal(wasmgen.I64)
	facc := f.AddLocal(wasmgen.F64)
	ftmp := f.AddLocal(wasmgen.F64)

	// forLoop emits the canonical counted-loop shape the register tier
	// lowers to a brcmp header and the superblock tier traces.
	forLoop := func(v uint32, limit func(), step int32, body func()) {
		f.I32Const(0)
		f.LocalSet(v)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(v)
		limit()
		f.I32GeS()
		f.BrIf(1)
		body()
		f.LocalGet(v)
		f.I32Const(step)
		f.I32Add()
		f.LocalSet(v)
		f.Br(0)
		f.End()
		f.End()
	}

	// emitAddr pushes base + 8*(v*stride + c), the affine line the
	// register tier folds into its affine load/store forms.
	emitAddr := func(v uint32, stride, c, base int32) {
		f.LocalGet(v)
		if stride != 1 {
			f.I32Const(stride)
			f.I32Mul()
		}
		if c != 0 {
			f.I32Const(c)
			f.I32Add()
		}
		f.I32Const(8)
		f.I32Mul()
		f.I32Const(base)
		f.I32Add()
	}

	// emitI32Expr pushes one i32, depth-bounded, reading only the loop
	// pool (never writing it — induction discipline stays intact).
	var emitI32Expr func(depth int)
	emitI32Expr = func(depth int) {
		op := r.u8()
		if depth <= 0 || op < 0x40 {
			switch op % 3 {
			case 0:
				f.LocalGet(L[r.u8()%4])
			case 1:
				f.I32Const(int32(int16(r.u16())))
			default:
				f.LocalGet(L[r.u8()%4])
				f.I32Const(int32(r.u8()%29) + 1)
				f.I32RemU() // keep magnitudes small for shift/div fodder
			}
			return
		}
		emitI32Expr(depth - 1)
		switch op % 14 {
		case 0:
			f.I32Eqz()
		case 1:
			f.I32Clz()
		case 2:
			f.I32Popcnt()
		case 3:
			emitI32Expr(depth - 1)
			f.I32Add()
		case 4:
			emitI32Expr(depth - 1)
			f.I32Sub()
		case 5:
			emitI32Expr(depth - 1)
			f.I32Mul()
		case 6:
			emitI32Expr(depth - 1)
			f.I32Xor()
		case 7:
			emitI32Expr(depth - 1)
			f.I32Const(31)
			f.I32And()
			f.I32ShrU()
		case 8:
			emitI32Expr(depth - 1)
			f.I32Const(31)
			f.I32And()
			f.I32Shl()
		case 9:
			emitI32Expr(depth - 1)
			f.I32LtS()
		case 10:
			emitI32Expr(depth - 1)
			f.I32GeU()
		case 11, 12:
			// Division: usually with a |1 guard; occasionally raw, so
			// some inputs trap and exercise divide-trap parity mid-loop.
			emitI32Expr(depth - 1)
			if r.u8() != 0xFF {
				f.I32Const(1)
				f.I32Or()
			}
			if op%2 == 0 {
				f.I32DivS()
			} else {
				f.I32RemU()
			}
		default:
			emitI32Expr(depth - 1)
			f.I32Rotl()
		}
	}

	// Statement emitters -------------------------------------------------

	// stmtAffineLoop is the superblock-idiom generator: one innermost
	// loop whose body is an affine f64 walk in one of the matcher's
	// template shapes — or a near-miss (unaligned base, i32 store mixed
	// in) that must bail to step traces or the register interpreter.
	stmtAffineLoop := func() {
		n := int32(r.u8()%48) + 2
		base := int32(r.u16()%2048) * 8
		abase := int32(r.u16()%2048) * 8
		bbase := int32(r.u16()%2048) * 8
		if r.u8()&3 == 0 {
			// Park the walk just under an EPC-TLB page boundary so its
			// address line straddles pages — the regime where the trip
			// guard's alignment/crossing reasoning earns its keep.
			base = (int32(r.u8()%5)+1)*4096 - 8*int32(r.u8()%8)
		}
		stride := int32(r.u8()%3) + 1
		off := int32(r.u8() % 4)
		if r.u8()&3 == 0 {
			base += 4 // unaligned: raw trip guard must refuse, checked path runs
		}
		limit := func() { f.I32Const(n) }
		if r.u8()&3 == 0 {
			f.I32Const(n)
			f.LocalSet(L[3])
			limit = func() { f.LocalGet(L[3]) }
		}
		variant := r.u8() % 6
		trips := 1
		if r.u8()&1 == 0 {
			// Run the walk twice: the first trip faults the pages in, so
			// the second reaches the trip guard with a hot EPC-TLB — the
			// only way the raw path runs under a touch hook.
			trips = 2
		}
		emitWalk := func() {
			forLoop(L[0], limit, 1, func() {
				switch variant {
				case 0: // fill
					emitAddr(L[0], stride, off, base)
					f.F64Const(float64(int8(r.u8())) / 4)
					f.F64Store(0)
				case 1: // copy
					emitAddr(L[0], stride, off, base)
					emitAddr(L[0], 1, 0, abase)
					f.F64Load(0)
					f.F64Store(0)
				case 2: // bin op of two loads
					emitAddr(L[0], stride, off, base)
					emitAddr(L[0], 1, 0, abase)
					f.F64Load(0)
					emitAddr(L[0], stride, 0, bbase)
					f.F64Load(0)
					switch r.u8() % 5 {
					case 0:
						f.F64Add()
					case 1:
						f.F64Sub()
					case 2:
						f.F64Mul()
					case 3:
						f.F64Min()
					default:
						f.F64Max()
					}
					f.F64Store(0)
				case 3: // fma update: dst += a*b (scaled half the time)
					emitAddr(L[0], stride, off, base)
					emitAddr(L[0], stride, off, base)
					f.F64Load(0)
					if r.u8()&1 == 0 {
						f.F64Const(1.5)
						emitAddr(L[0], 1, 0, abase)
						f.F64Load(0)
						f.F64Mul()
					} else {
						emitAddr(L[0], 1, 0, abase)
						f.F64Load(0)
					}
					emitAddr(L[0], stride, 0, bbase)
					f.F64Load(0)
					f.F64Mul()
					if r.u8()&1 == 0 {
						f.F64Add()
					} else {
						f.F64Sub()
					}
					f.F64Store(0)
				case 4: // scaled sum
					emitAddr(L[0], stride, off, base)
					emitAddr(L[0], 1, 0, abase)
					f.F64Load(0)
					emitAddr(L[0], 1, 0, bbase)
					f.F64Load(0)
					f.F64Add()
					f.F64Const(0.25)
					f.F64Mul()
					f.F64Store(0)
				default: // accumulate, no store
					f.LocalGet(facc)
					emitAddr(L[0], stride, off, abase)
					f.F64Load(0)
					f.F64Add()
					f.LocalSet(facc)
				}
			})
		}
		for k := 0; k < trips; k++ {
			emitWalk()
		}
		f.LocalGet(facc)
		f.I32Const(base & 0x3FF8)
		f.F64Load(0)
		f.F64Add()
		f.LocalSet(facc)
	}

	// stmtIntLoop: i32/i64 arithmetic folded into acc through a tee/set
	// chain — the dead-store and materialisation-cycle surface.
	stmtIntLoop := func() {
		n := int32(r.u8()%32) + 1
		forLoop(L[1], func() { f.I32Const(n) }, int32(r.u8()%3)+1, func() {
			// tee chain: L2 = tee(expr), expr uses L2, then overwrite L2.
			emitI32Expr(2)
			f.LocalTee(L[2])
			f.LocalGet(L[2])
			f.I32Const(3)
			f.I32Mul()
			f.I32Add()
			f.LocalSet(L[2])
			f.LocalGet(acc)
			f.LocalGet(L[2])
			f.I64ExtendI32S()
			f.I64Const(int64(r.u16()) | 1)
			f.I64Mul()
			f.I64Xor()
			f.LocalSet(acc)
			if r.u8()&3 == 0 { // swap-shaped copy cycle
				f.LocalGet(L[2])
				f.LocalGet(L[1])
				f.LocalSet(L[2])
				f.Drop()
			}
		})
	}

	// stmtStencilLoop: a 2D jacobi-shaped walk. The neighbour column
	// (j±1) is computed as a standalone i32 temp before being combined
	// with a runtime row term, so after LVN the loop's back-edge becomes
	// "copy L, src" instead of the canonical addimm — the copy-tail
	// idiom path. Row is derived from a local at runtime to keep the
	// folder from collapsing the address line to pure constants.
	stmtStencilLoop := func() {
		n := int32(r.u8()%24) + 2
		const rowStride = 64
		abase := int32(r.u16()%1024) * 8
		bbase := int32(r.u16()%1024) * 8
		if r.u8()&3 == 0 {
			// Park the store line just under an EPC-TLB page boundary.
			bbase = (int32(r.u8()%5)+1)*4096 - 8*int32(r.u8()%4)
		}
		trips := 1
		if r.u8()&1 == 0 {
			trips = 2
		}
		// row = (L1 % 6) + 1, a runtime value in [1, 6].
		f.LocalGet(L[1])
		f.I32Const(6)
		f.I32RemU()
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(L[3])
		addr2 := func(base, colDelta int32) {
			f.LocalGet(L[3])
			f.I32Const(rowStride)
			f.I32Mul()
			f.LocalGet(L[0])
			if colDelta != 0 {
				f.I32Const(colDelta)
				f.I32Add()
			}
			f.I32Add()
			f.I32Const(8)
			f.I32Mul()
			f.I32Const(base)
			f.I32Add()
		}
		for k := 0; k < trips; k++ {
			forLoop(L[0], func() { f.I32Const(n) }, 1, func() {
				addr2(bbase, 0)
				f.F64Const(0.25)
				addr2(abase, 0)
				f.F64Load(0)
				addr2(abase, -1)
				f.F64Load(0)
				f.F64Add()
				addr2(abase, 1)
				f.F64Load(0)
				f.F64Add()
				f.F64Mul()
				f.F64Store(0)
			})
		}
		f.LocalGet(facc)
		f.I32Const(bbase & 0x3FF8)
		f.F64Load(0)
		f.F64Add()
		f.LocalSet(facc)
	}

	// stmtBrTable: a four-deep block ladder dispatched by br_table, each
	// exit depth stamping acc differently (fallthrough included).
	stmtBrTable := func() {
		sel := r.u8()
		f.Block(wasmgen.BlockVoid)
		f.Block(wasmgen.BlockVoid)
		f.Block(wasmgen.BlockVoid)
		f.Block(wasmgen.BlockVoid)
		f.LocalGet(L[r.u8()%4])
		f.I32Const(int32(sel % 7))
		f.I32Add()
		f.BrTable(uint32(r.u8()%4), uint32(r.u8()%4), uint32(r.u8()%4), uint32(r.u8()%4))
		f.End()
		f.LocalGet(acc)
		f.I64Const(0x1111)
		f.I64Add()
		f.LocalSet(acc)
		f.End()
		f.LocalGet(acc)
		f.I64Const(0x2222)
		f.I64Xor()
		f.LocalSet(acc)
		f.End()
		f.LocalGet(acc)
		f.I64Const(3)
		f.I64Mul()
		f.LocalSet(acc)
		f.End()
	}

	// stmtMemWalk: i32 store/load walk (step-trace fodder: stores of
	// non-f64 width never match an idiom) plus a global round-trip.
	stmtMemWalk := func() {
		n := int32(r.u8()%24) + 1
		base := int32(r.u16() % 16000)
		forLoop(L[2], func() { f.I32Const(n) }, 1, func() {
			f.LocalGet(L[2])
			f.I32Const(4)
			f.I32Mul()
			f.I32Const(base)
			f.I32Add()
			emitI32Expr(1)
			f.I32Store(0)
		})
		f.GlobalGet(gI)
		f.LocalGet(acc)
		f.I64Add()
		f.GlobalSet(gI)
		f.I32Const(base)
		f.I32Load(0)
		f.I64ExtendI32U()
		f.LocalGet(acc)
		f.I64Add()
		f.LocalSet(acc)
	}

	// stmtFloatMix: f64 expression with conversions; the truncation is
	// usually clamped but sometimes raw, so conversion traps get parity
	// coverage too.
	stmtFloatMix := func() {
		f.LocalGet(facc)
		f.F64Const(float64(int8(r.u8())))
		f.F64Add()
		f.GlobalGet(gF)
		f.F64Mul()
		f.LocalTee(ftmp)
		f.F64Abs()
		f.F64Sqrt()
		f.LocalGet(ftmp)
		f.F64Min()
		f.LocalSet(facc)
		f.GlobalGet(gF)
		f.F64Const(1.0000001)
		f.F64Mul()
		f.GlobalSet(gF)
		f.LocalGet(facc)
		if r.u8() != 0xFE {
			f.F64Const(1e9)
			f.F64Min()
			f.F64Const(-1e9)
			f.F64Max()
		}
		f.I32TruncF64S()
		f.I64ExtendI32S()
		f.LocalGet(acc)
		f.I64Rotl()
		f.LocalSet(acc)
	}

	// stmtWild: one unmasked access — out-of-bounds trap parity, with
	// the faulting address (and so the trap message) input-controlled.
	stmtWild := func() {
		f.I32Const(int32(uint32(r.u16()) << 4))
		f.F64Load(0)
		f.LocalGet(facc)
		f.F64Add()
		f.LocalSet(facc)
	}

	for s := 0; s < 5 && !r.done(); s++ {
		switch r.u8() % 8 {
		case 0, 1, 2: // bias toward the superblock surface
			stmtAffineLoop()
		case 3:
			stmtIntLoop()
		case 4:
			stmtBrTable()
		case 5:
			stmtMemWalk()
		case 6:
			stmtFloatMix()
		default:
			switch r.u8() & 3 {
			case 0:
				stmtWild()
			case 1:
				stmtStencilLoop()
			default:
				stmtAffineLoop()
			}
		}
	}

	// Checksum: fold acc, facc and a memory word into the result.
	f.LocalGet(acc)
	f.LocalGet(facc)
	f.I64ReinterpretF64()
	f.I64Xor()
	f.GlobalGet(gI)
	f.I64Add()
	f.I32Const(64)
	f.I64Load(0)
	f.I64Xor()
	f.End()
	m.Export("run", f)
	return m.Bytes()
}

// tierOutcome is everything a tier run observes.
type tierOutcome struct {
	res     []uint64
	trap    *Trap
	mem     []byte
	globals []uint64
	faults  int64
	evicts  int64
	log     [][2]int64
}

// runTierOnce executes the compiled module under one engine with a
// fresh fake pager. mode: 0 = no hook, 1 = plain hook (NoEPCTLB
// ablation), 2 = hook + generation word (the production EPC-TLB shape).
func runTierOnce(c *Compiled, eng Engine, mode byte, capPages int) (tierOutcome, error) {
	var out tierOutcome
	p := &fakePager{gen: 1, capPages: capPages}
	cfg := Config{Engine: eng}
	switch mode {
	case 0:
	case 1:
		cfg.Touch = p.touch
	default:
		cfg.Touch = p.touch
		cfg.TouchGen = &p.gen
	}
	in, err := Instantiate(c, nil, cfg)
	if err != nil {
		return out, err
	}
	res, err := in.Invoke("run")
	if err != nil {
		var tr *Trap
		if !errors.As(err, &tr) {
			return out, err
		}
		out.trap = tr
	}
	out.res = res
	out.mem = in.mem.data
	out.globals = in.globals
	out.faults, out.evicts, out.log = p.faults, p.evicts, p.log
	return out, nil
}

// diffOutcome reports the first observable on which b diverges from a,
// or "" when they agree bit-for-bit.
func diffOutcome(a, b tierOutcome) string {
	switch {
	case (a.trap == nil) != (b.trap == nil):
		return fmt.Sprintf("trap presence: %v vs %v", a.trap, b.trap)
	case a.trap != nil && (a.trap.Kind != b.trap.Kind || a.trap.Msg != b.trap.Msg):
		return fmt.Sprintf("trap identity: %q vs %q", a.trap.Error(), b.trap.Error())
	case len(a.res) != len(b.res):
		return fmt.Sprintf("result arity: %d vs %d", len(a.res), len(b.res))
	case a.faults != b.faults || a.evicts != b.evicts:
		return fmt.Sprintf("paging: faults %d/%d evicts %d/%d", a.faults, b.faults, a.evicts, b.evicts)
	case len(a.log) != len(b.log):
		return fmt.Sprintf("touch log length: %d vs %d", len(a.log), len(b.log))
	case !bytes.Equal(a.mem, b.mem):
		for i := range a.mem {
			if a.mem[i] != b.mem[i] {
				return fmt.Sprintf("memory byte %d: %#x vs %#x", i, a.mem[i], b.mem[i])
			}
		}
	}
	for i := range a.res {
		if a.res[i] != b.res[i] {
			return fmt.Sprintf("result[%d]: %#x vs %#x", i, a.res[i], b.res[i])
		}
	}
	for i := range a.globals {
		if a.globals[i] != b.globals[i] {
			return fmt.Sprintf("global[%d]: %#x vs %#x", i, a.globals[i], b.globals[i])
		}
	}
	for i := range a.log {
		if a.log[i] != b.log[i] {
			return fmt.Sprintf("touch[%d]: %v vs %v", i, a.log[i], b.log[i])
		}
	}
	return ""
}

// checkTierDifferential is the fuzz body: build, run under all four
// engines in the input-selected pager mode, and require every tier to
// match the interpreter on every observable.
func checkTierDifferential(t *testing.T, data []byte) {
	if len(data) < 4 {
		return
	}
	mode := data[0] % 3
	capPages := int(data[1]%12) + 2
	mb := buildTierModule(data[2:])
	mod, err := Decode(mb)
	if err != nil {
		t.Fatalf("generated module does not decode: %v", err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatalf("generated module does not compile: %v", err)
	}
	base, err := runTierOnce(c, EngineInterp, mode, capPages)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	for _, eng := range []Engine{EngineAOT, EngineRegister, EngineSuperblock} {
		got, err := runTierOnce(c, eng, mode, capPages)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if d := diffOutcome(base, got); d != "" {
			t.Errorf("%v diverged from interp (mode=%d cap=%d): %s", eng, mode, capPages, d)
		}
	}
}

func FuzzTierDifferential(f *testing.F) {
	// Seeds replaying the three register-tier miscompile regressions
	// (kept as corpus files too, see testdata/fuzz/FuzzTierDifferential):
	// aliasing between affine accesses whose bases collide, tee/set
	// chains whose dead stores must not be dropped, and swap-shaped copy
	// cycles that force the materialisation order to be right.
	f.Add([]byte(seedAffineAlias))
	f.Add([]byte(seedTeeSetChain))
	f.Add([]byte(seedCopyCycle))
	f.Add([]byte(seedStencilCopyTail))
	// Broad structured seeds: every statement kind, all pager modes.
	f.Add([]byte{2, 4, 0, 10, 0, 0, 0x40, 0, 0x40, 0, 1, 2, 0, 0, 3, 7})
	f.Add([]byte{1, 2, 3, 30, 9, 9, 4, 4, 5, 5, 2, 1, 0, 3, 0xFF, 0x10})
	f.Add([]byte{0, 8, 4, 0x51, 0x12, 0x99, 0x43, 0x21, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{2, 1, 5, 0x80, 0x01, 6, 0x44, 0x55, 0x66, 0x77, 7, 0, 2, 0x20, 0x40, 0x08})
	f.Add([]byte{2, 11, 7, 0xFE, 0xFF, 0xFF, 3, 0x41, 0x42, 0x43, 0x44, 0x45, 6, 0xFE, 2, 2})
	f.Fuzz(checkTierDifferential)
}

// Seed specs for the three PR 4 regressions, decoded by buildTierModule.
const (
	// seedAffineAlias drives stmtAffineLoop twice with identical base
	// words so the destination of the first walk aliases the source of
	// the second — the shape behind the affine-CSE aliasing miscompile.
	seedAffineAlias = "\x02\x06\x00\x10\x40\x00\x40\x00\x40\x00\x01\x00\x01\x03\x00" +
		"\x01\x10\x40\x00\x40\x00\x40\x00\x01\x00\x01\x02\x02"
	// seedTeeSetChain drives stmtIntLoop: LocalTee feeding a LocalSet of
	// the same register — the dead-store elimination regression.
	seedTeeSetChain = "\x01\x04\x03\x10\x02\x43\x01\x00\x00\x07\x00\x03\x04\x00\x03\x07\x01\x00"
	// seedCopyCycle drives stmtIntLoop's swap-shaped copy cycle — the
	// parallel-copy materialisation-cycle regression.
	seedCopyCycle = "\x02\x03\x03\x08\x01\x00\x01\x00\x11\x00\x00\x00\x03\x05\x00\x00\x00\x00"
	// seedStencilCopyTail drives stmtStencilLoop: a jacobi-shaped walk
	// whose LVN'd back-edge is "copy L, src" instead of addimm — the
	// superblock copy-tail idiom path (PR 7).
	seedStencilCopyTail = "\x02\x05\x07\x01\x16\x10\x00\x40\x00\x01\x00"
)

// TestTierDifferentialSeeds pins the seed corpus into the plain test
// run (go test executes f.Add seeds, but not files added later to
// testdata; this keeps both paths exercised without -fuzz).
func TestTierDifferentialSeeds(t *testing.T) {
	for i, s := range []string{seedAffineAlias, seedTeeSetChain, seedCopyCycle, seedStencilCopyTail} {
		t.Run(fmt.Sprintf("regression%d", i), func(t *testing.T) {
			checkTierDifferential(t, []byte(s))
		})
	}
}

// TestStencilSeedProducesCopyTail pins the generator↔matcher contract
// behind seedStencilCopyTail: the stencil statement must lower to loops
// whose back-edge is a copy (LVN reused the j+1 temp) and the matcher
// must still take them as idiom traces. If either side drifts — the
// register tier stops producing copy tails here, or the matcher stops
// accepting them — the fuzzer silently loses this surface; this test
// makes the loss loud.
func TestStencilSeedProducesCopyTail(t *testing.T) {
	prog := []byte(seedStencilCopyTail)[2:]
	mod, err := Decode(buildTierModule(prog))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	funcs := c.reg(false)
	fn := &funcs[mod.NumImportedFuncs]
	if !fn.reg {
		t.Fatal("stencil seed bailed to fused form")
	}
	copyTails := 0
	for pc := range fn.code {
		i := &fn.code[pc]
		if i.op == rOpBr && int(i.a) <= pc && fn.code[pc-1].op == rOpCopy {
			copyTails++
		}
	}
	if copyTails == 0 {
		t.Fatal("stencil seed produced no copy-tail back-edges; generator no longer covers the copy-tail path")
	}
	st := c.SuperStats(false)
	if st.Idioms < copyTails {
		t.Fatalf("copy-tail loops fell off the idiom path: %d copy tails but stats %+v", copyTails, st)
	}
}
