package wasm

import "math/bits"

// regops.go — opcode classification and translation-time evaluation for
// the register tier. The fold tables are integer-only and exclude every
// trapping operation: div/rem can trap on the value, and float arithmetic
// is never folded so that all float results come from the exact same
// runtime code paths on every tier (no chance of a compile-time rounding
// or NaN-bit divergence).

// regBinaryOp reports whether op is a plain wasm binary value opcode
// (two operands, one result) reused three-address by the register tier.
func regBinaryOp(op uint16) bool {
	if op >= 0x100 {
		return false
	}
	b := byte(op)
	switch {
	case b >= OpI32Eq && b <= OpI32GeU: // i32 compares
		return true
	case b >= OpI64Eq && b <= OpI64GeU: // i64 compares
		return true
	case b >= OpF32Eq && b <= OpF64Ge: // float compares
		return true
	case b >= OpI32Add && b <= OpI32Rotr:
		return true
	case b >= OpI64Add && b <= OpI64Rotr:
		return true
	case b >= OpF32Add && b <= OpF32Copysign:
		return true
	case b >= OpF64Add && b <= OpF64Copysign:
		return true
	}
	return false
}

// regUnaryOp reports whether op is a plain wasm unary value opcode
// (one operand, one result), including all conversions.
func regUnaryOp(op uint16) bool {
	if op >= 0x100 {
		return false
	}
	b := byte(op)
	switch {
	case b == OpI32Eqz || b == OpI64Eqz:
		return true
	case b >= OpI32Clz && b <= OpI32Popcnt:
		return true
	case b >= OpI64Clz && b <= OpI64Popcnt:
		return true
	case b >= OpF32Abs && b <= OpF32Sqrt:
		return true
	case b >= OpF64Abs && b <= OpF64Sqrt:
		return true
	case b >= OpI32WrapI64 && b <= OpI64Extend32S: // conversions + sign extends
		return true
	}
	return false
}

// regPure reports whether op's value depends only on its register
// operands (safe for local value numbering). Trapping ops are excluded so
// CSE can never elide a trap.
func regPure(op uint16) bool {
	if !regBinaryOp(op) && !regUnaryOp(op) {
		return false
	}
	switch byte(op) {
	case OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU,
		OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU,
		OpI32TruncF32S, OpI32TruncF32U, OpI32TruncF64S, OpI32TruncF64U,
		OpI64TruncF32S, OpI64TruncF32U, OpI64TruncF64S, OpI64TruncF64U:
		return false
	}
	return true
}

// regCommutative reports operand-order-insensitive ops (for LVN keys).
func regCommutative(op uint16) bool {
	switch byte(op) {
	case OpI32Add, OpI32Mul, OpI32And, OpI32Or, OpI32Xor, OpI32Eq, OpI32Ne,
		OpI64Add, OpI64Mul, OpI64And, OpI64Or, OpI64Xor, OpI64Eq, OpI64Ne:
		return op < 0x100
	}
	return false
}

// regRetargetable reports instructions whose dst (.a) can be redirected
// into a local register by the local.set peephole.
func regRetargetable(op uint16) bool {
	switch op {
	case rOpConst, rOpCopy, rOpGlobalGet, rOpSelect,
		rOpI32AddImm, rOpI32MulImm, rOpI64AddImm,
		rOpI32MulAdd, rOpI32MulAddII, rOpF64MulAdd, rOpF64MulImm,
		rOpLoad32U, rOpLoad64, rOpLoad8U, rOpLoad16U, rOpLoad8S32,
		rOpLoad16S32, rOpLoad8S64, rOpLoad16S64, rOpLoad32S64,
		rOpLoadAff64, rOpLoadAff32:
		return true
	}
	return regBinaryOp(op) || regUnaryOp(op)
}

// isI32CmpOp reports the ten i32 comparison opcodes (BrCmp fusion).
func isI32CmpOp(op uint16) bool {
	return op >= uint16(OpI32Eq) && op <= uint16(OpI32GeU)
}

// negCmpOp returns the complement comparison (for br_if_z fusion).
func negCmpOp(op byte) byte {
	switch op {
	case OpI32Eq:
		return OpI32Ne
	case OpI32Ne:
		return OpI32Eq
	case OpI32LtS:
		return OpI32GeS
	case OpI32LtU:
		return OpI32GeU
	case OpI32GtS:
		return OpI32LeS
	case OpI32GtU:
		return OpI32LeU
	case OpI32LeS:
		return OpI32GtS
	case OpI32LeU:
		return OpI32GtU
	case OpI32GeS:
		return OpI32LtS
	case OpI32GeU:
		return OpI32LtU
	}
	return op
}

// i32Cmp evaluates an i32 comparison opcode (shared by the translator's
// folder and the fused compare-and-branch dispatch).
func i32Cmp(op byte, a, b uint32) bool {
	switch op {
	case OpI32Eq:
		return a == b
	case OpI32Ne:
		return a != b
	case OpI32LtS:
		return int32(a) < int32(b)
	case OpI32LtU:
		return a < b
	case OpI32GtS:
		return int32(a) > int32(b)
	case OpI32GtU:
		return a > b
	case OpI32LeS:
		return int32(a) <= int32(b)
	case OpI32LeU:
		return a <= b
	case OpI32GeS:
		return int32(a) >= int32(b)
	case OpI32GeU:
		return a >= b
	}
	return false
}

// foldBinary evaluates an integer binary op on literals at translation
// time. It mirrors the exec arms exactly. Trapping ops and every float
// op return false.
func foldBinary(op uint16, x, y uint64) (uint64, bool) {
	if op >= 0x100 {
		return 0, false
	}
	b := byte(op)
	if b >= OpI32Eq && b <= OpI32GeU {
		return b2u(i32Cmp(b, uint32(x), uint32(y))), true
	}
	switch b {
	case OpI64Eq:
		return b2u(x == y), true
	case OpI64Ne:
		return b2u(x != y), true
	case OpI64LtS:
		return b2u(int64(x) < int64(y)), true
	case OpI64LtU:
		return b2u(x < y), true
	case OpI64GtS:
		return b2u(int64(x) > int64(y)), true
	case OpI64GtU:
		return b2u(x > y), true
	case OpI64LeS:
		return b2u(int64(x) <= int64(y)), true
	case OpI64LeU:
		return b2u(x <= y), true
	case OpI64GeS:
		return b2u(int64(x) >= int64(y)), true
	case OpI64GeU:
		return b2u(x >= y), true

	case OpI32Add:
		return uint64(uint32(x) + uint32(y)), true
	case OpI32Sub:
		return uint64(uint32(x) - uint32(y)), true
	case OpI32Mul:
		return uint64(uint32(x) * uint32(y)), true
	case OpI32And:
		return x & y, true
	case OpI32Or:
		return x | y, true
	case OpI32Xor:
		return x ^ y, true
	case OpI32Shl:
		return uint64(uint32(x) << (uint32(y) & 31)), true
	case OpI32ShrS:
		return uint64(uint32(int32(x) >> (uint32(y) & 31))), true
	case OpI32ShrU:
		return uint64(uint32(x) >> (uint32(y) & 31)), true
	case OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(x), int(uint32(y)&31))), true
	case OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(x), -int(uint32(y)&31))), true

	case OpI64Add:
		return x + y, true
	case OpI64Sub:
		return x - y, true
	case OpI64Mul:
		return x * y, true
	case OpI64And:
		return x & y, true
	case OpI64Or:
		return x | y, true
	case OpI64Xor:
		return x ^ y, true
	case OpI64Shl:
		return x << (y & 63), true
	case OpI64ShrS:
		return uint64(int64(x) >> (y & 63)), true
	case OpI64ShrU:
		return x >> (y & 63), true
	case OpI64Rotl:
		return bits.RotateLeft64(x, int(y&63)), true
	case OpI64Rotr:
		return bits.RotateLeft64(x, -int(y&63)), true
	}
	return 0, false
}

// foldUnary evaluates an integer unary op on a literal. Conversions that
// touch floats (and trapping truncations) are never folded.
func foldUnary(op uint16, x uint64) (uint64, bool) {
	if op >= 0x100 {
		return 0, false
	}
	switch byte(op) {
	case OpI32Eqz:
		return b2u(uint32(x) == 0), true
	case OpI64Eqz:
		return b2u(x == 0), true
	case OpI32Clz:
		return uint64(bits.LeadingZeros32(uint32(x))), true
	case OpI32Ctz:
		return uint64(bits.TrailingZeros32(uint32(x))), true
	case OpI32Popcnt:
		return uint64(bits.OnesCount32(uint32(x))), true
	case OpI64Clz:
		return uint64(bits.LeadingZeros64(x)), true
	case OpI64Ctz:
		return uint64(bits.TrailingZeros64(x)), true
	case OpI64Popcnt:
		return uint64(bits.OnesCount64(x)), true
	case OpI32WrapI64:
		return uint64(uint32(x)), true
	case OpI64ExtendI32S:
		return uint64(int64(int32(x))), true
	case OpI64ExtendI32U:
		return uint64(uint32(x)), true
	case OpI32Extend8S:
		return uint64(uint32(int32(int8(x)))), true
	case OpI32Extend16S:
		return uint64(uint32(int32(int16(x)))), true
	case OpI64Extend8S:
		return uint64(int64(int8(x))), true
	case OpI64Extend16S:
		return uint64(int64(int16(x))), true
	case OpI64Extend32S:
		return uint64(int64(int32(x))), true
	}
	return 0, false
}
