package wasm

import (
	"bytes"
	"fmt"
	"testing"

	"twine/wasmgen"
)

// reset_test.go — the PR 8 warm-path contract: a worker reset in place
// with ResetFromSnapshot must be bit-identical to a fresh
// InstantiateFromSnapshot of the same snapshot. The serving pool's free
// lists lean on this: if reset were even slightly weaker than
// re-instantiation (a stale TLB entry, a missed global, a shorter
// memory), warm workers would drift from cold ones and per-request
// isolation would silently decay.

// servingModule mutates state a serving cycle must erase: two memory
// cells on different pages, a mutable global, and a table the snapshot
// must carry. run(x) returns a mix of all three.
func servingModule() []byte {
	m := wasmgen.NewModule()
	m.Memory(2, 2)
	m.Data(0, []byte{1, 0, 0, 0})
	g := m.Global(wasmgen.I32, true, 100)

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	// mem[0] += x
	f.I32Const(0).I32Const(0).I32Load(0).LocalGet(0).I32Add().I32Store(0)
	// mem[4096] += mem[0]  (second page: the touch log spans pages)
	f.I32Const(4096).I32Const(4096).I32Load(0).I32Const(0).I32Load(0).I32Add().I32Store(0)
	// g += x
	f.GlobalGet(g).LocalGet(0).I32Add().GlobalSet(g)
	// return mem[0] + mem[4096] + g
	f.I32Const(0).I32Load(0).I32Const(4096).I32Load(0).I32Add().GlobalGet(g).I32Add()
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	m.Table(4)
	m.Elem(1, f, f)
	return m.Bytes()
}

// touchRecorder captures the exact (off, n) touch-hook sequence.
type touchRecorder struct {
	log [][2]int64
}

func (r *touchRecorder) touch(off, n int64) { r.log = append(r.log, [2]int64{off, n}) }

// diffInstances reports the first bit-level difference between two
// instances' mutable state, or "" if none.
func diffInstances(a, b *Instance) string {
	switch {
	case !bytes.Equal(a.mem.data, b.mem.data):
		return "linear memory differs"
	case len(a.globals) != len(b.globals):
		return "global count differs"
	case len(a.table) != len(b.table):
		return "table size differs"
	case a.sp != b.sp || a.depth != b.depth:
		return "value-stack state differs"
	}
	for i := range a.globals {
		if a.globals[i] != b.globals[i] {
			return fmt.Sprintf("global %d differs", i)
		}
	}
	for i := range a.globTs {
		if a.globTs[i] != b.globTs[i] {
			return fmt.Sprintf("global type %d differs", i)
		}
	}
	for i := range a.table {
		if a.table[i] != b.table[i] {
			return fmt.Sprintf("table slot %d differs", i)
		}
	}
	return ""
}

// TestResetBitIdenticalToFresh (satellite 4): across 100 serve/reset
// cycles on every engine, a warm-reset instance matches a fresh
// snapshot instantiation bit for bit — memory, globals, global types,
// table, value-stack cursors — and the next invocation performs the
// exact same EPC touch-call sequence and computes the same result.
func TestResetBitIdenticalToFresh(t *testing.T) {
	engines := []Engine{EngineAOT, EngineInterp, EngineRegister, EngineSuperblock}
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			mod, err := Decode(servingModule())
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			c, err := Compile(mod)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}

			template, err := Instantiate(c, nil, Config{Engine: e})
			if err != nil {
				t.Fatalf("Instantiate: %v", err)
			}
			// Golden state mid-life, as a pool would snapshot after Init.
			if _, err := template.Invoke("run", 3); err != nil {
				t.Fatalf("init invoke: %v", err)
			}
			snap := template.Snapshot()

			warmRec := &touchRecorder{}
			warm, err := InstantiateFromSnapshot(c, nil, snap, Config{Engine: e, Touch: warmRec.touch})
			if err != nil {
				t.Fatalf("warm instantiate: %v", err)
			}
			for cycle := 0; cycle < 100; cycle++ {
				freshRec := &touchRecorder{}
				fresh, err := InstantiateFromSnapshot(c, nil, snap, Config{Engine: e, Touch: freshRec.touch})
				if err != nil {
					t.Fatalf("cycle %d: fresh instantiate: %v", cycle, err)
				}
				if d := diffInstances(warm, fresh); d != "" {
					t.Fatalf("cycle %d: pre-invoke state: %s", cycle, d)
				}

				arg := uint64(cycle % 7)
				warmRec.log, freshRec.log = nil, nil
				wOut, wErr := warm.Invoke("run", arg)
				fOut, fErr := fresh.Invoke("run", arg)
				if wErr != nil || fErr != nil {
					t.Fatalf("cycle %d: invoke errors warm=%v fresh=%v", cycle, wErr, fErr)
				}
				if wOut[0] != fOut[0] {
					t.Fatalf("cycle %d: results diverged: warm %d, fresh %d", cycle, wOut[0], fOut[0])
				}
				if len(warmRec.log) != len(freshRec.log) {
					t.Fatalf("cycle %d: touch sequence length: warm %d, fresh %d",
						cycle, len(warmRec.log), len(freshRec.log))
				}
				for i := range warmRec.log {
					if warmRec.log[i] != freshRec.log[i] {
						t.Fatalf("cycle %d: touch[%d]: warm %v, fresh %v",
							cycle, i, warmRec.log[i], freshRec.log[i])
					}
				}
				if d := diffInstances(warm, fresh); d != "" {
					t.Fatalf("cycle %d: post-invoke state: %s", cycle, d)
				}

				if err := warm.ResetFromSnapshot(snap); err != nil {
					t.Fatalf("cycle %d: reset: %v", cycle, err)
				}
			}
		})
	}
}

// TestResetFromSnapshotAllocationFree: on the hot path — an instance
// whose buffers were shaped by a prior instantiation of the same
// snapshot — reset performs zero allocations, which is what lets the
// pool run it inside the serve ECALL of every request.
func TestResetFromSnapshotAllocationFree(t *testing.T) {
	mod, err := Decode(servingModule())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Instantiate(c, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := in.Snapshot()
	// Dirty the instance once so the measured resets are undoing real
	// mutations; restore does the same full copy either way.
	if _, err := in.Invoke("run", 5); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := in.ResetFromSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("reset allocated %.1f times per run, want 0", allocs)
	}
}
