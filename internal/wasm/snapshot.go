package wasm

import "fmt"

// Snapshot is a frozen copy of an instance's mutable state — linear
// memory, globals and the indirect-call table — taken after the module's
// data segments and start function have run (the "ready to serve" point).
// Instantiating from a snapshot replays none of that work: the copy *is*
// the initialisation. One snapshot can stamp out any number of instances,
// which is how the serving pool (internal/core) gets cheap per-worker
// instantiation: decode, validation, AoT translation and linking happen
// once per module; a new worker costs one memory copy.
//
// A Snapshot is immutable after capture and safe to share between
// goroutines.
type Snapshot struct {
	module  *Module
	mem     []byte
	globals []uint64
	globTs  []GlobalType
	table   []int32
}

// MemBytes returns the snapshot's linear-memory size in bytes.
func (s *Snapshot) MemBytes() int { return len(s.mem) }

// Snapshot captures the instance's current mutable state. The instance
// must be quiescent (no invocation in flight).
func (in *Instance) Snapshot() *Snapshot {
	s := &Snapshot{
		module:  in.m,
		globals: append([]uint64(nil), in.globals...),
		globTs:  append([]GlobalType(nil), in.globTs...),
		table:   append([]int32(nil), in.table...),
	}
	if in.mem != nil {
		s.mem = append([]byte(nil), in.mem.data...)
	}
	return s
}

// ResetFromSnapshot restores the instance's mutable state — linear
// memory, globals and the indirect-call table — to snap, in place. It is
// the repair half of worker quarantine (PR 6) and, since PR 8, the warm
// path of the serving pool's free lists: a completed worker is stamped
// back to the golden snapshot instead of being re-instantiated, so it
// must be cheap. Resetting is exactly as strong as stamping out a new
// worker (the snapshot is the same bytes) without re-allocating the
// enclave arena, the value stack or the links. The memory buffer is
// reused when capacity allows and the software EPC-TLB is dropped, so
// stale hot-page entries cannot survive the reset; a reset instance is
// bit-identical to a fresh InstantiateFromSnapshot of the same snapshot,
// including the sequence of EPC touch calls its next invocation performs
// (the property the serve/reset cycle tests pin). On the hot path —
// an instance whose buffers were sized by a prior instantiation of the
// same snapshot — the reset performs no allocation: memory, globals and
// table reuse their capacity, and the immutable per-module global types
// are not copied at all. The instance must be quiescent (no invocation
// in flight).
func (in *Instance) ResetFromSnapshot(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("%w: reset from nil snapshot", ErrValidation)
	}
	if snap.module != in.m {
		return fmt.Errorf("%w: snapshot belongs to a different module", ErrLink)
	}
	if in.mem != nil {
		if err := in.mem.restore(snap.mem); err != nil {
			return err
		}
	} else if len(snap.mem) > 0 {
		return fmt.Errorf("%w: snapshot has memory but module defines none", ErrValidation)
	}
	in.globals = append(in.globals[:0], snap.globals...)
	// globTs holds the module's global *types*, which never change after
	// instantiation; the module-identity check above guarantees they
	// already match, so the hot path skips the copy.
	in.table = append(in.table[:0], snap.table...)
	in.sp = 0
	in.depth = 0
	return nil
}

// InstantiateFromSnapshot builds a fresh instance of c whose memory,
// globals and table start as copies of snap, skipping data-segment
// replay, linking re-validation work and the start function. The snapshot
// must come from an instance of the same module.
func InstantiateFromSnapshot(c *Compiled, imports *ImportObject, snap *Snapshot, cfg Config) (*Instance, error) {
	if snap == nil {
		return Instantiate(c, imports, cfg)
	}
	if snap.module != c.Module {
		return nil, fmt.Errorf("%w: snapshot belongs to a different module", ErrLink)
	}
	in, err := newInstance(c, imports, cfg)
	if err != nil {
		return nil, err
	}
	if in.mem != nil {
		if err := in.mem.restore(snap.mem); err != nil {
			return nil, err
		}
	} else if len(snap.mem) > 0 {
		return nil, fmt.Errorf("%w: snapshot has memory but module defines none", ErrValidation)
	}
	in.globals = append([]uint64(nil), snap.globals...)
	in.globTs = append([]GlobalType(nil), snap.globTs...)
	in.table = append([]int32(nil), snap.table...)
	return in, nil
}
