package wasm

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// ins is one lowered instruction. Immediates are pre-decoded; branch
// targets are absolute indexes into the function's code slice.
type ins struct {
	op      uint16
	a, b, c int32
	imm     uint64
}

// brTarget is one br_table destination.
type brTarget struct{ pc, drop, keep int32 }

// compiledFunc is a validated, lowered function body.
type compiledFunc struct {
	typeIdx    uint32
	numParams  int
	numLocals  int // excluding params
	numResults int
	maxStack   int // operand stack slots beyond locals
	localTypes []ValueType
	code       []ins
	brTables   [][]brTarget
	// reg marks a register-form body (PR 4): code is three-address over
	// the frame register file and executes through runRegBody. The frame
	// footprint is unchanged — operand-slot homes reuse the maxStack
	// area — so stack-overflow traps fire at the same call depths.
	reg bool
	// traces holds the superblock tier's compiled loop traces (PR 7),
	// indexed by sOpTraceEnter's .a operand. Non-nil only in the
	// superblock form of a function.
	traces []superTrace
}

// Compiled is a fully validated module with lowered function bodies, ready
// to instantiate under either engine. It is the immutable half of the
// module split: code (interpreter and AoT forms alike) is never written
// after compilation, so one Compiled can back any number of concurrently
// executing instances.
type Compiled struct {
	Module *Module
	Funcs  []compiledFunc // module-defined functions only

	// The AoT translation is derived lazily, once, and shared by every
	// AoT instance — instantiation no longer re-fuses per instance.
	aotOnce  sync.Once
	aotFuncs []compiledFunc

	// The register-IR translation (PR 4) is likewise derived once and
	// shared. Functions the translator cannot prove fall back to their
	// fused form, so a register-tier instance may mix both body kinds.
	// Two forms exist: index 1 carries hoisted memory guards (for
	// instances whose accesses are EPC-accounted through a touch hook),
	// index 0 omits them (a guard is pure dispatch overhead when there
	// is no touch to elide).
	regOnce  [2]sync.Once
	regFuncs [2][]compiledFunc
	regStats [2]RegStats

	// The superblock translation (PR 7) is derived from the register
	// form, once per guard variant, and shared the same way.
	superOnce  [2]sync.Once
	superFuncs [2][]compiledFunc
	superStats [2]SuperStats
}

// aot returns the fused (AoT) form of the function bodies, translating on
// first use. The result is immutable and shared across instances.
func (c *Compiled) aot() []compiledFunc {
	c.aotOnce.Do(func() {
		fused := make([]compiledFunc, len(c.Funcs))
		for i := range c.Funcs {
			fused[i] = fuseFunc(c.Funcs[i])
		}
		c.aotFuncs = fused
	})
	return c.aotFuncs
}

// reg returns the register-IR form of the function bodies, translating
// on first use. The result is immutable and shared across instances.
func (c *Compiled) reg(guarded bool) []compiledFunc {
	v := 0
	if guarded {
		v = 1
	}
	c.regOnce[v].Do(func() {
		fused := c.aot()
		out := make([]compiledFunc, len(c.Funcs))
		for i := range c.Funcs {
			// Per-function counters merge only on success, so a bailed
			// function's discarded optimisations never inflate the
			// module's reported stats.
			var fs RegStats
			rf, ok := translateReg(c.Module, &c.Funcs[i], &fs, guarded)
			if ok {
				out[i] = rf
				c.regStats[v].merge(fs)
				c.regStats[v].Funcs++
			} else {
				out[i] = fused[i]
				c.regStats[v].Bailouts++
			}
		}
		c.regFuncs[v] = out
	})
	return c.regFuncs[v]
}

// super returns the superblock form of the function bodies (PR 7):
// register bodies with innermost self-loops patched into compiled traces.
// Functions without a register form stay fused, untraced. The result is
// immutable and shared across instances.
func (c *Compiled) super(guarded bool) []compiledFunc {
	v := 0
	if guarded {
		v = 1
	}
	c.superOnce[v].Do(func() {
		regs := c.reg(guarded)
		out := make([]compiledFunc, len(regs))
		var st SuperStats
		for i := range regs {
			out[i] = translateSuper(&regs[i], &st)
		}
		c.superStats[v] = st
		c.superFuncs[v] = out
	})
	return c.superFuncs[v]
}

// SuperStats reports the superblock-tier translation counters of the
// guarded or unguarded form — pass the same guarded value the instances
// run with (Config.TouchGen != nil). Forces the translation if it has not
// run yet.
func (c *Compiled) SuperStats(guarded bool) SuperStats {
	c.super(guarded)
	if guarded {
		return c.superStats[1]
	}
	return c.superStats[0]
}

// RegStats reports the register-tier translation counters of the guarded
// (EPC-accounted) or unguarded form — pass the same guarded value the
// instances run with (Config.TouchGen != nil), so the counters describe
// the code that actually executes and the other form is never translated
// just for reporting. Forces the translation if it has not run yet.
func (c *Compiled) RegStats(guarded bool) RegStats {
	c.reg(guarded)
	if guarded {
		return c.regStats[1]
	}
	return c.regStats[0]
}

// NumInstructions reports the total lowered instruction count across all
// functions (a proxy for the AoT artifact size).
func (c *Compiled) NumInstructions() int64 {
	var n int64
	for _, f := range c.Funcs {
		n += int64(len(f.code))
	}
	return n
}

// Compile validates every function body and lowers it. It implements the
// validation algorithm from the specification appendix, tracking the type
// stack and control frames, while simultaneously emitting branch-resolved
// code (dead code after unconditional transfers is type-checked but not
// emitted).
func Compile(m *Module) (*Compiled, error) {
	c := &Compiled{Module: m}
	for i := range m.Codes {
		fn, err := compileFunc(m, i)
		if err != nil {
			return nil, fmt.Errorf("%w: function %d: %v", ErrValidation, i, err)
		}
		c.Funcs = append(c.Funcs, fn)
	}
	return c, nil
}

// unknownType is the polymorphic stack sentinel used below unreachable code.
const unknownType ValueType = 0

type ctrlFrame struct {
	opcode      byte // OpBlock, OpLoop, OpIf, OpElse; 0 for the function body
	startTypes  []ValueType
	endTypes    []ValueType
	height      int
	unreachable bool

	startPC      int   // loop: branch destination
	elsePatch    int   // if: BrIfZ site to patch to the else/end, -1 if none
	patchSites   []int // code indexes whose .a patches to this frame's end
	tablePatches [][2]int
}

type funcCompiler struct {
	m      *Module
	r      *reader
	fn     compiledFunc
	vals   []ValueType
	ctrls  []ctrlFrame
	types  []ValueType // params + locals
	nGlob  int
	globTs []GlobalType
}

func compileFunc(m *Module, codeIdx int) (compiledFunc, error) {
	typeIdx := m.FuncTypeIdxs[codeIdx]
	ft := m.Types[typeIdx]
	code := m.Codes[codeIdx]

	fc := &funcCompiler{
		m: m,
		r: &reader{buf: code.Body},
		fn: compiledFunc{
			typeIdx:    typeIdx,
			numParams:  len(ft.Params),
			numLocals:  len(code.Locals),
			numResults: len(ft.Results),
		},
	}
	fc.types = append(append([]ValueType{}, ft.Params...), code.Locals...)
	fc.fn.localTypes = fc.types
	for _, imp := range m.Imports {
		if imp.Kind == KindGlobal {
			fc.globTs = append(fc.globTs, imp.Global)
		}
	}
	for _, g := range m.Globals {
		fc.globTs = append(fc.globTs, g.Type)
	}
	fc.nGlob = len(fc.globTs)

	// The function body is itself a frame whose end types are the results.
	fc.pushCtrlRaw(0, nil, ft.Results)

	if err := fc.run(); err != nil {
		return compiledFunc{}, err
	}
	return fc.fn, nil
}

// --- type-stack helpers ---

func (fc *funcCompiler) pushVal(t ValueType) {
	fc.vals = append(fc.vals, t)
	if len(fc.vals) > fc.fn.maxStack {
		fc.fn.maxStack = len(fc.vals)
	}
}

func (fc *funcCompiler) popVal() (ValueType, error) {
	f := &fc.ctrls[len(fc.ctrls)-1]
	if len(fc.vals) == f.height {
		if f.unreachable {
			return unknownType, nil
		}
		return 0, fmt.Errorf("operand stack underflow")
	}
	t := fc.vals[len(fc.vals)-1]
	fc.vals = fc.vals[:len(fc.vals)-1]
	return t, nil
}

func (fc *funcCompiler) popExpect(want ValueType) (ValueType, error) {
	got, err := fc.popVal()
	if err != nil {
		return 0, err
	}
	if got != unknownType && want != unknownType && got != want {
		return 0, fmt.Errorf("type mismatch: have %v, want %v", got, want)
	}
	return got, nil
}

func (fc *funcCompiler) popVals(ts []ValueType) error {
	for i := len(ts) - 1; i >= 0; i-- {
		if _, err := fc.popExpect(ts[i]); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) pushVals(ts []ValueType) {
	for _, t := range ts {
		fc.pushVal(t)
	}
}

func (fc *funcCompiler) pushCtrlRaw(op byte, in, out []ValueType) {
	fc.ctrls = append(fc.ctrls, ctrlFrame{
		opcode: op, startTypes: in, endTypes: out,
		height: len(fc.vals), elsePatch: -1,
	})
	fc.pushVals(in)
}

func (fc *funcCompiler) popCtrl() (ctrlFrame, error) {
	if len(fc.ctrls) == 0 {
		return ctrlFrame{}, fmt.Errorf("control stack underflow")
	}
	f := fc.ctrls[len(fc.ctrls)-1]
	if err := fc.popVals(f.endTypes); err != nil {
		return ctrlFrame{}, err
	}
	if len(fc.vals) != f.height {
		return ctrlFrame{}, fmt.Errorf("%d values left on stack at end of block", len(fc.vals)-f.height)
	}
	fc.ctrls = fc.ctrls[:len(fc.ctrls)-1]
	return f, nil
}

func (fc *funcCompiler) setUnreachable() {
	f := &fc.ctrls[len(fc.ctrls)-1]
	fc.vals = fc.vals[:f.height]
	f.unreachable = true
}

func (fc *funcCompiler) live() bool {
	return !fc.ctrls[len(fc.ctrls)-1].unreachable
}

// emit appends an instruction unless the current position is unreachable.
// It returns the instruction index (or -1 when dead).
func (fc *funcCompiler) emit(i ins) int {
	if !fc.live() {
		return -1
	}
	fc.fn.code = append(fc.fn.code, i)
	return len(fc.fn.code) - 1
}

// labelFrame resolves a branch label depth to its control frame.
func (fc *funcCompiler) labelFrame(l uint32) (*ctrlFrame, error) {
	if int(l) >= len(fc.ctrls) {
		return nil, fmt.Errorf("branch label %d out of range", l)
	}
	return &fc.ctrls[len(fc.ctrls)-1-int(l)], nil
}

// labelTypes returns the types a branch to this frame transfers.
func labelTypes(f *ctrlFrame) []ValueType {
	if f.opcode == OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

// blockType parses an MVP block type: empty (0x40) or one value type.
func (fc *funcCompiler) blockType() ([]ValueType, []ValueType, error) {
	b, err := fc.r.byte()
	if err != nil {
		return nil, nil, err
	}
	if b == 0x40 {
		return nil, nil, nil
	}
	if !validValueType(b) {
		return nil, nil, fmt.Errorf("bad block type 0x%02x", b)
	}
	return nil, []ValueType{ValueType(b)}, nil
}

// brArgs computes the runtime drop/keep pair for a branch emitted now.
func (fc *funcCompiler) brArgs(f *ctrlFrame) (drop, keep int32) {
	lt := labelTypes(f)
	keep = int32(len(lt))
	drop = int32(len(fc.vals) - f.height - len(lt))
	if drop < 0 {
		drop = 0 // only reachable in dead code, which is not emitted
	}
	return drop, keep
}

func (fc *funcCompiler) hasMemory() error {
	if fc.m.NumImportedMems+len(fc.m.Memories) == 0 {
		return fmt.Errorf("memory instruction without memory")
	}
	return nil
}

// run compiles the whole body.
func (fc *funcCompiler) run() error {
	for {
		if len(fc.ctrls) == 0 {
			// Function frame popped by the final end.
			if fc.r.len() != 0 {
				return fmt.Errorf("trailing bytes after function end")
			}
			return nil
		}
		op, err := fc.r.byte()
		if err != nil {
			return err
		}
		if err := fc.instr(op); err != nil {
			return fmt.Errorf("at byte offset %d (op 0x%02x): %v", fc.r.pos-1, op, err)
		}
	}
}

func (fc *funcCompiler) instr(op byte) error {
	switch op {
	case OpUnreachable:
		fc.emit(ins{op: uint16(OpUnreachable)})
		fc.setUnreachable()
	case OpNop:
		// No emission.
	case OpBlock:
		in, out, err := fc.blockType()
		if err != nil {
			return err
		}
		if err := fc.popVals(in); err != nil {
			return err
		}
		dead := !fc.live()
		fc.pushCtrlRaw(OpBlock, in, out)
		if dead {
			fc.ctrls[len(fc.ctrls)-1].unreachable = true
		}
	case OpLoop:
		in, out, err := fc.blockType()
		if err != nil {
			return err
		}
		if err := fc.popVals(in); err != nil {
			return err
		}
		dead := !fc.live()
		fc.pushCtrlRaw(OpLoop, in, out)
		f := &fc.ctrls[len(fc.ctrls)-1]
		f.startPC = len(fc.fn.code)
		if dead {
			f.unreachable = true
		}
	case OpIf:
		in, out, err := fc.blockType()
		if err != nil {
			return err
		}
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		if err := fc.popVals(in); err != nil {
			return err
		}
		dead := !fc.live()
		site := fc.emit(ins{op: opLoweredBrIfZ})
		fc.pushCtrlRaw(OpIf, in, out)
		f := &fc.ctrls[len(fc.ctrls)-1]
		f.elsePatch = site
		if dead {
			f.unreachable = true
		}
	case OpElse:
		f := &fc.ctrls[len(fc.ctrls)-1]
		if f.opcode != OpIf {
			return fmt.Errorf("else without if")
		}
		// Validate the then-branch produced the block results.
		if err := fc.popVals(f.endTypes); err != nil {
			return err
		}
		if len(fc.vals) != f.height {
			return fmt.Errorf("%d extra values at else", len(fc.vals)-f.height)
		}
		// Jump over the else branch (recorded to patch at end).
		site := fc.emit(ins{op: opLoweredBr})
		if site >= 0 {
			f.patchSites = append(f.patchSites, site)
		}
		// The if's false edge lands here.
		if f.elsePatch >= 0 {
			fc.fn.code[f.elsePatch].a = int32(len(fc.fn.code))
		}
		f.elsePatch = -1
		f.opcode = OpElse
		f.unreachable = false
		fc.pushVals(f.startTypes)
	case OpEnd:
		f, err := fc.popCtrl()
		if err != nil {
			return err
		}
		end := int32(len(fc.fn.code))
		for _, site := range f.patchSites {
			fc.fn.code[site].a = end
		}
		for _, tp := range f.tablePatches {
			fc.fn.brTables[tp[0]][tp[1]].pc = end
		}
		if f.opcode == OpIf {
			// if without else: param/result types must match (MVP: both
			// empty), and the false edge falls through to the end.
			if len(f.startTypes) != len(f.endTypes) {
				return fmt.Errorf("if without else requires matching types")
			}
			if f.elsePatch >= 0 {
				fc.fn.code[f.elsePatch].a = end
			}
		}
		fc.pushVals(f.endTypes)
		if len(fc.ctrls) == 0 {
			// Function end: emit the return trailer.
			fc.fn.code = append(fc.fn.code, ins{op: opLoweredReturn, c: int32(fc.fn.numResults)})
		}
	case OpBr:
		l, err := fc.r.u32()
		if err != nil {
			return err
		}
		f, err := fc.labelFrame(l)
		if err != nil {
			return err
		}
		drop, keep := fc.brArgs(f)
		site := fc.emit(ins{op: opLoweredBr, b: drop, c: keep})
		if site >= 0 {
			if f.opcode == OpLoop {
				fc.fn.code[site].a = int32(f.startPC)
			} else {
				f.patchSites = append(f.patchSites, site)
			}
		}
		if err := fc.popVals(labelTypes(f)); err != nil {
			return err
		}
		fc.setUnreachable()
	case OpBrIf:
		l, err := fc.r.u32()
		if err != nil {
			return err
		}
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		f, err := fc.labelFrame(l)
		if err != nil {
			return err
		}
		drop, keep := fc.brArgs(f)
		site := fc.emit(ins{op: opLoweredBrIf, b: drop, c: keep})
		if site >= 0 {
			if f.opcode == OpLoop {
				fc.fn.code[site].a = int32(f.startPC)
			} else {
				f.patchSites = append(f.patchSites, site)
			}
		}
		lt := labelTypes(f)
		if err := fc.popVals(lt); err != nil {
			return err
		}
		fc.pushVals(lt)
	case OpBrTable:
		n, err := fc.r.u32()
		if err != nil {
			return err
		}
		labels := make([]uint32, n+1)
		for i := range labels {
			if labels[i], err = fc.r.u32(); err != nil {
				return err
			}
		}
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		def, err := fc.labelFrame(labels[n])
		if err != nil {
			return err
		}
		defTypes := labelTypes(def)
		live := fc.live()
		var tableIdx int
		if live {
			tableIdx = len(fc.fn.brTables)
			fc.fn.brTables = append(fc.fn.brTables, make([]brTarget, n+1))
		}
		for i, l := range labels {
			f, err := fc.labelFrame(l)
			if err != nil {
				return err
			}
			lt := labelTypes(f)
			if len(lt) != len(defTypes) {
				return fmt.Errorf("br_table arity mismatch")
			}
			for j := range lt {
				if lt[j] != defTypes[j] {
					return fmt.Errorf("br_table type mismatch")
				}
			}
			if live {
				drop, keep := fc.brArgs(f)
				fc.fn.brTables[tableIdx][i] = brTarget{drop: drop, keep: keep}
				if f.opcode == OpLoop {
					fc.fn.brTables[tableIdx][i].pc = int32(f.startPC)
				} else {
					f.tablePatches = append(f.tablePatches, [2]int{tableIdx, i})
				}
			}
		}
		fc.emit(ins{op: opLoweredBrTable, a: int32(tableIdx)})
		if err := fc.popVals(defTypes); err != nil {
			return err
		}
		fc.setUnreachable()
	case OpReturn:
		results := fc.m.Types[fc.fn.typeIdx].Results
		fc.emit(ins{op: opLoweredReturn, c: int32(len(results))})
		if err := fc.popVals(results); err != nil {
			return err
		}
		fc.setUnreachable()
	case OpCall:
		fi, err := fc.r.u32()
		if err != nil {
			return err
		}
		ft, err := fc.m.TypeOfFunc(fi)
		if err != nil {
			return err
		}
		fc.emit(ins{op: uint16(OpCall), a: int32(fi)})
		if err := fc.popVals(ft.Params); err != nil {
			return err
		}
		fc.pushVals(ft.Results)
	case OpCallIndirect:
		ti, err := fc.r.u32()
		if err != nil {
			return err
		}
		if int(ti) >= len(fc.m.Types) {
			return fmt.Errorf("call_indirect type %d out of range", ti)
		}
		tb, err := fc.r.byte()
		if err != nil {
			return err
		}
		if tb != 0 {
			return fmt.Errorf("call_indirect reserved byte must be 0")
		}
		if fc.m.NumImportedTables+len(fc.m.Tables) == 0 {
			return fmt.Errorf("call_indirect without table")
		}
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		ft := fc.m.Types[ti]
		fc.emit(ins{op: uint16(OpCallIndirect), a: int32(ti)})
		if err := fc.popVals(ft.Params); err != nil {
			return err
		}
		fc.pushVals(ft.Results)
	case OpDrop:
		if _, err := fc.popVal(); err != nil {
			return err
		}
		fc.emit(ins{op: uint16(OpDrop)})
	case OpSelect:
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		t1, err := fc.popVal()
		if err != nil {
			return err
		}
		t2, err := fc.popExpect(t1)
		if err != nil {
			return err
		}
		if t2 != unknownType {
			fc.pushVal(t2)
		} else {
			fc.pushVal(t1)
		}
		fc.emit(ins{op: uint16(OpSelect)})
	case OpLocalGet, OpLocalSet, OpLocalTee:
		idx, err := fc.r.u32()
		if err != nil {
			return err
		}
		if int(idx) >= len(fc.types) {
			return fmt.Errorf("local %d out of range", idx)
		}
		t := fc.types[idx]
		switch op {
		case OpLocalGet:
			fc.pushVal(t)
		case OpLocalSet:
			if _, err := fc.popExpect(t); err != nil {
				return err
			}
		case OpLocalTee:
			if _, err := fc.popExpect(t); err != nil {
				return err
			}
			fc.pushVal(t)
		}
		fc.emit(ins{op: uint16(op), a: int32(idx)})
	case OpGlobalGet, OpGlobalSet:
		idx, err := fc.r.u32()
		if err != nil {
			return err
		}
		if int(idx) >= fc.nGlob {
			return fmt.Errorf("global %d out of range", idx)
		}
		gt := fc.globTs[idx]
		if op == OpGlobalGet {
			fc.pushVal(gt.Type)
		} else {
			if !gt.Mutable {
				return fmt.Errorf("global %d is immutable", idx)
			}
			if _, err := fc.popExpect(gt.Type); err != nil {
				return err
			}
		}
		fc.emit(ins{op: uint16(op), a: int32(idx)})
	case OpMemorySize, OpMemoryGrow:
		if err := fc.hasMemory(); err != nil {
			return err
		}
		b, err := fc.r.byte()
		if err != nil {
			return err
		}
		if b != 0 {
			return fmt.Errorf("memory instruction reserved byte must be 0")
		}
		if op == OpMemoryGrow {
			if _, err := fc.popExpect(I32); err != nil {
				return err
			}
		}
		fc.pushVal(I32)
		fc.emit(ins{op: uint16(op)})
	case OpI32Const:
		v, err := fc.r.sleb(32)
		if err != nil {
			return err
		}
		fc.pushVal(I32)
		fc.emit(ins{op: uint16(op), imm: uint64(uint32(int32(v)))})
	case OpI64Const:
		v, err := fc.r.sleb(64)
		if err != nil {
			return err
		}
		fc.pushVal(I64)
		fc.emit(ins{op: uint16(op), imm: uint64(v)})
	case OpF32Const:
		b, err := fc.r.bytes(4)
		if err != nil {
			return err
		}
		fc.pushVal(F32)
		fc.emit(ins{op: uint16(op), imm: uint64(binary.LittleEndian.Uint32(b))})
	case OpF64Const:
		b, err := fc.r.bytes(8)
		if err != nil {
			return err
		}
		fc.pushVal(F64)
		fc.emit(ins{op: uint16(op), imm: binary.LittleEndian.Uint64(b)})
	default:
		return fc.simpleInstr(op)
	}
	return nil
}

// memInstr handles loads and stores (align+offset immediates).
func (fc *funcCompiler) memInstr(op byte, natural uint32, valT ValueType, isStore bool) error {
	if err := fc.hasMemory(); err != nil {
		return err
	}
	align, err := fc.r.u32()
	if err != nil {
		return err
	}
	if 1<<align > natural {
		return fmt.Errorf("alignment 2^%d exceeds natural %d", align, natural)
	}
	offset, err := fc.r.u32()
	if err != nil {
		return err
	}
	if isStore {
		if _, err := fc.popExpect(valT); err != nil {
			return err
		}
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
	} else {
		if _, err := fc.popExpect(I32); err != nil {
			return err
		}
		fc.pushVal(valT)
	}
	fc.emit(ins{op: uint16(op), imm: uint64(offset)})
	return nil
}

// unop/binop/testop/relop/cvtop helpers.
func (fc *funcCompiler) unop(op byte, t ValueType) error {
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	fc.pushVal(t)
	fc.emit(ins{op: uint16(op)})
	return nil
}

func (fc *funcCompiler) binop(op byte, t ValueType) error {
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	fc.pushVal(t)
	fc.emit(ins{op: uint16(op)})
	return nil
}

func (fc *funcCompiler) relop(op byte, t ValueType) error {
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	fc.pushVal(I32)
	fc.emit(ins{op: uint16(op)})
	return nil
}

func (fc *funcCompiler) testop(op byte, t ValueType) error {
	if _, err := fc.popExpect(t); err != nil {
		return err
	}
	fc.pushVal(I32)
	fc.emit(ins{op: uint16(op)})
	return nil
}

func (fc *funcCompiler) cvtop(op byte, from, to ValueType) error {
	if _, err := fc.popExpect(from); err != nil {
		return err
	}
	fc.pushVal(to)
	fc.emit(ins{op: uint16(op)})
	return nil
}
