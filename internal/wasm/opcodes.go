package wasm

// WebAssembly MVP opcodes (binary encodings). The compiler lowers some of
// these away (structured control) and the AoT engine introduces fused
// superinstructions in the 0x200+ range.
const (
	OpUnreachable  = 0x00
	OpNop          = 0x01
	OpBlock        = 0x02
	OpLoop         = 0x03
	OpIf           = 0x04
	OpElse         = 0x05
	OpEnd          = 0x0B
	OpBr           = 0x0C
	OpBrIf         = 0x0D
	OpBrTable      = 0x0E
	OpReturn       = 0x0F
	OpCall         = 0x10
	OpCallIndirect = 0x11

	OpDrop   = 0x1A
	OpSelect = 0x1B

	OpLocalGet  = 0x20
	OpLocalSet  = 0x21
	OpLocalTee  = 0x22
	OpGlobalGet = 0x23
	OpGlobalSet = 0x24

	OpI32Load    = 0x28
	OpI64Load    = 0x29
	OpF32Load    = 0x2A
	OpF64Load    = 0x2B
	OpI32Load8S  = 0x2C
	OpI32Load8U  = 0x2D
	OpI32Load16S = 0x2E
	OpI32Load16U = 0x2F
	OpI64Load8S  = 0x30
	OpI64Load8U  = 0x31
	OpI64Load16S = 0x32
	OpI64Load16U = 0x33
	OpI64Load32S = 0x34
	OpI64Load32U = 0x35
	OpI32Store   = 0x36
	OpI64Store   = 0x37
	OpF32Store   = 0x38
	OpF64Store   = 0x39
	OpI32Store8  = 0x3A
	OpI32Store16 = 0x3B
	OpI64Store8  = 0x3C
	OpI64Store16 = 0x3D
	OpI64Store32 = 0x3E
	OpMemorySize = 0x3F
	OpMemoryGrow = 0x40

	OpI32Const = 0x41
	OpI64Const = 0x42
	OpF32Const = 0x43
	OpF64Const = 0x44

	OpI32Eqz = 0x45
	OpI32Eq  = 0x46
	OpI32Ne  = 0x47
	OpI32LtS = 0x48
	OpI32LtU = 0x49
	OpI32GtS = 0x4A
	OpI32GtU = 0x4B
	OpI32LeS = 0x4C
	OpI32LeU = 0x4D
	OpI32GeS = 0x4E
	OpI32GeU = 0x4F

	OpI64Eqz = 0x50
	OpI64Eq  = 0x51
	OpI64Ne  = 0x52
	OpI64LtS = 0x53
	OpI64LtU = 0x54
	OpI64GtS = 0x55
	OpI64GtU = 0x56
	OpI64LeS = 0x57
	OpI64LeU = 0x58
	OpI64GeS = 0x59
	OpI64GeU = 0x5A

	OpF32Eq = 0x5B
	OpF32Ne = 0x5C
	OpF32Lt = 0x5D
	OpF32Gt = 0x5E
	OpF32Le = 0x5F
	OpF32Ge = 0x60

	OpF64Eq = 0x61
	OpF64Ne = 0x62
	OpF64Lt = 0x63
	OpF64Gt = 0x64
	OpF64Le = 0x65
	OpF64Ge = 0x66

	OpI32Clz    = 0x67
	OpI32Ctz    = 0x68
	OpI32Popcnt = 0x69
	OpI32Add    = 0x6A
	OpI32Sub    = 0x6B
	OpI32Mul    = 0x6C
	OpI32DivS   = 0x6D
	OpI32DivU   = 0x6E
	OpI32RemS   = 0x6F
	OpI32RemU   = 0x70
	OpI32And    = 0x71
	OpI32Or     = 0x72
	OpI32Xor    = 0x73
	OpI32Shl    = 0x74
	OpI32ShrS   = 0x75
	OpI32ShrU   = 0x76
	OpI32Rotl   = 0x77
	OpI32Rotr   = 0x78

	OpI64Clz    = 0x79
	OpI64Ctz    = 0x7A
	OpI64Popcnt = 0x7B
	OpI64Add    = 0x7C
	OpI64Sub    = 0x7D
	OpI64Mul    = 0x7E
	OpI64DivS   = 0x7F
	OpI64DivU   = 0x80
	OpI64RemS   = 0x81
	OpI64RemU   = 0x82
	OpI64And    = 0x83
	OpI64Or     = 0x84
	OpI64Xor    = 0x85
	OpI64Shl    = 0x86
	OpI64ShrS   = 0x87
	OpI64ShrU   = 0x88
	OpI64Rotl   = 0x89
	OpI64Rotr   = 0x8A

	OpF32Abs      = 0x8B
	OpF32Neg      = 0x8C
	OpF32Ceil     = 0x8D
	OpF32Floor    = 0x8E
	OpF32Trunc    = 0x8F
	OpF32Nearest  = 0x90
	OpF32Sqrt     = 0x91
	OpF32Add      = 0x92
	OpF32Sub      = 0x93
	OpF32Mul      = 0x94
	OpF32Div      = 0x95
	OpF32Min      = 0x96
	OpF32Max      = 0x97
	OpF32Copysign = 0x98

	OpF64Abs      = 0x99
	OpF64Neg      = 0x9A
	OpF64Ceil     = 0x9B
	OpF64Floor    = 0x9C
	OpF64Trunc    = 0x9D
	OpF64Nearest  = 0x9E
	OpF64Sqrt     = 0x9F
	OpF64Add      = 0xA0
	OpF64Sub      = 0xA1
	OpF64Mul      = 0xA2
	OpF64Div      = 0xA3
	OpF64Min      = 0xA4
	OpF64Max      = 0xA5
	OpF64Copysign = 0xA6

	OpI32WrapI64        = 0xA7
	OpI32TruncF32S      = 0xA8
	OpI32TruncF32U      = 0xA9
	OpI32TruncF64S      = 0xAA
	OpI32TruncF64U      = 0xAB
	OpI64ExtendI32S     = 0xAC
	OpI64ExtendI32U     = 0xAD
	OpI64TruncF32S      = 0xAE
	OpI64TruncF32U      = 0xAF
	OpI64TruncF64S      = 0xB0
	OpI64TruncF64U      = 0xB1
	OpF32ConvertI32S    = 0xB2
	OpF32ConvertI32U    = 0xB3
	OpF32ConvertI64S    = 0xB4
	OpF32ConvertI64U    = 0xB5
	OpF32DemoteF64      = 0xB6
	OpF64ConvertI32S    = 0xB7
	OpF64ConvertI32U    = 0xB8
	OpF64ConvertI64S    = 0xB9
	OpF64ConvertI64U    = 0xBA
	OpF64PromoteF32     = 0xBB
	OpI32ReinterpretF32 = 0xBC
	OpI64ReinterpretF64 = 0xBD
	OpF32ReinterpretI32 = 0xBE
	OpF64ReinterpretI64 = 0xBF

	// Sign-extension operators (post-MVP but emitted by modern LLVM).
	OpI32Extend8S  = 0xC0
	OpI32Extend16S = 0xC1
	OpI64Extend8S  = 0xC2
	OpI64Extend16S = 0xC3
	OpI64Extend32S = 0xC4
)

// Internal lowered opcodes (not present in binaries). The compiler replaces
// structured control with these; targets are absolute instruction indexes.
const (
	opLoweredBr      uint16 = 0x100 // a=target, b=drop, c=keep
	opLoweredBrIf    uint16 = 0x101 // branch when top != 0
	opLoweredBrIfZ   uint16 = 0x102 // branch when top == 0 (from if)
	opLoweredBrTable uint16 = 0x103 // a=index into fn.brTables
	opLoweredReturn  uint16 = 0x104 // c=keep
)

// Fused superinstructions used by the AoT engine (compile-time peephole).
const (
	opFusedLocalGet2    uint16 = 0x200 // push locals a and b
	opFusedLocalGetC    uint16 = 0x201 // push local a and const imm
	opFusedIncrLocal    uint16 = 0x202 // local[a] = i32(local[a] + imm); no stack traffic
	opFusedI32AddConst  uint16 = 0x203 // top = i32(top + imm)
	opFusedI64AddConst  uint16 = 0x204
	opFusedCmpBr        uint16 = 0x205 // fused i32 compare + conditional branch; b=compare op, a=target, c=drop<<16|keep
	opFusedF64LoadLocal uint16 = 0x206 // push f64 mem[local[a] + offset imm]
	opFusedF64MulAdd    uint16 = 0x207 // x + a*b on f64 stack triple; both roundings kept (no FMA contraction)

	// Load/store superinstructions. Each batches the address arithmetic
	// that the PolyBench-style codegen emits around every array element
	// access — and therefore pays at most one EPC touch per fused op
	// instead of one per constituent instruction.
	opFusedLocalMulC        uint16 = 0x208 // push u32(local[a] * imm)
	opFusedAddLocal         uint16 = 0x209 // top = u32(top + local[a])
	opFusedI32MulConst      uint16 = 0x20A // top = u32(top * imm)
	opFusedScaleBase        uint16 = 0x20B // top = u32(u32(top*a) + b): address finalize (elem scale + array base)
	opFusedScaleBaseF64Load uint16 = 0x20C // top = f64 mem[u32(u32(top*a)+b) + imm]
	opFusedF64StoreConst    uint16 = 0x20D // pop addr; mem[addr+a] = f64 const imm
	opFusedF64StoreLocal    uint16 = 0x20E // pop addr; mem[addr+a] = local[b]
	opFusedF64AddStore      uint16 = 0x20F // pop addr,x,y; mem[addr+a] = x+y
	opFusedF64LoadCmp       uint16 = 0x210 // pop addr; top = b2u(cmp_b(top, mem[addr+imm]))
	opFusedI32LoadLocal     uint16 = 0x211 // push u32 mem[local[a] + offset imm]
)

// Register-IR opcodes (PR 4). The register tier rewrites each function's
// lowered stack code into three-address instructions over a register file
// that reuses the frame layout: registers 0..numParams+numLocals-1 are the
// locals, and register numParams+numLocals+i is the canonical home of
// operand-stack slot i. Plain value-typed wasm opcodes (arithmetic,
// compares, conversions) are reused verbatim in register code interpreted
// three-address — dst in .a, sources in .b/.c — so only control flow,
// moves, memory and immediate-fused forms need dedicated encodings.
const (
	// Moves and constants.
	rOpConst uint16 = 0x300 // r[a] = imm
	rOpCopy  uint16 = 0x301 // r[a] = r[b]

	// Control. Branch targets (.a) are absolute register-code indexes.
	rOpBr      uint16 = 0x302 // pc = a
	rOpBrIf    uint16 = 0x303 // if u32(r[b]) != 0: pc = a
	rOpBrIfZ   uint16 = 0x304 // if u32(r[b]) == 0: pc = a
	rOpBrTable uint16 = 0x305 // a=table idx, b=index reg, c=frame offset of operand top
	rOpReturn  uint16 = 0x306 // copy r[a:a+c] to r[0:c]; c=nresults
	rOpUnreach uint16 = 0x307

	// Calls. b is the frame offset of the operand-stack top (args
	// included) so the callee frame can be placed without tracking sp.
	rOpCall         uint16 = 0x308 // a=function index
	rOpCallIndirect uint16 = 0x309 // a=type idx, b=top offset after elem pop, c=elem reg

	// Parametric. select: r[a] = u32(r[imm]) != 0 ? r[b] : r[c].
	rOpSelect uint16 = 0x30A

	// Globals.
	rOpGlobalGet uint16 = 0x30B // r[a] = globals[b]
	rOpGlobalSet uint16 = 0x30C // globals[a] = r[b]

	// Memory management.
	rOpMemSize uint16 = 0x30D // r[a] = pages
	rOpMemGrow uint16 = 0x30E // r[a] = grow(u32(r[b]))

	// Checked memory accesses, 0x310..0x31F. Loads are
	// r[a] = mem[u32(r[b]) + imm]; stores are mem[u32(r[a]) + imm] = r[b].
	// All go through the same memLoad*/memStore* helpers the stack tiers
	// use: identical bounds checks, trap messages and EPC touch sequences.
	rOpLoad32U   uint16 = 0x310 // i32.load / f32.load / i64.load32_u
	rOpLoad64    uint16 = 0x311 // i64.load / f64.load
	rOpLoad8U    uint16 = 0x312 // i32.load8_u / i64.load8_u
	rOpLoad16U   uint16 = 0x313 // i32.load16_u / i64.load16_u
	rOpLoad8S32  uint16 = 0x314 // i32.load8_s
	rOpLoad16S32 uint16 = 0x315 // i32.load16_s
	rOpLoad8S64  uint16 = 0x316 // i64.load8_s
	rOpLoad16S64 uint16 = 0x317 // i64.load16_s
	rOpLoad32S64 uint16 = 0x318 // i64.load32_s
	rOpStore8    uint16 = 0x319
	rOpStore16   uint16 = 0x31A
	rOpStore32   uint16 = 0x31B
	rOpStore64   uint16 = 0x31C
	// mem[u32(r[a]) + uint32(c)] = imm (64-bit const store, init loops).
	rOpStore64Imm uint16 = 0x31D
	// Affine accesses: addr = u32(u32(r)*m + A) with imm = m<<32|A and
	// the wasm offset in c. Loads (index in r[b]): r[a] = mem[addr+c];
	// the store (index in r[a]) does mem[addr+c] = r[b]. One dispatch for
	// the "scale index, add array base, access" tail of every
	// array-element access.
	rOpLoadAff64  uint16 = 0x31E
	rOpLoadAff32  uint16 = 0x31F
	rOpStoreAff64 uint16 = 0x320

	// Hoisted per-window memory guards. rOpMemGuard: base = u32(r[b]),
	// span = [base+minOff, base+maxEnd) with imm = minOff<<32|maxEnd.
	// rOpMemGuardAff: base = u32(u32(r[b])*m + A) with imm = m<<32|A and
	// c = minOff<<16|maxEnd. If the span is in bounds and either no touch
	// hook is installed or the whole span lies on one already-hot EPC-TLB
	// page (at the current paging generation), execution falls through
	// into the raw window; otherwise pc = a (the checked copy of the
	// window). The guard itself never traps and never touches, so
	// counters, trap sites and trap messages are bit-identical either way.
	rOpMemGuard    uint16 = 0x330
	rOpMemGuardAff uint16 = 0x331

	// Raw twins of the checked 0x310..0x320 block: same operands, no
	// bounds check, no touch. Only ever emitted inside a window proven
	// safe by a preceding guard (see regalloc.go for the legality
	// argument).
	rawDelta    uint16 = 0x40
	rOpRawFirst uint16 = rOpLoad32U + rawDelta // 0x350
	rOpRawLast  uint16 = rOpStoreAff64 + rawDelta

	// Immediate-fused ALU forms (the register tier's superinstructions).
	rOpI32AddImm   uint16 = 0x380 // r[a] = u32(r[b]) + u32(imm)
	rOpI32MulImm   uint16 = 0x381 // r[a] = u32(r[b]) * u32(imm)
	rOpI64AddImm   uint16 = 0x382 // r[a] = r[b] + imm
	rOpI32MulAdd   uint16 = 0x383 // r[a] = u32(r[b])*u32(imm) + u32(r[c])
	rOpI32MulAddII uint16 = 0x384 // r[a] = u32(r[b])*u32(imm>>32) + u32(imm)
	rOpF64MulAdd   uint16 = 0x385 // r[a] = f64(r[imm]) + f64(r[b])*f64(r[c]), both roundings kept

	// f64 multiply with an immediate operand (NOT constant folding —
	// the multiply runs at execution with the exact constant bits).
	// c = 0: r[a] = f64(r[b]) * f64(imm); c = 1: the constant was the
	// left operand, r[a] = f64(imm) * f64(r[b]) — order is preserved
	// because NaN payload propagation makes it observable.
	rOpF64MulImm uint16 = 0x386

	// Fused compare-and-branch. The low 32 bits of imm hold the i32
	// compare opcode; rhs is r[c] (rOpBrCmp) or the constant in imm's
	// high 32 bits (rOpBrCmpImm). Only emitted for drop-free branches.
	rOpBrCmp    uint16 = 0x390 // if cmp(r[b], r[c]): pc = a
	rOpBrCmpImm uint16 = 0x391 // if cmp(r[b], u32(imm>>32)): pc = a

	// Superblock tier (PR 7). In the superblock form of a function the
	// header instruction of every compiled self-loop trace is replaced by
	// sOpTraceEnter; a = index into compiledFunc.traces. Interior pcs of
	// the region keep their original register instructions, so branches
	// into the middle of a traced loop (guard-fail blobs, forward jumps)
	// still execute correctly through runRegBody and re-enter the trace
	// at the next back-edge.
	sOpTraceEnter uint16 = 0x3A0
)
