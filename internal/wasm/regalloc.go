package wasm

// regalloc.go — the second AoT stage (PR 4): translation of lowered stack
// code into a basic-block register IR, wasm3/WAMR-style.
//
// The register file reuses the frame layout: registers 0..nLoc-1 are the
// params+locals, and register nLoc+i is the canonical home of operand
// stack slot i — so the frame footprint (and therefore the stack-overflow
// trap point) is identical to the stack tiers. Within a basic block the
// translator tracks each abstract stack slot as a descriptor (a register
// or a literal) instead of materialising pushes and pops:
//
//   - local.get / *.const push descriptors and emit nothing;
//   - pure int ops with all-constant operands fold at translation time
//     (never floats: folding with Go's compile-time evaluation could pick
//     different roundings/NaN bit patterns than the runtime arms, so
//     float values always flow through the same exec code paths);
//   - local value numbering reuses an already-computed pure expression
//     held in a still-live register (the A[i][j] += v pattern computes
//     its address once);
//   - immediate forms (add/mul-imm, mul-add, affine loads, fused
//     compare-and-branch) collapse the address-arithmetic chains the
//     PolyBench codegen emits around every array element;
//   - a store to a local that is provably overwritten before any read,
//     branch or block end is removed (dead-store elimination);
//   - per-window memory guards hoist the bounds check + EPC-TLB probe of
//     a group of same-base accesses: one guard proves the whole span is
//     in bounds and touch-free, then the window runs raw accesses; if
//     the guard fails, a checked copy of the window runs instead (see
//     the legality argument on closeBlock).
//
// At every basic-block boundary all live slots are materialised into
// their canonical homes, so join points agree regardless of which
// predecessor ran. Translation is per-function and bails out (keeping
// the fused stack form) on any pattern it cannot prove; execution mixes
// forms freely because invokeFunc dispatches per function.

// RegStats aggregates translation-time counters for one module.
type RegStats struct {
	Funcs      int64 // functions translated to register form
	Bailouts   int64 // functions kept in the fused stack form
	Folds      int64 // constants folded at translation time
	Props      int64 // constant/copy propagations and CSE reuses
	DeadStores int64 // dead local stores removed
	Fused      int64 // immediate-fused / affine superinstructions emitted
	Hoists     int64 // bounds-check guards hoisted (one per window)
}

// merge accumulates another translation's optimisation counters.
func (r *RegStats) merge(o RegStats) {
	r.Folds += o.Folds
	r.Props += o.Props
	r.DeadStores += o.DeadStores
	r.Fused += o.Fused
	r.Hoists += o.Hoists
}

// rdesc describes where an abstract operand-stack slot's value lives.
type rdKind uint8

const (
	rdReg   rdKind = iota // in frame register .reg
	rdConst               // literal .val, not yet materialised
	// rdAff is a symbolic affine address u32(u32(r[reg])*m + A) with
	// val = m<<32|A. Loads and stores consume it as a single affine
	// access; any other consumer materialises it with one mul-add-imm.
	rdAff
)

type rdesc struct {
	kind rdKind
	reg  int32
	val  uint64
	vn   uint32
}

// usesReg reports whether the descriptor reads register r.
func (d rdesc) usesReg(r int32) bool {
	return (d.kind == rdReg || d.kind == rdAff) && d.reg == r
}

// exprKey identifies a pure computation for local value numbering.
type exprKey struct {
	op     uint16
	va, vb uint32
	imm    uint64
}

// avail (vn -> register) is kept separately from exprs (expression ->
// vn): an expression keeps its value number even after the register that
// held it is clobbered or a fusion rewrote the defining instruction, so
// a later recomputation re-establishes availability under the same vn
// and downstream expressions built on it still CSE.

type regTranslator struct {
	m     *Module
	src   *compiledFunc
	out   []ins
	dead  []bool // parallel to out: removed by DSE, dropped at block close
	stk   []rdesc
	nLoc  int32
	stats *RegStats

	// Per-block value-numbering state.
	nextVN  uint32
	vnOf    map[int32]uint32
	constVN map[uint64]uint32
	exprs   map[exprKey]uint32
	avail   map[uint32]int32

	// mulImmPrev remembers the value number the dst register of the most
	// recently emitted mul-imm held before that write, so removing the
	// mul-imm (affine-address formation) can restore it — the register
	// still holds the old value.
	mulImmPrev uint32

	// Per-block bookkeeping.
	blockStart   int
	intraTargets []int         // absolute out indexes of skip labels
	pendingLocal map[int32]int // local reg -> out index of unread store
	homing       map[int]bool  // slots mid-materialisation (cycle detection)

	// Function-level bookkeeping.
	labels    map[int]int32 // old pc -> new pc of block start
	expect    map[int]int   // old pc -> operand depth at entry
	fallbacks [][]ins       // checked window copies, appended at finalize
	guarded   bool          // emit hoisted memory guards (touch-hook form)
	bailed    bool
}

// translateReg rewrites src into register form. ok is false when the
// function uses a pattern the translator does not prove; the caller then
// keeps the fused stack form for this function.
func translateReg(m *Module, src *compiledFunc, stats *RegStats, guarded bool) (compiledFunc, bool) {
	t := &regTranslator{
		m: m, src: src, stats: stats, guarded: guarded,
		nLoc:         int32(src.numParams + src.numLocals),
		vnOf:         make(map[int32]uint32),
		constVN:      make(map[uint64]uint32),
		exprs:        make(map[exprKey]uint32),
		avail:        make(map[uint32]int32),
		pendingLocal: make(map[int32]int),
		homing:       make(map[int]bool),
		labels:       make(map[int]int32),
		expect:       make(map[int]int),
	}

	leaders := map[int]bool{0: true}
	for _, i := range src.code {
		switch i.op {
		case opLoweredBr, opLoweredBrIf, opLoweredBrIfZ:
			leaders[int(i.a)] = true
		}
	}
	for _, tbl := range src.brTables {
		for _, tgt := range tbl {
			leaders[int(tgt.pc)] = true
		}
	}

	t.expect[0] = 0
	inBlock := false
	fell := false
	for pc := 0; pc < len(src.code) && !t.bailed; pc++ {
		if leaders[pc] {
			d, known := t.expect[pc]
			if inBlock {
				// Fallthrough into a join point: home everything first.
				if known && d != len(t.stk) {
					t.bail()
					break
				}
				d = len(t.stk)
				t.expect[pc] = d
				t.materializeAll()
				t.closeBlock()
			} else if !known {
				t.bail() // leader reachable only from unseen code
				break
			}
			t.openBlock(pc, d)
			inBlock = true
		} else if !inBlock {
			t.bail() // unreachable non-leader instruction
			break
		}
		fell = t.instr(&src.code[pc])
		if !fell && !t.bailed {
			t.closeBlock()
			inBlock = false
		}
	}
	if t.bailed || fell {
		// A function body always ends with an opLoweredReturn trailer.
		return compiledFunc{}, false
	}
	return t.finalize()
}

func (t *regTranslator) bail() { t.bailed = true }

func (t *regTranslator) home(slot int) int32 { return t.nLoc + int32(slot) }

// homeOffTop returns the frame offset of the operand-stack top.
func (t *regTranslator) homeOffTop() int32 { return t.nLoc + int32(len(t.stk)) }

func (t *regTranslator) openBlock(pc, depth int) {
	t.labels[pc] = int32(len(t.out))
	t.blockStart = len(t.out)
	t.intraTargets = t.intraTargets[:0]
	for k := range t.vnOf {
		delete(t.vnOf, k)
	}
	for k := range t.constVN {
		delete(t.constVN, k)
	}
	for k := range t.exprs {
		delete(t.exprs, k)
	}
	for k := range t.avail {
		delete(t.avail, k)
	}
	for k := range t.pendingLocal {
		delete(t.pendingLocal, k)
	}
	t.stk = t.stk[:0]
	for i := 0; i < depth; i++ {
		h := t.home(i)
		t.stk = append(t.stk, rdesc{kind: rdReg, reg: h, vn: t.freshVN(h)})
	}
}

// --- value numbering ---

func (t *regTranslator) freshVN(reg int32) uint32 {
	t.nextVN++
	t.vnOf[reg] = t.nextVN
	return t.nextVN
}

func (t *regTranslator) vnOfReg(reg int32) uint32 {
	if v, ok := t.vnOf[reg]; ok {
		return v
	}
	return t.freshVN(reg)
}

func (t *regTranslator) constNum(val uint64) uint32 {
	if v, ok := t.constVN[val]; ok {
		return v
	}
	t.nextVN++
	t.constVN[val] = t.nextVN
	return t.nextVN
}

func (t *regTranslator) vnOfDesc(d rdesc) uint32 {
	switch d.kind {
	case rdConst:
		return t.constNum(d.val)
	case rdAff:
		// The descriptor's own number identifies u32(r*m+A); the index
		// register's number would alias expressions over the bare index
		// (homeSlot likewise materialises under d.vn). Affine pushes
		// always carry the vn of their defining add, but guard anyway: a
		// fresh number is merely a missed CSE, never a false hit.
		if d.vn != 0 {
			return d.vn
		}
		t.nextVN++
		return t.nextVN
	}
	return t.vnOfReg(d.reg)
}

// --- emission helpers ---

func (t *regTranslator) emit(i ins) int {
	t.out = append(t.out, i)
	t.dead = append(t.dead, false)
	return len(t.out) - 1
}

// readReg marks a register as observed, pinning any pending local store.
func (t *regTranslator) readReg(r int32) {
	if r < t.nLoc {
		delete(t.pendingLocal, r)
	}
}

// prepWrite materialises every live descriptor that aliases reg so the
// upcoming write cannot invalidate it. exceptSlot is the slot the write
// defines (or -1).
func (t *regTranslator) prepWrite(reg int32, exceptSlot int) {
	for s := range t.stk {
		if s == exceptSlot {
			continue
		}
		if t.stk[s].usesReg(reg) {
			t.homeSlot(s)
		}
	}
}

// noteWrite records the new value number of reg after a write and, for
// locals, runs the dead-store bookkeeping. idx is the out index of the
// writing instruction (or -1 for writes that must not be DSE'd).
func (t *regTranslator) noteWrite(reg int32, idx int) uint32 {
	if reg < t.nLoc {
		if prev, ok := t.pendingLocal[reg]; ok {
			t.dead[prev] = true
			t.stats.DeadStores++
		}
		// Only side-effect-free stores are DSE candidates: a trapping or
		// memory-touching definition must execute even if overwritten.
		if idx >= 0 && regSideEffectFree(t.out[idx].op) {
			t.pendingLocal[reg] = idx
		} else {
			delete(t.pendingLocal, reg)
		}
	}
	return t.freshVN(reg)
}

// homeSlot forces slot s's value into its canonical home register.
func (t *regTranslator) homeSlot(s int) {
	if t.bailed {
		return
	}
	d := t.stk[s]
	h := t.home(s)
	if d.kind == rdReg && d.reg == h {
		return
	}
	// CSE reuse can leave slots living in each other's homes (compute
	// two expressions, drop both, recompute them in swapped slots): then
	// homing one slot needs its home's current tenant homed first, and
	// vice versa — an unbreakable cycle, since the frame has no scratch
	// register (the footprint must match the stack tiers). Detect the
	// re-entry and bail to the fused form instead of recursing forever.
	if t.homing[s] {
		t.bail()
		return
	}
	t.homing[s] = true
	defer delete(t.homing, s)
	t.prepWrite(h, s)
	if t.bailed {
		return
	}
	var vn uint32
	switch d.kind {
	case rdConst:
		t.emit(ins{op: rOpConst, a: h, imm: d.val})
		vn = t.constNum(d.val)
	case rdAff:
		t.readReg(d.reg)
		t.emit(ins{op: rOpI32MulAddII, a: h, b: d.reg, imm: d.val})
		vn = d.vn
	default:
		t.readReg(d.reg)
		t.emit(ins{op: rOpCopy, a: h, b: d.reg})
		vn = t.vnOfReg(d.reg)
	}
	t.noteWrite(h, -1)
	t.vnOf[h] = vn
	if vn != 0 {
		t.avail[vn] = h
	}
	t.stk[s] = rdesc{kind: rdReg, reg: h, vn: vn}
}

func (t *regTranslator) materializeAll() {
	for s := range t.stk {
		t.homeSlot(s)
	}
}

// ensureReg returns a register holding slot s's value, materialising a
// literal or affine address into the slot's own home when needed.
func (t *regTranslator) ensureReg(s int) int32 {
	if t.stk[s].kind != rdReg {
		t.homeSlot(s)
	}
	return t.stk[s].reg
}

func (t *regTranslator) push(d rdesc) {
	t.stk = append(t.stk, d)
}

func (t *regTranslator) pop() rdesc {
	d := t.stk[len(t.stk)-1]
	t.stk = t.stk[:len(t.stk)-1]
	return d
}

// canTouchLast reports whether the last n emitted instructions can be
// rewritten or truncated: they must belong to the current block, be
// live, and not be the landing site of an intra-block skip label.
func (t *regTranslator) canTouchLast(n int) bool {
	if len(t.out)-n < t.blockStart {
		return false
	}
	for i := len(t.out) - n; i < len(t.out); i++ {
		if t.dead[i] {
			return false
		}
	}
	for _, tg := range t.intraTargets {
		if tg > len(t.out)-n {
			return false
		}
	}
	return true
}

// lastIs returns the last emitted instruction if it is live, rewritable
// and has dst == reg.
func (t *regTranslator) lastIs(op uint16, reg int32) (*ins, bool) {
	if !t.canTouchLast(1) {
		return nil, false
	}
	li := &t.out[len(t.out)-1]
	if li.op == op && li.a == reg {
		return li, true
	}
	return nil, false
}

// refs counts live descriptors referencing reg.
func (t *regTranslator) refs(reg int32) int {
	return t.refsBelow(reg, len(t.stk))
}

// refsBelow counts descriptors in stk[:limit] referencing reg — the
// slots that stay live once an instruction's operands (slots >= limit)
// are consumed.
func (t *regTranslator) refsBelow(reg int32, limit int) int {
	n := 0
	for s := 0; s < limit && s < len(t.stk); s++ {
		if t.stk[s].usesReg(reg) {
			n++
		}
	}
	return n
}

// prepWriteBelow materialises the descriptors below limit that alias
// reg, ahead of a write to it. The instruction's own operands (slots
// >= limit) MUST still be on the abstract stack when this runs: any
// materialisation that would clobber a register an operand aliases then
// re-homes that operand first (prepWrite scans the whole stack), which
// is the invariant that makes popped-value clobbering impossible.
func (t *regTranslator) prepWriteBelow(reg int32, limit int) {
	for s := 0; s < limit && s < len(t.stk); s++ {
		if t.stk[s].usesReg(reg) {
			t.homeSlot(s)
		}
	}
}

// --- instruction translation ---

// instr translates one lowered instruction, returning false when it ends
// the block with no fallthrough.
func (t *regTranslator) instr(i *ins) bool {
	op := i.op
	switch op {
	case uint16(OpUnreachable):
		t.emit(ins{op: rOpUnreach})
		return false

	case opLoweredBr:
		t.branchTo(int(i.a), int(i.b), int(i.c))
		t.emit(ins{op: rOpBr, a: -int32(i.a) - 1})
		t.clearPendingLocals()
		return false

	case opLoweredBrIf, opLoweredBrIfZ:
		t.condBranch(op, int(i.a), int(i.b), int(i.c))
		return !t.bailed

	case opLoweredBrTable:
		// Home everything (index included) BEFORE popping: popped
		// descriptors are invisible to prepWrite and could be clobbered
		// by the materialisation of the slots beneath.
		t.materializeAll()
		idxReg := t.pop().reg
		t.readReg(idxReg)
		d := len(t.stk)
		for _, tgt := range t.src.brTables[i.a] {
			t.recordExpect(int(tgt.pc), d-int(tgt.drop))
		}
		t.emit(ins{op: rOpBrTable, a: i.a, b: idxReg, c: t.homeOffTop()})
		t.clearPendingLocals()
		return false

	case opLoweredReturn:
		keep := int(i.c)
		var from int32
		if keep == 1 {
			from = t.ensureReg(len(t.stk) - 1)
			t.readReg(from)
		} else {
			for s := len(t.stk) - keep; s < len(t.stk); s++ {
				t.homeSlot(s)
			}
			from = t.home(len(t.stk) - keep)
		}
		t.emit(ins{op: rOpReturn, a: from, c: int32(keep)})
		t.stk = t.stk[:len(t.stk)-keep]
		t.clearPendingLocals()
		return false

	case uint16(OpCall):
		ft, err := t.m.TypeOfFunc(uint32(i.a))
		if err != nil {
			t.bail()
			return false
		}
		t.callCommon(len(ft.Params))
		t.emit(ins{op: rOpCall, a: i.a, b: t.homeOffTop() + int32(len(ft.Params))})
		t.pushResults(len(ft.Results))

	case uint16(OpCallIndirect):
		ft := t.m.Types[i.a]
		// Home everything (element index included) before popping, so
		// nothing emitted below can clobber the popped element register.
		t.materializeAll()
		elemReg := t.pop().reg
		t.readReg(elemReg)
		t.callCommon(len(ft.Params))
		t.emit(ins{op: rOpCallIndirect, a: i.a,
			b: t.homeOffTop() + int32(len(ft.Params)), c: elemReg})
		t.pushResults(len(ft.Results))

	case uint16(OpDrop):
		t.pop()

	case uint16(OpSelect):
		n := len(t.stk)
		if t.stk[n-1].kind == rdConst {
			// Pure selection: no arithmetic, no rounding — fold freely.
			cond := t.pop()
			v2 := t.pop()
			v1 := t.pop()
			if uint32(cond.val) != 0 {
				t.push(v1)
			} else {
				t.push(v2)
			}
			t.stats.Folds++
			return true
		}
		// Materialise all three operands in place, then protect the dst
		// write — operands stay on the stack throughout.
		t.ensureReg(n - 3)
		t.ensureReg(n - 2)
		t.ensureReg(n - 1)
		dst := t.home(n - 3)
		t.prepWriteBelow(dst, n-3)
		r1, r2, rc := t.stk[n-3].reg, t.stk[n-2].reg, t.stk[n-1].reg
		t.stk = t.stk[:n-3]
		t.readReg(r1)
		t.readReg(r2)
		t.readReg(rc)
		t.emit(ins{op: rOpSelect, a: dst, b: r1, c: r2, imm: uint64(uint32(rc))})
		vn := t.noteWrite(dst, -1)
		t.push(rdesc{kind: rdReg, reg: dst, vn: vn})

	case uint16(OpLocalGet):
		r := int32(i.a)
		delete(t.pendingLocal, r) // the value is observed
		t.push(rdesc{kind: rdReg, reg: r, vn: t.vnOfReg(r)})

	case uint16(OpLocalSet):
		t.localSet(int32(i.a), false)

	case uint16(OpLocalTee):
		t.localSet(int32(i.a), true)

	case uint16(OpGlobalGet):
		dst := t.home(len(t.stk))
		t.prepWrite(dst, -1)
		t.emit(ins{op: rOpGlobalGet, a: dst, b: i.a})
		vn := t.noteWrite(dst, -1)
		t.push(rdesc{kind: rdReg, reg: dst, vn: vn})

	case uint16(OpGlobalSet):
		src := t.ensureReg(len(t.stk) - 1)
		t.pop()
		t.readReg(src)
		t.emit(ins{op: rOpGlobalSet, a: i.a, b: src})

	case uint16(OpMemorySize):
		dst := t.home(len(t.stk))
		t.prepWrite(dst, -1)
		t.emit(ins{op: rOpMemSize, a: dst})
		vn := t.noteWrite(dst, -1)
		t.push(rdesc{kind: rdReg, reg: dst, vn: vn})

	case uint16(OpMemoryGrow):
		n := len(t.stk)
		t.ensureReg(n - 1)
		dst := t.home(n - 1)
		t.prepWriteBelow(dst, n-1)
		src := t.stk[n-1].reg
		t.stk = t.stk[:n-1]
		t.readReg(src)
		t.emit(ins{op: rOpMemGrow, a: dst, b: src})
		vn := t.noteWrite(dst, -1)
		t.push(rdesc{kind: rdReg, reg: dst, vn: vn})

	case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
		t.push(rdesc{kind: rdConst, val: i.imm})

	default:
		if lop, ok := regLoadOp(op); ok {
			t.load(lop, i.imm)
		} else if sop, ok := regStoreOp(op); ok {
			t.store(sop, i.imm)
		} else if regBinaryOp(op) {
			t.binary(op)
		} else if regUnaryOp(op) {
			t.unary(op)
		} else {
			t.bail()
			return false
		}
	}
	return true
}

func (t *regTranslator) clearPendingLocals() {
	for k := range t.pendingLocal {
		delete(t.pendingLocal, k)
	}
}

func (t *regTranslator) recordExpect(target, depth int) {
	if d, ok := t.expect[target]; ok {
		if d != depth {
			t.bail()
		}
		return
	}
	t.expect[target] = depth
}

// branchTo homes the live slots and emits the value-transfer copies for a
// taken branch (drop slots discarded beneath the kept keep slots).
func (t *regTranslator) branchTo(target, drop, keep int) {
	t.materializeAll()
	d := len(t.stk)
	if drop > 0 {
		for j := d - keep; j < d; j++ {
			t.emit(ins{op: rOpCopy, a: t.home(j - drop), b: t.home(j)})
		}
	}
	t.recordExpect(target, d-drop)
}

// condBranch translates br_if / br_if_z, fusing a preceding i32 compare
// into a single compare-and-branch where possible.
func (t *regTranslator) condBranch(op uint16, target, drop, keep int) {
	// Home everything — the condition included — BEFORE popping it:
	// popped descriptors are invisible to prepWrite, so materialising
	// the slots beneath could otherwise clobber a CSE-aliased register
	// the condition lives in. (Branch conditions are never folded even
	// when literal: the fallthrough code was emitted live by the
	// validator and must stay addressable.)
	t.materializeAll()
	condReg := t.pop().reg
	d := len(t.stk)
	t.recordExpect(target, d-drop)

	if drop > 0 {
		// Taken path must shift kept values: invert, copy, jump.
		t.readReg(condReg)
		skipOp := rOpBrIfZ
		if op == opLoweredBrIfZ {
			skipOp = rOpBrIf
		}
		skip := t.emit(ins{op: skipOp, b: condReg})
		for j := d - keep; j < d; j++ {
			t.emit(ins{op: rOpCopy, a: t.home(j - drop), b: t.home(j)})
		}
		t.emit(ins{op: rOpBr, a: -int32(target) - 1})
		t.out[skip].a = int32(len(t.out))
		t.intraTargets = append(t.intraTargets, len(t.out))
		t.clearPendingLocals()
		// Fallthrough: everything homed.
		return
	}

	t.readReg(condReg)
	// Fuse "cmp; br_if" when the condition is the just-computed compare
	// living in the popped slot's own home with no other readers.
	if t.canTouchLast(1) && condReg == t.home(d) && t.refs(condReg) == 0 {
		li := &t.out[len(t.out)-1]
		if li.a == condReg && isI32CmpOp(li.op) {
			cmpOp := byte(li.op)
			if op == opLoweredBrIfZ {
				cmpOp = negCmpOp(cmpOp)
			}
			// "x cmp const; br" with the constant materialised just
			// before the compare collapses to compare-imm-and-branch.
			if t.canTouchLast(2) && len(t.out) >= 2 {
				ci := &t.out[len(t.out)-2]
				if ci.op == rOpConst && ci.a == li.c && li.b != ci.a &&
					t.refs(li.c) == 0 && ci.a >= t.nLoc {
					b := li.b
					constVal := uint64(uint32(ci.imm)) << 32
					delete(t.vnOf, li.a)
					delete(t.vnOf, ci.a)
					t.out = t.out[:len(t.out)-2]
					t.dead = t.dead[:len(t.dead)-2]
					t.emit(ins{op: rOpBrCmpImm, a: -int32(target) - 1, b: b,
						imm: constVal | uint64(cmpOp)})
					t.stats.Fused++
					t.clearPendingLocals()
					return
				}
			}
			b, c := li.b, li.c
			delete(t.vnOf, li.a)
			t.out = t.out[:len(t.out)-1]
			t.dead = t.dead[:len(t.dead)-1]
			t.emit(ins{op: rOpBrCmp, a: -int32(target) - 1, b: b, c: c, imm: uint64(cmpOp)})
			t.stats.Fused++
			t.clearPendingLocals()
			return
		}
	}
	bop := rOpBrIf
	if op == opLoweredBrIfZ {
		bop = rOpBrIfZ
	}
	t.emit(ins{op: bop, a: -int32(target) - 1, b: condReg})
	t.clearPendingLocals()
}

// callCommon homes the nargs argument slots and any surviving descriptor
// that aliases a register the callee frame will clobber.
func (t *regTranslator) callCommon(nargs int) {
	d := len(t.stk)
	if d < nargs {
		t.bail()
		return
	}
	base := t.home(d - nargs)
	for s := 0; s < d-nargs; s++ {
		if t.stk[s].kind != rdConst && t.stk[s].reg >= base {
			t.homeSlot(s)
		}
	}
	for s := d - nargs; s < d; s++ {
		t.homeSlot(s)
	}
	t.stk = t.stk[:d-nargs]
	// The callee owns every register at and above its frame base.
	for r := range t.vnOf {
		if r >= base {
			delete(t.vnOf, r)
		}
	}
}

func (t *regTranslator) pushResults(nres int) {
	for i := 0; i < nres; i++ {
		h := t.home(len(t.stk))
		vn := t.freshVN(h)
		t.push(rdesc{kind: rdReg, reg: h, vn: vn})
	}
}

// localSet writes the popped value into local x (keeping it on the stack
// for tee), retargeting the defining instruction when the value was just
// computed into the popped slot's own home.
func (t *regTranslator) localSet(x int32, tee bool) {
	// The value stays on the stack while descriptors aliasing x are
	// materialised, so that materialisation can never clobber a
	// register the value lives in (prepWrite re-homes it first).
	t.prepWrite(x, len(t.stk)-1)
	v := t.pop()
	// Invalidate CSE entries that read the local's old value via vnOf.
	switch {
	case v.kind == rdReg && v.reg == x:
		// local.get x; local.set x — a no-op: nothing is emitted, so the
		// dead-store bookkeeping must not run. A pending store to x is
		// still the local's definition (with tee, the only one) and stays
		// a DSE candidate only for a genuine later overwrite.
		t.stats.Props++
		t.vnOf[x] = v.vn
	case v.kind == rdReg && v.reg == t.home(len(t.stk)) && t.refs(v.reg) == 0 && t.canTouchLast(1) &&
		t.out[len(t.out)-1].a == v.reg && regRetargetable(t.out[len(t.out)-1].op):
		// Retarget the defining instruction straight into the local:
		// "local.get x; i32.const 1; i32.add; local.set x" becomes one
		// add-immediate with dst = x.
		idx := len(t.out) - 1
		delete(t.vnOf, v.reg)
		t.out[idx].a = x
		vn := t.noteWrite(x, idx)
		t.vnOf[x] = vn
		t.stats.Props++
		v = rdesc{kind: rdReg, reg: x, vn: vn}
	case v.kind == rdConst:
		idx := t.emit(ins{op: rOpConst, a: x, imm: v.val})
		t.noteWrite(x, idx)
		t.vnOf[x] = t.constNum(v.val)
		v = rdesc{kind: rdReg, reg: x, vn: t.vnOf[x]}
	case v.kind == rdAff:
		t.readReg(v.reg)
		idx := t.emit(ins{op: rOpI32MulAddII, a: x, b: v.reg, imm: v.val})
		t.noteWrite(x, idx)
		t.vnOf[x] = v.vn
		v = rdesc{kind: rdReg, reg: x, vn: v.vn}
	default:
		t.readReg(v.reg)
		idx := t.emit(ins{op: rOpCopy, a: x, b: v.reg})
		t.noteWrite(x, idx)
		t.vnOf[x] = v.vn
		v = rdesc{kind: rdReg, reg: x, vn: v.vn}
	}
	if tee {
		t.push(v)
	}
}

// --- memory ---

// regLoadOp maps a wasm load opcode to its checked register opcode.
func regLoadOp(op uint16) (uint16, bool) {
	switch op {
	case uint16(OpI32Load), uint16(OpF32Load), uint16(OpI64Load32U):
		return rOpLoad32U, true
	case uint16(OpI64Load), uint16(OpF64Load):
		return rOpLoad64, true
	case uint16(OpI32Load8U), uint16(OpI64Load8U):
		return rOpLoad8U, true
	case uint16(OpI32Load16U), uint16(OpI64Load16U):
		return rOpLoad16U, true
	case uint16(OpI32Load8S):
		return rOpLoad8S32, true
	case uint16(OpI32Load16S):
		return rOpLoad16S32, true
	case uint16(OpI64Load8S):
		return rOpLoad8S64, true
	case uint16(OpI64Load16S):
		return rOpLoad16S64, true
	case uint16(OpI64Load32S):
		return rOpLoad32S64, true
	}
	return 0, false
}

func regStoreOp(op uint16) (uint16, bool) {
	switch op {
	case uint16(OpI32Store8), uint16(OpI64Store8):
		return rOpStore8, true
	case uint16(OpI32Store16), uint16(OpI64Store16):
		return rOpStore16, true
	case uint16(OpI32Store), uint16(OpF32Store), uint16(OpI64Store32):
		return rOpStore32, true
	case uint16(OpI64Store), uint16(OpF64Store):
		return rOpStore64, true
	}
	return 0, false
}

func (t *regTranslator) load(lop uint16, offset uint64) {
	n := len(t.stk)
	dst := t.home(n - 1)
	// Affine fusion: a symbolic address folds the whole "scale, add
	// array base, load" tail into one dispatch. The address descriptor
	// stays on the stack while the dst write is protected.
	if t.stk[n-1].kind == rdAff && (lop == rOpLoad64 || lop == rOpLoad32U) && offset <= 0x7FFFFFFF {
		t.prepWriteBelow(dst, n-1)
		if based := t.stk[n-1]; based.kind == rdAff {
			t.stk = t.stk[:n-1]
			t.readReg(based.reg)
			aff := rOpLoadAff64
			if lop == rOpLoad32U {
				aff = rOpLoadAff32
			}
			t.emit(ins{op: aff, a: dst, b: based.reg, c: int32(offset), imm: based.val})
			t.stats.Fused++
			vn := t.noteWrite(dst, -1)
			t.push(rdesc{kind: rdReg, reg: dst, vn: vn})
			return
		}
	}
	t.ensureReg(n - 1)
	t.prepWriteBelow(dst, n-1)
	baseReg := t.stk[n-1].reg
	t.stk = t.stk[:n-1]
	t.readReg(baseReg)
	t.emit(ins{op: lop, a: dst, b: baseReg, imm: offset})
	vn := t.noteWrite(dst, -1)
	t.push(rdesc{kind: rdReg, reg: dst, vn: vn})
}

func (t *regTranslator) store(sop uint16, offset uint64) {
	n := len(t.stk)
	// Operands stay on the stack through every materialisation so no
	// write can clobber a register they alias.
	if t.stk[n-2].kind == rdAff && sop == rOpStore64 && offset <= 0x7FFFFFFF {
		t.ensureReg(n - 1)
		if based := t.stk[n-2]; based.kind == rdAff {
			valReg := t.stk[n-1].reg
			t.stk = t.stk[:n-2]
			t.readReg(based.reg)
			t.readReg(valReg)
			t.emit(ins{op: rOpStoreAff64, a: based.reg, b: valReg, c: int32(offset), imm: based.val})
			t.stats.Fused++
			return
		}
	}
	t.ensureReg(n - 2)
	if vald := t.stk[n-1]; sop == rOpStore64 && vald.kind == rdConst && offset <= 0x7FFFFFFF {
		// Constant store (array-init loops): carry the literal in imm.
		baseReg := t.stk[n-2].reg
		t.stk = t.stk[:n-2]
		t.readReg(baseReg)
		t.emit(ins{op: rOpStore64Imm, a: baseReg, c: int32(offset), imm: vald.val})
		t.stats.Fused++
		return
	}
	t.ensureReg(n - 1)
	baseReg, valReg := t.stk[n-2].reg, t.stk[n-1].reg
	t.stk = t.stk[:n-2]
	t.readReg(baseReg)
	t.readReg(valReg)
	t.emit(ins{op: sop, a: baseReg, b: valReg, imm: offset})
}

// --- pure value operations ---

func (t *regTranslator) binary(op uint16) {
	n := len(t.stk)
	rd, ld := t.stk[n-1], t.stk[n-2]
	// Constant folding: integer-only, never on trapping ops.
	if ld.kind == rdConst && rd.kind == rdConst {
		if v, ok := foldBinary(op, ld.val, rd.val); ok {
			t.stk = t.stk[:n-2]
			t.push(rdesc{kind: rdConst, val: v})
			t.stats.Folds++
			return
		}
	}
	dstSlot := n - 2
	dst := t.home(dstSlot)
	va, vb := t.vnOfDesc(ld), t.vnOfDesc(rd)
	key := exprKey{op: op, va: va, vb: vb}
	if regCommutative(op) && vb < va {
		key.va, key.vb = vb, va
	}
	pure := regPure(op)
	var vnVal uint32
	if pure {
		var known bool
		if vnVal, known = t.exprs[key]; !known {
			t.nextVN++
			vnVal = t.nextVN
			t.exprs[key] = vnVal
		}
		if reg, ok := t.avail[vnVal]; ok && t.vnOf[reg] == vnVal {
			// CSE: the value is still live in reg.
			t.readReg(reg)
			t.stk = t.stk[:dstSlot]
			t.push(rdesc{kind: rdReg, reg: reg, vn: vnVal})
			t.stats.Props++
			t.cleanDeadTail()
			return
		}
	}

	// Every emitting path below keeps the operands on the abstract
	// stack until just before its emit, so any protective
	// materialisation re-homes them instead of clobbering their
	// registers; in-place rewrites emit nothing and pop afterwards.
	fusedDone := false
	switch op {
	case uint16(OpI32Add):
		// Prefer mul-add fusion over add-imm: it feeds the affine
		// accesses.
		if mi, other, ok := t.fuseLastMul(rOpI32MulImm, ld, rd, dst, dstSlot, false); ok {
			*mi = ins{op: rOpI32MulAdd, a: dst, b: mi.b, c: other.reg, imm: mi.imm}
			t.stk = t.stk[:dstSlot]
			fusedDone = true
			break
		}
		if c, r, ok := splitConst(ld, rd); ok {
			if li, ok2 := t.lastIs(rOpI32MulImm, r.reg); ok2 && r.reg >= t.nLoc &&
				t.refsBelow(r.reg, dstSlot) == 0 {
				// (x*m)+A — the address-finalise pair. Keep the address
				// symbolic: loads and stores consume it as one affine
				// access, any other reader materialises one mul-add-imm.
				idxReg, m := li.b, li.imm
				if t.mulImmPrev != 0 {
					t.vnOf[r.reg] = t.mulImmPrev
				} else {
					delete(t.vnOf, r.reg)
				}
				t.out = t.out[:len(t.out)-1]
				t.dead = t.dead[:len(t.dead)-1]
				t.stats.Fused++
				t.stk = t.stk[:dstSlot]
				t.push(rdesc{kind: rdAff, reg: idxReg,
					val: m<<32 | uint64(uint32(c.val)), vn: vnVal})
				return
			}
			fusedDone = t.emitImm(rOpI32AddImm, dst, dstSlot, uint64(uint32(c.val)))
		}
		if !fusedDone && t.fuseSwapMul(ld, rd, dst, dstSlot) {
			t.stk = t.stk[:dstSlot]
			fusedDone = true
		}
	case uint16(OpI32Sub):
		// x - c == x + (-c) with u32 wraparound: bit-identical.
		if rd.kind == rdConst && ld.kind == rdReg {
			fusedDone = t.emitImm(rOpI32AddImm, dst, dstSlot, uint64(-uint32(rd.val)))
		}
	case uint16(OpI32Mul):
		if c, _, ok := splitConst(ld, rd); ok {
			fusedDone = t.emitImm(rOpI32MulImm, dst, dstSlot, uint64(uint32(c.val)))
		}
	case uint16(OpI64Add):
		if c, _, ok := splitConst(ld, rd); ok {
			fusedDone = t.emitImm(rOpI64AddImm, dst, dstSlot, c.val)
		}
	case uint16(OpI64Sub):
		if rd.kind == rdConst && ld.kind == rdReg {
			fusedDone = t.emitImm(rOpI64AddImm, dst, dstSlot, -rd.val)
		}
	case uint16(OpF64Mul):
		// A constant on either side becomes an immediate operand,
		// evaluated at run time — never folded — with the operand ORDER
		// preserved via the c flag (NaN payload propagation makes float
		// operand order observable).
		if c, _, ok := splitConst(ld, rd); ok {
			cflag := int32(0)
			if ld.kind == rdConst {
				cflag = 1 // constant was the left operand
			}
			fusedDone = t.emitImmC(rOpF64MulImm, dst, dstSlot, c.val, cflag)
		}
	case uint16(OpF64Add):
		// f64.mul feeding f64.add fuses with both roundings kept. Only
		// the order-preserving shape (mul result on the right) fuses:
		// rOpF64MulAdd computes addend+product, and float operand order
		// is observable through NaN payload propagation.
		if mi, other, ok := t.fuseLastMul(uint16(OpF64Mul), ld, rd, dst, dstSlot, true); ok {
			*mi = ins{op: rOpF64MulAdd, a: dst, b: mi.b, c: mi.c,
				imm: uint64(uint32(other.reg))}
			t.stk = t.stk[:dstSlot]
			fusedDone = true
		}
	}
	if fusedDone {
		t.stats.Fused++
	} else {
		t.ensureReg(dstSlot)
		t.ensureReg(dstSlot + 1)
		t.prepWriteBelow(dst, dstSlot)
		lr, rr := t.stk[dstSlot].reg, t.stk[dstSlot+1].reg
		t.stk = t.stk[:dstSlot]
		t.readReg(lr)
		t.readReg(rr)
		t.emit(ins{op: op, a: dst, b: lr, c: rr})
	}
	vn := t.noteWrite(dst, -1)
	if pure {
		vn = vnVal
		t.vnOf[dst] = vn
		t.avail[vn] = dst
	}
	t.push(rdesc{kind: rdReg, reg: dst, vn: vn})
}

// emitImm emits an immediate-form binary op. The single register
// operand (exactly one of the two operand slots, by the callers'
// guards) is re-resolved after protecting the dst write, because the
// protection may have re-homed it; the operands are popped only at the
// emit itself.
func (t *regTranslator) emitImm(iop uint16, dst int32, dstSlot int, imm uint64) bool {
	return t.emitImmC(iop, dst, dstSlot, imm, 0)
}

func (t *regTranslator) emitImmC(iop uint16, dst int32, dstSlot int, imm uint64, cflag int32) bool {
	t.prepWriteBelow(dst, dstSlot)
	r := int32(-1)
	for s := dstSlot; s < dstSlot+2; s++ {
		if t.stk[s].kind == rdReg {
			r = t.stk[s].reg
			break
		}
	}
	if r < 0 {
		return false
	}
	if iop == rOpI32MulImm {
		// Remember dst's previous value number: removing this mul-imm
		// later (affine-address formation, swap fusion) reverts dst to
		// the value it still physically holds.
		t.mulImmPrev = t.vnOf[dst]
	}
	t.stk = t.stk[:dstSlot]
	t.readReg(r)
	t.emit(ins{op: iop, a: dst, b: r, c: cflag, imm: imm})
	return true
}

// cleanDeadTail removes trailing side-effect-free instructions whose
// home destination no live descriptor reads — the recomputation a CSE
// hit just made redundant.
func (t *regTranslator) cleanDeadTail() {
	for t.canTouchLast(1) {
		li := &t.out[len(t.out)-1]
		if li.a < t.nLoc || !regSideEffectFree(li.op) || t.refs(li.a) != 0 {
			return
		}
		delete(t.vnOf, li.a)
		t.out = t.out[:len(t.out)-1]
		t.dead = t.dead[:len(t.dead)-1]
	}
}

// fuseLastMul checks that the immediately preceding instruction is mulOp
// writing a dead home register that is exactly one of the two operands
// (the other being a plain register), with the result home unreferenced.
// The caller rewrites it in place into a fused mul-add with dst = the
// result home; execution order is preserved because the rewritten
// instruction stays last and reads only values that existed before it.
func (t *regTranslator) fuseLastMul(mulOp uint16, ld, rd rdesc, dst int32, dstSlot int, requireMulRHS bool) (*ins, rdesc, bool) {
	if !t.canTouchLast(1) || t.refsBelow(dst, dstSlot) != 0 {
		return nil, rdesc{}, false
	}
	li := &t.out[len(t.out)-1]
	if li.op != mulOp || li.a < t.nLoc {
		return nil, rdesc{}, false
	}
	var other rdesc
	switch {
	case ld.kind == rdReg && ld.reg == li.a && !(rd.kind == rdReg && rd.reg == li.a):
		// Mul result is the LEFT operand: fusing would swap operand
		// order — forbidden where order is observable (floats).
		if requireMulRHS {
			return nil, rdesc{}, false
		}
		other = rd
	case rd.kind == rdReg && rd.reg == li.a && !(ld.kind == rdReg && ld.reg == li.a):
		other = ld
	default:
		return nil, rdesc{}, false
	}
	if other.kind != rdReg || t.refsBelow(li.a, dstSlot) != 0 {
		return nil, rdesc{}, false
	}
	t.readReg(other.reg)
	delete(t.vnOf, li.a)
	return li, other, true
}

// fuseSwapMul handles the stencil shape "i*N + (j±c)": the mul-imm sits
// two instructions back with the other operand's cheap definition
// between. When the two are independent, they swap — the definition
// first, then the mul rewritten into a mul-add with dst = the result
// home — preserving every read's value.
func (t *regTranslator) fuseSwapMul(ld, rd rdesc, dst int32, dstSlot int) bool {
	if ld.kind != rdReg || rd.kind != rdReg || !t.canTouchLast(2) || t.refsBelow(dst, dstSlot) != 0 {
		return false
	}
	n := len(t.out)
	if n-2 < t.blockStart {
		return false
	}
	M := t.out[n-2]
	I1 := t.out[n-1]
	if M.op != rOpI32MulImm || M.a < t.nLoc || M.a == I1.a || M.b == I1.a {
		return false
	}
	// I1 must be cheap, side-effect-free, and must not read the mul's
	// dst (it will now execute before the mul).
	switch I1.op {
	case rOpConst:
	case rOpCopy, rOpI32AddImm:
		if I1.b == M.a {
			return false
		}
	default:
		return false
	}
	if !(ld.reg == M.a && rd.reg == I1.a) && !(rd.reg == M.a && ld.reg == I1.a) {
		return false
	}
	if t.refsBelow(M.a, dstSlot) != 0 {
		return false
	}
	t.readReg(I1.a)
	// M.a is no longer written: it reverts to its pre-mul content.
	if t.mulImmPrev != 0 {
		t.vnOf[M.a] = t.mulImmPrev
	} else {
		delete(t.vnOf, M.a)
	}
	t.out[n-2] = I1
	t.out[n-1] = ins{op: rOpI32MulAdd, a: dst, b: M.b, c: I1.a, imm: M.imm}
	if I1.a < t.nLoc {
		if p, ok := t.pendingLocal[I1.a]; ok && p == n-1 {
			t.pendingLocal[I1.a] = n - 2
		}
	}
	return true
}

// splitConst splits a (reg, const) operand pair of a commutative op.
func splitConst(ld, rd rdesc) (c, r rdesc, ok bool) {
	if ld.kind == rdConst && rd.kind == rdReg {
		return ld, rd, true
	}
	if rd.kind == rdConst && ld.kind == rdReg {
		return rd, ld, true
	}
	return rdesc{}, rdesc{}, false
}

func (t *regTranslator) unary(op uint16) {
	n := len(t.stk)
	sd := t.stk[n-1]
	if sd.kind == rdConst {
		if v, ok := foldUnary(op, sd.val); ok {
			t.stk = t.stk[:n-1]
			t.push(rdesc{kind: rdConst, val: v})
			t.stats.Folds++
			return
		}
	}
	dstSlot := n - 1
	dst := t.home(dstSlot)
	va := t.vnOfDesc(sd)
	key := exprKey{op: op, va: va}
	pure := regPure(op)
	var vnVal uint32
	if pure {
		var known bool
		if vnVal, known = t.exprs[key]; !known {
			t.nextVN++
			vnVal = t.nextVN
			t.exprs[key] = vnVal
		}
		if reg, ok := t.avail[vnVal]; ok && t.vnOf[reg] == vnVal {
			t.readReg(reg)
			t.stk = t.stk[:dstSlot]
			t.push(rdesc{kind: rdReg, reg: reg, vn: vnVal})
			t.stats.Props++
			t.cleanDeadTail()
			return
		}
	}
	t.ensureReg(dstSlot)
	t.prepWriteBelow(dst, dstSlot)
	sr := t.stk[dstSlot].reg
	t.stk = t.stk[:dstSlot]
	t.readReg(sr)
	t.emit(ins{op: op, a: dst, b: sr})
	vn := t.noteWrite(dst, -1)
	if pure {
		vn = vnVal
		t.vnOf[dst] = vn
		t.avail[vn] = dst
	}
	t.push(rdesc{kind: rdReg, reg: dst, vn: vn})
}
