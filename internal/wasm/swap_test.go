package wasm_test

import (
	"testing"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// wasmPage is the wasm linear-memory page size.
const wasmPage = 64 << 10

// wideModule builds a module with 4 pages (256 KiB) of memory whose
// run(x) writes x into one cell — so an advanced instance differs from
// its golden snapshot in exactly one 4 KiB chunk, the property the delta
// encoding exploits.
func wideModule() *wasmgen.Module {
	m := wasmgen.NewModule()
	m.Memory(4, 8)
	m.Data(0, []byte{1, 2, 3, 4})
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	// mem[64] += x; return mem[64]
	f.I32Const(64).I32Const(64).I32Load(0).LocalGet(0).I32Add().I32Store(0)
	f.I32Const(64).I32Load(0)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m
}

// growModule is wideModule plus grow(n): grows memory by n pages and
// writes a marker into the grown region.
func growModule() *wasmgen.Module {
	m := wasmgen.NewModule()
	m.Memory(1, 4)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	f.I32Const(64).I32Const(64).I32Load(0).LocalGet(0).I32Add().I32Store(0)
	f.I32Const(64).I32Load(0)
	f.End()
	m.Export("run", f)

	g := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	g.LocalGet(0).MemoryGrow().Drop()
	// mem[1 page + 16] = 0xAB
	g.I32Const(wasmPage + 16).I32Const(0xAB).I32Store(0)
	g.MemorySize()
	g.End()
	m.Export("grow", g)
	m.ExportMemory("memory")
	return m
}

// TestSnapshotDeltaRoundTrip: golden + delta reconstructs a suspended
// instance bit-exactly — a worker resumed from the delta computes what
// the original would have computed.
func TestSnapshotDeltaRoundTrip(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		c := compile(t, wideModule())
		in, err := wasm.Instantiate(c, nil, wasm.Config{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		golden := in.Snapshot()

		// Advance the instance past the golden state.
		for i := 1; i <= 3; i++ {
			if _, err := in.Invoke("run", uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		delta, err := in.SnapshotDelta(golden)
		if err != nil {
			t.Fatalf("SnapshotDelta: %v", err)
		}
		// One dirty chunk out of 64: the delta must be roughly one chunk,
		// not the 256 KiB memory.
		if len(delta) > 3*4096 {
			t.Errorf("delta is %d bytes for a single dirty chunk of a 256 KiB memory", len(delta))
		}

		snap, err := wasm.ApplySnapshotDelta(golden, delta)
		if err != nil {
			t.Fatalf("ApplySnapshotDelta: %v", err)
		}
		resumed, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		a, err := in.Invoke("run", 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := resumed.Invoke("run", 10)
		if err != nil {
			t.Fatal(err)
		}
		if a[0] != b[0] {
			t.Fatalf("resumed instance diverged: original %d, resumed %d", a[0], b[0])
		}
	})
}

// TestSnapshotDeltaClean: an instance still at its golden state encodes
// to a header-only delta, and applying it reproduces the golden state.
func TestSnapshotDeltaClean(t *testing.T) {
	c := compile(t, wideModule())
	in, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	golden := in.Snapshot()
	delta, err := in.SnapshotDelta(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) > 256 {
		t.Errorf("clean delta is %d bytes; want header-only", len(delta))
	}
	snap, err := wasm.ApplySnapshotDelta(golden, delta)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := wasm.InstantiateFromSnapshot(c, nil, golden, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := resumed.Invoke("run", 5)
	b, _ := fresh.Invoke("run", 5)
	if a[0] != b[0] {
		t.Fatalf("clean delta did not reproduce golden state: %d vs %d", a[0], b[0])
	}
}

// TestSnapshotDeltaGrownMemory: an instance that grew past the golden
// snapshot round-trips — the grown-but-zero chunks are not encoded, the
// written marker chunk is, and the reconstructed memory has the grown
// length.
func TestSnapshotDeltaGrownMemory(t *testing.T) {
	c := compile(t, growModule())
	in, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	golden := in.Snapshot()
	if _, err := in.Invoke("grow", 2); err != nil {
		t.Fatalf("grow: %v", err)
	}
	delta, err := in.SnapshotDelta(golden)
	if err != nil {
		t.Fatal(err)
	}
	// 2 grown pages = 32 new chunks, but only the marker chunk is dirty.
	if len(delta) > 3*4096 {
		t.Errorf("delta is %d bytes; grown zero chunks must not be encoded", len(delta))
	}
	snap, err := wasm.ApplySnapshotDelta(golden, delta)
	if err != nil {
		t.Fatal(err)
	}
	if snap.MemBytes() != 3*wasmPage {
		t.Fatalf("reconstructed memory is %d bytes, want %d", snap.MemBytes(), 3*wasmPage)
	}
	resumed, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := in.Invoke("run", 1)
	b, _ := resumed.Invoke("run", 1)
	if a[0] != b[0] {
		t.Fatalf("grown-memory resume diverged: %d vs %d", a[0], b[0])
	}
}

// TestApplySnapshotDeltaStrict: the decoder rejects corrupt deltas loudly
// — bad magic, truncation, out-of-order or out-of-range chunk indices,
// trailing garbage — rather than resuming a worker into wrong state.
func TestApplySnapshotDeltaStrict(t *testing.T) {
	c := compile(t, wideModule())
	in, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	golden := in.Snapshot()
	if _, err := in.Invoke("run", 9); err != nil {
		t.Fatal(err)
	}
	delta, err := in.SnapshotDelta(golden)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		bad := mutate(append([]byte(nil), delta...))
		if _, err := wasm.ApplySnapshotDelta(golden, bad); err == nil {
			t.Errorf("%s: corrupt delta accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-7] })
	corrupt("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	corrupt("empty", func(b []byte) []byte { return nil })

	// A delta never applies across modules.
	other := compile(t, wideModule())
	oin, err := wasm.Instantiate(other, nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.SnapshotDelta(oin.Snapshot()); err == nil {
		t.Error("cross-module SnapshotDelta accepted")
	}
}
