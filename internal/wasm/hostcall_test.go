package wasm

import (
	"testing"

	"twine/wasmgen"
)

// hostLoopModule builds a guest whose exported "run" calls the host
// function env.id (i64 -> i64) n times, threading the accumulator
// through it.
func hostLoopModule(t testing.TB, n int32) (*Compiled, *ImportObject) {
	t.Helper()
	m := wasmgen.NewModule()
	id := m.ImportFunc("env", "id", wasmgen.Sig(wasmgen.I64).Returns(wasmgen.I64))
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
	i := f.AddLocal(wasmgen.I32)
	acc := f.AddLocal(wasmgen.I64)
	f.I32Const(n).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Eqz().BrIf(1)
	f.LocalGet(acc).Call(id).LocalSet(acc)
	f.LocalGet(i).I32Const(1).I32Sub().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	f.End()
	m.Export("run", f)

	mod, err := Decode(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	imp := NewImportObject()
	imp.AddFunc(HostFunc{
		Module: "env", Name: "id",
		Type: FuncType{Params: []ValueType{I64}, Results: []ValueType{I64}},
		Fn: func(in *Instance, a []uint64) ([]uint64, error) {
			return in.Ret1(a[0] + 1), nil
		},
	})
	return c, imp
}

// TestHostCallAllocs is the allocation guard for the host-call return
// path: with the per-instance result buffer (Instance.Ret1/RetBuf), a
// host call must not allocate. Each Invoke performs 1,000 host calls;
// the only tolerated allocations are Invoke's own result slice and
// incidental runtime noise — anything growing with the call count fails.
func TestHostCallAllocs(t *testing.T) {
	for _, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister} {
		c, imp := hostLoopModule(t, 1000)
		in, err := Instantiate(c, imp, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the buffers.
		if out, err := in.Invoke("run"); err != nil || out[0] != 1000 {
			t.Fatalf("%v: out=%v err=%v", eng, out, err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, err := in.Invoke("run"); err != nil {
				t.Fatal(err)
			}
		})
		// 1,000 host calls per run: a per-call allocation would show as
		// >= 1000. Allow the handful of fixed per-Invoke allocations.
		if avg > 4 {
			t.Errorf("%v: %v allocs per 1000 host calls, want <= 4 (per-call allocation regressed)", eng, avg)
		}
	}
}

// BenchmarkHostCallAllocs tracks the per-call cost and allocation count
// of the guest->host return path (run with -benchmem).
func BenchmarkHostCallAllocs(b *testing.B) {
	c, imp := hostLoopModule(b, 1000)
	in, err := Instantiate(c, imp, Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := in.Invoke("run"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := in.Invoke("run"); err != nil {
			b.Fatal(err)
		}
	}
}
