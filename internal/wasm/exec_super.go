package wasm

import (
	"encoding/binary"
	"math"
	"sync/atomic"
)

// superIdiom is one compiled idiom-template loop. Per entry it re-derives
// the trip count, then either proves the whole trip safe (every access
// span in bounds, every page hot at the current paging generation — the
// PR 4 guard condition amortised from a window to a trip) and runs raw,
// or falls back to a checked per-iteration loop that replays the exact
// interpreter-order memLoad*/memStore* sequence. Slot-home temporaries
// are not materialised on exit: the register allocator's per-block LVN
// reset makes them dead at every block leader, so only the induction
// local (and a reduce accumulator) carries out of the loop.
type superIdiom struct {
	start, end, exitPC int
	l                  int32
	step               uint32
	limitReg           int32 // -1 → limitImm
	limitImm           uint32
	tailCopy           int32 // ≥0: tail was copy L, src — commit src = L on exit

	loads    []accSpec
	hasStore bool
	store    accSpec
	accs     []accSpec // loads then store, program order (built by finish)

	comb      int
	op        uint16 // combBin operator
	fa, fb    superFactor
	dstLd     int  // combFMA/combMinAdd: load matching the store spec
	neg       bool // combFMA: subtract the product
	scaleBits uint64
	scaleLeft bool
	scaleNone bool
	sumLds    []int
	fillBits  uint64
	fillReg   int32 // -1 → fillBits
	accReg    int32
	accLeft   bool // acc = acc + v (true) vs acc = v + acc
	accLd     int
}

// finish derives the program-order access list and bounds the shapes the
// runtime loops are prepared for.
func (t *superIdiom) finish() bool {
	if len(t.loads) > 8 {
		return false
	}
	t.accs = append([]accSpec(nil), t.loads...)
	if t.hasStore {
		t.accs = append(t.accs, t.store)
	}
	for k := range t.accs {
		if len(t.accs[k].aff.terms) > 8 {
			return false
		}
	}
	return true
}

func (t *superIdiom) run(in *Instance, r []uint64, mem *Memory) (int, int64) {
	lim := int64(int32(t.limitImm))
	if t.limitReg >= 0 {
		lim = int64(int32(uint32(r[t.limitReg])))
	}
	cur := int64(int32(uint32(r[t.l])))
	if cur >= lim {
		return t.exitPC, 1
	}
	step := int64(t.step)
	trips := (lim - cur + step - 1) / step
	if cur >= 0 && cur+trips*step <= math.MaxInt32 &&
		t.runRaw(r, mem, cur, trips) {
		r[t.l] = uint64(uint32(cur + trips*step))
		if t.tailCopy >= 0 {
			r[t.tailCopy] = r[t.l] // after the last copy L, src the two agree
		}
		return t.exitPC, trips + 1
	}
	n := t.runChecked(r, mem, cur, lim)
	if t.tailCopy >= 0 {
		r[t.tailCopy] = r[t.l]
	}
	return t.exitPC, n + 1
}

// span is one access's resolved raw-mode address line: addr(k) = a0 + k·s.
type span struct{ a0, s int64 }

type rtFac struct {
	load         bool
	a, s         int64
	v            float64
	scaled, left bool
	scale        float64
}

func mkFac(f superFactor, spans *[9]span, r []uint64) rtFac {
	out := rtFac{scaled: f.scaled, scale: f.scale, left: f.scaleLeft}
	switch f.kind {
	case fnLoad:
		out.load = true
		out.a, out.s = spans[f.ld].a0, spans[f.ld].s
	case fnReg:
		out.v = f64(r[f.reg])
	default:
		out.v = f64(f.bits)
	}
	return out
}

func (f *rtFac) eval(data []byte) float64 {
	v := f.v
	if f.load {
		v = f64(binary.LittleEndian.Uint64(data[f.a:]))
		f.a += f.s
	}
	if f.scaled {
		if f.left {
			v = f.scale * v
		} else {
			v = v * f.scale
		}
	}
	return v
}

// runRaw proves the whole trip safe and, if it can, executes it against
// mem.data directly. The proof is exact arithmetic over int64: every
// access's index line must stay in [0, 2³²) — so the u32 wrapping in the
// checked path is the identity — every byte span must be in bounds, and
// (when a touch hook is installed) every page of every span must be hot
// at the generation read once up front. Under those conditions the
// checked path would perform no touchMiss at all, so the raw path's empty
// hook-call sequence and unchanged fault/eviction counters are
// bit-identical, and no trap is reachable.
func (t *superIdiom) runRaw(r []uint64, mem *Memory, cur, trips int64) bool {
	const maxCo = 1 << 20
	step := int64(t.step)
	last := cur + (trips-1)*step
	nData := int64(len(mem.data))
	n := len(t.accs)
	var spans [9]span
	var pgLo, pgHi [9]int64
	var aligned [9]bool
	for k := 0; k < n; k++ {
		s := &t.accs[k]
		inv := int64(int32(s.aff.c))
		for _, tm := range s.aff.terms {
			co := int64(int32(tm.coeff))
			if co > maxCo || co < -maxCo {
				return false
			}
			inv += co * int64(uint32(r[tm.reg]))
		}
		cL := int64(int32(s.aff.cL))
		if cL > maxCo || cL < -maxCo {
			return false
		}
		m := int64(int32(s.m))
		if m < 1 || m > maxCo {
			return false
		}
		iLo, iHi := inv+cL*cur, inv+cL*last
		if iLo > iHi {
			iLo, iHi = iHi, iLo
		}
		if iLo < 0 || iHi > 1<<33 || iHi*m+int64(s.A) > math.MaxUint32 {
			return false
		}
		off := int64(s.off)
		lo := iLo*m + int64(s.A) + off
		hi := iHi*m + int64(s.A) + off + int64(s.width)
		if hi > nData {
			return false
		}
		spans[k] = span{a0: (inv+cL*cur)*m + int64(s.A) + off, s: cL * m * step}
		pgLo[k], pgHi[k] = lo>>tlbPageBits, (hi-1)>>tlbPageBits
		aligned[k] = m%int64(s.width) == 0 && (int64(s.A)+off)%int64(s.width) == 0
	}
	if mem.touch != nil {
		if mem.gen == nil {
			return false
		}
		g := atomic.LoadUint64(mem.gen)
		total := int64(0)
		for k := 0; k < n; k++ {
			// A width-aligned access can never straddle an EPC-TLB page,
			// so "page hot" really does make every touch a cached no-op.
			// An unaligned access crossing a page is never TLB-cached and
			// would reach the hook on every iteration — not provable here.
			if !aligned[k] {
				return false
			}
			total += pgHi[k] - pgLo[k] + 1
			if total > 64 {
				return false
			}
			for p := uint64(pgLo[k]); p <= uint64(pgHi[k]); p++ {
				e := &mem.tlb[p&tlbMask]
				if e.tag != p+1 || e.gen != g {
					return false
				}
			}
		}
	}

	data := mem.data
	le := binary.LittleEndian
	switch t.comb {
	case combFill:
		bits := t.fillBits
		if t.fillReg >= 0 {
			bits = r[t.fillReg]
		}
		st := spans[n-1]
		for k := trips; k > 0; k-- {
			le.PutUint64(data[st.a0:], bits)
			st.a0 += st.s
		}
	case combCopy:
		src, st := spans[t.fa.ld], spans[n-1]
		for k := trips; k > 0; k-- {
			le.PutUint64(data[st.a0:], le.Uint64(data[src.a0:]))
			src.a0 += src.s
			st.a0 += st.s
		}
	case combBin:
		fa, fb := mkFac(t.fa, &spans, r), mkFac(t.fb, &spans, r)
		st := spans[n-1]
		op := t.op
		for k := trips; k > 0; k-- {
			x, y := fa.eval(data), fb.eval(data)
			var res float64
			switch op {
			case uint16(OpF64Add):
				res = x + y
			case uint16(OpF64Sub):
				res = x - y
			case uint16(OpF64Mul):
				res = x * y
			case uint16(OpF64Div):
				res = x / y
			case uint16(OpF64Min):
				res = math.Min(x, y)
			default:
				res = math.Max(x, y)
			}
			le.PutUint64(data[st.a0:], pf64(res))
			st.a0 += st.s
		}
	case combFMA:
		fa, fb := mkFac(t.fa, &spans, r), mkFac(t.fb, &spans, r)
		d := spans[t.dstLd]
		neg := t.neg
		for k := trips; k > 0; k-- {
			vd := f64(le.Uint64(data[d.a0:]))
			x, y := fa.eval(data), fb.eval(data)
			prod := float64(x * y)
			var res float64
			if neg {
				res = vd - prod
			} else {
				res = vd + prod
			}
			le.PutUint64(data[d.a0:], pf64(res))
			d.a0 += d.s
		}
	case combMinAdd:
		d, a, b := spans[t.dstLd], spans[t.fa.ld], spans[t.fb.ld]
		for k := trips; k > 0; k-- {
			vd := f64(le.Uint64(data[d.a0:]))
			va := f64(le.Uint64(data[a.a0:]))
			vb := f64(le.Uint64(data[b.a0:]))
			le.PutUint64(data[d.a0:], pf64(math.Min(vd, va+vb)))
			d.a0 += d.s
			a.a0 += a.s
			b.a0 += b.s
		}
	case combScaleSum:
		var ls [8]span
		nl := len(t.sumLds)
		for k, ld := range t.sumLds {
			ls[k] = spans[ld]
		}
		st := spans[n-1]
		scale := f64(t.scaleBits)
		for k := trips; k > 0; k-- {
			sum := f64(le.Uint64(data[ls[0].a0:]))
			ls[0].a0 += ls[0].s
			for j := 1; j < nl; j++ {
				sum = sum + f64(le.Uint64(data[ls[j].a0:]))
				ls[j].a0 += ls[j].s
			}
			res := sum
			if !t.scaleNone {
				if t.scaleLeft {
					res = scale * sum
				} else {
					res = sum * scale
				}
			}
			le.PutUint64(data[st.a0:], pf64(res))
			st.a0 += st.s
		}
	case combAccum:
		a := spans[t.accLd]
		acc := f64(r[t.accReg])
		if t.accLeft {
			for k := trips; k > 0; k-- {
				acc = acc + f64(le.Uint64(data[a.a0:]))
				a.a0 += a.s
			}
		} else {
			for k := trips; k > 0; k-- {
				acc = f64(le.Uint64(data[a.a0:])) + acc
				a.a0 += a.s
			}
		}
		r[t.accReg] = pf64(acc)
	}
	return true
}

// runChecked executes the loop one iteration at a time through the same
// memLoad64/memStore64 helpers as the register interpreter, in program
// order — identical bounds traps, touch sequence and TLB stamping. The
// induction local (and accumulator) are committed every iteration so a
// mid-loop trap leaves the frame exactly as the interpreter would.
func (t *superIdiom) runChecked(r []uint64, mem *Memory, cur, lim int64) int64 {
	type cacc struct {
		inv, cL, m, A uint32
		off           uint64
	}
	var cl [9]cacc
	n := len(t.accs)
	for k := 0; k < n; k++ {
		s := &t.accs[k]
		inv := s.aff.c
		for _, tm := range s.aff.terms {
			inv += tm.coeff * uint32(r[tm.reg])
		}
		cl[k] = cacc{inv: inv, cL: s.aff.cL, m: s.m, A: s.A, off: s.off}
	}
	facVal := func(f superFactor, v *[8]float64) float64 {
		var x float64
		switch f.kind {
		case fnLoad:
			x = v[f.ld]
		case fnReg:
			x = f64(r[f.reg])
		default:
			x = f64(f.bits)
		}
		if f.scaled {
			if f.scaleLeft {
				x = f.scale * x
			} else {
				x = x * f.scale
			}
		}
		return x
	}
	var v [8]float64
	var vbits [8]uint64
	lu := uint32(cur)
	lim32 := int32(lim)
	nl := len(t.loads)
	var nIter int64
	for int32(lu) < lim32 {
		for k := 0; k < nl; k++ {
			base := uint64((cl[k].inv+cl[k].cL*lu)*cl[k].m + cl[k].A)
			vbits[k] = memLoad64(mem, base, cl[k].off)
			v[k] = f64(vbits[k])
		}
		var res uint64
		switch t.comb {
		case combFill:
			res = t.fillBits
			if t.fillReg >= 0 {
				res = r[t.fillReg]
			}
		case combCopy:
			res = vbits[t.fa.ld]
		case combBin:
			x, y := facVal(t.fa, &v), facVal(t.fb, &v)
			switch t.op {
			case uint16(OpF64Add):
				res = pf64(x + y)
			case uint16(OpF64Sub):
				res = pf64(x - y)
			case uint16(OpF64Mul):
				res = pf64(x * y)
			case uint16(OpF64Div):
				res = pf64(x / y)
			case uint16(OpF64Min):
				res = pf64(math.Min(x, y))
			default:
				res = pf64(math.Max(x, y))
			}
		case combFMA:
			x, y := facVal(t.fa, &v), facVal(t.fb, &v)
			prod := float64(x * y)
			if t.neg {
				res = pf64(v[t.dstLd] - prod)
			} else {
				res = pf64(v[t.dstLd] + prod)
			}
		case combMinAdd:
			res = pf64(math.Min(v[t.dstLd], v[t.fa.ld]+v[t.fb.ld]))
		case combScaleSum:
			sum := v[t.sumLds[0]]
			for _, ld := range t.sumLds[1:] {
				sum = sum + v[ld]
			}
			switch {
			case t.scaleNone:
				res = pf64(sum)
			case t.scaleLeft:
				res = pf64(f64(t.scaleBits) * sum)
			default:
				res = pf64(sum * f64(t.scaleBits))
			}
		case combAccum:
			acc := f64(r[t.accReg])
			if t.accLeft {
				acc = acc + v[t.accLd]
			} else {
				acc = v[t.accLd] + acc
			}
			r[t.accReg] = pf64(acc)
		}
		if t.hasStore {
			c := &cl[n-1]
			base := uint64((c.inv+c.cL*lu)*c.m + c.A)
			memStore64(mem, base, c.off, res)
		}
		lu += t.step
		r[t.l] = uint64(lu)
		nIter++
	}
	return nIter
}
