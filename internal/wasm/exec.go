package wasm

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
	"sync/atomic"
)

// invokeFunc runs function-index-space entry fi. Arguments are the top
// len(params) slots of the value stack; on return they are replaced by the
// results.
func (in *Instance) invokeFunc(fi int) {
	if fi < len(in.hosts) {
		in.invokeHost(fi)
		return
	}
	fn := &in.funcs[fi-len(in.hosts)]
	base := in.sp - fn.numParams
	top := base + fn.numParams + fn.numLocals + fn.maxStack
	if top > len(in.stack) {
		trap(TrapStackOverflow, "need %d slots", top)
	}
	in.depth++
	if in.depth > in.cfg.MaxCallDepth {
		in.depth--
		trap(TrapCallDepth, "depth %d", in.cfg.MaxCallDepth)
	}
	locals := in.stack[base+fn.numParams : base+fn.numParams+fn.numLocals]
	for i := range locals {
		locals[i] = 0
	}
	if fn.reg {
		in.runRegBody(fn, base)
	} else {
		in.runBody(fn, base)
	}
	in.depth--
}

func (in *Instance) invokeHost(fi int) {
	hf := &in.hosts[fi]
	np := len(hf.Type.Params)
	if cap(in.hostArgBuf) < np {
		in.hostArgBuf = make([]uint64, np)
	}
	args := in.hostArgBuf[:np]
	copy(args, in.stack[in.sp-np:in.sp])
	res, err := hf.Fn(in, args)
	if err != nil {
		var exit ExitError
		if errors.As(err, &exit) {
			panic(&Trap{Kind: TrapExit, Code: exit.Code})
		}
		panic(&Trap{Kind: TrapHostError, Msg: hf.Module + "." + hf.Name, Err: err})
	}
	if len(res) != len(hf.Type.Results) {
		trap(TrapHostError, "%s.%s returned %d values, want %d", hf.Module, hf.Name, len(res), len(hf.Type.Results))
	}
	in.sp -= np
	for _, r := range res {
		in.stack[in.sp] = r
		in.sp++
	}
}

// runBody is the interpreter loop. bp is the frame base: params, then
// locals, then the operand stack.
func (in *Instance) runBody(fn *compiledFunc, bp int) {
	code := fn.code
	stack := in.stack
	mem := in.mem
	sp := bp + fn.numParams + fn.numLocals
	pc := 0
	var retired int64

	for {
		i := &code[pc]
		retired++
		switch i.op {

		// --- control ---
		case uint16(OpUnreachable):
			trap(TrapUnreachable, "")
		case opLoweredBr:
			sp = brAdjust(stack, sp, int(i.b), int(i.c))
			pc = int(i.a)
			continue
		case opLoweredBrIf:
			sp--
			if uint32(stack[sp]) != 0 {
				sp = brAdjust(stack, sp, int(i.b), int(i.c))
				pc = int(i.a)
				continue
			}
		case opLoweredBrIfZ:
			sp--
			if uint32(stack[sp]) == 0 {
				sp = brAdjust(stack, sp, int(i.b), int(i.c))
				pc = int(i.a)
				continue
			}
		case opLoweredBrTable:
			sp--
			idx := uint32(stack[sp])
			table := fn.brTables[i.a]
			t := table[len(table)-1]
			if int(idx) < len(table)-1 {
				t = table[idx]
			}
			sp = brAdjust(stack, sp, int(t.drop), int(t.keep))
			pc = int(t.pc)
			continue
		case opLoweredReturn:
			keep := int(i.c)
			copy(stack[bp:bp+keep], stack[sp-keep:sp])
			in.sp = bp + keep
			in.insRetired += retired
			return
		case opFusedCmpBr:
			// Fused i32 compare + conditional branch (AoT engine).
			sp -= 2
			a, b := uint32(stack[sp]), uint32(stack[sp+1])
			var cond bool
			switch byte(i.b) {
			case OpI32Eq:
				cond = a == b
			case OpI32Ne:
				cond = a != b
			case OpI32LtS:
				cond = int32(a) < int32(b)
			case OpI32LtU:
				cond = a < b
			case OpI32GtS:
				cond = int32(a) > int32(b)
			case OpI32GtU:
				cond = a > b
			case OpI32LeS:
				cond = int32(a) <= int32(b)
			case OpI32LeU:
				cond = a <= b
			case OpI32GeS:
				cond = int32(a) >= int32(b)
			case OpI32GeU:
				cond = a >= b
			}
			if cond {
				sp = brAdjust(stack, sp, int(i.c)>>16, int(i.c)&0xFFFF)
				pc = int(i.a)
				continue
			}
		case uint16(OpCall):
			in.sp = sp
			in.invokeFunc(int(i.a))
			sp = in.sp
		case uint16(OpCallIndirect):
			sp--
			elem := uint32(stack[sp])
			if int(elem) >= len(in.table) {
				trap(TrapUndefinedElem, "index %d of %d", elem, len(in.table))
			}
			target := in.table[elem]
			if target < 0 {
				trap(TrapUndefinedElem, "uninitialised element %d", elem)
			}
			want := in.m.Types[i.a]
			got, err := in.m.TypeOfFunc(uint32(target))
			if err != nil || !got.Equal(want) {
				trap(TrapIndirectType, "want %v got %v", want, got)
			}
			in.sp = sp
			in.invokeFunc(int(target))
			sp = in.sp

		// --- parametric ---
		case uint16(OpDrop):
			sp--
		case uint16(OpSelect):
			sp -= 2
			if uint32(stack[sp+1]) == 0 {
				stack[sp-1] = stack[sp]
			}

		// --- variables ---
		case uint16(OpLocalGet):
			stack[sp] = stack[bp+int(i.a)]
			sp++
		case uint16(OpLocalSet):
			sp--
			stack[bp+int(i.a)] = stack[sp]
		case uint16(OpLocalTee):
			stack[bp+int(i.a)] = stack[sp-1]
		case uint16(OpGlobalGet):
			stack[sp] = in.globals[i.a]
			sp++
		case uint16(OpGlobalSet):
			sp--
			in.globals[i.a] = stack[sp]

		// --- memory ---
		case uint16(OpI32Load), uint16(OpF32Load):
			stack[sp-1] = uint64(memLoad32(mem, stack[sp-1], i.imm))
		case uint16(OpI64Load), uint16(OpF64Load):
			stack[sp-1] = memLoad64(mem, stack[sp-1], i.imm)
		case uint16(OpI32Load8S):
			stack[sp-1] = uint64(uint32(int32(int8(memLoad8(mem, stack[sp-1], i.imm)))))
		case uint16(OpI32Load8U), uint16(OpI64Load8U):
			stack[sp-1] = uint64(memLoad8(mem, stack[sp-1], i.imm))
		case uint16(OpI32Load16S):
			stack[sp-1] = uint64(uint32(int32(int16(memLoad16(mem, stack[sp-1], i.imm)))))
		case uint16(OpI32Load16U), uint16(OpI64Load16U):
			stack[sp-1] = uint64(memLoad16(mem, stack[sp-1], i.imm))
		case uint16(OpI64Load8S):
			stack[sp-1] = uint64(int64(int8(memLoad8(mem, stack[sp-1], i.imm))))
		case uint16(OpI64Load16S):
			stack[sp-1] = uint64(int64(int16(memLoad16(mem, stack[sp-1], i.imm))))
		case uint16(OpI64Load32S):
			stack[sp-1] = uint64(int64(int32(memLoad32(mem, stack[sp-1], i.imm))))
		case uint16(OpI64Load32U):
			stack[sp-1] = uint64(memLoad32(mem, stack[sp-1], i.imm))
		case uint16(OpI32Store), uint16(OpF32Store):
			sp -= 2
			memStore32(mem, stack[sp], i.imm, uint32(stack[sp+1]))
		case uint16(OpI64Store), uint16(OpF64Store):
			sp -= 2
			memStore64(mem, stack[sp], i.imm, stack[sp+1])
		case uint16(OpI32Store8), uint16(OpI64Store8):
			sp -= 2
			memStore8(mem, stack[sp], i.imm, byte(stack[sp+1]))
		case uint16(OpI32Store16), uint16(OpI64Store16):
			sp -= 2
			memStore16(mem, stack[sp], i.imm, uint16(stack[sp+1]))
		case uint16(OpI64Store32):
			sp -= 2
			memStore32(mem, stack[sp], i.imm, uint32(stack[sp+1]))

		// --- load/store superinstructions (AoT engine) ---
		case opFusedScaleBaseF64Load:
			stack[sp-1] = memLoad64(mem,
				uint64(uint32(stack[sp-1])*uint32(i.a)+uint32(i.b)), i.imm)
		case opFusedScaleBase:
			stack[sp-1] = uint64(uint32(stack[sp-1])*uint32(i.a) + uint32(i.b))
		case opFusedF64LoadLocal:
			stack[sp] = memLoad64(mem, stack[bp+int(i.a)], i.imm)
			sp++
		case opFusedI32LoadLocal:
			stack[sp] = uint64(memLoad32(mem, stack[bp+int(i.a)], i.imm))
			sp++
		case opFusedF64StoreConst:
			sp--
			memStore64(mem, stack[sp], uint64(uint32(i.a)), i.imm)
		case opFusedF64StoreLocal:
			sp--
			memStore64(mem, stack[sp], uint64(uint32(i.a)), stack[bp+int(i.b)])
		case opFusedF64AddStore:
			sp -= 3
			memStore64(mem, stack[sp], uint64(uint32(i.a)),
				pf64(f64(stack[sp+1])+f64(stack[sp+2])))
		case opFusedF64LoadCmp:
			sp--
			rhs := f64(memLoad64(mem, stack[sp], i.imm))
			lhs := f64(stack[sp-1])
			var cond bool
			switch byte(i.b) {
			case OpF64Eq:
				cond = lhs == rhs
			case OpF64Ne:
				cond = lhs != rhs
			case OpF64Lt:
				cond = lhs < rhs
			case OpF64Gt:
				cond = lhs > rhs
			case OpF64Le:
				cond = lhs <= rhs
			case OpF64Ge:
				cond = lhs >= rhs
			}
			stack[sp-1] = b2u(cond)

		// --- fused address arithmetic (AoT engine) ---
		case opFusedLocalMulC:
			stack[sp] = uint64(uint32(stack[bp+int(i.a)]) * uint32(i.imm))
			sp++
		case opFusedAddLocal:
			stack[sp-1] = uint64(uint32(stack[sp-1]) + uint32(stack[bp+int(i.a)]))
		case opFusedI32MulConst:
			stack[sp-1] = uint64(uint32(stack[sp-1]) * uint32(i.imm))

		// --- hot f64 arithmetic (kept in the main dispatch to avoid a
		// second switch for the PolyBench inner loops) ---
		case uint16(OpF64Add):
			sp--
			stack[sp-1] = pf64(f64(stack[sp-1]) + f64(stack[sp]))
		case uint16(OpF64Sub):
			sp--
			stack[sp-1] = pf64(f64(stack[sp-1]) - f64(stack[sp]))
		case uint16(OpF64Mul):
			sp--
			stack[sp-1] = pf64(f64(stack[sp-1]) * f64(stack[sp]))
		case uint16(OpF64Div):
			sp--
			stack[sp-1] = pf64(f64(stack[sp-1]) / f64(stack[sp]))
		case opFusedF64MulAdd:
			sp -= 2
			// The explicit conversion forces the product to be rounded to
			// float64 before the add (Go spec: conversions bar fused
			// operations), so this can never contract into a hardware FMA
			// — the two roundings of the unfused f64.mul/f64.add pair are
			// preserved bit-for-bit on every architecture.
			prod := float64(f64(stack[sp]) * f64(stack[sp+1]))
			stack[sp-1] = pf64(f64(stack[sp-1]) + prod)

		case uint16(OpMemorySize):
			stack[sp] = uint64(mem.Pages())
			sp++
		case uint16(OpMemoryGrow):
			stack[sp-1] = uint64(uint32(mem.Grow(uint32(stack[sp-1]))))

		// --- constants ---
		case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
			stack[sp] = i.imm
			sp++

		// --- i32 compare ---
		case uint16(OpI32Eqz):
			stack[sp-1] = b2u(uint32(stack[sp-1]) == 0)
		case uint16(OpI32Eq):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) == uint32(stack[sp]))
		case uint16(OpI32Ne):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) != uint32(stack[sp]))
		case uint16(OpI32LtS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) < int32(stack[sp]))
		case uint16(OpI32LtU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) < uint32(stack[sp]))
		case uint16(OpI32GtS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) > int32(stack[sp]))
		case uint16(OpI32GtU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) > uint32(stack[sp]))
		case uint16(OpI32LeS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) <= int32(stack[sp]))
		case uint16(OpI32LeU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) <= uint32(stack[sp]))
		case uint16(OpI32GeS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) >= int32(stack[sp]))
		case uint16(OpI32GeU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) >= uint32(stack[sp]))

		// --- i64 compare ---
		case uint16(OpI64Eqz):
			stack[sp-1] = b2u(stack[sp-1] == 0)
		case uint16(OpI64Eq):
			sp--
			stack[sp-1] = b2u(stack[sp-1] == stack[sp])
		case uint16(OpI64Ne):
			sp--
			stack[sp-1] = b2u(stack[sp-1] != stack[sp])
		case uint16(OpI64LtS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) < int64(stack[sp]))
		case uint16(OpI64LtU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] < stack[sp])
		case uint16(OpI64GtS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) > int64(stack[sp]))
		case uint16(OpI64GtU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] > stack[sp])
		case uint16(OpI64LeS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) <= int64(stack[sp]))
		case uint16(OpI64LeU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] <= stack[sp])
		case uint16(OpI64GeS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) >= int64(stack[sp]))
		case uint16(OpI64GeU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] >= stack[sp])

		// --- float compare ---
		case uint16(OpF32Eq):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) == f32(stack[sp]))
		case uint16(OpF32Ne):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) != f32(stack[sp]))
		case uint16(OpF32Lt):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) < f32(stack[sp]))
		case uint16(OpF32Gt):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) > f32(stack[sp]))
		case uint16(OpF32Le):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) <= f32(stack[sp]))
		case uint16(OpF32Ge):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) >= f32(stack[sp]))
		case uint16(OpF64Eq):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) == f64(stack[sp]))
		case uint16(OpF64Ne):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) != f64(stack[sp]))
		case uint16(OpF64Lt):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) < f64(stack[sp]))
		case uint16(OpF64Gt):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) > f64(stack[sp]))
		case uint16(OpF64Le):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) <= f64(stack[sp]))
		case uint16(OpF64Ge):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) >= f64(stack[sp]))

		// --- i32 arithmetic ---
		case uint16(OpI32Clz):
			stack[sp-1] = uint64(bits.LeadingZeros32(uint32(stack[sp-1])))
		case uint16(OpI32Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros32(uint32(stack[sp-1])))
		case uint16(OpI32Popcnt):
			stack[sp-1] = uint64(bits.OnesCount32(uint32(stack[sp-1])))
		case uint16(OpI32Add):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) + uint32(stack[sp]))
		case uint16(OpI32Sub):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) - uint32(stack[sp]))
		case uint16(OpI32Mul):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) * uint32(stack[sp]))
		case uint16(OpI32DivS):
			sp--
			d := int32(stack[sp])
			n := int32(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i32.div_s")
			}
			if n == math.MinInt32 && d == -1 {
				trap(TrapIntOverflow, "i32.div_s")
			}
			stack[sp-1] = uint64(uint32(n / d))
		case uint16(OpI32DivU):
			sp--
			d := uint32(stack[sp])
			if d == 0 {
				trap(TrapDivZero, "i32.div_u")
			}
			stack[sp-1] = uint64(uint32(stack[sp-1]) / d)
		case uint16(OpI32RemS):
			sp--
			d := int32(stack[sp])
			n := int32(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_s")
			}
			if n == math.MinInt32 && d == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = uint64(uint32(n % d))
			}
		case uint16(OpI32RemU):
			sp--
			d := uint32(stack[sp])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_u")
			}
			stack[sp-1] = uint64(uint32(stack[sp-1]) % d)
		case uint16(OpI32And):
			sp--
			stack[sp-1] = stack[sp-1] & stack[sp]
		case uint16(OpI32Or):
			sp--
			stack[sp-1] = stack[sp-1] | stack[sp]
		case uint16(OpI32Xor):
			sp--
			stack[sp-1] = stack[sp-1] ^ stack[sp]
		case uint16(OpI32Shl):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) << (uint32(stack[sp]) & 31))
		case uint16(OpI32ShrS):
			sp--
			stack[sp-1] = uint64(uint32(int32(stack[sp-1]) >> (uint32(stack[sp]) & 31)))
		case uint16(OpI32ShrU):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) >> (uint32(stack[sp]) & 31))
		case uint16(OpI32Rotl):
			sp--
			stack[sp-1] = uint64(bits.RotateLeft32(uint32(stack[sp-1]), int(uint32(stack[sp])&31)))
		case uint16(OpI32Rotr):
			sp--
			stack[sp-1] = uint64(bits.RotateLeft32(uint32(stack[sp-1]), -int(uint32(stack[sp])&31)))

		// --- i64 arithmetic ---
		case uint16(OpI64Clz):
			stack[sp-1] = uint64(bits.LeadingZeros64(stack[sp-1]))
		case uint16(OpI64Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros64(stack[sp-1]))
		case uint16(OpI64Popcnt):
			stack[sp-1] = uint64(bits.OnesCount64(stack[sp-1]))
		case uint16(OpI64Add):
			sp--
			stack[sp-1] = stack[sp-1] + stack[sp]
		case uint16(OpI64Sub):
			sp--
			stack[sp-1] = stack[sp-1] - stack[sp]
		case uint16(OpI64Mul):
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp]
		case uint16(OpI64DivS):
			sp--
			d := int64(stack[sp])
			n := int64(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i64.div_s")
			}
			if n == math.MinInt64 && d == -1 {
				trap(TrapIntOverflow, "i64.div_s")
			}
			stack[sp-1] = uint64(n / d)
		case uint16(OpI64DivU):
			sp--
			if stack[sp] == 0 {
				trap(TrapDivZero, "i64.div_u")
			}
			stack[sp-1] = stack[sp-1] / stack[sp]
		case uint16(OpI64RemS):
			sp--
			d := int64(stack[sp])
			n := int64(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i64.rem_s")
			}
			if n == math.MinInt64 && d == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = uint64(n % d)
			}
		case uint16(OpI64RemU):
			sp--
			if stack[sp] == 0 {
				trap(TrapDivZero, "i64.rem_u")
			}
			stack[sp-1] = stack[sp-1] % stack[sp]
		case uint16(OpI64And):
			sp--
			stack[sp-1] = stack[sp-1] & stack[sp]
		case uint16(OpI64Or):
			sp--
			stack[sp-1] = stack[sp-1] | stack[sp]
		case uint16(OpI64Xor):
			sp--
			stack[sp-1] = stack[sp-1] ^ stack[sp]
		case uint16(OpI64Shl):
			sp--
			stack[sp-1] = stack[sp-1] << (stack[sp] & 63)
		case uint16(OpI64ShrS):
			sp--
			stack[sp-1] = uint64(int64(stack[sp-1]) >> (stack[sp] & 63))
		case uint16(OpI64ShrU):
			sp--
			stack[sp-1] = stack[sp-1] >> (stack[sp] & 63)
		case uint16(OpI64Rotl):
			sp--
			stack[sp-1] = bits.RotateLeft64(stack[sp-1], int(stack[sp]&63))
		case uint16(OpI64Rotr):
			sp--
			stack[sp-1] = bits.RotateLeft64(stack[sp-1], -int(stack[sp]&63))

		default:
			sp = in.runFloatOrFused(fn, i, stack, bp, sp)
		}
		pc++
	}
}

// brAdjust implements branch value transfer: keep the top keep slots,
// discard drop slots beneath them.
func brAdjust(stack []uint64, sp, drop, keep int) int {
	if drop == 0 {
		return sp
	}
	copy(stack[sp-keep-drop:sp-drop], stack[sp-keep:sp])
	return sp - drop
}

// Specialized linear-memory fast paths: one bounds check, a TLB-filtered
// EPC touch, and a direct fixed-width access with no intermediate slice
// header. mem is never nil here — validation rejects memory opcodes in
// modules that declare no memory, so these only execute with a memory
// present.
//
// memIndex bounds-checks and touches [base+offset, base+offset+n),
// returning the resolved address. The EPC-TLB hit test is open-coded
// here so a hot-page access costs a compare pair instead of a call into
// the touch machinery: an access misses only when the TLB is disabled,
// the span crosses a page boundary, the slot holds another page, or the
// paging generation has moved (an eviction or clock sweep happened).
func memIndex(mem *Memory, base, offset, n uint64) uint64 {
	addr := uint64(uint32(base)) + offset
	if addr+n > uint64(len(mem.data)) {
		trapOOB(addr, addr+n)
	}
	if mem.touch != nil {
		p := addr >> tlbPageBits
		e := &mem.tlb[p&tlbMask]
		// The generation load is atomic (a plain MOV on amd64 — the fast
		// path stays two compares) because evictions on another
		// instance's TCS bump it concurrently.
		if mem.gen == nil || e.tag != p+1 || e.gen != atomic.LoadUint64(mem.gen) ||
			(addr+n-1)>>tlbPageBits != p {
			mem.touchMiss(addr, n)
		}
	}
	return addr
}

// trapOOB is kept out of line so memIndex stays small.
func trapOOB(addr, end uint64) {
	trap(TrapOOB, "[%d,%d)", addr, end)
}

func memLoad8(mem *Memory, base, offset uint64) byte {
	return mem.data[memIndex(mem, base, offset, 1)]
}

func memLoad16(mem *Memory, base, offset uint64) uint16 {
	addr := memIndex(mem, base, offset, 2)
	return binary.LittleEndian.Uint16(mem.data[addr:])
}

func memLoad32(mem *Memory, base, offset uint64) uint32 {
	addr := memIndex(mem, base, offset, 4)
	return binary.LittleEndian.Uint32(mem.data[addr:])
}

func memLoad64(mem *Memory, base, offset uint64) uint64 {
	addr := memIndex(mem, base, offset, 8)
	return binary.LittleEndian.Uint64(mem.data[addr:])
}

func memStore8(mem *Memory, base, offset uint64, v byte) {
	mem.data[memIndex(mem, base, offset, 1)] = v
}

func memStore16(mem *Memory, base, offset uint64, v uint16) {
	addr := memIndex(mem, base, offset, 2)
	binary.LittleEndian.PutUint16(mem.data[addr:], v)
}

func memStore32(mem *Memory, base, offset uint64, v uint32) {
	addr := memIndex(mem, base, offset, 4)
	binary.LittleEndian.PutUint32(mem.data[addr:], v)
}

func memStore64(mem *Memory, base, offset uint64, v uint64) {
	addr := memIndex(mem, base, offset, 8)
	binary.LittleEndian.PutUint64(mem.data[addr:], v)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func f32(v uint64) float32  { return math.Float32frombits(uint32(v)) }
func f64(v uint64) float64  { return math.Float64frombits(v) }
func pf32(f float32) uint64 { return uint64(math.Float32bits(f)) }
func pf64(f float64) uint64 { return math.Float64bits(f) }
