package wasm

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// invokeFunc runs function-index-space entry fi. Arguments are the top
// len(params) slots of the value stack; on return they are replaced by the
// results.
func (in *Instance) invokeFunc(fi int) {
	if fi < len(in.hosts) {
		in.invokeHost(fi)
		return
	}
	fn := &in.funcs[fi-len(in.hosts)]
	base := in.sp - fn.numParams
	top := base + fn.numParams + fn.numLocals + fn.maxStack
	if top > len(in.stack) {
		trap(TrapStackOverflow, "need %d slots", top)
	}
	in.depth++
	if in.depth > in.cfg.MaxCallDepth {
		in.depth--
		trap(TrapCallDepth, "depth %d", in.cfg.MaxCallDepth)
	}
	locals := in.stack[base+fn.numParams : base+fn.numParams+fn.numLocals]
	for i := range locals {
		locals[i] = 0
	}
	in.runBody(fn, base)
	in.depth--
}

func (in *Instance) invokeHost(fi int) {
	hf := &in.hosts[fi]
	np := len(hf.Type.Params)
	if cap(in.hostArgBuf) < np {
		in.hostArgBuf = make([]uint64, np)
	}
	args := in.hostArgBuf[:np]
	copy(args, in.stack[in.sp-np:in.sp])
	res, err := hf.Fn(in, args)
	if err != nil {
		var exit ExitError
		if errors.As(err, &exit) {
			panic(&Trap{Kind: TrapExit, Code: exit.Code})
		}
		panic(&Trap{Kind: TrapHostError, Msg: hf.Module + "." + hf.Name, Err: err})
	}
	if len(res) != len(hf.Type.Results) {
		trap(TrapHostError, "%s.%s returned %d values, want %d", hf.Module, hf.Name, len(res), len(hf.Type.Results))
	}
	in.sp -= np
	for _, r := range res {
		in.stack[in.sp] = r
		in.sp++
	}
}

// runBody is the interpreter loop. bp is the frame base: params, then
// locals, then the operand stack.
func (in *Instance) runBody(fn *compiledFunc, bp int) {
	code := fn.code
	stack := in.stack
	mem := in.mem
	sp := bp + fn.numParams + fn.numLocals
	pc := 0

	for {
		i := &code[pc]
		switch i.op {

		// --- control ---
		case uint16(OpUnreachable):
			trap(TrapUnreachable, "")
		case opLoweredBr:
			sp = brAdjust(stack, sp, int(i.b), int(i.c))
			pc = int(i.a)
			continue
		case opLoweredBrIf:
			sp--
			if uint32(stack[sp]) != 0 {
				sp = brAdjust(stack, sp, int(i.b), int(i.c))
				pc = int(i.a)
				continue
			}
		case opLoweredBrIfZ:
			sp--
			if uint32(stack[sp]) == 0 {
				sp = brAdjust(stack, sp, int(i.b), int(i.c))
				pc = int(i.a)
				continue
			}
		case opLoweredBrTable:
			sp--
			idx := uint32(stack[sp])
			table := fn.brTables[i.a]
			t := table[len(table)-1]
			if int(idx) < len(table)-1 {
				t = table[idx]
			}
			sp = brAdjust(stack, sp, int(t.drop), int(t.keep))
			pc = int(t.pc)
			continue
		case opLoweredReturn:
			keep := int(i.c)
			copy(stack[bp:bp+keep], stack[sp-keep:sp])
			in.sp = bp + keep
			return
		case opFusedCmpBr:
			// Fused i32 compare + conditional branch (AoT engine).
			sp -= 2
			a, b := uint32(stack[sp]), uint32(stack[sp+1])
			var cond bool
			switch byte(i.b) {
			case OpI32Eq:
				cond = a == b
			case OpI32Ne:
				cond = a != b
			case OpI32LtS:
				cond = int32(a) < int32(b)
			case OpI32LtU:
				cond = a < b
			case OpI32GtS:
				cond = int32(a) > int32(b)
			case OpI32GtU:
				cond = a > b
			case OpI32LeS:
				cond = int32(a) <= int32(b)
			case OpI32LeU:
				cond = a <= b
			case OpI32GeS:
				cond = int32(a) >= int32(b)
			case OpI32GeU:
				cond = a >= b
			}
			if cond {
				sp = brAdjust(stack, sp, int(i.c)>>16, int(i.c)&0xFFFF)
				pc = int(i.a)
				continue
			}
		case uint16(OpCall):
			in.sp = sp
			in.invokeFunc(int(i.a))
			sp = in.sp
		case uint16(OpCallIndirect):
			sp--
			elem := uint32(stack[sp])
			if int(elem) >= len(in.table) {
				trap(TrapUndefinedElem, "index %d of %d", elem, len(in.table))
			}
			target := in.table[elem]
			if target < 0 {
				trap(TrapUndefinedElem, "uninitialised element %d", elem)
			}
			want := in.m.Types[i.a]
			got, err := in.m.TypeOfFunc(uint32(target))
			if err != nil || !got.Equal(want) {
				trap(TrapIndirectType, "want %v got %v", want, got)
			}
			in.sp = sp
			in.invokeFunc(int(target))
			sp = in.sp

		// --- parametric ---
		case uint16(OpDrop):
			sp--
		case uint16(OpSelect):
			sp -= 2
			if uint32(stack[sp+1]) == 0 {
				stack[sp-1] = stack[sp]
			}

		// --- variables ---
		case uint16(OpLocalGet):
			stack[sp] = stack[bp+int(i.a)]
			sp++
		case uint16(OpLocalSet):
			sp--
			stack[bp+int(i.a)] = stack[sp]
		case uint16(OpLocalTee):
			stack[bp+int(i.a)] = stack[sp-1]
		case uint16(OpGlobalGet):
			stack[sp] = in.globals[i.a]
			sp++
		case uint16(OpGlobalSet):
			sp--
			in.globals[i.a] = stack[sp]

		// --- memory ---
		case uint16(OpI32Load):
			stack[sp-1] = uint64(binary.LittleEndian.Uint32(memAt(mem, stack[sp-1], i.imm, 4)))
		case uint16(OpI64Load):
			stack[sp-1] = binary.LittleEndian.Uint64(memAt(mem, stack[sp-1], i.imm, 8))
		case uint16(OpF32Load):
			stack[sp-1] = uint64(binary.LittleEndian.Uint32(memAt(mem, stack[sp-1], i.imm, 4)))
		case uint16(OpF64Load):
			stack[sp-1] = binary.LittleEndian.Uint64(memAt(mem, stack[sp-1], i.imm, 8))
		case uint16(OpI32Load8S):
			stack[sp-1] = uint64(uint32(int32(int8(memAt(mem, stack[sp-1], i.imm, 1)[0]))))
		case uint16(OpI32Load8U):
			stack[sp-1] = uint64(memAt(mem, stack[sp-1], i.imm, 1)[0])
		case uint16(OpI32Load16S):
			stack[sp-1] = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(memAt(mem, stack[sp-1], i.imm, 2))))))
		case uint16(OpI32Load16U):
			stack[sp-1] = uint64(binary.LittleEndian.Uint16(memAt(mem, stack[sp-1], i.imm, 2)))
		case uint16(OpI64Load8S):
			stack[sp-1] = uint64(int64(int8(memAt(mem, stack[sp-1], i.imm, 1)[0])))
		case uint16(OpI64Load8U):
			stack[sp-1] = uint64(memAt(mem, stack[sp-1], i.imm, 1)[0])
		case uint16(OpI64Load16S):
			stack[sp-1] = uint64(int64(int16(binary.LittleEndian.Uint16(memAt(mem, stack[sp-1], i.imm, 2)))))
		case uint16(OpI64Load16U):
			stack[sp-1] = uint64(binary.LittleEndian.Uint16(memAt(mem, stack[sp-1], i.imm, 2)))
		case uint16(OpI64Load32S):
			stack[sp-1] = uint64(int64(int32(binary.LittleEndian.Uint32(memAt(mem, stack[sp-1], i.imm, 4)))))
		case uint16(OpI64Load32U):
			stack[sp-1] = uint64(binary.LittleEndian.Uint32(memAt(mem, stack[sp-1], i.imm, 4)))
		case uint16(OpI32Store):
			sp -= 2
			binary.LittleEndian.PutUint32(memAt(mem, stack[sp], i.imm, 4), uint32(stack[sp+1]))
		case uint16(OpI64Store):
			sp -= 2
			binary.LittleEndian.PutUint64(memAt(mem, stack[sp], i.imm, 8), stack[sp+1])
		case uint16(OpF32Store):
			sp -= 2
			binary.LittleEndian.PutUint32(memAt(mem, stack[sp], i.imm, 4), uint32(stack[sp+1]))
		case uint16(OpF64Store):
			sp -= 2
			binary.LittleEndian.PutUint64(memAt(mem, stack[sp], i.imm, 8), stack[sp+1])
		case uint16(OpI32Store8), uint16(OpI64Store8):
			sp -= 2
			memAt(mem, stack[sp], i.imm, 1)[0] = byte(stack[sp+1])
		case uint16(OpI32Store16), uint16(OpI64Store16):
			sp -= 2
			binary.LittleEndian.PutUint16(memAt(mem, stack[sp], i.imm, 2), uint16(stack[sp+1]))
		case uint16(OpI64Store32):
			sp -= 2
			binary.LittleEndian.PutUint32(memAt(mem, stack[sp], i.imm, 4), uint32(stack[sp+1]))
		case uint16(OpMemorySize):
			stack[sp] = uint64(mem.Pages())
			sp++
		case uint16(OpMemoryGrow):
			stack[sp-1] = uint64(uint32(mem.Grow(uint32(stack[sp-1]))))

		// --- constants ---
		case uint16(OpI32Const), uint16(OpI64Const), uint16(OpF32Const), uint16(OpF64Const):
			stack[sp] = i.imm
			sp++

		// --- i32 compare ---
		case uint16(OpI32Eqz):
			stack[sp-1] = b2u(uint32(stack[sp-1]) == 0)
		case uint16(OpI32Eq):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) == uint32(stack[sp]))
		case uint16(OpI32Ne):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) != uint32(stack[sp]))
		case uint16(OpI32LtS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) < int32(stack[sp]))
		case uint16(OpI32LtU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) < uint32(stack[sp]))
		case uint16(OpI32GtS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) > int32(stack[sp]))
		case uint16(OpI32GtU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) > uint32(stack[sp]))
		case uint16(OpI32LeS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) <= int32(stack[sp]))
		case uint16(OpI32LeU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) <= uint32(stack[sp]))
		case uint16(OpI32GeS):
			sp--
			stack[sp-1] = b2u(int32(stack[sp-1]) >= int32(stack[sp]))
		case uint16(OpI32GeU):
			sp--
			stack[sp-1] = b2u(uint32(stack[sp-1]) >= uint32(stack[sp]))

		// --- i64 compare ---
		case uint16(OpI64Eqz):
			stack[sp-1] = b2u(stack[sp-1] == 0)
		case uint16(OpI64Eq):
			sp--
			stack[sp-1] = b2u(stack[sp-1] == stack[sp])
		case uint16(OpI64Ne):
			sp--
			stack[sp-1] = b2u(stack[sp-1] != stack[sp])
		case uint16(OpI64LtS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) < int64(stack[sp]))
		case uint16(OpI64LtU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] < stack[sp])
		case uint16(OpI64GtS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) > int64(stack[sp]))
		case uint16(OpI64GtU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] > stack[sp])
		case uint16(OpI64LeS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) <= int64(stack[sp]))
		case uint16(OpI64LeU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] <= stack[sp])
		case uint16(OpI64GeS):
			sp--
			stack[sp-1] = b2u(int64(stack[sp-1]) >= int64(stack[sp]))
		case uint16(OpI64GeU):
			sp--
			stack[sp-1] = b2u(stack[sp-1] >= stack[sp])

		// --- float compare ---
		case uint16(OpF32Eq):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) == f32(stack[sp]))
		case uint16(OpF32Ne):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) != f32(stack[sp]))
		case uint16(OpF32Lt):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) < f32(stack[sp]))
		case uint16(OpF32Gt):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) > f32(stack[sp]))
		case uint16(OpF32Le):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) <= f32(stack[sp]))
		case uint16(OpF32Ge):
			sp--
			stack[sp-1] = b2u(f32(stack[sp-1]) >= f32(stack[sp]))
		case uint16(OpF64Eq):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) == f64(stack[sp]))
		case uint16(OpF64Ne):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) != f64(stack[sp]))
		case uint16(OpF64Lt):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) < f64(stack[sp]))
		case uint16(OpF64Gt):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) > f64(stack[sp]))
		case uint16(OpF64Le):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) <= f64(stack[sp]))
		case uint16(OpF64Ge):
			sp--
			stack[sp-1] = b2u(f64(stack[sp-1]) >= f64(stack[sp]))

		// --- i32 arithmetic ---
		case uint16(OpI32Clz):
			stack[sp-1] = uint64(bits.LeadingZeros32(uint32(stack[sp-1])))
		case uint16(OpI32Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros32(uint32(stack[sp-1])))
		case uint16(OpI32Popcnt):
			stack[sp-1] = uint64(bits.OnesCount32(uint32(stack[sp-1])))
		case uint16(OpI32Add):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) + uint32(stack[sp]))
		case uint16(OpI32Sub):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) - uint32(stack[sp]))
		case uint16(OpI32Mul):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) * uint32(stack[sp]))
		case uint16(OpI32DivS):
			sp--
			d := int32(stack[sp])
			n := int32(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i32.div_s")
			}
			if n == math.MinInt32 && d == -1 {
				trap(TrapIntOverflow, "i32.div_s")
			}
			stack[sp-1] = uint64(uint32(n / d))
		case uint16(OpI32DivU):
			sp--
			d := uint32(stack[sp])
			if d == 0 {
				trap(TrapDivZero, "i32.div_u")
			}
			stack[sp-1] = uint64(uint32(stack[sp-1]) / d)
		case uint16(OpI32RemS):
			sp--
			d := int32(stack[sp])
			n := int32(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_s")
			}
			if n == math.MinInt32 && d == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = uint64(uint32(n % d))
			}
		case uint16(OpI32RemU):
			sp--
			d := uint32(stack[sp])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_u")
			}
			stack[sp-1] = uint64(uint32(stack[sp-1]) % d)
		case uint16(OpI32And):
			sp--
			stack[sp-1] = stack[sp-1] & stack[sp]
		case uint16(OpI32Or):
			sp--
			stack[sp-1] = stack[sp-1] | stack[sp]
		case uint16(OpI32Xor):
			sp--
			stack[sp-1] = stack[sp-1] ^ stack[sp]
		case uint16(OpI32Shl):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) << (uint32(stack[sp]) & 31))
		case uint16(OpI32ShrS):
			sp--
			stack[sp-1] = uint64(uint32(int32(stack[sp-1]) >> (uint32(stack[sp]) & 31)))
		case uint16(OpI32ShrU):
			sp--
			stack[sp-1] = uint64(uint32(stack[sp-1]) >> (uint32(stack[sp]) & 31))
		case uint16(OpI32Rotl):
			sp--
			stack[sp-1] = uint64(bits.RotateLeft32(uint32(stack[sp-1]), int(uint32(stack[sp])&31)))
		case uint16(OpI32Rotr):
			sp--
			stack[sp-1] = uint64(bits.RotateLeft32(uint32(stack[sp-1]), -int(uint32(stack[sp])&31)))

		// --- i64 arithmetic ---
		case uint16(OpI64Clz):
			stack[sp-1] = uint64(bits.LeadingZeros64(stack[sp-1]))
		case uint16(OpI64Ctz):
			stack[sp-1] = uint64(bits.TrailingZeros64(stack[sp-1]))
		case uint16(OpI64Popcnt):
			stack[sp-1] = uint64(bits.OnesCount64(stack[sp-1]))
		case uint16(OpI64Add):
			sp--
			stack[sp-1] = stack[sp-1] + stack[sp]
		case uint16(OpI64Sub):
			sp--
			stack[sp-1] = stack[sp-1] - stack[sp]
		case uint16(OpI64Mul):
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp]
		case uint16(OpI64DivS):
			sp--
			d := int64(stack[sp])
			n := int64(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i64.div_s")
			}
			if n == math.MinInt64 && d == -1 {
				trap(TrapIntOverflow, "i64.div_s")
			}
			stack[sp-1] = uint64(n / d)
		case uint16(OpI64DivU):
			sp--
			if stack[sp] == 0 {
				trap(TrapDivZero, "i64.div_u")
			}
			stack[sp-1] = stack[sp-1] / stack[sp]
		case uint16(OpI64RemS):
			sp--
			d := int64(stack[sp])
			n := int64(stack[sp-1])
			if d == 0 {
				trap(TrapDivZero, "i64.rem_s")
			}
			if n == math.MinInt64 && d == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = uint64(n % d)
			}
		case uint16(OpI64RemU):
			sp--
			if stack[sp] == 0 {
				trap(TrapDivZero, "i64.rem_u")
			}
			stack[sp-1] = stack[sp-1] % stack[sp]
		case uint16(OpI64And):
			sp--
			stack[sp-1] = stack[sp-1] & stack[sp]
		case uint16(OpI64Or):
			sp--
			stack[sp-1] = stack[sp-1] | stack[sp]
		case uint16(OpI64Xor):
			sp--
			stack[sp-1] = stack[sp-1] ^ stack[sp]
		case uint16(OpI64Shl):
			sp--
			stack[sp-1] = stack[sp-1] << (stack[sp] & 63)
		case uint16(OpI64ShrS):
			sp--
			stack[sp-1] = uint64(int64(stack[sp-1]) >> (stack[sp] & 63))
		case uint16(OpI64ShrU):
			sp--
			stack[sp-1] = stack[sp-1] >> (stack[sp] & 63)
		case uint16(OpI64Rotl):
			sp--
			stack[sp-1] = bits.RotateLeft64(stack[sp-1], int(stack[sp]&63))
		case uint16(OpI64Rotr):
			sp--
			stack[sp-1] = bits.RotateLeft64(stack[sp-1], -int(stack[sp]&63))

		default:
			sp = in.runFloatOrFused(fn, i, stack, bp, sp)
		}
		pc++
	}
}

// brAdjust implements branch value transfer: keep the top keep slots,
// discard drop slots beneath them.
func brAdjust(stack []uint64, sp, drop, keep int) int {
	if drop == 0 {
		return sp
	}
	copy(stack[sp-keep-drop:sp-drop], stack[sp-keep:sp])
	return sp - drop
}

// memAt bounds-checks, touches and returns the n-byte window at
// base+offset.
func memAt(mem *Memory, base, offset uint64, n uint64) []byte {
	addr := uint64(uint32(base)) + offset
	end := addr + n
	if mem == nil || end > uint64(len(mem.data)) {
		trap(TrapOOB, "[%d,%d)", addr, end)
	}
	if mem.touch != nil {
		mem.touch(int64(addr), int64(n))
	}
	return mem.data[addr:end:end]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func f32(v uint64) float32  { return math.Float32frombits(uint32(v)) }
func f64(v uint64) float64  { return math.Float64frombits(v) }
func pf32(f float32) uint64 { return uint64(math.Float32bits(f)) }
func pf64(f float64) uint64 { return math.Float64bits(f) }
