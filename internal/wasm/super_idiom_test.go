package wasm

import (
	"bytes"
	"testing"

	"twine/wasmgen"
)

// TestSuperCopyTailIdiom pins idiom matching for loops whose induction
// increment was rewritten by the register tier's LVN: when the body
// already computes j+1 (for an A[i][j+1] load), the back-edge becomes
// "copy L, src" instead of the canonical "i32addimm L, L, 1". The
// matcher must recognise the copy tail — this is exactly the jacobi-2d
// stencil shape, and losing it silently demotes the hottest PolyBench
// stencil loop to a step trace. The test asserts the loop really is an
// idiom trace, that raw trips actually ran (dispatch count collapses),
// and that result and memory stay bit-identical across all four engines.
func TestSuperCopyTailIdiom(t *testing.T) {
	const n = 24
	const baseA, baseB = 64, 64 + n*n*8
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig().Returns(wasmgen.F64))
	i := f.AddLocal(wasmgen.I32)
	j := f.AddLocal(wasmgen.I32)

	// The polybench DSL's address form: (row*n + col)*8 + base.
	addr2 := func(base int32, row func(), col func()) {
		row()
		f.I32Const(n)
		f.I32Mul()
		col()
		f.I32Add()
		f.I32Const(8)
		f.I32Mul()
		f.I32Const(base)
		f.I32Add()
	}
	getI := func() { f.LocalGet(i) }
	getJ := func() { f.LocalGet(j) }
	iMinus1 := func() { f.LocalGet(i); f.I32Const(1); f.I32Sub() }
	iPlus1 := func() { f.LocalGet(i); f.I32Const(1); f.I32Add() }
	jMinus1 := func() { f.LocalGet(j); f.I32Const(1); f.I32Sub() }
	jPlus1 := func() { f.LocalGet(j); f.I32Const(1); f.I32Add() }

	forLoop := func(v uint32, lo, hi int32, body func()) {
		f.I32Const(lo)
		f.LocalSet(v)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(v)
		f.I32Const(hi)
		f.I32GeS()
		f.BrIf(1)
		body()
		f.LocalGet(v)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(v)
		f.Br(0)
		f.End()
		f.End()
	}

	forLoop(i, 0, n, func() {
		forLoop(j, 0, n, func() {
			addr2(baseA, getI, getJ)
			f.LocalGet(i)
			f.LocalGet(j)
			f.I32Add()
			f.F64ConvertI32S()
			f.F64Store(0)
		})
	})
	// B[i][j] = 0.2*(A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]).
	// The A[i][j+1] load makes LVN reuse its j+1 temp as the increment.
	forLoop(i, 1, n-1, func() {
		forLoop(j, 1, n-1, func() {
			addr2(baseB, getI, getJ)
			f.F64Const(0.2)
			addr2(baseA, getI, getJ)
			f.F64Load(0)
			addr2(baseA, getI, jMinus1)
			f.F64Load(0)
			f.F64Add()
			addr2(baseA, getI, jPlus1)
			f.F64Load(0)
			f.F64Add()
			addr2(baseA, iPlus1, getJ)
			f.F64Load(0)
			f.F64Add()
			addr2(baseA, iMinus1, getJ)
			f.F64Load(0)
			f.F64Add()
			f.F64Mul()
			f.F64Store(0)
		})
	})
	f.I32Const(baseB + 8*(n+5))
	f.F64Load(0)
	f.End()
	m.Export("run", f)

	mod, err := Decode(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}

	st := c.SuperStats(false)
	if st.Idioms < 1 {
		t.Fatalf("stencil loop did not match an idiom (copy tail lost?): %+v", st)
	}

	engines := []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock}
	var res [4]uint64
	var mems [4][]byte
	var retired [4]int64
	for ei, e := range engines {
		in, err := Instantiate(c, nil, Config{Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		out, err := in.Invoke("run")
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		res[ei] = out[0]
		mems[ei] = append([]byte(nil), in.mem.data...)
		retired[ei] = in.InsRetired()
	}
	for ei := 1; ei < 4; ei++ {
		if res[ei] != res[0] {
			t.Errorf("%v result %#x, want %#x", engines[ei], res[ei], res[0])
		}
		if !bytes.Equal(mems[ei], mems[0]) {
			t.Errorf("%v memory diverged from interp", engines[ei])
		}
	}
	// The idiom trace charges one dispatch per iteration instead of the
	// ~20-instruction stencil body; the init loop stays a step trace, so
	// require a >2x overall drop rather than a per-loop ratio.
	if retired[3]*2 >= retired[2] {
		t.Errorf("superblock retired %d vs register %d; idiom trace did not engage", retired[3], retired[2])
	}
}
