package wasm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// TouchFunc observes linear-memory accesses. TWINE installs a hook that
// charges the access against the enclave's EPC model; the default is nil
// (no cost).
type TouchFunc func(off, n int64)

// EPC-TLB geometry. Entries cache 4 KiB guest pages (the SGX enclave page
// size); the table is direct-mapped, so consecutive guest pages land in
// consecutive slots and a PolyBench-style working set of a few arrays
// stays fully cached.
const (
	tlbPageBits = 12 // 4 KiB pages, matching sgx.PageSize
	tlbSlots    = 256
	tlbMask     = tlbSlots - 1
)

// tlbEntry records that guest page tag-1 was proven referenced while the
// touch provider's generation counter read gen. The tag is the page
// number plus one so the zero value matches nothing.
type tlbEntry struct {
	tag uint64
	gen uint64
}

// Memory is a linear memory instance.
type Memory struct {
	data     []byte
	limits   Limits
	maxPages uint32
	touch    TouchFunc

	// gen, when non-nil, points at the touch provider's paging generation
	// and enables the software EPC-TLB: once a page has been touched at
	// generation g, further touches of it are provably no-ops until *gen
	// changes, so the hot path skips the hook entirely. See SetTouchGen.
	gen *uint64
	tlb [tlbSlots]tlbEntry
}

// NewMemory creates a memory honouring both the module limits and an
// engine-level cap (capPages; 0 means "module limits only"). A module
// minimum above the cap fails, which is exactly how the paper's PolyBench
// memory-shrinking experiment provokes allocation failure (§V-B).
func NewMemory(l Limits, capPages uint32) (*Memory, error) {
	max := uint32(MaxPages)
	if l.HasMax {
		max = l.Max
	}
	if capPages != 0 && capPages < max {
		max = capPages
	}
	if l.Min > max {
		return nil, fmt.Errorf("wasm: memory min %d pages exceeds available %d pages", l.Min, max)
	}
	return &Memory{
		data:     make([]byte, int(l.Min)*PageSize),
		limits:   l,
		maxPages: max,
	}, nil
}

// SetTouch installs the access hook. Every access calls the hook; use
// SetTouchGen when the hook's semantics allow redundant calls to be
// elided.
func (m *Memory) SetTouch(t TouchFunc) {
	m.touch = t
	m.gen = nil
}

// SetTouchGen installs an access hook together with a generation word and
// enables the EPC-TLB. The contract the provider must honour:
//
//   - touching a 4 KiB-aligned guest page that has already been touched is
//     a no-op as long as *gen has not changed since, and
//   - *gen changes before any state regression that could make a
//     re-touch meaningful again (eviction, clock sweep, reset).
//
// The enclave's EPC model satisfies this exactly (sgx.Memory.Gen), with
// the guest arena aligned to the enclave page size so guest and enclave
// pages coincide. Passing gen == nil degrades to SetTouch.
func (m *Memory) SetTouchGen(t TouchFunc, gen *uint64) {
	m.touch = t
	m.gen = gen
	m.tlb = [tlbSlots]tlbEntry{}
}

// touchRange charges [addr, addr+n) against the touch hook, consulting
// the TLB first. Only single-page spans are cached: multi-page spans are
// rarer and always forwarded, preserving the hook's observed span
// pattern. The caller has already bounds-checked the range and
// guarantees m.touch != nil and n > 0.
func (m *Memory) touchRange(addr, n uint64) {
	if m.gen != nil {
		p := addr >> tlbPageBits
		if (addr+n-1)>>tlbPageBits == p {
			e := &m.tlb[p&tlbMask]
			// The generation is written by the provider under its paging
			// lock but read here lock-free; the atomic load keeps the TLB
			// fast path a single plain load on amd64 while other enclave
			// threads page concurrently.
			if e.tag == p+1 && e.gen == atomic.LoadUint64(m.gen) {
				return // proven referenced at this generation: a no-op touch
			}
		}
	}
	m.touchMiss(addr, n)
}

// touchMiss charges the touch and, for single-page spans with the TLB
// enabled, records the page as hot. The entry is stamped after the hook
// runs: if the touch itself swept or evicted, *m.gen has already moved
// on and the entry carries the new generation, at which the page is
// (re-)referenced. (If a *concurrent* enclave thread evicts this very
// page in the stamp window the entry can over-approximate hotness for
// one generation — a modelling approximation only possible under
// concurrency; single-threaded accounting stays exact, which is what the
// fidelity tests pin.)
func (m *Memory) touchMiss(addr, n uint64) {
	m.touch(int64(addr), int64(n))
	if m.gen != nil {
		p := addr >> tlbPageBits
		if (addr+n-1)>>tlbPageBits == p {
			e := &m.tlb[p&tlbMask]
			e.tag = p + 1
			e.gen = atomic.LoadUint64(m.gen)
		}
	}
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.data) / PageSize) }

// Len returns the current size in bytes.
func (m *Memory) Len() int { return len(m.data) }

// Grow adds delta pages, returning the previous page count or -1 when the
// limit would be exceeded. Growth reuses spare slice capacity when
// possible: the region between len and cap was zeroed by the original
// allocation and is never written (every access is bounds-checked against
// len), so re-slicing exposes the zero bytes the spec requires without a
// copy. When a reallocation is unavoidable, capacity is over-provisioned
// (doubling, capped at maxPages) so repeated one-page grows amortise.
// The EPC-TLB stays valid across growth: guest page numbers and their
// arena mapping are unchanged, and new pages were never cached.
func (m *Memory) Grow(delta uint32) int32 {
	cur := m.Pages()
	if uint64(cur)+uint64(delta) > uint64(m.maxPages) {
		return -1
	}
	need := (int(cur) + int(delta)) * PageSize
	if need <= cap(m.data) {
		m.data = m.data[:need]
		return int32(cur)
	}
	newCap := 2 * need
	if max := int(m.maxPages) * PageSize; newCap > max {
		newCap = max
	}
	grown := make([]byte, need, newCap)
	copy(grown, m.data)
	m.data = grown
	return int32(cur)
}

// restore replaces the memory contents with a snapshot copy. The byte
// length must be page-aligned and within the instance's limits; spare
// capacity is reused so repeated pool instantiations do not reallocate.
func (m *Memory) restore(b []byte) error {
	if len(b)%PageSize != 0 {
		return fmt.Errorf("wasm: snapshot memory size %d is not page aligned", len(b))
	}
	if pages := uint32(len(b) / PageSize); pages > m.maxPages {
		return fmt.Errorf("wasm: snapshot memory %d pages exceeds limit %d", pages, m.maxPages)
	}
	if cap(m.data) >= len(b) {
		m.data = m.data[:len(b)]
	} else {
		m.data = make([]byte, len(b))
	}
	copy(m.data, b)
	m.tlb = [tlbSlots]tlbEntry{}
	return nil
}

// Range checks and touches [off, off+n), returning an error out of bounds.
// Host functions use it before raw access.
func (m *Memory) Range(off, n uint32) error {
	end := uint64(off) + uint64(n)
	if end > uint64(len(m.data)) {
		return fmt.Errorf("wasm: memory access [%d,%d) out of bounds (%d)", off, end, len(m.data))
	}
	if m.touch != nil && n > 0 {
		m.touchRange(uint64(off), uint64(n))
	}
	return nil
}

// Bytes returns a view of guest memory after bounds-checking and touching.
// The view is invalidated by memory.grow.
func (m *Memory) Bytes(off, n uint32) ([]byte, error) {
	if err := m.Range(off, n); err != nil {
		return nil, err
	}
	return m.data[off : uint64(off)+uint64(n) : uint64(off)+uint64(n)], nil
}

// ReadU32 loads a little-endian u32 from guest memory.
func (m *Memory) ReadU32(off uint32) (uint32, error) {
	b, err := m.Bytes(off, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteU32 stores a little-endian u32 into guest memory.
func (m *Memory) WriteU32(off uint32, v uint32) error {
	b, err := m.Bytes(off, 4)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// ReadU64 loads a little-endian u64 from guest memory.
func (m *Memory) ReadU64(off uint32) (uint64, error) {
	b, err := m.Bytes(off, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 stores a little-endian u64 into guest memory.
func (m *Memory) WriteU64(off uint32, v uint64) error {
	b, err := m.Bytes(off, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	return nil
}

// WriteU16 stores a little-endian u16 into guest memory.
func (m *Memory) WriteU16(off uint32, v uint16) error {
	b, err := m.Bytes(off, 2)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b, v)
	return nil
}

// WriteByteAt stores one byte into guest memory.
func (m *Memory) WriteByteAt(off uint32, v byte) error {
	b, err := m.Bytes(off, 1)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// ReadString reads n bytes at off as a string.
func (m *Memory) ReadString(off, n uint32) (string, error) {
	b, err := m.Bytes(off, n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
