package wasm

import (
	"encoding/binary"
	"fmt"
)

// TouchFunc observes linear-memory accesses. TWINE installs a hook that
// charges the access against the enclave's EPC model; the default is nil
// (no cost).
type TouchFunc func(off, n int64)

// Memory is a linear memory instance.
type Memory struct {
	data     []byte
	limits   Limits
	maxPages uint32
	touch    TouchFunc
}

// NewMemory creates a memory honouring both the module limits and an
// engine-level cap (capPages; 0 means "module limits only"). A module
// minimum above the cap fails, which is exactly how the paper's PolyBench
// memory-shrinking experiment provokes allocation failure (§V-B).
func NewMemory(l Limits, capPages uint32) (*Memory, error) {
	max := uint32(MaxPages)
	if l.HasMax {
		max = l.Max
	}
	if capPages != 0 && capPages < max {
		max = capPages
	}
	if l.Min > max {
		return nil, fmt.Errorf("wasm: memory min %d pages exceeds available %d pages", l.Min, max)
	}
	return &Memory{
		data:     make([]byte, int(l.Min)*PageSize),
		limits:   l,
		maxPages: max,
	}, nil
}

// SetTouch installs the access hook.
func (m *Memory) SetTouch(t TouchFunc) { m.touch = t }

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.data) / PageSize) }

// Len returns the current size in bytes.
func (m *Memory) Len() int { return len(m.data) }

// Grow adds delta pages, returning the previous page count or -1 when the
// limit would be exceeded.
func (m *Memory) Grow(delta uint32) int32 {
	cur := m.Pages()
	if uint64(cur)+uint64(delta) > uint64(m.maxPages) {
		return -1
	}
	grown := make([]byte, (int(cur)+int(delta))*PageSize)
	copy(grown, m.data)
	m.data = grown
	return int32(cur)
}

// Range checks and touches [off, off+n), returning an error out of bounds.
// Host functions use it before raw access.
func (m *Memory) Range(off, n uint32) error {
	end := uint64(off) + uint64(n)
	if end > uint64(len(m.data)) {
		return fmt.Errorf("wasm: memory access [%d,%d) out of bounds (%d)", off, end, len(m.data))
	}
	if m.touch != nil && n > 0 {
		m.touch(int64(off), int64(n))
	}
	return nil
}

// Bytes returns a view of guest memory after bounds-checking and touching.
// The view is invalidated by memory.grow.
func (m *Memory) Bytes(off, n uint32) ([]byte, error) {
	if err := m.Range(off, n); err != nil {
		return nil, err
	}
	return m.data[off : uint64(off)+uint64(n) : uint64(off)+uint64(n)], nil
}

// ReadU32 loads a little-endian u32 from guest memory.
func (m *Memory) ReadU32(off uint32) (uint32, error) {
	b, err := m.Bytes(off, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteU32 stores a little-endian u32 into guest memory.
func (m *Memory) WriteU32(off uint32, v uint32) error {
	b, err := m.Bytes(off, 4)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// ReadU64 loads a little-endian u64 from guest memory.
func (m *Memory) ReadU64(off uint32) (uint64, error) {
	b, err := m.Bytes(off, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 stores a little-endian u64 into guest memory.
func (m *Memory) WriteU64(off uint32, v uint64) error {
	b, err := m.Bytes(off, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	return nil
}

// WriteU16 stores a little-endian u16 into guest memory.
func (m *Memory) WriteU16(off uint32, v uint16) error {
	b, err := m.Bytes(off, 2)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b, v)
	return nil
}

// WriteByteAt stores one byte into guest memory.
func (m *Memory) WriteByteAt(off uint32, v byte) error {
	b, err := m.Bytes(off, 1)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// ReadString reads n bytes at off as a string.
func (m *Memory) ReadString(off, n uint32) (string, error) {
	b, err := m.Bytes(off, n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
