package wasm

import "fmt"

// TrapKind classifies runtime traps.
type TrapKind int

// Trap kinds.
const (
	TrapUnreachable TrapKind = iota
	TrapOOB
	TrapDivZero
	TrapIntOverflow
	TrapBadConversion
	TrapStackOverflow
	TrapCallDepth
	TrapUndefinedElem
	TrapIndirectType
	TrapHostError
	TrapExit
)

func (k TrapKind) String() string {
	switch k {
	case TrapUnreachable:
		return "unreachable"
	case TrapOOB:
		return "out of bounds memory access"
	case TrapDivZero:
		return "integer divide by zero"
	case TrapIntOverflow:
		return "integer overflow"
	case TrapBadConversion:
		return "invalid conversion to integer"
	case TrapStackOverflow:
		return "value stack exhausted"
	case TrapCallDepth:
		return "call stack exhausted"
	case TrapUndefinedElem:
		return "undefined table element"
	case TrapIndirectType:
		return "indirect call type mismatch"
	case TrapHostError:
		return "host function error"
	case TrapExit:
		return "process exit"
	default:
		return fmt.Sprintf("trap(%d)", int(k))
	}
}

// Trap is a WebAssembly runtime trap. The guest cannot catch it; it
// unwinds to the embedder.
type Trap struct {
	Kind TrapKind
	Msg  string
	// Code carries the exit status for TrapExit.
	Code uint32
	// Err carries the host error for TrapHostError.
	Err error
}

// Error implements error.
func (t *Trap) Error() string {
	if t.Msg != "" {
		return fmt.Sprintf("wasm trap: %s: %s", t.Kind, t.Msg)
	}
	return fmt.Sprintf("wasm trap: %s", t.Kind)
}

// Unwrap exposes the host error.
func (t *Trap) Unwrap() error { return t.Err }

func trap(k TrapKind, format string, args ...any) {
	panic(&Trap{Kind: k, Msg: fmt.Sprintf(format, args...)})
}

// ExitError is returned by a host function (typically WASI proc_exit) to
// terminate the guest with a status code.
type ExitError struct{ Code uint32 }

// Error implements error.
func (e ExitError) Error() string { return fmt.Sprintf("proc_exit(%d)", e.Code) }
