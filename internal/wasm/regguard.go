package wasm

// regguard.go — block finalisation for the register tier: dead-store
// compaction and hoisted memory-check windows.
//
// Hoisting legality: a window is a run of instructions inside one basic
// block containing two or more checked accesses that share a base (the
// same base register for plain accesses, or the same (index register,
// scale, base constant) triple for affine ones) with constant offsets,
// where
//
//   - the base/index register is not written between the first and last
//     access (any write closes the group),
//   - no call, indirect call or memory.grow intervenes (calls can evict
//     EPC pages and advance the paging generation; grow moves the data),
//   - no intra-block branch target lands inside the window (nothing can
//     jump past the guard into raw code), and
//   - the combined span fits the guard encoding.
//
// The guard re-derives the base at run time, so the proof is per
// execution, not per compilation: it checks the whole span is in bounds
// and that every touch inside it would provably be a no-op — either no
// touch hook is installed, or the span lies on a single EPC-TLB page
// that is hot at the current paging generation. Only then does the raw
// window run; otherwise control transfers to a verbatim checked copy of
// the window appended after the function body, which jumps back to the
// instruction after the window. Bounds traps (message included), touch
// sequences and fault/eviction counters are therefore bit-identical to
// the stack tiers on every path.

type guardGroupKey struct {
	aff bool
	reg int32
	mA  uint64
}

// regAccess describes one checked memory access instruction.
func regAccess(i *ins) (key guardGroupKey, off, width uint64, ok bool) {
	switch i.op {
	case rOpLoad32U:
		return guardGroupKey{reg: i.b}, i.imm, 4, true
	case rOpLoad64:
		return guardGroupKey{reg: i.b}, i.imm, 8, true
	case rOpLoad8U, rOpLoad8S32, rOpLoad8S64:
		return guardGroupKey{reg: i.b}, i.imm, 1, true
	case rOpLoad16U, rOpLoad16S32, rOpLoad16S64:
		return guardGroupKey{reg: i.b}, i.imm, 2, true
	case rOpLoad32S64:
		return guardGroupKey{reg: i.b}, i.imm, 4, true
	case rOpStore8:
		return guardGroupKey{reg: i.a}, i.imm, 1, true
	case rOpStore16:
		return guardGroupKey{reg: i.a}, i.imm, 2, true
	case rOpStore32:
		return guardGroupKey{reg: i.a}, i.imm, 4, true
	case rOpStore64:
		return guardGroupKey{reg: i.a}, i.imm, 8, true
	case rOpStore64Imm:
		return guardGroupKey{reg: i.a}, uint64(uint32(i.c)), 8, true
	case rOpLoadAff64:
		return guardGroupKey{aff: true, reg: i.b, mA: i.imm}, uint64(uint32(i.c)), 8, true
	case rOpLoadAff32:
		return guardGroupKey{aff: true, reg: i.b, mA: i.imm}, uint64(uint32(i.c)), 4, true
	case rOpStoreAff64:
		return guardGroupKey{aff: true, reg: i.a, mA: i.imm}, uint64(uint32(i.c)), 8, true
	}
	return guardGroupKey{}, 0, 0, false
}

// regWritesDst reports whether the instruction writes register .a.
func regWritesDst(op uint16) bool {
	switch op {
	case rOpConst, rOpCopy, rOpGlobalGet, rOpMemSize, rOpMemGrow, rOpSelect,
		rOpI32AddImm, rOpI32MulImm, rOpI64AddImm,
		rOpI32MulAdd, rOpI32MulAddII, rOpF64MulAdd, rOpF64MulImm,
		rOpLoad32U, rOpLoad64, rOpLoad8U, rOpLoad16U, rOpLoad8S32,
		rOpLoad16S32, rOpLoad8S64, rOpLoad16S64, rOpLoad32S64,
		rOpLoadAff64, rOpLoadAff32:
		return true
	}
	return regBinaryOp(op) || regUnaryOp(op)
}

// regSideEffectFree reports instructions DSE may remove outright.
func regSideEffectFree(op uint16) bool {
	switch op {
	case rOpConst, rOpCopy, rOpSelect,
		rOpI32AddImm, rOpI32MulImm, rOpI64AddImm,
		rOpI32MulAdd, rOpI32MulAddII, rOpF64MulAdd, rOpF64MulImm:
		return true
	}
	return regPure(op)
}

// closeBlock compacts the just-finished block (dropping DSE'd stores),
// hoists guard windows, and fixes intra-block branch targets.
//
// A window is accepted only when EVERY checked access inside it can be
// guarded: each access belongs to a run (same base, base not rewritten
// across the run, no barrier), each run gets one guard before its first
// in-window access, and all members become raw. When every guard passes,
// the window performs no touches at all — and on the checked path every
// one of those touches would have been a TLB-hit no-op (the pages are
// hot, single-span, and the generation cannot move because nothing
// inside the window touches) — so paging state is bit-identical. If any
// guard fails, control transfers to a checked copy of the window suffix
// from that guard's position; everything before it ran raw under proofs
// that held, so the checked path would have reached the same state.
func (t *regTranslator) closeBlock() {
	start := t.blockStart
	blk := t.out[start:]
	deadBlk := t.dead[start:]
	n := len(blk)
	t.clearPendingLocals()
	if n == 0 {
		return
	}

	// --- pass 1: partition checked accesses into base-stable runs ---
	type runInfo struct {
		key     guardGroupKey
		members []int
	}
	var runs []*runInfo
	open := map[guardGroupKey]*runInfo{}
	closeAllRuns := func() {
		for k := range open {
			delete(open, k)
		}
	}
	for idx := 0; idx < n; idx++ {
		if deadBlk[idx] {
			continue
		}
		i := &blk[idx]
		switch i.op {
		case rOpCall, rOpCallIndirect, rOpMemGrow:
			closeAllRuns()
		}
		if key, _, _, ok := regAccess(i); ok {
			r := open[key]
			if r == nil {
				r = &runInfo{key: key}
				open[key] = r
				runs = append(runs, r)
			}
			r.members = append(r.members, idx)
		}
		if regWritesDst(i.op) {
			for k := range open {
				if k.reg == i.a {
					delete(open, k)
				}
			}
		}
	}

	// --- pass 2: select windows ---
	// A candidate window is the span of a run with >= 2 accesses. It is
	// accepted when no intra-block branch target lands inside, it does
	// not overlap an accepted window, and every run intersecting it has
	// a packable guard span for its in-window members.
	spanOf := func(members []int) (minOff, maxEnd uint64) {
		for mi, m := range members {
			_, off, w, _ := regAccess(&blk[m])
			if mi == 0 || off < minOff {
				minOff = off
			}
			if off+w > maxEnd {
				maxEnd = off + w
			}
		}
		return minOff, maxEnd
	}
	packable := func(key guardGroupKey, minOff, maxEnd uint64) bool {
		if key.aff {
			return minOff <= 0xFFFF && maxEnd <= 0xFFFF
		}
		return minOff <= 0xFFFFFFFF && maxEnd <= 0xFFFFFFFF
	}
	type guardPlan struct {
		key            guardGroupKey
		pos            int // original index of first in-window member
		minOff, maxEnd uint64
		members        []int
	}
	type windowPlan struct {
		first, last int
		guards      []guardPlan
	}
	var windows []windowPlan
	if !t.guarded {
		runs = nil
	}
	overlaps := func(f, l int) bool {
		for _, w := range windows {
			if f <= w.last && w.first <= l {
				return true
			}
		}
		for _, tg := range t.intraTargets {
			if tg >= start+f && tg <= start+l {
				return true
			}
		}
		return false
	}
	for _, cand := range runs {
		if len(cand.members) < 2 {
			continue
		}
		f := cand.members[0]
		l := cand.members[len(cand.members)-1]
		if overlaps(f, l) {
			continue
		}
		w := windowPlan{first: f, last: l}
		ok := true
		nAccesses := 0
		for _, r := range runs {
			var inW []int
			for _, m := range r.members {
				if m >= f && m <= l {
					inW = append(inW, m)
				}
			}
			if len(inW) == 0 {
				continue
			}
			minOff, maxEnd := spanOf(inW)
			if !packable(r.key, minOff, maxEnd) {
				ok = false
				break
			}
			nAccesses += len(inW)
			w.guards = append(w.guards, guardPlan{
				key: r.key, pos: inW[0], minOff: minOff, maxEnd: maxEnd, members: inW,
			})
		}
		// Each guard is an extra dispatch, and the per-access check it
		// replaces is an open-coded compare pair — hoisting only pays
		// when each guard covers two accesses on average (the pure
		// read-modify-write window: load and store through one base).
		if ok && nAccesses >= 2*len(w.guards) && nAccesses > len(w.guards) {
			windows = append(windows, w)
		}
	}

	// --- rebuild the block ---
	insertBefore := map[int]*guardPlan{}
	nGuards := 0
	for wi := range windows {
		for gi := range windows[wi].guards {
			insertBefore[windows[wi].guards[gi].pos] = &windows[wi].guards[gi]
			nGuards++
		}
	}
	newBlk := make([]ins, 0, n+nGuards)
	mapIdx := make([]int, n+1)
	guardAt := map[*guardPlan]int{}
	for idx := 0; idx < n; idx++ {
		if g := insertBefore[idx]; g != nil {
			guardAt[g] = len(newBlk)
			newBlk = append(newBlk, ins{}) // guard placeholder
		}
		mapIdx[idx] = len(newBlk)
		if deadBlk[idx] {
			continue
		}
		newBlk = append(newBlk, blk[idx])
	}
	mapIdx[n] = len(newBlk)

	remapIntra := func(code []ins) {
		for ci := range code {
			c := &code[ci]
			switch c.op {
			case rOpBr, rOpBrIf, rOpBrIfZ, rOpBrCmp, rOpBrCmpImm:
				if c.a >= int32(start) {
					c.a = int32(start + mapIdx[int(c.a)-start])
				}
			}
		}
	}
	remapIntra(newBlk)

	// --- emit guards, fallback copies, raw conversions ---
	for wi := range windows {
		w := &windows[wi]
		for gi := range w.guards {
			g := &w.guards[gi]
			// Fallback: a checked copy of the window suffix from this
			// guard's position, returning after the window.
			fid := len(t.fallbacks)
			var blob []ins
			for idx := g.pos; idx <= w.last; idx++ {
				if !deadBlk[idx] {
					blob = append(blob, blk[idx])
				}
			}
			remapIntra(blob)
			blob = append(blob, ins{op: rOpBr, a: int32(start + mapIdx[w.last+1])})
			t.fallbacks = append(t.fallbacks, blob)

			var guard ins
			if g.key.aff {
				guard = ins{op: rOpMemGuardAff, a: int32(^fid), b: g.key.reg,
					c: int32(g.minOff<<16 | g.maxEnd), imm: g.key.mA}
			} else {
				guard = ins{op: rOpMemGuard, a: int32(^fid), b: g.key.reg,
					imm: g.minOff<<32 | g.maxEnd}
			}
			newBlk[guardAt[g]] = guard
			for _, m := range g.members {
				newBlk[mapIdx[m]].op += rawDelta
			}
		}
		t.stats.Hoists++
	}

	t.out = append(t.out[:start], newBlk...)
	t.dead = t.dead[:start]
	for range newBlk {
		t.dead = append(t.dead, false)
	}
}

// finalize appends the checked fallback windows, resolves branch targets
// from old-pc space to register-code indexes, and remaps the br_table
// destinations.
func (t *regTranslator) finalize() (compiledFunc, bool) {
	fbStart := make([]int32, len(t.fallbacks))
	for i, blob := range t.fallbacks {
		fbStart[i] = int32(len(t.out))
		t.out = append(t.out, blob...)
	}
	for idx := range t.out {
		ii := &t.out[idx]
		switch ii.op {
		case rOpBr, rOpBrIf, rOpBrIfZ, rOpBrCmp, rOpBrCmpImm:
			if ii.a < 0 {
				np, ok := t.labels[int(-ii.a-1)]
				if !ok {
					return compiledFunc{}, false
				}
				ii.a = np
			}
		case rOpMemGuard, rOpMemGuardAff:
			ii.a = fbStart[int(^ii.a)]
		}
	}
	var tables [][]brTarget
	if len(t.src.brTables) > 0 {
		tables = make([][]brTarget, len(t.src.brTables))
		for ti, tbl := range t.src.brTables {
			nt := make([]brTarget, len(tbl))
			for i, tg := range tbl {
				np, ok := t.labels[int(tg.pc)]
				if !ok {
					return compiledFunc{}, false
				}
				nt[i] = brTarget{pc: np, drop: tg.drop, keep: tg.keep}
			}
			tables[ti] = nt
		}
	}
	out := *t.src
	out.code = t.out
	out.brTables = tables
	out.reg = true
	return out, true
}
