package wasm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Snapshot deltas (PR 9). The swap tier suspends idle instances by
// sealing their state to untrusted storage. Sealing the full linear
// memory would make every suspend cost O(memory); but a serving worker is
// stamped from its pool's golden snapshot and most of its pages never
// diverge from it, so a suspended instance is encoded as a *delta against
// the golden snapshot*: globals, table, and only the 4 KiB chunks of
// linear memory whose bytes differ. The golden snapshot is immutable and
// stays host-resident for the pool's lifetime (it is what warm reset and
// repair already restore from), so golden + delta reconstructs the full
// state bit-exactly. Confidentiality and integrity of the delta are the
// sealer's job (sgx.Enclave.Seal wraps the encoding in AES-GCM).

// swapChunk is the delta granularity. It matches the enclave page size
// (4 KiB), so "dirty chunks" coincide with the EPC pages the instance
// actually wrote.
const swapChunk = 4096

// swapMagic/swapVersion head every encoded delta.
const (
	swapMagic   uint32 = 0x54575344 // "TWSD"
	swapVersion uint32 = 1
)

// SnapshotDelta encodes the instance's mutable state as a delta against
// golden: header, globals, table, then each 4 KiB memory chunk whose
// bytes differ from the golden snapshot (chunks beyond the golden
// memory's length — the instance grew — are compared against zeros, which
// is what grown wasm memory starts as). The instance must be quiescent.
func (in *Instance) SnapshotDelta(golden *Snapshot) ([]byte, error) {
	if golden == nil {
		return nil, fmt.Errorf("%w: delta against nil snapshot", ErrValidation)
	}
	if golden.module != in.m {
		return nil, fmt.Errorf("%w: snapshot belongs to a different module", ErrLink)
	}
	var mem []byte
	if in.mem != nil {
		mem = in.mem.data
	}
	if len(mem)%swapChunk != 0 {
		return nil, fmt.Errorf("%w: memory length %d not a multiple of the swap chunk", ErrValidation, len(mem))
	}
	if len(golden.globals) != len(in.globals) || len(golden.table) != len(in.table) {
		return nil, fmt.Errorf("%w: snapshot shape diverged from instance", ErrLink)
	}

	// Pass 1: find dirty chunks.
	nChunks := len(mem) / swapChunk
	var dirty []int
	for c := 0; c < nChunks; c++ {
		if !chunkEqual(mem[c*swapChunk:(c+1)*swapChunk], golden.mem, c) {
			dirty = append(dirty, c)
		}
	}

	// Pass 2: encode. Fixed header + globals + table + dirty chunks.
	size := 4 + 4 + 8 + 4 + 8*len(in.globals) + 4 + 4*len(in.table) + 4 + len(dirty)*(4+swapChunk)
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, swapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, swapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(mem)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(in.globals)))
	for _, g := range in.globals {
		buf = binary.LittleEndian.AppendUint64(buf, g)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(in.table)))
	for _, tv := range in.table {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tv))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dirty)))
	for _, c := range dirty {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
		buf = append(buf, mem[c*swapChunk:(c+1)*swapChunk]...)
	}
	return buf, nil
}

// chunkEqual reports whether cur equals golden's chunk c, treating chunks
// beyond golden's length as zeros (grown memory starts zeroed).
func chunkEqual(cur, golden []byte, c int) bool {
	off := c * swapChunk
	if off+swapChunk <= len(golden) {
		return bytes.Equal(cur, golden[off:off+swapChunk])
	}
	// Past the golden snapshot: dirty iff any byte is nonzero. (golden.mem
	// is always chunk-aligned, so a chunk is either fully inside or fully
	// past it.)
	return bytes.Equal(cur, zeroChunk[:len(cur)])
}

// zeroChunk lets the grown-memory comparison use the same SIMD equality
// path as the in-golden case.
var zeroChunk [swapChunk]byte

// ApplySnapshotDelta reconstructs a full Snapshot from the golden
// snapshot and a delta produced by SnapshotDelta. The decoder is strict —
// magic, version, shape against golden, chunk indices strictly increasing
// and in range — so a corrupt or mismatched delta fails loudly instead of
// resuming a worker into silently wrong state. (Authenticity is the
// sealer's job; this guards decoding.)
func ApplySnapshotDelta(golden *Snapshot, delta []byte) (*Snapshot, error) {
	if golden == nil {
		return nil, fmt.Errorf("%w: apply delta to nil snapshot", ErrValidation)
	}
	d := deltaReader{buf: delta}
	if d.u32() != swapMagic {
		return nil, fmt.Errorf("%w: snapshot delta: bad magic", ErrValidation)
	}
	if v := d.u32(); v != swapVersion {
		return nil, fmt.Errorf("%w: snapshot delta: unsupported version %d", ErrValidation, v)
	}
	memLen := d.u64()
	if memLen%swapChunk != 0 || memLen > 1<<40 {
		return nil, fmt.Errorf("%w: snapshot delta: bad memory length %d", ErrValidation, memLen)
	}
	nGlob := int(d.u32())
	if nGlob != len(golden.globals) {
		return nil, fmt.Errorf("%w: snapshot delta: %d globals, golden has %d", ErrValidation, nGlob, len(golden.globals))
	}
	globals := make([]uint64, nGlob)
	for i := range globals {
		globals[i] = d.u64()
	}
	nTable := int(d.u32())
	if nTable != len(golden.table) {
		return nil, fmt.Errorf("%w: snapshot delta: %d table entries, golden has %d", ErrValidation, nTable, len(golden.table))
	}
	table := make([]int32, nTable)
	for i := range table {
		table[i] = int32(d.u32())
	}

	mem := make([]byte, memLen)
	copy(mem, golden.mem) // chunks past golden stay zero
	nDirty := int(d.u32())
	prev := -1
	for i := 0; i < nDirty; i++ {
		c := int(d.u32())
		if c <= prev || uint64(c+1)*swapChunk > memLen {
			return nil, fmt.Errorf("%w: snapshot delta: bad chunk index %d", ErrValidation, c)
		}
		prev = c
		chunk := d.bytes(swapChunk)
		if chunk == nil {
			break // d.err is set
		}
		copy(mem[c*swapChunk:], chunk)
	}
	if d.err {
		return nil, fmt.Errorf("%w: snapshot delta: truncated", ErrValidation)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: snapshot delta: %d trailing bytes", ErrValidation, len(d.buf)-d.off)
	}

	return &Snapshot{
		module:  golden.module,
		mem:     mem,
		globals: globals,
		globTs:  golden.globTs, // immutable per-module types, shared
		table:   table,
	}, nil
}

// deltaReader is a bounds-checked little-endian cursor; the first
// out-of-bounds read sets err and every further read returns zero values.
type deltaReader struct {
	buf []byte
	off int
	err bool
}

func (d *deltaReader) bytes(n int) []byte {
	if d.err || d.off+n > len(d.buf) {
		d.err = true
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *deltaReader) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *deltaReader) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
