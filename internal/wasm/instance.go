package wasm

import (
	"fmt"
)

// Engine selects the execution mode, mirroring WAMR's interpreter and
// ahead-of-time modes (paper Table I / §IV-B: TWINE executes AoT only).
type Engine int

const (
	// EngineAOT executes a pre-translated form with fused
	// superinstructions — the stand-in for wamrc's AoT compilation step.
	// It is the zero value, so an unset Config.Engine runs AoT: TWINE
	// executes AoT only (paper §IV-B), and a zero value that silently
	// selected the interpreter once cost the twine benchmarks 2x.
	EngineAOT Engine = iota
	// EngineInterp executes the lowered code directly.
	EngineInterp
	// EngineRegister executes the second AoT stage (PR 4): per-function
	// register IR with constant folding, copy propagation and hoisted
	// bounds checks. Semantics are bit-identical to the other engines
	// (same results, traps, and EPC fault/eviction counts); functions
	// the translator cannot prove run in their fused AoT form.
	EngineRegister
	// EngineSuperblock executes the third AoT stage (PR 7): the register
	// IR with innermost self-loops compiled into single Go closures —
	// idiom templates whose bounds/EPC-TLB guards are amortised to once
	// per loop trip, or generic per-instruction step traces. Semantics
	// are bit-identical to the other engines; loops the translator
	// cannot prove stay under the register interpreter.
	EngineSuperblock
)

func (e Engine) String() string {
	switch e {
	case EngineAOT:
		return "aot"
	case EngineRegister:
		return "reg"
	case EngineSuperblock:
		return "super"
	default:
		return "interp"
	}
}

// HostFunc is a native function exposed to guest code.
type HostFunc struct {
	Module string
	Name   string
	Type   FuncType
	// Fn receives the instance (for memory access) and the raw argument
	// slots; it returns the result slots.
	Fn func(in *Instance, args []uint64) ([]uint64, error)
}

// ImportObject resolves module imports at instantiation.
type ImportObject struct {
	funcs map[string]HostFunc
}

// NewImportObject returns an empty import set.
func NewImportObject() *ImportObject {
	return &ImportObject{funcs: make(map[string]HostFunc)}
}

// AddFunc registers a host function under module/name.
func (io *ImportObject) AddFunc(f HostFunc) {
	io.funcs[f.Module+"\x00"+f.Name] = f
}

// Func looks up a registered host function.
func (io *ImportObject) Func(module, name string) (HostFunc, bool) {
	f, ok := io.funcs[module+"\x00"+name]
	return f, ok
}

// Config tunes an instance.
type Config struct {
	// Engine selects interpreter or AoT execution.
	Engine Engine
	// MaxMemoryPages caps linear memory below the module's own limit
	// (0 = module limit). Used by the PolyBench memory sweep.
	MaxMemoryPages uint32
	// StackSlots is the value-stack size in 8-byte slots (default 64k).
	StackSlots int
	// MaxCallDepth bounds recursion (default 2048 frames).
	MaxCallDepth int
	// Touch observes every linear-memory access.
	Touch TouchFunc
	// TouchGen optionally points at the touch provider's paging
	// generation, enabling the software EPC-TLB: accesses to pages
	// already proven hot at the current generation skip the Touch hook
	// entirely (see Memory.SetTouchGen for the provider contract).
	TouchGen *uint64
	// HostCtx is an opaque pointer host functions can retrieve with
	// Instance.HostCtx (the WASI layer stores its state here).
	HostCtx any
}

// Instance is an instantiated module ready for invocation. A single
// Instance is not safe for concurrent use, but distinct instances of the
// same Compiled module execute concurrently: all shared state (the module,
// its lowered and AoT-translated code, the link tables) is immutable, and
// everything mutable (memory, globals, table, stack) is per-instance.
type Instance struct {
	c   *Compiled
	m   *Module
	cfg Config

	mem     *Memory
	globals []uint64
	globTs  []GlobalType
	table   []int32
	hosts   []HostFunc
	funcs   []compiledFunc

	stack []uint64
	sp    int
	depth int

	hostArgBuf []uint64
	hostRetBuf []uint64

	// insRetired counts guest instructions dispatched by this instance
	// (all engines), surfaced per tier by benchsnap -v.
	insRetired int64
}

// newInstance builds the per-instance shell: resolved imports, shared
// code, fresh memory with the touch hook wired — everything except the
// initial memory/global/table contents, which either come from the
// module's segments (Instantiate) or from a snapshot
// (InstantiateFromSnapshot).
func newInstance(c *Compiled, imports *ImportObject, cfg Config) (*Instance, error) {
	if cfg.StackSlots == 0 {
		cfg.StackSlots = 64 << 10
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 2048
	}
	m := c.Module
	in := &Instance{c: c, m: m, cfg: cfg, stack: make([]uint64, cfg.StackSlots)}

	// Resolve function imports.
	for _, imp := range m.Imports {
		switch imp.Kind {
		case KindFunc:
			want := m.Types[imp.TypeIdx]
			if imports == nil {
				return nil, fmt.Errorf("%w: no imports provided, need %s.%s", ErrLink, imp.Module, imp.Name)
			}
			hf, ok := imports.Func(imp.Module, imp.Name)
			if !ok {
				return nil, fmt.Errorf("%w: unresolved import %s.%s", ErrLink, imp.Module, imp.Name)
			}
			if !hf.Type.Equal(want) {
				return nil, fmt.Errorf("%w: import %s.%s signature %v, module wants %v",
					ErrLink, imp.Module, imp.Name, hf.Type, want)
			}
			in.hosts = append(in.hosts, hf)
		case KindMemory, KindTable, KindGlobal:
			return nil, fmt.Errorf("%w: %v imports are not supported (module must define its own)", ErrLink, imp.Kind)
		}
	}

	// Functions: the AoT and register forms are translated once per
	// Compiled and shared across instances.
	switch cfg.Engine {
	case EngineAOT:
		in.funcs = c.aot()
	case EngineRegister:
		// The guarded form pays one guard dispatch per hoisted window to
		// skip per-access EPC-TLB probes; worth it only when the TLB is
		// live (a guard can never pass without a generation to validate
		// against, so a touch hook without TouchGen — the NoEPCTLB
		// ablation — takes the unguarded form).
		in.funcs = c.reg(cfg.TouchGen != nil)
	case EngineSuperblock:
		in.funcs = c.super(cfg.TouchGen != nil)
	default:
		in.funcs = c.Funcs
	}

	// Memory.
	if len(m.Memories) > 0 {
		mem, err := NewMemory(m.Memories[0], cfg.MaxMemoryPages)
		if err != nil {
			return nil, err
		}
		if cfg.TouchGen != nil {
			mem.SetTouchGen(cfg.Touch, cfg.TouchGen)
		} else {
			mem.SetTouch(cfg.Touch)
		}
		in.mem = mem
	}
	return in, nil
}

// Instantiate links, allocates and initialises a compiled module, then
// runs its start function.
func Instantiate(c *Compiled, imports *ImportObject, cfg Config) (*Instance, error) {
	in, err := newInstance(c, imports, cfg)
	if err != nil {
		return nil, err
	}
	m := c.Module

	// Globals.
	for _, g := range m.Globals {
		v, err := in.evalInit(g.Init)
		if err != nil {
			return nil, err
		}
		in.globals = append(in.globals, v)
		in.globTs = append(in.globTs, g.Type)
	}

	// Table + element segments.
	if len(m.Tables) > 0 {
		in.table = make([]int32, m.Tables[0].Min)
		for i := range in.table {
			in.table[i] = -1
		}
	}
	for _, seg := range m.Elems {
		off, err := in.evalInit(seg.Offset)
		if err != nil {
			return nil, err
		}
		base := int(uint32(off))
		if base+len(seg.Indices) > len(in.table) {
			return nil, fmt.Errorf("%w: element segment out of table bounds", ErrValidation)
		}
		for i, fi := range seg.Indices {
			in.table[base+i] = int32(fi)
		}
	}

	// Data segments.
	for _, seg := range m.Data {
		off, err := in.evalInit(seg.Offset)
		if err != nil {
			return nil, err
		}
		base := uint32(off)
		if in.mem == nil {
			return nil, fmt.Errorf("%w: data segment without memory", ErrValidation)
		}
		dst, err := in.mem.Bytes(base, uint32(len(seg.Bytes)))
		if err != nil {
			return nil, fmt.Errorf("%w: data segment: %v", ErrValidation, err)
		}
		copy(dst, seg.Bytes)
	}

	// Start function.
	if m.HasStart {
		if _, err := in.call(m.StartIdx, nil); err != nil {
			return nil, fmt.Errorf("wasm: start function: %w", err)
		}
	}
	return in, nil
}

func (in *Instance) evalInit(e InitExpr) (uint64, error) {
	switch e.Kind {
	case OpI32Const, OpI64Const, OpF32Const, OpF64Const:
		return e.Value, nil
	case OpGlobalGet:
		return 0, fmt.Errorf("%w: imported-global init not supported", ErrLink)
	default:
		return 0, fmt.Errorf("%w: bad init expr", ErrValidation)
	}
}

// Memory returns the instance memory (nil when the module has none).
func (in *Instance) Memory() *Memory { return in.mem }

// InsRetired reports the guest instructions dispatched by this instance.
func (in *Instance) InsRetired() int64 { return in.insRetired }

// RetBuf returns the instance's host-call result buffer sized to n
// slots. Host functions use it (directly or via Ret1) so returning
// results does not allocate on every call; the buffer is consumed by
// invokeHost before the next host call can run.
func (in *Instance) RetBuf(n int) []uint64 {
	if cap(in.hostRetBuf) < n {
		in.hostRetBuf = make([]uint64, n)
	}
	return in.hostRetBuf[:n]
}

// Ret1 returns a single-result slice backed by the instance's reusable
// host-call result buffer.
func (in *Instance) Ret1(v uint64) []uint64 {
	r := in.RetBuf(1)
	r[0] = v
	return r
}

// HostCtx returns the opaque context configured at instantiation.
func (in *Instance) HostCtx() any { return in.cfg.HostCtx }

// SetHostCtx replaces the opaque host context. Worker repair uses it to
// hand a reset instance a fresh WASI system: the old context may hold
// descriptor state dirtied by the failed request. Must not race an
// invocation in flight.
func (in *Instance) SetHostCtx(ctx any) { in.cfg.HostCtx = ctx }

// Module returns the underlying module.
func (in *Instance) Module() *Module { return in.m }

// Global reads an exported global by name.
func (in *Instance) Global(name string) (uint64, bool) {
	for _, e := range in.m.Exports {
		if e.Kind == KindGlobal && e.Name == name {
			return in.globals[e.Idx], true
		}
	}
	return 0, false
}

// Invoke calls an exported function with raw 64-bit argument slots and
// returns raw result slots. A trap is returned as a *Trap error.
func (in *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	fi, ok := in.m.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchExport, name)
	}
	ft, err := in.m.TypeOfFunc(fi)
	if err != nil {
		return nil, err
	}
	if len(args) != len(ft.Params) {
		return nil, fmt.Errorf("wasm: %q takes %d arguments, got %d", name, len(ft.Params), len(args))
	}
	return in.call(fi, args)
}

// call invokes function index fi with args, catching traps.
func (in *Instance) call(fi uint32, args []uint64) (results []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*Trap); ok {
				err = t
				in.sp = 0
				in.depth = 0
				return
			}
			panic(r)
		}
	}()
	base := in.sp
	for _, a := range args {
		in.stack[in.sp] = a
		in.sp++
	}
	in.invokeFunc(int(fi))
	ft, terr := in.m.TypeOfFunc(fi)
	if terr != nil {
		return nil, terr
	}
	n := len(ft.Results)
	results = make([]uint64, n)
	copy(results, in.stack[base:base+n])
	in.sp = base
	return results, nil
}
